package crackdb_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	crackdb "repro"
)

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix, err := crackdb.New(crackdb.MakeData(20_000, 1), crackdb.Crack, crackdb.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		ix.Query(i*600, i*600+100)
	}
	cracksBefore := ix.Stats().Cracks
	path := filepath.Join(dir, "ix.crks")
	if err := ix.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Restore under a different (stochastic) algorithm: the crack state is
	// algorithm-agnostic.
	restored, err := crackdb.LoadSnapshot(path, crackdb.DD1R, crackdb.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats().Cracks != cracksBefore {
		t.Fatalf("restored cracks = %d, want %d", restored.Stats().Cracks, cracksBefore)
	}
	res := restored.Query(600, 700)
	if res.Count() != 100 {
		t.Fatalf("restored query count = %d", res.Count())
	}
	// Updates still work after restore.
	if err := restored.Insert(650); err != nil {
		t.Fatal(err)
	}
	if res := restored.Query(600, 700); res.Count() != 101 {
		t.Fatalf("count after insert = %d", res.Count())
	}
}

func TestFacadeSnapshotRejectsPendingUpdates(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(1_000, 4), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(5); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Snapshot(); err == nil {
		t.Fatal("snapshot with pending updates accepted")
	}
	ix.Query(0, 10) // merges the insert
	if _, err := ix.Snapshot(); err != nil {
		t.Fatalf("snapshot after merge failed: %v", err)
	}
}

func TestFacadeSnapshotRejectsHybrids(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(1_000, 5), crackdb.AICS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Snapshot(); err == nil {
		t.Fatal("hybrid snapshot accepted")
	}
}

// TestDBSnapshotFileRoundTrip saves whole-DB snapshots from every
// single-column mode and reopens them from disk across modes, including
// a different shard count.
func TestDBSnapshotFileRoundTrip(t *testing.T) {
	const n = 15_000
	ctx := context.Background()
	dir := t.TempDir()
	for _, src := range []struct {
		name string
		mode crackdb.Concurrency
	}{
		{"single", crackdb.Single},
		{"shared", crackdb.Shared},
		{"sharded-6", crackdb.Sharded(6)},
	} {
		db, err := crackdb.Open(crackdb.MakeData(n, 91), crackdb.DD1R,
			crackdb.WithSeed(92), crackdb.WithConcurrency(src.mode))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 40; i++ {
			if _, err := db.Query(ctx, crackdb.Range(i*300, i*300+80)); err != nil {
				t.Fatal(err)
			}
		}
		piecesBefore := db.Stats().Pieces
		path := filepath.Join(dir, src.name+".crks")
		if err := db.SaveSnapshot(path); err != nil {
			t.Fatalf("%s: save: %v", src.name, err)
		}
		for _, tgt := range []struct {
			name string
			mode crackdb.Concurrency
		}{
			{"single", crackdb.Single},
			{"sharded-6", crackdb.Sharded(6)},
			{"sharded-2", crackdb.Sharded(2)},
		} {
			restored, err := crackdb.OpenSnapshotFile(path, crackdb.DD1R,
				crackdb.WithSeed(93), crackdb.WithConcurrency(tgt.mode))
			if err != nil {
				t.Fatalf("%s->%s: open: %v", src.name, tgt.name, err)
			}
			if restored.Rows() != n {
				t.Fatalf("%s->%s: rows=%d", src.name, tgt.name, restored.Rows())
			}
			// No adaptation lost in the file round trip (modulo the
			// zero-size edge pieces clamping drops).
			if got := restored.Stats().Pieces; got < piecesBefore-12 {
				t.Fatalf("%s->%s: pieces=%d, before save %d", src.name, tgt.name, got, piecesBefore)
			}
			res, err := restored.Query(ctx, crackdb.Range(600, 680))
			if err != nil || res.Count() != 80 {
				t.Fatalf("%s->%s: count=%d err=%v", src.name, tgt.name, res.Count(), err)
			}
		}
	}
}

// TestOpenSnapshotFileRejectsCorruption proves the facade surfaces the
// corruption sentinel for damaged files, in every target mode.
func TestOpenSnapshotFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := crackdb.Open(crackdb.MakeData(3_000, 94), crackdb.Crack,
		crackdb.WithConcurrency(crackdb.Sharded(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), crackdb.Range(100, 900)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.crks")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.crks")
	for name, mutate := range map[string]func([]byte) []byte{
		"bit flip":  func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)*2/3] },
		"version bump": func(b []byte) []byte {
			b[7] = 9
			return b
		},
	} {
		if err := os.WriteFile(bad, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []crackdb.Concurrency{crackdb.Single, crackdb.Sharded(3)} {
			_, err := crackdb.OpenSnapshotFile(bad, crackdb.Crack, crackdb.WithConcurrency(mode))
			if !errors.Is(err, crackdb.ErrSnapshotCorrupt) {
				t.Fatalf("%s (%v): err = %v, want ErrSnapshotCorrupt", name, mode, err)
			}
		}
	}
}

func TestFacadeColumnFiles(t *testing.T) {
	dir := t.TempDir()
	vals := crackdb.MakeData(500, 6)
	for _, binary := range []bool{true, false} {
		path := filepath.Join(dir, "col")
		if err := crackdb.SaveColumn(path, vals, binary); err != nil {
			t.Fatal(err)
		}
		got, err := crackdb.LoadColumn(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 500 {
			t.Fatalf("loaded %d values", len(got))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value %d mismatch (binary=%v)", i, binary)
			}
		}
	}
	// Loaded columns feed straight into New.
	ix, err := crackdb.New(vals, crackdb.MDD1R)
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(0, 100); res.Count() != 100 {
		t.Fatal("query over loaded column failed")
	}
}
