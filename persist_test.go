package crackdb_test

import (
	"path/filepath"
	"testing"

	crackdb "repro"
)

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix, err := crackdb.New(crackdb.MakeData(20_000, 1), crackdb.Crack, crackdb.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		ix.Query(i*600, i*600+100)
	}
	cracksBefore := ix.Stats().Cracks
	path := filepath.Join(dir, "ix.crks")
	if err := ix.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Restore under a different (stochastic) algorithm: the crack state is
	// algorithm-agnostic.
	restored, err := crackdb.LoadSnapshot(path, crackdb.DD1R, crackdb.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats().Cracks != cracksBefore {
		t.Fatalf("restored cracks = %d, want %d", restored.Stats().Cracks, cracksBefore)
	}
	res := restored.Query(600, 700)
	if res.Count() != 100 {
		t.Fatalf("restored query count = %d", res.Count())
	}
	// Updates still work after restore.
	if err := restored.Insert(650); err != nil {
		t.Fatal(err)
	}
	if res := restored.Query(600, 700); res.Count() != 101 {
		t.Fatalf("count after insert = %d", res.Count())
	}
}

func TestFacadeSnapshotRejectsPendingUpdates(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(1_000, 4), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(5); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Snapshot(); err == nil {
		t.Fatal("snapshot with pending updates accepted")
	}
	ix.Query(0, 10) // merges the insert
	if _, err := ix.Snapshot(); err != nil {
		t.Fatalf("snapshot after merge failed: %v", err)
	}
}

func TestFacadeSnapshotRejectsHybrids(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(1_000, 5), crackdb.AICS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Snapshot(); err == nil {
		t.Fatal("hybrid snapshot accepted")
	}
}

func TestFacadeColumnFiles(t *testing.T) {
	dir := t.TempDir()
	vals := crackdb.MakeData(500, 6)
	for _, binary := range []bool{true, false} {
		path := filepath.Join(dir, "col")
		if err := crackdb.SaveColumn(path, vals, binary); err != nil {
			t.Fatal(err)
		}
		got, err := crackdb.LoadColumn(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 500 {
			t.Fatalf("loaded %d values", len(got))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value %d mismatch (binary=%v)", i, binary)
			}
		}
	}
	// Loaded columns feed straight into New.
	ix, err := crackdb.New(vals, crackdb.MDD1R)
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(0, 100); res.Count() != 100 {
		t.Fatal("query over loaded column failed")
	}
}
