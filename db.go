package crackdb

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/hybrids"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/updates"
)

// Concurrency selects how a DB executes queries. It is a construction
// option (WithConcurrency), not a separate index type: the query API is
// identical in every mode, only the execution strategy changes.
type Concurrency struct {
	kind   concKind
	shards int
}

type concKind uint8

const (
	concSingle concKind = iota
	concShared
	concSharded
)

// Single serves queries on the caller's goroutine with no locking and
// zero-copy results. The DB is not safe for concurrent use in this mode;
// it is the fastest choice for single-threaded workloads (the paper's
// experimental setting).
var Single = Concurrency{kind: concSingle}

// Shared serves queries through the adaptive read/write execution layer
// (internal/exec): converged queries run in parallel under a shared lock,
// reorganizing queries serialize under an exclusive one. Results are
// owned slices. Safe for concurrent use.
var Shared = Concurrency{kind: concShared}

// Sharded value-range partitions the column into k shards, each an
// independent adaptive index behind its own executor; queries fan out to
// the intersected shards on a bounded worker pool. Safe for concurrent
// use; the highest-throughput mode for large columns under heavy traffic.
func Sharded(k int) Concurrency { return Concurrency{kind: concSharded, shards: k} }

// String names the mode ("single", "shared", "sharded-8").
func (c Concurrency) String() string {
	switch c.kind {
	case concShared:
		return "shared"
	case concSharded:
		return fmt.Sprintf("sharded-%d", c.shards)
	default:
		return "single"
	}
}

// WithConcurrency sets the DB's concurrency mode (default Single).
func WithConcurrency(c Concurrency) Option {
	return func(cfg *config) { cfg.conc = c }
}

// Aggregate is the result of QueryAggregate: the count and sum of the
// qualifying values, computed without materializing them.
type Aggregate struct {
	Count int
	Sum   int64
}

// DB is the unified front door to adaptive indexing: one handle, one
// predicate-first query API, every execution strategy. Open builds a DB
// over a single column, OpenTable over named columns; WithConcurrency
// picks Single (zero-copy, unsynchronized), Shared (adaptive read/write
// locking) or Sharded(k) (value-range partitioned fan-out) at
// construction time — no upfront decision is baked into call sites,
// matching the paper's no-upfront-decisions philosophy at the API level.
//
// All reads go through Query, QueryBatch and QueryAggregate, which honor
// context cancellation in every mode: a canceled context aborts long
// batches and shard fan-outs between ranges, never leaving the index in
// an inconsistent state. Updates (Insert, Delete) queue and merge lazily
// during query processing; Snapshot serializes the adapted physical
// state. After Close, queries, updates and snapshots fail with ErrClosed;
// the read-only accessors (Stats, PendingUpdates, Rows, Columns, Name,
// Mode) stay readable so shutdown paths can still report final counters.
type DB struct {
	mode   Concurrency
	closed atomic.Bool
	rows   int

	// Single-column backends (exactly one non-nil, per mode).
	ix *Index         // Single
	x  *exec.Executor // Shared
	sh *exec.Sharded  // Sharded(k)

	// b is the group-commit batcher in front of the write path; nil
	// unless the DB was opened with WithGroupCommit.
	b *exec.Batcher

	// Table backends (exactly one non-nil for OpenTable handles).
	tbl  *table.Table  // Single
	stbl *table.Shared // Shared

	cols       []string // table column names; nil for single-column DBs
	defaultCol string   // the only column of a one-column table
}

// Open builds a DB over a single integer column using the named algorithm
// (see Algorithms). The slice is owned by the DB afterwards and will be
// reorganized in place. The zero Option set gives a Single-mode DB with
// the paper's default tuning.
func Open(values []int64, algorithm string, opts ...Option) (*DB, error) {
	cfg := applyOptions(opts)
	db := &DB{mode: cfg.conc, rows: len(values)}
	switch cfg.conc.kind {
	case concSingle:
		ix, err := New(values, algorithm, opts...)
		if err != nil {
			return nil, err
		}
		db.ix = ix
	case concShared:
		ix, err := New(values, algorithm, opts...)
		if err != nil {
			return nil, err
		}
		db.x = ix.executor()
	case concSharded:
		s, err := exec.NewSharded(values, algorithm, cfg.conc.shards, cfg.core)
		if err != nil {
			// The hybrids are known algorithms that the engine-backed
			// sharding layer cannot run; say "unsupported in this mode",
			// not "unknown".
			if errors.Is(err, ErrUnknownAlgorithm) && slices.Contains(hybrids.Specs(), algorithm) {
				return nil, fmt.Errorf("crackdb: algorithm %q in sharded mode: %w", algorithm, errors.ErrUnsupported)
			}
			return nil, fmt.Errorf("crackdb: %w", err)
		}
		db.sh = s
	}
	if err := db.attachGroupCommit(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// attachGroupCommit installs the group-commit batcher over the DB's
// executor when WithGroupCommit was given. Concurrent table modes get one
// batcher per column (writes to different columns are independent);
// Single mode — column or table — has no concurrent write path to batch
// and fails with errors.ErrUnsupported.
func (db *DB) attachGroupCommit(cfg config) error {
	if !cfg.groupOn {
		return nil
	}
	switch {
	case db.x != nil:
		db.b = exec.NewBatcher(db.x, cfg.groupOpt)
	case db.sh != nil:
		db.b = exec.NewBatcher(db.sh, cfg.groupOpt)
	case db.stbl != nil:
		db.stbl.EnableGroupCommit(cfg.groupOpt)
	default:
		return fmt.Errorf("crackdb: group commit in %s mode: %w", db.mode, errors.ErrUnsupported)
	}
	return nil
}

// OpenTable builds a DB over named, equal-length columns; selections
// crack only the column the predicate names (scope predicates with
// Predicate.On). Single mode serves queries unsynchronized; Shared gives
// every selection column its own adaptive executor, so queries on
// different columns run fully in parallel; Sharded(k) gives every column
// k range-partitioned executors, so disjoint-range queries on the same
// column proceed in parallel too.
func OpenTable(cols map[string][]int64, algorithm string, opts ...Option) (*DB, error) {
	cfg := applyOptions(opts)
	t, err := table.New(cols, algorithm, cfg.core)
	if err != nil {
		return nil, fmt.Errorf("crackdb: %w", err)
	}
	db := &DB{mode: cfg.conc, rows: t.Rows(), cols: t.Columns()}
	if len(db.cols) == 1 {
		db.defaultCol = db.cols[0]
	}
	switch cfg.conc.kind {
	case concSingle:
		db.tbl = t
	case concShared:
		db.stbl = table.NewShared(t)
	case concSharded:
		db.stbl = table.NewSharded(t, cfg.conc.shards)
	}
	if err := db.attachGroupCommit(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// Close marks the handle closed; subsequent queries, updates and
// snapshots fail with ErrClosed (read-only accessors stay readable). It
// does not free the column (the garbage collector does) — Close exists
// so pooled handles fail loudly instead of serving after their lifecycle
// ended.
func (db *DB) Close() error {
	db.closed.Store(true)
	if db.b != nil {
		// Stops the collector goroutine; writes already admitted are
		// still flushed and acknowledged before Close returns.
		db.b.Close()
	}
	if db.stbl != nil {
		db.stbl.Close() // per-column batchers, same drain-first contract
	}
	return nil // idempotent, io.Closer-style: repeat closes are not errors
}

// Mode returns the DB's concurrency mode.
func (db *DB) Mode() Concurrency { return db.mode }

// Rows returns the number of rows (tuples) the DB was opened with.
func (db *DB) Rows() int { return db.rows }

// Columns returns the table's column names in deterministic order, or nil
// for a single-column DB.
func (db *DB) Columns() []string { return append([]string(nil), db.cols...) }

// Name identifies the backing configuration (e.g. "dd1r",
// "exec(updatable(dd1r))", "sharded-8(dd1r)", "table").
func (db *DB) Name() string {
	switch {
	case db.ix != nil:
		return db.ix.Name()
	case db.x != nil:
		return db.x.Name()
	case db.sh != nil:
		return db.sh.Name()
	case db.stbl != nil && db.stbl.Sharded() > 0:
		return fmt.Sprintf("table(sharded-%d)", db.stbl.Sharded())
	default:
		return "table"
	}
}

// check validates the handle and the context before any operation.
func (db *DB) check(ctx context.Context) error {
	if db.closed.Load() {
		return fmt.Errorf("crackdb: %w", ErrClosed)
	}
	return ctx.Err()
}

// resolveColumn maps a predicate to the column it queries. Single-column
// DBs take unscoped predicates only; tables require a scope unless they
// have exactly one column.
func (db *DB) resolveColumn(p Predicate) (string, error) {
	if p.conflict != "" {
		return "", fmt.Errorf("crackdb: predicate composes different columns (%s): %w", p.conflict, ErrUnknownColumn)
	}
	col := p.Column()
	if db.tbl == nil && db.stbl == nil {
		if col != "" {
			return "", fmt.Errorf("crackdb: single-column database, predicate is scoped to %q: %w", col, ErrUnknownColumn)
		}
		return "", nil
	}
	if col == "" {
		if db.defaultCol != "" {
			return db.defaultCol, nil
		}
		return "", fmt.Errorf("crackdb: predicate names no column (scope it with Predicate.On): %w", ErrUnknownColumn)
	}
	return col, nil
}

// Query answers the predicate, adapting the index as a side effect, and
// returns the qualifying values. In Single mode the Result is a zero-copy
// view valid until the next query; the concurrent modes return owned
// results (Result.Owned is then copy-free). Multi-range predicates (Or)
// are answered as a batch under the hood, in ascending range order.
func (db *DB) Query(ctx context.Context, p Predicate) (Result, error) {
	if err := db.check(ctx); err != nil {
		return Result{}, err
	}
	col, err := db.resolveColumn(p)
	if err != nil {
		return Result{}, err
	}
	// Single-range predicates (every non-Or shape) skip the range-list
	// allocation: with a converged query in Single mode this whole path is
	// allocation-free.
	if lo, hi, ok := p.singleRange(); ok {
		if lo >= hi {
			return Result{}, nil
		}
		return db.queryRange(ctx, col, lo, hi)
	}
	rs := p.rangeList()
	// Multi-range: one batch, concatenated in ascending range order.
	parts, err := db.batchRanges(ctx, col, toExecRanges(rs))
	if err != nil {
		return Result{}, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return NewResult(out), nil
}

// queryRange answers one half-open range on one column in the DB's mode.
func (db *DB) queryRange(ctx context.Context, col string, lo, hi int64) (Result, error) {
	switch {
	case db.ix != nil:
		return db.ix.Query(lo, hi), nil
	case db.x != nil:
		vals, err := db.x.QueryCtx(ctx, lo, hi)
		if err != nil {
			return Result{}, err
		}
		return NewResult(vals), nil
	case db.sh != nil:
		vals, err := db.sh.QueryCtx(ctx, lo, hi)
		if err != nil {
			return Result{}, err
		}
		return NewResult(vals), nil
	case db.stbl != nil:
		vals, err := db.stbl.Query(ctx, col, lo, hi)
		if err != nil {
			return Result{}, err
		}
		return NewResult(vals), nil
	default:
		vals, err := db.tbl.Select(col, lo, hi)
		if err != nil {
			return Result{}, err
		}
		return NewResult(vals), nil
	}
}

// batchRanges answers many ranges on one column, one owned slice per
// range in input order.
func (db *DB) batchRanges(ctx context.Context, col string, ranges []exec.Range) ([][]int64, error) {
	switch {
	case db.x != nil:
		return db.x.QueryBatchCtx(ctx, ranges)
	case db.sh != nil:
		return db.sh.QueryBatchCtx(ctx, ranges)
	case db.stbl != nil:
		return db.stbl.QueryBatch(ctx, col, ranges)
	default:
		// Single mode (column or table): sequential, re-checking the
		// context between ranges so long batches cancel cleanly.
		out := make([][]int64, len(ranges))
		for i, r := range ranges {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if db.ix != nil {
				res := db.ix.Query(r.Lo, r.Hi)
				out[i] = res.Materialize(make([]int64, 0, res.Count()))
				continue
			}
			vals, err := db.tbl.Select(col, r.Lo, r.Hi)
			if err != nil {
				return nil, err
			}
			out[i] = vals
		}
		return out, nil
	}
}

// QueryBatch answers many predicates, returning one Result per predicate
// in input order. Ranges sharing a column are answered under shared lock
// passes (at most two lock acquisitions per column in Shared mode); a
// canceled context aborts the batch between ranges, also mid-fan-out on a
// sharded DB, and discards the partial answers.
func (db *DB) QueryBatch(ctx context.Context, ps []Predicate) ([]Result, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	results := make([]Result, len(ps))
	// Flatten predicate ranges per column, remembering which predicate
	// each flattened range answers.
	type group struct {
		ranges []exec.Range
		owner  []int
	}
	order := make([]string, 0, 1) // columns in first-seen order
	groups := make(map[string]*group, 1)
	nRanges := make([]int, len(ps))
	for pi, p := range ps {
		col, err := db.resolveColumn(p)
		if err != nil {
			return nil, err
		}
		g := groups[col]
		if g == nil {
			g = &group{}
			groups[col] = g
			order = append(order, col)
		}
		for _, r := range p.rangeList() {
			g.ranges = append(g.ranges, exec.Range{Lo: r[0], Hi: r[1]})
			g.owner = append(g.owner, pi)
			nRanges[pi]++
		}
	}
	for _, col := range order {
		g := groups[col]
		parts, err := db.batchRanges(ctx, col, g.ranges)
		if err != nil {
			return nil, err
		}
		// Stitch flattened answers back per predicate. Single-range
		// predicates (the common case) adopt their owned slice directly;
		// a multi-range predicate's ranges were flattened in ascending
		// order, so appending in flat order reassembles them correctly.
		var acc map[int][]int64
		for j, part := range parts {
			pi := g.owner[j]
			if nRanges[pi] == 1 {
				results[pi] = NewResult(part)
				continue
			}
			if acc == nil {
				acc = make(map[int][]int64)
			}
			acc[pi] = append(acc[pi], part...)
		}
		for pi, vals := range acc {
			results[pi] = NewResult(vals)
		}
	}
	return results, nil
}

// QueryAggregate answers the predicate returning only (count, sum),
// skipping materialization wherever the mode allows.
func (db *DB) QueryAggregate(ctx context.Context, p Predicate) (Aggregate, error) {
	if err := db.check(ctx); err != nil {
		return Aggregate{}, err
	}
	col, err := db.resolveColumn(p)
	if err != nil {
		return Aggregate{}, err
	}
	var agg Aggregate
	// Single-range predicates skip the range-list allocation, like Query.
	if lo, hi, ok := p.singleRange(); ok {
		if lo >= hi {
			return agg, nil
		}
		return db.aggRange(ctx, col, lo, hi, agg)
	}
	for _, r := range p.rangeList() {
		// Re-check between the ranges of a multi-range predicate so long
		// Single-mode aggregates cancel cleanly too (the concurrent
		// branches also check inside the executor).
		if err := ctx.Err(); err != nil {
			return Aggregate{}, err
		}
		var err error
		if agg, err = db.aggRange(ctx, col, r[0], r[1], agg); err != nil {
			return Aggregate{}, err
		}
	}
	return agg, nil
}

// aggRange folds one half-open range's (count, sum) into agg in the DB's
// mode.
func (db *DB) aggRange(ctx context.Context, col string, lo, hi int64, agg Aggregate) (Aggregate, error) {
	switch {
	case db.ix != nil:
		res := db.ix.Query(lo, hi)
		agg.Count += res.Count()
		agg.Sum += res.Sum()
	case db.x != nil:
		c, s, err := db.x.QueryAggregateCtx(ctx, lo, hi)
		if err != nil {
			return Aggregate{}, err
		}
		agg.Count += c
		agg.Sum += s
	case db.sh != nil:
		c, s, err := db.sh.QueryAggregateCtx(ctx, lo, hi)
		if err != nil {
			return Aggregate{}, err
		}
		agg.Count += c
		agg.Sum += s
	case db.stbl != nil:
		c, s, err := db.stbl.QueryAggregate(ctx, col, lo, hi)
		if err != nil {
			return Aggregate{}, err
		}
		agg.Count += c
		agg.Sum += s
	default:
		vals, err := db.tbl.Select(col, lo, hi)
		if err != nil {
			return Aggregate{}, err
		}
		agg.Count += len(vals)
		for _, v := range vals {
			agg.Sum += v
		}
	}
	return agg, nil
}

// Insert queues a value for insertion; it is merged into the column by
// the first query whose range covers it (Ripple merge). On a sharded DB
// the value routes to the shard owning its range; with WithGroupCommit
// the value rides a collector flush and Insert returns after the flush
// applied it. On a table database the value goes to the default column
// (the only column of a one-column table; use InsertOn for wider
// tables). It fails with ErrUpdatesUnsupported for algorithms that
// cannot take updates.
func (db *DB) Insert(v int64) error {
	if db.closed.Load() {
		return fmt.Errorf("crackdb: %w", ErrClosed)
	}
	if db.tbl != nil || db.stbl != nil {
		_, err := db.applyTable(context.Background(), "", []int64{v}, nil)
		return err
	}
	if db.b != nil {
		_, err := db.b.Enqueue(context.Background(), []exec.Op{{Value: v}})
		return err
	}
	switch {
	case db.ix != nil:
		return db.ix.Insert(v)
	case db.x != nil:
		return db.x.Insert(v)
	default:
		return db.sh.Insert(v)
	}
}

// InsertOn queues a value for insertion into the named table column.
// Columns update independently (cracking is per attribute), so inserting
// into one column widens that column only.
func (db *DB) InsertOn(col string, v int64) error {
	_, err := db.ApplyBatchOn(context.Background(), col, []int64{v}, nil)
	return err
}

// Delete queues the removal of one occurrence of v, merged on demand like
// Insert. Table databases route to the default column, like Insert.
func (db *DB) Delete(v int64) error {
	if db.closed.Load() {
		return fmt.Errorf("crackdb: %w", ErrClosed)
	}
	if db.tbl != nil || db.stbl != nil {
		_, err := db.applyTable(context.Background(), "", nil, []int64{v})
		return err
	}
	if db.b != nil {
		_, err := db.b.Enqueue(context.Background(), []exec.Op{{Value: v, Delete: true}})
		return err
	}
	switch {
	case db.ix != nil:
		return db.ix.Delete(v)
	case db.x != nil:
		return db.x.Delete(v)
	default:
		return db.sh.Delete(v)
	}
}

// DeleteOn queues the removal of one occurrence of v from the named
// table column.
func (db *DB) DeleteOn(col string, v int64) error {
	_, err := db.ApplyBatchOn(context.Background(), col, nil, []int64{v})
	return err
}

// UpdateTimings decomposes an acknowledged write batch's latency into
// the group-commit stages: Queue (waiting for the collector to seal a
// flush), Flush (the sealed flush waiting for the exclusive section) and
// Apply (holding it). Grouped reports whether the batch rode the
// group-commit path; without it only Flush (lock wait) and Apply are
// meaningful and Queue is zero.
type UpdateTimings struct {
	Queue   time.Duration
	Flush   time.Duration
	Apply   time.Duration
	Grouped bool
}

// ApplyBatch applies a whole list of inserts and deletes as one write
// batch and returns its decomposed latency. With WithGroupCommit the
// batch rides one collector flush (possibly grouped with concurrent
// writers); otherwise it is applied directly under one exclusive section
// per touched shard — either way the values pay one lock handshake per
// batch, not one per value, and ApplyBatch returns only after every
// value is applied. The context governs admission to the group-commit
// queue; once admitted the batch is applied even if the context expires,
// because an acknowledged write must never be half-applied.
func (db *DB) ApplyBatch(ctx context.Context, inserts, deletes []int64) (UpdateTimings, error) {
	if err := db.check(ctx); err != nil {
		return UpdateTimings{}, err
	}
	if len(inserts)+len(deletes) == 0 {
		return UpdateTimings{}, nil
	}
	if db.tbl != nil || db.stbl != nil {
		return db.applyTable(ctx, "", inserts, deletes)
	}
	ops := make([]exec.Op, 0, len(inserts)+len(deletes))
	for _, v := range deletes {
		ops = append(ops, exec.Op{Value: v, Delete: true})
	}
	for _, v := range inserts {
		ops = append(ops, exec.Op{Value: v})
	}
	if db.b != nil {
		t, err := db.b.Enqueue(ctx, ops)
		return UpdateTimings{Queue: t.Queue, Flush: t.Flush, Apply: t.Apply, Grouped: true}, err
	}
	var lockWait, apply time.Duration
	var err error
	switch {
	case db.x != nil:
		lockWait, apply, err = db.x.ApplyOps(ops)
	case db.sh != nil:
		lockWait, apply, err = db.sh.ApplyOps(ops)
	default:
		start := time.Now()
		for _, op := range ops {
			if op.Delete {
				err = db.ix.Delete(op.Value)
			} else {
				err = db.ix.Insert(op.Value)
			}
			if err != nil {
				return UpdateTimings{}, err
			}
		}
		return UpdateTimings{Apply: time.Since(start)}, nil
	}
	return UpdateTimings{Flush: lockWait, Apply: apply}, err
}

// ApplyBatchOn is ApplyBatch scoped to one table column: the batch
// queues against col's index only, merged lazily by the next covering
// query on that column. col may be empty on a one-column table (the
// default column takes the batch) and on single-column DBs (where the
// call is plain ApplyBatch).
func (db *DB) ApplyBatchOn(ctx context.Context, col string, inserts, deletes []int64) (UpdateTimings, error) {
	if db.tbl == nil && db.stbl == nil {
		if col != "" {
			return UpdateTimings{}, fmt.Errorf("crackdb: single-column database, batch is scoped to %q: %w", col, ErrUnknownColumn)
		}
		return db.ApplyBatch(ctx, inserts, deletes)
	}
	if err := db.check(ctx); err != nil {
		return UpdateTimings{}, err
	}
	if len(inserts)+len(deletes) == 0 {
		return UpdateTimings{}, nil
	}
	return db.applyTable(ctx, col, inserts, deletes)
}

// applyTable applies a write batch to one table column in either table
// mode. Deletes go first, matching ApplyBatch's op order, so a delete in
// the batch annihilates a matching queued insert.
func (db *DB) applyTable(ctx context.Context, col string, inserts, deletes []int64) (UpdateTimings, error) {
	if col == "" {
		if db.defaultCol == "" {
			return UpdateTimings{}, fmt.Errorf("crackdb: write names no column (use ApplyBatchOn): %w", ErrUnknownColumn)
		}
		col = db.defaultCol
	}
	if db.tbl != nil {
		start := time.Now()
		if err := db.tbl.Apply(col, inserts, deletes); err != nil {
			return UpdateTimings{}, err
		}
		return UpdateTimings{Apply: time.Since(start)}, nil
	}
	ops := make([]exec.Op, 0, len(inserts)+len(deletes))
	for _, v := range deletes {
		ops = append(ops, exec.Op{Value: v, Delete: true})
	}
	for _, v := range inserts {
		ops = append(ops, exec.Op{Value: v})
	}
	queue, flush, apply, grouped, err := db.stbl.Apply(ctx, col, ops)
	return UpdateTimings{Queue: queue, Flush: flush, Apply: apply, Grouped: grouped}, err
}

// GroupCommitStats reports the group-commit batcher's counters — summed
// across the per-column batchers on a table database; ok is false when
// the DB was opened without WithGroupCommit.
func (db *DB) GroupCommitStats() (st exec.BatcherStats, ok bool) {
	if db.stbl != nil {
		return db.stbl.GroupCommitStats()
	}
	if db.b == nil {
		return exec.BatcherStats{}, false
	}
	return db.b.Stats(), true
}

// PendingUpdates returns the number of queued, not-yet-merged updates
// across the whole DB (all shards in Sharded mode, all columns on a
// table database).
func (db *DB) PendingUpdates() int {
	switch {
	case db.ix != nil:
		return db.ix.PendingUpdates()
	case db.x != nil:
		return db.x.Pending()
	case db.sh != nil:
		return db.sh.Pending()
	case db.tbl != nil:
		return db.tbl.PendingUpdates()
	case db.stbl != nil:
		return db.stbl.Pending()
	default:
		return 0
	}
}

// Stats returns cumulative physical-cost counters, aggregated across
// shards and columns where applicable.
func (db *DB) Stats() Stats {
	switch {
	case db.ix != nil:
		return db.ix.Stats()
	case db.x != nil:
		return db.x.Stats()
	case db.sh != nil:
		return db.sh.Stats()
	case db.stbl != nil:
		return db.stbl.Stats()
	default:
		return db.tbl.Stats()
	}
}

// PathStats reports how many queries the adaptive execution layer
// answered under the shared read lock versus the exclusive write lock —
// the observable form of the executor's convergence-driven adaptivity
// (README "Concurrency model"). ok is false for modes without an
// executor (Single mode, column or table), whose counters would be
// meaningless. On a sharded DB a multi-shard query counts once per shard
// it touched: the counters measure executor lock traffic. Concurrent
// table databases sum the counters across their column executors.
func (db *DB) PathStats() (reads, writes int64, ok bool) {
	switch {
	case db.x != nil:
		reads, writes = db.x.PathStats()
		return reads, writes, true
	case db.sh != nil:
		reads, writes = db.sh.PathStats()
		return reads, writes, true
	case db.stbl != nil:
		reads, writes = db.stbl.PathStats()
		return reads, writes, true
	default:
		return 0, 0, false
	}
}

// PieceSizes returns the current sizes (in tuples) of the column's
// pieces, in storage order — the physical-refinement state the paper
// reasons about. A Shared DB reads them under the exclusive lock; a
// sharded DB concatenates its shards' pieces in shard order; a table
// database concatenates its columns' pieces in column-name order
// (never-queried columns report one unbroken piece). Non-engine-backed
// algorithms are unsupported.
func (db *DB) PieceSizes() ([]int, error) {
	if db.closed.Load() {
		return nil, fmt.Errorf("crackdb: %w", ErrClosed)
	}
	sizesOf := func(inner exec.Index) ([]int, error) {
		acc, ok := inner.(interface{ Engine() *core.Engine })
		if !ok {
			return nil, fmt.Errorf("crackdb: %s: piece sizes: %w", inner.Name(), errors.ErrUnsupported)
		}
		e := acc.Engine()
		return stats.SizesFromBounds(e.CrackerIndex().Pieces(e.Column().Len())), nil
	}
	switch {
	case db.ix != nil:
		return sizesOf(db.ix.inner)
	case db.x != nil:
		var sizes []int
		var err error
		db.x.Exclusive(func(inner exec.Index) { sizes, err = sizesOf(inner) })
		return sizes, err
	case db.sh != nil:
		var all []int
		for i := 0; i < db.sh.NumShards(); i++ {
			var sizes []int
			var err error
			db.sh.Shard(i).Exclusive(func(inner exec.Index) { sizes, err = sizesOf(inner) })
			if err != nil {
				return nil, err
			}
			all = append(all, sizes...)
		}
		return all, nil
	case db.tbl != nil:
		return db.tbl.PieceSizes(), nil
	default:
		return db.stbl.PieceSizes(), nil
	}
}

// Snapshot captures the DB's physical state as a multi-part manifest so
// a later OpenSnapshot resumes with all adaptation earned so far. Every
// single-column mode snapshots: Single directly, Shared under the
// executor's exclusive lock (draining in-flight queries first), and
// Sharded with every shard drained at once (exec.Sharded.ExclusiveAll)
// so the manifest is one atomic cut of the whole index — one part per
// shard, shard boundaries included, so the restore can rebuild or re-cut
// the same partitioning.
// Queued, not-yet-merged updates are captured with the snapshot (the
// manifest carries the pending queues; OpenSnapshot re-queues them), so a
// capture never has to refuse because updates are in flight — use
// SnapshotStrict when a caller explicitly wants that refusal.
//
// Table databases produce a table manifest: one entry per column, each
// holding that column's cracked state and pending queues (row-id
// payloads are dropped — see snapshot.TableColumn). Restore it with
// OpenTableSnapshot, into any table concurrency mode.
func (db *DB) Snapshot() (DBSnapshot, error) {
	if db.closed.Load() {
		return DBSnapshot{}, fmt.Errorf("crackdb: %w", ErrClosed)
	}
	switch {
	case db.ix != nil:
		st, err := db.ix.snapshotState()
		if err != nil {
			return DBSnapshot{}, err
		}
		return snapshot.Single(st), nil
	case db.x != nil:
		var st SnapshotState
		var err error
		db.x.Exclusive(func(inner exec.Index) {
			st, err = snapshotInner(inner)
		})
		if err != nil {
			return DBSnapshot{}, err
		}
		return snapshot.Single(st), nil
	case db.sh != nil:
		parts := make([]SnapshotPart, 0, db.sh.NumShards())
		var err error
		db.sh.ExclusiveAll(func(inners []exec.Index) {
			for i, inner := range inners {
				var st SnapshotState
				if st, err = snapshotInner(inner); err != nil {
					return
				}
				lo, hi := db.sh.ShardRange(i)
				parts = append(parts, snapshot.ClampedPart(lo, hi, st))
			}
		})
		if err != nil {
			return DBSnapshot{}, err
		}
		return DBSnapshot{Parts: parts}, nil
	case db.tbl != nil:
		return db.tbl.Snapshot()
	default:
		return db.stbl.Snapshot()
	}
}

// snapshotInner serializes any engine-backed index. Pending updates are
// captured into the state's queue fields, not merged: the restore
// re-queues them so the first covering query merges them lazily, exactly
// as it would have on the snapshotted index.
func snapshotInner(inner exec.Index) (SnapshotState, error) {
	acc, ok := inner.(interface{ Engine() *core.Engine })
	if !ok {
		return SnapshotState{}, fmt.Errorf("crackdb: %s: %w", inner.Name(), ErrSnapshotUnsupported)
	}
	st := acc.Engine().Snapshot()
	if u, ok := inner.(*updates.Index); ok {
		st.PendingInserts, st.PendingDeletes = u.PendingSnapshot()
	}
	return st, nil
}

// SnapshotStrict is Snapshot refusing to capture while updates are
// queued: it fails with ErrPendingUpdates instead of carrying the
// queues. Callers that treat a snapshot as a fully-merged cut (e.g. an
// operator asking for a clean backup) use this; everyone else wants
// Snapshot, which never refuses.
func (db *DB) SnapshotStrict() (DBSnapshot, error) {
	snap, err := db.Snapshot()
	if err != nil {
		return DBSnapshot{}, err
	}
	// Checked on the captured manifest, not a live counter, so the
	// decision is atomic with the capture even in concurrent modes.
	if n := snap.Pending(); n > 0 {
		return DBSnapshot{}, fmt.Errorf("crackdb: %d updates queued; merge them before snapshotting: %w",
			n, ErrPendingUpdates)
	}
	return snap, nil
}

// toExecRanges converts a predicate range list to the executor form.
func toExecRanges(rs [][2]int64) []exec.Range {
	out := make([]exec.Range, len(rs))
	for i, r := range rs {
		out[i] = exec.Range{Lo: r[0], Hi: r[1]}
	}
	return out
}
