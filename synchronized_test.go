package crackdb_test

import (
	"sync"
	"testing"

	crackdb "repro"
)

// TestSynchronizedHybridFallback covers the no-probe branch of
// Index.Synchronized: the partition/merge hybrids expose no convergence
// probe, so every query must serialize under the exclusive lock — and
// still answer correctly, including batches and aggregates.
func TestSynchronizedHybridFallback(t *testing.T) {
	const n = 30_000
	for _, spec := range []string{crackdb.AICS, crackdb.AICC1R} {
		ix, err := crackdb.New(crackdb.MakeData(n, 17), spec, crackdb.WithSeed(18), crackdb.WithPartitions(4))
		if err != nil {
			t.Fatal(err)
		}
		ci := ix.Synchronized()
		if got := ci.Query(1000, 1500); len(got) != 500 {
			t.Fatalf("%s: count = %d", spec, len(got))
		}
		c, s := ci.QueryAggregate(2000, 2100)
		var want int64
		for v := int64(2000); v < 2100; v++ {
			want += v
		}
		if c != 100 || s != want {
			t.Fatalf("%s: aggregate (%d, %d), want (100, %d)", spec, c, s, want)
		}
		out := ci.QueryBatch([]crackdb.QueryRange{{Lo: 5000, Hi: 5100}, {Lo: 10, Hi: 20}})
		if len(out[0]) != 100 || len(out[1]) != 10 {
			t.Fatalf("%s: batch counts (%d, %d)", spec, len(out[0]), len(out[1]))
		}
		// Hybrids cannot take updates; the wrapper must say so.
		if err := ci.Insert(1); err == nil {
			t.Fatalf("%s: hybrid accepted an insert", spec)
		}
		// Every query above took the exclusive path: no probe exists.
		if reads, writes := ci.PathStats(); reads != 0 || writes == 0 {
			t.Fatalf("%s: reads=%d writes=%d; hybrid must use the write path", spec, reads, writes)
		}
		if ci.Stats().Queries == 0 || ci.Name() == "" {
			t.Fatalf("%s: stats/name broken", spec)
		}
	}
}

// TestSynchronizedPendingUpdates covers the update-carrying branch:
// updates queued before and after Synchronized must be visible to
// queries through the wrapper.
func TestSynchronizedPendingUpdates(t *testing.T) {
	const n = 10_000
	ix, err := crackdb.New(crackdb.MakeData(n, 19), crackdb.DD1R, crackdb.WithSeed(20))
	if err != nil {
		t.Fatal(err)
	}
	// Queue updates while still unsynchronized: a duplicate 500 and the
	// removal of 600.
	if err := ix.Insert(500); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(600); err != nil {
		t.Fatal(err)
	}
	ci := ix.Synchronized()
	if got := ci.Query(500, 501); len(got) != 2 {
		t.Fatalf("pending insert not visible: %d values of 500", len(got))
	}
	if got := ci.Query(600, 601); len(got) != 0 {
		t.Fatalf("pending delete not applied: %d values of 600", len(got))
	}
	// Updates through the wrapper.
	if err := ci.Insert(700); err != nil {
		t.Fatal(err)
	}
	if got := ci.Query(700, 701); len(got) != 2 {
		t.Fatalf("wrapper insert not visible: %d values of 700", len(got))
	}
	if err := ci.Delete(700); err != nil {
		t.Fatal(err)
	}
	if got := ci.Query(700, 701); len(got) != 1 {
		t.Fatalf("wrapper delete not applied: %d values of 700", len(got))
	}
}

// TestSynchronizedRaceStress drives concurrent Query/QueryBatch/Insert/
// Delete through the facade wrapper; with -race it checks the whole
// facade-to-executor stack for data races.
func TestSynchronizedRaceStress(t *testing.T) {
	const n = 20_000
	ix, err := crackdb.New(crackdb.MakeData(n, 21), crackdb.Crack, crackdb.WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	ci := ix.Synchronized()
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				a := int64((g*1103 + i*97) % (n - 200))
				switch i % 3 {
				case 0:
					if got := ci.Query(a, a+100); len(got) != 100 {
						errs <- "bad count"
						return
					}
				case 1:
					out := ci.QueryBatch([]crackdb.QueryRange{{Lo: a, Hi: a + 10}, {Lo: a + 50, Hi: a + 60}})
					if len(out[0]) != 10 || len(out[1]) != 10 {
						errs <- "bad batch"
						return
					}
				default:
					// Balanced churn outside the queried domain.
					v := int64(n + 100 + g)
					if err := ci.Insert(v); err != nil {
						errs <- err.Error()
						return
					}
					if err := ci.Delete(v); err != nil {
						errs <- err.Error()
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
