package crackdb

import (
	"fmt"
	"io"

	"repro/internal/colload"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/snapshot"
	"repro/internal/table"
	"repro/internal/updates"
)

// SnapshotState is the serializable physical state of one index engine:
// the (partially reorganized) column plus its crack set.
type SnapshotState = core.SnapshotState

// DBSnapshot is the serializable physical state of a whole DB: a
// versioned multi-part manifest with one part per shard (a single part
// for Single/Shared databases), each carrying its value range and engine
// state. DB.Snapshot produces it in every single-column mode and
// OpenSnapshot restores it into any of them — including a different
// shard count, in which case the engine state is split or merged along
// the shard bounds without losing cracks.
type DBSnapshot = snapshot.Manifest

// SnapshotPart is one part of a DBSnapshot: the engine state of one
// shard plus the half-open value range [Lo, Hi) it owns.
type SnapshotPart = snapshot.Part

// SnapshotOf wraps a single engine state (Index.Snapshot) as a
// whole-domain DBSnapshot, for feeding v1-API snapshots into
// OpenSnapshot.
func SnapshotOf(st SnapshotState) DBSnapshot { return snapshot.Single(st) }

// Snapshot captures the index's physical state so that a later Restore
// resumes with all adaptation earned so far. Only engine-backed
// algorithms (everything except the hybrids) support snapshots — others
// fail with ErrSnapshotUnsupported; indexes with pending updates fail
// with ErrPendingUpdates (query the relevant ranges to merge them
// first).
func (ix *Index) Snapshot() (SnapshotState, error) {
	acc, ok := ix.inner.(interface{ Engine() *core.Engine })
	if !ok {
		return SnapshotState{}, fmt.Errorf("crackdb: %s: %w", ix.inner.Name(), ErrSnapshotUnsupported)
	}
	if ix.upd != nil && ix.upd.Pending() > 0 {
		return SnapshotState{}, fmt.Errorf("crackdb: %d updates queued; merge them before snapshotting: %w",
			ix.upd.Pending(), ErrPendingUpdates)
	}
	return acc.Engine().Snapshot(), nil
}

// snapshotState captures the index's physical state with any queued
// updates carried in the state's pending-queue fields — the DB snapshot
// path, which never refuses. The v1 Index.Snapshot above keeps its
// documented strict contract.
func (ix *Index) snapshotState() (SnapshotState, error) {
	acc, ok := ix.inner.(interface{ Engine() *core.Engine })
	if !ok {
		return SnapshotState{}, fmt.Errorf("crackdb: %s: %w", ix.inner.Name(), ErrSnapshotUnsupported)
	}
	st := acc.Engine().Snapshot()
	if ix.upd != nil {
		st.PendingInserts, st.PendingDeletes = ix.upd.PendingSnapshot()
	}
	return st, nil
}

// SaveSnapshot writes the index's state to path (atomic write, CRC32
// protected).
func (ix *Index) SaveSnapshot(path string) error {
	st, err := ix.Snapshot()
	if err != nil {
		return err
	}
	return snapshot.SaveFile(path, st)
}

// SaveSnapshot writes the DB's state to path (atomic temp-file write +
// rename, CRC32 protected) in every single-column concurrency mode; see
// DB.Snapshot. A crash mid-save leaves the previous snapshot file
// intact.
func (db *DB) SaveSnapshot(path string) error {
	snap, err := db.Snapshot()
	if err != nil {
		return err
	}
	return snapshot.SaveManifestFile(path, snap)
}

// SaveSnapshotFile writes an already-captured DBSnapshot to path (atomic
// temp-file write + rename, CRC32 protected). Use it when the capture
// and the file write should not hold the DB's locks together — the
// serving layer captures under the drain, then writes outside it.
func SaveSnapshotFile(path string, snap DBSnapshot) error {
	return snapshot.SaveManifestFile(path, snap)
}

// Restore rebuilds an index from a snapshot, validating every crack
// invariant first. algorithm selects who continues the cracking; crack
// state is algorithm-agnostic, so restoring a "crack" snapshot into a
// "dd1r" index is legal and useful.
func Restore(st SnapshotState, algorithm string, opts ...Option) (*Index, error) {
	cfg := applyOptions(opts)
	inner, err := core.Restore(st, algorithm, cfg.core)
	if err != nil {
		return nil, err
	}
	u, _ := updates.Wrap(inner)
	if st.Pending() > 0 {
		if u == nil {
			return nil, fmt.Errorf("crackdb: %s: snapshot carries %d pending updates: %w",
				algorithm, st.Pending(), ErrUpdatesUnsupported)
		}
		u.SeedPending(st.PendingInserts, st.PendingDeletes)
	}
	return &Index{inner: inner, upd: u}, nil
}

// OpenSnapshot restores a DB from a snapshot manifest, resuming with all
// adaptation earned so far, in any single-column concurrency mode. The
// target layout need not match the source: restoring a sharded snapshot
// into Single or Shared merges the shards into one contiguous state
// (old shard boundaries become cracks), and restoring into Sharded(k)
// re-cuts the manifest along k-1 bounds — the snapshot's own bounds when
// k matches, otherwise bounds chosen from the snapshot's piece structure
// (SplitBounds) — splitting or merging engine state without losing
// cracks. The one restriction: a multi-part snapshot carrying row-id
// payloads only restores into its own shard layout (row ids are
// shard-local), else ErrSnapshotUnsupported.
func OpenSnapshot(snap DBSnapshot, algorithm string, opts ...Option) (*DB, error) {
	cfg := applyOptions(opts)
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("crackdb: %w", err)
	}
	if snap.IsTable() {
		return openTableSnapshot(snap, algorithm, cfg)
	}
	if cfg.conc.kind == concSharded {
		k := cfg.conc.shards
		if k < 1 {
			k = 1
		}
		if rows := snap.Rows(); k > rows && rows > 0 {
			k = rows
		}
		m := snap
		if k != len(snap.Parts) {
			var err error
			m, err = snap.Reshard(snap.SplitBounds(k, cfg.core.Seed))
			if err != nil {
				return nil, fmt.Errorf("crackdb: %w", err)
			}
		}
		states := make([]core.SnapshotState, len(m.Parts))
		bounds := make([]int64, 0, len(m.Parts)-1)
		for i, p := range m.Parts {
			states[i] = p.State
			if i > 0 {
				bounds = append(bounds, p.Lo)
			}
		}
		sh, err := exec.RestoreSharded(states, bounds, algorithm, cfg.core)
		if err != nil {
			return nil, fmt.Errorf("crackdb: %w", err)
		}
		db := &DB{mode: cfg.conc, rows: snap.Rows(), sh: sh}
		if err := db.attachGroupCommit(cfg); err != nil {
			return nil, err
		}
		return db, nil
	}
	st, err := snap.Merged()
	if err != nil {
		return nil, fmt.Errorf("crackdb: %w", err)
	}
	ix, err := Restore(st, algorithm, opts...)
	if err != nil {
		return nil, err
	}
	db := &DB{mode: cfg.conc, rows: len(st.Values)}
	if cfg.conc.kind == concShared {
		db.x = ix.executor()
	} else {
		db.ix = ix
	}
	if err := db.attachGroupCommit(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// openTableSnapshot restores a table DB from a table manifest, in any
// table concurrency mode: every column resumes from its captured cracked
// state and pending queues, consumed lazily on the column's first
// selection (re-cut along shard bounds in Sharded(k) mode). Captured
// tables carry no row-id payloads, so the restored DB serves every
// per-column selection but the v1 shim's cross-column projections fail
// with ErrSnapshotUnsupported.
func openTableSnapshot(snap DBSnapshot, algorithm string, cfg config) (*DB, error) {
	t, err := table.Restore(snap.Columns, algorithm, cfg.core)
	if err != nil {
		return nil, fmt.Errorf("crackdb: %w", err)
	}
	db := &DB{mode: cfg.conc, rows: t.Rows(), cols: t.Columns()}
	if len(db.cols) == 1 {
		db.defaultCol = db.cols[0]
	}
	switch cfg.conc.kind {
	case concSingle:
		db.tbl = t
	case concShared:
		db.stbl = table.NewShared(t)
	case concSharded:
		db.stbl = table.NewSharded(t, cfg.conc.shards)
	}
	if err := db.attachGroupCommit(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot and restores
// an index from it.
//
// Deprecated: use OpenSnapshotFile, which restores a DB in any supported
// concurrency mode.
func LoadSnapshot(path, algorithm string, opts ...Option) (*Index, error) {
	st, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return Restore(st, algorithm, opts...)
}

// OpenSnapshotFile reads a snapshot file written by SaveSnapshot and
// restores a DB from it, in any single-column concurrency mode (see
// OpenSnapshot). Corrupted, truncated or version-bumped files fail with
// ErrSnapshotCorrupt, never a partial load.
func OpenSnapshotFile(path, algorithm string, opts ...Option) (*DB, error) {
	m, err := snapshot.LoadManifestFile(path)
	if err != nil {
		return nil, err
	}
	return OpenSnapshot(m, algorithm, opts...)
}

// WriteSnapshot serializes a DBSnapshot to w in the CRKS stream format
// (CRC32-trailed, self-describing version). It is the transport form of
// SaveSnapshotFile: the serving layer streams captured shard ranges over
// HTTP with it during live migration.
func WriteSnapshot(w io.Writer, snap DBSnapshot) error {
	return snapshot.WriteManifest(w, snap)
}

// ReadSnapshot reads a CRKS stream written by WriteSnapshot (or a
// snapshot file's contents). Corrupted, truncated or version-bumped
// streams fail with ErrSnapshotCorrupt, never a partial manifest.
func ReadSnapshot(r io.Reader) (DBSnapshot, error) {
	return snapshot.ReadManifest(r)
}

// SnapshotStore is a keyed home for DB snapshots — the pluggable layer
// behind every save/load path. The serving stack saves periodic backups
// through it and warm-starts from it; a key that was never saved loads
// with an error matching fs.ErrNotExist, which is how warm-start probes
// distinguish "cold start" from "broken store". See snapshot.Store for
// the key and atomicity contracts.
type SnapshotStore = snapshot.Store

// NewFileSnapshotStore opens (creating if needed) a file-backed snapshot
// store rooted at dir: each key is a file under dir, written atomically
// with the same temp-file + rename + CRC32 discipline as SaveSnapshot.
func NewFileSnapshotStore(dir string) (*snapshot.FileStore, error) {
	return snapshot.NewFileStore(dir)
}

// NewMemSnapshotStore returns an in-memory snapshot store holding
// encoded CRKS streams — tests and single-process fleets use it; every
// Save/Load round-trips the wire codec.
func NewMemSnapshotStore() *snapshot.MemStore { return snapshot.NewMemStore() }

// SaveSnapshotTo writes an already-captured DBSnapshot under key in the
// store. Like SaveSnapshotFile, it holds no DB locks: capture first,
// store outside the drain.
func SaveSnapshotTo(store SnapshotStore, key string, snap DBSnapshot) error {
	return store.Save(key, snap)
}

// OpenSnapshotFrom loads the manifest under key from the store and
// restores a DB from it, in any concurrency mode — single-column or
// table manifests alike (see OpenSnapshot). A never-saved key fails with
// an error matching fs.ErrNotExist.
func OpenSnapshotFrom(store SnapshotStore, key, algorithm string, opts ...Option) (*DB, error) {
	m, err := store.Load(key)
	if err != nil {
		return nil, err
	}
	return OpenSnapshot(m, algorithm, opts...)
}

// LoadColumn reads an integer column from a file, accepting both the
// newline-delimited text format and the CRKC binary format (sniffed).
func LoadColumn(path string) ([]int64, error) {
	return colload.LoadFile(path)
}

// SaveColumn writes an integer column to a file, as dense binary when
// binaryFormat is set, else as one value per line.
func SaveColumn(path string, values []int64, binaryFormat bool) error {
	return colload.SaveFile(path, values, binaryFormat)
}
