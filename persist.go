package crackdb

import (
	"fmt"

	"repro/internal/colload"
	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/updates"
)

// SnapshotState is the serializable physical state of an index: the
// (partially reorganized) column plus its crack set.
type SnapshotState = core.SnapshotState

// Snapshot captures the index's physical state so that a later Restore
// resumes with all adaptation earned so far. Only engine-backed
// algorithms (everything except the hybrids) support snapshots — others
// fail with ErrSnapshotUnsupported; indexes with pending updates must
// drain them first (query the relevant ranges or accept their loss).
func (ix *Index) Snapshot() (SnapshotState, error) {
	acc, ok := ix.inner.(interface{ Engine() *core.Engine })
	if !ok {
		return SnapshotState{}, fmt.Errorf("crackdb: %s: %w", ix.inner.Name(), ErrSnapshotUnsupported)
	}
	if ix.upd != nil && ix.upd.Pending() > 0 {
		return SnapshotState{}, fmt.Errorf("crackdb: %d pending updates; merge them before snapshotting", ix.upd.Pending())
	}
	return acc.Engine().Snapshot(), nil
}

// SaveSnapshot writes the index's state to path (atomic write, CRC32
// protected).
func (ix *Index) SaveSnapshot(path string) error {
	st, err := ix.Snapshot()
	if err != nil {
		return err
	}
	return snapshot.SaveFile(path, st)
}

// SaveSnapshot writes the DB's state to path (atomic write, CRC32
// protected). See DB.Snapshot for mode support.
func (db *DB) SaveSnapshot(path string) error {
	st, err := db.Snapshot()
	if err != nil {
		return err
	}
	return snapshot.SaveFile(path, st)
}

// Restore rebuilds an index from a snapshot, validating every crack
// invariant first. algorithm selects who continues the cracking; crack
// state is algorithm-agnostic, so restoring a "crack" snapshot into a
// "dd1r" index is legal and useful.
func Restore(st SnapshotState, algorithm string, opts ...Option) (*Index, error) {
	cfg := applyOptions(opts)
	inner, err := core.Restore(st, algorithm, cfg.core)
	if err != nil {
		return nil, err
	}
	u, _ := updates.Wrap(inner)
	return &Index{inner: inner, upd: u}, nil
}

// OpenSnapshot restores a DB from a snapshot state, resuming with all
// adaptation earned so far. Single and Shared concurrency modes are
// supported; a snapshot holds one contiguous column, so re-sharding it
// fails with ErrSnapshotUnsupported (open a fresh sharded DB from the
// materialized values instead).
func OpenSnapshot(st SnapshotState, algorithm string, opts ...Option) (*DB, error) {
	cfg := applyOptions(opts)
	if cfg.conc.kind == concSharded {
		return nil, fmt.Errorf("crackdb: restoring into a sharded database: %w", ErrSnapshotUnsupported)
	}
	ix, err := Restore(st, algorithm, opts...)
	if err != nil {
		return nil, err
	}
	db := &DB{mode: cfg.conc, rows: len(st.Values)}
	if cfg.conc.kind == concShared {
		db.x = ix.executor()
	} else {
		db.ix = ix
	}
	return db, nil
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot and restores
// an index from it.
//
// Deprecated: use OpenSnapshotFile, which restores a DB in any supported
// concurrency mode.
func LoadSnapshot(path, algorithm string, opts ...Option) (*Index, error) {
	st, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return Restore(st, algorithm, opts...)
}

// OpenSnapshotFile reads a snapshot file written by SaveSnapshot and
// restores a DB from it (see OpenSnapshot).
func OpenSnapshotFile(path, algorithm string, opts ...Option) (*DB, error) {
	st, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenSnapshot(st, algorithm, opts...)
}

// LoadColumn reads an integer column from a file, accepting both the
// newline-delimited text format and the CRKC binary format (sniffed).
func LoadColumn(path string) ([]int64, error) {
	return colload.LoadFile(path)
}

// SaveColumn writes an integer column to a file, as dense binary when
// binaryFormat is set, else as one value per line.
func SaveColumn(path string, values []int64, binaryFormat bool) error {
	return colload.SaveFile(path, values, binaryFormat)
}
