package crackdb

import "repro/internal/exec"

// ShardedIndex is a parallel cracking index: the column is value-range
// partitioned into shards, each an independent adaptive index behind its
// own executor, and queries fan out to the intersected shards on a bounded
// worker pool (single-shard queries run inline). It is safe for concurrent
// use and addresses the paper's §6 "distribution" direction at
// single-process scale: physical reorganization never crosses a shard
// boundary, and within a shard converged queries run in parallel under a
// shared lock.
type ShardedIndex struct {
	s *exec.Sharded
}

// NewSharded builds a sharded index over values with k value-range shards,
// each running the given algorithm.
func NewSharded(values []int64, algorithm string, k int, opts ...Option) (*ShardedIndex, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := exec.NewSharded(values, algorithm, k, cfg.core)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{s: s}, nil
}

// Query returns the values in [lo, hi) as an owned slice, cracking the
// intersected shards in parallel.
func (ix *ShardedIndex) Query(lo, hi int64) []int64 { return ix.s.Query(lo, hi) }

// QueryBatch answers many ranges, returning one owned slice per range in
// input order; each intersected shard answers its whole sub-batch under a
// single executor batch, and shard sub-batches run in parallel.
func (ix *ShardedIndex) QueryBatch(ranges []QueryRange) [][]int64 { return ix.s.QueryBatch(ranges) }

// QueryWhere answers a predicate.
func (ix *ShardedIndex) QueryWhere(p Predicate) []int64 {
	if p.Empty() {
		return nil
	}
	lo, hi := p.Bounds()
	return ix.s.Query(lo, hi)
}

// Name identifies the configuration (e.g. "sharded-8(dd1r)").
func (ix *ShardedIndex) Name() string { return ix.s.Name() }

// NumShards returns the shard count.
func (ix *ShardedIndex) NumShards() int { return ix.s.NumShards() }

// Stats aggregates physical-cost counters across shards.
func (ix *ShardedIndex) Stats() Stats { return ix.s.Stats() }
