package crackdb

import "repro/internal/exec"

// ShardedIndex is a parallel cracking index: the column is value-range
// partitioned into shards, each an independent adaptive index behind its
// own executor, and queries fan out to the intersected shards on a bounded
// worker pool (single-shard queries run inline). It is safe for concurrent
// use and addresses the paper's §6 "distribution" direction at
// single-process scale: physical reorganization never crosses a shard
// boundary, and within a shard converged queries run in parallel under a
// shared lock.
//
// Deprecated: open the DB with WithConcurrency(Sharded(k)) instead;
// DB.Query adds predicates, context cancellation and value-routed
// updates.
type ShardedIndex struct {
	s *exec.Sharded
}

// NewSharded builds a sharded index over values with k value-range shards,
// each running the given algorithm.
//
// Deprecated: use Open with WithConcurrency(Sharded(k)).
func NewSharded(values []int64, algorithm string, k int, opts ...Option) (*ShardedIndex, error) {
	cfg := applyOptions(opts)
	s, err := exec.NewSharded(values, algorithm, k, cfg.core)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{s: s}, nil
}

// Query returns the values in [lo, hi) as an owned slice, cracking the
// intersected shards in parallel.
func (ix *ShardedIndex) Query(lo, hi int64) []int64 { return ix.s.Query(lo, hi) }

// QueryBatch answers many ranges, returning one owned slice per range in
// input order; each intersected shard answers its whole sub-batch under a
// single executor batch, and shard sub-batches run in parallel.
func (ix *ShardedIndex) QueryBatch(ranges []QueryRange) [][]int64 { return ix.s.QueryBatch(ranges) }

// QueryWhere answers a predicate; multi-range predicates (Or) are
// answered range by range in ascending order. The shim has no column
// vocabulary: column scopes are ignored, and a predicate composed across
// two different columns selects nothing.
//
// Deprecated: open the DB with WithConcurrency(Sharded(k)) and use
// DB.Query, which adds context cancellation and column-aware errors.
func (ix *ShardedIndex) QueryWhere(p Predicate) []int64 {
	if p.conflict != "" {
		return nil
	}
	rs := p.rangeList()
	switch len(rs) {
	case 0:
		return nil
	case 1:
		return ix.s.Query(rs[0][0], rs[0][1])
	}
	var out []int64
	for _, r := range rs {
		out = append(out, ix.s.Query(r[0], r[1])...)
	}
	return out
}

// Name identifies the configuration (e.g. "sharded-8(dd1r)").
func (ix *ShardedIndex) Name() string { return ix.s.Name() }

// NumShards returns the shard count.
func (ix *ShardedIndex) NumShards() int { return ix.s.NumShards() }

// Stats aggregates physical-cost counters across shards.
func (ix *ShardedIndex) Stats() Stats { return ix.s.Stats() }
