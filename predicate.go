package crackdb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/intervals"
)

// Predicate describes a one-attribute range condition in the comparison
// shapes SQL produces, normalized onto the engine's half-open [lo, hi)
// form over integers. The paper's example queries mix strict and
// non-strict bounds (Fig. 1: "A > 10 AND A < 14", "A >= 7 AND A <= 16");
// Predicate is the translation layer.
//
// Predicates compose: And intersects, Or unions (producing a multi-range
// predicate, answered as a batch under the hood), and On scopes the
// condition to a named column for table databases. Predicate is the only
// range vocabulary of the v2 query API — DB.Query, DB.QueryBatch and
// DB.QueryAggregate all consume it. A Predicate is an immutable value;
// every method returns a new one.
type Predicate struct {
	lo, hi int64
	col    string
	// conflict records an illegal composition (And/Or of predicates
	// scoped to different columns). Instead of silently answering against
	// the wrong column, DB queries then fail with ErrUnknownColumn at
	// resolve time, and the v1 QueryWhere shims (no error channel) select
	// nothing.
	conflict string
	// set holds the disjoint ranges of a multi-range predicate (built by
	// Or). nil for the common single-range form; when non-nil it has at
	// least two intervals and lo/hi are unused.
	set *intervals.Set
}

// Between returns a predicate for lo <= v AND v <= hi (both inclusive).
func Between(lo, hi int64) Predicate {
	return Predicate{lo: lo, hi: incSat(hi)}
}

// Range returns a predicate for the half-open lo <= v AND v < hi, the
// engine's native form.
func Range(lo, hi int64) Predicate { return Predicate{lo: lo, hi: hi} }

// Less returns a predicate for v < x.
func Less(x int64) Predicate { return Predicate{lo: math.MinInt64, hi: x} }

// LessEq returns a predicate for v <= x.
func LessEq(x int64) Predicate { return Predicate{lo: math.MinInt64, hi: incSat(x)} }

// Greater returns a predicate for v > x.
func Greater(x int64) Predicate { return Predicate{lo: incSat(x), hi: math.MaxInt64} }

// GreaterEq returns a predicate for v >= x.
func GreaterEq(x int64) Predicate { return Predicate{lo: x, hi: math.MaxInt64} }

// Eq returns a predicate for v == x.
func Eq(x int64) Predicate { return Predicate{lo: x, hi: incSat(x)} }

// On scopes the predicate to the named column of a table database opened
// with OpenTable. Single-column databases need no column; a table with
// exactly one column uses it by default.
func (p Predicate) On(col string) Predicate {
	p.col = col
	return p
}

// Column returns the column the predicate is scoped to ("" when unscoped).
func (p Predicate) Column() string { return p.col }

// singleRange returns the predicate's sole half-open range without
// allocating — the fast path of the common non-Or predicate; ok is false
// for multi-range predicates, which need rangeList. The range may be
// empty (lo >= hi). Conflicted predicates report an empty range: they
// match nothing anywhere (queries reject them at column-resolve time,
// before consulting ranges).
func (p Predicate) singleRange() (lo, hi int64, ok bool) {
	if p.conflict != "" {
		return 0, 0, true
	}
	if p.set != nil {
		return 0, 0, false
	}
	return p.lo, p.hi, true
}

// rangeList returns the predicate's disjoint half-open ranges in
// increasing order (nil when empty, including cross-column conflicts,
// which can never match).
func (p Predicate) rangeList() [][2]int64 {
	if p.conflict != "" {
		return nil
	}
	if p.set != nil {
		out := make([][2]int64, 0, p.set.Len())
		p.set.Each(func(lo, hi int64) bool {
			out = append(out, [2]int64{lo, hi})
			return true
		})
		return out
	}
	if p.lo >= p.hi {
		return nil
	}
	return [][2]int64{{p.lo, p.hi}}
}

// fromRanges builds the normal form for a range list: empty and
// single-range predicates collapse to the simple representation.
func fromRanges(col string, rs [][2]int64) Predicate {
	switch len(rs) {
	case 0:
		return Predicate{col: col}
	case 1:
		return Predicate{col: col, lo: rs[0][0], hi: rs[0][1]}
	}
	s := &intervals.Set{}
	for _, r := range rs {
		s.Add(r[0], r[1])
	}
	if s.Len() == 1 {
		var lo, hi int64
		s.Each(func(a, b int64) bool { lo, hi = a, b; return true })
		return Predicate{col: col, lo: lo, hi: hi}
	}
	return Predicate{col: col, set: s}
}

// mergeCol picks the column for a composed predicate: whichever side is
// scoped wins. Two sides scoped to *different* columns is unsupported —
// a Predicate describes one attribute; cross-column conjunction is query
// planning, not predicate algebra — and poisons the result: conflict
// carries both names and the query fails at resolve time rather than
// silently answering against one of the columns.
func mergeCol(p, q Predicate) (col, conflict string) {
	if p.conflict != "" {
		return "", p.conflict
	}
	if q.conflict != "" {
		return "", q.conflict
	}
	if p.col != "" && q.col != "" && p.col != q.col {
		return "", fmt.Sprintf("%s and %s", p.col, q.col)
	}
	if p.col != "" {
		return p.col, ""
	}
	return q.col, ""
}

// And intersects two predicates: v must satisfy both. Both operands must
// be scoped to the same column (or unscoped); composing across columns
// yields a predicate every query rejects.
func (p Predicate) And(q Predicate) Predicate {
	col, conflict := mergeCol(p, q)
	if p.set == nil && q.set == nil {
		lo, hi := p.lo, p.hi
		if q.lo > lo {
			lo = q.lo
		}
		if q.hi < hi {
			hi = q.hi
		}
		return Predicate{col: col, conflict: conflict, lo: lo, hi: hi}
	}
	// General case: intersect the two sorted disjoint range lists.
	a, b := p.rangeList(), q.rangeList()
	var out [][2]int64
	for i, j := 0, 0; i < len(a) && j < len(b); {
		lo, hi := max(a[i][0], b[j][0]), min(a[i][1], b[j][1])
		if lo < hi {
			out = append(out, [2]int64{lo, hi})
		}
		if a[i][1] < b[j][1] {
			i++
		} else {
			j++
		}
	}
	res := fromRanges(col, out)
	res.conflict = conflict
	return res
}

// Or unions two predicates: v may satisfy either. Overlapping and
// adjacent ranges coalesce; a disjoint union yields a multi-range
// predicate, which DB.Query answers as a batch under the hood and
// returns in ascending range order. Both operands must be scoped to the
// same column (or unscoped); composing across columns yields a predicate
// every query rejects.
func (p Predicate) Or(q Predicate) Predicate {
	col, conflict := mergeCol(p, q)
	res := fromRanges(col, append(p.rangeList(), q.rangeList()...))
	res.conflict = conflict
	return res
}

// Bounds returns the normalized half-open [lo, hi) range; for a
// multi-range predicate it is the enclosing envelope, and for an empty
// (or cross-column conflicted) predicate the empty range [0, 0).
func (p Predicate) Bounds() (lo, hi int64) {
	if p.conflict != "" {
		return 0, 0
	}
	if p.set != nil {
		rs := p.rangeList()
		return rs[0][0], rs[len(rs)-1][1]
	}
	return p.lo, p.hi
}

// Empty reports whether no value can satisfy the predicate — including a
// predicate composed across two different columns, which matches nothing
// anywhere.
func (p Predicate) Empty() bool {
	if p.conflict != "" {
		return true
	}
	if p.set != nil {
		return false // multi-range form always holds >= 2 nonempty ranges
	}
	return p.lo >= p.hi
}

// Matches reports whether value v satisfies the predicate. A predicate
// composed across different columns matches nothing, mirroring the
// QueryWhere shims.
func (p Predicate) Matches(v int64) bool {
	if p.conflict != "" {
		return false
	}
	for _, r := range p.rangeList() {
		if r[0] <= v && v < r[1] {
			return true
		}
	}
	return false
}

// String renders the predicate for diagnostics.
func (p Predicate) String() string {
	name := "v"
	if p.col != "" {
		name = p.col
	}
	if p.Empty() {
		return "false"
	}
	rs := p.rangeList()
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = rangeString(name, r[0], r[1])
	}
	return strings.Join(parts, " OR ")
}

func rangeString(name string, lo, hi int64) string {
	switch {
	case lo == math.MinInt64 && hi == math.MaxInt64:
		return "true"
	case lo == math.MinInt64:
		return fmt.Sprintf("%s < %d", name, hi)
	case hi == math.MaxInt64:
		return fmt.Sprintf("%s >= %d", name, lo)
	default:
		return fmt.Sprintf("%d <= %s < %d", lo, name, hi)
	}
}

// incSat increments with saturation at the top of the int64 domain, so
// LessEq(MaxInt64) means "everything" rather than wrapping around.
func incSat(x int64) int64 {
	if x == math.MaxInt64 {
		return x
	}
	return x + 1
}

// QueryWhere answers the predicate through the index, adapting it as a
// side effect. Multi-range predicates are answered range by range and
// returned materialized in ascending range order. The shim has no column
// vocabulary: column scopes are ignored, and a predicate composed across
// two different columns selects nothing.
//
// Deprecated: open a DB with Open and use DB.Query, which adds context
// cancellation, column-aware errors, and serves every concurrency mode.
func (ix *Index) QueryWhere(p Predicate) Result {
	if p.conflict != "" {
		return Result{}
	}
	rs := p.rangeList()
	switch len(rs) {
	case 0:
		return Result{}
	case 1:
		return ix.Query(rs[0][0], rs[0][1])
	}
	var out []int64
	for _, r := range rs {
		res := ix.Query(r[0], r[1])
		out = res.Materialize(out)
	}
	return NewResult(out)
}
