package crackdb

import (
	"fmt"
	"math"
)

// Predicate describes a one-attribute range condition in the four
// comparison shapes SQL produces, normalized onto the engine's half-open
// [lo, hi) form over integers. The paper's example queries mix strict and
// non-strict bounds (Fig. 1: "A > 10 AND A < 14", "A >= 7 AND A <= 16");
// Predicate is the translation layer.
type Predicate struct {
	lo, hi int64
}

// Between returns a predicate for lo <= v AND v <= hi (both inclusive).
func Between(lo, hi int64) Predicate {
	return Predicate{lo: lo, hi: incSat(hi)}
}

// Range returns a predicate for the half-open lo <= v AND v < hi, the
// engine's native form.
func Range(lo, hi int64) Predicate { return Predicate{lo: lo, hi: hi} }

// Less returns a predicate for v < x.
func Less(x int64) Predicate { return Predicate{lo: math.MinInt64, hi: x} }

// LessEq returns a predicate for v <= x.
func LessEq(x int64) Predicate { return Predicate{lo: math.MinInt64, hi: incSat(x)} }

// Greater returns a predicate for v > x.
func Greater(x int64) Predicate { return Predicate{lo: incSat(x), hi: math.MaxInt64} }

// GreaterEq returns a predicate for v >= x.
func GreaterEq(x int64) Predicate { return Predicate{lo: x, hi: math.MaxInt64} }

// Eq returns a predicate for v == x.
func Eq(x int64) Predicate { return Predicate{lo: x, hi: incSat(x)} }

// And intersects two predicates: v must satisfy both.
func (p Predicate) And(q Predicate) Predicate {
	lo, hi := p.lo, p.hi
	if q.lo > lo {
		lo = q.lo
	}
	if q.hi < hi {
		hi = q.hi
	}
	return Predicate{lo: lo, hi: hi}
}

// Bounds returns the normalized half-open [lo, hi) range.
func (p Predicate) Bounds() (lo, hi int64) { return p.lo, p.hi }

// Empty reports whether no value can satisfy the predicate.
func (p Predicate) Empty() bool { return p.lo >= p.hi }

// String renders the predicate for diagnostics.
func (p Predicate) String() string {
	if p.Empty() {
		return "false"
	}
	switch {
	case p.lo == math.MinInt64 && p.hi == math.MaxInt64:
		return "true"
	case p.lo == math.MinInt64:
		return fmt.Sprintf("v < %d", p.hi)
	case p.hi == math.MaxInt64:
		return fmt.Sprintf("v >= %d", p.lo)
	default:
		return fmt.Sprintf("%d <= v < %d", p.lo, p.hi)
	}
}

// incSat increments with saturation at the top of the int64 domain, so
// LessEq(MaxInt64) means "everything" rather than wrapping around.
func incSat(x int64) int64 {
	if x == math.MaxInt64 {
		return x
	}
	return x + 1
}

// QueryWhere answers the predicate through the index, adapting it as a
// side effect.
func (ix *Index) QueryWhere(p Predicate) Result {
	if p.Empty() {
		return Result{}
	}
	return ix.Query(p.lo, p.hi)
}
