package crackdb_test

import (
	"context"
	"math/rand"
	"slices"
	"sync"
	"testing"

	crackdb "repro"
)

// equivHandles opens the same dataset behind every execution mode the DB
// offers, plus the Scan baseline as a cracking-free reference.
func equivHandles(t *testing.T, n int64) map[string]*crackdb.DB {
	t.Helper()
	handles := make(map[string]*crackdb.DB)
	open := func(name, algo string, opts ...crackdb.Option) {
		db, err := crackdb.Open(crackdb.MakeData(n, 51), algo,
			append(opts, crackdb.WithSeed(52))...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		handles[name] = db
	}
	open("single", crackdb.DD1R)
	open("shared", crackdb.MDD1R, crackdb.WithConcurrency(crackdb.Shared))
	open("sharded", crackdb.Crack, crackdb.WithConcurrency(crackdb.Sharded(5)))
	open("scan", crackdb.Scan)
	tbl, err := crackdb.OpenTable(map[string][]int64{"v": crackdb.MakeData(n, 51)},
		crackdb.PMDD1R, crackdb.WithSeed(52), crackdb.WithConcurrency(crackdb.Shared))
	if err != nil {
		t.Fatal(err)
	}
	handles["table"] = tbl
	return handles
}

// randomPredicate builds a random predicate over the domain [0, n) and
// returns, alongside it, the sorted distinct values of [0, n) it selects —
// the closed-form oracle MakeData's permutation affords.
func randomPredicate(rng *rand.Rand, n int64) (crackdb.Predicate, []int64) {
	numRanges := 1
	switch rng.Intn(3) {
	case 1:
		numRanges = 2
	case 2:
		numRanges = 3
	}
	p := crackdb.Predicate{}
	var bounds [][2]int64
	for i := 0; i < numRanges; i++ {
		lo := rng.Int63n(n + 100) // may poke past the domain edge
		width := 1 + rng.Int63n(200)
		q := crackdb.Range(lo, lo+width)
		if rng.Intn(4) == 0 {
			q = crackdb.Between(lo, lo+width) // inclusive flavor
			width++
		}
		if i == 0 {
			p = q
		} else {
			p = p.Or(q)
		}
		bounds = append(bounds, [2]int64{lo, lo + width})
	}
	hit := make(map[int64]bool)
	for _, b := range bounds {
		for v := b[0]; v < b[1] && v < n; v++ {
			if v >= 0 {
				hit[v] = true
			}
		}
	}
	want := make([]int64, 0, len(hit))
	for v := range hit {
		want = append(want, v)
	}
	slices.Sort(want)
	return p, want
}

// TestCrossModeEquivalence is the cross-mode property test: the same
// predicate workload must produce identical answers through Single,
// Shared, Sharded and Table execution and the Scan baseline — cracking,
// sharding and locking strategies may reorganize differently, but never
// answer differently.
func TestCrossModeEquivalence(t *testing.T) {
	const n = 30_000
	const queries = 120
	ctx := context.Background()
	handles := equivHandles(t, n)
	rng := rand.New(rand.NewSource(53))
	for q := 0; q < queries; q++ {
		p, want := randomPredicate(rng, n)
		for name, db := range handles {
			res, err := db.Query(ctx, p)
			if err != nil {
				t.Fatalf("q%d %s on %s: %v", q, p, name, err)
			}
			got := res.Owned()
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("q%d %s on %s: %d values, want %d (first diff around %v)",
					q, p, name, len(got), len(want), firstDiff(got, want))
			}
			agg, err := db.QueryAggregate(ctx, p)
			if err != nil || agg.Count != len(want) {
				t.Fatalf("q%d %s on %s: aggregate count=%d err=%v", q, p, name, agg.Count, err)
			}
		}
	}
}

// TestCrossModeEquivalenceConcurrent replays the same property under
// concurrent traffic on the goroutine-safe modes; with -race (CI runs the
// facade package under the race detector) it doubles as the data-race
// variant of the equivalence suite.
func TestCrossModeEquivalenceConcurrent(t *testing.T) {
	const n = 20_000
	ctx := context.Background()
	handles := equivHandles(t, n)
	delete(handles, "single") // not goroutine-safe by contract
	delete(handles, "scan")
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(60 + int64(g)))
			for q := 0; q < 40; q++ {
				p, want := randomPredicate(rng, n)
				for name, db := range handles {
					res, err := db.Query(ctx, p)
					if err != nil {
						errs <- name + ": " + err.Error()
						return
					}
					got := res.Owned()
					slices.Sort(got)
					if !slices.Equal(got, want) {
						errs <- name + ": wrong answer for " + p.String()
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// nonzeroPieces reads the DB's piece-size profile with zero-size edge
// pieces dropped: snapshotting clamps the informationless domain-edge
// cracks (positions 0/len), so profiles compare modulo empty pieces.
func nonzeroPieces(t *testing.T, db *crackdb.DB) []int {
	t.Helper()
	sizes, err := db.PieceSizes()
	if err != nil {
		t.Fatal(err)
	}
	out := sizes[:0:0]
	for _, s := range sizes {
		if s > 0 {
			out = append(out, s)
		}
	}
	return out
}

// TestRestoreEquivalence is the restore-equivalence property test: for
// each algorithm and each source mode, snapshot mid-workload, restore
// into every target layout (same mode, cross mode, and a re-sharded
// count), and require
//
//   - the restored piece-size profile to equal the source's exactly for
//     layout-preserving restores (Single/Shared/Sharded(k) all flatten to
//     the same storage order), and to never lose refinement for
//     re-sharded ones;
//   - the remainder of the workload to produce answers identical to the
//     uninterrupted DB's on every restored handle;
//   - for the deterministic algorithm (crack) restored into the same
//     mode, the final piece profile after the full workload to be
//     byte-identical to the uninterrupted DB's — the interruption is
//     physically invisible.
func TestRestoreEquivalence(t *testing.T) {
	const n = 20_000
	const warmQ, contQ = 60, 60
	ctx := context.Background()

	sources := []struct {
		name string
		mode crackdb.Concurrency
	}{
		{"single", crackdb.Single},
		{"shared", crackdb.Shared},
		{"sharded-5", crackdb.Sharded(5)},
	}
	targets := []struct {
		name string
		mode crackdb.Concurrency
	}{
		{"single", crackdb.Single},
		{"shared", crackdb.Shared},
		{"sharded-5", crackdb.Sharded(5)},
		{"sharded-3", crackdb.Sharded(3)}, // re-cut along new bounds
		{"sharded-8", crackdb.Sharded(8)},
	}
	for _, algo := range []string{crackdb.Crack, crackdb.DD1R, crackdb.MDD1R} {
		for _, src := range sources {
			t.Run(algo+"/"+src.name, func(t *testing.T) {
				open := func(mode crackdb.Concurrency) *crackdb.DB {
					db, err := crackdb.Open(crackdb.MakeData(n, 81), algo,
						crackdb.WithSeed(82), crackdb.WithConcurrency(mode))
					if err != nil {
						t.Fatal(err)
					}
					return db
				}
				db, twin := open(src.mode), open(src.mode)
				rng := rand.New(rand.NewSource(83))
				warm := make([]crackdb.Predicate, warmQ)
				for i := range warm {
					warm[i], _ = randomPredicate(rng, n)
				}
				cont := make([]crackdb.Predicate, contQ)
				wants := make([][]int64, contQ)
				for i := range cont {
					cont[i], wants[i] = randomPredicate(rng, n)
				}
				run := func(h *crackdb.DB, ps []crackdb.Predicate) {
					for _, p := range ps {
						if _, err := h.Query(ctx, p); err != nil {
							t.Fatal(err)
						}
					}
				}
				run(db, warm)
				run(twin, warm)

				snap, err := db.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				profAtSnap := nonzeroPieces(t, db)

				for _, tgt := range targets {
					restored, err := crackdb.OpenSnapshot(snap, algo,
						crackdb.WithSeed(82), crackdb.WithConcurrency(tgt.mode))
					if err != nil {
						t.Fatalf("->%s: %v", tgt.name, err)
					}
					prof := nonzeroPieces(t, restored)
					sameLayout := tgt.name == src.name || tgt.mode == crackdb.Single || tgt.mode == crackdb.Shared
					if sameLayout {
						// Flattening shards preserves the storage-order
						// profile exactly (boundaries were already cuts).
						if !slices.Equal(prof, profAtSnap) {
							t.Fatalf("->%s: piece profile %v, want %v", tgt.name, prof, profAtSnap)
						}
					} else if len(prof) < len(profAtSnap) {
						t.Fatalf("->%s: %d pieces after re-shard, source had %d; refinement lost",
							tgt.name, len(prof), len(profAtSnap))
					}
					// The continuation answers byte-identically to the
					// uninterrupted twin (both checked against the oracle).
					for i, p := range cont {
						res, err := restored.Query(ctx, p)
						if err != nil {
							t.Fatalf("->%s: cont %d: %v", tgt.name, i, err)
						}
						got := res.Owned()
						slices.Sort(got)
						if !slices.Equal(got, wants[i]) {
							t.Fatalf("->%s: cont %d (%s): %d values, want %d",
								tgt.name, i, p, len(got), len(wants[i]))
						}
					}
					// Deterministic continuation: crack restored into its
					// own layout must end physically identical to the twin.
					if algo == crackdb.Crack && tgt.name == src.name {
						run(twin, cont)
						twinProf := nonzeroPieces(t, twin)
						finalProf := nonzeroPieces(t, restored)
						if !slices.Equal(finalProf, twinProf) {
							t.Fatalf("->%s: final profile diverged from uninterrupted twin:\n%v\nvs\n%v",
								tgt.name, finalProf, twinProf)
						}
					}
				}
			})
		}
	}
}

// TestRestoreEquivalenceTable extends the restore-equivalence property
// to table databases: snapshot a table mid-workload — pending writes and
// all — and restore the manifest into every table layout (Single,
// Shared, Sharded(k), and a re-sharded count). Every restored handle
// must answer the remainder of the workload identically to an
// uninterrupted twin, per column, and layout-preserving restores must
// keep each column's refinement.
func TestRestoreEquivalenceTable(t *testing.T) {
	const n = 20_000
	const warmQ, contQ = 40, 40
	ctx := context.Background()
	cols := []string{"a", "b"}

	sources := []struct {
		name string
		mode crackdb.Concurrency
	}{
		{"single", crackdb.Single},
		{"shared", crackdb.Shared},
		{"sharded-4", crackdb.Sharded(4)},
	}
	targets := []struct {
		name string
		mode crackdb.Concurrency
	}{
		{"single", crackdb.Single},
		{"shared", crackdb.Shared},
		{"sharded-4", crackdb.Sharded(4)},
		{"sharded-2", crackdb.Sharded(2)}, // re-cut along new bounds
	}
	for _, src := range sources {
		t.Run(src.name, func(t *testing.T) {
			open := func(mode crackdb.Concurrency) *crackdb.DB {
				db, err := crackdb.OpenTable(map[string][]int64{
					"a": crackdb.MakeData(n, 81),
					"b": crackdb.MakeData(n, 91),
				}, crackdb.DD1R, crackdb.WithSeed(82), crackdb.WithConcurrency(mode))
				if err != nil {
					t.Fatal(err)
				}
				return db
			}
			db, twin := open(src.mode), open(src.mode)

			rng := rand.New(rand.NewSource(83))
			type colPred struct {
				col string
				p   crackdb.Predicate
			}
			mkQueries := func(k int) []colPred {
				qs := make([]colPred, k)
				for i := range qs {
					p, _ := randomPredicate(rng, n)
					qs[i] = colPred{col: cols[i%len(cols)], p: p.On(cols[i%len(cols)])}
				}
				return qs
			}
			warm, cont := mkQueries(warmQ), mkQueries(contQ)
			run := func(h *crackdb.DB, qs []colPred) [][]int64 {
				out := make([][]int64, len(qs))
				for i, q := range qs {
					res, err := h.Query(ctx, q.p)
					if err != nil {
						t.Fatal(err)
					}
					out[i] = res.Owned()
					slices.Sort(out[i])
				}
				return out
			}
			run(db, warm)
			run(twin, warm)

			// Writes on both handles, left pending so the capture carries
			// them: inserts beyond the warm predicates' reach plus in-domain
			// deletes, on both columns.
			for _, h := range []*crackdb.DB{db, twin} {
				for i := int64(0); i < 10; i++ {
					if err := h.InsertOn("a", n+50_000+i); err != nil {
						t.Fatal(err)
					}
					if err := h.DeleteOn("b", i*7); err != nil {
						t.Fatal(err)
					}
				}
			}
			if db.PendingUpdates() == 0 {
				t.Fatal("writes did not stay pending; the capture would not exercise pending state")
			}

			snap, err := db.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !snap.IsTable() {
				t.Fatalf("table DB snapshot IsTable() = false")
			}
			if snap.Pending() == 0 {
				t.Fatal("manifest lost the pending writes")
			}
			profAtSnap := nonzeroPieces(t, db)

			// The twin runs the continuation once; every restored handle
			// must match it answer for answer.
			wants := run(twin, cont)

			for _, tgt := range targets {
				restored, err := crackdb.OpenSnapshot(snap, crackdb.DD1R,
					crackdb.WithSeed(82), crackdb.WithConcurrency(tgt.mode))
				if err != nil {
					t.Fatalf("->%s: %v", tgt.name, err)
				}
				if got := restored.Rows(); got != db.Rows() {
					t.Fatalf("->%s: %d rows, want %d", tgt.name, got, db.Rows())
				}
				prof := nonzeroPieces(t, restored)
				if len(prof) < len(profAtSnap) {
					t.Fatalf("->%s: %d pieces restored, source had %d; refinement lost",
						tgt.name, len(prof), len(profAtSnap))
				}
				got := run(restored, cont)
				for i := range cont {
					if !slices.Equal(got[i], wants[i]) {
						t.Fatalf("->%s: cont %d (%s on %s): %d values, want %d (first diff %v)",
							tgt.name, i, cont[i].p, cont[i].col, len(got[i]), len(wants[i]),
							firstDiff(got[i], wants[i]))
					}
				}
				// The restored handle captures and restores again — the
				// manifest round-trips through a second generation.
				if resnap, err := restored.Snapshot(); err != nil {
					t.Fatalf("->%s: re-snapshot: %v", tgt.name, err)
				} else if !resnap.IsTable() || resnap.Rows() != snap.Rows() {
					t.Fatalf("->%s: re-snapshot rows=%d table=%v, want rows=%d table",
						tgt.name, resnap.Rows(), resnap.IsTable(), snap.Rows())
				}
			}
		})
	}
}

func firstDiff(a, b []int64) [2]int64 {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return [2]int64{a[i], b[i]}
		}
	}
	return [2]int64{-1, -1}
}
