package crackdb_test

import (
	"fmt"

	crackdb "repro"
)

// Building an index and querying it: there is no build step; the column
// adapts as queries arrive.
func ExampleNew() {
	data := crackdb.MakeData(1000, 42) // shuffled [0, 1000)
	ix, err := crackdb.New(data, crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}
	res := ix.Query(100, 110)
	fmt.Println("rows:", res.Count(), "sum:", res.Sum())
	// Output:
	// rows: 10 sum: 1045
}

// Results can be iterated, counted, summed, or copied out; they remain
// valid until the next query on the same index.
func ExampleIndex_Query() {
	ix, _ := crackdb.New([]int64{13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6}, crackdb.Crack)
	res := ix.Query(10, 14) // the paper's Fig. 1 Q1: 10 < A < 14 over ints
	vals := res.Materialize(nil)
	sum := int64(0)
	for _, v := range vals {
		sum += v
	}
	fmt.Println("qualifying:", res.Count(), "sum:", sum)
	// Output:
	// qualifying: 3 sum: 36
}

// SQL-shaped predicates normalize onto the engine's half-open ranges.
func ExamplePredicate() {
	q1 := crackdb.Greater(10).And(crackdb.Less(14))
	fmt.Println(q1)
	lo, hi := q1.Bounds()
	fmt.Println(lo, hi)
	// Output:
	// 11 <= v < 14
	// 11 14
}

// Updates queue as pending and merge into the column exactly when a query
// touches their range (Ripple merge).
func ExampleIndex_Insert() {
	ix, _ := crackdb.New(crackdb.MakeData(1000, 1), crackdb.Crack)
	ix.Query(0, 500) // establish some cracks
	_ = ix.Insert(250)
	fmt.Println("pending before:", ix.PendingUpdates())
	res := ix.Query(240, 260)
	fmt.Println("pending after:", ix.PendingUpdates(), "rows:", res.Count())
	// Output:
	// pending before: 1
	// pending after: 0 rows: 21
}

// Workload generators reproduce the paper's query patterns (Fig. 7).
func ExampleNewWorkload() {
	gen, _ := crackdb.NewWorkload("sequential", crackdb.WorkloadParams{N: 1000, Q: 10, S: 10, Seed: 1})
	for i := 0; i < 3; i++ {
		lo, hi := gen.Next()
		fmt.Println(lo, hi)
	}
	// Output:
	// 0 10
	// 99 109
	// 198 208
}

// Multi-column tables crack per attribute and reconstruct projections on
// demand.
func ExampleNewTable() {
	a := []int64{5, 3, 1, 4, 2, 0}
	b := []int64{50, 30, 10, 40, 20, 0}
	tbl, _ := crackdb.NewTable(map[string][]int64{"a": a, "b": b}, crackdb.Crack)
	proj, _ := tbl.SelectProjectSideways("a", "b", 2, 5)
	sum := int64(0)
	for _, v := range proj {
		sum += v
	}
	fmt.Println("projected values:", len(proj), "sum:", sum)
	// Output:
	// projected values: 3 sum: 90
}
