package crackdb_test

import (
	"context"
	"fmt"

	crackdb "repro"
)

// Opening a database and querying it: there is no build step; the column
// adapts as queries arrive. Concurrency is a construction option, not a
// different API.
func ExampleOpen() {
	data := crackdb.MakeData(1000, 42) // shuffled [0, 1000)
	db, err := crackdb.Open(data, crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}
	res, err := db.Query(context.Background(), crackdb.Range(100, 110))
	if err != nil {
		panic(err)
	}
	fmt.Println("rows:", res.Count(), "sum:", res.Sum())
	// Output:
	// rows: 10 sum: 1045
}

// The same handle, code and predicates serve concurrent traffic when the
// DB is opened with a concurrency mode; results are then owned slices,
// safe to retain.
func ExampleWithConcurrency() {
	db, err := crackdb.Open(crackdb.MakeData(1000, 42), crackdb.DD1R,
		crackdb.WithSeed(7), crackdb.WithConcurrency(crackdb.Sharded(4)))
	if err != nil {
		panic(err)
	}
	agg, err := db.QueryAggregate(context.Background(), crackdb.LessEq(99))
	if err != nil {
		panic(err)
	}
	fmt.Println("mode:", db.Mode(), "count:", agg.Count, "sum:", agg.Sum)
	// Output:
	// mode: sharded-4 count: 100 sum: 4950
}

// SQL-shaped predicates normalize onto the engine's half-open ranges and
// compose with And/Or; disjoint unions become multi-range predicates,
// answered as a batch under the hood.
func ExamplePredicate() {
	q1 := crackdb.Greater(10).And(crackdb.Less(14))
	fmt.Println(q1)
	lo, hi := q1.Bounds()
	fmt.Println(lo, hi)
	fmt.Println(crackdb.Eq(3).Or(crackdb.Between(7, 9)))
	// Output:
	// 11 <= v < 14
	// 11 14
	// 3 <= v < 4 OR 7 <= v < 10
}

// Results can be iterated, counted, summed, or copied out; Single-mode
// results are zero-copy views valid until the next query on the handle.
func ExampleDB_Query() {
	db, _ := crackdb.Open([]int64{13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6}, crackdb.Crack)
	// The paper's Fig. 1 Q1: 10 < A < 14 over ints.
	res, _ := db.Query(context.Background(), crackdb.Greater(10).And(crackdb.Less(14)))
	vals := res.Owned()
	sum := int64(0)
	for _, v := range vals {
		sum += v
	}
	fmt.Println("qualifying:", res.Count(), "sum:", sum)
	// Output:
	// qualifying: 3 sum: 36
}

// Updates queue as pending and merge into the column exactly when a query
// touches their range (Ripple merge) — in every concurrency mode.
func ExampleDB_Insert() {
	ctx := context.Background()
	db, _ := crackdb.Open(crackdb.MakeData(1000, 1), crackdb.Crack)
	db.Query(ctx, crackdb.Range(0, 500)) // establish some cracks
	_ = db.Insert(250)
	fmt.Println("pending before:", db.PendingUpdates())
	res, _ := db.Query(ctx, crackdb.Range(240, 260))
	fmt.Println("pending after:", db.PendingUpdates(), "rows:", res.Count())
	// Output:
	// pending before: 1
	// pending after: 0 rows: 21
}

// Multi-column tables crack per attribute; predicates scope to a column
// with On.
func ExampleOpenTable() {
	a := []int64{5, 3, 1, 4, 2, 0}
	b := []int64{50, 30, 10, 40, 20, 0}
	db, _ := crackdb.OpenTable(map[string][]int64{"a": a, "b": b}, crackdb.Crack)
	agg, _ := db.QueryAggregate(context.Background(), crackdb.Range(20, 50).On("b"))
	fmt.Println("matching b values:", agg.Count, "sum:", agg.Sum)
	// Output:
	// matching b values: 3 sum: 90
}

// Workload generators reproduce the paper's query patterns (Fig. 7).
func ExampleNewWorkload() {
	gen, _ := crackdb.NewWorkload("sequential", crackdb.WorkloadParams{N: 1000, Q: 10, S: 10, Seed: 1})
	for i := 0; i < 3; i++ {
		lo, hi := gen.Next()
		fmt.Println(lo, hi)
	}
	// Output:
	// 0 10
	// 99 109
	// 198 208
}

// The v1 constructors remain as deprecated shims over the same core.
func ExampleNew() {
	ix, err := crackdb.New(crackdb.MakeData(1000, 42), crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}
	res := ix.Query(100, 110)
	fmt.Println("rows:", res.Count(), "sum:", res.Sum())
	// Output:
	// rows: 10 sum: 1045
}

// Latency-sensitive callers reuse a buffer across queries: QueryAppend
// appends into caller-owned memory, and once the query's bounds are
// converged cracks, the whole path runs without heap allocations.
func ExampleDB_QueryAppend() {
	db, err := crackdb.Open(crackdb.MakeData(1000, 42), crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}
	buf := make([]int64, 0, 64)
	for _, p := range []crackdb.Predicate{crackdb.Range(100, 110), crackdb.Range(500, 520)} {
		buf = buf[:0] // reuse the same backing array every query
		buf, err = db.QueryAppend(context.Background(), p, buf)
		if err != nil {
			panic(err)
		}
		fmt.Println(p, "->", len(buf), "rows")
	}
	// Output:
	// 100 <= v < 110 -> 10 rows
	// 500 <= v < 520 -> 20 rows
}

// A whole batch materializes into one reusable BatchBuffer arena: each
// result is a subslice of the arena, valid until the buffer's next use.
// With a warmed buffer, a converged batch runs allocation-free.
func ExampleDB_QueryBatchAppend() {
	db, err := crackdb.Open(crackdb.MakeData(1000, 42), crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}
	ps := []crackdb.Predicate{
		crackdb.Range(0, 5),
		crackdb.Between(990, 999),
	}
	var bb crackdb.BatchBuffer // zero value is ready; reuse it across batches
	for round := 0; round < 2; round++ {
		results, err := db.QueryBatchAppend(context.Background(), ps, &bb)
		if err != nil {
			panic(err)
		}
		fmt.Print("round ", round)
		for i, vals := range results {
			fmt.Print(" q", i, "=", len(vals), " rows")
		}
		fmt.Println()
	}
	// Output:
	// round 0 q0=5 rows q1=10 rows
	// round 1 q0=5 rows q1=10 rows
}

// BatchBuffer owns every reusable piece of a batched query: the range
// scratch, the per-result offsets and the value arena. Retaining a
// result past the buffer's next use requires copying it out.
func ExampleBatchBuffer() {
	db, err := crackdb.Open(crackdb.MakeData(1000, 42), crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}
	var bb crackdb.BatchBuffer
	results, err := db.QueryBatchAppend(context.Background(),
		[]crackdb.Predicate{crackdb.Range(10, 20)}, &bb)
	if err != nil {
		panic(err)
	}
	kept := append([]int64(nil), results[0]...) // copy: results alias bb's arena
	_, err = db.QueryBatchAppend(context.Background(),
		[]crackdb.Predicate{crackdb.Range(700, 800)}, &bb) // invalidates results
	if err != nil {
		panic(err)
	}
	fmt.Println("kept", len(kept), "rows safely")
	// Output:
	// kept 10 rows safely
}
