package column

import (
	"encoding/binary"
	"testing"
)

// decodeVals turns fuzz bytes into a value slice (8 bytes per value).
func decodeVals(data []byte) []int64 {
	n := len(data) / 8
	if n > 4096 {
		n = 4096
	}
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		vals[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vals
}

// FuzzCrackInTwo drives the partition primitive with arbitrary data and
// pivots, asserting the crack invariant and multiset preservation.
func FuzzCrackInTwo(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0}, int64(5))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, data []byte, pivot int64) {
		vals := decodeVals(data)
		before := multiset(vals, 0, len(vals))
		c := New(append([]int64(nil), vals...))
		p := c.CrackInTwo(0, len(vals), pivot)
		if p < 0 || p > len(vals) {
			t.Fatalf("split %d out of range", p)
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				t.Fatal("left side violates crack")
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				t.Fatal("right side violates crack")
			}
		}
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			t.Fatal("multiset changed")
		}
	})
}

// FuzzParallelCrack drives the chunked parallel partition against the
// serial kernel with arbitrary data, pivots and chunk sizes, asserting
// the serial-equivalence contract: identical split position, identical
// per-side multisets. The seed corpus covers the merge phase's hard
// shapes: already-partitioned input (no misplaced runs), inverted input
// (everything misplaced), all-equal-to-pivot, and runs that straddle
// chunk boundaries.
func FuzzParallelCrack(f *testing.F) {
	le := func(vals ...int64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
		}
		return b
	}
	f.Add(le(1, 2, 3, 7, 8, 9), int64(5), uint16(2))       // already partitioned
	f.Add(le(9, 8, 7, 3, 2, 1), int64(5), uint16(2))       // fully inverted
	f.Add(le(4, 4, 4, 4, 4), int64(4), uint16(1))          // all equal to pivot
	f.Add(le(5, 0, 5, 0, 5, 0, 5, 0), int64(3), uint16(3)) // runs straddle chunks
	f.Add(le(), int64(0), uint16(1))                       // empty
	f.Add(le(1), int64(9), uint16(7))                      // single tuple
	f.Fuzz(func(t *testing.T, data []byte, pivot int64, chunkRaw uint16) {
		vals := decodeVals(data)
		chunk := 1 + int(chunkRaw)%512
		serial := append([]int64(nil), vals...)
		wantP, _ := crackInTwoVals(serial, pivot)
		par := append([]int64(nil), vals...)
		gotP, _ := parallelPartitionChunked(par, pivot, chunk)
		if gotP != wantP {
			t.Fatalf("split %d, serial %d (chunk %d)", gotP, wantP, chunk)
		}
		for i, x := range par {
			if (i < gotP) != (x < pivot) {
				t.Fatalf("value %d at %d violates partition on pivot %d (split %d)", x, i, pivot, gotP)
			}
		}
		if !sameMultiset(multiset(serial, 0, wantP), multiset(par, 0, gotP)) {
			t.Fatal("left-side multiset differs from serial")
		}
		if !sameMultiset(multiset(serial, wantP, len(serial)), multiset(par, gotP, len(par))) {
			t.Fatal("right-side multiset differs from serial")
		}
	})
}

// FuzzCrackInThree mirrors FuzzCrackInTwo for the dual-pivot pass.
func FuzzCrackInThree(f *testing.F) {
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0}, int64(2), int64(6))
	f.Fuzz(func(t *testing.T, data []byte, a, b int64) {
		if a > b {
			a, b = b, a
		}
		vals := decodeVals(data)
		before := multiset(vals, 0, len(vals))
		c := New(append([]int64(nil), vals...))
		p1, p2 := c.CrackInThree(0, len(vals), a, b)
		if p1 < 0 || p2 < p1 || p2 > len(vals) {
			t.Fatalf("splits (%d,%d) invalid", p1, p2)
		}
		for i := 0; i < p1; i++ {
			if c.Values[i] >= a {
				t.Fatal("first region violates < a")
			}
		}
		for i := p1; i < p2; i++ {
			if c.Values[i] < a || c.Values[i] >= b {
				t.Fatal("middle region violates [a,b)")
			}
		}
		for i := p2; i < len(vals); i++ {
			if c.Values[i] < b {
				t.Fatal("last region violates >= b")
			}
		}
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			t.Fatal("multiset changed")
		}
	})
}

// FuzzSplitAndMaterialize asserts the fused MDD1R primitive collects
// exactly the qualifying values while maintaining the partition.
func FuzzSplitAndMaterialize(f *testing.F) {
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0}, int64(3), int64(1), int64(8))
	f.Fuzz(func(t *testing.T, data []byte, pivot, a, b int64) {
		if a > b {
			a, b = b, a
		}
		vals := decodeVals(data)
		want := 0
		for _, v := range vals {
			if a <= v && v < b {
				want++
			}
		}
		c := New(append([]int64(nil), vals...))
		out, p := c.SplitAndMaterialize(0, len(vals), pivot, a, b, nil)
		if len(out) != want {
			t.Fatalf("materialized %d, want %d", len(out), want)
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				t.Fatal("left side violates crack")
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				t.Fatal("right side violates crack")
			}
		}
	})
}
