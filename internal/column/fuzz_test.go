package column

import (
	"encoding/binary"
	"testing"
)

// decodeVals turns fuzz bytes into a value slice (8 bytes per value).
func decodeVals(data []byte) []int64 {
	n := len(data) / 8
	if n > 4096 {
		n = 4096
	}
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		vals[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vals
}

// FuzzCrackInTwo drives the partition primitive with arbitrary data and
// pivots, asserting the crack invariant and multiset preservation.
func FuzzCrackInTwo(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0}, int64(5))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, data []byte, pivot int64) {
		vals := decodeVals(data)
		before := multiset(vals, 0, len(vals))
		c := New(append([]int64(nil), vals...))
		p := c.CrackInTwo(0, len(vals), pivot)
		if p < 0 || p > len(vals) {
			t.Fatalf("split %d out of range", p)
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				t.Fatal("left side violates crack")
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				t.Fatal("right side violates crack")
			}
		}
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			t.Fatal("multiset changed")
		}
	})
}

// FuzzCrackInThree mirrors FuzzCrackInTwo for the dual-pivot pass.
func FuzzCrackInThree(f *testing.F) {
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0}, int64(2), int64(6))
	f.Fuzz(func(t *testing.T, data []byte, a, b int64) {
		if a > b {
			a, b = b, a
		}
		vals := decodeVals(data)
		before := multiset(vals, 0, len(vals))
		c := New(append([]int64(nil), vals...))
		p1, p2 := c.CrackInThree(0, len(vals), a, b)
		if p1 < 0 || p2 < p1 || p2 > len(vals) {
			t.Fatalf("splits (%d,%d) invalid", p1, p2)
		}
		for i := 0; i < p1; i++ {
			if c.Values[i] >= a {
				t.Fatal("first region violates < a")
			}
		}
		for i := p1; i < p2; i++ {
			if c.Values[i] < a || c.Values[i] >= b {
				t.Fatal("middle region violates [a,b)")
			}
		}
		for i := p2; i < len(vals); i++ {
			if c.Values[i] < b {
				t.Fatal("last region violates >= b")
			}
		}
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			t.Fatal("multiset changed")
		}
	})
}

// FuzzSplitAndMaterialize asserts the fused MDD1R primitive collects
// exactly the qualifying values while maintaining the partition.
func FuzzSplitAndMaterialize(f *testing.F) {
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0}, int64(3), int64(1), int64(8))
	f.Fuzz(func(t *testing.T, data []byte, pivot, a, b int64) {
		if a > b {
			a, b = b, a
		}
		vals := decodeVals(data)
		want := 0
		for _, v := range vals {
			if a <= v && v < b {
				want++
			}
		}
		c := New(append([]int64(nil), vals...))
		out, p := c.SplitAndMaterialize(0, len(vals), pivot, a, b, nil)
		if len(out) != want {
			t.Fatalf("materialized %d, want %d", len(out), want)
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				t.Fatal("left side violates crack")
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				t.Fatal("right side violates crack")
			}
		}
	})
}
