package column

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/xrand"
)

// Kernel microbenchmarks for the physical reorganization primitives — the
// hot loops every cracking algorithm is built from. Their names are stable
// interfaces: the CI bench job gates ns/op regressions against
// bench/baseline/kernels.txt by benchmark name (see cmd/benchgate), so
// renaming one silently drops it from the gate.
//
// Every iteration partitions a fresh copy of the data (a partitioned piece
// would re-partition for free), with the copy outside the timed section.

var kernelSizes = []struct {
	label string
	n     int
}{
	{"n=1M", 1 << 20},
	{"n=10M", 10_000_000},
}

// kernelData returns a seeded shuffle of [0, n) — the paper's dataset —
// plus a same-length scratch slice the benchmark partitions in place.
func kernelData(n int) (pristine, scratch []int64) {
	return xrand.New(42).Perm(n), make([]int64, n)
}

func BenchmarkCrackInTwo(b *testing.B) {
	for _, sz := range kernelSizes {
		b.Run(sz.label, func(b *testing.B) {
			pristine, scratch := kernelData(sz.n)
			pivot := int64(sz.n / 2)
			b.SetBytes(int64(8 * sz.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(scratch, pristine)
				c := &Column{Values: scratch}
				b.StartTimer()
				p := c.CrackInTwo(0, sz.n, pivot)
				if p != sz.n/2 {
					b.Fatalf("crack position %d, want %d", p, sz.n/2)
				}
			}
		})
	}
}

func BenchmarkCrackInThree(b *testing.B) {
	for _, sz := range kernelSizes {
		b.Run(sz.label, func(b *testing.B) {
			pristine, scratch := kernelData(sz.n)
			lo, hi := int64(sz.n/4), int64(3*sz.n/4)
			b.SetBytes(int64(8 * sz.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(scratch, pristine)
				c := &Column{Values: scratch}
				b.StartTimer()
				p1, p2 := c.CrackInThree(0, sz.n, lo, hi)
				if p1 != int(lo) || p2 != int(hi) {
					b.Fatalf("crack positions (%d,%d), want (%d,%d)", p1, p2, lo, hi)
				}
			}
		})
	}
}

// BenchmarkMDD1RMaterialize measures the MDD1R primitive of Fig. 5: one
// pass that partitions a piece on a random pivot while collecting the
// query's qualifying tuples.
func BenchmarkMDD1RMaterialize(b *testing.B) {
	for _, sz := range kernelSizes {
		b.Run(sz.label, func(b *testing.B) {
			pristine, scratch := kernelData(sz.n)
			pivot := int64(sz.n / 2)
			a, qb := int64(sz.n/4), int64(sz.n/4+1024)
			out := make([]int64, 0, 2048)
			b.SetBytes(int64(8 * sz.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(scratch, pristine)
				c := &Column{Values: scratch}
				b.StartTimer()
				var p int
				out, p = c.SplitAndMaterialize(0, sz.n, pivot, a, qb, out[:0])
				if p != sz.n/2 || len(out) != 1024 {
					b.Fatalf("split %d materialized %d, want %d and 1024", p, len(out), sz.n/2)
				}
			}
		})
	}
}

// BenchmarkCrackInTwoRowIDs covers the payload-carrying path (rowids
// permuted in tandem), which cannot take the values-only fast loop.
func BenchmarkCrackInTwoRowIDs(b *testing.B) {
	const n = 1 << 20
	pristine, scratch := kernelData(n)
	ids := make([]uint32, n)
	b.Run(fmt.Sprintf("n=%dK", n>>10), func(b *testing.B) {
		b.SetBytes(8 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(scratch, pristine)
			for j := range ids {
				ids[j] = uint32(j)
			}
			c := &Column{Values: scratch, RowIDs: ids}
			b.StartTimer()
			if p := c.CrackInTwo(0, n, n/2); p != n/2 {
				b.Fatalf("crack position %d", p)
			}
		}
	})
}

// BenchmarkParallelCrackInTwo measures the chunked parallel partition
// (PR 6) on a values-only column at each GOMAXPROCS step. procs=1 is the
// interesting floor: the caller claims every chunk itself, so it bounds
// the coordination overhead the parallel path adds over the serial
// kernel; higher steps need real cores to separate.
func BenchmarkParallelCrackInTwo(b *testing.B) {
	for _, sz := range kernelSizes {
		pristine, scratch := kernelData(sz.n)
		pivot := int64(sz.n / 2)
		for _, procs := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/procs=%d", sz.label, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				b.SetBytes(int64(8 * sz.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					copy(scratch, pristine)
					c := &Column{Values: scratch}
					b.StartTimer()
					p := c.ParallelCrackInTwo(0, sz.n, pivot)
					if p != sz.n/2 {
						b.Fatalf("crack position %d, want %d", p, sz.n/2)
					}
				}
			})
		}
	}
}
