package column

// PartitionState is a partially completed CrackInTwo over one piece of the
// column. Progressive stochastic cracking (PMDD1R, §4 of the paper) bounds
// the number of swaps a single query may perform; the partition is resumed
// by subsequent queries that touch the same piece until it completes, at
// which point the crack is finally published to the cracker index.
//
// While a partition is in progress the piece holds the same multiset of
// values (a partial Hoare partition only exchanges elements within the
// piece), so queries remain answerable by scanning the piece.
type PartitionState struct {
	Pivot int64
	Lo    int // piece start (fixed for the lifetime of the state)
	Hi    int // piece end, exclusive (fixed for the lifetime of the state)
	L     int // next unexamined position from the left
	R     int // next unexamined position from the right (inclusive)
}

// NewPartitionState starts a partition of [lo, hi) on pivot.
func NewPartitionState(lo, hi int, pivot int64) *PartitionState {
	return &PartitionState{Pivot: pivot, Lo: lo, Hi: hi, L: lo, R: hi - 1}
}

// Done reports whether the partition has fully completed.
func (ps *PartitionState) Done() bool { return ps.L > ps.R }

// SplitPos returns the final crack position; valid only once Done().
func (ps *PartitionState) SplitPos() int { return ps.L }

// Remaining returns the number of positions not yet examined.
func (ps *PartitionState) Remaining() int {
	if ps.Done() {
		return 0
	}
	return ps.R - ps.L + 1
}

// StepPartition advances the partition by at most maxSwaps element
// exchanges (maxSwaps <= 0 means unbounded, completing the partition). It
// returns true when the partition is complete. Pointer movement between
// swaps is not budgeted — as in the paper, the restriction is on the number
// of swaps, the expensive memory operation.
func (c *Column) StepPartition(ps *PartitionState, maxSwaps int) bool {
	if ps.Done() {
		return true
	}
	if ps.Lo < 0 || ps.Hi > len(c.Values) {
		panic("column: partition state out of range")
	}
	v := c.Values
	swaps := 0
	startL, startR := ps.L, ps.R
	L, R := ps.L, ps.R
	for L <= R {
		for L <= R && v[L] < ps.Pivot {
			L++
		}
		for L <= R && v[R] >= ps.Pivot {
			R--
		}
		if L < R {
			c.swap(L, R)
			L++
			R--
			swaps++
			if maxSwaps > 0 && swaps >= maxSwaps {
				break
			}
		}
	}
	ps.L, ps.R = L, R
	c.Stats.Touched += int64(L - startL + startR - R)
	return ps.Done()
}
