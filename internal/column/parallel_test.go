package column

import (
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// checkPartitionEquivalence asserts the parallel kernel's
// serial-equivalence contract on vals/pivot: same split position as
// crackInTwoVals, same multiset on each side (order within a side is
// unspecified).
func checkPartitionEquivalence(t *testing.T, vals []int64, pivot int64, chunk int) {
	t.Helper()
	serial := append([]int64(nil), vals...)
	wantP, _ := crackInTwoVals(serial, pivot)

	par := append([]int64(nil), vals...)
	gotP, _ := parallelPartitionChunked(par, pivot, chunk)

	if gotP != wantP {
		t.Fatalf("chunk=%d: split %d, serial split %d", chunk, gotP, wantP)
	}
	for i := 0; i < gotP; i++ {
		if par[i] >= pivot {
			t.Fatalf("chunk=%d: value %d at %d >= pivot %d on left side", chunk, par[i], i, pivot)
		}
	}
	for i := gotP; i < len(par); i++ {
		if par[i] < pivot {
			t.Fatalf("chunk=%d: value %d at %d < pivot %d on right side", chunk, par[i], i, pivot)
		}
	}
	if !sameMultiset(multiset(serial, 0, wantP), multiset(par, 0, gotP)) {
		t.Fatalf("chunk=%d: left-side multiset differs from serial", chunk)
	}
	if !sameMultiset(multiset(serial, wantP, len(serial)), multiset(par, gotP, len(par))) {
		t.Fatalf("chunk=%d: right-side multiset differs from serial", chunk)
	}
}

// TestParallelPartitionAdversarial drives the chunked kernel over the
// input shapes most likely to break the merge phase: already partitioned
// (nothing misplaced), reverse-partitioned (everything misplaced),
// all-equal-to-pivot, tiny pieces, runs straddling chunk boundaries, and
// sizes around chunk-count edges.
func TestParallelPartitionAdversarial(t *testing.T) {
	rng := xrand.New(7)
	shuffled := func(n int) []int64 { return rng.Perm(n) }
	asc := func(n int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(i)
		}
		return v
	}
	desc := func(n int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(n - 1 - i)
		}
		return v
	}
	same := func(n int, x int64) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = x
		}
		return v
	}
	// Alternating below/above pivot in runs of width w: with w spanning
	// chunk boundaries the merge pairs partial runs on both sides.
	blocks := func(n, w int) []int64 {
		v := make([]int64, n)
		for i := range v {
			if (i/w)%2 == 0 {
				v[i] = int64(i % w) // < pivot for pivot > w
			} else {
				v[i] = int64(1000 + i%w)
			}
		}
		return v
	}

	cases := []struct {
		name  string
		vals  []int64
		pivot int64
	}{
		{"empty", nil, 5},
		{"one-below", []int64{1}, 5},
		{"one-above", []int64{9}, 5},
		{"tiny", []int64{3, 9, 1, 7}, 5},
		{"sorted", asc(1000), 500},
		{"reverse", desc(1000), 500},
		{"all-equal-pivot", same(777, 42), 42},
		{"all-below", same(300, 1), 42},
		{"shuffled", shuffled(10_000), 5000},
		{"pivot-below-min", shuffled(500), -1},
		{"pivot-above-max", shuffled(500), 1 << 40},
		{"block-runs-w3", blocks(1000, 3), 500},
		{"block-runs-w7", blocks(999, 7), 500},
		{"block-runs-chunkwidth", blocks(1024, 64), 500},
	}
	chunks := []int{1, 2, 3, 7, 64, 65, 1000, 1 << 20}
	for _, tc := range cases {
		for _, chunk := range chunks {
			checkPartitionEquivalence(t, tc.vals, tc.pivot, chunk)
		}
	}
}

// TestParallelPartitionQuick cross-checks random inputs against the serial
// kernel with random chunk sizes.
func TestParallelPartitionQuick(t *testing.T) {
	f := func(raw []int16, pivot int16, chunkSeed uint8) bool {
		vals := make([]int64, len(raw))
		for i, x := range raw {
			vals[i] = int64(x)
		}
		chunk := 1 + int(chunkSeed)%97
		serial := append([]int64(nil), vals...)
		wantP, _ := crackInTwoVals(serial, int64(pivot))
		par := append([]int64(nil), vals...)
		gotP, _ := parallelPartitionChunked(par, int64(pivot), chunk)
		if gotP != wantP {
			return false
		}
		for i, x := range par {
			if (i < gotP) != (x < int64(pivot)) {
				return false
			}
		}
		return sameMultiset(multiset(serial, 0, len(serial)), multiset(par, 0, len(par)))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestParallelCrackInTwoLarge exercises the real production path (pool
// workers, production chunk geometry) end to end on a 10M permutation and
// asserts equivalence plus counter accounting.
func TestParallelCrackInTwoLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-tuple kernel test")
	}
	const n = 10_000_000
	data := xrand.New(42).Perm(n)
	pivot := int64(n / 2)

	c := New(append([]int64(nil), data...))
	p := c.ParallelCrackInTwo(0, n, pivot)
	if p != n/2 {
		t.Fatalf("split %d, want %d", p, n/2)
	}
	if got := c.Position(0, n, pivot); got != p {
		t.Fatalf("partition invariant violated: first >= pivot at %d, split %d", got, p)
	}
	if c.Stats.Touched != n {
		t.Fatalf("Touched = %d, want %d", c.Stats.Touched, n)
	}
	var sum int64
	for _, x := range c.Values {
		sum += x
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("value sum %d, want %d (data corrupted)", sum, want)
	}
}

// TestParallelCrackDeterministic asserts the documented determinism: the
// parallel kernel's resulting layout depends only on the input (chunk
// geometry is a pure function of n), not on scheduling, so repeated runs
// agree bit-for-bit. GOMAXPROCS is pinned because the claim-loop helper
// count is the only scheduling input left — and even that must not change
// the outcome; we check both at 1 and at the pinned value.
func TestParallelCrackDeterministic(t *testing.T) {
	const n = 200_000
	data := xrand.New(5).Perm(n)
	run := func(procs int) []int64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		v := append([]int64(nil), data...)
		parallelPartitionChunked(v, int64(n/3), 4096)
		return v
	}
	base := run(1)
	for _, procs := range []int{1, 2, 8} {
		got := run(procs)
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("layout differs at %d between GOMAXPROCS=1 and %d", i, procs)
			}
		}
	}
}

// TestParallelCrackInThree asserts the two-pass parallel decomposition
// yields the same region bounds as the serial CrackInThree and counts
// Touched once.
func TestParallelCrackInThree(t *testing.T) {
	const n = 300_000
	data := xrand.New(9).Perm(n)
	a, b := int64(n/4), int64(3*n/4)

	serial := New(append([]int64(nil), data...))
	w1, w2 := serial.CrackInThree(0, n, a, b)

	par := New(append([]int64(nil), data...))
	g1, g2 := par.ParallelCrackInThree(0, n, a, b)
	if g1 != w1 || g2 != w2 {
		t.Fatalf("splits (%d,%d), serial (%d,%d)", g1, g2, w1, w2)
	}
	for i, x := range par.Values {
		region := 0
		if x >= a {
			region = 1
		}
		if x >= b {
			region = 2
		}
		wantRegion := 0
		if i >= g1 {
			wantRegion = 1
		}
		if i >= g2 {
			wantRegion = 2
		}
		if region != wantRegion {
			t.Fatalf("value %d at %d in region %d, want %d", x, i, region, wantRegion)
		}
	}
	if par.Stats.Touched != n {
		t.Fatalf("Touched = %d, want %d (the logical cost counts the piece once)", par.Stats.Touched, n)
	}
}

// TestParallelSplitAndMaterialize asserts the parallel MDD1R primitives
// materialize exactly the serial kernels' multisets for all three
// variants, across bound placements left/right/straddling the pivot.
func TestParallelSplitAndMaterialize(t *testing.T) {
	const n = 200_000
	data := xrand.New(13).Perm(n)
	pivot := int64(n / 2)
	bounds := []struct{ a, b int64 }{
		{n / 4, n/4 + 1000},       // entirely left of pivot
		{3 * n / 4, 3*n/4 + 1000}, // entirely right of pivot
		{n/2 - 500, n/2 + 500},    // straddling the pivot
		{0, n},                    // everything
		{n / 3, n / 3},            // empty interval
		{-100, -50},               // entirely outside the domain
	}
	for _, bd := range bounds {
		serial := New(append([]int64(nil), data...))
		wantOut, wantP := serial.SplitAndMaterialize(0, n, pivot, bd.a, bd.b, nil)

		par := New(append([]int64(nil), data...))
		gotOut, gotP := par.ParallelSplitAndMaterialize(0, n, pivot, bd.a, bd.b, nil)
		if gotP != wantP {
			t.Fatalf("[%d,%d): split %d, serial %d", bd.a, bd.b, gotP, wantP)
		}
		if !sameMultiset(multiset(wantOut, 0, len(wantOut)), multiset(gotOut, 0, len(gotOut))) {
			t.Fatalf("[%d,%d): materialized multiset differs (got %d values, want %d)",
				bd.a, bd.b, len(gotOut), len(wantOut))
		}
	}
	for _, a := range []int64{n / 4, n / 2, 3 * n / 4} {
		serial := New(append([]int64(nil), data...))
		wantOut, wantP := serial.SplitAndMaterializeGE(0, n, pivot, a, nil)
		par := New(append([]int64(nil), data...))
		gotOut, gotP := par.ParallelSplitAndMaterializeGE(0, n, pivot, a, nil)
		if gotP != wantP || !sameMultiset(multiset(wantOut, 0, len(wantOut)), multiset(gotOut, 0, len(gotOut))) {
			t.Fatalf("GE a=%d: split %d/%d, %d/%d values", a, gotP, wantP, len(gotOut), len(wantOut))
		}
	}
	for _, b := range []int64{n / 4, n / 2, 3 * n / 4} {
		serial := New(append([]int64(nil), data...))
		wantOut, wantP := serial.SplitAndMaterializeLT(0, n, pivot, b, nil)
		par := New(append([]int64(nil), data...))
		gotOut, gotP := par.ParallelSplitAndMaterializeLT(0, n, pivot, b, nil)
		if gotP != wantP || !sameMultiset(multiset(wantOut, 0, len(wantOut)), multiset(gotOut, 0, len(gotOut))) {
			t.Fatalf("LT b=%d: split %d/%d, %d/%d values", b, gotP, wantP, len(gotOut), len(wantOut))
		}
	}
}

// TestParallelFallbacks asserts columns the parallel kernels cannot
// handle — row ids or a tandem payload — quietly take the serial tandem
// path with identical results.
func TestParallelFallbacks(t *testing.T) {
	const n = 10_000
	data := xrand.New(3).Perm(n)
	c := NewWithRowIDs(append([]int64(nil), data...))
	p := c.ParallelCrackInTwo(0, n, int64(n/2))
	if p != n/2 {
		t.Fatalf("split %d, want %d", p, n/2)
	}
	for i := 0; i < n; i++ {
		// Row ids must still travel with their values: row id r points at
		// the value's original position, so data[r] must equal the value.
		if data[c.RowIDs[i]] != c.Values[i] {
			t.Fatalf("row id %d detached from value %d at %d", c.RowIDs[i], c.Values[i], i)
		}
	}
}

// TestCloneDropsStats pins Clone's documented contract: the copy carries
// the data but starts with zeroed counters, keeping the bench harness's
// per-algorithm cost isolation intentional.
func TestCloneDropsStats(t *testing.T) {
	c := NewWithRowIDs([]int64{5, 2, 9, 1})
	c.CrackInTwo(0, c.Len(), 4)
	if c.Stats.Touched == 0 {
		t.Fatal("source column has no cost to drop; test is vacuous")
	}
	cp := c.Clone()
	if cp.Stats.Touched != 0 || cp.Stats.Swaps != 0 {
		t.Fatalf("Clone carried counters over: %+v", cp.Stats)
	}
	if len(cp.Values) != c.Len() || len(cp.RowIDs) != c.Len() {
		t.Fatalf("Clone dropped data: %d values, %d row ids", len(cp.Values), len(cp.RowIDs))
	}
	cp.Values[0] = -1
	if c.Values[0] == -1 {
		t.Fatal("Clone aliases the source values")
	}
}
