// Package column implements the column-store storage substrate that
// database cracking operates on.
//
// A cracker column is a fixed-width dense array of int64 values — the same
// representation modern column-stores use on disk and in memory — that is
// physically reorganized in place by the cracking operators. The package
// provides the three physical reorganization primitives every cracking
// algorithm in the paper is built from:
//
//   - CrackInTwo: Hoare-style partition on one pivot (crack on one bound),
//   - CrackInThree: single-pass dual-pivot partition (first query on an
//     uncracked piece, both bounds at once),
//   - SplitAndMaterialize: the MDD1R primitive of Fig. 5 — partition on a
//     random pivot while simultaneously collecting the query's qualifying
//     tuples, and
//   - PartitionState/StepPartition: a resumable, swap-budgeted partition
//     used by progressive stochastic cracking (a single crack completed
//     collaboratively by several queries).
//
// A column optionally carries a row-identifier payload that is permuted in
// tandem with the values, mirroring a column-store's (rowid, value) pairs.
// All primitives maintain the cost counters the paper reports (tuples
// touched, swaps performed).
package column

import "fmt"

// Stats accumulates the physical-cost counters the paper's evaluation
// reports. Touched counts tuples examined during reorganization or scans;
// Swaps counts element exchanges.
type Stats struct {
	Touched int64
	Swaps   int64
}

// Reset zeroes the counters.
func (s *Stats) Reset() { s.Touched, s.Swaps = 0, 0 }

// Column is a cracker column: a dense array of values, optionally paired
// with row identifiers and/or a second attribute's values permuted in
// tandem. The Payload column is what sideways cracking ([18], see
// internal/table) uses: the projected attribute physically travels with
// the selection attribute, so projection never needs random access.
type Column struct {
	Values  []int64
	RowIDs  []uint32 // nil when row identifiers are not tracked
	Payload []int64  // nil when no tandem attribute is attached
	Stats   Stats
}

// New wraps values in a Column. The slice is owned by the column afterwards
// and will be reorganized in place.
func New(values []int64) *Column {
	return &Column{Values: values}
}

// NewWithRowIDs wraps values and assigns each tuple its initial position as
// row identifier, as a column-store load would.
func NewWithRowIDs(values []int64) *Column {
	ids := make([]uint32, len(values))
	for i := range ids {
		ids[i] = uint32(i)
	}
	return &Column{Values: values, RowIDs: ids}
}

// Len returns the number of tuples in the column.
func (c *Column) Len() int { return len(c.Values) }

// Clone returns a deep copy of the column's data (Values, RowIDs,
// Payload). Stats deliberately does NOT travel: the copy starts with
// zeroed counters by construction. That is a contract, not an accident —
// the benchmark harness clones one pristine column per algorithm and
// relies on each clone accumulating only its own Touched/Swaps, so a
// Clone that inherited the source's counters would silently skew every
// per-algorithm cost comparison.
func (c *Column) Clone() *Column {
	cp := &Column{Values: append([]int64(nil), c.Values...)}
	if c.RowIDs != nil {
		cp.RowIDs = append([]uint32(nil), c.RowIDs...)
	}
	if c.Payload != nil {
		cp.Payload = append([]int64(nil), c.Payload...)
	}
	return cp
}

// NewWithPayload wraps a selection column and a second attribute whose
// values are permuted in tandem with it (a sideways cracker map).
func NewWithPayload(values, payload []int64) *Column {
	if len(values) != len(payload) {
		panic("column: payload length mismatch")
	}
	return &Column{Values: values, Payload: payload}
}

func (c *Column) swap(i, j int) {
	c.Values[i], c.Values[j] = c.Values[j], c.Values[i]
	if c.RowIDs != nil {
		c.RowIDs[i], c.RowIDs[j] = c.RowIDs[j], c.RowIDs[i]
	}
	if c.Payload != nil {
		c.Payload[i], c.Payload[j] = c.Payload[j], c.Payload[i]
	}
	c.Stats.Swaps++
}

func (c *Column) checkRange(lo, hi int) {
	if lo < 0 || hi > len(c.Values) || lo > hi {
		panic(fmt.Sprintf("column: invalid range [%d,%d) on column of %d tuples", lo, hi, len(c.Values)))
	}
}

// CrackInTwo partitions positions [lo, hi) so that all values < pivot
// precede all values >= pivot, and returns the split position p: after the
// call, Values[lo:p] < pivot <= Values[p:hi]. It is the physical operation
// behind a crack (pivot, p).
//
// Values-only columns take a specialized kernel (crackInTwoVals); columns
// carrying row identifiers or a tandem payload permute every attribute
// together through the generic path.
func (c *Column) CrackInTwo(lo, hi int, pivot int64) int {
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if c.RowIDs == nil && c.Payload == nil {
		p, swaps := crackInTwoVals(c.Values[lo:hi:hi], pivot)
		c.Stats.Swaps += swaps
		return lo + p
	}
	v := c.Values
	L, R := lo, hi-1
	for L <= R {
		for L <= R && v[L] < pivot {
			L++
		}
		for L <= R && v[R] >= pivot {
			R--
		}
		if L < R {
			c.swap(L, R)
			L++
			R--
		}
	}
	return L
}

// crackInTwoVals is the hot crack-in-two kernel: a branchless Lomuto
// partition over a bare value slice. A Hoare partition's inner scans exit
// on a data-dependent comparison, which on the uniformly shuffled data
// cracking sees is a coin-flip branch — one misprediction every couple of
// tuples dominates the kernel's runtime. This loop instead performs an
// unconditional pair write per tuple and advances the store index with a
// flag-materialized increment, so the loop body carries no data-dependent
// branch at all. The already-partitioned prefix is skipped first, which
// also spares its write traffic.
//
// swaps counts every tuple < pivot that had to move left (those
// encountered after the first tuple >= pivot). That is an upper bound on
// — not equal to — the Hoare pair-exchange count the tandem path
// records: a Hoare exchange fixes two misplaced tuples at once, so
// values-only and rowid/payload columns can report different Swaps for
// the same logical operation. Swaps is a kernel-level diagnostic;
// Touched is the machine-independent cost metric the paper compares.
func crackInTwoVals(v []int64, pivot int64) (p int, swaps int64) {
	r := 0
	for r < len(v) && v[r] < pivot {
		r++
	}
	j := r
	for i := r; i < len(v); i++ {
		x := v[i]
		v[i] = v[j]
		v[j] = x
		d := 0
		if x < pivot {
			d = 1
		}
		j += d
	}
	return j, int64(j - r)
}

// CrackInThree partitions positions [lo, hi) on two pivots a < b so that
// values < a come first, then values in [a, b), then values >= b. It
// returns (p1, p2): Values[lo:p1] < a <= Values[p1:p2] < b <=
// Values[p2:hi]. This is the first-query operation of original cracking
// (Fig. 1, query Q1).
//
// Values-only columns run two branchless crack-in-two passes — the second
// only over the upper part — which beats the classic single-pass dual-pivot
// loop: that loop's three-way switch mispredicts on nearly every tuple of
// shuffled data, while two crackInTwoVals passes carry no data-dependent
// branch. Touched stays the logical cost of the operation (one examination
// of the piece, as the paper counts it); how a kernel schedules its memory
// accesses — Lomuto's unconditional pair writes, the second pass here — is
// below the machine-independent cost model. Columns with row identifiers
// or a payload keep the single-pass generic path.
func (c *Column) CrackInThree(lo, hi int, a, b int64) (p1, p2 int) {
	c.checkRange(lo, hi)
	if a > b {
		panic(fmt.Sprintf("column: CrackInThree with a=%d > b=%d", a, b))
	}
	c.Stats.Touched += int64(hi - lo)
	if c.RowIDs == nil && c.Payload == nil {
		v := c.Values
		q1, s1 := crackInTwoVals(v[lo:hi:hi], a)
		p1 = lo + q1
		q2, s2 := crackInTwoVals(v[p1:hi:hi], b)
		p2 = p1 + q2
		c.Stats.Swaps += s1 + s2
		return p1, p2
	}
	v := c.Values
	// Dual-pivot partition: [lo,l) < a, [l,i) in [a,b), [i,r] unseen,
	// (r,hi) >= b.
	l, i, r := lo, lo, hi-1
	for i <= r {
		switch x := v[i]; {
		case x < a:
			if i != l {
				c.swap(i, l)
			}
			l++
			i++
		case x >= b:
			c.swap(i, r)
			r--
		default:
			i++
		}
	}
	return l, r + 1
}

// inRange reports a <= x && x < b in one compare: uint64(x-a) is x's rank
// in the int64 order starting at a (the domain spans exactly 2^64 values,
// so the subtraction is exact modular rank), and [a, b) is the rank
// interval [0, uint64(b-a)). Requires a <= b, which every caller
// normalizes first. One predictable compare instead of two keeps the
// materialization kernels branch-lean.
func inRange(x, a, b int64) bool {
	return uint64(x-a) < uint64(b-a)
}

// Position returns the first index p in [lo, hi) such that all values in
// [lo, p) are < pivot, assuming [lo, hi) is already partitioned on pivot.
// It is used in tests to validate crack invariants; O(n).
func (c *Column) Position(lo, hi int, pivot int64) int {
	for i := lo; i < hi; i++ {
		if c.Values[i] >= pivot {
			return i
		}
	}
	return hi
}

// SplitAndMaterialize is the MDD1R primitive (Fig. 5): it partitions
// [lo, hi) on pivot while collecting into out every value in [a, b)
// encountered along the way, returning the grown slice and the split
// position. One pass performs both the random crack and the query's result
// materialization for this piece. Values-only columns run the branchless
// partition loop fused with a single-compare range test; the qualifying
// branch stays, but at typical selectivities it is almost-never-taken and
// predicts perfectly.
func (c *Column) SplitAndMaterialize(lo, hi int, pivot, a, b int64, out []int64) ([]int64, int) {
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if a > b {
		a = b // normalize so the rank compare sees an empty interval
	}
	if c.RowIDs == nil && c.Payload == nil {
		v := c.Values[lo:hi:hi]
		r := 0
		for r < len(v) && v[r] < pivot {
			if x := v[r]; inRange(x, a, b) {
				out = append(out, x)
			}
			r++
		}
		j := r
		for i := r; i < len(v); i++ {
			x := v[i]
			v[i] = v[j]
			v[j] = x
			if inRange(x, a, b) {
				out = append(out, x)
			}
			d := 0
			if x < pivot {
				d = 1
			}
			j += d
		}
		c.Stats.Swaps += int64(j - r)
		return out, lo + j
	}
	v := c.Values
	L, R := lo, hi-1
	for L <= R {
		for L <= R && v[L] < pivot {
			if x := v[L]; a <= x && x < b {
				out = append(out, x)
			}
			L++
		}
		for L <= R && v[R] >= pivot {
			if x := v[R]; a <= x && x < b {
				out = append(out, x)
			}
			R--
		}
		if L < R {
			c.swap(L, R)
		}
	}
	return out, L
}

// SplitAndMaterializeGE is the specialized end-piece variant used when the
// query's two bounds fall in different pieces (Fig. 6): in the leftmost
// intersecting piece every value >= a qualifies (the piece lies entirely
// below the query's upper bound). It partitions on pivot while collecting
// values >= a.
func (c *Column) SplitAndMaterializeGE(lo, hi int, pivot, a int64, out []int64) ([]int64, int) {
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if c.RowIDs == nil && c.Payload == nil {
		v := c.Values[lo:hi:hi]
		r := 0
		for r < len(v) && v[r] < pivot {
			if x := v[r]; x >= a {
				out = append(out, x)
			}
			r++
		}
		j := r
		for i := r; i < len(v); i++ {
			x := v[i]
			v[i] = v[j]
			v[j] = x
			if x >= a {
				out = append(out, x)
			}
			d := 0
			if x < pivot {
				d = 1
			}
			j += d
		}
		c.Stats.Swaps += int64(j - r)
		return out, lo + j
	}
	v := c.Values
	L, R := lo, hi-1
	for L <= R {
		for L <= R && v[L] < pivot {
			if v[L] >= a {
				out = append(out, v[L])
			}
			L++
		}
		for L <= R && v[R] >= pivot {
			if v[R] >= a {
				out = append(out, v[R])
			}
			R--
		}
		if L < R {
			c.swap(L, R)
		}
	}
	return out, L
}

// SplitAndMaterializeLT is the mirrored end-piece variant: in the rightmost
// intersecting piece every value < b qualifies. It partitions on pivot
// while collecting values < b.
func (c *Column) SplitAndMaterializeLT(lo, hi int, pivot, b int64, out []int64) ([]int64, int) {
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if c.RowIDs == nil && c.Payload == nil {
		v := c.Values[lo:hi:hi]
		r := 0
		for r < len(v) && v[r] < pivot {
			if x := v[r]; x < b {
				out = append(out, x)
			}
			r++
		}
		j := r
		for i := r; i < len(v); i++ {
			x := v[i]
			v[i] = v[j]
			v[j] = x
			if x < b {
				out = append(out, x)
			}
			d := 0
			if x < pivot {
				d = 1
			}
			j += d
		}
		c.Stats.Swaps += int64(j - r)
		return out, lo + j
	}
	v := c.Values
	L, R := lo, hi-1
	for L <= R {
		for L <= R && v[L] < pivot {
			if v[L] < b {
				out = append(out, v[L])
			}
			L++
		}
		for L <= R && v[R] >= pivot {
			if v[R] < b {
				out = append(out, v[R])
			}
			R--
		}
		if L < R {
			c.swap(L, R)
		}
	}
	return out, L
}

// ScanMaterialize appends to out every value in [a, b) found in positions
// [lo, hi) without reorganizing, as a plain column-store select operator
// does.
func (c *Column) ScanMaterialize(lo, hi int, a, b int64, out []int64) []int64 {
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if a >= b {
		return out
	}
	for _, x := range c.Values[lo:hi] {
		if inRange(x, a, b) {
			out = append(out, x)
		}
	}
	return out
}

// CountRange counts values in [a, b) within positions [lo, hi) without
// reorganizing or materializing.
func (c *Column) CountRange(lo, hi int, a, b int64) int {
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if a >= b {
		return 0
	}
	n := 0
	for _, x := range c.Values[lo:hi] {
		if inRange(x, a, b) {
			n++
		}
	}
	return n
}
