package column

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pool"
)

// Parallel crack-in-two: the multi-core partition kernel of "Main Memory
// Adaptive Indexing for Multi-core Systems" (Alvarez et al.) layered on
// this package's branchless serial kernel. The piece is cut into
// cacheline-aligned chunks, each chunk is partitioned independently by
// crackInTwoVals (on internal/pool workers plus the calling goroutine),
// and the per-chunk splits are merged by swapping the misplaced middle
// runs into place.
//
// Serial-equivalence contract: ParallelCrackInTwo returns exactly the
// split position CrackInTwo would return (the number of values < pivot is
// a property of the multiset, not of the kernel), and each side holds
// exactly the same multiset of values as after the serial kernel. Only the
// order of values *within* a side may differ — no engine invariant depends
// on it: cracks record (pivot, position) partition facts only.
//
// Pool contract: chunks are handed out by an atomic counter and the
// calling goroutine claims chunks in a loop alongside any pool workers it
// managed to enlist (pool.Submit is best-effort), so completion never
// depends on a worker being free and a saturated pool degrades to the
// serial kernel's behavior instead of deadlocking — the same discipline as
// core's bulk copy, which the pool's own documentation points to.
//
// Determinism: chunk geometry is a pure function of the piece length, and
// both phases write disjoint regions whose contents do not depend on
// execution order, so the resulting layout is identical across runs and
// GOMAXPROCS settings. (The layout differs from the serial kernel's within
// sides; tests that assert physically identical layouts must keep parallel
// cracking disabled.)
const (
	// parallelChunkAlign is the chunk-size granule in tuples: 512 tuples =
	// 4 KiB of values, a whole number of cache lines, so chunk boundaries
	// never split a line between two workers.
	parallelChunkAlign = 512
	// minParallelChunk is the smallest chunk worth coordinating over
	// (32768 tuples = 256 KiB); pieces below two of these take the serial
	// kernel unconditionally.
	minParallelChunk = 1 << 15
	// parallelTargetChunks bounds the chunk count so coordination stays
	// O(chunks) cheap while still leaving every realistic worker count
	// several chunks each for load balancing.
	parallelTargetChunks = 64
	// swapRunMax caps one merge-phase swap job (tuples), so a single huge
	// misplaced run is still spread across workers.
	swapRunMax = 1 << 16
)

// parallelChunk returns the chunk size for an n-tuple piece: a pure
// function of n (for run-to-run determinism), aligned to
// parallelChunkAlign and floored at minParallelChunk.
func parallelChunk(n int) int {
	c := (n + parallelTargetChunks - 1) / parallelTargetChunks
	c = (c + parallelChunkAlign - 1) / parallelChunkAlign * parallelChunkAlign
	if c < minParallelChunk {
		c = minParallelChunk
	}
	return c
}

// claimLoop hands out job indices [0, n) through next, running work on the
// calling goroutine and on up to GOMAXPROCS-1 pool workers. It returns
// when all n jobs are done. work must not panic and must touch only
// job-private state.
func claimLoop(n int, work func(job int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	claim := func() {
		for {
			j := int(next.Add(1)) - 1
			if j >= n {
				return
			}
			work(j)
			wg.Done()
		}
	}
	helpers := runtime.GOMAXPROCS(0) - 1
	if m := n - 1; helpers > m {
		helpers = m
	}
	for i := 0; i < helpers; i++ {
		if !pool.Submit(claim) {
			break // saturated pool: the caller still finishes alone
		}
	}
	claim()
	wg.Wait()
}

// parallelPartitionVals partitions v on pivot using chunked parallel
// crack-in-two and returns the split position and the swap count (per-chunk
// displaced tuples plus one per merge-phase pair exchange; like the serial
// kernels, Swaps is a kernel-level diagnostic, not serial-comparable).
// Small inputs fall through to the serial kernel.
func parallelPartitionVals(v []int64, pivot int64) (int, int64) {
	if len(v) < 2*minParallelChunk {
		return crackInTwoVals(v, pivot)
	}
	return parallelPartitionChunked(v, pivot, parallelChunk(len(v)))
}

// parallelPartitionChunked is the chunked partition with an explicit chunk
// size; tests drive it with tiny chunks to exercise the merge phase
// densely. chunk must be positive.
func parallelPartitionChunked(v []int64, pivot int64, chunk int) (int, int64) {
	n := len(v)
	nchunks := (n + chunk - 1) / chunk
	splits := make([]int, nchunks) // absolute per-chunk split position
	var swaps atomic.Int64

	// Phase 1: partition each chunk independently with the serial
	// branchless kernel. Chunks are disjoint subslices, so workers never
	// share a tuple (and never share a cache line: chunk is a multiple of
	// parallelChunkAlign).
	claimLoop(nchunks, func(ci int) {
		s := ci * chunk
		e := s + chunk
		if e > n {
			e = n
		}
		p, sw := crackInTwoVals(v[s:e:e], pivot)
		splits[ci] = s + p
		swaps.Add(sw)
	})

	// Global split position: the total number of values < pivot. This is
	// exactly what the serial kernel returns — the count is a property of
	// the data, not of the kernel.
	p := 0
	for ci := 0; ci < nchunks; ci++ {
		p += splits[ci] - ci*chunk
	}

	// Phase 2: merge. After phase 1 each chunk is [lows | highs]; globally
	// the misplaced tuples are the high runs left of p and the low runs
	// right of p, and both sets have equal total size (every high left of
	// p displaces exactly one low to the right of p). Pair them up into
	// bounded swap jobs; the regions are disjoint (one side of p each), so
	// the jobs can run in parallel.
	type run struct{ s, e int }
	var highs, lows []run
	for ci := 0; ci < nchunks; ci++ {
		cs := ci * chunk
		ce := cs + chunk
		if ce > n {
			ce = n
		}
		b := splits[ci]
		if he := min(ce, p); b < he {
			highs = append(highs, run{b, he})
		}
		if ls := max(cs, p); ls < b {
			lows = append(lows, run{ls, b})
		}
	}
	type swapJob struct{ a, b, n int }
	var jobs []swapJob
	var misplaced int64
	hi, li := 0, 0
	ho, lo := 0, 0
	for hi < len(highs) && li < len(lows) {
		h, l := highs[hi], lows[li]
		m := min(h.e-h.s-ho, l.e-l.s-lo, swapRunMax)
		jobs = append(jobs, swapJob{h.s + ho, l.s + lo, m})
		misplaced += int64(m)
		ho += m
		lo += m
		if h.s+ho == h.e {
			hi++
			ho = 0
		}
		if l.s+lo == l.e {
			li++
			lo = 0
		}
	}
	if len(jobs) > 0 {
		claimLoop(len(jobs), func(ji int) {
			j := jobs[ji]
			x, y := v[j.a:j.a+j.n], v[j.b:j.b+j.n]
			for k := range x {
				x[k], y[k] = y[k], x[k]
			}
		})
	}
	return p, swaps.Load() + misplaced
}

// parallelOK reports whether the piece [lo, hi) can take the parallel
// kernels at all: only bare value columns qualify (row ids or a tandem
// payload keep the generic serial path, exactly like the specialized
// serial kernels).
func (c *Column) parallelOK() bool {
	return c.RowIDs == nil && c.Payload == nil
}

// ParallelCrackInTwo is CrackInTwo executed by the chunked parallel
// kernel: same split position, same per-side multisets, order within a
// side unspecified (see the package's serial-equivalence contract above).
// Columns carrying row ids or a payload, and pieces too small to
// coordinate over, fall back to CrackInTwo.
func (c *Column) ParallelCrackInTwo(lo, hi int, pivot int64) int {
	if !c.parallelOK() {
		return c.CrackInTwo(lo, hi, pivot)
	}
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	p, swaps := parallelPartitionVals(c.Values[lo:hi:hi], pivot)
	c.Stats.Swaps += swaps
	return lo + p
}

// ParallelCrackInThree is CrackInThree via two parallel crack-in-two
// passes (the second over the upper part only), mirroring the serial
// values-only decomposition. Touched counts the piece once — the logical
// cost, as the serial kernel counts it.
func (c *Column) ParallelCrackInThree(lo, hi int, a, b int64) (p1, p2 int) {
	if !c.parallelOK() {
		return c.CrackInThree(lo, hi, a, b)
	}
	c.checkRange(lo, hi)
	if a > b {
		panic("column: ParallelCrackInThree with a > b")
	}
	c.Stats.Touched += int64(hi - lo)
	q1, s1 := parallelPartitionVals(c.Values[lo:hi:hi], a)
	p1 = lo + q1
	q2, s2 := parallelPartitionVals(c.Values[p1:hi:hi], b)
	p2 = p1 + q2
	c.Stats.Swaps += s1 + s2
	return p1, p2
}

// ParallelSplitAndMaterialize is the MDD1R primitive with the partition
// run by the parallel kernel: partition [lo, hi) on pivot, then collect
// values in [a, b) from whichever side(s) can hold them. Unlike the fused
// serial one-pass kernel it scans for qualifying tuples after
// partitioning, but the partition — the bulk of the work — runs on all
// cores, and the scan is confined to the side(s) intersecting [a, b).
// Touched counts the piece once (the logical cost). The materialized
// multiset equals the serial kernel's; its order may differ.
func (c *Column) ParallelSplitAndMaterialize(lo, hi int, pivot, a, b int64, out []int64) ([]int64, int) {
	if !c.parallelOK() {
		return c.SplitAndMaterialize(lo, hi, pivot, a, b, out)
	}
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	if a > b {
		a = b
	}
	q, swaps := parallelPartitionVals(c.Values[lo:hi:hi], pivot)
	c.Stats.Swaps += swaps
	p := lo + q
	if a < pivot { // the left side can hold values in [a, min(b, pivot))
		for _, x := range c.Values[lo:p] {
			if inRange(x, a, b) {
				out = append(out, x)
			}
		}
	}
	if b > pivot { // the right side can hold values in [max(a, pivot), b)
		for _, x := range c.Values[p:hi] {
			if inRange(x, a, b) {
				out = append(out, x)
			}
		}
	}
	return out, p
}

// ParallelSplitAndMaterializeGE is the left-end-piece variant (collect
// values >= a) on the parallel partition kernel. When a < pivot the whole
// right side qualifies and is appended wholesale; only the left side is
// scanned.
func (c *Column) ParallelSplitAndMaterializeGE(lo, hi int, pivot, a int64, out []int64) ([]int64, int) {
	if !c.parallelOK() {
		return c.SplitAndMaterializeGE(lo, hi, pivot, a, out)
	}
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	q, swaps := parallelPartitionVals(c.Values[lo:hi:hi], pivot)
	c.Stats.Swaps += swaps
	p := lo + q
	if a < pivot {
		for _, x := range c.Values[lo:p] {
			if x >= a {
				out = append(out, x)
			}
		}
		return append(out, c.Values[p:hi]...), p
	}
	for _, x := range c.Values[p:hi] {
		if x >= a {
			out = append(out, x)
		}
	}
	return out, p
}

// ParallelSplitAndMaterializeLT is the right-end-piece variant (collect
// values < b) on the parallel partition kernel; the mirror of the GE
// form — when b > pivot the whole left side qualifies wholesale.
func (c *Column) ParallelSplitAndMaterializeLT(lo, hi int, pivot, b int64, out []int64) ([]int64, int) {
	if !c.parallelOK() {
		return c.SplitAndMaterializeLT(lo, hi, pivot, b, out)
	}
	c.checkRange(lo, hi)
	c.Stats.Touched += int64(hi - lo)
	q, swaps := parallelPartitionVals(c.Values[lo:hi:hi], pivot)
	c.Stats.Swaps += swaps
	p := lo + q
	if b > pivot {
		out = append(out, c.Values[lo:p]...)
		for _, x := range c.Values[p:hi] {
			if x < b {
				out = append(out, x)
			}
		}
		return out, p
	}
	for _, x := range c.Values[lo:p] {
		if x < b {
			out = append(out, x)
		}
	}
	return out, p
}
