package column

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// multiset returns a value->count map for positions [lo,hi).
func multiset(v []int64, lo, hi int) map[int64]int {
	m := make(map[int64]int)
	for _, x := range v[lo:hi] {
		m[x]++
	}
	return m
}

func sameMultiset(a, b map[int64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, c := range a {
		if b[k] != c {
			return false
		}
	}
	return true
}

func TestCrackInTwoBasic(t *testing.T) {
	c := New([]int64{13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6})
	p := c.CrackInTwo(0, c.Len(), 10)
	for i := 0; i < p; i++ {
		if c.Values[i] >= 10 {
			t.Fatalf("value %d at %d on left of crack", c.Values[i], i)
		}
	}
	for i := p; i < c.Len(); i++ {
		if c.Values[i] < 10 {
			t.Fatalf("value %d at %d on right of crack", c.Values[i], i)
		}
	}
	if p != 8 {
		t.Fatalf("split position = %d, want 8 (eight values below 10)", p)
	}
}

func TestCrackInTwoEdgePivots(t *testing.T) {
	vals := []int64{5, 3, 8, 1, 9}
	c := New(append([]int64(nil), vals...))
	if p := c.CrackInTwo(0, 5, 0); p != 0 {
		t.Fatalf("pivot below min: p=%d, want 0", p)
	}
	if p := c.CrackInTwo(0, 5, 100); p != 5 {
		t.Fatalf("pivot above max: p=%d, want 5", p)
	}
	if p := c.CrackInTwo(2, 2, 4); p != 2 {
		t.Fatalf("empty range: p=%d, want 2", p)
	}
}

func TestCrackInTwoDuplicates(t *testing.T) {
	c := New([]int64{5, 5, 5, 5, 5})
	if p := c.CrackInTwo(0, 5, 5); p != 0 {
		t.Fatalf("all-equal pivot=value: p=%d, want 0 (>= pivot goes right)", p)
	}
	c2 := New([]int64{5, 5, 5, 5, 5})
	if p := c2.CrackInTwo(0, 5, 6); p != 5 {
		t.Fatalf("all-equal pivot above: p=%d, want 5", p)
	}
}

func TestCrackInTwoProperty(t *testing.T) {
	f := func(vals []int64, pivot int64, seed uint64) bool {
		c := New(append([]int64(nil), vals...))
		before := multiset(c.Values, 0, len(vals))
		p := c.CrackInTwo(0, len(vals), pivot)
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			return false
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				return false
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCrackInTwoSubrangeProperty(t *testing.T) {
	// Cracking an interior range must not disturb tuples outside it.
	f := func(vals []int64, pivot int64, loRaw, hiRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		lo := int(loRaw) % len(vals)
		hi := lo + int(hiRaw)%(len(vals)-lo+1)
		c := New(append([]int64(nil), vals...))
		p := c.CrackInTwo(lo, hi, pivot)
		for i := 0; i < lo; i++ {
			if c.Values[i] != vals[i] {
				return false
			}
		}
		for i := hi; i < len(vals); i++ {
			if c.Values[i] != vals[i] {
				return false
			}
		}
		if p < lo || p > hi {
			return false
		}
		for i := lo; i < p; i++ {
			if c.Values[i] >= pivot {
				return false
			}
		}
		for i := p; i < hi; i++ {
			if c.Values[i] < pivot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCrackInThreeBasic(t *testing.T) {
	c := New([]int64{13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6})
	p1, p2 := c.CrackInThree(0, c.Len(), 7, 11)
	for i := 0; i < p1; i++ {
		if c.Values[i] >= 7 {
			t.Fatalf("pos %d: %d not < 7", i, c.Values[i])
		}
	}
	for i := p1; i < p2; i++ {
		if c.Values[i] < 7 || c.Values[i] >= 11 {
			t.Fatalf("pos %d: %d not in [7,11)", i, c.Values[i])
		}
	}
	for i := p2; i < c.Len(); i++ {
		if c.Values[i] < 11 {
			t.Fatalf("pos %d: %d not >= 11", i, c.Values[i])
		}
	}
}

func TestCrackInThreeProperty(t *testing.T) {
	f := func(vals []int64, a, b int64) bool {
		if a > b {
			a, b = b, a
		}
		c := New(append([]int64(nil), vals...))
		before := multiset(c.Values, 0, len(vals))
		p1, p2 := c.CrackInThree(0, len(vals), a, b)
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			return false
		}
		if p1 > p2 || p1 < 0 || p2 > len(vals) {
			return false
		}
		for i := 0; i < p1; i++ {
			if c.Values[i] >= a {
				return false
			}
		}
		for i := p1; i < p2; i++ {
			if c.Values[i] < a || c.Values[i] >= b {
				return false
			}
		}
		for i := p2; i < len(vals); i++ {
			if c.Values[i] < b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCrackInThreeEqualPivots(t *testing.T) {
	c := New([]int64{3, 1, 4, 1, 5, 9, 2, 6})
	p1, p2 := c.CrackInThree(0, c.Len(), 4, 4)
	if p1 != p2 {
		t.Fatalf("a == b should yield empty middle: p1=%d p2=%d", p1, p2)
	}
	for i := 0; i < p1; i++ {
		if c.Values[i] >= 4 {
			t.Fatal("left part violates < a")
		}
	}
	for i := p2; i < c.Len(); i++ {
		if c.Values[i] < 4 {
			t.Fatal("right part violates >= b")
		}
	}
}

func TestCrackInThreePanicsOnInvertedPivots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CrackInThree(a>b) did not panic")
		}
	}()
	New([]int64{1, 2, 3}).CrackInThree(0, 3, 5, 2)
}

func TestCrackPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CrackInTwo with hi>len did not panic")
		}
	}()
	New([]int64{1, 2, 3}).CrackInTwo(0, 4, 2)
}

func TestRowIDsFollowValues(t *testing.T) {
	vals := []int64{13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6}
	c := NewWithRowIDs(append([]int64(nil), vals...))
	c.CrackInTwo(0, c.Len(), 10)
	c.CrackInThree(0, c.Len(), 3, 12)
	for i, id := range c.RowIDs {
		if vals[id] != c.Values[i] {
			t.Fatalf("row id %d at pos %d does not match value %d", id, i, c.Values[i])
		}
	}
}

func TestSplitAndMaterialize(t *testing.T) {
	r := xrand.New(1)
	vals := r.Perm(200)
	c := New(append([]int64(nil), vals...))
	out, p := c.SplitAndMaterialize(0, c.Len(), 100, 40, 60, nil)
	if len(out) != 20 {
		t.Fatalf("materialized %d values in [40,60), want 20", len(out))
	}
	seen := make(map[int64]bool)
	for _, x := range out {
		if x < 40 || x >= 60 || seen[x] {
			t.Fatalf("bad materialized value %d", x)
		}
		seen[x] = true
	}
	for i := 0; i < p; i++ {
		if c.Values[i] >= 100 {
			t.Fatal("partition invariant broken left of split")
		}
	}
	for i := p; i < c.Len(); i++ {
		if c.Values[i] < 100 {
			t.Fatal("partition invariant broken right of split")
		}
	}
}

func TestSplitAndMaterializeProperty(t *testing.T) {
	f := func(vals []int64, pivot, a, b int64) bool {
		if a > b {
			a, b = b, a
		}
		c := New(append([]int64(nil), vals...))
		before := multiset(c.Values, 0, len(vals))
		want := 0
		for _, x := range vals {
			if a <= x && x < b {
				want++
			}
		}
		out, p := c.SplitAndMaterialize(0, len(vals), pivot, a, b, nil)
		if len(out) != want {
			return false
		}
		for _, x := range out {
			if x < a || x >= b {
				return false
			}
		}
		if !sameMultiset(before, multiset(c.Values, 0, len(vals))) {
			return false
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				return false
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndMaterializeGE(t *testing.T) {
	f := func(vals []int64, pivot, a int64) bool {
		c := New(append([]int64(nil), vals...))
		want := 0
		for _, x := range vals {
			if x >= a {
				want++
			}
		}
		out, p := c.SplitAndMaterializeGE(0, len(vals), pivot, a, nil)
		if len(out) != want {
			return false
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				return false
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndMaterializeLT(t *testing.T) {
	f := func(vals []int64, pivot, b int64) bool {
		c := New(append([]int64(nil), vals...))
		want := 0
		for _, x := range vals {
			if x < b {
				want++
			}
		}
		out, p := c.SplitAndMaterializeLT(0, len(vals), pivot, b, nil)
		if len(out) != want {
			return false
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= pivot {
				return false
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < pivot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScanMaterializeAndCount(t *testing.T) {
	r := xrand.New(9)
	vals := r.Perm(500)
	c := New(vals)
	out := c.ScanMaterialize(0, c.Len(), 100, 150, nil)
	if len(out) != 50 {
		t.Fatalf("scan found %d, want 50", len(out))
	}
	if n := c.CountRange(0, c.Len(), 100, 150); n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i, x := range out {
		if x != int64(100+i) {
			t.Fatalf("scan result corrupted at %d: %d", i, x)
		}
	}
}

func TestTouchedAccounting(t *testing.T) {
	c := New(xrand.New(2).Perm(1000))
	c.Stats.Reset()
	c.CrackInTwo(0, 1000, 500)
	if c.Stats.Touched != 1000 {
		t.Fatalf("CrackInTwo touched = %d, want 1000", c.Stats.Touched)
	}
	c.Stats.Reset()
	c.CrackInThree(100, 600, 200, 400)
	if c.Stats.Touched != 500 {
		t.Fatalf("CrackInThree touched = %d, want 500", c.Stats.Touched)
	}
	c.Stats.Reset()
	c.ScanMaterialize(0, 1000, 0, 10, nil)
	if c.Stats.Touched != 1000 {
		t.Fatalf("ScanMaterialize touched = %d, want 1000", c.Stats.Touched)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewWithRowIDs([]int64{3, 1, 2})
	cp := c.Clone()
	cp.Values[0] = 99
	cp.RowIDs[0] = 7
	if c.Values[0] != 3 || c.RowIDs[0] != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestStepPartitionCompletesLikeCrackInTwo(t *testing.T) {
	r := xrand.New(4)
	vals := r.Perm(1000)
	a := New(append([]int64(nil), vals...))
	b := New(append([]int64(nil), vals...))
	want := a.CrackInTwo(0, 1000, 500)

	ps := NewPartitionState(0, 1000, 500)
	steps := 0
	for !b.StepPartition(ps, 7) {
		steps++
		if steps > 10000 {
			t.Fatal("progressive partition did not terminate")
		}
	}
	if ps.SplitPos() != want {
		t.Fatalf("progressive split = %d, want %d", ps.SplitPos(), want)
	}
	for i := 0; i < want; i++ {
		if b.Values[i] >= 500 {
			t.Fatal("progressive partition invariant broken (left)")
		}
	}
	for i := want; i < 1000; i++ {
		if b.Values[i] < 500 {
			t.Fatal("progressive partition invariant broken (right)")
		}
	}
}

func TestStepPartitionPreservesMultiset(t *testing.T) {
	f := func(vals []int64, pivot int64, budget uint8) bool {
		c := New(append([]int64(nil), vals...))
		before := multiset(c.Values, 0, len(vals))
		ps := NewPartitionState(0, len(vals), pivot)
		c.StepPartition(ps, int(budget%5)+1)
		return sameMultiset(before, multiset(c.Values, 0, len(vals)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStepPartitionSwapBudgetRespected(t *testing.T) {
	// Reverse-sorted data maximizes swaps: every step must swap.
	n := 100
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(n - i)
	}
	c := New(vals)
	ps := NewPartitionState(0, n, int64(n/2)+1)
	c.Stats.Reset()
	c.StepPartition(ps, 3)
	if c.Stats.Swaps != 3 {
		t.Fatalf("swaps = %d, want exactly budget 3", c.Stats.Swaps)
	}
	if ps.Done() {
		t.Fatal("partition cannot be done after 3 swaps on reversed data")
	}
}

func TestStepPartitionUnbounded(t *testing.T) {
	c := New(xrand.New(5).Perm(300))
	ps := NewPartitionState(0, 300, 150)
	if !c.StepPartition(ps, 0) {
		t.Fatal("unbounded step must complete the partition")
	}
	if ps.SplitPos() != 150 {
		t.Fatalf("split = %d, want 150 on a permutation of [0,300)", ps.SplitPos())
	}
}

func TestStepPartitionDoneIdempotent(t *testing.T) {
	c := New([]int64{1, 2, 3})
	ps := NewPartitionState(0, 3, 2)
	c.StepPartition(ps, 0)
	if !ps.Done() {
		t.Fatal("expected done")
	}
	pos := ps.SplitPos()
	if !c.StepPartition(ps, 5) || ps.SplitPos() != pos {
		t.Fatal("StepPartition on a done state must be a no-op")
	}
}
