package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/updates"
)

func tinyConfig() Config {
	return Config{N: 50_000, Q: 200, S: 10, Seed: 42, Validate: true}
}

func TestOracleClosedForm(t *testing.T) {
	cases := []struct {
		a, b, n    int64
		count, sum int64
	}{
		{0, 10, 100, 10, 45},
		{90, 110, 100, 10, 945},
		{-5, 5, 100, 5, 10},
		{50, 50, 100, 0, 0},
		{60, 40, 100, 0, 0},
		{0, 100, 100, 100, 4950},
	}
	for _, c := range cases {
		count, sum := oracle(c.a, c.b, c.n)
		if count != c.count || sum != c.sum {
			t.Errorf("oracle(%d,%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, c.n, count, sum, c.count, c.sum)
		}
	}
}

func TestMakeDataIsPermutation(t *testing.T) {
	d := MakeData(1000, 7)
	seen := make([]bool, 1000)
	for _, v := range d {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatal("MakeData is not a permutation")
		}
		seen[v] = true
	}
	d2 := MakeData(1000, 7)
	for i := range d {
		if d[i] != d2[i] {
			t.Fatal("MakeData not deterministic")
		}
	}
}

func TestRunValidatesEveryAlgorithm(t *testing.T) {
	cfg := tinyConfig()
	specs := []string{"scan", "sort", "crack", "ddr", "dd1r", "mdd1r", "pmdd1r-10",
		"fiftyfifty", "flipcoin", "scrackmon-5", "r2crack", "aicc", "aics", "aicc1r", "aics1r"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			s, err := Run(cfg, spec, "sequential")
			if err != nil {
				t.Fatal(err)
			}
			if len(s.PerQueryNS) != cfg.Q || s.TotalNS <= 0 {
				t.Fatalf("bad series: %d points, total %d", len(s.PerQueryNS), s.TotalNS)
			}
			if s.CumulativeNS[cfg.Q-1] != s.TotalNS {
				t.Fatal("cumulative tail != total")
			}
		})
	}
}

func TestRunAllWorkloadsWithValidation(t *testing.T) {
	cfg := tinyConfig()
	for _, wl := range []string{"random", "skew", "periodic", "zoomin", "zoomout",
		"sequential", "seqreverse", "zoominalt", "zoomoutalt", "skewzoomoutalt",
		"seqrandom", "seqzoomin", "seqzoomout", "mixed", "skyserver"} {
		if _, err := Run(cfg, "mdd1r", wl); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
	}
}

func TestRunUnknownSpecAndWorkload(t *testing.T) {
	if _, err := Run(tinyConfig(), "nope", "random"); err == nil {
		t.Fatal("unknown spec accepted")
	}
	if _, err := Run(tinyConfig(), "crack", "nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunWithUpdates(t *testing.T) {
	// With updates the closed-form oracle no longer holds, so run without
	// Validate and check the update stream was exercised.
	cfg := tinyConfig()
	cfg.Validate = false
	var queued int
	var wrapped *updates.Index
	s, err := RunWithUpdates(cfg, "crack", "random", func(i int, u *updates.Index) {
		wrapped = u
		if i%10 == 0 {
			u.Insert(int64(i))
			queued++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if queued == 0 || wrapped == nil {
		t.Fatal("update stream never ran")
	}
	if wrapped.Merged()+int64(wrapped.Pending()) != int64(queued) {
		t.Fatalf("merged %d + pending %d != queued %d",
			wrapped.Merged(), wrapped.Pending(), queued)
	}
	if s.TotalNS <= 0 {
		t.Fatal("no time recorded")
	}
	if _, err := RunWithUpdates(cfg, "sort", "random", func(int, *updates.Index) {}); err == nil {
		t.Fatal("sort must reject updates")
	}
	if _, err := RunWithUpdates(cfg, "aicc", "random", func(int, *updates.Index) {}); err == nil {
		t.Fatal("hybrids must reject updates (not engine-backed)")
	}
}

func TestCheckpoints(t *testing.T) {
	cp := Checkpoints(1000)
	if cp[0] != 1 || cp[len(cp)-1] != 1000 {
		t.Fatalf("checkpoints = %v", cp)
	}
	for i := 1; i < len(cp)-1; i++ {
		if cp[i] != cp[i-1]*2 {
			t.Fatalf("checkpoints not log-spaced: %v", cp)
		}
	}
}

func TestSecondsFormatting(t *testing.T) {
	cases := map[int64]string{
		1_500_000_000:   "1.50",
		15_000_000_000:  "15.0",
		150_000_000_000: "150",
		1_000_000:       "0.001",
	}
	for ns, want := range cases {
		if got := Seconds(ns); got != want {
			t.Errorf("Seconds(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestExperimentsRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("experiment count = %d, want 17", len(all))
	}
	if _, ok := ByID("concurrency"); !ok {
		t.Fatal("concurrency missing")
	}
	if _, ok := ByID("parallelcrack"); !ok {
		t.Fatal("parallelcrack missing")
	}
	if _, ok := ByID("fig2"); !ok {
		t.Fatal("fig2 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 found")
	}
	if !strings.Contains(IDs(), "fig17") || !strings.Contains(IDs(), "all") {
		t.Fatalf("IDs() = %q", IDs())
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	cfg := Config{N: 20_000, Q: 64, S: 5, Seed: 1, Validate: false}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestStochasticBeatsCrackShapeAtHarnessLevel(t *testing.T) {
	// The headline reproduction claim, asserted at harness level: on the
	// sequential workload the stochastic default beats original cracking
	// in tuples touched by a wide margin.
	cfg := Config{N: 200_000, Q: 400, S: 10, Seed: 3, Validate: true}
	crack, err := Run(cfg, "crack", "sequential")
	if err != nil {
		t.Fatal(err)
	}
	scrack, err := Run(cfg, "pmdd1r-10", "sequential")
	if err != nil {
		t.Fatal(err)
	}
	if scrack.Final.Touched*5 > crack.Final.Touched {
		t.Fatalf("scrack touched %d vs crack %d; expected >=5x gap",
			scrack.Final.Touched, crack.Final.Touched)
	}
	// And on random workloads the two stay within a small factor.
	crackR, err := Run(cfg, "crack", "random")
	if err != nil {
		t.Fatal(err)
	}
	scrackR, err := Run(cfg, "pmdd1r-10", "random")
	if err != nil {
		t.Fatal(err)
	}
	if scrackR.Final.Touched > crackR.Final.Touched*4 {
		t.Fatalf("on random, scrack touched %d vs crack %d; overhead too large",
			scrackR.Final.Touched, crackR.Final.Touched)
	}
}
