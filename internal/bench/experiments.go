package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/updates"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Basic cracking performance: per-query, cumulative, tuples touched (Fig. 2)", runFig2},
		{"fig8", "Varying DDC piece-size threshold, sequential workload (Fig. 8)", runFig8},
		{"fig9", "Improving the sequential workload via stochastic cracking (Fig. 9)", runFig9},
		{"fig10", "Random workload: stochastic cracking keeps cracking's adaptivity (Fig. 10)", runFig10},
		{"fig11", "Varying selectivity (Fig. 11)", runFig11},
		{"fig12", "Naive approaches: injected random queries (Fig. 12)", runFig12},
		{"fig13", "Various workloads under stochastic cracking (Fig. 13)", runFig13},
		{"fig14", "Adaptive indexing hybrids and their stochastic variants (Fig. 14)", runFig14},
		{"fig15", "Updates interleaved with the sequential workload (Fig. 15)", runFig15},
		{"fig16", "SkyServer workload: cumulative time and access pattern (Fig. 16)", runFig16},
		{"fig17", "All workloads x selective strategies, cumulative seconds (Fig. 17)", runFig17},
		{"fig18", "Selective stochastic cracking with varying period, SkyServer (Fig. 18)", runFig18},
		{"fig19", "Selective stochastic cracking via monitoring, SkyServer (Fig. 19)", runFig19},
		{"fig20", "Initialization cost vs total cost, sequential workload (Fig. 20)", runFig20},
		{"patterns", "Workload access patterns (Fig. 7 and Fig. 16b)", runPatterns},
		{"concurrency", "Adaptive executor vs mutex vs sharded under concurrent load (§6 extension)", runConcurrency},
		{"parallelcrack", "Serial vs chunked-parallel crack kernel, first touch and convergence (multi-core extension)", runParallelCrack},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// printSeriesHeader emits the gnuplot-friendly column header used by the
// figure experiments.
func printSeriesHeader(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-14s %8s %14s %14s %14s\n",
		"algorithm", "workload", "query", "per-query(ms)", "cumulative(s)", "touched")
}

func printSeriesCheckpoints(w io.Writer, s *Series) {
	for _, c := range Checkpoints(len(s.PerQueryNS)) {
		per, cum, touched := s.At(c - 1)
		fmt.Fprintf(w, "%-14s %-14s %8d %14.4f %14s %14d\n",
			s.Algo, s.Workload, c, float64(per)/1e6, Seconds(cum), touched)
	}
}

func runCells(cfg Config, w io.Writer, workloads, specs []string) error {
	printSeriesHeader(w)
	for _, wl := range workloads {
		for _, spec := range specs {
			s, err := Run(cfg, spec, wl)
			if err != nil {
				return err
			}
			printSeriesCheckpoints(w, s)
			fmt.Fprintln(w)
		}
	}
	return nil
}

// ---- Fig. 2 -------------------------------------------------------------

func runFig2(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "# Fig. 2(a,b): per-query response time; (c,d): cumulative; (e): tuples touched")
	fmt.Fprintln(w, "# paper shape: random -> Crack converges toward Sort, never penalized vs Scan;")
	fmt.Fprintln(w, "#              sequential -> Crack stays at Scan level; touched stays ~N")
	return runCells(cfg, w, []string{"random", "sequential"}, []string{"scan", "crack", "sort"})
}

// ---- Fig. 8 -------------------------------------------------------------

func runFig8(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "# Fig. 8: cumulative seconds for the sequential workload under DDC")
	fmt.Fprintln(w, "# varying the piece-size threshold CRACK_AT (L1 = 4096 tuples, L2 = 32768)")
	thresholds := []struct {
		label string
		size  int
	}{
		{"L1/4", core.DefaultCrackSize / 4},
		{"L1/2", core.DefaultCrackSize / 2},
		{"L1", core.DefaultCrackSize},
		{"L2", core.DefaultProgressiveSize},
		{"3L2", 3 * core.DefaultProgressiveSize},
	}
	fmt.Fprintf(w, "%-10s %-10s %14s\n", "threshold", "tuples", "cumulative(s)")
	data := MakeData(cfg.N, cfg.Seed)
	for _, th := range thresholds {
		ix := core.NewDDC(append([]int64(nil), data...), core.Options{Seed: cfg.Seed, CrackSize: th.size})
		gen, err := workload.New("sequential", workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		s, err := RunIndex(cfg, ix, gen, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %-10d %14s\n", th.label, th.size, Seconds(s.TotalNS))
	}
	return nil
}

// ---- Fig. 9 / 10 --------------------------------------------------------

func runFig9(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "# Fig. 9: sequential workload, cumulative response time")
	fmt.Fprintln(w, "# (a) DDC/DDR; (b) DD1C/DD1R; (c) progressive P100/P50/P10/P1; plus Crack, Sort")
	return runCells(cfg, w, []string{"sequential"},
		[]string{"sort", "crack", "ddc", "ddr", "dd1c", "dd1r",
			"pmdd1r-100", "pmdd1r-50", "pmdd1r-10", "pmdd1r-1"})
}

func runFig10(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "# Fig. 10: random workload, cumulative response time")
	fmt.Fprintln(w, "# paper shape: all stochastic variants track original cracking closely")
	return runCells(cfg, w, []string{"random"},
		[]string{"sort", "ddc", "dd1c", "ddr", "dd1r", "pmdd1r-50", "crack"})
}

// ---- Fig. 11 ------------------------------------------------------------

// selGenerator wraps a base workload, overriding selectivity with a random
// width per query ("Rand" column of Fig. 11).
type randSelGenerator struct {
	base workload.Generator
	n    int64
	rng  *xrand.Rand
	seed uint64
}

func (g *randSelGenerator) Name() string { return g.base.Name() + "+randsel" }
func (g *randSelGenerator) Reset() {
	g.base.Reset()
	g.rng.Seed(g.seed)
}
func (g *randSelGenerator) Next() (int64, int64) {
	lo, _ := g.base.Next()
	width := g.rng.Int63n(g.n-lo) + 1
	return lo, lo + width
}

func runFig11(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	if cfg.Q > 1000 {
		cfg.Q = 1000 // the paper's Fig. 11 uses 10^3 queries
	}
	fmt.Fprintln(w, "# Fig. 11: cumulative seconds for 10^3 queries, varying selectivity")
	fmt.Fprintln(w, "# selectivity given as fraction of N (1e-7 of 1e8 = the paper's 10-tuple default)")
	specs := []string{"scan", "sort", "crack", "dd1r", "pmdd1r-10"}
	sels := []struct {
		label string
		frac  float64
		rand  bool
	}{
		{"1e-7", 1e-7, false},
		{"1e-4", 1e-4, false},
		{"10%", 0.1, false},
		{"50%", 0.5, false},
		{"Rand", 0, true},
	}
	for _, wl := range []string{"random", "sequential"} {
		fmt.Fprintf(w, "\n%s workload\n", wl)
		fmt.Fprintf(w, "%-12s", "algorithm")
		for _, s := range sels {
			fmt.Fprintf(w, " %10s", s.label)
		}
		fmt.Fprintln(w)
		for _, spec := range specs {
			fmt.Fprintf(w, "%-12s", spec)
			for _, sel := range sels {
				c := cfg
				c.S = int64(sel.frac * float64(cfg.N))
				if c.S < 1 {
					c.S = 10
				}
				var gen workload.Generator
				var err error
				base, err := workload.New(wl, workload.Params{N: c.N, Q: c.Q, S: c.S, Seed: c.Seed})
				if err != nil {
					return err
				}
				gen = base
				if sel.rand {
					gen = &randSelGenerator{base: base, n: c.N, rng: xrand.New(c.Seed + 7), seed: c.Seed + 7}
				}
				ix, err := BuildIndex(MakeData(c.N, c.Seed), spec, c)
				if err != nil {
					return err
				}
				s, err := RunIndex(c, ix, gen, nil)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %10s", Seconds(s.TotalNS))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// ---- Fig. 12 ------------------------------------------------------------

func runFig12(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	if cfg.Q > 1000 {
		cfg.Q = 1000 // Fig. 12 plots 10^3 queries
	}
	fmt.Fprintln(w, "# Fig. 12: naive random-query injection vs integrated stochastic cracking")
	fmt.Fprintln(w, "# paper shape: RXcrack ~10x better than Crack; Scrack another ~10x and converges")
	return runCells(cfg, w, []string{"sequential"},
		[]string{"crack", "r1crack", "r2crack", "r4crack", "r8crack", "pmdd1r-10"})
}

// ---- Fig. 13 ------------------------------------------------------------

func runFig13(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "# Fig. 13: cumulative time on Periodic / ZoomOut / ZoomIn / ZoomInAlt")
	fmt.Fprintln(w, "# Scrack = progressive stochastic cracking P10% (the paper's default)")
	return runCells(cfg, w,
		[]string{"periodic", "zoomout", "zoomin", "zoominalt"},
		[]string{"sort", "crack", "pmdd1r-10"})
}

// ---- Fig. 14 ------------------------------------------------------------

func runFig14(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	if cfg.Q > 1000 {
		cfg.Q = 1000 // Fig. 14 plots 10^3 queries
	}
	fmt.Fprintln(w, "# Fig. 14: partition/merge hybrids on the sequential workload")
	fmt.Fprintln(w, "# paper shape: AICS/AICC fail like Crack (slightly worse: merge overhead);")
	fmt.Fprintln(w, "#              AICS1R/AICC1R converge like stochastic cracking")
	return runCells(cfg, w, []string{"sequential"},
		[]string{"aics", "aicc", "crack", "aics1r", "aicc1r"})
}

// ---- Fig. 15 ------------------------------------------------------------

func runFig15(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "# Fig. 15: high-frequency low-volume updates (10 random inserts per 10 queries)")
	fmt.Fprintln(w, "# interleaved with the sequential workload; Scrack keeps its robustness")
	printSeriesHeader(w)
	for _, spec := range []string{"crack", "pmdd1r-10"} {
		rng := xrand.New(cfg.Seed + 99)
		stream := func(i int, u *updates.Index) {
			if i%10 == 0 {
				for k := 0; k < 10; k++ {
					u.Insert(rng.Int63n(cfg.N))
				}
			}
		}
		s, err := RunWithUpdates(cfg, spec, "sequential", stream)
		if err != nil {
			return err
		}
		printSeriesCheckpoints(w, s)
		fmt.Fprintln(w)
	}
	return nil
}

// ---- Fig. 16 ------------------------------------------------------------

func runFig16(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "# Fig. 16(a): cumulative time on the (synthetic) SkyServer trace")
	fmt.Fprintln(w, "# paper shape: Crack degrades continuously; Scrack answers the whole trace")
	fmt.Fprintln(w, "# in a small flat budget; Sort pays once; Scan is far above everything")
	if err := runCells(cfg, w, []string{"skyserver"},
		[]string{"crack", "pmdd1r-10", "sort", "scan"}); err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig. 16(b): access pattern (query index, range midpoint)")
	gen, err := workload.New("skyserver", workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	xs, mids := workload.Pattern(gen, cfg.Q, 60)
	for i := range xs {
		fmt.Fprintf(w, "pattern skyserver %8d %14d\n", xs[i], mids[i])
	}
	return nil
}

// ---- Fig. 17 ------------------------------------------------------------

func runFig17(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "# Fig. 17: cumulative seconds per workload and cracking strategy")
	fmt.Fprintln(w, "# Scrack here = MDD1R (as in the paper's Fig. 17); SkyServer = synthetic trace")
	specs := []string{"crack", "mdd1r", "fiftyfifty", "flipcoin"}
	fmt.Fprintf(w, "%-16s", "workload")
	for _, s := range specs {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, wl := range workload.Names() {
		fmt.Fprintf(w, "%-16s", wl)
		for _, spec := range specs {
			s, err := Run(cfg, spec, wl)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", Seconds(s.TotalNS))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---- Fig. 18 / 19 -------------------------------------------------------

func runFig18(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "# Fig. 18: stochastic crack every X queries on the SkyServer trace")
	fmt.Fprintln(w, "# paper shape: cost grows monotonically with X; X=1 (continuous) is best")
	fmt.Fprintf(w, "%-8s %14s\n", "X", "cumulative(s)")
	for _, x := range []int{1, 2, 4, 8, 16, 32} {
		spec := fmt.Sprintf("every-%d", x)
		if x == 1 {
			spec = "mdd1r"
		}
		s, err := Run(cfg, spec, "skyserver")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %14s\n", x, Seconds(s.TotalNS))
	}
	return nil
}

func runFig19(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "# Fig. 19: monitored stochastic cracking (per-piece counters) on SkyServer")
	fmt.Fprintln(w, "# paper shape: cost grows with the monitoring threshold X; X=1 is best")
	fmt.Fprintf(w, "%-8s %14s\n", "X", "cumulative(s)")
	for _, x := range []int{1, 5, 10, 50, 100, 500} {
		s, err := Run(cfg, fmt.Sprintf("scrackmon-%d", x), "skyserver")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %14s\n", x, Seconds(s.TotalNS))
	}
	return nil
}

// ---- Fig. 20 ------------------------------------------------------------

func runFig20(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "# Fig. 20: x = total cumulative seconds; y = cumulative seconds after")
	fmt.Fprintln(w, "# the first 1, 2, 4, 8, 16, 32 queries (sequential workload)")
	fmt.Fprintf(w, "%-12s %12s", "algorithm", "total(s)")
	firsts := []int{1, 2, 4, 8, 16, 32}
	for _, f := range firsts {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("q<=%d(s)", f))
	}
	fmt.Fprintln(w)
	for _, spec := range []string{"dd1r", "pmdd1r-5", "pmdd1r-10"} {
		s, err := Run(cfg, spec, "sequential")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12s", spec, Seconds(s.TotalNS))
		for _, f := range firsts {
			fmt.Fprintf(w, " %10s", Seconds(s.CumulativeNS[f-1]))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---- Fig. 7 / 16(b) patterns -------------------------------------------

func runPatterns(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "# Workload access patterns: (workload, query index, range midpoint)")
	names := workload.Names()
	sort.Strings(names)
	for _, name := range names {
		gen, err := workload.New(name, workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		xs, mids := workload.Pattern(gen, cfg.Q, 40)
		for i := range xs {
			fmt.Fprintf(w, "%-16s %8d %14d\n", name, xs[i], mids[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// IDs returns all experiment ids plus the "all" meta-id, for CLI help.
func IDs() string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return strings.Join(append(ids, "all"), ", ")
}
