package bench

// The paper's published measurements, transcribed from the VLDB 2012
// camera-ready. All values are cumulative seconds on the authors' testbed
// (2x Intel E5620, 24 GB RAM, N = 10^8 tuples; SkyServer = 1.6*10^5 real
// queries over a 500M-tuple attribute). Absolute numbers are not
// comparable across machines/languages/scales; the report generator uses
// them exclusively for *shape* checks — who wins, and by roughly what
// factor.

// PaperFig8 is Fig. 8: DDC cumulative seconds for 10^4 sequential-workload
// queries, varying the piece-size threshold.
var PaperFig8 = map[string]float64{
	"L1/4": 2.2,
	"L1/2": 2.2,
	"L1":   2.2,
	"L2":   7.8,
	"3L2":  54.7,
}

// PaperFig11 is Fig. 11: cumulative seconds for 10^3 queries, by workload,
// algorithm, and selectivity column {1e-7, 1e-2, 10%, 50%, Rand}.
var PaperFig11 = map[string]map[string][5]float64{
	"random": {
		"scan":      {360, 360, 500, 628, 550},
		"sort":      {11.8, 11.8, 11.8, 11.8, 11.8},
		"crack":     {6.1, 6.0, 5.7, 5.9, 5.9},
		"dd1r":      {6.5, 6.5, 6.4, 6.4, 6.4},
		"pmdd1r-10": {8.6, 8.6, 10.3, 10.3, 10.3},
	},
	"sequential": {
		"scan":      {125, 125, 260, 550, 410},
		"sort":      {11.8, 11.8, 11.8, 11.8, 11.8},
		"crack":     {92, 96, 108, 103, 6},
		"dd1r":      {0.9, 0.9, 1.1, 1.5, 5.9},
		"pmdd1r-10": {1, 1, 1.9, 3.4, 9.1},
	},
}

// PaperFig17 is Fig. 17: cumulative seconds per workload for the four
// strategies {Crack, Scrack(MDD1R), FiftyFifty, FlipCoin}. 10^4 queries
// per workload; SkyServer 1.6*10^5.
var PaperFig17 = map[string][4]float64{
	"periodic":       {15.4, 5, 8.4, 6.9},
	"zoomout":        {1019, 1.6, 2, 2},
	"zoomin":         {7.2, 1.4, 1.3, 2},
	"zoominalt":      {1822, 1.8, 916, 1.2},
	"random":         {8.6, 10, 9.5, 9.4},
	"skew":           {7.6, 7.1, 8.8, 8.7},
	"seqreverse":     {2791, 1, 1.8, 1.6},
	"seqzoomin":      {2.3, 1.2, 1.9, 1.2},
	"seqrandom":      {8.6, 9.6, 7.8, 9.2},
	"sequential":     {861, 0.4, 1.6, 2.4},
	"seqzoomout":     {1215, 1.3, 2, 1.5},
	"zoomoutalt":     {920, 1.2, 224, 1.2},
	"skewzoomoutalt": {1382, 1.1, 1381, 2.2},
	"mixed":          {331, 3.2, 30.5, 4.5},
	"skyserver":      {2274, 25, 62, 35},
}

// PaperFig17Strategies names Fig. 17's columns in order.
var PaperFig17Strategies = [4]string{"crack", "mdd1r", "fiftyfifty", "flipcoin"}

// PaperFig18 is Fig. 18: SkyServer cumulative seconds with stochastic
// cracking applied every X queries.
var PaperFig18 = map[int]float64{1: 25, 2: 62, 4: 65, 8: 97, 16: 153, 32: 239}

// PaperFig19 is Fig. 19: SkyServer cumulative seconds with monitored
// stochastic cracking at per-piece threshold X.
var PaperFig19 = map[int]float64{1: 25, 5: 83, 10: 127, 50: 366, 100: 585, 500: 1316}

// PaperFig16 is Fig. 16(a)'s narrative numbers for the SkyServer trace:
// full trace cumulative seconds per strategy.
var PaperFig16 = map[string]float64{
	"crack":     2274, // "more than 2000 seconds"
	"pmdd1r-10": 25,
	"sort":      70,
	"scan":      8000, // "more than 8000 seconds"
}

// PaperPathologicalWorkloads lists the workloads on which the paper shows
// original cracking losing by orders of magnitude (Fig. 13/17); used by
// the report's direction checks.
var PaperPathologicalWorkloads = []string{
	"periodic", "zoomout", "zoomin", "zoominalt",
	"seqreverse", "sequential", "seqzoomout",
	"zoomoutalt", "skewzoomoutalt", "mixed",
}

// PaperCrackFriendlyWorkloads lists the workloads with enough inherent
// randomness that original cracking stays competitive (its benefit over
// stochastic cracking is bounded by ~1 second over 10^4 queries).
var PaperCrackFriendlyWorkloads = []string{"random", "skew", "seqrandom"}

// PaperFiftyFiftyFailures lists the workloads on which the deterministic
// FiftyFifty policy collapses while the probabilistic FlipCoin stays
// robust (Fig. 17's analysis).
var PaperFiftyFiftyFailures = []string{"zoominalt", "zoomoutalt", "skewzoomoutalt"}
