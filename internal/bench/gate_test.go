package bench

import (
	"strings"
	"testing"
)

const baselineBench = `goos: linux
goarch: amd64
pkg: repro/internal/column
cpu: Intel(R) Xeon(R)
BenchmarkCrackInTwo/n=1M-8         	    1260	   1000000 ns/op	8275.26 MB/s	       0 B/op	       0 allocs/op
BenchmarkCrackInTwo/n=1M-8         	    1228	   1020000 ns/op	8786.11 MB/s	       0 B/op	       0 allocs/op
BenchmarkCrackInTwo/n=1M-8         	    1279	    980000 ns/op	8823.65 MB/s	       0 B/op	       0 allocs/op
BenchmarkCrackInTwo/n=10M-8        	     112	  11000000 ns/op	7291.45 MB/s	       0 B/op	       0 allocs/op
BenchmarkConvergedProbe-8          	 6054901	       190.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkUnrelated-8               	     100	    500000 ns/op
PASS
`

// shifted rewrites every ns/op sample of baselineBench by factor.
func shifted(t *testing.T, factor float64) map[string]*BenchSamples {
	t.Helper()
	base := parse(t, baselineBench)
	out := map[string]*BenchSamples{}
	for name, b := range base {
		c := &BenchSamples{Name: name, Iters: b.Iters}
		for _, ns := range b.NsPerOp {
			c.NsPerOp = append(c.NsPerOp, ns*factor)
		}
		out[name] = c
	}
	return out
}

func parse(t *testing.T, s string) map[string]*BenchSamples {
	t.Helper()
	m, err := ParseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var gatePrefixes = []string{"BenchmarkCrackInTwo", "BenchmarkConvergedProbe"}

func TestParseBench(t *testing.T) {
	m := parse(t, baselineBench)
	b := m["BenchmarkCrackInTwo/n=1M"]
	if b == nil {
		t.Fatalf("missing benchmark; parsed: %v", m)
	}
	if len(b.NsPerOp) != 3 {
		t.Fatalf("samples = %d, want 3", len(b.NsPerOp))
	}
	if got := b.MedianNs(); got != 1000000 {
		t.Fatalf("median = %v, want 1000000", got)
	}
	if got := m["BenchmarkConvergedProbe"].MedianNs(); got != 190 {
		t.Fatalf("probe median = %v", got)
	}
	if got := b.MedianAllocs(); got != 0 {
		t.Fatalf("allocs median = %v, want 0", got)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	findings, err := Gate(parse(t, baselineBench), shifted(t, 1.10), gatePrefixes, 1.15)
	if err != nil {
		t.Fatalf("10%% drift must pass a 15%% gate: %v", err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want 3 (unmatched benchmarks excluded)", len(findings))
	}
}

// TestGateFailsOnInjectedRegression is the CI acceptance proof: a >15%
// ns/op regression injected into the kernel benchmarks fails the gate.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	findings, err := Gate(parse(t, baselineBench), shifted(t, 1.20), gatePrefixes, 1.15)
	if err == nil {
		t.Fatal("20% regression must fail a 15% gate")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unhelpful error: %v", err)
	}
	regressed := 0
	for _, f := range findings {
		if f.Regress {
			regressed++
		}
	}
	if regressed != 3 {
		t.Fatalf("regressed = %d, want all 3 gated benchmarks", regressed)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	if _, err := Gate(parse(t, baselineBench), shifted(t, 0.5), gatePrefixes, 1.15); err != nil {
		t.Fatalf("an improvement must pass: %v", err)
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	cur := shifted(t, 1.0)
	delete(cur, "BenchmarkConvergedProbe")
	if _, err := Gate(parse(t, baselineBench), cur, gatePrefixes, 1.15); err == nil {
		t.Fatal("a gated benchmark missing from the current run must fail")
	}
}

func TestGateUnmatchedIgnored(t *testing.T) {
	// BenchmarkUnrelated regresses 10x but is not gated.
	cur := shifted(t, 1.0)
	cur["BenchmarkUnrelated"].NsPerOp = []float64{5_000_000}
	if _, err := Gate(parse(t, baselineBench), cur, gatePrefixes, 1.15); err != nil {
		t.Fatalf("ungated benchmark must not fail the gate: %v", err)
	}
}
