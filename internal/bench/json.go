package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Machine-readable benchmark reports: the perf trajectory of this
// repository is recorded as BENCH_*.json files with a stable row schema,
// one file per PR that claims a performance change (crackbench -json).
// CI regenerates a current report on every run and uploads it as an
// artifact, so regressions are visible as data, not anecdotes.

// JSONRow is one measurement in the stable schema. Experiment cells
// (algorithm x workload runs) fill every field and always carry the
// oracle-validation verdict — the artifact certifies its own
// correctness, regardless of which flags the run was started with.
// Kernel rows (merged from `go test -bench` output) describe one
// operation per query: per_query_ns is the median ns/op and n is 0 (the
// workload label carries the operand size).
type JSONRow struct {
	Experiment string `json:"experiment"`
	Algorithm  string `json:"algorithm"`
	Workload   string `json:"workload"`
	N          int64  `json:"n"`
	Q          int64  `json:"q"`
	PerQueryNS int64  `json:"per_query_ns"`
	TotalNS    int64  `json:"total_ns"`
	Allocs     int64  `json:"allocs"` // mean heap allocations per query
	Bytes      int64  `json:"bytes"`  // mean heap bytes per query
	Oracle     string `json:"oracle"` // "ok", "n/a" (kernel rows) or the failure
	// Pieces is the index piece count the row's run ended with, where
	// meaningful (cluster and migration rows: non-zero means the node
	// serves warm).
	Pieces int `json:"pieces,omitempty"`
}

// JSONReport is the envelope of a BENCH_*.json file.
type JSONReport struct {
	Schema    string    `json:"schema"` // "crackdb-bench/v1"
	Generated string    `json:"generated"`
	Go        string    `json:"go"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	N         int64     `json:"n"`
	Q         int       `json:"q"`
	S         int64     `json:"s"`
	Seed      uint64    `json:"seed"`
	Rows      []JSONRow `json:"rows"`
}

// jsonAlgos and jsonWorkloads are the representative cell matrix of the
// JSON report: the paper's headline algorithms over the robust, the
// pathological and the real-trace workload.
var (
	jsonAlgos     = []string{"scan", "sort", "crack", "dd1r", "mdd1r", "pmdd1r-10"}
	jsonWorkloads = []string{"random", "sequential", "skyserver"}
)

// WriteJSON runs the JSON report's cell matrix under cfg — validation
// forced on, whatever cfg says — appends extra rows (kernel
// measurements), and writes the report. The report is always written,
// failed cells included; the returned error is non-nil when any cell
// failed oracle validation, so CI both uploads the artifact and fails
// the job.
func WriteJSON(cfg Config, w io.Writer, extra []JSONRow) error {
	cfg = cfg.WithDefaults()
	cfg.Validate = true
	var rows []JSONRow
	var failed []string
	for _, wl := range jsonWorkloads {
		for _, spec := range jsonAlgos {
			row := JSONRow{Experiment: "cell", Algorithm: spec, Workload: wl, N: cfg.N, Q: int64(cfg.Q), Oracle: "ok"}
			s, err := Run(cfg, spec, wl)
			if err != nil {
				row.Oracle = err.Error()
				failed = append(failed, fmt.Sprintf("%s/%s", spec, wl))
			} else {
				row.TotalNS = s.TotalNS
				row.PerQueryNS = s.TotalNS / int64(cfg.Q)
				row.Allocs = s.Allocs / int64(cfg.Q)
				row.Bytes = s.AllocBytes / int64(cfg.Q)
			}
			rows = append(rows, row)
		}
	}
	rows = append(rows, extra...)
	if err := WriteJSONRows(cfg, w, rows); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("bench: oracle validation failed for %s (see the oracle field of the written rows)",
			strings.Join(failed, ", "))
	}
	return nil
}

// WriteJSONRows writes a crackdb-bench/v1 report holding exactly the
// given rows — for callers that measured elsewhere (crackbench -cluster)
// and only want the envelope.
func WriteJSONRows(cfg Config, w io.Writer, rows []JSONRow) error {
	cfg = cfg.WithDefaults()
	rep := JSONReport{
		Schema:    "crackdb-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		N:         cfg.N,
		Q:         cfg.Q,
		S:         cfg.S,
		Seed:      cfg.Seed,
		Rows:      rows,
	}
	sortRows(rep.Rows)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ValidateReport checks a decoded BENCH_*.json against the
// crackdb-bench/v1 schema contract: the schema tag, a non-empty row set,
// and per-row invariants (experiment and algorithm set, a non-empty
// oracle verdict, non-negative timings, total consistent with per-query
// where both are present). It is the benchgate -check-json step, so a
// malformed committed artifact fails CI instead of silently gating
// nothing.
func ValidateReport(rep *JSONReport) error {
	if rep.Schema != "crackdb-bench/v1" {
		return fmt.Errorf("schema %q, want %q", rep.Schema, "crackdb-bench/v1")
	}
	if rep.Generated == "" {
		return fmt.Errorf("missing generated timestamp")
	}
	if _, err := time.Parse(time.RFC3339, rep.Generated); err != nil {
		return fmt.Errorf("generated %q is not RFC 3339: %v", rep.Generated, err)
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("no rows")
	}
	seen := map[string]bool{}
	for i, r := range rep.Rows {
		at := fmt.Sprintf("row %d (%s/%s/%s)", i, r.Experiment, r.Algorithm, r.Workload)
		if r.Experiment == "" || r.Algorithm == "" {
			return fmt.Errorf("%s: experiment and algorithm are required", at)
		}
		if r.Oracle == "" {
			return fmt.Errorf("%s: missing oracle verdict (\"ok\", \"n/a\" or the failure)", at)
		}
		if r.PerQueryNS < 0 || r.TotalNS < 0 || r.Allocs < 0 || r.Bytes < 0 || r.N < 0 || r.Q < 0 {
			return fmt.Errorf("%s: negative measurement", at)
		}
		key := r.Experiment + "\x00" + r.Algorithm + "\x00" + r.Workload
		if seen[key] {
			return fmt.Errorf("%s: duplicate (experiment, algorithm, workload) key", at)
		}
		seen[key] = true
	}
	return nil
}

// ReadReport decodes and validates one BENCH_*.json stream.
func ReadReport(r io.Reader) (*JSONReport, error) {
	var rep JSONReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	if err := ValidateReport(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

func sortRows(rows []JSONRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		return a.Workload < b.Workload
	})
}

// KernelRows converts parsed `go test -bench` samples (ParseBench) into
// JSON rows under the given experiment label, e.g. "kernel-before" /
// "kernel-after" for a PR's improvement evidence. The benchmark name
// splits into algorithm (func name) and workload (sub-benchmark label).
func KernelRows(experiment string, samples map[string]*BenchSamples) []JSONRow {
	var rows []JSONRow
	for _, b := range samples {
		algo := strings.TrimPrefix(b.Name, "Benchmark")
		workload := ""
		if i := strings.IndexByte(algo, '/'); i >= 0 {
			algo, workload = algo[:i], algo[i+1:]
		}
		rows = append(rows, JSONRow{
			Experiment: experiment,
			Algorithm:  algo,
			Workload:   workload,
			Q:          1,
			PerQueryNS: int64(b.MedianNs()),
			TotalNS:    int64(b.MedianNs()),
			Allocs:     int64(b.MedianAllocs()),
			Bytes:      int64(b.MedianBytes()),
			Oracle:     "n/a",
		})
	}
	sortRows(rows)
	return rows
}
