// Package bench is the measurement harness that regenerates every table
// and figure of the paper's evaluation (§3 Fig. 2, §5 Fig. 8-20).
//
// It builds the data exactly as the paper does — a seeded random
// permutation of the unique integers [0, N) — runs (algorithm × workload)
// cells while recording per-query wall-clock time and tuples touched, and
// renders the same rows/series the paper reports. Results are validated
// on the fly against a closed-form oracle (for permutation data, the
// count and sum of any value range are arithmetic).
//
// Scale note: the paper uses N = 10^8 on a 2009 Xeon; the harness default
// is N = 10^7 so the full suite completes in minutes. Shapes — who wins,
// by what factor, where curves flatten — are preserved; absolute seconds
// are not comparable across machines either way. Go-specific GC noise in
// per-query latencies is mitigated by the engines' buffer reuse and by a
// forced GC between cells.
//
// Three front-ends consume this package: cmd/crackbench (figures, JSON
// reports, the -kernels merge of `go test -bench` output), cmd/benchgate
// (the CI regression gate over gate.go's parser), and the facade's
// re-exports (MakeData, the workload constructors). The over-the-wire
// load generator lives in internal/server, not here: bench sits below
// the facade in the import graph (the root package imports it), while
// the load generator needs the server's wire types above it.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/hybrids"
	"repro/internal/updates"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Index is the common surface of core algorithms and hybrid indexes.
type Index interface {
	Query(a, b int64) core.Result
	Name() string
	Stats() core.Stats
}

// Config scales an experiment run.
type Config struct {
	N        int64  // column size / value domain (paper: 1e8; default 1e7)
	Q        int    // queries per cell (paper: 1e4 mostly; default 1e4)
	S        int64  // selectivity in tuples (paper default: 10)
	Seed     uint64 // seed for data, workloads and algorithms
	Validate bool   // check every result against the oracle
}

// WithDefaults fills unset fields with the harness defaults.
func (c Config) WithDefaults() Config {
	if c.N <= 0 {
		c.N = 10_000_000
	}
	if c.Q <= 0 {
		c.Q = 10_000
	}
	if c.S <= 0 {
		c.S = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// MakeData builds the paper's dataset: a seeded shuffle of [0, n).
func MakeData(n int64, seed uint64) []int64 {
	return xrand.New(seed).Perm(int(n))
}

// BuildIndex constructs any known algorithm — core or hybrid — over its
// own copy of data.
func BuildIndex(data []int64, spec string, cfg Config) (Index, error) {
	values := append([]int64(nil), data...)
	if ix, err := core.Build(values, spec, core.Options{Seed: cfg.Seed}); err == nil {
		return ix, nil
	}
	h, err := hybrids.Build(values, spec, hybrids.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: unknown algorithm %q", spec)
	}
	return h, nil
}

// Series is the outcome of one (algorithm × workload) cell: per-query and
// cumulative response times plus the machine-independent tuples-touched
// counters, exactly the quantities plotted in the paper.
type Series struct {
	Algo     string
	Workload string

	PerQueryNS   []int64 // response time of query i
	CumulativeNS []int64 // total time through query i
	Touched      []int64 // tuples touched by query i

	TotalNS int64
	Final   core.Stats

	// Heap-allocation totals across the cell's query loop (measured as
	// runtime.MemStats deltas; the loop runs on one goroutine, so the
	// deltas are the cell's own). AllocBytes counts cumulative allocated
	// bytes, not live heap.
	Allocs     int64
	AllocBytes int64
}

// At returns (per-query ns, cumulative ns, touched) for query index i.
func (s *Series) At(i int) (int64, int64, int64) {
	return s.PerQueryNS[i], s.CumulativeNS[i], s.Touched[i]
}

// oracle returns the closed-form (count, sum) of values in [a, b) within
// the permutation [0, n).
func oracle(a, b, n int64) (int64, int64) {
	if a < 0 {
		a = 0
	}
	if b > n {
		b = n
	}
	if a >= b {
		return 0, 0
	}
	count := b - a
	sum := (a + b - 1) * count / 2
	return count, sum
}

// Run executes one cell: algorithm spec over workload name under cfg.
func Run(cfg Config, spec, workloadName string) (*Series, error) {
	cfg = cfg.WithDefaults()
	data := MakeData(cfg.N, cfg.Seed)
	gen, err := workload.New(workloadName, workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	ix, err := BuildIndex(data, spec, cfg)
	if err != nil {
		return nil, err
	}
	return RunIndex(cfg, ix, gen, nil)
}

// UpdateStream injects updates into a run: before query i, Apply is called
// and may queue inserts/deletes on the updatable wrapper.
type UpdateStream func(i int, u *updates.Index)

// RunWithUpdates executes one cell with interleaved updates (Fig. 15). The
// algorithm must be engine-backed (everything except sort/scan hybrids).
func RunWithUpdates(cfg Config, spec, workloadName string, stream UpdateStream) (*Series, error) {
	cfg = cfg.WithDefaults()
	data := MakeData(cfg.N, cfg.Seed)
	gen, err := workload.New(workloadName, workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	inner, err := BuildIndex(data, spec, cfg)
	if err != nil {
		return nil, err
	}
	coreIx, ok := inner.(core.Index)
	if !ok {
		return nil, fmt.Errorf("bench: %q cannot take updates", spec)
	}
	u, ok := updates.Wrap(coreIx)
	if !ok {
		return nil, fmt.Errorf("bench: %q is not engine-backed; cannot take updates", spec)
	}
	return RunIndex(cfg, u, gen, func(i int, ix Index) {
		stream(i, u)
	})
}

// RunIndex drives a prebuilt index through a workload. before, if
// non-nil, runs ahead of each query (outside the timed section only for
// update queueing; the merge cost itself lands in the query, as in [17]).
func RunIndex(cfg Config, ix Index, gen workload.Generator, before func(i int, ix Index)) (*Series, error) {
	cfg = cfg.WithDefaults()
	s := &Series{
		Algo:         ix.Name(),
		Workload:     gen.Name(),
		PerQueryNS:   make([]int64, cfg.Q),
		CumulativeNS: make([]int64, cfg.Q),
		Touched:      make([]int64, cfg.Q),
	}
	gen.Reset()
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var cum int64
	prevTouched := ix.Stats().Touched
	for i := 0; i < cfg.Q; i++ {
		a, b := gen.Next()
		if before != nil {
			before(i, ix)
		}
		t0 := time.Now()
		res := ix.Query(a, b)
		dt := time.Since(t0).Nanoseconds()
		if cfg.Validate {
			wc, ws := oracle(a, b, cfg.N)
			if int64(res.Count()) != wc || res.Sum() != ws {
				return nil, fmt.Errorf("bench: %s/%s query %d [%d,%d): got (%d,%d), want (%d,%d)",
					ix.Name(), gen.Name(), i, a, b, res.Count(), res.Sum(), wc, ws)
			}
		}
		cum += dt
		s.PerQueryNS[i] = dt
		s.CumulativeNS[i] = cum
		tt := ix.Stats().Touched
		s.Touched[i] = tt - prevTouched
		prevTouched = tt
	}
	s.TotalNS = cum
	s.Final = ix.Stats()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	s.Allocs = int64(m1.Mallocs - m0.Mallocs)
	s.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	return s, nil
}

// Checkpoints returns log-spaced query indices (1, 2, 4, ..., q), the
// x-axis sampling used by all of the paper's log-log plots.
func Checkpoints(q int) []int {
	var out []int
	for c := 1; c < q; c *= 2 {
		out = append(out, c)
	}
	out = append(out, q)
	return out
}

// Seconds formats nanoseconds the way the paper's tables report seconds.
func Seconds(ns int64) string {
	sec := float64(ns) / 1e9
	switch {
	case sec >= 100:
		return fmt.Sprintf("%.0f", sec)
	case sec >= 10:
		return fmt.Sprintf("%.1f", sec)
	case sec >= 1:
		return fmt.Sprintf("%.2f", sec)
	default:
		return fmt.Sprintf("%.3f", sec)
	}
}

// BuildIndexOptions is BuildIndex with an explicit CrackSize override,
// used by threshold-sweep experiments.
func BuildIndexOptions(data []int64, spec string, cfg Config, crackSize int) (Index, error) {
	values := append([]int64(nil), data...)
	if ix, err := core.Build(values, spec, core.Options{Seed: cfg.Seed, CrackSize: crackSize}); err == nil {
		return ix, nil
	}
	h, err := hybrids.Build(values, spec, hybrids.Options{Seed: cfg.Seed, CrackSize: crackSize})
	if err != nil {
		return nil, fmt.Errorf("bench: unknown algorithm %q", spec)
	}
	return h, nil
}

// newWorkload builds a workload generator from a config.
func newWorkload(cfg Config, name string) (workload.Generator, error) {
	return workload.New(name, workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
}
