package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotCumulative renders the cumulative-response-time curves of several
// series as an ASCII log-log chart — the visual idiom of the paper's
// Fig. 2/9/10/13 — so a terminal run of crackbench shows the shape
// comparison directly, without gnuplot.
//
// X axis: query sequence (log scale). Y axis: cumulative seconds (log
// scale). Each series is drawn with its own glyph; collisions keep the
// glyph of the later series in the argument list (draw order = legend
// order).
func PlotCumulative(w io.Writer, series ...*Series) {
	if len(series) == 0 {
		return
	}
	const width, height = 72, 20
	glyphs := []byte("*o+x#@%&")

	// Value ranges across all series (log domain, clamped to >= 1ns).
	minY, maxY := math.MaxFloat64, -math.MaxFloat64
	maxQ := 0
	for _, s := range series {
		if len(s.CumulativeNS) > maxQ {
			maxQ = len(s.CumulativeNS)
		}
		for _, v := range s.CumulativeNS {
			y := math.Log10(math.Max(float64(v), 1))
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if maxQ < 2 {
		return
	}
	if maxY-minY < 1e-9 {
		maxY = minY + 1
	}
	logQ := math.Log10(float64(maxQ))

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for qi, v := range s.CumulativeNS {
			x := int(math.Log10(float64(qi+1)) / logQ * float64(width-1))
			y := math.Log10(math.Max(float64(v), 1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if x >= 0 && x < width && row >= 0 && row < height {
				grid[row][x] = g
			}
		}
	}

	fmt.Fprintf(w, "cumulative response time (log-log): x = query 1..%d, y = %.3gs..%.3gs\n",
		maxQ, math.Pow(10, minY)/1e9, math.Pow(10, maxY)/1e9)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	for si, s := range series {
		fmt.Fprintf(w, "   %c %s/%s (total %s s)\n",
			glyphs[si%len(glyphs)], s.Algo, s.Workload, Seconds(s.TotalNS))
	}
}

// PlotCell runs the given algorithms over one workload and renders the
// comparison chart — the generic figure generator behind crackbench's
// -plot flag.
func PlotCell(cfg Config, w io.Writer, workloadName string, specs []string) error {
	var all []*Series
	for _, spec := range specs {
		s, err := Run(cfg, spec, workloadName)
		if err != nil {
			return err
		}
		all = append(all, s)
	}
	PlotCumulative(w, all...)
	return nil
}
