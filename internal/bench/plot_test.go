package bench

import (
	"bytes"
	"strings"
	"testing"
)

func fakeSeries(algo string, scale int64, q int) *Series {
	s := &Series{Algo: algo, Workload: "test"}
	var cum int64
	for i := 0; i < q; i++ {
		cum += scale * int64(i+1)
		s.PerQueryNS = append(s.PerQueryNS, scale*int64(i+1))
		s.CumulativeNS = append(s.CumulativeNS, cum)
		s.Touched = append(s.Touched, 1)
	}
	s.TotalNS = cum
	return s
}

func TestPlotCumulativeRenders(t *testing.T) {
	var buf bytes.Buffer
	PlotCumulative(&buf, fakeSeries("alpha", 1000, 256), fakeSeries("beta", 1_000_000, 256))
	out := buf.String()
	if !strings.Contains(out, "alpha/test") || !strings.Contains(out, "beta/test") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	// The cheap series' glyph must appear below the expensive one
	// somewhere (higher row index = lower value).
	firstStar, firstO := -1, -1
	for i, l := range lines {
		if firstStar == -1 && strings.Contains(l, "*") {
			firstStar = i
		}
		if firstO == -1 && strings.Contains(l, "o") {
			firstO = i
		}
	}
	if firstO >= firstStar {
		t.Fatalf("expensive series (o) should top the chart: o at %d, * at %d", firstO, firstStar)
	}
}

func TestPlotDegenerate(t *testing.T) {
	var buf bytes.Buffer
	PlotCumulative(&buf) // no series
	if buf.Len() != 0 {
		t.Fatal("empty plot produced output")
	}
	PlotCumulative(&buf, fakeSeries("one", 10, 1)) // single point
	if buf.Len() != 0 {
		t.Fatal("single-point plot produced output")
	}
}

func TestPlotCell(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{N: 20_000, Q: 64, S: 5, Seed: 1}
	if err := PlotCell(cfg, &buf, "sequential", []string{"crack", "dd1r"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crack/sequential") {
		t.Fatal("plot cell legend missing")
	}
	if err := PlotCell(cfg, &buf, "sequential", []string{"nope"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}
