package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/xrand"
)

// The parallelcrack experiment measures what the chunked parallel
// crack-in-two kernel (internal/column, PR 6) buys over the serial
// branchless kernel, at the point where it matters most: the first touch
// of a cold column, where cracking's entire initialization cost is one
// partition pass over all N tuples. Two measurements per GOMAXPROCS
// ladder step:
//
//	first-touch — median wall-clock of a single crack of the whole cold
//	              column at the midpoint pivot, serial vs parallel;
//	converge    — total wall-clock of a random query sequence over dd1r,
//	              serial vs parallel routing (ParallelCrackMin scaled so
//	              the early, large pieces take the parallel path).
//
// Every measurement is oracle-validated: the data is a permutation of
// [0, n), so the split position, the left-side sum and every query
// answer have closed forms. The ladder climbs powers of two up to the
// process's GOMAXPROCS at entry — `crackbench -procs 8 -experiment
// parallelcrack` measures 1, 2, 4, 8. Speedup beyond one step requires
// real hardware parallelism; the workload label records the host's
// physical core count (cores=...) so a flat curve on a small host reads
// as a property of the machine, not the kernel.

// parallelCrackReps is the repetition count per cell; the reported
// wall-clock is the median.
const parallelCrackReps = 5

// ParallelCrackRows runs the serial-vs-parallel ladder and returns one
// JSONRow per (kernel, phase, procs) cell. Rows join BENCH_*.json under
// experiment "parallelcrack"; a non-"ok" Oracle field reports the
// validation failure rather than aborting the sweep.
func ParallelCrackRows(cfg Config) ([]JSONRow, error) {
	cfg = cfg.WithDefaults()
	n := cfg.N
	if n > 10_000_000 {
		n = 10_000_000 // one cold crack per rep; 10M shows the kernel, paper scale adds nothing
	}
	queries := cfg.Q
	if queries > 1000 {
		queries = 1000 // convergence phase: the early, large cracks dominate
	}

	entry := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(entry)
	cores := runtime.NumCPU()

	data := MakeData(n, cfg.Seed)
	var rows []JSONRow
	for p := 1; p <= entry; p *= 2 {
		runtime.GOMAXPROCS(p)
		for _, kernel := range []string{"serial", "parallel"} {
			ns, oracleErr := firstTouch(data, n, kernel == "parallel")
			rows = append(rows, JSONRow{
				Experiment: "parallelcrack",
				Algorithm:  "crack-" + kernel,
				Workload:   fmt.Sprintf("first-touch/procs=%d/cores=%d", p, cores),
				N:          n, Q: 1,
				PerQueryNS: ns, TotalNS: ns,
				Oracle: oracleVerdict(oracleErr),
			})
			ns, oracleErr = convergeRun(cfg, data, n, queries, kernel == "parallel")
			rows = append(rows, JSONRow{
				Experiment: "parallelcrack",
				Algorithm:  "dd1r-" + kernel,
				Workload:   fmt.Sprintf("converge/procs=%d/cores=%d", p, cores),
				N:          n, Q: int64(queries),
				PerQueryNS: ns / int64(queries), TotalNS: ns,
				Oracle: oracleVerdict(oracleErr),
			})
		}
	}
	return rows, nil
}

func oracleVerdict(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}

// firstTouch cracks a cold copy of the column at the midpoint pivot and
// validates the result against the permutation's closed forms: the split
// position must equal the pivot (exactly pivot values are below it) and
// the left side must sum to pivot*(pivot-1)/2.
func firstTouch(data []int64, n int64, parallel bool) (int64, error) {
	pivot := n / 2
	samples := make([]int64, 0, parallelCrackReps)
	var firstErr error
	for r := 0; r < parallelCrackReps; r++ {
		c := column.New(append([]int64(nil), data...))
		start := time.Now()
		var p int
		if parallel {
			p = c.ParallelCrackInTwo(0, int(n), pivot)
		} else {
			p = c.CrackInTwo(0, int(n), pivot)
		}
		samples = append(samples, time.Since(start).Nanoseconds())
		if firstErr == nil {
			firstErr = checkFirstTouch(c, p, pivot)
		}
	}
	return medianNS(samples), firstErr
}

func checkFirstTouch(c *column.Column, p int, pivot int64) error {
	if int64(p) != pivot {
		return fmt.Errorf("split %d, oracle %d", p, pivot)
	}
	var sum int64
	for _, v := range c.Values[:p] {
		if v >= pivot {
			return fmt.Errorf("value %d on the left of pivot %d", v, pivot)
		}
		sum += v
	}
	if want := pivot * (pivot - 1) / 2; sum != want {
		return fmt.Errorf("left sum %d, oracle %d", sum, want)
	}
	return nil
}

// convergeRun answers a random query sequence on a fresh dd1r index and
// validates every answer against the closed-form oracle. The parallel
// variant scales ParallelCrackMin to the column so the early cracks — the
// only ones big enough to matter — route through the chunked kernel.
func convergeRun(cfg Config, data []int64, n int64, queries int, parallel bool) (int64, error) {
	opt := core.Options{Seed: cfg.Seed}
	if parallel {
		opt.ParallelCrackMin = min(core.DefaultParallelCrackMin, max(2, int(n/8)))
	}
	ix, err := core.Build(append([]int64(nil), data...), "dd1r", opt)
	if err != nil {
		return 0, err
	}
	width := cfg.S
	if width < 1 {
		width = 1
	}
	rng := xrand.New(cfg.Seed + 1)
	var bad error
	start := time.Now()
	for q := 0; q < queries; q++ {
		a := rng.Int63n(n - width)
		b := a + width
		res := ix.Query(a, b)
		wc, ws := oracle(a, b, n)
		if int64(res.Count()) != wc || res.Sum() != ws {
			if bad == nil {
				bad = fmt.Errorf("query %d [%d,%d): (%d,%d), oracle (%d,%d)",
					q, a, b, res.Count(), res.Sum(), wc, ws)
			}
		}
	}
	return time.Since(start).Nanoseconds(), bad
}

func medianNS(xs []int64) int64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

// PrintParallelCrack renders rows from ParallelCrackRows as an aligned
// table with a serial/parallel speedup column per phase and procs step.
func PrintParallelCrack(w io.Writer, rows []JSONRow) {
	fmt.Fprintf(w, "# parallelcrack: serial vs chunked-parallel crack kernel (host cores matter;\n")
	fmt.Fprintf(w, "# the ladder only reflects hardware parallelism actually available)\n")
	fmt.Fprintf(w, "%-16s %-28s %14s %10s %8s\n", "algorithm", "workload", "wall(ms)", "speedup", "oracle")
	serial := map[string]int64{}
	for _, r := range rows {
		if r.Algorithm == "crack-serial" || r.Algorithm == "dd1r-serial" {
			serial[r.Workload] = r.TotalNS
		}
	}
	for _, r := range rows {
		speedup := ""
		if s, ok := serial[r.Workload]; ok && r.TotalNS > 0 &&
			(r.Algorithm == "crack-parallel" || r.Algorithm == "dd1r-parallel") {
			speedup = fmt.Sprintf("%.2fx", float64(s)/float64(r.TotalNS))
		}
		fmt.Fprintf(w, "%-16s %-28s %14.2f %10s %8s\n",
			r.Algorithm, r.Workload, float64(r.TotalNS)/1e6, speedup, r.Oracle)
	}
}

func runParallelCrack(cfg Config, w io.Writer) error {
	rows, err := ParallelCrackRows(cfg)
	if err != nil {
		return err
	}
	PrintParallelCrack(w, rows)
	for _, r := range rows {
		if r.Oracle != "ok" {
			return fmt.Errorf("parallelcrack: oracle validation failed: %s", r.Oracle)
		}
	}
	return nil
}
