package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/xrand"
)

// The concurrency experiment measures what the unified execution layer
// (internal/exec) buys over the conservative one-big-mutex discipline the
// paper's reader/writer economics suggest. Three servers answer the same
// workload from g goroutines:
//
//	mutex     — every query serializes behind one mutual-exclusion lock
//	            (the deleted core.Concurrent baseline);
//	exec      — the adaptive executor: converged queries run read-only
//	            under a shared lock, in parallel;
//	sharded   — value-range shards, each behind its own executor.
//
// Two phases are reported: "cold" starts from an uncracked column (every
// query reorganizes, so the executor degrades to the mutex discipline) and
// "converged" repeats the same ranges after the column has adapted (the
// executor's read path takes over). Throughput differences beyond one
// goroutine require real hardware parallelism; on a single-core host the
// converged numbers mainly show the executor is not slower than the mutex.

// mutexServer is the old core.Concurrent: exclusive lock, full
// materialization. internal/exec's benchmarks carry the same baseline
// (mutexIndex in bench_test.go); keep the two in step so the benchmark
// and this experiment measure the same discipline.
type mutexServer struct {
	mu    sync.Mutex
	inner core.Index
}

func (m *mutexServer) Query(a, b int64) []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := m.inner.Query(a, b)
	return res.Materialize(make([]int64, 0, res.Count()))
}

func runConcurrency(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	n := cfg.N
	if n > 2_000_000 {
		n = 2_000_000 // plenty to show locking behavior; keeps the cell quick
	}
	const spec = "crack"
	queries := cfg.Q
	if queries > 4096 {
		queries = 4096
	}
	width := cfg.S
	if width < 1 {
		width = 1
	}

	// One shared range set: cold phase cracks it in, converged phase
	// re-answers it.
	rng := xrand.New(cfg.Seed)
	ranges := make([]exec.Range, queries)
	for i := range ranges {
		a := rng.Int63n(n - width)
		ranges[i] = exec.Range{Lo: a, Hi: a + width}
	}
	data := MakeData(n, cfg.Seed)

	build := func() core.Index {
		ix, err := core.Build(append([]int64(nil), data...), spec, core.Options{Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		return ix
	}

	servers := []struct {
		name  string
		query func(a, b int64) []int64
	}{
		{"mutex", (&mutexServer{inner: build()}).Query},
		{"exec", exec.New(build()).Query},
	}
	sharded, err := exec.NewSharded(append([]int64(nil), data...), spec, 8, core.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	servers = append(servers, struct {
		name  string
		query func(a, b int64) []int64
	}{"sharded-8", sharded.Query})

	maxG := runtime.GOMAXPROCS(0) * 2
	if maxG < 4 {
		maxG = 4
	}
	fmt.Fprintf(w, "%-10s %-10s %6s %12s %14s\n", "server", "phase", "g", "queries/s", "wall(ms)")
	for _, srv := range servers {
		for _, phase := range []string{"cold", "converged"} {
			for g := 1; g <= maxG; g *= 2 {
				if phase == "cold" && g > 1 {
					continue // the column only cracks in once
				}
				qps, wall, err := measureThroughput(srv.query, ranges, g, width)
				if err != nil {
					return fmt.Errorf("concurrency: %s/%s g=%d: %w", srv.name, phase, g, err)
				}
				fmt.Fprintf(w, "%-10s %-10s %6d %12.0f %14.2f\n",
					srv.name, phase, g, qps, float64(wall.Microseconds())/1000)
			}
		}
	}
	return nil
}

// measureThroughput fans the range set out over g goroutines (striped, so
// every goroutine touches the whole value domain) and reports aggregate
// queries per second. A wrong result count fails the experiment instead
// of crashing it.
func measureThroughput(query func(a, b int64) []int64, ranges []exec.Range, g int, width int64) (float64, time.Duration, error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		bad  error
		fail = func(err error) {
			mu.Lock()
			if bad == nil {
				bad = err
			}
			mu.Unlock()
		}
	)
	start := time.Now()
	for t := 0; t < g; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := t; i < len(ranges); i += g {
				r := ranges[i]
				if got := query(r.Lo, r.Hi); int64(len(got)) != width {
					fail(fmt.Errorf("range [%d,%d): %d rows, want %d", r.Lo, r.Hi, len(got), width))
					return
				}
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)
	return float64(len(ranges)) / wall.Seconds(), wall, bad
}
