package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Benchmark-regression gating: parse `go test -bench` output, reduce each
// benchmark's samples to a median, and compare a current run against a
// committed baseline. CI runs this through cmd/benchgate and fails the
// bench job when a kernel benchmark regresses past the threshold; the
// same parser turns kernel benchmark files into BENCH_*.json rows
// (crackbench -kernels).

// BenchSamples collects every sample of one benchmark across -count runs.
type BenchSamples struct {
	Name        string // sub-benchmark name, -procs suffix stripped
	NsPerOp     []float64
	AllocsPerOp []float64
	BytesPerOp  []float64
	Iters       int64 // iterations of the last sample
}

// MedianNs returns the median ns/op sample.
func (b *BenchSamples) MedianNs() float64 { return median(b.NsPerOp) }

// MedianAllocs returns the median allocs/op sample (0 when -benchmem was
// not set).
func (b *BenchSamples) MedianAllocs() float64 { return median(b.AllocsPerOp) }

// MedianBytes returns the median B/op sample.
func (b *BenchSamples) MedianBytes() float64 { return median(b.BytesPerOp) }

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// ParseBench reads `go test -bench` output (any interleaved non-benchmark
// lines are skipped) and returns samples keyed by benchmark name. The
// trailing GOMAXPROCS suffix (-8) is stripped so baselines gate across
// machines with different core counts.
func ParseBench(r io.Reader) (map[string]*BenchSamples, error) {
	out := map[string]*BenchSamples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... --- SKIP"
		}
		b := out[name]
		if b == nil {
			b = &BenchSamples{Name: name}
			out[name] = b
		}
		b.Iters = iters
		// The remainder is (value, unit) pairs: 12345 ns/op 500 MB/s ...
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad value %q for %s", fields[i], name)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = append(b.NsPerOp, v)
			case "allocs/op":
				b.AllocsPerOp = append(b.AllocsPerOp, v)
			case "B/op":
				b.BytesPerOp = append(b.BytesPerOp, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark
// name, keeping sub-benchmark dashes intact (only a purely numeric final
// segment is removed).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// GateFinding is one benchmark's baseline-vs-current comparison.
type GateFinding struct {
	Name    string
	BaseNs  float64
	CurNs   float64
	Ratio   float64 // CurNs / BaseNs; > 1 is slower
	Regress bool
}

// Gate compares current against baseline for every benchmark whose name
// has one of the given prefixes (empty prefixes = every baseline entry).
// A benchmark regresses when its median ns/op exceeds the baseline median
// by more than threshold (1.15 = +15%). A gated baseline benchmark
// missing from the current run is an error — renaming a kernel benchmark
// must not silently drop it from the gate.
func Gate(baseline, current map[string]*BenchSamples, prefixes []string, threshold float64) ([]GateFinding, error) {
	matches := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var names []string
	for name := range baseline {
		if matches(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("bench: no baseline benchmark matches %v", prefixes)
	}
	var findings []GateFinding
	var regressed, missing []string
	for _, name := range names {
		cur, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		base := baseline[name]
		f := GateFinding{Name: name, BaseNs: base.MedianNs(), CurNs: cur.MedianNs()}
		if f.BaseNs > 0 {
			f.Ratio = f.CurNs / f.BaseNs
		}
		f.Regress = f.Ratio > threshold
		if f.Regress {
			regressed = append(regressed, fmt.Sprintf("%s %.0f -> %.0f ns/op (%+.1f%%)",
				name, f.BaseNs, f.CurNs, (f.Ratio-1)*100))
		}
		findings = append(findings, f)
	}
	switch {
	case len(missing) > 0:
		return findings, fmt.Errorf("bench: gated benchmarks missing from current run (renamed? refresh the baseline): %s",
			strings.Join(missing, ", "))
	case len(regressed) > 0:
		return findings, fmt.Errorf("bench: ns/op regression beyond %+.0f%%:\n  %s",
			(threshold-1)*100, strings.Join(regressed, "\n  "))
	}
	return findings, nil
}
