package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestPaperDataComplete(t *testing.T) {
	if len(PaperFig17) != 15 {
		t.Fatalf("paper fig17 rows = %d, want 15", len(PaperFig17))
	}
	for wl, row := range PaperFig17 {
		for i, v := range row {
			if v <= 0 {
				t.Fatalf("fig17 %s col %d = %v", wl, i, v)
			}
		}
	}
	covered := map[string]bool{}
	for _, wl := range PaperPathologicalWorkloads {
		covered[wl] = true
		// On pathological workloads the paper's crack column must dominate
		// its scrack column by a wide margin.
		if p := PaperFig17[wl]; p[0] < p[1]*3 {
			t.Fatalf("%s listed pathological but paper ratio is %.1f", wl, p[0]/p[1])
		}
	}
	for _, wl := range PaperCrackFriendlyWorkloads {
		covered[wl] = true
	}
	covered["skyserver"] = true
	covered["seqzoomin"] = true
	for wl := range PaperFig17 {
		if !covered[wl] {
			t.Fatalf("workload %s not categorized", wl)
		}
	}
	if len(PaperFig18) != 6 || len(PaperFig19) != 6 || len(PaperFig8) != 5 {
		t.Fatal("paper sweep tables incomplete")
	}
}

func TestReportRunsAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("report run is moderately expensive")
	}
	var buf bytes.Buffer
	r := NewReport(Config{N: 300_000, Q: 600, S: 10, Seed: 7})
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 8", "Fig. 2 / Fig. 9", "Fig. 17", "Fig. 18 / Fig. 19", "Summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing section %q", want)
		}
	}
	passed, total := r.Checks()
	if total < 20 {
		t.Fatalf("only %d checks ran", total)
	}
	// At 300k/600 scale the major shape results already hold; allow a few
	// borderline factor checks to miss.
	if passed*4 < total*3 {
		t.Fatalf("only %d/%d shape checks passed at small scale:\n%s", passed, total, out)
	}
}
