package core

import (
	"testing"

	"repro/internal/xrand"
)

// oracle computes the expected (count, sum) for [a, b) over the original
// data by brute force.
type oracle struct {
	vals []int64
}

func newOracle(vals []int64) *oracle {
	return &oracle{vals: append([]int64(nil), vals...)}
}

func (o *oracle) query(a, b int64) (int, int64) {
	count := 0
	var sum int64
	for _, v := range o.vals {
		if a <= v && v < b {
			count++
			sum += v
		}
	}
	return count, sum
}

// queryPattern produces a deterministic mix of query shapes exercising
// every code path: random ranges, sequential sweeps, zooming, exact
// repeats, inverted and out-of-domain bounds.
func queryPattern(i int, n int64, rng *xrand.Rand) (int64, int64) {
	switch i % 7 {
	case 0: // random small range
		a := rng.Int63n(n)
		return a, a + 10
	case 1: // sequential sweep
		a := (int64(i) * 17) % n
		return a, a + 25
	case 2: // wide range
		a := rng.Int63n(n / 2)
		return a, a + n/3
	case 3: // repeat of a fixed range (exact-crack hit path)
		return n / 4, n / 4 * 3
	case 4: // empty or inverted
		if i%2 == 0 {
			return n / 2, n / 2
		}
		return n / 2, n/2 - 100
	case 5: // out-of-domain bounds
		return -1000, 5
	default: // zoom in
		w := n / (int64(i%50) + 2)
		return n/2 - w/2, n/2 + w/2
	}
}

func testAlgorithmAgainstOracle(t *testing.T, spec string, vals []int64, queries int) {
	t.Helper()
	o := newOracle(vals)
	n := int64(len(vals))
	if n == 0 {
		n = 1
	}
	ix, err := Build(append([]int64(nil), vals...), spec, Options{Seed: 7})
	if err != nil {
		t.Fatalf("Build(%q): %v", spec, err)
	}
	rng := xrand.New(99)
	for i := 0; i < queries; i++ {
		a, b := queryPattern(i, n, rng)
		res := ix.Query(a, b)
		wantCount, wantSum := o.query(a, b)
		if res.Count() != wantCount || res.Sum() != wantSum {
			t.Fatalf("%s query %d [%d,%d): got (count=%d,sum=%d), want (%d,%d)",
				spec, i, a, b, res.Count(), res.Sum(), wantCount, wantSum)
		}
	}
}

func allSpecs() []string {
	return []string{
		"scan", "sort", "crack",
		"ddc", "ddr", "dd1c", "dd1r",
		"mdd1r", "pmdd1r-1", "pmdd1r-10", "pmdd1r-50", "pmdd1r-100",
		"fiftyfifty", "flipcoin", "every-4", "every-8",
		"scrackmon-1", "scrackmon-10", "sizeselective", "autotune",
		"r1crack", "r2crack", "r4crack", "r8crack",
	}
}

func TestAllAlgorithmsMatchOracleOnPermutation(t *testing.T) {
	vals := xrand.New(1).Perm(6000)
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			testAlgorithmAgainstOracle(t, spec, vals, 400)
		})
	}
}

func TestAllAlgorithmsMatchOracleWithDuplicates(t *testing.T) {
	rng := xrand.New(2)
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(300) // heavy duplication
	}
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			testAlgorithmAgainstOracle(t, spec, vals, 300)
		})
	}
}

func TestAllAlgorithmsSmallThresholds(t *testing.T) {
	// Tiny CrackSize/ProgressiveSize force the recursive and progressive
	// paths to fire constantly on small data.
	vals := xrand.New(3).Perm(2000)
	o := newOracle(vals)
	for _, spec := range allSpecs() {
		ix, err := Build(append([]int64(nil), vals...), spec,
			Options{Seed: 5, CrackSize: 8, ProgressiveSize: 32, SwapPct: 3})
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		rng := xrand.New(4)
		for i := 0; i < 250; i++ {
			a, b := queryPattern(i, 2000, rng)
			res := ix.Query(a, b)
			wc, ws := o.query(a, b)
			if res.Count() != wc || res.Sum() != ws {
				t.Fatalf("%s (tiny thresholds) query %d [%d,%d): got (%d,%d), want (%d,%d)",
					spec, i, a, b, res.Count(), res.Sum(), wc, ws)
			}
		}
	}
}

func TestDegenerateColumns(t *testing.T) {
	cases := map[string][]int64{
		"empty":     {},
		"single":    {42},
		"pair":      {7, 3},
		"all-equal": {5, 5, 5, 5, 5, 5, 5, 5},
	}
	for name, vals := range cases {
		for _, spec := range allSpecs() {
			ix, err := Build(append([]int64(nil), vals...), spec, Options{Seed: 3})
			if err != nil {
				t.Fatalf("Build(%q): %v", spec, err)
			}
			o := newOracle(vals)
			for _, q := range [][2]int64{{0, 10}, {5, 6}, {42, 43}, {-5, 100}, {10, 0}, {5, 5}} {
				res := ix.Query(q[0], q[1])
				wc, ws := o.query(q[0], q[1])
				if res.Count() != wc || res.Sum() != ws {
					t.Fatalf("%s on %s column, query [%d,%d): got (%d,%d), want (%d,%d)",
						spec, name, q[0], q[1], res.Count(), res.Sum(), wc, ws)
				}
			}
		}
	}
}

func TestRepeatedIdenticalQueries(t *testing.T) {
	// After the first occurrence, both bounds have exact cracks: algorithms
	// must return stable, correct results with no further reorganization
	// (for view-based algorithms).
	vals := xrand.New(5).Perm(4000)
	for _, spec := range []string{"crack", "ddc", "ddr", "dd1c", "dd1r"} {
		ix, err := Build(append([]int64(nil), vals...), spec, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		first := ix.Query(1000, 2000)
		if first.Count() != 1000 {
			t.Fatalf("%s: first count = %d", spec, first.Count())
		}
		touchedAfterFirst := ix.Stats().Touched
		for i := 0; i < 10; i++ {
			res := ix.Query(1000, 2000)
			if res.Count() != 1000 || res.Sum() != first.Sum() {
				t.Fatalf("%s: repeat %d diverged", spec, i)
			}
		}
		if ix.Stats().Touched != touchedAfterFirst {
			t.Fatalf("%s: repeated identical queries still touched tuples (%d -> %d)",
				spec, touchedAfterFirst, ix.Stats().Touched)
		}
	}
}

func TestViewVersusMaterializedShape(t *testing.T) {
	vals := xrand.New(6).Perm(4000)

	crack := NewCrack(append([]int64(nil), vals...), Options{})
	if res := crack.Query(100, 300); res.ViewLen() != res.Count() {
		t.Fatalf("crack result not a pure view: view=%d count=%d", res.ViewLen(), res.Count())
	}

	scan := NewScan(append([]int64(nil), vals...), Options{})
	if res := scan.Query(100, 300); res.ViewLen() != 0 {
		t.Fatal("scan result must be fully materialized")
	}

	srt := NewSort(append([]int64(nil), vals...), Options{})
	if res := srt.Query(100, 300); res.ViewLen() != res.Count() {
		t.Fatal("sort result must be a pure view")
	}

	// First MDD1R query on an uncracked column materializes everything
	// (single piece); later queries develop view middles.
	m := NewMDD1R(append([]int64(nil), vals...), Options{Seed: 8})
	if res := m.Query(100, 300); res.ViewLen() != 0 {
		t.Fatal("first MDD1R query (single piece) must be fully materialized")
	}
	for i := int64(0); i < 20; i++ {
		m.Query(i*190, i*190+120)
	}
	res := m.Query(500, 3500)
	if res.ViewLen() == 0 {
		t.Fatal("wide MDD1R query after warm-up should return a view middle")
	}
	if res.Count() != 3000 {
		t.Fatalf("count = %d, want 3000", res.Count())
	}
}

func TestSortedViewIsSorted(t *testing.T) {
	vals := xrand.New(7).Perm(1000)
	srt := NewSort(vals, Options{})
	res := srt.Query(200, 400)
	var prev int64 = -1
	res.ForEach(func(v int64) {
		if v < prev {
			t.Fatalf("sort view out of order: %d after %d", v, prev)
		}
		prev = v
	})
}

func TestCrackConvergesOnRandomWorkload(t *testing.T) {
	// Fig. 2(e): with a random workload, the tuples touched per cracking
	// query collapses after a handful of queries.
	const n = 100000
	vals := xrand.New(8).Perm(n)
	ix := NewCrack(vals, Options{})
	rng := xrand.New(9)
	var early, late int64
	for i := 0; i < 200; i++ {
		before := ix.Stats().Touched
		a := rng.Int63n(n - 10)
		ix.Query(a, a+10)
		d := ix.Stats().Touched - before
		if i < 5 {
			early += d
		}
		if i >= 195 {
			late += d
		}
	}
	if late*10 > early {
		t.Fatalf("cracking did not converge: first-5 touched %d, last-5 touched %d", early, late)
	}
}

func TestStochasticBeatsCrackOnSequential(t *testing.T) {
	// The paper's core claim (Fig. 9): on the sequential workload original
	// cracking keeps touching huge pieces while stochastic cracking
	// converges. Compare total touched tuples over the sequence.
	const n = 200000
	const q = 500
	vals := xrand.New(10).Perm(n)
	jump := int64(n / q)

	run := func(spec string) int64 {
		ix, err := Build(append([]int64(nil), vals...), spec, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < q; i++ {
			a := int64(i) * jump
			ix.Query(a, a+10)
		}
		return ix.Stats().Touched
	}

	crack := run("crack")
	for _, spec := range []string{"ddc", "ddr", "dd1c", "dd1r", "mdd1r", "pmdd1r-10"} {
		st := run(spec)
		if st*5 > crack {
			t.Errorf("%s touched %d tuples on sequential workload; crack touched %d — expected >=5x improvement",
				spec, st, crack)
		}
	}
}

func TestDDCCracksAtMedians(t *testing.T) {
	// DDC's first bound crack on a fresh permutation of [0,n) must place
	// its first auxiliary crack at the exact median position n/2.
	const n = 65536
	ix := NewDDC(xrand.New(11).Perm(n), Options{})
	ix.Query(10, 20)
	found := false
	ix.Engine().CrackerIndex().Ascend(func(key int64, pos int) bool {
		if pos == n/2 && key == n/2 {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("DDC did not place a crack at the column median")
	}
}

func TestDD1SingleAuxiliaryCrack(t *testing.T) {
	// DD1C/DD1R introduce at most one auxiliary crack per bound: the first
	// query on a fresh column yields at most 2 aux + 2 bound cracks.
	for _, spec := range []string{"dd1c", "dd1r"} {
		ix, err := Build(xrand.New(12).Perm(50000), spec, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		ix.Query(1000, 2000)
		if c := ix.Stats().Cracks; c > 4 {
			t.Fatalf("%s placed %d cracks on first query, want <= 4", spec, c)
		}
	}
}

func TestMDD1RNeverCracksOnBounds(t *testing.T) {
	// MDD1R's cracks are the random pivots, never the query bounds
	// themselves (the probability a random element equals a bound is
	// negligible for this data/seed combination; validated here).
	const n = 50000
	m := NewMDD1R(xrand.New(13).Perm(n), Options{Seed: 5})
	bounds := make(map[int64]bool)
	rng := xrand.New(14)
	for i := 0; i < 50; i++ {
		a := rng.Int63n(n - 500)
		b := a + 500
		bounds[a] = true
		bounds[b] = true
		m.Query(a, b)
	}
	hits := 0
	m.Engine().CrackerIndex().Ascend(func(key int64, _ int) bool {
		if bounds[key] {
			hits++
		}
		return true
	})
	if hits > 2 {
		t.Fatalf("MDD1R placed %d cracks exactly on query bounds; expected ~0", hits)
	}
}

func TestProgressiveCrackSharedAcrossQueries(t *testing.T) {
	// With a 1% swap budget on a large piece, one query must not complete
	// the crack; repeated queries eventually do.
	const n = 100000
	p := NewPMDD1R(xrand.New(15).Perm(n), Options{Seed: 6, SwapPct: 1})
	p.Query(1000, 1100)
	if got := p.Stats().Cracks; got != 0 {
		t.Fatalf("1%% budget completed a crack on query 1 (%d cracks)", got)
	}
	if len(p.Engine().states) == 0 {
		t.Fatal("no in-flight partition after first progressive query")
	}
	for i := 0; i < 300 && p.Stats().Cracks == 0; i++ {
		p.Query(1000, 1100)
	}
	if p.Stats().Cracks == 0 {
		t.Fatal("progressive crack never completed")
	}
	if len(p.Engine().states) != 0 {
		t.Fatal("partition state not cleaned up after completion")
	}
}

func TestPMDD1R100EquivalentCostToMDD1R(t *testing.T) {
	// P100% must behave like MDD1R: crack count and touched tuples in the
	// same ballpark on an identical query sequence and seed.
	const n = 50000
	vals := xrand.New(16).Perm(n)
	m := NewMDD1R(append([]int64(nil), vals...), Options{Seed: 7})
	p := NewPMDD1R(append([]int64(nil), vals...), Options{Seed: 7, SwapPct: 100})
	rng := xrand.New(17)
	for i := 0; i < 200; i++ {
		a := rng.Int63n(n - 100)
		mres := m.Query(a, a+100)
		pres := p.Query(a, a+100)
		if mres.Count() != pres.Count() || mres.Sum() != pres.Sum() {
			t.Fatalf("query %d: MDD1R and P100%% diverged", i)
		}
	}
	mt, pt := m.Stats().Touched, p.Stats().Touched
	if pt > mt*3 || mt > pt*3 {
		t.Fatalf("P100%% cost (%d) far from MDD1R cost (%d)", pt, mt)
	}
}

func TestScrackMonThresholdBehavior(t *testing.T) {
	// With a huge threshold, ScrackMon must behave exactly like original
	// cracking (always view results, query-bound cracks only).
	const n = 20000
	vals := xrand.New(18).Perm(n)
	mon := NewScrackMon(append([]int64(nil), vals...), 1000000, Options{Seed: 8})
	crk := NewCrack(append([]int64(nil), vals...), Options{Seed: 8})
	rng := xrand.New(19)
	for i := 0; i < 100; i++ {
		a := rng.Int63n(n - 50)
		mres := mon.Query(a, a+50)
		cres := crk.Query(a, a+50)
		if mres.Count() != cres.Count() || mres.Sum() != cres.Sum() {
			t.Fatalf("query %d diverged", i)
		}
		if mres.ViewLen() != mres.Count() {
			t.Fatalf("high-threshold ScrackMon produced a materialized result at query %d", i)
		}
	}
	if mon.Stats().Touched != crk.Stats().Touched {
		t.Fatalf("high-threshold ScrackMon cost %d != crack cost %d",
			mon.Stats().Touched, crk.Stats().Touched)
	}
}

func TestEveryXAlternation(t *testing.T) {
	// FiftyFifty (X=2) must alternate: stochastic on even queries
	// (materialized ends), original on odd (view ends). Detect via result
	// shape on a fresh large piece each time.
	const n = 100000
	ix := NewFiftyFifty(xrand.New(20).Perm(n), Options{Seed: 9})
	r0 := ix.Query(40000, 40100) // query 0: stochastic => materialized
	if r0.ViewLen() != 0 {
		t.Fatal("query 0 of FiftyFifty should be stochastic (materialized)")
	}
	r1 := ix.Query(70000, 70100) // query 1: original => view
	if r1.ViewLen() != r1.Count() {
		t.Fatal("query 1 of FiftyFifty should be original cracking (view)")
	}
}

func TestRCrackInjectsRandomCracks(t *testing.T) {
	// R1crack must place more cracks than plain crack for the same query
	// sequence (each user query adds an injected random one).
	const n = 50000
	vals := xrand.New(21).Perm(n)
	r1, err := Build(append([]int64(nil), vals...), "r1crack", Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	plain := NewCrack(append([]int64(nil), vals...), Options{Seed: 10})
	for i := int64(0); i < 50; i++ {
		r1.Query(i*100, i*100+10)
		plain.Query(i*100, i*100+10)
	}
	if r1.Stats().Cracks <= plain.Stats().Cracks {
		t.Fatalf("r1crack cracks (%d) not above plain crack (%d)",
			r1.Stats().Cracks, plain.Stats().Cracks)
	}
	if q := r1.Stats().Queries; q != 50 {
		t.Fatalf("injected queries leaked into Queries counter: %d", q)
	}
}

func TestBuildErrors(t *testing.T) {
	for _, spec := range []string{"", "nope", "pmdd1r-0", "pmdd1r-101", "every-0", "scrackmon-0", "rXcrack", "r0crack"} {
		if _, err := Build([]int64{1}, spec, Options{}); err == nil {
			t.Errorf("Build(%q) succeeded, want error", spec)
		}
	}
	for _, spec := range Algorithms() {
		if _, err := Build([]int64{1, 2, 3}, spec, Options{}); err != nil {
			t.Errorf("Build(%q) failed: %v", spec, err)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	const n = 10000
	ix := NewCrack(xrand.New(22).Perm(n), Options{})
	if s := ix.Stats(); s.Queries != 0 || s.Touched != 0 || s.Cracks != 0 || s.Pieces != 1 {
		t.Fatalf("fresh index stats: %+v", s)
	}
	ix.Query(100, 200)
	s := ix.Stats()
	if s.Queries != 1 {
		t.Fatalf("queries = %d", s.Queries)
	}
	if s.Touched != n {
		t.Fatalf("first crack query should touch exactly n tuples, got %d", s.Touched)
	}
	if s.Cracks != 2 || s.Pieces != 3 {
		t.Fatalf("first query should create 2 cracks/3 pieces, got %+v", s)
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.CrackSize != DefaultCrackSize || o.ProgressiveSize != DefaultProgressiveSize ||
		o.SwapPct != DefaultSwapPct || o.Seed != 1 {
		t.Fatalf("bad defaults: %+v", o)
	}
	o = Options{SwapPct: 500}.withDefaults()
	if o.SwapPct != 100 {
		t.Fatalf("SwapPct not clamped: %d", o.SwapPct)
	}
}

func TestResultMaterializeIndependence(t *testing.T) {
	const n = 10000
	m := NewMDD1R(xrand.New(23).Perm(n), Options{Seed: 11})
	res := m.Query(100, 600)
	snapshot := res.Materialize(nil)
	m.Query(5000, 5600) // clobbers internal buffers
	var sum int64
	for _, v := range snapshot {
		sum += v
	}
	want := int64(0)
	for v := int64(100); v < 600; v++ {
		want += v
	}
	if sum != want || len(snapshot) != 500 {
		t.Fatal("materialized snapshot was corrupted by a subsequent query")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	const n = 20000
	vals := xrand.New(24).Perm(n)
	run := func() (int64, int) {
		ix := NewMDD1R(append([]int64(nil), vals...), Options{Seed: 12})
		rng := xrand.New(25)
		var sum int64
		for i := 0; i < 100; i++ {
			a := rng.Int63n(n - 100)
			sum += ix.Query(a, a+100).Sum()
		}
		return sum, ix.Stats().Cracks
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatal("same seed produced different behavior")
	}
}
