package core

import (
	"testing"

	"repro/internal/xrand"
)

// TestAnswerReadOnlyMatchesQuery interleaves cracking queries with
// read-only answers on every engine-backed algorithm; the read-only path
// must agree with the oracle and never change any observable state.
func TestAnswerReadOnlyMatchesQuery(t *testing.T) {
	const n = 20000
	for _, spec := range Algorithms() {
		ix, err := Build(xrand.New(20).Perm(n), spec, Options{Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		acc, ok := ix.(interface{ Engine() *Engine })
		if !ok {
			continue // sort: deliberately not engine-backed (updates.Wrap)
		}
		e := acc.Engine()
		rng := xrand.New(22)
		for i := 0; i < 100; i++ {
			a := rng.Int63n(n - 100)
			b := a + 1 + rng.Int63n(100)
			ix.Query(a, b)

			statsBefore := ix.Stats()
			canBefore := e.CanAnswerWithoutCracking(a, b)
			got := e.AnswerReadOnly(a, b, nil)
			var sum, wantSum int64
			for _, v := range got {
				sum += v
			}
			for v := a; v < b; v++ {
				wantSum += v
			}
			if int64(len(got)) != b-a || sum != wantSum {
				t.Fatalf("%s AnswerReadOnly [%d,%d): got (%d,%d), want (%d,%d)",
					spec, a, b, len(got), sum, b-a, wantSum)
			}
			if c, s := e.AnswerReadOnlyAggregate(a, b); int64(c) != b-a || s != wantSum {
				t.Fatalf("%s AnswerReadOnlyAggregate [%d,%d): got (%d,%d)", spec, a, b, c, s)
			}
			try, ok := e.TryAnswerReadOnly(a, b, nil)
			if ok != canBefore {
				t.Fatalf("%s: TryAnswerReadOnly ok=%v disagrees with probe %v", spec, ok, canBefore)
			}
			if ok && int64(len(try)) != b-a {
				t.Fatalf("%s TryAnswerReadOnly count = %d", spec, len(try))
			}
			if _, _, aok := e.TryAnswerReadOnlyAggregate(a, b); aok != canBefore {
				t.Fatalf("%s: aggregate probe disagreement", spec)
			}
			if after := ix.Stats(); after != statsBefore {
				t.Fatalf("%s: read-only path mutated stats: %+v -> %+v", spec, statsBefore, after)
			}
		}
	}
}

// TestCanAnswerWithoutCracking checks the probe's semantics directly on
// original cracking, where exact bound cracks are guaranteed.
func TestCanAnswerWithoutCracking(t *testing.T) {
	const n = 10000
	c := NewCrack(xrand.New(23).Perm(n), Options{Seed: 24, NoCrackSize: -1})
	e := c.Engine()
	if e.CanAnswerWithoutCracking(100, 200) {
		t.Fatal("fresh column reported converged")
	}
	c.Query(100, 200)
	if !e.CanAnswerWithoutCracking(100, 200) {
		t.Fatal("exactly cracked bounds not converged")
	}
	if e.CanAnswerWithoutCracking(100, 300) {
		t.Fatal("uncracked right bound reported converged")
	}
	// Degenerate ranges are trivially answerable.
	if !e.CanAnswerWithoutCracking(200, 100) {
		t.Fatal("inverted range not converged")
	}
	// With a piece-size threshold, small pieces converge without exact
	// cracks.
	small := NewCrack(xrand.New(25).Perm(64), Options{Seed: 26, NoCrackSize: 64})
	if !small.Engine().CanAnswerWithoutCracking(10, 20) {
		t.Fatal("piece below threshold not converged")
	}
}

// TestAnswerReadOnlyDuplicatesAndEdges exercises duplicate-heavy data and
// boundary ranges through the read-only path.
func TestAnswerReadOnlyDuplicatesAndEdges(t *testing.T) {
	vals := make([]int64, 0, 3000)
	rng := xrand.New(27)
	for i := 0; i < 3000; i++ {
		vals = append(vals, rng.Int63n(50))
	}
	want := func(a, b int64) (int, int64) {
		var c int
		var s int64
		for _, v := range vals {
			if a <= v && v < b {
				c++
				s += v
			}
		}
		return c, s
	}
	ix := NewDD1R(append([]int64(nil), vals...), Options{Seed: 28})
	e := ix.Engine()
	cases := [][2]int64{{0, 50}, {0, 1}, {49, 50}, {10, 10}, {20, 10}, {-5, 5}, {48, 99}}
	for qi := 0; qi < 3; qi++ {
		for _, cs := range cases {
			got := e.AnswerReadOnly(cs[0], cs[1], nil)
			var sum int64
			for _, v := range got {
				sum += v
			}
			wc, ws := want(cs[0], cs[1])
			if len(got) != wc || sum != ws {
				t.Fatalf("round %d [%d,%d): got (%d,%d), want (%d,%d)",
					qi, cs[0], cs[1], len(got), sum, wc, ws)
			}
		}
		// Crack a little and re-check: the read-only answer must stay
		// correct at every convergence stage.
		ix.Query(rng.Int63n(25), 25+rng.Int63n(25))
	}
}
