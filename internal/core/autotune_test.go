package core

import (
	"testing"

	"repro/internal/xrand"
)

func TestAutoTuneMatchesOracle(t *testing.T) {
	vals := xrand.New(40).Perm(6000)
	testAlgorithmAgainstOracle(t, "autotune", vals, 400)
}

func TestAutoTuneSwitchesOnSequential(t *testing.T) {
	const n = 200000
	const q = 500
	ix := NewAutoTune(xrand.New(41).Perm(n), Options{Seed: 1})
	jump := int64(n / q)
	for i := 0; i < q; i++ {
		a := int64(i) * jump
		ix.Query(a, a+10)
	}
	if !ix.Stochastic() && ix.Switches() == 0 {
		t.Fatal("autotune never engaged stochastic mode on the sequential workload")
	}
	// It must land within a small factor of pure stochastic cracking.
	ref := NewMDD1R(xrand.New(41).Perm(n), Options{Seed: 1})
	for i := 0; i < q; i++ {
		a := int64(i) * jump
		ref.Query(a, a+10)
	}
	if at, st := ix.Stats().Touched, ref.Stats().Touched; at > st*6 {
		t.Fatalf("autotune touched %d, mdd1r %d; policy not helping", at, st)
	}
	// And far below original cracking.
	crk := NewCrack(xrand.New(41).Perm(n), Options{Seed: 1})
	for i := 0; i < q; i++ {
		a := int64(i) * jump
		crk.Query(a, a+10)
	}
	if at, ct := ix.Stats().Touched, crk.Stats().Touched; at*3 > ct {
		t.Fatalf("autotune touched %d, crack %d; expected >=3x improvement", at, ct)
	}
}

func TestAutoTuneStaysQueryDrivenOnRandom(t *testing.T) {
	const n = 200000
	ix := NewAutoTune(xrand.New(42).Perm(n), Options{Seed: 2})
	rng := xrand.New(43)
	for i := 0; i < 500; i++ {
		a := rng.Int63n(n - 10)
		ix.Query(a, a+10)
	}
	if ix.Stochastic() {
		t.Fatal("autotune stuck in stochastic mode on a random workload")
	}
	// Cost must track original cracking closely.
	crk := NewCrack(xrand.New(42).Perm(n), Options{Seed: 2})
	rng = xrand.New(43)
	for i := 0; i < 500; i++ {
		a := rng.Int63n(n - 10)
		crk.Query(a, a+10)
	}
	if at, ct := ix.Stats().Touched, crk.Stats().Touched; at > ct*2 {
		t.Fatalf("autotune touched %d on random, crack %d; overhead too high", at, ct)
	}
}

func TestAutoTuneRecoversAfterWorkloadShift(t *testing.T) {
	// Sequential phase engages stochastic mode; a long random phase should
	// let the EWMA collapse and the policy return to query-driven mode.
	const n = 300000
	ix := NewAutoTune(xrand.New(44).Perm(n), Options{Seed: 3})
	for i := 0; i < 300; i++ {
		a := int64(i) * int64(n/300)
		ix.Query(a, a+10)
	}
	engaged := ix.Switches() > 0
	rng := xrand.New(45)
	for i := 0; i < 500; i++ {
		a := rng.Int63n(n - 10)
		ix.Query(a, a+10)
	}
	if engaged && ix.Stochastic() {
		t.Fatal("autotune did not disengage after the workload turned random")
	}
}

func TestAutoTuneBuildSpec(t *testing.T) {
	ix, err := Build(xrand.New(46).Perm(100), "autotune", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "autotune" {
		t.Fatalf("name = %q", ix.Name())
	}
}
