package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dberr"
)

// Build constructs an Index by algorithm name. Recognized specs:
//
//	scan, sort, crack                     — baselines and original cracking
//	ddc, ddr, dd1c, dd1r                  — data-driven stochastic cracking
//	mdd1r                                 — stochastic cracking with materialization
//	pmdd1r-<pct>                          — progressive, e.g. pmdd1r-10 (P10%)
//	scrack                                — alias for pmdd1r with opt.SwapPct
//	fiftyfifty, flipcoin                  — per-query selective strategies
//	every-<x>                             — stochastic every x-th query
//	scrackmon-<x>                         — per-piece monitoring threshold x
//	sizeselective                         — stochastic only above CrackSize
//	r<x>crack                             — naive: random query every x queries
//
// Numeric suffixes override the corresponding Options field for this index
// only. The values slice is owned by the returned index.
func Build(values []int64, spec string, opt Options) (Index, error) {
	spec = strings.ToLower(strings.TrimSpace(spec))
	switch spec {
	case "scan":
		return NewScan(values, opt), nil
	case "sort":
		return NewSort(values, opt), nil
	case "crack":
		return NewCrack(values, opt), nil
	case "ddc":
		return NewDDC(values, opt), nil
	case "ddr":
		return NewDDR(values, opt), nil
	case "dd1c":
		return NewDD1C(values, opt), nil
	case "dd1r":
		return NewDD1R(values, opt), nil
	case "mdd1r":
		return NewMDD1R(values, opt), nil
	case "scrack", "pmdd1r":
		return NewPMDD1R(values, opt), nil
	case "fiftyfifty":
		return NewFiftyFifty(values, opt), nil
	case "flipcoin":
		return NewFlipCoin(values, opt), nil
	case "sizeselective":
		return NewSizeSelective(values, opt), nil
	case "autotune":
		return NewAutoTune(values, opt), nil
	}
	if pct, ok := suffixInt(spec, "pmdd1r-"); ok {
		if pct < 1 || pct > 100 {
			return nil, fmt.Errorf("core: pmdd1r swap percentage out of range: %q", spec)
		}
		opt.SwapPct = pct
		return NewPMDD1R(values, opt), nil
	}
	if x, ok := suffixInt(spec, "every-"); ok {
		if x < 1 {
			return nil, fmt.Errorf("core: every-X period must be >= 1: %q", spec)
		}
		return NewEveryX(values, x, opt), nil
	}
	if x, ok := suffixInt(spec, "scrackmon-"); ok {
		if x < 1 {
			return nil, fmt.Errorf("core: scrackmon-X threshold must be >= 1: %q", spec)
		}
		return NewScrackMon(values, x, opt), nil
	}
	if strings.HasPrefix(spec, "r") && strings.HasSuffix(spec, "crack") {
		num := strings.TrimSuffix(strings.TrimPrefix(spec, "r"), "crack")
		if x, err := strconv.Atoi(num); err == nil && x >= 1 {
			return NewRCrack(values, x, 10, opt), nil
		}
		return nil, fmt.Errorf("core: malformed rXcrack spec: %q", spec)
	}
	return nil, fmt.Errorf("core: %w %q", dberr.ErrUnknownAlgorithm, spec)
}

func suffixInt(spec, prefix string) (int, bool) {
	if !strings.HasPrefix(spec, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(spec, prefix))
	if err != nil {
		return 0, false
	}
	return n, true
}

// Algorithms lists every buildable algorithm spec (with representative
// parameters for the parameterized families), primarily for tooling.
func Algorithms() []string {
	return []string{
		"scan", "sort", "crack",
		"ddc", "ddr", "dd1c", "dd1r",
		"mdd1r", "pmdd1r-1", "pmdd1r-10", "pmdd1r-50", "pmdd1r-100",
		"fiftyfifty", "flipcoin", "every-4", "scrackmon-10", "sizeselective",
		"autotune",
		"r1crack", "r2crack", "r4crack", "r8crack",
	}
}
