package core

import "fmt"

// RCrack is the naive robustness strategy of Fig. 12: original cracking,
// plus one synthetic random range query injected for every X user queries.
// The injected queries crack the column at random places, independent of
// query processing — precisely the "afterthought" design the paper shows
// to be an order of magnitude worse than integrated stochastic cracking.
type RCrack struct {
	e *Engine
	x int64
	// injected query generation: random ranges of the data's value domain
	// with the workload's selectivity.
	domLo, domHi int64
	selectivity  int64
}

// NewRCrack builds an RXcrack index: one random query injected before
// every x user queries (x=1: before every query; x=2: the paper's R2crack,
// and so on). selectivity is the width of injected ranges in value units;
// the paper's default workloads use 10.
func NewRCrack(values []int64, x int, selectivity int64, opt Options) *RCrack {
	if x < 1 {
		x = 1
	}
	if selectivity < 1 {
		selectivity = 1
	}
	lo, hi := int64(0), int64(0)
	if len(values) > 0 {
		lo, hi = values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return &RCrack{
		e:           newEngine(values, opt),
		x:           int64(x),
		domLo:       lo,
		domHi:       hi,
		selectivity: selectivity,
	}
}

// Query answers [a, b) with original cracking, first injecting a random
// query when due.
func (r *RCrack) Query(a, b int64) Result {
	if r.e.queries%r.x == 0 && r.domHi > r.domLo+r.selectivity {
		ra := r.domLo + r.e.rng.Int63n(r.domHi-r.domLo-r.selectivity)
		r.e.queryMixed(ra, ra+r.selectivity, neverStochastic)
		r.e.queries-- // injected queries are overhead, not answered queries
	}
	return r.e.queryMixed(a, b, neverStochastic)
}

// Name implements Index.
func (r *RCrack) Name() string { return fmt.Sprintf("r%dcrack", r.x) }

// Stats implements Index.
func (r *RCrack) Stats() Stats { return r.e.stats() }

// Engine exposes the underlying engine.
func (r *RCrack) Engine() *Engine { return r.e }
