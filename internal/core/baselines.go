package core

import (
	"math/bits"
	"slices"
	"sort"
)

// Crack is original database cracking [16]: each select operator cracks
// the column exactly on its query bounds (crack-in-three when both bounds
// fall in one piece, crack-in-two per bound otherwise) and returns the
// qualifying tuples as a contiguous view.
type Crack struct {
	e *Engine
}

// NewCrack builds an original-cracking index over values.
func NewCrack(values []int64, opt Options) *Crack {
	return &Crack{e: newEngine(values, opt)}
}

// Query answers [a, b), cracking the column on a and b.
func (c *Crack) Query(a, b int64) Result {
	return c.e.queryMixed(a, b, neverStochastic)
}

// Name implements Index.
func (c *Crack) Name() string { return "crack" }

// Stats implements Index.
func (c *Crack) Stats() Stats { return c.e.stats() }

// Engine exposes the underlying engine (harness and demo tooling).
func (c *Crack) Engine() *Engine { return c.e }

func neverStochastic(_, _ int, _ int64) bool { return false }

// Scan is the non-indexing baseline: every query scans the entire column
// and materializes the qualifying tuples into a result array (the paper
// stresses that Scan, unlike Crack and Sort, cannot return a view).
type Scan struct {
	e *Engine
}

// NewScan builds a scan baseline over values.
func NewScan(values []int64, opt Options) *Scan {
	return &Scan{e: newEngine(values, opt)}
}

// Query scans the column for [a, b).
func (s *Scan) Query(a, b int64) Result {
	s.e.queries++
	res := Result{col: s.e.col}
	if a >= b {
		return res
	}
	s.e.leftBuf = s.e.col.ScanMaterialize(0, s.e.col.Len(), a, b, s.e.leftBuf[:0])
	res.left = s.e.leftBuf
	return res
}

// Name implements Index.
func (s *Scan) Name() string { return "scan" }

// Stats implements Index.
func (s *Scan) Stats() Stats { return s.e.stats() }

// Engine exposes the underlying engine.
func (s *Scan) Engine() *Engine { return s.e }

// Sort is the full-index baseline: the first query pays for completely
// sorting the column; every query thereafter is two binary searches and a
// view (Fig. 2's "Sort" strategy).
type Sort struct {
	e      *Engine
	sorted bool
}

// NewSort builds a full-indexing baseline over values.
func NewSort(values []int64, opt Options) *Sort {
	return &Sort{e: newEngine(values, opt)}
}

// Query sorts the column on first use, then binary-searches [a, b).
func (s *Sort) Query(a, b int64) Result {
	s.e.queries++
	res := Result{col: s.e.col}
	n := s.e.col.Len()
	if !s.sorted {
		if s.e.col.RowIDs != nil {
			sortWithRowIDs(s.e.col.Values, s.e.col.RowIDs)
		} else {
			slices.Sort(s.e.col.Values)
		}
		s.sorted = true
		// Analytic touched-tuples accounting for the sort: n*ceil(log2 n)
		// comparisons-worth of work, the conventional cost model. Wall
		// clock time is measured directly by the harness either way.
		if n > 1 {
			s.e.col.Stats.Touched += int64(n) * int64(bits.Len(uint(n-1)))
		}
	}
	if a >= b || n == 0 {
		return res
	}
	vals := s.e.col.Values
	lo, _ := slices.BinarySearch(vals, a)
	hi, _ := slices.BinarySearch(vals, b)
	s.e.col.Stats.Touched += int64(2 * bits.Len(uint(n)))
	res.lo, res.hi = lo, hi
	return res
}

// Name implements Index.
func (s *Sort) Name() string { return "sort" }

// Stats implements Index.
func (s *Sort) Stats() Stats { return s.e.stats() }

// sortWithRowIDs sorts values and keeps the rowid payload aligned.
func sortWithRowIDs(values []int64, ids []uint32) {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	vtmp := make([]int64, len(values))
	itmp := make([]uint32, len(ids))
	for i, j := range idx {
		vtmp[i] = values[j]
		itmp[i] = ids[j]
	}
	copy(values, vtmp)
	copy(ids, itmp)
}
