package core

import "slices"

// Routing between the serial and the parallel crack kernels. Every
// reorganizing call site in the engine goes through these helpers: pieces
// of ParallelCrackMin tuples or more take column's chunked parallel
// kernels (multi-core partitioning on the process-wide worker pool),
// smaller pieces keep the serial branchless kernels. With the threshold at
// 0 — the default — everything stays serial and the engine behaves
// bit-identically to previous versions.
//
// The routing is safe under the executor's locking model: reorganizing
// queries run under the exclusive lock, so the parallel kernel's helpers
// are the only goroutines touching the column, and they join before the
// call returns (column.claimLoop keeps completion on the calling
// goroutine, per the pool's contract).

// parallelPiece reports whether piece [lo, hi) should take the parallel
// kernels.
func (e *Engine) parallelPiece(lo, hi int) bool {
	m := e.opt.ParallelCrackMin
	return m > 0 && hi-lo >= m
}

// crackInTwo cracks [lo, hi) on pivot through the size-appropriate kernel.
func (e *Engine) crackInTwo(lo, hi int, pivot int64) int {
	if e.parallelPiece(lo, hi) {
		return e.col.ParallelCrackInTwo(lo, hi, pivot)
	}
	return e.col.CrackInTwo(lo, hi, pivot)
}

// crackInThree cracks [lo, hi) on both query bounds at once.
func (e *Engine) crackInThree(lo, hi int, a, b int64) (int, int) {
	if e.parallelPiece(lo, hi) {
		return e.col.ParallelCrackInThree(lo, hi, a, b)
	}
	return e.col.CrackInThree(lo, hi, a, b)
}

// splitAndMaterialize is the MDD1R primitive through the size-appropriate
// kernel.
func (e *Engine) splitAndMaterialize(lo, hi int, pivot, a, b int64, out []int64) ([]int64, int) {
	if e.parallelPiece(lo, hi) {
		return e.col.ParallelSplitAndMaterialize(lo, hi, pivot, a, b, out)
	}
	return e.col.SplitAndMaterialize(lo, hi, pivot, a, b, out)
}

func (e *Engine) splitAndMaterializeGE(lo, hi int, pivot, a int64, out []int64) ([]int64, int) {
	if e.parallelPiece(lo, hi) {
		return e.col.ParallelSplitAndMaterializeGE(lo, hi, pivot, a, out)
	}
	return e.col.SplitAndMaterializeGE(lo, hi, pivot, a, out)
}

func (e *Engine) splitAndMaterializeLT(lo, hi int, pivot, b int64, out []int64) ([]int64, int) {
	if e.parallelPiece(lo, hi) {
		return e.col.ParallelSplitAndMaterializeLT(lo, hi, pivot, b, out)
	}
	return e.col.SplitAndMaterializeLT(lo, hi, pivot, b, out)
}

// coarseInit performs coarse-granular initialization (Alvarez et al.):
// pre-cut the freshly loaded column into about opt.CoarseInitPieces
// value-ranged pieces, each cut a real crack recorded in the cracker
// index, so the first query on any piece starts from a piece-sized — not
// column-sized — crack. Pivots are sampled from the data (deterministic
// given the seed: all samples are drawn before any reorganization), then
// applied in binary-recursive order so every cut halves its region; each
// cut routes through crackInTwo and therefore runs the parallel kernel on
// regions past ParallelCrackMin.
//
// The cost is charged to the engine's counters like any crack: Touched
// grows by about n*log2(pieces) — visible, not hidden, exactly as the
// paper accounts reorganization.
func (e *Engine) coarseInit() {
	p := e.opt.CoarseInitPieces
	n := e.col.Len()
	if p < 2 || n < 2 {
		return
	}
	if p > n {
		p = n
	}
	// Sample p-1 pivots up front (the sampled values move during
	// cracking). Sorted and deduplicated: duplicate pivots would insert
	// zero-width pieces without adding information.
	pivots := make([]int64, 0, p-1)
	for i := 0; i < p-1; i++ {
		pivots = append(pivots, e.randomPivot(0, n))
	}
	slices.Sort(pivots)
	pivots = slices.Compact(pivots)

	var cut func(lo, hi int, pv []int64)
	cut = func(lo, hi int, pv []int64) {
		if len(pv) == 0 || hi-lo < 2 {
			return
		}
		mid := len(pv) / 2
		pos := e.crackInTwo(lo, hi, pv[mid])
		e.idx.Insert(pv[mid], pos)
		cut(lo, pos, pv[:mid])
		cut(pos, hi, pv[mid+1:])
	}
	cut(0, n, pivots)
}
