package core

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/pool"
)

// Parallel materialization of large results. A wide converged query's
// answer is dominated by one contiguous memcpy out of the cracker column;
// a single core cannot saturate the memory system of a multi-channel
// machine, so copies above parallelCopyMin fan out to the process-wide
// worker pool in copyChunk units.

const (
	// parallelCopyMin is the contiguous copy size (tuples) above which
	// materialization fans out: 1 MiB of values. Below it a single core's
	// copy bandwidth wins over coordination.
	parallelCopyMin = 128 << 10
	// copyChunk is the work unit one worker claims at a time (512 KiB):
	// small enough to balance load, large enough that the atomic claim is
	// noise.
	copyChunk = 64 << 10
)

// appendBulk appends src to dst like append(dst, src...), fanning the copy
// out to the worker pool when src is large. Small appends stay inline and
// allocation-free (given capacity).
func appendBulk(dst, src []int64) []int64 {
	if len(src) < parallelCopyMin {
		return append(dst, src...)
	}
	base := len(dst)
	dst = slices.Grow(dst, len(src))[:base+len(src)]
	bulkCopy(dst[base:], src)
	return dst
}

// bulkCopy copies src into dst (equal lengths) using the worker pool.
// Chunks are handed out by an atomic counter and the calling goroutine
// claims chunks itself, so completion never depends on a pool worker
// being free — safe to run from inside a pool task (the sharded
// executor's fan-out) without risking pool starvation deadlock.
func bulkCopy(dst, src []int64) {
	n := len(src)
	nchunks := (n + copyChunk - 1) / copyChunk
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nchunks)
	claim := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			end := c*copyChunk + copyChunk
			if end > n {
				end = n
			}
			copy(dst[c*copyChunk:end], src[c*copyChunk:end])
			wg.Done()
		}
	}
	helpers := runtime.GOMAXPROCS(0) - 1
	if m := nchunks - 1; helpers > m {
		helpers = m
	}
	for i := 0; i < helpers; i++ {
		if !pool.Submit(claim) {
			break // saturated: the claim loop below does the rest
		}
	}
	claim()
	wg.Wait()
}
