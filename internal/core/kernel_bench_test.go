package core

import (
	"testing"

	"repro/internal/xrand"
)

// Converged-path microbenchmarks. BenchmarkConvergedProbe is part of the
// CI kernel regression gate (bench/baseline/kernels.txt, cmd/benchgate):
// its name is a stable interface.

const (
	probeN      = 1 << 20
	probeRanges = 1024
	probeWidth  = 64
)

// convergedEngine builds a DD1R index and runs every benchmark range once,
// so each bound is an exact crack and the workload is pure reads.
func convergedEngine(b *testing.B) (*Engine, [][2]int64) {
	b.Helper()
	d := NewDD1R(xrand.New(7).Perm(probeN), Options{Seed: 8})
	rng := xrand.New(9)
	ranges := make([][2]int64, probeRanges)
	for i := range ranges {
		a := rng.Int63n(probeN - probeWidth)
		ranges[i] = [2]int64{a, a + probeWidth}
		d.Query(a, a+probeWidth)
	}
	return d.Engine(), ranges
}

// BenchmarkConvergedProbe measures the fused convergence probe plus
// read-only answer — the whole hot path of a converged query minus
// locking: two cracker-index descents and the piece scans.
func BenchmarkConvergedProbe(b *testing.B) {
	e, ranges := convergedEngine(b)
	dst := make([]int64, 0, probeWidth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ranges[i%probeRanges]
		out, ok := e.TryAnswerReadOnly(r[0], r[1], dst[:0])
		if !ok || len(out) != probeWidth {
			b.Fatalf("not converged or bad count %d", len(out))
		}
	}
}

// BenchmarkConvergedMaterialize measures bulk materialization of a wide
// converged result: both bounds are exact cracks, so the answer is one
// contiguous copy of ~half the column — the path that fans large copies
// out to the worker pool.
func BenchmarkConvergedMaterialize(b *testing.B) {
	const n = 1 << 22
	const lo, hi = int64(n / 4), int64(3 * n / 4)
	d := NewCrack(xrand.New(11).Perm(n), Options{Seed: 12})
	d.Query(lo, hi) // both bounds become exact cracks
	dst := make([]int64, 0, hi-lo)
	b.SetBytes(8 * (hi - lo))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := d.Engine().TryAnswerReadOnly(lo, hi, dst[:0])
		if !ok || len(out) != int(hi-lo) {
			b.Fatalf("not converged or bad count %d", len(out))
		}
	}
}
