package core

import (
	"testing"

	"repro/internal/xrand"
)

// engineBacked returns the engine behind an index, when exposed.
func engineBacked(ix Index) (*Engine, bool) {
	acc, ok := ix.(interface{ Engine() *Engine })
	if !ok {
		return nil, false
	}
	return acc.Engine(), true
}

// checkPhysicalInvariants verifies every promise the cracker index makes
// about the column: for each crack (v, p), all values before p are < v and
// all values from p on are >= v; positions are monotone; and the column
// still holds the original multiset.
func checkPhysicalInvariants(t *testing.T, e *Engine, original []int64) {
	t.Helper()
	col := e.Column()
	if col.Len() != len(original) {
		t.Fatalf("column length changed: %d -> %d", len(original), col.Len())
	}
	want := make(map[int64]int, len(original))
	for _, v := range original {
		want[v]++
	}
	got := make(map[int64]int, len(original))
	for _, v := range col.Values {
		got[v]++
	}
	if len(want) != len(got) {
		t.Fatal("column multiset changed")
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("value %d count %d, want %d", k, got[k], c)
		}
	}

	// Build a prefix structure once: positions of each crack, in order.
	type crack struct {
		key int64
		pos int
	}
	var cracks []crack
	prevKey := int64(-1 << 62)
	prevPos := -1
	e.CrackerIndex().Ascend(func(key int64, pos int) bool {
		if key <= prevKey {
			t.Fatalf("cracker index keys out of order: %d after %d", key, prevKey)
		}
		if pos < prevPos {
			t.Fatalf("crack positions not monotone: %d (key %d) after %d", pos, key, prevPos)
		}
		if pos < 0 || pos > col.Len() {
			t.Fatalf("crack position %d out of range", pos)
		}
		prevKey, prevPos = key, pos
		cracks = append(cracks, crack{key, pos})
		return true
	})

	// Single pass: for each position, value must be >= all crack keys at
	// or before it and < all crack keys after it. Since keys and positions
	// are both monotone, it suffices to compare against the neighboring
	// cracks.
	ci := 0
	for i, v := range col.Values {
		for ci < len(cracks) && cracks[ci].pos <= i {
			ci++
		}
		// cracks[ci-1] is the last crack at or before i.
		if ci > 0 && v < cracks[ci-1].key {
			t.Fatalf("value %d at pos %d violates crack (%d,%d)", v, i, cracks[ci-1].key, cracks[ci-1].pos)
		}
		if ci < len(cracks) && v >= cracks[ci].key {
			t.Fatalf("value %d at pos %d violates upcoming crack (%d,%d)", v, i, cracks[ci].key, cracks[ci].pos)
		}
	}

	// Row-id payload, when present, must still match original values.
	if col.RowIDs != nil {
		for i, id := range col.RowIDs {
			if original[id] != col.Values[i] {
				t.Fatalf("row id %d at pos %d maps to %d, column holds %d",
					id, i, original[id], col.Values[i])
			}
		}
	}
}

func TestPhysicalInvariantsAcrossAlgorithms(t *testing.T) {
	const n = 30000
	original := xrand.New(50).Perm(n)
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			ix, err := Build(append([]int64(nil), original...), spec,
				Options{Seed: 51, TrackRowIDs: true})
			if err != nil {
				t.Fatal(err)
			}
			e, ok := engineBacked(ix)
			if !ok {
				t.Skipf("%s does not expose an engine", spec)
			}
			rng := xrand.New(52)
			for i := 0; i < 300; i++ {
				a, b := queryPattern(i, n, rng)
				ix.Query(a, b)
			}
			checkPhysicalInvariants(t, e, original)
		})
	}
}

func TestPhysicalInvariantsWithDuplicates(t *testing.T) {
	rng := xrand.New(53)
	original := make([]int64, 20000)
	for i := range original {
		original[i] = rng.Int63n(500)
	}
	for _, spec := range []string{"crack", "ddc", "ddr", "dd1c", "dd1r", "mdd1r", "pmdd1r-10", "scrackmon-3"} {
		ix, err := Build(append([]int64(nil), original...), spec, Options{Seed: 54})
		if err != nil {
			t.Fatal(err)
		}
		e, _ := engineBacked(ix)
		q := xrand.New(55)
		for i := 0; i < 300; i++ {
			a := q.Int63n(500)
			ix.Query(a, a+q.Int63n(50)+1)
		}
		checkPhysicalInvariants(t, e, original)
	}
}

func TestPieceSizesShrinkTowardThreshold(t *testing.T) {
	// After enough DDR queries, no piece that a query bound landed in
	// should remain dramatically above CrackSize; globally, the largest
	// piece must be far below N.
	const n = 1 << 18
	ix := NewDDR(xrand.New(56).Perm(n), Options{Seed: 57, CrackSize: 1024})
	rng := xrand.New(58)
	for i := 0; i < 200; i++ {
		a := rng.Int63n(n - 100)
		ix.Query(a, a+100)
	}
	pieces := ix.Engine().CrackerIndex().Pieces(n)
	largest := 0
	for i := 1; i < len(pieces); i++ {
		if d := pieces[i] - pieces[i-1]; d > largest {
			largest = d
		}
	}
	if largest > n/8 {
		t.Fatalf("largest piece is %d of %d; DDR failed to break the column down", largest, n)
	}
}
