package core

import (
	"sync"
	"testing"

	"repro/internal/xrand"
)

func TestConcurrentQueriesRaceFree(t *testing.T) {
	const n = 50000
	vals := xrand.New(30).Perm(n)
	inner := NewMDD1R(vals, Options{Seed: 13})
	ix := NewConcurrent(inner)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + g))
			for i := 0; i < 50; i++ {
				a := rng.Int63n(n - 200)
				b := a + 200
				count, sum := ix.QueryCount(a, b)
				if count != 200 {
					errs <- "bad count"
					return
				}
				var want int64
				for v := a; v < b; v++ {
					want += v
				}
				if sum != want {
					errs <- "bad sum"
					return
				}
				vals := ix.Query(a, b)
				if len(vals) != 200 {
					errs <- "bad materialized length"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := ix.Stats().Queries; got != 8*50*2 {
		t.Fatalf("queries = %d, want %d", got, 8*50*2)
	}
	if ix.Name() != "concurrent(mdd1r)" {
		t.Fatalf("name = %q", ix.Name())
	}
}
