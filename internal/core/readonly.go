package core

// Read-only query answering, the foundation of the adaptive read/write
// execution layer (internal/exec). Cracking inverts the usual
// reader/writer economics — every query may reorganize the column — but
// cracking also converges: once the pieces around a query's bounds are
// exact cracks (or too small to be worth splitting), answering it
// reorganizes nothing and is a plain read. The methods in this file detect
// that case and answer it without mutating any engine state (no cracks, no
// counters, no shared buffers), so the executor can serve converged
// queries under a shared lock in parallel.

// CanAnswerWithoutCracking reports whether the range query [a, b) can be
// answered without any physical reorganization or other engine mutation:
// each bound either lies exactly on an existing crack or falls in a piece
// of at most Options.NoCrackSize tuples. It never mutates the engine and
// is safe to call under a shared lock.
func (e *Engine) CanAnswerWithoutCracking(a, b int64) bool {
	n := e.col.Len()
	if a >= b || n == 0 {
		return true
	}
	return e.idx.BoundConverged(a, n, e.opt.NoCrackSize) &&
		e.idx.BoundConverged(b, n, e.opt.NoCrackSize)
}

// TryAnswerReadOnly answers [a, b) without mutating the engine when the
// query is converged (see CanAnswerWithoutCracking), appending the
// qualifying values to dst. ok is false — with dst returned unchanged —
// when answering would require reorganization. Probe and answer share one
// pair of cracker-index descents, which keeps the executor's read path as
// cheap as a write-path lookup.
func (e *Engine) TryAnswerReadOnly(a, b int64, dst []int64) (_ []int64, ok bool) {
	n := e.col.Len()
	if a >= b || n == 0 {
		return dst, true
	}
	noCrack := e.opt.NoCrackSize
	loA, hiA, exactA := e.idx.PieceFor(a, n)
	if !exactA && hiA-loA > noCrack {
		return dst, false
	}
	loB, hiB, exactB := e.idx.PieceFor(b, n)
	if !exactB && hiB-loB > noCrack {
		return dst, false
	}
	return e.answerPieces(dst, a, b, loA, hiA, exactA, loB, hiB, exactB), true
}

// TryAnswerReadOnlyAggregate is TryAnswerReadOnly returning only (count,
// sum).
func (e *Engine) TryAnswerReadOnlyAggregate(a, b int64) (count int, sum int64, ok bool) {
	n := e.col.Len()
	if a >= b || n == 0 {
		return 0, 0, true
	}
	noCrack := e.opt.NoCrackSize
	loA, hiA, exactA := e.idx.PieceFor(a, n)
	if !exactA && hiA-loA > noCrack {
		return 0, 0, false
	}
	loB, hiB, exactB := e.idx.PieceFor(b, n)
	if !exactB && hiB-loB > noCrack {
		return 0, 0, false
	}
	count, sum = e.aggregatePieces(a, b, loA, hiA, exactA, loB, hiB, exactB)
	return count, sum, true
}

// AnswerReadOnly appends the qualifying values of [a, b) to dst and
// returns it, without mutating the engine: no cracks are inserted, no cost
// counters advance, no shared materialization buffers are touched. It is
// always correct, but on unconverged bounds it degrades to scanning whole
// pieces; gate hot paths behind CanAnswerWithoutCracking or use
// TryAnswerReadOnly, which fuses the probe into the answer.
func (e *Engine) AnswerReadOnly(a, b int64, dst []int64) []int64 {
	n := e.col.Len()
	if a >= b || n == 0 {
		return dst
	}
	loA, hiA, exactA := e.idx.PieceFor(a, n)
	loB, hiB, exactB := e.idx.PieceFor(b, n)
	return e.answerPieces(dst, a, b, loA, hiA, exactA, loB, hiB, exactB)
}

// AnswerReadOnlyAggregate returns the count and sum of the qualifying
// values of [a, b) under the same no-mutation contract as AnswerReadOnly.
func (e *Engine) AnswerReadOnlyAggregate(a, b int64) (count int, sum int64) {
	n := e.col.Len()
	if a >= b || n == 0 {
		return 0, 0
	}
	loA, hiA, exactA := e.idx.PieceFor(a, n)
	loB, hiB, exactB := e.idx.PieceFor(b, n)
	return e.aggregatePieces(a, b, loA, hiA, exactA, loB, hiB, exactB)
}

// answerPieces assembles the answer from the bound pieces: filtered scans
// of the end pieces, a bulk copy of everything between them.
func (e *Engine) answerPieces(dst []int64, a, b int64, loA, hiA int, exactA bool, loB, hiB int, exactB bool) []int64 {
	vals := e.col.Values

	// Both bounds inside the same uncracked piece: one filtered scan.
	if !exactA && !exactB && loA == loB && hiA == hiB {
		return appendInRange(dst, vals[loA:hiA], a, b)
	}

	if dst == nil {
		// One exact allocation for the contiguous middle plus at most the
		// two end pieces.
		est := hiB - loA
		if exactB {
			est = loB - loA
		}
		dst = make([]int64, 0, est)
	}
	// Left end piece: qualifying values are those >= a (all below b — b's
	// piece is above — unless b shares a's piece, which the guard covers).
	viewStart := loA
	if !exactA {
		dst = appendInRange(dst, vals[loA:hiA], a, b)
		viewStart = hiA
	}
	// Middle: every piece strictly between the bound pieces qualifies
	// whole — one contiguous copy, fanned out to the worker pool when wide.
	if loB > viewStart {
		dst = appendBulk(dst, vals[viewStart:loB])
	}
	// Right end piece: qualifying values are those < b.
	if !exactB {
		dst = appendInRange(dst, vals[loB:hiB], a, b)
	}
	return dst
}

func (e *Engine) aggregatePieces(a, b int64, loA, hiA int, exactA bool, loB, hiB int, exactB bool) (count int, sum int64) {
	vals := e.col.Values

	if !exactA && !exactB && loA == loB && hiA == hiB {
		return countInRange(vals[loA:hiA], a, b)
	}

	viewStart := loA
	if !exactA {
		c, s := countInRange(vals[loA:hiA], a, b)
		count, sum = count+c, sum+s
		viewStart = hiA
	}
	if loB > viewStart {
		count += loB - viewStart
		for _, v := range vals[viewStart:loB] {
			sum += v
		}
	}
	if !exactB {
		c, s := countInRange(vals[loB:hiB], a, b)
		count, sum = count+c, sum+s
	}
	return count, sum
}

// inRange is a <= v && v < b in one compare: uint64(v-a) is v's rank in
// the int64 order starting at a, and [a, b) is the rank interval
// [0, uint64(b-a)). Every caller has already normalized a < b.
func inRange(v, a, b int64) bool {
	return uint64(v-a) < uint64(b-a)
}

func appendInRange(dst, piece []int64, a, b int64) []int64 {
	for _, v := range piece {
		if inRange(v, a, b) {
			dst = append(dst, v)
		}
	}
	return dst
}

func countInRange(piece []int64, a, b int64) (count int, sum int64) {
	for _, v := range piece {
		if inRange(v, a, b) {
			count++
			sum += v
		}
	}
	return count, sum
}
