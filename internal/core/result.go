package core

import "repro/internal/column"

// Result is the outcome of a range query [a, b).
//
// Following the paper's column-store contract, a result is the
// concatenation of (left materialized values ‖ a contiguous view into the
// cracker column ‖ right materialized values). Algorithms that collect all
// qualifying tuples contiguously (Crack, Sort, DDC/DDR/DD1C/DD1R) return a
// pure view; Scan returns a fully materialized result; MDD1R and the
// progressive/selective variants materialize only the end pieces and
// return the middle as a view (Fig. 6).
//
// Materialized parts may reference buffers owned by the index and reused
// across queries: a Result is valid until the next Query on the same
// index. Use Materialize to copy it out.
type Result struct {
	col    *column.Column
	lo, hi int // view range; empty when lo >= hi
	left   []int64
	right  []int64
	// owned marks a result built from a caller-owned slice
	// (NewOwnedResult): left does not alias index buffers and may be
	// handed out without copying. NewMaterializedResult deliberately does
	// NOT set it — its slice may be a buffer the index reuses.
	owned bool
}

// Count returns the number of qualifying tuples.
func (r Result) Count() int {
	n := len(r.left) + len(r.right)
	if r.hi > r.lo {
		n += r.hi - r.lo
	}
	return n
}

// ViewLen returns the number of tuples returned as a non-materialized view
// into the cracker column (0 for fully materialized results).
func (r Result) ViewLen() int {
	if r.hi > r.lo {
		return r.hi - r.lo
	}
	return 0
}

// ViewLo returns the start position of the view part within the cracker
// column (meaningful only when ViewLen > 0).
func (r Result) ViewLo() int { return r.lo }

// ViewHi returns the end position (exclusive) of the view part within the
// cracker column (meaningful only when ViewLen > 0).
func (r Result) ViewHi() int { return r.hi }

// Sum returns the sum of all qualifying values; together with Count it is
// the checksum the test-suite validates against the oracle.
func (r Result) Sum() int64 {
	var s int64
	for _, v := range r.left {
		s += v
	}
	if r.hi > r.lo {
		for _, v := range r.col.Values[r.lo:r.hi] {
			s += v
		}
	}
	for _, v := range r.right {
		s += v
	}
	return s
}

// ForEach calls fn for every qualifying value, in storage order (left
// materialized, view, right materialized).
func (r Result) ForEach(fn func(v int64)) {
	for _, v := range r.left {
		fn(v)
	}
	if r.hi > r.lo {
		for _, v := range r.col.Values[r.lo:r.hi] {
			fn(v)
		}
	}
	for _, v := range r.right {
		fn(v)
	}
}

// Materialize appends all qualifying values to dst and returns it. The
// returned slice is independent of the index's internal buffers. Wide
// view parts are copied in parallel through the worker pool.
func (r Result) Materialize(dst []int64) []int64 {
	dst = append(dst, r.left...)
	if r.hi > r.lo {
		dst = appendBulk(dst, r.col.Values[r.lo:r.hi])
	}
	dst = append(dst, r.right...)
	return dst
}

// Owned returns the qualifying values as a slice independent of the
// index's internal buffers, safe to retain across queries. Results built
// from a caller-owned slice (NewOwnedResult — every concurrent query
// path) are returned without copying; view- or buffer-backed results are
// copied out.
func (r Result) Owned() []int64 {
	if r.owned {
		return r.left
	}
	return r.Materialize(make([]int64, 0, r.Count()))
}

// NewMaterializedResult wraps a fully materialized slice of qualifying
// values as a Result. The slice may be a buffer the index reuses across
// queries (the partition/merge hybrids do), so the Result is valid until
// the next Query, like any other; use NewOwnedResult for slices the
// caller gives away.
func NewMaterializedResult(vals []int64) Result {
	return Result{left: vals}
}

// NewOwnedResult wraps a caller-owned, fully materialized slice of
// qualifying values as a Result whose Owned method returns vals without
// copying. The caller must not retain or reuse vals afterwards.
func NewOwnedResult(vals []int64) Result {
	return Result{left: vals, owned: true}
}
