// Package core implements the adaptive indexing algorithms of the paper:
// original database cracking, the full-index and scan baselines, the
// stochastic cracking family (DDC, DDR, DD1C, DD1R, MDD1R), progressive
// stochastic cracking (PMDD1R), the selective variants (FiftyFifty,
// FlipCoin, EveryX, ScrackMon, SizeSelective) and the naive random-query
// injection strategies (RXcrack).
//
// All algorithms share one Engine: a cracker column (internal/column) plus
// a cracker index (internal/cindex) plus a seeded PRNG. Each algorithm is a
// different policy for how a select operator's range [a, b) reorganizes the
// column; the policies are small and composable, exactly as the paper
// presents them (§4: "all our algorithms are proposed as replacements for
// the original cracking physical reorganization algorithm").
package core

// Cache-derived defaults, expressed in tuples of 8 bytes. The paper found
// the L1 cache size to be the best piece-size threshold for recursive
// stochastic cracking (Fig. 8) and uses the L2 size as the cutoff below
// which progressive cracking hands over to plain MDD1R.
const (
	// DefaultCrackSize is an L1-sized piece threshold: 32 KB / 8 B.
	DefaultCrackSize = 4096
	// DefaultProgressiveSize is an L2-sized piece threshold: 256 KB / 8 B.
	DefaultProgressiveSize = 32768
	// DefaultSwapPct is the progressive swap budget (P10% in the paper,
	// its default stochastic cracking strategy for most experiments).
	DefaultSwapPct = 10
	// DefaultNoCrackSize is the piece-size threshold (tuples) below which
	// the concurrent executor answers queries by scanning the piece under a
	// shared lock instead of cracking it under an exclusive one: 1 KB of
	// values, cheap enough that further splitting buys nothing.
	DefaultNoCrackSize = 128
	// DefaultParallelCrackMin is the piece-size threshold (tuples) at or
	// above which crack operations route through the parallel partition
	// kernel when parallel cracking is enabled: 1M tuples (8 MB) — far
	// past every cache level, where the kernel is memory-bandwidth-bound
	// and chunked multi-core partitioning pays for its coordination.
	DefaultParallelCrackMin = 1 << 20
)

// Options configure an Engine. The zero value selects the paper's defaults.
type Options struct {
	// CrackSize is the piece-size threshold (in tuples) below which DDC,
	// DDR, DD1C and DD1R stop introducing auxiliary cracks, and below
	// which SizeSelective switches back to original cracking.
	// Defaults to DefaultCrackSize (≈ L1).
	CrackSize int

	// ProgressiveSize is the piece-size threshold (in tuples) above which
	// progressive cracking spreads a crack across queries; at or below it,
	// full MDD1R takes over. Defaults to DefaultProgressiveSize (≈ L2).
	ProgressiveSize int

	// SwapPct is the progressive swap budget as a percentage of the piece
	// size (P1%..P100%). Defaults to DefaultSwapPct. 100 makes PMDD1R
	// behave exactly like MDD1R.
	SwapPct int

	// NoCrackSize is the piece-size threshold (in tuples) at or below which
	// CanAnswerWithoutCracking treats a query bound as converged: the piece
	// is scanned read-only instead of being cracked. Defaults to
	// DefaultNoCrackSize; set it negative to require exact cracks.
	NoCrackSize int

	// ParallelCrackMin is the piece-size threshold (tuples) at or above
	// which values-only crack operations run the chunked parallel
	// partition kernel (column.ParallelCrackInTwo and friends) on the
	// process-wide worker pool; smaller pieces keep the serial branchless
	// kernel. 0 (the default) disables parallel cracking entirely; set it
	// to DefaultParallelCrackMin for the standard threshold. The parallel
	// kernel preserves split positions and per-side multisets exactly, but
	// not the order within a side, so cross-seed physical-layout
	// determinism holds only at equal GOMAXPROCS relative to the serial
	// kernel's layout — see column's serial-equivalence contract.
	ParallelCrackMin int

	// CoarseInitPieces pre-cuts the column into about this many
	// value-ranged pieces at build time (coarse-granular initialization,
	// after Alvarez et al.): pivots are sampled from the data, the cuts
	// run through the same crack kernels (parallel when ParallelCrackMin
	// allows) and are recorded as real cracks in the cracker index, so no
	// later query ever pays a full-column crack. 0 or 1 disables (the
	// default: the paper's algorithms start from a completely uncracked
	// column). Ignored by Restore — a snapshot already carries its earned
	// refinement.
	CoarseInitPieces int

	// Seed drives every random choice (pivots, coin flips, injected
	// queries). Two indexes built with the same seed, data and query
	// sequence behave identically. Defaults to 1.
	Seed uint64

	// TrackRowIDs attaches a row-identifier payload that is permuted in
	// tandem with the values, as a column-store's (rowid, value) pairs.
	TrackRowIDs bool
}

func (o Options) withDefaults() Options {
	if o.CrackSize <= 0 {
		o.CrackSize = DefaultCrackSize
	}
	if o.CrackSize < 2 {
		o.CrackSize = 2
	}
	if o.ProgressiveSize <= 0 {
		o.ProgressiveSize = DefaultProgressiveSize
	}
	if o.SwapPct <= 0 {
		o.SwapPct = DefaultSwapPct
	}
	if o.SwapPct > 100 {
		o.SwapPct = 100
	}
	if o.NoCrackSize == 0 {
		o.NoCrackSize = DefaultNoCrackSize
	}
	if o.NoCrackSize < 0 {
		o.NoCrackSize = 0
	}
	if o.ParallelCrackMin < 0 {
		o.ParallelCrackMin = 0
	}
	if o.CoarseInitPieces < 0 {
		o.CoarseInitPieces = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Stats reports the cumulative physical cost of an index since creation.
type Stats struct {
	// Queries answered so far.
	Queries int64
	// Touched is the number of tuples examined by reorganizations and
	// scans — the cost metric of the paper's Fig. 2(e).
	Touched int64
	// Swaps counts tuple movements during reorganization. It is a
	// kernel-level diagnostic, not a cross-kernel comparable: the
	// branchless values-only kernels count each displaced qualifying
	// tuple, the tandem (rowid/payload) kernels count Hoare pair
	// exchanges. Compare physical cost across algorithms with Touched.
	Swaps int64
	// Cracks is the number of cracks in the cracker index.
	Cracks int
	// Pieces is Cracks+1: the number of column pieces.
	Pieces int
}
