package core

import (
	"testing"

	"repro/internal/xrand"
)

// parallelTestOptions enables the parallel kernels with a threshold small
// enough that test-sized pieces actually route through them.
func parallelTestOptions(seed uint64) Options {
	return Options{Seed: seed, ParallelCrackMin: 1024}
}

// TestParallelEngineAnswersMatchSerial runs the same query sequence over a
// serial and a parallel-cracking engine for each engine-backed algorithm
// family and asserts identical answers (count and sum — the parallel
// kernel may order a result differently) plus intact physical invariants.
func TestParallelEngineAnswersMatchSerial(t *testing.T) {
	const n = 60_000
	data := xrand.New(21).Perm(n)
	for _, spec := range []string{"crack", "dd1r", "ddr", "mdd1r", "pmdd1r-10", "fiftyfifty"} {
		serial, err := Build(append([]int64(nil), data...), spec, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Build(append([]int64(nil), data...), spec, parallelTestOptions(4))
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(77)
		for q := 0; q < 200; q++ {
			a := rng.Int63n(n)
			b := a + 1 + rng.Int63n(1000)
			rs := serial.Query(a, b)
			rp := par.Query(a, b)
			if rs.Count() != rp.Count() || rs.Sum() != rp.Sum() {
				t.Fatalf("%s query %d [%d,%d): serial (%d,%d), parallel (%d,%d)",
					spec, q, a, b, rs.Count(), rs.Sum(), rp.Count(), rp.Sum())
			}
		}
		if e, ok := engineBacked(par); ok {
			checkPhysicalInvariants(t, e, data)
		}
	}
}

// TestCoarseInit asserts coarse-granular initialization pre-cuts the
// column at build time: the cracker index already holds about p-1 cracks
// before the first query, every crack satisfies the partition invariant,
// and queries then behave normally.
func TestCoarseInit(t *testing.T) {
	const n = 50_000
	data := xrand.New(3).Perm(n)
	for _, pieces := range []int{2, 8, 64} {
		ix, err := Build(append([]int64(nil), data...), "dd1r",
			Options{Seed: 5, CoarseInitPieces: pieces})
		if err != nil {
			t.Fatal(err)
		}
		e, _ := engineBacked(ix)
		st := ix.Stats()
		// Sampled pivots can collide (dedup) — allow a small shortfall but
		// insist the pre-cut actually happened.
		if st.Cracks < pieces/2 || st.Cracks > pieces-1 {
			t.Fatalf("pieces=%d: %d cracks at build, want in [%d,%d]", pieces, st.Cracks, pieces/2, pieces-1)
		}
		if st.Touched == 0 {
			t.Fatalf("pieces=%d: coarse init reported no Touched cost; pre-cut work must be visible", pieces)
		}
		checkPhysicalInvariants(t, e, data)

		rng := xrand.New(9)
		for q := 0; q < 100; q++ {
			a := rng.Int63n(n)
			b := a + 1 + rng.Int63n(500)
			res := ix.Query(a, b)
			wantCount := 0
			var wantSum int64
			for _, v := range data {
				if a <= v && v < b {
					wantCount++
					wantSum += v
				}
			}
			if res.Count() != wantCount || res.Sum() != wantSum {
				t.Fatalf("pieces=%d query %d: got (%d,%d), want (%d,%d)",
					pieces, q, res.Count(), res.Sum(), wantCount, wantSum)
			}
		}
		checkPhysicalInvariants(t, e, data)
	}
}

// TestCoarseInitDeterministic asserts the pre-cut is reproducible: same
// seed, same data — same crack keys and positions, regardless of whether
// the cuts ran serial or parallel (the split position is a property of the
// data, and pivots are sampled before any reorganization).
func TestCoarseInitDeterministic(t *testing.T) {
	const n = 30_000
	data := xrand.New(8).Perm(n)
	cracks := func(opt Options) []CrackEntry {
		ix, err := Build(append([]int64(nil), data...), "crack", opt)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := engineBacked(ix)
		var out []CrackEntry
		e.CrackerIndex().Ascend(func(key int64, pos int) bool {
			out = append(out, CrackEntry{Key: key, Pos: pos})
			return true
		})
		return out
	}
	serial := cracks(Options{Seed: 6, CoarseInitPieces: 16})
	par := cracks(Options{Seed: 6, CoarseInitPieces: 16, ParallelCrackMin: 1024})
	if len(serial) != len(par) {
		t.Fatalf("crack counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("crack %d differs: serial %+v, parallel %+v", i, serial[i], par[i])
		}
	}
}

// TestCoarseInitIgnoredOnRestore asserts Restore does not re-cut: the
// snapshot's cracks are recorded against the snapshot's physical layout,
// so a coarse pre-cut before re-inserting them would corrupt the index.
func TestCoarseInitIgnoredOnRestore(t *testing.T) {
	const n = 20_000
	data := xrand.New(12).Perm(n)
	ix, err := Build(append([]int64(nil), data...), "dd1r", Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	for q := 0; q < 50; q++ {
		a := rng.Int63n(n)
		ix.Query(a, a+100)
	}
	e, _ := engineBacked(ix)
	st := e.Snapshot()
	wantCracks := len(st.Cracks)

	restored, err := Restore(st, "dd1r", Options{Seed: 2, CoarseInitPieces: 32, ParallelCrackMin: 1024})
	if err != nil {
		t.Fatal(err)
	}
	re, _ := engineBacked(restored)
	if got := restored.Stats().Cracks; got != wantCracks {
		t.Fatalf("restored with %d cracks, snapshot had %d (coarse init must not fire on restore)",
			got, wantCracks)
	}
	checkPhysicalInvariants(t, re, data)
	for q := 0; q < 50; q++ {
		a := rng.Int63n(n)
		b := a + 1 + rng.Int63n(300)
		res := restored.Query(a, b)
		wantCount := 0
		var wantSum int64
		for _, v := range data {
			if a <= v && v < b {
				wantCount++
				wantSum += v
			}
		}
		if res.Count() != wantCount || res.Sum() != wantSum {
			t.Fatalf("restored query %d: got (%d,%d), want (%d,%d)",
				q, res.Count(), res.Sum(), wantCount, wantSum)
		}
	}
}

// TestParallelOptionDefaults pins the option normalization: the zero value
// keeps both features off, negatives normalize to off.
func TestParallelOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ParallelCrackMin != 0 || o.CoarseInitPieces != 0 {
		t.Fatalf("zero Options enabled parallel features: %+v", o)
	}
	o = Options{ParallelCrackMin: -5, CoarseInitPieces: -3}.withDefaults()
	if o.ParallelCrackMin != 0 || o.CoarseInitPieces != 0 {
		t.Fatalf("negative values not normalized off: %+v", o)
	}
}
