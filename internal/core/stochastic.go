package core

import (
	"fmt"

	"repro/internal/selectalg"
)

// ddVariant distinguishes the four data-driven stochastic algorithms of
// §4: center (median) vs random pivots, recursive vs single-shot.
type ddVariant struct {
	center    bool // DDC/DD1C use medians; DDR/DD1R use random pivots
	recursive bool // DDC/DDR recurse to CrackSize; DD1C/DD1R stop after one
}

// DD is the family of data-driven stochastic cracking algorithms DDC, DDR,
// DD1C and DD1R (Fig. 3/4): before cracking on the query bound itself,
// they introduce auxiliary cracks — at piece medians (center) or at random
// pivots — on the path towards the requested value, so that no piece an
// unfavorable workload can repeatedly rescan stays large.
type DD struct {
	e *Engine
	v ddVariant
}

// NewDDC builds the Data Driven Center algorithm: recursively halve the
// piece holding each query bound (exact medians via introselect) until it
// is below CrackSize, then crack on the bound.
func NewDDC(values []int64, opt Options) *DD {
	return &DD{e: newEngine(values, opt), v: ddVariant{center: true, recursive: true}}
}

// NewDDR builds the Data Driven Random algorithm: like DDC but splitting
// on random pivots instead of exact medians (a single-branch quicksort).
func NewDDR(values []int64, opt Options) *DD {
	return &DD{e: newEngine(values, opt), v: ddVariant{center: false, recursive: true}}
}

// NewDD1C builds DD1C: at most one median split before cracking on the
// bound, reducing initialization cost at some cost in convergence.
func NewDD1C(values []int64, opt Options) *DD {
	return &DD{e: newEngine(values, opt), v: ddVariant{center: true, recursive: false}}
}

// NewDD1R builds DD1R: at most one random split before cracking on the
// bound — the paper's best overall choice for total cost (Fig. 20).
func NewDD1R(values []int64, opt Options) *DD {
	return &DD{e: newEngine(values, opt), v: ddVariant{center: false, recursive: false}}
}

// Name implements Index.
func (d *DD) Name() string {
	switch d.v {
	case ddVariant{center: true, recursive: true}:
		return "ddc"
	case ddVariant{center: false, recursive: true}:
		return "ddr"
	case ddVariant{center: true, recursive: false}:
		return "dd1c"
	default:
		return "dd1r"
	}
}

// Stats implements Index.
func (d *DD) Stats() Stats { return d.e.stats() }

// Engine exposes the underlying engine.
func (d *DD) Engine() *Engine { return d.e }

// Query evaluates [a, b) as two bound cracks, exactly as Fig. 4's
// DDC(C, a, b) prescribes, and returns the contiguous qualifying view.
func (d *DD) Query(a, b int64) Result {
	d.e.queries++
	res := Result{col: d.e.col}
	if a >= b || d.e.col.Len() == 0 {
		return res
	}
	res.lo = d.boundCrack(a)
	res.hi = d.boundCrack(b)
	return res
}

// boundCrack is Fig. 4's ddc_crack (and its DDR/DD1C/DD1R variants): find
// the piece containing v, split it towards v while it is large, then crack
// on v itself.
func (d *DD) boundCrack(v int64) int {
	e := d.e
	lo, hi, exact := e.idx.PieceFor(v, e.col.Len())
	if exact {
		return lo
	}
	for hi-lo > e.opt.CrackSize {
		key, p, ok := d.split(lo, hi)
		if !ok {
			break // piece cannot be split further (mass duplicates)
		}
		e.idx.Insert(key, p)
		if v < key {
			hi = p
		} else {
			lo = p
		}
		if key == v {
			// The auxiliary crack landed exactly on the query bound.
			return p
		}
		if !d.v.recursive {
			break
		}
	}
	p := e.crackInTwo(lo, hi, v)
	e.idx.Insert(v, p)
	return p
}

// split introduces one auxiliary crack in [lo, hi) and returns its (key,
// position). ok is false when the piece consists of a single repeated
// value and no split can make progress.
func (d *DD) split(lo, hi int) (key int64, p int, ok bool) {
	e := d.e
	if d.v.center {
		key, p = selectalg.Median(e.col, lo, hi, e.rng)
		if p == lo {
			// The median block starts at the piece start: more than half
			// the piece is one value; the crack adds no information.
			return 0, 0, false
		}
		return key, p, true
	}
	key = e.randomPivot(lo, hi)
	p = e.crackInTwo(lo, hi, key)
	if p == lo {
		// The random pivot hit the piece minimum; peel the minimum block
		// with key+1 to guarantee progress.
		key++
		p = e.crackInTwo(lo, hi, key)
		if p == hi {
			return 0, 0, false // the whole piece is one repeated value
		}
	}
	return key, p, true
}

// MDD1R is stochastic cracking with materialization (Fig. 5/6): one random
// crack per end piece, integrated with collecting the query's qualifying
// tuples; the query bounds themselves never become cracks. The middle of
// the result is returned as a view, only end pieces are materialized.
type MDD1R struct {
	e *Engine
}

// NewMDD1R builds an MDD1R index over values.
func NewMDD1R(values []int64, opt Options) *MDD1R {
	return &MDD1R{e: newEngine(values, opt)}
}

// Query implements Fig. 5's MDD1R(C, a, b).
func (m *MDD1R) Query(a, b int64) Result {
	return m.e.queryMixed(a, b, alwaysStochastic)
}

// Name implements Index.
func (m *MDD1R) Name() string { return "mdd1r" }

// Stats implements Index.
func (m *MDD1R) Stats() Stats { return m.e.stats() }

// Engine exposes the underlying engine.
func (m *MDD1R) Engine() *Engine { return m.e }

func alwaysStochastic(_, _ int, _ int64) bool { return true }

// PMDD1R is progressive stochastic cracking (§4, "Progressive Stochastic
// Cracking"): on pieces larger than ProgressiveSize, the random crack is
// completed collaboratively by successive queries, each performing at most
// SwapPct% of the piece's tuples in swaps; queries are answered by
// materializing the qualifying tuples of the piece they touch. At or below
// ProgressiveSize, full MDD1R takes over to preserve convergence.
type PMDD1R struct {
	e *Engine
}

// NewPMDD1R builds a progressive stochastic cracking index; opt.SwapPct
// sets the per-query swap budget (P1%..P100%).
func NewPMDD1R(values []int64, opt Options) *PMDD1R {
	return &PMDD1R{e: newEngine(values, opt)}
}

// Name implements Index.
func (p *PMDD1R) Name() string { return fmt.Sprintf("pmdd1r-%d", p.e.opt.SwapPct) }

// Stats implements Index.
func (p *PMDD1R) Stats() Stats { return p.e.stats() }

// Engine exposes the underlying engine.
func (p *PMDD1R) Engine() *Engine { return p.e }

// Query answers [a, b), advancing at most one in-flight partition per
// touched end piece.
func (p *PMDD1R) Query(a, b int64) Result {
	e := p.e
	e.queries++
	res := Result{col: e.col}
	n := e.col.Len()
	if a >= b || n == 0 {
		return res
	}
	loA, hiA, exactA := e.idx.PieceFor(a, n)
	loB, hiB, exactB := e.idx.PieceFor(b, n)

	if !exactA && !exactB && loA == loB && hiA == hiB {
		// Both bounds in one piece.
		if hiA-loA > e.opt.ProgressiveSize {
			p.step(loA, hiA)
			e.leftBuf = e.col.ScanMaterialize(loA, hiA, a, b, e.leftBuf[:0])
			res.left = e.leftBuf
			return res
		}
		if hiA-loA > 1 {
			pivot := e.randomPivot(loA, hiA)
			var pos int
			e.leftBuf, pos = e.splitAndMaterialize(loA, hiA, pivot, a, b, e.leftBuf[:0])
			e.idx.Insert(pivot, pos)
			res.left = e.leftBuf
			return res
		}
		e.leftBuf = e.col.ScanMaterialize(loA, hiA, a, b, e.leftBuf[:0])
		res.left = e.leftBuf
		return res
	}

	// Left end piece: qualifying values are those >= a.
	var viewStart int
	switch {
	case exactA:
		viewStart = loA
	case hiA-loA > e.opt.ProgressiveSize:
		p.step(loA, hiA)
		e.leftBuf = e.col.ScanMaterialize(loA, hiA, a, maxVal, e.leftBuf[:0])
		res.left = e.leftBuf
		viewStart = hiA
	case hiA-loA > 1:
		pivot := e.randomPivot(loA, hiA)
		var pos int
		e.leftBuf, pos = e.splitAndMaterializeGE(loA, hiA, pivot, a, e.leftBuf[:0])
		e.idx.Insert(pivot, pos)
		res.left = e.leftBuf
		viewStart = hiA
	default:
		e.leftBuf = e.col.ScanMaterialize(loA, hiA, a, maxVal, e.leftBuf[:0])
		res.left = e.leftBuf
		viewStart = hiA
	}

	// Right end piece: qualifying values are those < b.
	var viewEnd int
	switch {
	case exactB:
		viewEnd = loB
	case hiB-loB > e.opt.ProgressiveSize:
		p.step(loB, hiB)
		e.rightBuf = e.col.ScanMaterialize(loB, hiB, minVal, b, e.rightBuf[:0])
		res.right = e.rightBuf
		viewEnd = loB
	case hiB-loB > 1:
		pivot := e.randomPivot(loB, hiB)
		var pos int
		e.rightBuf, pos = e.splitAndMaterializeLT(loB, hiB, pivot, b, e.rightBuf[:0])
		e.idx.Insert(pivot, pos)
		res.right = e.rightBuf
		viewEnd = loB
	default:
		e.rightBuf = e.col.ScanMaterialize(loB, hiB, minVal, b, e.rightBuf[:0])
		res.right = e.rightBuf
		viewEnd = loB
	}

	res.lo, res.hi = viewStart, viewEnd
	return res
}

const (
	maxVal = int64(1)<<62 + (int64(1)<<62 - 1)
	minVal = -maxVal - 1
)

// step advances (or starts) the in-flight partition of piece [lo, hi) by
// this query's swap budget, publishing the crack when it completes.
func (p *PMDD1R) step(lo, hi int) {
	e := p.e
	st := e.states[lo]
	if st == nil {
		st = newPartitionState(e, lo, hi)
		e.states[lo] = st
	}
	budget := (hi - lo) * e.opt.SwapPct / 100
	if budget < 1 {
		budget = 1
	}
	if e.col.StepPartition(st, budget) {
		e.idx.Insert(st.Pivot, st.SplitPos())
		delete(e.states, lo)
	}
}
