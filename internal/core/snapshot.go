package core

import "fmt"

// CrackEntry is one crack of a snapshot: all values before Pos are < Key,
// all values from Pos on are >= Key.
type CrackEntry struct {
	Key int64
	Pos int
}

// SnapshotState captures the physical state of an engine-backed index:
// the (cracked) column contents and the crack set. It is the unit the
// snapshot package serializes; restoring it yields an index that resumes
// with all adaptation earned so far (the paper's §6 "disk-based
// processing" direction needs exactly this ability to persist cracker
// state).
type SnapshotState struct {
	Values []int64
	RowIDs []uint32 // nil when row ids were not tracked
	Cracks []CrackEntry

	// PendingInserts and PendingDeletes are the not-yet-merged update
	// queues captured with the state (sorted ascending, duplicates
	// allowed). They are not part of Values — a restore re-queues them so
	// the first covering query merges them, exactly as it would have on
	// the snapshotted index. The engine itself never reads them; the
	// update-carrying wrapper (internal/updates) owns the queues on both
	// the capture and the restore side.
	PendingInserts []int64
	PendingDeletes []int64
}

// Pending returns the number of captured, not-yet-merged updates.
func (st SnapshotState) Pending() int {
	return len(st.PendingInserts) + len(st.PendingDeletes)
}

// Snapshot captures the engine's current physical state. The returned
// slices are copies; the engine can keep cracking afterwards.
func (e *Engine) Snapshot() SnapshotState {
	st := SnapshotState{
		Values: append([]int64(nil), e.col.Values...),
	}
	if e.col.RowIDs != nil {
		st.RowIDs = append([]uint32(nil), e.col.RowIDs...)
	}
	e.idx.Ascend(func(key int64, pos int) bool {
		st.Cracks = append(st.Cracks, CrackEntry{Key: key, Pos: pos})
		return true
	})
	return st
}

// Validate checks the snapshot's internal consistency: crack keys strictly
// ascending, positions monotone and in range, and every crack's partition
// invariant holding over the values (one O(n + k) pass).
func (st SnapshotState) Validate() error {
	n := len(st.Values)
	if st.RowIDs != nil && len(st.RowIDs) != n {
		return fmt.Errorf("core: snapshot has %d row ids for %d values", len(st.RowIDs), n)
	}
	prevKey := int64(0)
	prevPos := 0
	for i, c := range st.Cracks {
		if i > 0 && c.Key <= prevKey {
			return fmt.Errorf("core: snapshot cracks not strictly ascending at %d (key %d after %d)", i, c.Key, prevKey)
		}
		if c.Pos < prevPos || c.Pos > n {
			return fmt.Errorf("core: snapshot crack %d has position %d (prev %d, n %d)", i, c.Pos, prevPos, n)
		}
		prevKey, prevPos = c.Key, c.Pos
	}
	for _, q := range [][]int64{st.PendingInserts, st.PendingDeletes} {
		for i := 1; i < len(q); i++ {
			if q[i] < q[i-1] {
				return fmt.Errorf("core: snapshot pending queue not sorted at %d (%d after %d)", i, q[i], q[i-1])
			}
		}
	}
	ci := 0
	for i, v := range st.Values {
		for ci < len(st.Cracks) && st.Cracks[ci].Pos <= i {
			ci++
		}
		if ci > 0 && v < st.Cracks[ci-1].Key {
			return fmt.Errorf("core: value %d at position %d violates crack (%d,%d)",
				v, i, st.Cracks[ci-1].Key, st.Cracks[ci-1].Pos)
		}
		if ci < len(st.Cracks) && v >= st.Cracks[ci].Key {
			return fmt.Errorf("core: value %d at position %d violates crack (%d,%d)",
				v, i, st.Cracks[ci].Key, st.Cracks[ci].Pos)
		}
	}
	return nil
}

// Restore rebuilds an index from a snapshot. The snapshot is validated
// first; the returned index resumes with the snapshot's cracks in place.
// spec selects the algorithm that continues the cracking (it need not be
// the one that produced the snapshot — crack state is algorithm-agnostic).
func Restore(st SnapshotState, spec string, opt Options) (Index, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	// Coarse-granular initialization is a cold-load bootstrap; a snapshot
	// already carries its earned refinement, and pre-cutting here would
	// reorganize the values before the snapshot's cracks (recorded against
	// the snapshot's layout) are re-inserted, corrupting them.
	opt.CoarseInitPieces = 0
	ix, err := Build(append([]int64(nil), st.Values...), spec, opt)
	if err != nil {
		return nil, err
	}
	acc, ok := ix.(interface{ Engine() *Engine })
	if !ok {
		return nil, fmt.Errorf("core: %q cannot restore snapshots (no engine)", spec)
	}
	e := acc.Engine()
	if st.RowIDs != nil {
		e.col.RowIDs = append([]uint32(nil), st.RowIDs...)
	}
	for _, c := range st.Cracks {
		e.idx.Insert(c.Key, c.Pos)
	}
	return ix, nil
}
