package core

import (
	"fmt"
	"sync"
)

// Sharded is a parallel cracking index: the column is value-range
// partitioned into k shards, each an independent engine-backed index, and
// queries fan out to the shards their range intersects, cracking them
// concurrently. It addresses the paper's §6 "distribution" direction at
// the scale of one process: cracking is embarrassingly parallel across
// disjoint value ranges because all physical reorganization stays inside
// a shard.
//
// Shard boundaries are chosen by sampling so each shard holds roughly the
// same number of tuples. Results are returned materialized (shards are
// not contiguous with one another).
type Sharded struct {
	shards []shard
	spec   string
	mu     sync.Mutex // guards queries counter only; shards self-synchronize
	q      int64
}

type shard struct {
	lo, hi int64 // value range [lo, hi) this shard owns
	ix     Index
	mu     *sync.Mutex
}

// NewSharded builds a sharded index: values are split into k value-range
// shards, each indexed independently with the given algorithm spec.
func NewSharded(values []int64, spec string, k int, opt Options) (*Sharded, error) {
	if k < 1 {
		k = 1
	}
	if k > len(values) && len(values) > 0 {
		k = len(values)
	}
	bounds := shardBounds(values, k, opt.Seed)
	buckets := make([][]int64, len(bounds)+1)
	for _, v := range values {
		buckets[bucketOf(bounds, v)] = append(buckets[bucketOf(bounds, v)], v)
	}
	s := &Sharded{spec: spec}
	lo := int64(minVal)
	for i, b := range buckets {
		hi := int64(maxVal)
		if i < len(bounds) {
			hi = bounds[i]
		}
		ix, err := Build(b, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("core: sharded: %w", err)
		}
		s.shards = append(s.shards, shard{lo: lo, hi: hi, ix: ix, mu: &sync.Mutex{}})
		lo = hi
	}
	return s, nil
}

// shardBounds picks k-1 splitting values by sampling and sorting.
func shardBounds(values []int64, k int, seed uint64) []int64 {
	if k <= 1 || len(values) == 0 {
		return nil
	}
	// Deterministic sample: stride over the unsorted input. The input is
	// workload data, typically a shuffle, so strided sampling is unbiased;
	// worst case we get uneven shards, never wrong results.
	const perShard = 32
	sampleSize := k * perShard
	if sampleSize > len(values) {
		sampleSize = len(values)
	}
	stride := len(values) / sampleSize
	if stride < 1 {
		stride = 1
	}
	sample := make([]int64, 0, sampleSize)
	for i := 0; i < len(values) && len(sample) < sampleSize; i += stride {
		sample = append(sample, values[i])
	}
	insertionSort(sample)
	bounds := make([]int64, 0, k-1)
	for i := 1; i < k; i++ {
		b := sample[i*len(sample)/k]
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	_ = seed
	return bounds
}

func insertionSort(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func bucketOf(bounds []int64, v int64) int {
	// Linear scan: bounds is small (k-1) and this is load-time only.
	for i, b := range bounds {
		if v < b {
			return i
		}
	}
	return len(bounds)
}

// Name implements Index.
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded-%d(%s)", len(s.shards), s.spec)
}

// Stats aggregates across shards.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	q := s.q
	s.mu.Unlock()
	agg := Stats{Queries: q}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.ix.Stats()
		sh.mu.Unlock()
		agg.Touched += st.Touched
		agg.Swaps += st.Swaps
		agg.Cracks += st.Cracks
		agg.Pieces += st.Pieces
	}
	return agg
}

// Query answers [a, b), cracking intersected shards in parallel, and
// returns the qualifying values as one owned slice. Sharded is safe for
// concurrent use: disjoint shards crack independently; per-shard locks
// serialize same-shard access.
func (s *Sharded) Query(a, b int64) []int64 {
	s.mu.Lock()
	s.q++
	s.mu.Unlock()
	if a >= b {
		return nil
	}
	type part struct {
		idx  int
		vals []int64
	}
	var (
		wg      sync.WaitGroup
		results = make([][]int64, len(s.shards))
	)
	touched := 0
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.hi <= a || sh.lo >= b {
			continue
		}
		touched++
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.mu.Lock()
			res := sh.ix.Query(a, b)
			out := res.Materialize(make([]int64, 0, res.Count()))
			sh.mu.Unlock()
			results[i] = out
		}(i, sh)
	}
	wg.Wait()
	var total int
	for _, r := range results {
		total += len(r)
	}
	out := make([]int64, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }
