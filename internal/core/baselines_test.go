package core

import (
	"testing"

	"repro/internal/xrand"
)

func TestSortKeepsRowIDsAligned(t *testing.T) {
	const n = 5000
	original := xrand.New(70).Perm(n)
	s := NewSort(append([]int64(nil), original...), Options{TrackRowIDs: true})
	s.Query(100, 200)
	col := s.e.Column()
	if col.RowIDs == nil {
		t.Fatal("row ids dropped")
	}
	for i, id := range col.RowIDs {
		if original[id] != col.Values[i] {
			t.Fatalf("row id %d at pos %d maps to %d, column holds %d",
				id, i, original[id], col.Values[i])
		}
	}
	// Column must be fully sorted after the first query.
	for i := 1; i < n; i++ {
		if col.Values[i-1] > col.Values[i] {
			t.Fatal("column not sorted")
		}
	}
}

func TestSortIdempotentAcrossQueries(t *testing.T) {
	s := NewSort(xrand.New(71).Perm(1000), Options{})
	first := s.Stats()
	s.Query(10, 20)
	afterOne := s.Stats().Touched
	s.Query(30, 40)
	s.Query(10, 20)
	// Only binary-search cost after the first query.
	if d := s.Stats().Touched - afterOne; d > 1000 {
		t.Fatalf("later queries touched %d tuples; sort ran again?", d)
	}
	_ = first
}

func TestScanStatsGrowLinearly(t *testing.T) {
	const n = 10000
	s := NewScan(xrand.New(72).Perm(n), Options{})
	for i := 0; i < 5; i++ {
		s.Query(int64(i), int64(i)+100)
	}
	if got := s.Stats().Touched; got != 5*n {
		t.Fatalf("scan touched %d, want %d", got, 5*n)
	}
	if got := s.Stats().Cracks; got != 0 {
		t.Fatalf("scan created %d cracks", got)
	}
}

func TestResultForEachOrdering(t *testing.T) {
	// left-materialized, view, right-materialized order must be stable.
	res := Result{
		col:   nil,
		left:  []int64{1, 2},
		right: []int64{5, 6},
	}
	var got []int64
	res.ForEach(func(v int64) { got = append(got, v) })
	want := []int64{1, 2, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if res.ViewLen() != 0 || res.Count() != 4 {
		t.Fatalf("ViewLen=%d Count=%d", res.ViewLen(), res.Count())
	}
}

func TestNewMaterializedResult(t *testing.T) {
	res := NewMaterializedResult([]int64{3, 1, 2})
	if res.Count() != 3 || res.Sum() != 6 || res.ViewLen() != 0 {
		t.Fatalf("count=%d sum=%d view=%d", res.Count(), res.Sum(), res.ViewLen())
	}
	out := res.Materialize(nil)
	if len(out) != 3 {
		t.Fatal("materialize lost values")
	}
}

func TestEmptyResultSemantics(t *testing.T) {
	var res Result
	if res.Count() != 0 || res.Sum() != 0 || res.ViewLen() != 0 {
		t.Fatal("zero Result not empty")
	}
	res.ForEach(func(int64) { t.Fatal("ForEach on empty result called fn") })
	if out := res.Materialize(nil); len(out) != 0 {
		t.Fatal("materialized empty result non-empty")
	}
}

func TestCrackQueriesOutsideDomainRepeatedly(t *testing.T) {
	// Bounds far outside the data domain create degenerate (empty) edge
	// pieces; repeated out-of-domain queries must stay cheap and correct.
	const n = 10000
	ix := NewCrack(xrand.New(73).Perm(n), Options{})
	ix.Query(-1000, -500)
	ix.Query(2*n, 3*n)
	afterEdge := ix.Stats().Touched
	for i := 0; i < 10; i++ {
		if res := ix.Query(-1000, -500); res.Count() != 0 {
			t.Fatal("phantom rows below domain")
		}
		if res := ix.Query(2*n, 3*n); res.Count() != 0 {
			t.Fatal("phantom rows above domain")
		}
	}
	if d := ix.Stats().Touched - afterEdge; d != 0 {
		t.Fatalf("repeated out-of-domain queries touched %d tuples", d)
	}
}

func TestStochasticVariantsHandleFullDomainQuery(t *testing.T) {
	const n = 20000
	for _, spec := range []string{"mdd1r", "pmdd1r-10", "dd1r", "fiftyfifty"} {
		ix, err := Build(xrand.New(74).Perm(n), spec, Options{Seed: 75})
		if err != nil {
			t.Fatal(err)
		}
		// Warm up, then ask for everything.
		ix.Query(100, 200)
		res := ix.Query(-10, 2*n)
		if res.Count() != n {
			t.Fatalf("%s full-domain count = %d, want %d", spec, res.Count(), n)
		}
		var sum int64
		res.ForEach(func(v int64) { sum += v })
		if want := int64(n) * int64(n-1) / 2; sum != want {
			t.Fatalf("%s full-domain sum = %d, want %d", spec, sum, want)
		}
	}
}
