package core

import (
	"repro/internal/cindex"
	"repro/internal/column"
	"repro/internal/xrand"
)

// Index is an adaptive index over a single column. Query answers the range
// [a, b) (half-open over values) and, depending on the algorithm, refines
// the physical organization of the column as a side effect.
type Index interface {
	// Query returns the qualifying tuples for value range [a, b).
	// The Result is valid until the next Query call.
	Query(a, b int64) Result
	// Name identifies the algorithm (e.g. "crack", "dd1r", "pmdd1r-10").
	Name() string
	// Stats reports cumulative physical cost counters.
	Stats() Stats
}

// Engine bundles the cracker column, the cracker index, the PRNG and the
// reusable materialization buffers every cracking algorithm shares.
type Engine struct {
	col     *column.Column
	idx     *cindex.Tree
	rng     *xrand.Rand
	opt     Options
	queries int64

	// Materialization buffers reused across queries (one per result end),
	// keeping steady-state queries allocation-free — important both for
	// performance and for keeping Go GC pauses out of per-query latencies.
	leftBuf  []int64
	rightBuf []int64

	// In-progress progressive partitions, keyed by piece start position
	// (piece boundaries are stable while a partition is in flight).
	states map[int]*column.PartitionState
}

func newEngine(values []int64, opt Options) *Engine {
	opt = opt.withDefaults()
	var col *column.Column
	if opt.TrackRowIDs {
		col = column.NewWithRowIDs(values)
	} else {
		col = column.New(values)
	}
	e := &Engine{
		col:    col,
		idx:    &cindex.Tree{},
		rng:    xrand.New(opt.Seed),
		opt:    opt,
		states: make(map[int]*column.PartitionState),
	}
	e.coarseInit()
	return e
}

// Column exposes the underlying cracker column (read-mostly; used by the
// harness and the demo tool to display piece structure).
func (e *Engine) Column() *column.Column { return e.col }

// CrackerIndex exposes the cracker index.
func (e *Engine) CrackerIndex() *cindex.Tree { return e.idx }

// AbandonProgressivePartitions drops all in-flight progressive partition
// states. Ripple updates shift piece boundaries, invalidating the saved
// positions; abandoning a partial partition is harmless — the piece keeps
// the same multiset and simply remains uncracked until a later query
// starts a fresh partition.
func (e *Engine) AbandonProgressivePartitions() {
	clear(e.states)
}

func (e *Engine) stats() Stats {
	return Stats{
		Queries: e.queries,
		Touched: e.col.Stats.Touched,
		Swaps:   e.col.Stats.Swaps,
		Cracks:  e.idx.Len(),
		Pieces:  e.idx.Len() + 1,
	}
}

func (e *Engine) randomPivot(lo, hi int) int64 {
	return e.col.Values[lo+e.rng.Intn(hi-lo)]
}

// newPartitionState starts a progressive partition of piece [lo, hi) on a
// randomly chosen pivot.
func newPartitionState(e *Engine, lo, hi int) *column.PartitionState {
	return column.NewPartitionState(lo, hi, e.randomPivot(lo, hi))
}

// crackBound performs the original cracking operation for one query bound:
// it cracks the piece containing v on v itself and returns the crack
// position (the first position holding values >= v).
func (e *Engine) crackBound(v int64) int {
	lo, hi, exact := e.idx.PieceFor(v, e.col.Len())
	if exact {
		return lo
	}
	p := e.crackInTwo(lo, hi, v)
	e.idx.Insert(v, p)
	return p
}

// queryMixed is the shared executor for original cracking, MDD1R and every
// selective variant. The stoch callback decides, per touched piece, whether
// the piece is handled stochastically (MDD1R: one random crack integrated
// with result materialization, Fig. 5/6) or with original query-driven
// cracking; v is the query bound that fell into the piece.
func (e *Engine) queryMixed(a, b int64, stoch func(lo, hi int, v int64) bool) Result {
	e.queries++
	res := Result{col: e.col}
	n := e.col.Len()
	if a >= b || n == 0 {
		return res
	}
	loA, hiA, exactA := e.idx.PieceFor(a, n)
	loB, hiB, exactB := e.idx.PieceFor(b, n)

	// Both bounds inside the same piece, neither already cracked. Note an
	// empty piece can share its start with a neighboring piece, so both
	// boundaries must match.
	if !exactA && !exactB && loA == loB && hiA == hiB {
		if hiA-loA > 1 && stoch(loA, hiA, a) {
			pivot := e.randomPivot(loA, hiA)
			var p int
			e.leftBuf, p = e.splitAndMaterialize(loA, hiA, pivot, a, b, e.leftBuf[:0])
			e.idx.Insert(pivot, p)
			res.left = e.leftBuf
			return res
		}
		p1, p2 := e.crackInThree(loA, hiA, a, b)
		e.idx.Insert(a, p1)
		e.idx.Insert(b, p2)
		res.lo, res.hi = p1, p2
		return res
	}

	// The two bounds fall in different pieces (or are exactly cracked).
	// Work on a's piece cannot disturb b's piece: any crack inserted while
	// handling the left end carries a key below b's piece's lower key.

	// Left end piece: qualifying tuples are those >= a (the whole piece
	// lies below b).
	var viewStart int
	switch {
	case exactA:
		viewStart = loA
	case hiA-loA > 1 && stoch(loA, hiA, a):
		pivot := e.randomPivot(loA, hiA)
		var p int
		e.leftBuf, p = e.splitAndMaterializeGE(loA, hiA, pivot, a, e.leftBuf[:0])
		e.idx.Insert(pivot, p)
		res.left = e.leftBuf
		viewStart = hiA
	default:
		p := e.crackInTwo(loA, hiA, a)
		e.idx.Insert(a, p)
		viewStart = p
	}

	// Right end piece: qualifying tuples are those < b.
	var viewEnd int
	switch {
	case exactB:
		viewEnd = loB
	case hiB-loB > 1 && stoch(loB, hiB, b):
		pivot := e.randomPivot(loB, hiB)
		var p int
		e.rightBuf, p = e.splitAndMaterializeLT(loB, hiB, pivot, b, e.rightBuf[:0])
		e.idx.Insert(pivot, p)
		res.right = e.rightBuf
		viewEnd = loB
	default:
		p := e.crackInTwo(loB, hiB, b)
		e.idx.Insert(b, p)
		viewEnd = p
	}

	res.lo, res.hi = viewStart, viewEnd
	return res
}
