package core

import "sync"

// Concurrent makes any Index safe for use from multiple goroutines.
//
// Cracking inverts the usual reader/writer economics: every query may
// physically reorganize the column, so even "reads" are writes and a
// mutual-exclusion lock is the correct baseline (the paper leaves
// finer-grained schemes to future work, §6). Because results may reference
// engine-owned buffers that the next query reuses, Concurrent returns
// fully materialized copies.
type Concurrent struct {
	mu    sync.Mutex
	inner Index
}

// NewConcurrent wraps inner; the wrapper assumes exclusive ownership.
func NewConcurrent(inner Index) *Concurrent {
	return &Concurrent{inner: inner}
}

// Query answers [a, b) and returns an owned slice of the qualifying
// values.
func (c *Concurrent) Query(a, b int64) []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := c.inner.Query(a, b)
	return res.Materialize(make([]int64, 0, res.Count()))
}

// QueryCount answers [a, b) returning only the qualifying-tuple count and
// value sum, avoiding the copy when the caller needs just aggregates.
func (c *Concurrent) QueryCount(a, b int64) (count int, sum int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := c.inner.Query(a, b)
	return res.Count(), res.Sum()
}

// Name identifies the wrapped algorithm.
func (c *Concurrent) Name() string {
	return "concurrent(" + c.inner.Name() + ")"
}

// Stats reports the wrapped index's counters.
func (c *Concurrent) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Stats()
}
