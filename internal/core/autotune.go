package core

// AutoTune implements the future-work direction of the paper's §6:
// "combining the strengths of the various stochastic cracking algorithms
// via a dynamic component that decides which algorithm to choose for a
// query on the fly".
//
// The policy follows the paper's own cost analysis. The per-query cost of
// cracking is the number of tuples analyzed (§3); on friendly workloads
// it collapses within a handful of queries, while on hostile workloads it
// stays near N because large unindexed pieces are rescanned. AutoTune
// therefore answers queries with original cracking — keeping its slightly
// better constants on random workloads — while tracking an exponential
// moving average of tuples touched per query. When the average stays
// above a fraction of the column size after a grace period (the workload
// is not providing randomness), it switches to stochastic cracking
// (MDD1R) until the average falls back below the exit threshold: the
// system injects randomness exactly when the workload lacks it.
type AutoTune struct {
	e *Engine

	// ewma of tuples touched per query, in tuples.
	ewma float64
	// stochastic reports which mode the last query used.
	stochastic bool
	// switches counts mode changes (exported via Switches for tests and
	// observability).
	switches int
}

// autoTune policy constants: enter stochastic mode when the recent average
// query touches more than 1/enterFrac of the column, leave it below
// 1/exitFrac; grace queries run before the first decision; alpha is the
// EWMA smoothing factor.
const (
	autoTuneEnterFrac = 16
	autoTuneExitFrac  = 256
	autoTuneGrace     = 8
	autoTuneAlpha     = 0.25
)

// NewAutoTune builds a self-tuning index over values.
func NewAutoTune(values []int64, opt Options) *AutoTune {
	return &AutoTune{e: newEngine(values, opt)}
}

// Name implements Index.
func (t *AutoTune) Name() string { return "autotune" }

// Stats implements Index.
func (t *AutoTune) Stats() Stats { return t.e.stats() }

// Engine exposes the underlying engine.
func (t *AutoTune) Engine() *Engine { return t.e }

// Stochastic reports whether the index is currently in stochastic mode.
func (t *AutoTune) Stochastic() bool { return t.stochastic }

// Switches returns how many times the policy changed modes.
func (t *AutoTune) Switches() int { return t.switches }

// Query answers [a, b), choosing the cracking flavor by recent cost.
func (t *AutoTune) Query(a, b int64) Result {
	n := t.e.col.Len()
	before := t.e.col.Stats.Touched

	useStochastic := t.stochastic
	if t.e.queries < autoTuneGrace {
		useStochastic = false // observe the workload first
	}
	res := t.e.queryMixed(a, b, func(_, _ int, _ int64) bool { return useStochastic })

	touched := float64(t.e.col.Stats.Touched - before)
	if t.e.queries == 1 {
		t.ewma = touched
	} else {
		t.ewma = autoTuneAlpha*touched + (1-autoTuneAlpha)*t.ewma
	}
	if t.e.queries >= autoTuneGrace && n > 0 {
		switch {
		case !t.stochastic && t.ewma > float64(n)/autoTuneEnterFrac:
			t.stochastic = true
			t.switches++
		case t.stochastic && t.ewma < float64(n)/autoTuneExitFrac:
			t.stochastic = false
			t.switches++
		}
	}
	return res
}
