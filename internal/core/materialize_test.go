package core

import (
	"testing"

	"repro/internal/xrand"
)

func TestAppendBulkParallel(t *testing.T) {
	// Well above parallelCopyMin so the copy takes the chunk-claiming
	// pool path, with a tail chunk shorter than copyChunk.
	n := parallelCopyMin*3 + copyChunk/2 + 7
	src := xrand.New(5).Perm(n)
	prefix := []int64{-1, -2, -3}
	got := appendBulk(append([]int64(nil), prefix...), src)
	if len(got) != len(prefix)+n {
		t.Fatalf("len = %d, want %d", len(got), len(prefix)+n)
	}
	for i, v := range prefix {
		if got[i] != v {
			t.Fatalf("prefix[%d] clobbered: %d", i, got[i])
		}
	}
	for i, v := range src {
		if got[len(prefix)+i] != v {
			t.Fatalf("copy diverges at %d: got %d want %d", i, got[len(prefix)+i], v)
		}
	}
}

func TestAppendBulkSmall(t *testing.T) {
	src := []int64{4, 5, 6}
	got := appendBulk([]int64{1}, src)
	if len(got) != 4 || got[0] != 1 || got[3] != 6 {
		t.Fatalf("got %v", got)
	}
}
