package core

import "fmt"

// Selective stochastic cracking (§4, "Selective Stochastic Cracking"):
// eschew the stochastic action for some queries or pieces and fall back to
// original query-driven cracking there. The paper evaluates five policies:
//
//   - FiftyFifty: stochastic cracking every other query (deterministic);
//   - EveryX: stochastic cracking every X-th query (Fig. 18's sweep);
//   - FlipCoin: stochastic cracking with probability 1/2 per query;
//   - ScrackMon: per-piece crack counters; a piece is cracked
//     stochastically only on every X-th access (Fig. 19's sweep);
//   - SizeSelective: stochastic only while the piece exceeds CrackSize.
//
// All of them build on MDD1R for the stochastic action, as in Fig. 17-19.

// EveryX applies stochastic cracking (MDD1R) on one query out of every X,
// answering the remaining queries with original cracking. X=1 is
// continuous stochastic cracking (plain MDD1R); X=2 is the paper's
// FiftyFifty.
type EveryX struct {
	e *Engine
	x int64
}

// NewEveryX builds a periodic selective index; x must be >= 1.
func NewEveryX(values []int64, x int, opt Options) *EveryX {
	if x < 1 {
		x = 1
	}
	return &EveryX{e: newEngine(values, opt), x: int64(x)}
}

// NewFiftyFifty is the paper's FiftyFifty: EveryX with X=2.
func NewFiftyFifty(values []int64, opt Options) *EveryX {
	return NewEveryX(values, 2, opt)
}

// Query implements Index.
func (s *EveryX) Query(a, b int64) Result {
	stochastic := s.e.queries%s.x == 0
	return s.e.queryMixed(a, b, func(_, _ int, _ int64) bool { return stochastic })
}

// Name implements Index.
func (s *EveryX) Name() string {
	if s.x == 2 {
		return "fiftyfifty"
	}
	return fmt.Sprintf("every-%d", s.x)
}

// Stats implements Index.
func (s *EveryX) Stats() Stats { return s.e.stats() }

// Engine exposes the underlying engine.
func (s *EveryX) Engine() *Engine { return s.e }

// FlipCoin decides per query, with probability 1/2, whether to apply
// stochastic cracking or original cracking, avoiding the deterministic bad
// access patterns FiftyFifty is vulnerable to.
type FlipCoin struct {
	e *Engine
}

// NewFlipCoin builds a coin-flipping selective index.
func NewFlipCoin(values []int64, opt Options) *FlipCoin {
	return &FlipCoin{e: newEngine(values, opt)}
}

// Query implements Index.
func (s *FlipCoin) Query(a, b int64) Result {
	stochastic := s.e.rng.Bool()
	return s.e.queryMixed(a, b, func(_, _ int, _ int64) bool { return stochastic })
}

// Name implements Index.
func (s *FlipCoin) Name() string { return "flipcoin" }

// Stats implements Index.
func (s *FlipCoin) Stats() Stats { return s.e.stats() }

// Engine exposes the underlying engine.
func (s *FlipCoin) Engine() *Engine { return s.e }

// ScrackMon monitors accesses per piece: each piece carries a crack
// counter (inherited on splits); once a piece's counter reaches X it is
// cracked stochastically and the counter resets. X=1 degenerates to
// continuous stochastic cracking applied piece-wise.
type ScrackMon struct {
	e *Engine
	x int64
}

// NewScrackMon builds a monitoring selective index with threshold x >= 1.
func NewScrackMon(values []int64, x int, opt Options) *ScrackMon {
	if x < 1 {
		x = 1
	}
	return &ScrackMon{e: newEngine(values, opt), x: int64(x)}
}

// Query implements Index.
func (s *ScrackMon) Query(a, b int64) Result {
	return s.e.queryMixed(a, b, func(_, _ int, v int64) bool {
		cnt := s.e.idx.CounterFor(v)
		*cnt++
		if *cnt >= s.x {
			*cnt = 0
			return true
		}
		return false
	})
}

// Name implements Index.
func (s *ScrackMon) Name() string { return fmt.Sprintf("scrackmon-%d", s.x) }

// Stats implements Index.
func (s *ScrackMon) Stats() Stats { return s.e.stats() }

// Engine exposes the underlying engine.
func (s *ScrackMon) Engine() *Engine { return s.e }

// SizeSelective applies stochastic cracking only to pieces larger than
// CrackSize, resorting to original cracking inside the cache where
// cracking costs are minimal. The paper found this 2-3x slower than pure
// stochastic cracking on all but the Random workload; it is included for
// the ablation benchmarks.
type SizeSelective struct {
	e *Engine
}

// NewSizeSelective builds a size-thresholded selective index.
func NewSizeSelective(values []int64, opt Options) *SizeSelective {
	return &SizeSelective{e: newEngine(values, opt)}
}

// Query implements Index.
func (s *SizeSelective) Query(a, b int64) Result {
	return s.e.queryMixed(a, b, func(lo, hi int, _ int64) bool {
		return hi-lo > s.e.opt.CrackSize
	})
}

// Name implements Index.
func (s *SizeSelective) Name() string { return "sizeselective" }

// Stats implements Index.
func (s *SizeSelective) Stats() Stats { return s.e.stats() }

// Engine exposes the underlying engine.
func (s *SizeSelective) Engine() *Engine { return s.e }
