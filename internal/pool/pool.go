// Package pool provides the process-wide bounded worker pool shared by
// every parallel helper in the repository: the sharded executor's query
// fan-out (internal/exec) and the engines' parallel materialization of
// large converged results (internal/core).
//
// One pool for the whole process keeps total helper parallelism bounded at
// GOMAXPROCS no matter how many indexes, shards or concurrent queries are
// live: under heavy traffic the old per-feature goroutine spawning would
// multiply (queries x shards x copy chunks) runnable goroutines; the pool
// degrades to inline execution instead.
//
// The pool bounds helper parallelism, not admission: layers that accept
// external work (internal/server's HTTP handlers) put their own in-flight
// limit in front, sized relative to Size, so that a traffic burst queues
// at the door instead of piling goroutines onto an already saturated
// pool.
package pool

import (
	"runtime"
	"sync"
)

var (
	once sync.Once
	work chan func()
	size int
)

func start() {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2 // keep fan-out alive even on one proc
	}
	size = n
	work = make(chan func(), 2*n)
	for i := 0; i < n; i++ {
		go func() {
			for task := range work {
				task()
			}
		}()
	}
}

// Size returns the number of pool workers (GOMAXPROCS at first use,
// floored at 2). Admission layers size their in-flight limits as a
// multiple of it.
func Size() int {
	once.Do(start)
	return size
}

// Submit hands task to an idle worker; it reports false — without running
// the task — when the pool is saturated, leaving the task to the caller.
// Submission never blocks.
//
// Tasks must not block on other submitted tasks: every worker could be
// occupied by a waiting task, leaving nobody to run the work it waits
// for. Helpers that need completion must keep progress on the submitting
// goroutine (see the chunk-claiming loop in core's bulk copy: the caller
// claims chunks itself, so completion never depends on a worker being
// free).
func Submit(task func()) bool {
	once.Do(start)
	select {
	case work <- task:
		return true
	default:
		return false
	}
}
