// Package selectalg implements order-statistic selection over a cracker
// column piece: the median-finding machinery DDC and DD1C need to place
// center cracks (paper §4, Fig. 4).
//
// The paper uses Introselect [23]: quickselect with random pivots,
// switching to the linear-time BFPRT median-of-medians pivot rule [2] when
// the recursion makes no progress for too long, which bounds the worst case
// while keeping the common case cheap.
//
// SelectCrack guarantees the crack invariant on exit, even with duplicate
// values: it returns (v, p) with v the requested order statistic and
// (v, p) a valid crack — every value in [lo, p) is strictly below v and
// every value in [p, hi) is at least v.
package selectalg

import (
	"math/bits"

	"repro/internal/column"
	"repro/internal/xrand"
)

// SelectCrack partially reorders positions [lo, hi) of c and returns the
// value v of rank k (0-indexed within the window: k=lo means minimum) along
// with a position p such that (v, p) is a valid crack of [lo, hi):
// Values[lo:p] < v <= Values[p:hi]. For duplicate-free data p has exactly
// k-lo values before it within the window.
//
// The rng drives quickselect pivot choice; after ~2*log2(n) pivot rounds
// the pivot rule switches to median-of-medians, bounding total work at
// O(n) regardless of input.
func SelectCrack(c *column.Column, lo, hi, k int, rng *xrand.Rand) (v int64, p int) {
	if k < lo || k >= hi {
		panic("selectalg: rank out of range")
	}
	depthBudget := 2 * (bits.Len(uint(hi-lo)) + 1)
	// Loop invariant: every value left of the window is strictly below
	// every value inside it, and every value right of the window is at
	// least... (>= some pivot exceeding all window values). Hence when the
	// window shrinks to one element, (Values[lo], lo) is a valid crack.
	for hi-lo > 1 {
		var pivot int64
		if depthBudget > 0 {
			pivot = c.Values[lo+rng.Intn(hi-lo)]
			depthBudget--
		} else {
			pivot = medianOfMedians(c, lo, hi, rng)
		}
		split := c.CrackInTwo(lo, hi, pivot)
		if split == lo {
			// pivot equals the window minimum: "< pivot" cannot make
			// progress. Peel the block of minimum values with pivot+1; the
			// left side then holds exactly the values equal to pivot.
			split = c.CrackInTwo(lo, hi, pivot+1)
			if k < split {
				// The rank-k value is the minimum itself; the crack sits at
				// the window start.
				return pivot, lo
			}
			lo = split
			continue
		}
		if k < split {
			hi = split
		} else {
			lo = split
		}
	}
	return c.Values[lo], lo
}

// Median partitions the piece [lo, hi) around its positional median and
// returns (median value, crack position). The returned pair is a valid
// crack; DDC inserts it directly into the cracker index. For duplicate-free
// data the position is exactly lo + (hi-lo)/2.
func Median(c *column.Column, lo, hi int, rng *xrand.Rand) (int64, int) {
	return SelectCrack(c, lo, hi, lo+(hi-lo)/2, rng)
}

// medianOfMedians returns the BFPRT pivot for the window: the median of the
// medians of groups of five. It reads but does not reorder the window
// (group medians are computed on a copy of each group); it only runs on
// adversarial inputs after the quickselect depth budget is exhausted.
func medianOfMedians(c *column.Column, lo, hi int, rng *xrand.Rand) int64 {
	n := hi - lo
	if n <= 5 {
		var g [5]int64
		m := copyGroup(c, lo, hi, &g)
		return medianOfGroup(g[:m])
	}
	medians := make([]int64, 0, (n+4)/5)
	for i := lo; i < hi; i += 5 {
		end := i + 5
		if end > hi {
			end = hi
		}
		var g [5]int64
		m := copyGroup(c, i, end, &g)
		medians = append(medians, medianOfGroup(g[:m]))
	}
	mc := column.New(medians)
	v, _ := SelectCrack(mc, 0, len(medians), len(medians)/2, rng)
	return v
}

func copyGroup(c *column.Column, lo, hi int, g *[5]int64) int {
	m := 0
	for i := lo; i < hi; i++ {
		g[m] = c.Values[i]
		m++
	}
	return m
}

// medianOfGroup sorts at most five values with insertion sort and returns
// the middle one.
func medianOfGroup(g []int64) int64 {
	for i := 1; i < len(g); i++ {
		for j := i; j > 0 && g[j] < g[j-1]; j-- {
			g[j], g[j-1] = g[j-1], g[j]
		}
	}
	return g[len(g)/2]
}
