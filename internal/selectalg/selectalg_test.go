package selectalg

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/column"
	"repro/internal/xrand"
)

func rankOf(vals []int64, k int) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[k]
}

func checkCrack(t *testing.T, c *column.Column, lo, hi int, v int64, p int) {
	t.Helper()
	if p < lo || p > hi {
		t.Fatalf("crack position %d outside window [%d,%d)", p, lo, hi)
	}
	for i := lo; i < p; i++ {
		if c.Values[i] >= v {
			t.Fatalf("pos %d: %d >= crack value %d", i, c.Values[i], v)
		}
	}
	for i := p; i < hi; i++ {
		if c.Values[i] < v {
			t.Fatalf("pos %d: %d < crack value %d", i, c.Values[i], v)
		}
	}
}

func TestSelectCrackPermutation(t *testing.T) {
	rng := xrand.New(1)
	vals := rng.Perm(1000)
	for _, k := range []int{0, 1, 499, 500, 998, 999} {
		c := column.New(append([]int64(nil), vals...))
		v, p := SelectCrack(c, 0, 1000, k, xrand.New(7))
		if v != int64(k) {
			t.Fatalf("rank %d value = %d, want %d", k, v, k)
		}
		if p != k {
			t.Fatalf("rank %d crack position = %d, want %d on unique data", k, p, k)
		}
		checkCrack(t, c, 0, 1000, v, p)
	}
}

func TestSelectCrackSubWindow(t *testing.T) {
	rng := xrand.New(2)
	vals := rng.Perm(500)
	c := column.New(vals)
	// First establish a real crack so the window is a genuine piece.
	split := c.CrackInTwo(0, 500, 250)
	if split != 250 {
		t.Fatalf("setup split = %d", split)
	}
	v, p := SelectCrack(c, 250, 500, 250+125, xrand.New(3))
	if v != 375 {
		t.Fatalf("median of upper piece = %d, want 375", v)
	}
	checkCrack(t, c, 250, 500, v, p)
	// Lower piece untouched.
	for i := 0; i < 250; i++ {
		if c.Values[i] >= 250 {
			t.Fatal("selection leaked outside its window")
		}
	}
}

func TestSelectCrackDuplicates(t *testing.T) {
	cases := [][]int64{
		{5, 5, 5, 5, 5},
		{1, 1, 2, 2, 3, 3},
		{2, 1, 1, 1, 9},
		{7},
		{3, 3},
	}
	for _, vals := range cases {
		for k := range vals {
			c := column.New(append([]int64(nil), vals...))
			v, p := SelectCrack(c, 0, len(vals), k, xrand.New(11))
			if want := rankOf(vals, k); v != want {
				t.Fatalf("vals %v rank %d = %d, want %d", vals, k, v, want)
			}
			checkCrack(t, c, 0, len(vals), v, p)
		}
	}
}

func TestSelectCrackProperty(t *testing.T) {
	f := func(vals []int64, kRaw uint16, seed uint64) bool {
		if len(vals) == 0 {
			return true
		}
		k := int(kRaw) % len(vals)
		c := column.New(append([]int64(nil), vals...))
		v, p := SelectCrack(c, 0, len(vals), k, xrand.New(seed))
		if v != rankOf(vals, k) {
			return false
		}
		for i := 0; i < p; i++ {
			if c.Values[i] >= v {
				return false
			}
		}
		for i := p; i < len(vals); i++ {
			if c.Values[i] < v {
				return false
			}
		}
		// multiset preserved
		before := make(map[int64]int)
		for _, x := range vals {
			before[x]++
		}
		after := make(map[int64]int)
		for _, x := range c.Values {
			after[x]++
		}
		if len(before) != len(after) {
			return false
		}
		for key, n := range before {
			if after[key] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectCrackAdversarialSorted(t *testing.T) {
	// Already-sorted and reverse-sorted inputs must complete quickly thanks
	// to the BFPRT fallback (and random pivots); verify correctness and a
	// sane touched-tuples bound (well below quadratic).
	n := 4096
	asc := make([]int64, n)
	desc := make([]int64, n)
	for i := 0; i < n; i++ {
		asc[i] = int64(i)
		desc[i] = int64(n - 1 - i)
	}
	for _, vals := range [][]int64{asc, desc} {
		c := column.New(append([]int64(nil), vals...))
		c.Stats.Reset()
		v, p := SelectCrack(c, 0, n, n/2, xrand.New(1))
		if v != int64(n/2) {
			t.Fatalf("median = %d, want %d", v, n/2)
		}
		checkCrack(t, c, 0, n, v, p)
		if c.Stats.Touched > int64(n)*64 {
			t.Fatalf("selection touched %d tuples; looks superlinear for n=%d", c.Stats.Touched, n)
		}
	}
}

func TestMedianBisectsPermutation(t *testing.T) {
	rng := xrand.New(4)
	for _, n := range []int{2, 3, 10, 1001, 4096} {
		c := column.New(rng.Perm(n))
		v, p := Median(c, 0, n, xrand.New(5))
		if p != n/2 {
			t.Fatalf("n=%d: median position %d, want %d", n, p, n/2)
		}
		if v != int64(n/2) {
			t.Fatalf("n=%d: median value %d, want %d", n, v, n/2)
		}
		checkCrack(t, c, 0, n, v, p)
	}
}

func TestSelectCrackPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank out of window did not panic")
		}
	}()
	SelectCrack(column.New([]int64{1, 2, 3}), 0, 3, 3, xrand.New(1))
}

func TestMedianOfGroup(t *testing.T) {
	cases := []struct {
		g    []int64
		want int64
	}{
		{[]int64{1}, 1},
		{[]int64{2, 1}, 2}, // middle of sorted [1,2] at index 1
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 3},
		{[]int64{5, 4, 3, 2, 1}, 3},
	}
	for _, c := range cases {
		if got := medianOfGroup(append([]int64(nil), c.g...)); got != c.want {
			t.Errorf("medianOfGroup(%v) = %d, want %d", c.g, got, c.want)
		}
	}
}

func BenchmarkMedianRandom(b *testing.B) {
	vals := xrand.New(1).Perm(1 << 20)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := column.New(append([]int64(nil), vals...))
		b.StartTimer()
		Median(c, 0, c.Len(), rng)
	}
}

func BenchmarkMedianSorted(b *testing.B) {
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = int64(i)
	}
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := column.New(append([]int64(nil), vals...))
		b.StartTimer()
		Median(c, 0, c.Len(), rng)
	}
}
