package exec

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/updates"
	"repro/internal/xrand"
)

// rangeSum is the permutation-data oracle: [a, b) over a shuffle of [0, n)
// holds exactly the values a..b-1.
func rangeSum(a, b int64) int64 {
	var s int64
	for v := a; v < b; v++ {
		s += v
	}
	return s
}

func TestExecutorMatchesOracle(t *testing.T) {
	const n = 50000
	for _, spec := range []string{"crack", "dd1r", "mdd1r", "pmdd1r-10", "scan"} {
		ix, err := core.Build(xrand.New(30).Perm(n), spec, core.Options{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		x := New(ix)
		rng := xrand.New(31)
		for i := 0; i < 300; i++ {
			a := rng.Int63n(n - 200)
			b := a + 1 + rng.Int63n(200)
			got := x.Query(a, b)
			var sum int64
			for _, v := range got {
				sum += v
			}
			if int64(len(got)) != b-a || sum != rangeSum(a, b) {
				t.Fatalf("%s query [%d,%d): got (%d,%d), want (%d,%d)",
					spec, a, b, len(got), sum, b-a, rangeSum(a, b))
			}
			c, s := x.QueryAggregate(a, b)
			if int64(c) != b-a || s != rangeSum(a, b) {
				t.Fatalf("%s aggregate [%d,%d): got (%d,%d)", spec, a, b, c, s)
			}
		}
	}
}

func TestExecutorConvergedQueriesUseReadPath(t *testing.T) {
	const n = 10000
	ix := core.NewCrack(xrand.New(7).Perm(n), core.Options{Seed: 8})
	x := New(ix)

	// First answer cracks on both bounds; the repeat finds exact cracks.
	if got := x.Query(1000, 2000); len(got) != 1000 {
		t.Fatalf("count = %d", len(got))
	}
	reads, writes := x.PathStats()
	if reads != 0 || writes != 1 {
		t.Fatalf("after cold query: reads=%d writes=%d", reads, writes)
	}
	if got := x.Query(1000, 2000); len(got) != 1000 {
		t.Fatalf("count = %d", len(got))
	}
	if c, _ := x.QueryAggregate(1000, 2000); c != 1000 {
		t.Fatalf("aggregate count = %d", c)
	}
	reads, writes = x.PathStats()
	if reads != 2 || writes != 1 {
		t.Fatalf("after converged repeats: reads=%d writes=%d", reads, writes)
	}
	// Queries answered read-only still show up in Stats.
	if q := x.Stats().Queries; q != 3 {
		t.Fatalf("stats queries = %d, want 3", q)
	}
}

func TestExecutorSmallPieceReadPath(t *testing.T) {
	// With NoCrackSize at the column size, every query is a converged scan:
	// nothing ever cracks, yet answers stay correct.
	const n = 512
	ix := core.NewCrack(xrand.New(9).Perm(n), core.Options{Seed: 10, NoCrackSize: n})
	x := New(ix)
	for i := 0; i < 20; i++ {
		a := int64(i * 20)
		if got := x.Query(a, a+10); len(got) != 10 {
			t.Fatalf("count = %d", len(got))
		}
	}
	if _, writes := x.PathStats(); writes != 0 {
		t.Fatalf("small-piece queries took the write lock: %d", writes)
	}
	if st := x.Stats(); st.Cracks != 0 {
		t.Fatalf("read path cracked the column: %d cracks", st.Cracks)
	}
}

func TestExecutorQueryBatch(t *testing.T) {
	const n = 40000
	ix := core.NewDD1R(xrand.New(40).Perm(n), core.Options{Seed: 41})
	x := New(ix)
	// Unsorted, overlapping, and degenerate ranges; results must come back
	// in input order.
	ranges := []Range{
		{30000, 30100}, {5, 25}, {100, 100}, {20000, 21000}, {5, 25}, {39990, 40200},
	}
	out := x.QueryBatch(ranges)
	if len(out) != len(ranges) {
		t.Fatalf("len(out) = %d", len(out))
	}
	for i, r := range ranges {
		want := r.Hi - r.Lo
		if r.Lo >= r.Hi {
			want = 0
		}
		if hi := int64(n); r.Hi > hi {
			want = hi - r.Lo
		}
		var sum, wantSum int64
		for _, v := range out[i] {
			sum += v
		}
		end := r.Hi
		if end > n {
			end = n
		}
		wantSum = rangeSum(r.Lo, end)
		if int64(len(out[i])) != want || sum != wantSum {
			t.Fatalf("range %d [%d,%d): got (%d,%d), want (%d,%d)",
				i, r.Lo, r.Hi, len(out[i]), sum, want, wantSum)
		}
	}
	// A converged batch takes only the read path.
	_, writesBefore := x.PathStats()
	x.QueryBatch(ranges[:2])
	if _, writes := x.PathStats(); writes != writesBefore {
		t.Fatalf("converged batch took the write lock")
	}
}

func TestExecutorInsertUnsupported(t *testing.T) {
	x := New(core.NewCrack(xrand.New(1).Perm(100), core.Options{}))
	if err := x.Insert(5); err == nil {
		t.Fatal("bare core index accepted an insert")
	}
	if err := x.Delete(5); err == nil {
		t.Fatal("bare core index accepted a delete")
	}
}

func TestExecutorUpdatableInsert(t *testing.T) {
	const n = 1000
	ix := core.NewCrack(xrand.New(2).Perm(n), core.Options{Seed: 3})
	u, ok := updates.Wrap(ix)
	if !ok {
		t.Fatal("crack not wrappable")
	}
	x := New(u)
	x.Query(0, n) // converge the full range
	if err := x.Insert(500); err != nil {
		t.Fatal(err)
	}
	// The pending insert invalidates the read path for covering ranges...
	got := x.Query(498, 503)
	if len(got) != 6 {
		t.Fatalf("after insert: %d values, want 6 (duplicate 500)", len(got))
	}
	// ...and once merged, reads converge again.
	if got := x.Query(498, 503); len(got) != 6 {
		t.Fatalf("re-query: %d values", len(got))
	}
	if err := x.Delete(500); err != nil {
		t.Fatal(err)
	}
	if got := x.Query(498, 503); len(got) != 5 {
		t.Fatalf("after delete: %d values, want 5", len(got))
	}
}

// TestExecutorRaceStress drives concurrent Query/QueryBatch/Insert/Delete
// through one executor; run with -race it is the package's data-race
// canary. Values are inserted and deleted in balanced pairs outside the
// queried band so counts stay deterministic.
func TestExecutorRaceStress(t *testing.T) {
	const n = 30000
	ix := core.NewDD1R(xrand.New(50).Perm(n), core.Options{Seed: 51})
	u, ok := updates.Wrap(ix)
	if !ok {
		t.Fatal("dd1r not wrappable")
	}
	x := New(u)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(500 + g))
			for i := 0; i < 60; i++ {
				switch i % 3 {
				case 0:
					a := rng.Int63n(n - 300)
					if got := x.Query(a, a+100); len(got) != 100 {
						errs <- "bad query count"
						return
					}
				case 1:
					a := rng.Int63n(n - 300)
					out := x.QueryBatch([]Range{{a, a + 50}, {a + 100, a + 150}})
					if len(out[0]) != 50 || len(out[1]) != 50 {
						errs <- "bad batch counts"
						return
					}
				default:
					// Churn outside [0, n): never affects the counts above.
					v := int64(n) + rng.Int63n(1000)
					if err := x.Insert(v); err != nil {
						errs <- err.Error()
						return
					}
					if err := x.Delete(v); err != nil {
						errs <- err.Error()
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Ported from the old core.Concurrent test: the executor keeps the same
// goroutine-safety and accounting contract the mutex wrapper had.
func TestExecutorConcurrentQueriesRaceFree(t *testing.T) {
	const n = 50000
	inner := core.NewMDD1R(xrand.New(30).Perm(n), core.Options{Seed: 13})
	x := New(inner)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + g))
			for i := 0; i < 50; i++ {
				a := rng.Int63n(n - 200)
				b := a + 200
				count, sum := x.QueryAggregate(a, b)
				if count != 200 || sum != rangeSum(a, b) {
					errs <- "bad aggregate"
					return
				}
				if vals := x.Query(a, b); len(vals) != 200 {
					errs <- "bad materialized length"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := x.Stats().Queries; got != 8*50*2 {
		t.Fatalf("queries = %d, want %d", got, 8*50*2)
	}
	if x.Name() != "exec(mdd1r)" {
		t.Fatalf("name = %q", x.Name())
	}
}
