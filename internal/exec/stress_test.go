package exec

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

// TestParallelMaterializeRaceStress hammers the parallel materialization
// path: wide converged queries whose contiguous middle exceeds the
// parallel-copy threshold, so every answer fans its bulk copy out to the
// worker pool — from many goroutines at once, while narrow converged
// queries and reorganizing queries interleave. Run under -race this
// checks the chunk-claiming copy never races with concurrent readers or
// with the executor's locking.
func TestParallelMaterializeRaceStress(t *testing.T) {
	const (
		n       = 1 << 21
		wideLo  = int64(n / 4)
		wideHi  = int64(3 * n / 4)
		wideLen = int(wideHi - wideLo)
		workers = 8
		iters   = 12
	)
	x := New(core.NewCrack(xrand.New(3).Perm(n), core.Options{Seed: 4}))
	if out := x.Query(wideLo, wideHi); len(out) != wideLen { // converge the wide bounds
		t.Fatalf("warmup got %d values, want %d", len(out), wideLen)
	}
	// The closed-form sum of [wideLo, wideHi) over a permutation of [0, n).
	wantSum := (wideLo + wideHi - 1) * int64(wideLen) / 2

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + w))
			buf := make([]int64, 0, wideLen)
			for i := 0; i < iters; i++ {
				var err error
				buf, err = x.QueryAppendCtx(ctx, wideLo, wideHi, buf[:0])
				if err != nil || len(buf) != wideLen {
					t.Errorf("worker %d: wide len=%d err=%v", w, len(buf), err)
					return
				}
				var sum int64
				for _, v := range buf {
					sum += v
				}
				if sum != wantSum {
					t.Errorf("worker %d: wide sum=%d want %d", w, sum, wantSum)
					return
				}
				// Interleave narrow queries: converged reads and the
				// occasional reorganizing crack elsewhere in the column.
				a := rng.Int63n(n / 8)
				if out, err := x.QueryAppendCtx(ctx, a, a+32, nil); err != nil || len(out) != 32 {
					t.Errorf("worker %d: narrow len=%d err=%v", w, len(out), err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelCrackRaceStress hammers the parallel cracking path: the
// engine routes every crack of a piece >= ParallelCrackMin through the
// chunked kernel, which fans per-chunk partitions and merge swaps out to
// the worker pool while the executor holds the write lock. Many
// goroutines issue fresh (never-seen) bounds so nearly every query
// reorganizes, interleaved with converged re-reads that take the read
// path concurrently. Run under -race this checks the claim-loop
// synchronization: pool workers must be fully drained (not merely
// scheduled) before the crack returns and the write lock is released.
func TestParallelCrackRaceStress(t *testing.T) {
	const (
		n       = 1 << 20
		workers = 8
		iters   = 24
	)
	x := New(core.NewDD1R(xrand.New(5).Perm(n), core.Options{
		Seed:             6,
		ParallelCrackMin: 1 << 14,
		CoarseInitPieces: 4,
	}))

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(500 + w))
			for i := 0; i < iters; i++ {
				a := rng.Int63n(n - 1024)
				b := a + 1 + rng.Int63n(1024)
				out, err := x.QueryAppendCtx(ctx, a, b, nil)
				if err != nil {
					t.Errorf("worker %d: err=%v", w, err)
					return
				}
				if int64(len(out)) != b-a {
					t.Errorf("worker %d: [%d,%d) len=%d want %d", w, a, b, len(out), b-a)
					return
				}
				for _, v := range out {
					if v < a || v >= b {
						t.Errorf("worker %d: value %d outside [%d,%d)", w, v, a, b)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
