package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBatcherClosed is returned by Batcher.Enqueue after Close: the
// request was not enqueued and the write was not applied, so retrying
// against a fresh handle is safe.
var ErrBatcherClosed = errors.New("exec: batcher closed")

// Timings decomposes one acknowledged write's latency into the three
// stages of the group-commit path:
//
//	Queue — enqueue until the collector sealed the flush holding the op
//	        (waiting in the admission queue plus the gather window);
//	Flush — the sealed batch waiting for the exclusive section(s);
//	Apply — holding the exclusive section(s), merging the batch.
//
// Flush and Apply are per-flush and therefore shared by every op the
// flush carried; Queue is per-request. Their sum is the served part of
// the caller's wall time.
type Timings struct {
	Queue time.Duration
	Flush time.Duration
	Apply time.Duration
}

// Applier is the surface a Batcher drains into: one call applies a whole
// batch of updates under the target's exclusive section(s). *Executor
// and *Sharded implement it.
type Applier interface {
	ApplyOps(ops []Op) (lockWait, apply time.Duration, err error)
}

// BatcherOptions tunes a Batcher. The zero value selects the defaults.
type BatcherOptions struct {
	// BatchSize is the number of ops at which the collector stops
	// gathering and flushes early. Default 128.
	BatchSize int
	// MaxWait is the hard upper bound on how long the first op of a batch
	// may gather company before the collector flushes regardless. The
	// collector batches opportunistically — it flushes as soon as the
	// queue momentarily drains, so an uncontended write never lingers —
	// and MaxWait only bites when the queue streams continuously without
	// ever reaching BatchSize. Default 200µs.
	MaxWait time.Duration
	// Queue is the admission queue depth in requests; a full queue makes
	// Enqueue block (honoring its context) rather than drop. Default
	// 4×BatchSize.
	Queue int
}

// BatcherStats is a Batcher's observable state, served by /v1/stats and
// /debug/metrics.
type BatcherStats struct {
	Enqueued int64 // requests accepted into the queue
	Ops      int64 // individual updates applied through flushes
	Flushes  int64 // group commits (exclusive apply sections entered)
	MaxBatch int64 // largest single flush, in ops
	QueueNS  int64 // summed per-request queue stage
	FlushNS  int64 // summed per-flush lock-wait stage
	ApplyNS  int64 // summed per-flush apply stage

	BatchSize int           // effective tunables, defaults resolved
	MaxWait   time.Duration //
}

// Batcher is the group-commit write path: writers enqueue batches of
// updates and block for an ack, while a single collector goroutine
// drains the queue and applies each gathered batch through one
// Applier.ApplyOps call — one exclusive-lock handshake per flush instead
// of one per value, which is what keeps the write path from convoying
// under concurrent writers (Alvarez et al., arXiv:1404.2034, make the
// same argument for batch-coordinated reorganization).
//
// The no-lost-ack contract: Enqueue acknowledges a write only after the
// flush containing it returned from ApplyOps, so an acknowledged write
// is durable in the index (visible to any later query, captured by any
// later snapshot) exactly once, and an error means the write was never
// enqueued. There is no path that acknowledges without applying, and no
// path that applies twice.
type Batcher struct {
	target Applier
	opt    BatcherOptions
	ch     chan *batchReq
	quit   chan struct{} // closed by Close: stop admitting
	done   chan struct{} // closed by the collector after the final flush
	once   sync.Once

	enqueued atomic.Int64
	ops      atomic.Int64
	flushes  atomic.Int64
	maxBatch atomic.Int64
	queueNS  atomic.Int64
	flushNS  atomic.Int64
	applyNS  atomic.Int64
}

type batchReq struct {
	ops  []Op
	enq  time.Time
	resp chan batchResp // buffered(1); the collector never blocks on it
}

type batchResp struct {
	t   Timings
	err error
}

// NewBatcher starts a group-commit collector in front of target and
// returns its handle. Close it to stop the collector goroutine.
func NewBatcher(target Applier, opt BatcherOptions) *Batcher {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 128
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = 200 * time.Microsecond
	}
	if opt.Queue <= 0 {
		opt.Queue = 4 * opt.BatchSize
	}
	b := &Batcher{
		target: target,
		opt:    opt,
		ch:     make(chan *batchReq, opt.Queue),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go b.collect()
	return b
}

// Enqueue hands a batch of updates to the collector and blocks until the
// flush containing them was applied, returning the decomposed stage
// timings. The context governs admission only — it is honored while the
// bounded queue is full and checked up front, so a request that misses
// its deadline is rejected without side effects. Once admitted, the
// write WILL be applied and Enqueue waits for that ack regardless of the
// context: returning early would break the acked-exactly-once contract.
func (b *Batcher) Enqueue(ctx context.Context, ops []Op) (Timings, error) {
	if len(ops) == 0 {
		return Timings{}, nil
	}
	if err := ctx.Err(); err != nil {
		return Timings{}, err
	}
	r := &batchReq{ops: ops, enq: time.Now(), resp: make(chan batchResp, 1)}
	select {
	case b.ch <- r:
		b.enqueued.Add(1)
	case <-b.quit:
		return Timings{}, ErrBatcherClosed
	case <-ctx.Done():
		return Timings{}, ctx.Err()
	}
	select {
	case res := <-r.resp:
		return res.t, res.err
	case <-b.done:
		// The collector drains the queue before closing done, so a
		// response may have raced in; prefer it — it is a real ack.
		select {
		case res := <-r.resp:
			return res.t, res.err
		default:
			return Timings{}, ErrBatcherClosed
		}
	}
}

// Close stops admitting writes, flushes everything already queued (those
// writers still get real acks) and waits for the collector to exit.
// Close is idempotent and safe to call concurrently with Enqueue.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.quit) })
	<-b.done
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Enqueued:  b.enqueued.Load(),
		Ops:       b.ops.Load(),
		Flushes:   b.flushes.Load(),
		MaxBatch:  b.maxBatch.Load(),
		QueueNS:   b.queueNS.Load(),
		FlushNS:   b.flushNS.Load(),
		ApplyNS:   b.applyNS.Load(),
		BatchSize: b.opt.BatchSize,
		MaxWait:   b.opt.MaxWait,
	}
}

// collect is the collector goroutine: wait for a first request, greedily
// gather whatever else is already queued, then flush the whole batch
// through one ApplyOps call and ack every waiter.
//
// Batching is opportunistic, not timed: the collector flushes the moment
// the queue momentarily drains, so a lone write pays no gather delay,
// while a busy exclusive section makes batches form by itself — every op
// that arrives during the previous flush rides the next one. A timed
// gather window would instead put its wait on every flush's critical
// path and cap throughput near 1/MaxWait flushes per second (Go timers
// cannot even resolve a few hundred microseconds reliably under load);
// MaxWait survives only as the hard bound on a continuously trickling
// queue that never reaches BatchSize.
func (b *Batcher) collect() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	var (
		reqs  []*batchReq
		nops  int
		batch []Op
	)
	flush := func() {
		if len(reqs) == 0 {
			return
		}
		sealed := time.Now()
		batch = batch[:0]
		for _, r := range reqs {
			batch = append(batch, r.ops...)
		}
		lockWait, apply, err := b.target.ApplyOps(batch)
		b.flushes.Add(1)
		b.ops.Add(int64(len(batch)))
		if n := int64(len(batch)); n > b.maxBatch.Load() {
			b.maxBatch.Store(n) // single writer: the collector itself
		}
		b.flushNS.Add(int64(lockWait))
		b.applyNS.Add(int64(apply))
		for _, r := range reqs {
			q := sealed.Sub(r.enq)
			b.queueNS.Add(int64(q))
			r.resp <- batchResp{t: Timings{Queue: q, Flush: lockWait, Apply: apply}, err: err}
		}
		reqs = reqs[:0]
		nops = 0
	}

	for {
		select {
		case r := <-b.ch:
			reqs = append(reqs, r)
			nops = len(r.ops)
		case <-b.quit:
			// Closing: serve what is already queued, then exit. Enqueue
			// selects on quit, so the queue can only shrink here.
			for {
				select {
				case r := <-b.ch:
					reqs = append(reqs, r)
					nops += len(r.ops)
				default:
					flush()
					return
				}
			}
		}
		timer.Reset(b.opt.MaxWait)
	gather:
		for nops < b.opt.BatchSize {
			select {
			case r := <-b.ch:
				reqs = append(reqs, r)
				nops += len(r.ops)
			case <-timer.C:
				break gather
			default:
				// Queue drained: flush now rather than linger.
				break gather
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		flush()
	}
}
