package exec

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

func TestShardedMatchesOracle(t *testing.T) {
	const n = 50000
	vals := xrand.New(60).Perm(n)
	for _, k := range []int{1, 2, 7, 16} {
		s, err := NewSharded(append([]int64(nil), vals...), "dd1r", k, core.Options{Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(62)
		for i := 0; i < 200; i++ {
			a := rng.Int63n(n)
			b := a + rng.Int63n(n/4) + 1
			got := s.Query(a, b)
			wantCount := 0
			var wantSum, gotSum int64
			for _, v := range vals {
				if a <= v && v < b {
					wantCount++
					wantSum += v
				}
			}
			for _, v := range got {
				gotSum += v
			}
			if len(got) != wantCount || gotSum != wantSum {
				t.Fatalf("k=%d query [%d,%d): got (%d,%d), want (%d,%d)",
					k, a, b, len(got), gotSum, wantCount, wantSum)
			}
		}
	}
}

func TestShardedQueryBatch(t *testing.T) {
	const n = 60000
	s, err := NewSharded(xrand.New(70).Perm(n), "dd1r", 8, core.Options{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	ranges := []Range{
		{50000, 50500}, {10, 40}, {0, n}, {7, 7}, {25000, 26000}, {59990, 70000},
	}
	out := s.QueryBatch(ranges)
	for i, r := range ranges {
		lo, hi := r.Lo, r.Hi
		if hi > n {
			hi = n
		}
		want := hi - lo
		if lo >= hi {
			want = 0
		}
		var sum, wantSum int64
		for _, v := range out[i] {
			sum += v
		}
		for v := lo; v < hi; v++ {
			wantSum += v
		}
		if int64(len(out[i])) != want || sum != wantSum {
			t.Fatalf("range %d [%d,%d): got (%d,%d), want (%d,%d)",
				i, r.Lo, r.Hi, len(out[i]), sum, want, wantSum)
		}
	}
	if q := s.Stats().Queries; q != int64(len(ranges)) {
		t.Fatalf("queries = %d, want %d", q, len(ranges))
	}
}

func TestShardedConcurrentQueries(t *testing.T) {
	const n = 100000
	s, err := NewSharded(xrand.New(63).Perm(n), "mdd1r", 8, core.Options{Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(200 + g))
			for i := 0; i < 40; i++ {
				a := rng.Int63n(n - 500)
				got := s.Query(a, a+500)
				if len(got) != 500 {
					errs <- "bad count"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if s.Stats().Queries != 16*40 {
		t.Fatalf("queries = %d", s.Stats().Queries)
	}
}

func TestShardedBalancedShards(t *testing.T) {
	const n = 64000
	s, err := NewSharded(xrand.New(65).Perm(n), "crack", 8, core.Options{Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 8 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	// Each shard should hold a reasonable share: between 1/4x and 4x the
	// even split, given sampling-based bounds.
	for i := 0; i < s.NumShards(); i++ {
		acc, ok := s.Shard(i).inner.(interface{ Engine() *core.Engine })
		if !ok {
			t.Fatal("shard not engine-backed")
		}
		size := acc.Engine().Column().Len()
		if size < n/8/4 || size > n/8*4 {
			t.Fatalf("shard %d holds %d tuples; even split is %d", i, size, n/8)
		}
	}
}

func TestShardedBoundsRespectSeed(t *testing.T) {
	// Different seeds must probe different sample offsets; on adversarial
	// striped data that yields different bounds (the old implementation
	// ignored the seed outright).
	n := 64 * 40
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	b0 := shardBounds(vals, 4, 0)
	b3 := shardBounds(vals, 4, 3)
	if len(b0) == 0 || len(b3) == 0 {
		t.Fatal("no bounds")
	}
	same := len(b0) == len(b3)
	if same {
		for i := range b0 {
			if b0[i] != b3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 0 and 3 produced identical bounds %v", b0)
	}
}

func TestShardedNarrowQueriesTouchOneShard(t *testing.T) {
	const n = 80000
	s, err := NewSharded(xrand.New(67).Perm(n), "crack", 8, core.Options{Seed: 68})
	if err != nil {
		t.Fatal(err)
	}
	// Warm every shard with one wide query.
	s.Query(0, n)
	before := s.Stats().Touched
	// A narrow query intersects one shard; the work must be bounded by
	// that shard's size, not the column's.
	s.Query(100, 110)
	if d := s.Stats().Touched - before; d > int64(n)/4 {
		t.Fatalf("narrow query touched %d tuples across shards", d)
	}
}

func TestShardedDegenerate(t *testing.T) {
	s, err := NewSharded(nil, "crack", 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Query(0, 100); len(got) != 0 {
		t.Fatal("empty sharded index returned rows")
	}
	s2, err := NewSharded([]int64{5, 5, 5, 5}, "dd1r", 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Query(0, 10); len(got) != 4 {
		t.Fatalf("all-equal column: got %d rows", len(got))
	}
	if got := s2.Query(10, 0); len(got) != 0 {
		t.Fatal("inverted range returned rows")
	}
	if _, err := NewSharded([]int64{1}, "bogus", 2, core.Options{}); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

// TestRestoreShardedResumesCracks rebuilds a sharded index from per-shard
// snapshots and asserts both correctness (oracle answers) and that the
// restored shards answer already-cracked ranges without rescanning.
func TestRestoreShardedResumesCracks(t *testing.T) {
	const n = 40000
	vals := xrand.New(70).Perm(n)
	src, err := NewSharded(append([]int64(nil), vals...), "crack", 4, core.Options{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(72)
	for i := 0; i < 300; i++ {
		a := rng.Int63n(n - 50)
		src.Query(a, a+50)
	}
	states := make([]core.SnapshotState, src.NumShards())
	bounds := make([]int64, 0, src.NumShards()-1)
	for i := 0; i < src.NumShards(); i++ {
		lo, _ := src.ShardRange(i)
		if i > 0 {
			bounds = append(bounds, lo)
		}
		src.Shard(i).Exclusive(func(inner Index) {
			acc := inner.(interface{ Engine() *core.Engine })
			states[i] = acc.Engine().Snapshot()
		})
	}
	restored, err := RestoreSharded(states, bounds, "crack", core.Options{Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumShards() != 4 {
		t.Fatalf("restored %d shards, want 4", restored.NumShards())
	}
	// Same bounds as the source.
	for i := 0; i < 4; i++ {
		slo, shi := src.ShardRange(i)
		rlo, rhi := restored.ShardRange(i)
		if slo != rlo || shi != rhi {
			t.Fatalf("shard %d range [%d,%d), want [%d,%d)", i, rlo, rhi, slo, shi)
		}
	}
	// Correct answers across shard boundaries.
	rng = xrand.New(74)
	for i := 0; i < 100; i++ {
		a := rng.Int63n(n)
		b := a + rng.Int63n(n/3) + 1
		got := restored.Query(a, b)
		want := 0
		for _, v := range vals {
			if a <= v && v < b {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("query [%d,%d): got %d values, want %d", a, b, len(got), want)
		}
	}
	// The restored index carries the source's refinement: repeating one of
	// the warmed queries touches far fewer tuples than a cold crack would.
	before := restored.Stats().Touched
	restored.Query(100, 150)
	if d := restored.Stats().Touched - before; d > n/4 {
		t.Fatalf("restored shard rescanned %d tuples; adaptation lost", d)
	}

	// Mismatched bounds/state counts are rejected.
	if _, err := RestoreSharded(states, bounds[:1], "crack", core.Options{}); err == nil {
		t.Fatal("bounds/state mismatch accepted")
	}
	if _, err := RestoreSharded(nil, nil, "crack", core.Options{}); err == nil {
		t.Fatal("empty restore accepted")
	}
}
