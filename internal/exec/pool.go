package exec

import (
	"runtime"
	"sync"
)

// A process-wide bounded worker pool for fanning shard queries out. The
// old core.Sharded spawned one goroutine per intersected shard per query —
// under heavy concurrent traffic that is queries x shards goroutines all
// runnable at once. The pool caps shard-fan-out parallelism at GOMAXPROCS
// workers (floored at 2 so fan-out exists even on one proc) shared by
// every sharded index in the process; when all workers
// are busy the submitting goroutine runs the task inline, so submission
// never blocks and the fan-out degrades gracefully to sequential work
// under saturation instead of piling up goroutines.
var (
	poolOnce sync.Once
	poolWork chan func()
)

func poolStart() {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	poolWork = make(chan func(), 2*n)
	for i := 0; i < n; i++ {
		go func() {
			for task := range poolWork {
				task()
			}
		}()
	}
}

// poolSubmit hands task to an idle worker; it reports false — without
// running the task — when the pool is saturated, leaving the task to the
// caller. Tasks must be independent: a task must never wait on another
// submitted task, or saturation could deadlock the pool.
func poolSubmit(task func()) bool {
	poolOnce.Do(poolStart)
	select {
	case poolWork <- task:
		return true
	default:
		return false
	}
}
