package exec

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

// mutexIndex reproduces the deleted core.Concurrent baseline: one
// mutual-exclusion lock around every query, the paper's conservative
// reading of cracking's reader/writer economics. The benchmarks quantify
// what the adaptive executor buys over it on a converged workload.
type mutexIndex struct {
	mu    sync.Mutex
	inner core.Index
}

func (m *mutexIndex) Query(a, b int64) []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := m.inner.Query(a, b)
	return res.Materialize(make([]int64, 0, res.Count()))
}

const (
	benchN      = 1 << 20
	benchRanges = 1024
	benchWidth  = 64
)

func benchRangeSet() []Range {
	rng := xrand.New(99)
	ranges := make([]Range, benchRanges)
	for i := range ranges {
		a := rng.Int63n(benchN - benchWidth)
		ranges[i] = Range{a, a + benchWidth}
	}
	return ranges
}

// converge runs every benchmark range once so its bounds become exact
// cracks; afterwards the workload is pure reads.
func converge(q func(a, b int64) []int64, ranges []Range) {
	for _, r := range ranges {
		q(r.Lo, r.Hi)
	}
}

// BenchmarkExecConvergedParallel measures the adaptive executor on a
// converged workload: every query hits the shared read path and runs in
// parallel. Compare with BenchmarkMutexConvergedParallel — the acceptance
// bar for this layer is >2x throughput at GOMAXPROCS >= 4.
func BenchmarkExecConvergedParallel(b *testing.B) {
	x := New(core.NewCrack(xrand.New(97).Perm(benchN), core.Options{Seed: 98}))
	ranges := benchRangeSet()
	converge(x.Query, ranges)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := ranges[i%benchRanges]
			if got := x.Query(r.Lo, r.Hi); len(got) != benchWidth {
				b.Fatal("bad count")
			}
			i++
		}
	})
}

// BenchmarkMutexConvergedParallel is the old core.Concurrent path on the
// identical workload: converged or not, every query serializes behind one
// mutex.
func BenchmarkMutexConvergedParallel(b *testing.B) {
	m := &mutexIndex{inner: core.NewCrack(xrand.New(97).Perm(benchN), core.Options{Seed: 98})}
	ranges := benchRangeSet()
	converge(m.Query, ranges)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := ranges[i%benchRanges]
			if got := m.Query(r.Lo, r.Hi); len(got) != benchWidth {
				b.Fatal("bad count")
			}
			i++
		}
	})
}

// BenchmarkExecBatchConverged measures the batched API: one shared lock
// acquisition answers the whole converged range set.
func BenchmarkExecBatchConverged(b *testing.B) {
	x := New(core.NewCrack(xrand.New(97).Perm(benchN), core.Options{Seed: 98}))
	ranges := benchRangeSet()
	converge(x.Query, ranges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := x.QueryBatch(ranges)
		if len(out) != benchRanges {
			b.Fatal("bad batch")
		}
	}
}

// BenchmarkShardedConvergedParallel is the sharded index on the same
// converged workload: narrow queries run inline on their one shard, under
// that shard's read lock.
func BenchmarkShardedConvergedParallel(b *testing.B) {
	s, err := NewSharded(xrand.New(97).Perm(benchN), "crack", 8, core.Options{Seed: 98})
	if err != nil {
		b.Fatal(err)
	}
	ranges := benchRangeSet()
	converge(s.Query, ranges)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := ranges[i%benchRanges]
			if got := s.Query(r.Lo, r.Hi); len(got) != benchWidth {
				b.Fatal("bad count")
			}
			i++
		}
	})
}
