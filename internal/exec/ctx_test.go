package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

func TestExecutorCanceledContext(t *testing.T) {
	ix, err := core.Build(xrand.New(71).Perm(10_000), "crack", core.Options{Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	x := New(ix)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.QueryCtx(ctx, 0, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("query error = %v", err)
	}
	if _, _, err := x.QueryAggregateCtx(ctx, 0, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate error = %v", err)
	}
	if _, err := x.QueryBatchCtx(ctx, []Range{{0, 10}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v", err)
	}
	// A live context serves normally afterwards; the aborted calls left no
	// partial state behind.
	out, err := x.QueryCtx(context.Background(), 0, 100)
	if err != nil || len(out) != 100 {
		t.Fatalf("post-cancel query: len=%d err=%v", len(out), err)
	}
}

// TestExecutorBatchCancelBetweenRanges cancels the context from inside
// the batch's exclusive pass — deterministically mid-batch, by hooking
// the first query through an index wrapper — and checks the remaining
// ranges are abandoned.
func TestExecutorBatchCancelBetweenRanges(t *testing.T) {
	ix, err := core.Build(xrand.New(73).Perm(10_000), "crack", core.Options{Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hooked := &cancelAfterFirstQuery{Index: ix, cancel: cancel}
	x := New(hooked)
	ranges := []Range{{0, 10}, {100, 200}, {300, 400}, {500, 600}}
	if _, err := x.QueryBatchCtx(ctx, ranges); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v", err)
	}
	if hooked.queries != 1 {
		t.Fatalf("ran %d ranges after cancellation, want 1", hooked.queries)
	}
}

// cancelAfterFirstQuery cancels its context as a side effect of the first
// Query, simulating a caller giving up while a batch holds the write
// lock. It deliberately hides the probe surface so every range takes the
// exclusive path.
type cancelAfterFirstQuery struct {
	Index
	cancel  context.CancelFunc
	queries int
}

func (c *cancelAfterFirstQuery) Query(a, b int64) core.Result {
	c.queries++
	c.cancel()
	return c.Index.Query(a, b)
}

func TestShardedCanceledContext(t *testing.T) {
	s, err := NewSharded(xrand.New(75).Perm(40_000), "crack", 4, core.Options{Seed: 76})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryCtx(ctx, 0, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("query error = %v", err)
	}
	if _, _, err := s.QueryAggregateCtx(ctx, 0, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate error = %v", err)
	}
	if _, err := s.QueryBatchCtx(ctx, []Range{{0, 10}, {20, 30}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v", err)
	}
	out, err := s.QueryCtx(context.Background(), 0, 1000)
	if err != nil || len(out) != 1000 {
		t.Fatalf("post-cancel query: len=%d err=%v", len(out), err)
	}
}

func TestShardedUpdatesRouteByValue(t *testing.T) {
	s, err := NewSharded(xrand.New(77).Perm(40_000), "dd1r", 4, core.Options{Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Prime some cracks, then update values living in different shards.
	if _, err := s.QueryCtx(ctx, 0, 40_000); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{100, 15_000, 39_000} {
		if err := s.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(20_000); err != nil {
		t.Fatal(err)
	}
	if p := s.Pending(); p != 4 {
		t.Fatalf("pending = %d", p)
	}
	out, err := s.QueryCtx(ctx, 0, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	// 40000 originals + 3 inserts - 1 delete.
	if len(out) != 40_002 {
		t.Fatalf("post-update count = %d", len(out))
	}
	if p := s.Pending(); p != 0 {
		t.Fatalf("pending after merge = %d", p)
	}
	// The sorted baseline cannot take updates even when sharded.
	srt, err := NewSharded(xrand.New(79).Perm(1000), "sort", 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srt.Insert(5); err == nil {
		t.Fatal("sharded sort accepted an insert")
	}
}
