package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/updates"
	"repro/internal/xrand"
)

func newUpdatableExec(t *testing.T, n int, seed uint64) *Executor {
	t.Helper()
	ix, err := core.Build(xrand.New(seed).Perm(n), "dd1r", core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	u, ok := updates.Wrap(ix)
	if !ok {
		t.Fatal("dd1r must be updatable")
	}
	return New(u)
}

// TestApplyOpsMatchesSerialUpdates: a batch applied through ApplyOps must
// leave the index answering exactly like the same updates applied one by
// one — the multiset of inserts and deletes is what matters.
func TestApplyOpsMatchesSerialUpdates(t *testing.T) {
	const n = 20000
	batched := newUpdatableExec(t, n, 3)
	serial := newUpdatableExec(t, n, 3)

	rng := xrand.New(9)
	var ops []Op
	for i := 0; i < 500; i++ {
		ops = append(ops, Op{Value: n + rng.Int63n(5000)})               // inserts above the domain
		ops = append(ops, Op{Value: rng.Int63n(n), Delete: true})        // deletes inside it
		ops = append(ops, Op{Value: n + rng.Int63n(5000), Delete: true}) // deletes that may miss
	}
	if _, _, err := batched.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		var err error
		if op.Delete {
			err = serial.Delete(op.Value)
		} else {
			err = serial.Insert(op.Value)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		a := rng.Int63n(n + 5000)
		b := a + 1 + rng.Int63n(2000)
		gc, gs := batched.QueryAggregate(a, b)
		wc, ws := serial.QueryAggregate(a, b)
		if gc != wc || gs != ws {
			t.Fatalf("query [%d,%d): batched (%d,%d) != serial (%d,%d)", a, b, gc, gs, wc, ws)
		}
	}
}

func TestApplyOpsUpdatesUnsupported(t *testing.T) {
	ix, err := core.Build(xrand.New(1).Perm(1000), "dd1r", core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := New(ix) // not wrapped with updates: no inserter
	if _, _, err := x.ApplyOps([]Op{{Value: 1}}); !errors.Is(err, dberr.ErrUpdatesUnsupported) {
		t.Fatalf("err = %v, want ErrUpdatesUnsupported", err)
	}
}

// TestBatcherNoLostNoDoubledAcks is the group-commit equivalence
// property: concurrent writers insert distinct values through the
// batcher while readers query; after every ack, each acknowledged value
// is visible exactly once.
func TestBatcherNoLostNoDoubledAcks(t *testing.T) {
	const (
		n       = 30000
		writers = 8
		perW    = 300
	)
	x := newUpdatableExec(t, n, 5)
	b := NewBatcher(x, BatcherOptions{BatchSize: 64, MaxWait: 100 * time.Microsecond})
	defer b.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	var acked atomic.Int64
	stop := make(chan struct{})
	// Readers keep the executor's read/write paths busy during the storm.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := rng.Int63n(n)
				x.QueryAggregate(a, a+1+rng.Int63n(500))
			}
		}(uint64(100 + r))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Distinct values above the base domain: n + writer*perW + i.
				v := int64(n + w*perW + i)
				if _, err := b.Enqueue(ctx, []Op{{Value: v}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked.Add(1)
				// An acknowledged insert must be visible to a query issued
				// after the ack — count exactly 1.
				if c, _ := x.QueryAggregate(v, v+1); c != 1 {
					t.Errorf("acked value %d: count = %d, want 1", v, c)
					return
				}
			}
		}(w)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitWriters := func() {
		for acked.Load() < writers*perW {
			select {
			case <-done:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	waitWriters()
	close(stop)
	<-done
	if t.Failed() {
		return
	}
	// Global check: every acked value present exactly once, none doubled.
	c, s := x.QueryAggregate(n, n+writers*perW)
	wantC := writers * perW
	var wantS int64
	for v := int64(n); v < int64(n+writers*perW); v++ {
		wantS += v
	}
	if c != wantC || s != wantS {
		t.Fatalf("acked range: got (%d,%d), want (%d,%d)", c, s, wantC, wantS)
	}
	st := b.Stats()
	if st.Flushes == 0 || st.Ops != int64(writers*perW) {
		t.Fatalf("stats: flushes=%d ops=%d, want ops=%d", st.Flushes, st.Ops, writers*perW)
	}
	if st.Flushes >= st.Ops {
		t.Logf("no grouping happened (flushes=%d ops=%d) — legal but worth knowing", st.Flushes, st.Ops)
	}
}

// TestBatcherAcksSurviveSnapshotCapture: an acked insert must ride a
// snapshot taken any time after the ack — Exclusive drains the batcher's
// in-flight flush because both take the same lock.
func TestBatcherAcksSurviveSnapshotCapture(t *testing.T) {
	const n = 10000
	x := newUpdatableExec(t, n, 11)
	b := NewBatcher(x, BatcherOptions{BatchSize: 32, MaxWait: 50 * time.Microsecond})
	defer b.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var acked atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := int64(n + w*200 + i)
				if _, err := b.Enqueue(ctx, []Op{{Value: v}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked.Add(1)
			}
		}(w)
	}
	// Concurrent snapshot-like captures: each must observe at least the
	// acks counted before the capture began (pending + merged together).
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := acked.Load()
				var got int64
				x.Exclusive(func(inner Index) {
					u := inner.(*updates.Index)
					ins, _ := u.PendingSnapshot()
					got = int64(len(ins)) + u.Merged()
				})
				if got < before {
					t.Errorf("capture saw %d inserts, %d were acked before it", got, before)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	go func() {
		for acked.Load() < 800 && !t.Failed() {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	wg.Wait()
}

// TestBatcherShardedRouting: one enqueued batch spanning shard boundaries
// lands each value on the owning shard.
func TestBatcherShardedRouting(t *testing.T) {
	const n = 40000
	s, err := NewSharded(xrand.New(17).Perm(n), "dd1r", 4, core.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(s, BatcherOptions{BatchSize: 256, MaxWait: time.Millisecond})
	defer b.Close()

	var ops []Op
	for v := int64(0); v < 1000; v++ {
		ops = append(ops, Op{Value: n + v})
	}
	tm, err := b.Enqueue(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Queue < 0 || tm.Apply <= 0 {
		t.Fatalf("timings = %+v, want positive apply", tm)
	}
	if got := s.Pending(); got != 1000 {
		t.Fatalf("pending = %d, want 1000", got)
	}
	c, _, err := s.QueryAggregateCtx(context.Background(), n, n+1000)
	if err != nil || c != 1000 {
		t.Fatalf("count = %d (err %v), want 1000", c, err)
	}
}

// slowApplier delays every flush, so enqueues pile up in the queue while
// a flush is in progress — the deterministic way to have requests queued
// at Close time now that the collector flushes opportunistically.
type slowApplier struct {
	inner Applier
	delay time.Duration
}

func (s *slowApplier) ApplyOps(ops []Op) (time.Duration, time.Duration, error) {
	time.Sleep(s.delay)
	return s.inner.ApplyOps(ops)
}

// TestBatcherCloseFlushesQueued: requests already admitted when Close is
// called still get real acks; requests after Close fail cleanly.
func TestBatcherCloseFlushesQueued(t *testing.T) {
	const n = 5000
	x := newUpdatableExec(t, n, 23)
	// Each flush takes ~20ms, so the 16 enqueues below queue up behind the
	// first one and are provably served by the close-path drain.
	b := NewBatcher(&slowApplier{inner: x, delay: 20 * time.Millisecond},
		BatcherOptions{BatchSize: 1 << 20, MaxWait: time.Hour, Queue: 64})

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Enqueue(ctx, []Op{{Value: int64(n + i)}})
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the enqueues land
	b.Close()
	wg.Wait()
	okAcks := 0
	for _, err := range errs {
		if err == nil {
			okAcks++
		} else if !errors.Is(err, ErrBatcherClosed) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Every ack must be present in the index; no ErrBatcherClosed write may be.
	c, _ := x.QueryAggregate(n, n+16)
	if c != okAcks {
		t.Fatalf("index holds %d of the writes, %d were acked", c, okAcks)
	}
	if _, err := b.Enqueue(ctx, []Op{{Value: 1}}); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("enqueue after close: err = %v, want ErrBatcherClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherEnqueueHonorsContext: a canceled context rejects admission
// without side effects.
func TestBatcherEnqueueHonorsContext(t *testing.T) {
	x := newUpdatableExec(t, 1000, 29)
	b := NewBatcher(x, BatcherOptions{})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Enqueue(ctx, []Op{{Value: 5000}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c, _ := x.QueryAggregate(5000, 5001); c != 0 {
		t.Fatal("rejected write reached the index")
	}
}
