package exec

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/updates"
)

// Sharded is a parallel cracking index: the column is value-range
// partitioned into k shards, each an independent engine-backed index
// behind its own adaptive Executor, and queries fan out to the shards
// their range intersects. It addresses the paper's §6 "distribution"
// direction at the scale of one process: physical reorganization never
// crosses a shard boundary, so disjoint shards crack independently, and
// within a shard the executor lets converged queries run in parallel.
//
// Shard boundaries are chosen by sampling so each shard holds roughly the
// same number of tuples. Single-shard queries are served inline on the
// calling goroutine; multi-shard queries offload the extra shards to the
// process-wide bounded worker pool. Results are returned materialized
// (shards are not contiguous with one another).
//
// Updates route by value: each shard is wrapped with the pending-update
// machinery (when the algorithm is engine-backed), and Insert/Delete hand
// the value to the one shard whose range owns it, where it merges lazily
// like on any single index.
type Sharded struct {
	shards []shard
	spec   string
	q      atomic.Int64
}

type shard struct {
	lo, hi int64 // value range [lo, hi) this shard owns
	ex     *Executor
}

// NewSharded builds a sharded index: values are split into k value-range
// shards, each indexed independently with the given algorithm spec.
func NewSharded(values []int64, spec string, k int, opt core.Options) (*Sharded, error) {
	if k < 1 {
		k = 1
	}
	if k > len(values) && len(values) > 0 {
		k = len(values)
	}
	bounds := shardBounds(values, k, opt.Seed)
	buckets := make([][]int64, len(bounds)+1)
	for _, v := range values {
		buckets[bucketOf(bounds, v)] = append(buckets[bucketOf(bounds, v)], v)
	}
	s := &Sharded{spec: spec}
	lo := int64(math.MinInt64)
	for i, b := range buckets {
		hi := int64(math.MaxInt64)
		if i < len(bounds) {
			hi = bounds[i]
		}
		ix, err := core.Build(b, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("exec: sharded: %w", err)
		}
		var inner Index = ix
		if u, ok := updates.Wrap(ix); ok {
			inner = u
		}
		s.shards = append(s.shards, shard{lo: lo, hi: hi, ex: New(inner)})
		lo = hi
	}
	return s, nil
}

// RestoreSharded rebuilds a sharded index from per-shard snapshot states
// and the k-1 interior bounds separating them (strictly ascending; shard
// i owns [bounds[i-1], bounds[i]), the first and last extending to the
// domain edges). Each state is validated and restored through
// core.Restore, so the shards resume with every crack earned before the
// snapshot; the caller (the facade's OpenSnapshot) is responsible for
// cutting a manifest along these bounds first.
func RestoreSharded(states []core.SnapshotState, bounds []int64, spec string, opt core.Options) (*Sharded, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("exec: sharded restore: no shard states")
	}
	if len(bounds) != len(states)-1 {
		return nil, fmt.Errorf("exec: sharded restore: %d bounds for %d shards", len(bounds), len(states))
	}
	s := &Sharded{spec: spec}
	lo := int64(math.MinInt64)
	for i, st := range states {
		hi := int64(math.MaxInt64)
		if i < len(bounds) {
			hi = bounds[i]
		}
		if hi <= lo {
			return nil, fmt.Errorf("exec: sharded restore: bounds not ascending at shard %d", i)
		}
		ix, err := core.Restore(st, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("exec: sharded restore: shard %d: %w", i, err)
		}
		var inner Index = ix
		if u, ok := updates.Wrap(ix); ok {
			if st.Pending() > 0 {
				u.SeedPending(st.PendingInserts, st.PendingDeletes)
			}
			inner = u
		} else if st.Pending() > 0 {
			return nil, fmt.Errorf("exec: sharded restore: shard %d: %d pending updates but %q takes no updates",
				i, st.Pending(), spec)
		}
		s.shards = append(s.shards, shard{lo: lo, hi: hi, ex: New(inner)})
		lo = hi
	}
	return s, nil
}

// shardBounds picks k-1 splitting values by sampling and sorting. The
// sample strides over the unsorted input, with the stride offset seeded so
// different seeds probe different tuples; the input is workload data,
// typically a shuffle, so strided sampling is unbiased — worst case we get
// uneven shards, never wrong results.
func shardBounds(values []int64, k int, seed uint64) []int64 {
	if k <= 1 || len(values) == 0 {
		return nil
	}
	const perShard = 32
	sampleSize := k * perShard
	if sampleSize > len(values) {
		sampleSize = len(values)
	}
	stride := len(values) / sampleSize
	if stride < 1 {
		stride = 1
	}
	start := int(seed % uint64(stride))
	sample := make([]int64, 0, sampleSize)
	for i := start; i < len(values) && len(sample) < sampleSize; i += stride {
		sample = append(sample, values[i])
	}
	insertionSort(sample)
	bounds := make([]int64, 0, k-1)
	for i := 1; i < k; i++ {
		b := sample[i*len(sample)/k]
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

func insertionSort(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func bucketOf(bounds []int64, v int64) int {
	// Linear scan: bounds is small (k-1) and this is load-time only.
	for i, b := range bounds {
		if v < b {
			return i
		}
	}
	return len(bounds)
}

// intersect returns the index range [first, last] of shards whose value
// range intersects [a, b); ok is false when no shard does.
func (s *Sharded) intersect(a, b int64) (first, last int, ok bool) {
	first = -1
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.hi <= a || sh.lo >= b {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	return first, last, first >= 0
}

// shardFor returns the shard whose value range owns v. Shard ranges tile
// the whole int64 domain, with the last shard absorbing the top edge.
func (s *Sharded) shardFor(v int64) *shard {
	return &s.shards[s.shardIndexFor(v)]
}

// shardIndexFor is shardFor returning the shard's index.
func (s *Sharded) shardIndexFor(v int64) int {
	for i := range s.shards {
		if v < s.shards[i].hi {
			return i
		}
	}
	return len(s.shards) - 1
}

// fanOut runs work(si) for every shard in [first, last]: all but the
// first are offloaded to the bounded worker pool (running inline when it
// is saturated), the first runs on the calling goroutine, and fanOut
// returns when every shard finished. Tasks must be independent.
func (s *Sharded) fanOut(first, last int, work func(si int)) {
	var wg sync.WaitGroup
	for i := first + 1; i <= last; i++ {
		idx := i
		wg.Add(1)
		task := func() {
			work(idx)
			wg.Done()
		}
		if !pool.Submit(task) {
			task()
		}
	}
	work(first)
	wg.Wait()
}

// Query answers [a, b) and returns the qualifying values as one owned
// slice. A query intersecting a single shard runs inline on the calling
// goroutine; wider queries offload the extra shards to the worker pool.
// Sharded is safe for concurrent use.
func (s *Sharded) Query(a, b int64) []int64 {
	out, _ := s.QueryCtx(context.Background(), a, b)
	return out
}

// QueryCtx is Query honoring cancellation: the context is propagated to
// every intersected shard's executor, so a canceled context aborts the
// remaining per-shard work (already-running shard queries finish their
// current range, then stop).
func (s *Sharded) QueryCtx(ctx context.Context, a, b int64) ([]int64, error) {
	s.q.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if a >= b {
		return nil, nil
	}
	first, last, ok := s.intersect(a, b)
	if !ok {
		return nil, nil
	}
	if first == last {
		return s.shards[first].ex.QueryCtx(ctx, a, b)
	}
	parts := make([][]int64, last-first+1)
	errs := make([]error, last-first+1)
	s.fanOut(first, last, func(si int) {
		parts[si-first], errs[si-first] = s.shards[si].ex.QueryCtx(ctx, a, b)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// QueryAggregateCtx answers [a, b) returning only (count, sum), fanning
// the aggregate out to the intersected shards without materializing any
// values.
func (s *Sharded) QueryAggregateCtx(ctx context.Context, a, b int64) (count int, sum int64, err error) {
	s.q.Add(1)
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if a >= b {
		return 0, 0, nil
	}
	first, last, ok := s.intersect(a, b)
	if !ok {
		return 0, 0, nil
	}
	if first == last {
		return s.shards[first].ex.QueryAggregateCtx(ctx, a, b)
	}
	counts := make([]int, last-first+1)
	sums := make([]int64, last-first+1)
	errs := make([]error, last-first+1)
	s.fanOut(first, last, func(si int) {
		counts[si-first], sums[si-first], errs[si-first] = s.shards[si].ex.QueryAggregateCtx(ctx, a, b)
	})
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	for i := range counts {
		count += counts[i]
		sum += sums[i]
	}
	return count, sum, nil
}

// QueryBatch answers many ranges, returning one owned slice per range in
// input order. Ranges are grouped by shard so each intersected shard
// answers its whole sub-batch under a single executor batch (one or two
// lock acquisitions per shard, regardless of batch size); shard
// sub-batches run in parallel on the worker pool.
func (s *Sharded) QueryBatch(ranges []Range) [][]int64 {
	out, _ := s.QueryBatchCtx(context.Background(), ranges)
	return out
}

// QueryBatchCtx is QueryBatch honoring cancellation mid-fan-out: the
// context reaches every shard's executor batch, which re-checks it between
// ranges, so canceling while sub-batches are in flight abandons the
// remaining ranges on every shard. On cancellation the partial results are
// discarded and only the error is returned.
func (s *Sharded) QueryBatchCtx(ctx context.Context, ranges []Range) ([][]int64, error) {
	s.q.Add(int64(len(ranges)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]int64, len(ranges))
	if len(ranges) == 0 {
		return out, nil
	}
	// Per shard: which input ranges intersect it.
	idxs := make([][]int, len(s.shards))
	for ri, r := range ranges {
		if r.Lo >= r.Hi {
			continue
		}
		first, last, ok := s.intersect(r.Lo, r.Hi)
		if !ok {
			continue
		}
		for si := first; si <= last; si++ {
			idxs[si] = append(idxs[si], ri)
		}
	}
	parts := make([][][]int64, len(s.shards)) // parts[shard][pos in idxs[shard]]
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	run := func(si int) {
		sub := make([]Range, len(idxs[si]))
		for j, ri := range idxs[si] {
			sub[j] = ranges[ri]
		}
		parts[si], errs[si] = s.shards[si].ex.QueryBatchCtx(ctx, sub)
		wg.Done()
	}
	busy := -1 // run one busy shard inline, like Query
	for si := range s.shards {
		if len(idxs[si]) == 0 {
			continue
		}
		if busy < 0 {
			busy = si
			continue
		}
		si := si
		wg.Add(1)
		task := func() { run(si) }
		if !pool.Submit(task) {
			task()
		}
	}
	if busy >= 0 {
		wg.Add(1)
		run(busy)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Stitch shard answers back per range, in shard (= ascending value) order.
	pos := make([]int, len(s.shards))
	for si := range s.shards {
		for _, ri := range idxs[si] {
			out[ri] = append(out[ri], parts[si][pos[si]]...)
			pos[si]++
		}
	}
	return out, nil
}

// Insert queues value v for insertion on the shard whose value range owns
// it; the shard merges it lazily like any single index. It errors when the
// algorithm cannot take updates.
func (s *Sharded) Insert(v int64) error { return s.shardFor(v).ex.Insert(v) }

// Delete queues the removal of one occurrence of v, like Insert.
func (s *Sharded) Delete(v int64) error { return s.shardFor(v).ex.Delete(v) }

// ApplyOps routes a batch of updates to the shards owning each value and
// applies every shard's sub-batch under one exclusive section (see
// Executor.ApplyOps): k shards touched means k lock handshakes for the
// whole batch, not one per value. lockWait and apply are summed across
// the touched shards.
func (s *Sharded) ApplyOps(ops []Op) (lockWait, apply time.Duration, err error) {
	if len(ops) == 0 {
		return 0, 0, nil
	}
	if len(s.shards) == 1 {
		return s.shards[0].ex.ApplyOps(ops)
	}
	per := make([][]Op, len(s.shards))
	for _, op := range ops {
		si := s.shardIndexFor(op.Value)
		per[si] = append(per[si], op)
	}
	for si, sub := range per {
		if len(sub) == 0 {
			continue
		}
		lw, ap, err := s.shards[si].ex.ApplyOps(sub)
		lockWait += lw
		apply += ap
		if err != nil {
			return lockWait, apply, err
		}
	}
	return lockWait, apply, nil
}

// Pending returns the number of queued, not-yet-merged updates across all
// shards.
func (s *Sharded) Pending() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].ex.Pending()
	}
	return total
}

// Name identifies the configuration (e.g. "sharded-8(dd1r)").
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded-%d(%s)", len(s.shards), s.spec)
}

// Stats aggregates physical-cost counters across shards.
func (s *Sharded) Stats() core.Stats {
	agg := core.Stats{Queries: s.q.Load()}
	for i := range s.shards {
		st := s.shards[i].ex.Stats()
		agg.Touched += st.Touched
		agg.Swaps += st.Swaps
		agg.Cracks += st.Cracks
		agg.Pieces += st.Pieces
	}
	return agg
}

// PathStats aggregates the shards' read-path vs write-path query counts
// (see Executor.PathStats). A multi-shard query contributes once per shard
// it touched: the counters measure executor lock traffic, not client
// queries.
func (s *Sharded) PathStats() (reads, writes int64) {
	for i := range s.shards {
		r, w := s.shards[i].ex.PathStats()
		reads += r
		writes += w
	}
	return reads, writes
}

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes shard i's executor (harness and tests).
func (s *Sharded) Shard(i int) *Executor { return s.shards[i].ex }

// ShardRange returns the half-open value range [lo, hi) shard i owns
// (the first shard's lo is math.MinInt64, the last shard's hi is
// math.MaxInt64 and absorbs the top edge). Snapshots record it so a
// restore can rebuild — or deliberately re-cut — the same partitioning.
func (s *Sharded) ShardRange(i int) (lo, hi int64) {
	return s.shards[i].lo, s.shards[i].hi
}

// ExclusiveAll runs fn with every shard's executor drained at once, so
// fn observes one atomic cut of the whole index — no query or update can
// complete on any shard between the first lock and fn's return.
// Snapshots need this: draining shards one at a time would let updates
// land on later shards after earlier ones were captured, producing a
// state that never existed at any instant. Locks are taken in shard
// order; every other path holds at most one shard lock at a time, so the
// ordering cannot deadlock.
func (s *Sharded) ExclusiveAll(fn func(inners []Index)) {
	inners := make([]Index, 0, len(s.shards))
	var acquire func(i int)
	acquire = func(i int) {
		if i == len(s.shards) {
			fn(inners)
			return
		}
		s.shards[i].ex.Exclusive(func(inner Index) {
			inners = append(inners, inner)
			acquire(i + 1)
		})
	}
	acquire(0)
}
