// Package exec is the unified concurrent execution layer for adaptive
// indexes: one adaptive read/write locking discipline that every
// goroutine-safe path in the repository routes through (the facade's
// DB handle and Synchronized wrapper, the sharded index, the benchmark
// harness).
//
// Cracking inverts the usual reader/writer economics — every query may
// physically reorganize the column, so a mutual-exclusion lock is the
// correct naive baseline (the paper leaves finer-grained schemes to future
// work, §6). But cracking also converges: after enough queries the pieces
// around most query bounds are exact cracks or too small to be worth
// splitting, and those queries reorganize nothing. Alvarez et al.
// (arXiv:1404.2034) show that exploiting exactly this is where the payoff
// of parallel adaptive indexing comes from. The Executor therefore probes
// each query with the index's non-mutating CanAnswerWithoutCracking: a
// converged query is answered read-only under RWMutex.RLock, in parallel
// with other converged queries, while a reorganizing query takes the write
// lock. On a converged workload throughput scales with GOMAXPROCS instead
// of being serialized behind one mutex.
//
// Every query path takes a context.Context and honors cancellation at the
// points where a long operation can be abandoned cheaply: before taking a
// lock, after winning a contended write lock (the wait may have outlived
// the caller), and between the ranges of a batch. A canceled context
// never leaves the index in an inconsistent state — cracking is abandoned
// only between queries, never inside one.
package exec

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dberr"
)

// Index is the surface the executor drives: any single-threaded adaptive
// index (core algorithms, hybrids, the updates wrapper). The executor
// assumes exclusive ownership of it.
type Index interface {
	Query(a, b int64) core.Result
	Name() string
	Stats() core.Stats
}

// prober is the optional fast-path surface: fused convergence probe plus
// read-only answer, sharing one pair of cracker-index descents (see
// core.Engine.CanAnswerWithoutCracking for the probe alone). core.Engine
// implements it directly; updates.Index implements it with a
// pending-update check layered on top.
type prober interface {
	TryAnswerReadOnly(a, b int64, dst []int64) (_ []int64, ok bool)
	TryAnswerReadOnlyAggregate(a, b int64) (count int, sum int64, ok bool)
}

// inserter is the optional update surface (the updates wrapper).
type inserter interface {
	Insert(v int64)
	Delete(v int64)
}

// bulkInserter is the optional bulk update surface (updates.Index): a
// whole batch of values merges into the sorted pending queues in one
// pass instead of one binary-search-and-copy per value.
type bulkInserter interface {
	InsertMany(vs []int64)
	DeleteMany(vs []int64)
}

// engineAccessor is satisfied by every engine-backed core index.
type engineAccessor interface {
	Engine() *core.Engine
}

// Range is one half-open value range [Lo, Hi) of a batched query.
type Range struct {
	Lo, Hi int64
}

// Executor makes an Index safe for concurrent use with adaptive read/write
// locking. Results are returned as owned slices, safe to retain.
type Executor struct {
	mu    sync.RWMutex
	inner Index
	p     prober   // nil: every query takes the write lock
	ins   inserter // nil: updates unsupported

	readQueries  atomic.Int64 // queries answered under the shared lock
	writeQueries atomic.Int64 // queries answered under the exclusive lock
}

// New wraps inner. The fast read path engages when inner exposes a
// convergence probe — directly (updates.Index) or through an engine-backed
// core index — and degrades to exclusive locking otherwise (hybrids).
func New(inner Index) *Executor {
	x := &Executor{inner: inner}
	if p, ok := inner.(prober); ok {
		x.p = p
	} else if acc, ok := inner.(engineAccessor); ok {
		x.p = acc.Engine()
	}
	if ins, ok := inner.(inserter); ok {
		x.ins = ins
	}
	return x
}

// Query answers [a, b) and returns an owned slice of the qualifying
// values. Converged queries run under the shared lock.
func (x *Executor) Query(a, b int64) []int64 {
	out, _ := x.QueryCtx(context.Background(), a, b)
	return out
}

// QueryCtx is Query honoring cancellation: it returns ctx.Err() without
// touching the index when the context is already done, and again after
// winning a contended write lock, since the wait may have outlived the
// caller.
func (x *Executor) QueryCtx(ctx context.Context, a, b int64) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if x.p != nil {
		x.mu.RLock()
		out, ok := x.p.TryAnswerReadOnly(a, b, nil)
		x.mu.RUnlock()
		if ok {
			x.readQueries.Add(1)
			return out, nil
		}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	x.writeQueries.Add(1)
	res := x.inner.Query(a, b)
	return res.Materialize(make([]int64, 0, res.Count())), nil
}

// QueryAppendCtx answers [a, b) appending the qualifying values to dst
// and returning it, like append: the caller owns dst before and after.
// With a reused buffer of sufficient capacity a converged query performs
// zero heap allocations end to end — the probe, the piece scans and the
// append all run on caller- or engine-owned memory (see the AllocsPerRun
// regression tests). Reorganizing queries take the write lock and
// materialize into dst with one exact-size grow.
func (x *Executor) QueryAppendCtx(ctx context.Context, a, b int64, dst []int64) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if x.p != nil {
		x.mu.RLock()
		out, ok := x.p.TryAnswerReadOnly(a, b, dst)
		x.mu.RUnlock()
		if ok {
			x.readQueries.Add(1)
			return out, nil
		}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	x.writeQueries.Add(1)
	res := x.inner.Query(a, b)
	return res.Materialize(slices.Grow(dst, res.Count())), nil
}

// QueryAggregate answers [a, b) returning only (count, sum), skipping the
// copy when the caller needs aggregates.
func (x *Executor) QueryAggregate(a, b int64) (count int, sum int64) {
	count, sum, _ = x.QueryAggregateCtx(context.Background(), a, b)
	return count, sum
}

// QueryAggregateCtx is QueryAggregate honoring cancellation like QueryCtx.
func (x *Executor) QueryAggregateCtx(ctx context.Context, a, b int64) (count int, sum int64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if x.p != nil {
		x.mu.RLock()
		count, sum, ok := x.p.TryAnswerReadOnlyAggregate(a, b)
		x.mu.RUnlock()
		if ok {
			x.readQueries.Add(1)
			return count, sum, nil
		}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	x.writeQueries.Add(1)
	res := x.inner.Query(a, b)
	return res.Count(), res.Sum(), nil
}

// QueryBatch answers many ranges with at most two lock acquisitions: one
// shared pass answering every converged range, then — only if some ranges
// still need reorganization — one exclusive pass answering the rest in
// ascending range order (sorted bounds crack the column left to right,
// which keeps piece lookups and memory access local). Results are owned
// slices in the order of the input ranges.
func (x *Executor) QueryBatch(ranges []Range) [][]int64 {
	out, _ := x.QueryBatchCtx(context.Background(), ranges)
	return out
}

// QueryBatchCtx is QueryBatch honoring cancellation. The context is
// re-checked between the ranges of the exclusive pass — the expensive one,
// where each range may crack the column — so a long batch aborts cleanly
// mid-way; on cancellation the partial results are discarded and only the
// error is returned.
// Each result is its own exact-size allocation, so retaining one result
// does not pin the rest of the batch; callers chasing zero allocations
// use QueryBatchInto, whose results deliberately share one reusable
// arena.
func (x *Executor) QueryBatchCtx(ctx context.Context, ranges []Range) ([][]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]int64, len(ranges))
	if len(ranges) == 0 {
		return out, nil
	}
	order := sortedOrder(ranges, make([]int, len(ranges)))
	pending := order[:0] // reuses order's backing array; reads stay ahead
	if x.p != nil {
		reads := int64(0)
		x.mu.RLock()
		for _, i := range order {
			r := ranges[i]
			if res, ok := x.p.TryAnswerReadOnly(r.Lo, r.Hi, nil); ok {
				out[i] = res
				reads++
			} else {
				pending = append(pending, i)
			}
		}
		x.mu.RUnlock()
		x.readQueries.Add(reads)
	} else {
		pending = order
	}
	if len(pending) == 0 {
		return out, nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, i := range pending {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := ranges[i]
		x.writeQueries.Add(1)
		res := x.inner.Query(r.Lo, r.Hi)
		out[i] = res.Materialize(make([]int64, 0, res.Count()))
	}
	return out, nil
}

// sortedOrder fills order with 0..len(ranges)-1 sorted ascending by
// range: sorted bounds crack the column left to right, which keeps piece
// lookups and memory access local during the exclusive pass.
func sortedOrder(ranges []Range, order []int) []int {
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(i, j int) int {
		ri, rj := ranges[i], ranges[j]
		if c := cmp.Compare(ri.Lo, rj.Lo); c != 0 {
			return c
		}
		return cmp.Compare(ri.Hi, rj.Hi)
	})
	return order
}

// BatchBuffer holds the reusable state of QueryBatchInto: the result
// headers, the ordering scratch, the per-range offsets and one value
// arena every result is a subslice of. The zero value is ready for use;
// reusing one across calls makes converged batches allocation-free once
// the buffers have warmed to the workload's sizes.
type BatchBuffer struct {
	out   [][]int64
	order []int
	offs  [][2]int
	vals  []int64
}

// reset readies the buffer for n ranges, keeping every backing array.
func (bb *BatchBuffer) reset(n int) {
	bb.out = resetLen(bb.out, n)
	bb.order = resetLen(bb.order, n)
	bb.offs = resetLen(bb.offs, n)
	bb.vals = bb.vals[:0]
}

func resetLen[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// QueryBatchInto is QueryBatchCtx materializing into bb instead of fresh
// allocations: every result is a capacity-capped subslice of bb's value
// arena, valid until bb's next use (callers retaining results longer copy
// them out, or simply keep the buffer). The returned slice aliases bb.
// Locking and ordering are identical to QueryBatchCtx: one shared pass
// answers every converged range, then — only if some ranges still need
// reorganization — one exclusive pass answers the rest in ascending range
// order (sorted bounds crack the column left to right, which keeps piece
// lookups and memory access local). Results are in input-range order.
func (x *Executor) QueryBatchInto(ctx context.Context, ranges []Range, bb *BatchBuffer) ([][]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bb.reset(len(ranges))
	if len(ranges) == 0 {
		return bb.out, nil
	}
	sortedOrder(ranges, bb.order)

	pending := bb.order[:0] // reuses order's backing array; reads stay ahead
	if x.p != nil {
		reads := int64(0)
		x.mu.RLock()
		for _, i := range bb.order {
			r := ranges[i]
			start := len(bb.vals)
			if res, ok := x.p.TryAnswerReadOnly(r.Lo, r.Hi, bb.vals); ok {
				bb.vals = res
				bb.offs[i] = [2]int{start, len(bb.vals)}
				reads++
			} else {
				pending = append(pending, i)
			}
		}
		x.mu.RUnlock()
		x.readQueries.Add(reads)
	} else {
		pending = bb.order
	}
	if len(pending) > 0 {
		x.mu.Lock()
		for _, i := range pending {
			if err := ctx.Err(); err != nil {
				x.mu.Unlock()
				return nil, err
			}
			r := ranges[i]
			x.writeQueries.Add(1)
			res := x.inner.Query(r.Lo, r.Hi)
			start := len(bb.vals)
			bb.vals = res.Materialize(slices.Grow(bb.vals, res.Count()))
			bb.offs[i] = [2]int{start, len(bb.vals)}
		}
		x.mu.Unlock()
	}
	// Stitch: offsets stay valid across arena growth, so slicing happens
	// only now, after the last append.
	for i, o := range bb.offs {
		bb.out[i] = bb.vals[o[0]:o[1]:o[1]]
	}
	return bb.out, nil
}

// Insert queues value v for insertion (merged into the column by the first
// query whose range covers it). It errors when the wrapped index cannot
// take updates.
func (x *Executor) Insert(v int64) error {
	if x.ins == nil {
		return fmt.Errorf("exec: %s: %w", x.inner.Name(), dberr.ErrUpdatesUnsupported)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ins.Insert(v)
	return nil
}

// Delete queues the removal of one occurrence of v, like Insert.
func (x *Executor) Delete(v int64) error {
	if x.ins == nil {
		return fmt.Errorf("exec: %s: %w", x.inner.Name(), dberr.ErrUpdatesUnsupported)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ins.Delete(v)
	return nil
}

// Op is one element of a write batch: an insert of Value, or — with
// Delete set — the removal of one occurrence of Value.
type Op struct {
	Value  int64
	Delete bool
}

// ApplyOps queues a whole batch of updates under a single exclusive lock
// acquisition — the group-commit apply. Per-value Insert/Delete pays one
// write-lock handshake per value; ApplyOps pays one per batch, and when
// the wrapped index exposes the bulk surface (updates.Index) the batch
// merges into the sorted pending queues in one pass. It returns how long
// the batch waited for the exclusive section (lockWait) and how long it
// held it (apply), so callers can decompose write tail latency; the
// updates-unsupported error is returned before any lock is taken.
func (x *Executor) ApplyOps(ops []Op) (lockWait, apply time.Duration, err error) {
	if len(ops) == 0 {
		return 0, 0, nil
	}
	if x.ins == nil {
		return 0, 0, fmt.Errorf("exec: %s: %w", x.inner.Name(), dberr.ErrUpdatesUnsupported)
	}
	start := time.Now()
	x.mu.Lock()
	locked := time.Now()
	if bulk, ok := x.ins.(bulkInserter); ok {
		// Apply maximal same-kind runs in batch order. Order matters: a
		// delete annihilates a pending insert queued before it, so a
		// batch-wide insert/delete split would resolve an
		// insert-then-delete pair differently from serial application.
		for i := 0; i < len(ops); {
			j := i + 1
			for j < len(ops) && ops[j].Delete == ops[i].Delete {
				j++
			}
			run := make([]int64, 0, j-i)
			for _, op := range ops[i:j] {
				run = append(run, op.Value)
			}
			if ops[i].Delete {
				bulk.DeleteMany(run)
			} else {
				bulk.InsertMany(run)
			}
			i = j
		}
	} else {
		for _, op := range ops {
			if op.Delete {
				x.ins.Delete(op.Value)
			} else {
				x.ins.Insert(op.Value)
			}
		}
	}
	done := time.Now()
	x.mu.Unlock()
	return locked.Sub(start), done.Sub(locked), nil
}

// Pending returns the number of queued, not-yet-merged updates (0 when
// the wrapped index cannot take updates).
func (x *Executor) Pending() int {
	if x.ins == nil {
		return 0
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if p, ok := x.inner.(interface{ Pending() int }); ok {
		return p.Pending()
	}
	return 0
}

// Exclusive runs fn on the wrapped index under the exclusive lock, with
// every concurrent query drained. It is the escape hatch for whole-index
// operations that the executor does not model itself — snapshotting the
// physical state, counting pending updates — and must not be used to
// retain the inner index past fn's return.
func (x *Executor) Exclusive(fn func(inner Index)) {
	x.mu.Lock()
	defer x.mu.Unlock()
	fn(x.inner)
}

// Name identifies the wrapped algorithm.
func (x *Executor) Name() string { return "exec(" + x.inner.Name() + ")" }

// Stats reports the wrapped index's counters. Queries answered on the read
// path never reach the wrapped index, so their count is added back in.
func (x *Executor) Stats() core.Stats {
	x.mu.RLock()
	st := x.inner.Stats()
	x.mu.RUnlock()
	st.Queries += x.readQueries.Load()
	return st
}

// PathStats reports how many queries ran under the shared read lock versus
// the exclusive write lock — the executor's adaptivity, observable.
func (x *Executor) PathStats() (reads, writes int64) {
	return x.readQueries.Load(), x.writeQueries.Load()
}
