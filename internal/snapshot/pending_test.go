package snapshot

import (
	"bytes"
	"math"
	"slices"
	"testing"

	"repro/internal/core"
)

// pendingManifest builds a two-part manifest whose states carry pending
// update queues, for the v3 stream tests.
func pendingManifest(t *testing.T) Manifest {
	t.Helper()
	lowState := crackedState(t, 2000, false)
	for i := range lowState.Values {
		lowState.Values[i] %= 1000 // keep part values inside [0, 1000)
	}
	lowState.Cracks = nil // remapping values invalidates the cracks
	lowState.PendingInserts = []int64{3, 700, 700}
	lowState.PendingDeletes = []int64{42}
	highState := core.SnapshotState{
		Values:         []int64{1500, 1200, 1900},
		PendingInserts: []int64{1000, 1999},
	}
	m := Manifest{Parts: []Part{
		{Lo: math.MinInt64, Hi: 1000, State: lowState},
		{Lo: 1000, Hi: math.MaxInt64, State: highState},
	}}
	if err := m.Validate(); err != nil {
		t.Fatalf("fixture manifest invalid: %v", err)
	}
	return m
}

func TestManifestPendingRoundTrip(t *testing.T) {
	m := pendingManifest(t)
	if m.Pending() != 6 {
		t.Fatalf("fixture pending=%d, want 6", m.Pending())
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pending() != m.Pending() {
		t.Fatalf("round trip pending=%d, want %d", got.Pending(), m.Pending())
	}
	for i := range m.Parts {
		if !slices.Equal(got.Parts[i].State.PendingInserts, m.Parts[i].State.PendingInserts) ||
			!slices.Equal(got.Parts[i].State.PendingDeletes, m.Parts[i].State.PendingDeletes) {
			t.Fatalf("part %d pending queues mismatch: %+v", i, got.Parts[i].State)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped manifest invalid: %v", err)
	}
}

func TestV1WriteRefusesPending(t *testing.T) {
	st := core.SnapshotState{Values: []int64{1, 2}, PendingInserts: []int64{1}}
	if err := Write(&bytes.Buffer{}, st); err == nil {
		t.Fatal("v1 Write accepted pending updates")
	}
}

func TestPendingFreeManifestStaysPreV3(t *testing.T) {
	// Without pending queues the stream must keep its old magic so
	// pre-upgrade readers still load it.
	m := pendingManifest(t)
	for i := range m.Parts {
		m.Parts[i].State.PendingInserts = nil
		m.Parts[i].State.PendingDeletes = nil
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); b[7] != 2 {
		t.Fatalf("pending-free multi-part manifest wrote version %d, want 2", b[7])
	}
}

func TestReadManifestRejectsUnsortedPending(t *testing.T) {
	m := pendingManifest(t)
	m.Parts[1].State.PendingInserts = []int64{1999, 1000}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("unsorted pending queue decoded without error")
	}
}

func TestExtractClampsPending(t *testing.T) {
	m := pendingManifest(t)
	// A range crossing both parts: picks up the in-range slice of each
	// part's queues, concatenated in part order (still sorted — parts
	// ascend in disjoint ranges).
	st, err := m.Extract(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(st.PendingInserts, []int64{700, 700, 1000}) {
		t.Fatalf("extracted inserts %v", st.PendingInserts)
	}
	if len(st.PendingDeletes) != 0 {
		t.Fatalf("extracted deletes %v", st.PendingDeletes)
	}
	// The complement ranges hold the rest.
	low, err := m.Extract(math.MinInt64, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(low.PendingInserts, []int64{3}) || !slices.Equal(low.PendingDeletes, []int64{42}) {
		t.Fatalf("low extract queues %v / %v", low.PendingInserts, low.PendingDeletes)
	}
	high, err := m.Extract(1500, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(high.PendingInserts, []int64{1999}) {
		t.Fatalf("high extract inserts %v", high.PendingInserts)
	}
	// The top edge: hi == MaxInt64 absorbs its own bound, like part
	// ranges do.
	edge, err := m.Extract(1999, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(edge.PendingInserts, []int64{1999}) {
		t.Fatalf("edge extract inserts %v", edge.PendingInserts)
	}
}
