package snapshot

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

// crackedState builds a realistic snapshot: a cracked index after a batch
// of queries.
func crackedState(t *testing.T, n int, rowIDs bool) core.SnapshotState {
	t.Helper()
	ix := core.NewCrack(xrand.New(1).Perm(n), core.Options{Seed: 2, TrackRowIDs: rowIDs})
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		a := rng.Int63n(int64(n) - 10)
		ix.Query(a, a+10)
	}
	return ix.Engine().Snapshot()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, rowIDs := range []bool{false, true} {
		st := crackedState(t, 5000, rowIDs)
		var buf bytes.Buffer
		if err := Write(&buf, st); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Values) != len(st.Values) || len(got.Cracks) != len(st.Cracks) {
			t.Fatalf("round trip sizes: %d/%d values, %d/%d cracks",
				len(got.Values), len(st.Values), len(got.Cracks), len(st.Cracks))
		}
		for i := range st.Values {
			if got.Values[i] != st.Values[i] {
				t.Fatalf("value %d mismatch", i)
			}
		}
		for i := range st.Cracks {
			if got.Cracks[i] != st.Cracks[i] {
				t.Fatalf("crack %d mismatch", i)
			}
		}
		if rowIDs {
			if got.RowIDs == nil {
				t.Fatal("row ids lost")
			}
			for i := range st.RowIDs {
				if got.RowIDs[i] != st.RowIDs[i] {
					t.Fatalf("row id %d mismatch", i)
				}
			}
		} else if got.RowIDs != nil {
			t.Fatal("row ids materialized from nothing")
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round-tripped snapshot invalid: %v", err)
		}
	}
}

func TestRestoreResumesAdaptation(t *testing.T) {
	const n = 20000
	st := crackedState(t, n, false)
	ix, err := core.Restore(st, "dd1r", core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Cracks; got != len(st.Cracks) {
		t.Fatalf("restored index has %d cracks, snapshot had %d", got, len(st.Cracks))
	}
	// A query inside an already-cracked region must be cheap immediately.
	before := ix.Stats().Touched
	ix.Query(st.Cracks[0].Key, st.Cracks[1].Key)
	if d := ix.Stats().Touched - before; d > int64(n)/2 {
		t.Fatalf("restored index rescanned %d tuples; adaptation was lost", d)
	}
	// And results stay correct.
	res := ix.Query(100, 300)
	if res.Count() != 200 {
		t.Fatalf("count = %d, want 200", res.Count())
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	st := crackedState(t, 1000, false)
	// Corrupt a crack's position so a value lands on the wrong side.
	bad := st
	bad.Cracks = append([]core.CrackEntry(nil), st.Cracks...)
	if len(bad.Cracks) < 2 {
		t.Skip("need at least 2 cracks")
	}
	bad.Cracks[0], bad.Cracks[1] = core.CrackEntry{Key: bad.Cracks[1].Key, Pos: bad.Cracks[1].Pos},
		core.CrackEntry{Key: bad.Cracks[0].Key, Pos: bad.Cracks[0].Pos}
	if _, err := core.Restore(bad, "crack", core.Options{}); err == nil {
		t.Fatal("unordered cracks accepted")
	}

	bad2 := st
	bad2.Cracks = append([]core.CrackEntry(nil), st.Cracks...)
	bad2.Cracks[0].Pos = len(st.Values) // every value now "violates" it
	if _, err := core.Restore(bad2, "crack", core.Options{}); err == nil {
		t.Fatal("invariant-violating crack accepted")
	}
}

func TestReadRejectsCorruptStream(t *testing.T) {
	st := crackedState(t, 500, true)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a byte in the middle: checksum must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := Read(bytes.NewReader(flipped)); err == nil {
		t.Fatal("bit flip not detected")
	}

	// Truncate: must error, not hang or panic.
	for _, cut := range []int{1, 8, 9, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Wrong magic.
	garbage := append([]byte("NOTASNAP"), raw[8:]...)
	if _, err := Read(bytes.NewReader(garbage)); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := crackedState(t, 2000, true)
	path := filepath.Join(dir, "index.crks")
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 2000 || len(got.Cracks) != len(st.Cracks) {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.crks")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, core.SnapshotState{}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 0 || len(got.Cracks) != 0 || got.RowIDs != nil {
		t.Fatal("empty snapshot round trip wrong")
	}
}
