package snapshot

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dberr"
)

// Part is one contiguous piece of a database snapshot: the engine state
// of one shard plus the half-open value range [Lo, Hi) it owns. An
// unsharded snapshot is a single part spanning the whole int64 domain
// (Lo = math.MinInt64, Hi = math.MaxInt64; by convention the top shard
// also absorbs Hi itself, mirroring exec.Sharded's routing).
type Part struct {
	Lo, Hi int64
	State  core.SnapshotState
}

// Manifest is the multi-part physical state of a whole database: parts in
// ascending value order whose ranges tile the domain. It is the unit
// DB.Snapshot produces and OpenSnapshot consumes, and it can be re-cut
// along new shard bounds (Reshard) without losing cracks — splitting a
// shard splits its engine state at the bound, merging shards turns the
// old boundaries into cracks.
//
// A manifest takes exactly one of two forms. A single-column manifest
// fills Parts; a table manifest fills Columns, one named part list per
// selection column (see TableColumn), and leaves Parts empty. The
// aggregate accessors (Rows, Pieces, Pending) and Validate handle both;
// the range surgery (Merged, Extract, Reshard) is single-column only —
// callers re-cut a table one column at a time through Column.
type Manifest struct {
	Parts   []Part
	Columns []TableColumn
}

// Single wraps one engine state as a whole-domain manifest. Cracks at the
// very edges of the domain (keys MinInt64/MaxInt64, produced by unbounded
// predicates) are dropped — their positions are necessarily 0 or len, so
// they carry no refinement, and dropping them keeps every manifest key
// strictly inside its part's range.
func Single(st core.SnapshotState) Manifest {
	return Manifest{Parts: []Part{ClampedPart(math.MinInt64, math.MaxInt64, st)}}
}

// ClampedPart builds a part for a shard owning [lo, hi), dropping cracks
// whose keys fall outside (lo, hi). Live shards accumulate such cracks —
// queries wider than the shard crack at their original bounds — but they
// carry no information (their positions are necessarily 0 or len), and
// dropping them is what makes parts concatenable: every retained key is
// strictly inside the part's range. Pending-update queues are clamped to
// the values the range owns for the same reason (value-routed updates
// never queue outside their shard's range, so this is normalization, not
// loss).
func ClampedPart(lo, hi int64, st core.SnapshotState) Part {
	keep := st.Cracks[:0:0]
	for _, c := range st.Cracks {
		if c.Key > lo && c.Key < hi {
			keep = append(keep, c)
		}
	}
	st.Cracks = keep
	st.PendingInserts = clampSorted(st.PendingInserts, lo, hi)
	st.PendingDeletes = clampSorted(st.PendingDeletes, lo, hi)
	return Part{Lo: lo, Hi: hi, State: st}
}

// clampSorted returns the sub-slice copy of sorted queue q whose values
// the range [lo, hi) owns (covers semantics: the top of the domain
// absorbs its own bound). nil when nothing survives.
func clampSorted(q []int64, lo, hi int64) []int64 {
	a := sort.Search(len(q), func(i int) bool { return q[i] >= lo })
	b := len(q)
	if hi != math.MaxInt64 {
		b = sort.Search(len(q), func(i int) bool { return q[i] >= hi })
	}
	if a >= b {
		return nil
	}
	if a == 0 && b == len(q) {
		return q
	}
	return append([]int64(nil), q[a:b]...)
}

// Rows returns the total tuple count across parts. For a table manifest
// it returns the largest column's count — columns legitimately diverge
// under per-column updates, and "rows" as a scalar means the table's
// serving width, not a sum over attributes.
func (m Manifest) Rows() int {
	if m.IsTable() {
		rows := 0
		for _, c := range m.Columns {
			rows = max(rows, (Manifest{Parts: c.Parts}).Rows())
		}
		return rows
	}
	total := 0
	for _, p := range m.Parts {
		total += len(p.State.Values)
	}
	return total
}

// Pieces returns the total piece count across parts (cracks + 1 per
// part) — the refinement a restore resumes with. Table manifests sum
// over columns.
func (m Manifest) Pieces() int {
	if m.IsTable() {
		total := 0
		for _, c := range m.Columns {
			total += (Manifest{Parts: c.Parts}).Pieces()
		}
		return total
	}
	total := 0
	for _, p := range m.Parts {
		total += len(p.State.Cracks) + 1
	}
	return total
}

// Pending returns the total captured pending-update count across parts
// (and, for table manifests, across columns).
func (m Manifest) Pending() int {
	if m.IsTable() {
		total := 0
		for _, c := range m.Columns {
			total += (Manifest{Parts: c.Parts}).Pending()
		}
		return total
	}
	total := 0
	for _, p := range m.Parts {
		total += p.State.Pending()
	}
	return total
}

// covers reports whether value v belongs to the range [lo, hi), with the
// top of the domain (hi == math.MaxInt64) absorbing its own bound — the
// same routing rule exec.Sharded uses, so the last shard owns MaxInt64.
func covers(lo, hi, v int64) bool {
	return v >= lo && (v < hi || hi == math.MaxInt64)
}

// Validate checks manifest-level consistency: at least one part, ranges
// tiling the domain in ascending order, every part's state internally
// valid with crack keys inside the part's range, and every value owned by
// its part. The per-part checks delegate to core.SnapshotState.Validate;
// the range checks are what make merging sound (a value outside its
// shard's range would silently break the boundary cracks Merged and
// Reshard introduce).
func (m Manifest) Validate() error {
	if m.IsTable() {
		return m.validateTable()
	}
	if len(m.Parts) == 0 {
		return fmt.Errorf("snapshot: empty manifest: %w", ErrCorrupt)
	}
	if m.Parts[0].Lo != math.MinInt64 {
		return fmt.Errorf("snapshot: first part starts at %d, not the domain floor: %w", m.Parts[0].Lo, ErrCorrupt)
	}
	if m.Parts[len(m.Parts)-1].Hi != math.MaxInt64 {
		return fmt.Errorf("snapshot: last part ends at %d, not the domain ceiling: %w", m.Parts[len(m.Parts)-1].Hi, ErrCorrupt)
	}
	for i, p := range m.Parts {
		if i > 0 && p.Lo != m.Parts[i-1].Hi {
			return fmt.Errorf("snapshot: part %d starts at %d, previous ended at %d: %w", i, p.Lo, m.Parts[i-1].Hi, ErrCorrupt)
		}
		if p.Lo >= p.Hi {
			return fmt.Errorf("snapshot: part %d has empty range [%d, %d): %w", i, p.Lo, p.Hi, ErrCorrupt)
		}
		if err := p.State.Validate(); err != nil {
			return fmt.Errorf("snapshot: part %d: %w", i, err)
		}
		for _, c := range p.State.Cracks {
			if c.Key <= p.Lo || c.Key >= p.Hi {
				return fmt.Errorf("snapshot: part %d crack key %d outside (%d, %d): %w", i, c.Key, p.Lo, p.Hi, ErrCorrupt)
			}
		}
		for j, v := range p.State.Values {
			if !covers(p.Lo, p.Hi, v) {
				return fmt.Errorf("snapshot: part %d value %d at %d outside [%d, %d): %w", i, v, j, p.Lo, p.Hi, ErrCorrupt)
			}
		}
		for _, q := range [][]int64{p.State.PendingInserts, p.State.PendingDeletes} {
			for j, v := range q {
				if !covers(p.Lo, p.Hi, v) {
					return fmt.Errorf("snapshot: part %d pending value %d at %d outside [%d, %d): %w", i, v, j, p.Lo, p.Hi, ErrCorrupt)
				}
			}
		}
	}
	return nil
}

// Merged flattens the manifest into one contiguous engine state: parts
// concatenate in ascending order and each interior shard boundary becomes
// a crack (all values left of it are smaller — the boundary was a
// partition of the value domain), so no refinement is lost. It fails with
// dberr.ErrSnapshotUnsupported when several parts carry row ids (row ids
// are shard-local; concatenating them would alias rows).
func (m Manifest) Merged() (core.SnapshotState, error) {
	if m.IsTable() {
		return core.SnapshotState{}, fmt.Errorf(
			"snapshot: table manifest has no single merged state (pick a column first): %w",
			dberr.ErrSnapshotUnsupported)
	}
	return m.slice(math.MinInt64, math.MaxInt64)
}

// Extract returns the engine state covering the value range [lo, hi)
// across parts, cracks and pending updates included — the donor side of a
// live shard migration: the extracted state restores into a warm index on
// a joining node, while the rest of the manifest is untouched.
func (m Manifest) Extract(lo, hi int64) (core.SnapshotState, error) {
	if m.IsTable() {
		return core.SnapshotState{}, fmt.Errorf(
			"snapshot: extracting a range from a table manifest (pick a column first): %w",
			dberr.ErrSnapshotUnsupported)
	}
	if lo >= hi {
		return core.SnapshotState{}, fmt.Errorf("snapshot: extract range [%d, %d) is empty", lo, hi)
	}
	return m.slice(lo, hi)
}

// Reshard re-cuts the manifest along the given interior bounds (strictly
// ascending; k-1 bounds yield k parts). Cracks survive the re-cut: a
// bound splitting a shard splits its state at the bound (filtering the one
// piece the bound lands in), and shards merging into one part keep their
// old boundaries as cracks.
func (m Manifest) Reshard(bounds []int64) (Manifest, error) {
	if m.IsTable() {
		return Manifest{}, fmt.Errorf(
			"snapshot: resharding a table manifest (re-cut one column at a time): %w",
			dberr.ErrSnapshotUnsupported)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return Manifest{}, fmt.Errorf("snapshot: reshard bounds not ascending at %d (%d after %d)", i, bounds[i], bounds[i-1])
		}
	}
	out := Manifest{Parts: make([]Part, 0, len(bounds)+1)}
	lo := int64(math.MinInt64)
	for i := 0; i <= len(bounds); i++ {
		hi := int64(math.MaxInt64)
		if i < len(bounds) {
			hi = bounds[i]
		}
		st, err := m.slice(lo, hi)
		if err != nil {
			return Manifest{}, err
		}
		out.Parts = append(out.Parts, Part{Lo: lo, Hi: hi, State: st})
		lo = hi
	}
	return out, nil
}

// slice extracts the engine state covering the value range [lo, hi)
// across parts: per-part extraction preserving every crack strictly
// inside the range, with source part boundaries becoming cracks when the
// range spans several parts.
func (m Manifest) slice(lo, hi int64) (core.SnapshotState, error) {
	var states []core.SnapshotState
	var boundaries []int64 // the source bound preceding states[i], i > 0
	for _, p := range m.Parts {
		if p.Hi <= lo && p.Hi != math.MaxInt64 || p.Lo >= hi {
			continue
		}
		if len(states) > 0 {
			boundaries = append(boundaries, p.Lo)
		}
		states = append(states, extractPart(p, lo, hi))
	}
	if len(states) == 0 {
		return core.SnapshotState{}, nil
	}
	if len(states) == 1 {
		return states[0], nil
	}
	total := 0
	cracks := len(boundaries)
	for _, st := range states {
		if st.RowIDs != nil {
			return core.SnapshotState{}, fmt.Errorf(
				"snapshot: merging %d shards with row-id payloads (row ids are shard-local): %w",
				len(states), dberr.ErrSnapshotUnsupported)
		}
		total += len(st.Values)
		cracks += len(st.Cracks)
	}
	out := core.SnapshotState{
		Values: make([]int64, 0, total),
		Cracks: make([]core.CrackEntry, 0, cracks),
	}
	for i, st := range states {
		if i > 0 {
			out.Cracks = append(out.Cracks, core.CrackEntry{Key: boundaries[i-1], Pos: len(out.Values)})
		}
		off := len(out.Values)
		out.Values = append(out.Values, st.Values...)
		for _, c := range st.Cracks {
			out.Cracks = append(out.Cracks, core.CrackEntry{Key: c.Key, Pos: off + c.Pos})
		}
		// Parts ascend in disjoint value ranges and each queue holds only
		// values its part owns, so concatenation stays sorted.
		out.PendingInserts = append(out.PendingInserts, st.PendingInserts...)
		out.PendingDeletes = append(out.PendingDeletes, st.PendingDeletes...)
	}
	return out, nil
}

// extractPart returns the sub-state of part p covering [lo, hi),
// preserving every crack strictly inside the (clamped) range. Only the
// two pieces the clamped bounds land in are filtered; interior pieces
// copy wholesale, so crack positions shift by one fixed offset.
func extractPart(p Part, lo, hi int64) core.SnapshotState {
	if p.Lo > lo {
		lo = p.Lo
	}
	if p.Hi < hi {
		hi = p.Hi
	}
	st := p.State
	n := len(st.Values)
	if lo == p.Lo && hi == p.Hi {
		return st // whole part; nothing to cut
	}
	pendIns := clampSorted(st.PendingInserts, lo, hi)
	pendDel := clampSorted(st.PendingDeletes, lo, hi)
	cracks := st.Cracks
	// first crack with Key > lo: values before its predecessor's position
	// are < lo and drop wholesale.
	a := sort.Search(len(cracks), func(i int) bool { return cracks[i].Key > lo })
	// first crack with Key >= hi: values from its position on are >= hi
	// and drop wholesale.
	b := sort.Search(len(cracks), func(i int) bool { return cracks[i].Key >= hi })
	posA := 0
	if a > 0 {
		posA = cracks[a-1].Pos
	}
	posB := n
	if b < len(cracks) {
		posB = cracks[b].Pos
	}
	out := core.SnapshotState{PendingInserts: pendIns, PendingDeletes: pendDel}
	appendFiltered := func(from, to int) {
		for i := from; i < to; i++ {
			if covers(lo, hi, st.Values[i]) {
				out.Values = append(out.Values, st.Values[i])
				if st.RowIDs != nil {
					out.RowIDs = append(out.RowIDs, st.RowIDs[i])
				}
			}
		}
	}
	if st.RowIDs != nil {
		out.RowIDs = make([]uint32, 0, posB-posA)
	}
	out.Values = make([]int64, 0, posB-posA)
	if a >= b {
		// No crack strictly inside (lo, hi): one piece spans both bounds.
		appendFiltered(posA, posB)
		return out
	}
	// Piece spanning lo: keep values >= lo (all are < cracks[a].Key < hi).
	appendFiltered(posA, cracks[a].Pos)
	// Interior pieces [cracks[a].Pos, cracks[b-1].Pos) copy wholesale;
	// every interior crack keeps its offset from cracks[a].Pos.
	off := len(out.Values) - cracks[a].Pos
	out.Values = append(out.Values, st.Values[cracks[a].Pos:cracks[b-1].Pos]...)
	if st.RowIDs != nil {
		out.RowIDs = append(out.RowIDs, st.RowIDs[cracks[a].Pos:cracks[b-1].Pos]...)
	}
	for i := a; i < b; i++ {
		out.Cracks = append(out.Cracks, core.CrackEntry{Key: cracks[i].Key, Pos: off + cracks[i].Pos})
	}
	// Piece spanning hi: keep values < hi (all are >= cracks[b-1].Key > lo).
	appendFiltered(cracks[b-1].Pos, posB)
	return out
}

// SplitBounds picks k-1 interior bounds for resharding into k parts,
// aiming at even tuple counts. It prefers existing piece boundaries
// (crack keys and old shard bounds): cutting along them costs nothing and
// preserves the piece profile exactly. When the manifest has too few
// cracks for that — or the crack-aligned cut is badly unbalanced — it
// falls back to sampling values, like a cold sharded build.
func (m Manifest) SplitBounds(k int, seed uint64) []int64 {
	total := m.Rows()
	if k <= 1 || total == 0 {
		return nil
	}
	type cut struct {
		key int64
		pos int // cumulative tuple position of the cut
	}
	var cuts []cut
	off := 0
	for i, p := range m.Parts {
		if i > 0 {
			cuts = append(cuts, cut{key: p.Lo, pos: off})
		}
		for _, c := range p.State.Cracks {
			cuts = append(cuts, cut{key: c.Key, pos: off + c.Pos})
		}
		off += len(p.State.Values)
	}
	bounds := make([]int64, 0, k-1)
	ci := 0
	prevPos := 0
	maxShard := 0
	for i := 1; i < k; i++ {
		target := i * total / k
		for ci < len(cuts) && cuts[ci].pos < target {
			ci++
		}
		// Candidates flanking the target; keys must stay ascending.
		best := -1
		for _, cand := range []int{ci - 1, ci} {
			if cand < 0 || cand >= len(cuts) {
				continue
			}
			if len(bounds) > 0 && cuts[cand].key <= bounds[len(bounds)-1] {
				continue
			}
			if best < 0 || abs(cuts[cand].pos-target) < abs(cuts[best].pos-target) {
				best = cand
			}
		}
		if best < 0 {
			continue
		}
		bounds = append(bounds, cuts[best].key)
		maxShard = max(maxShard, cuts[best].pos-prevPos)
		prevPos = cuts[best].pos
		ci = best + 1
	}
	maxShard = max(maxShard, total-prevPos)
	// A converged snapshot has cracks everywhere and the aligned cut is
	// near-even; a young one does not — fall back to sampled bounds then.
	if len(bounds) < k-1 || maxShard > 3*total/k {
		return m.sampledBounds(k, seed)
	}
	return bounds
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// sampledBounds picks k-1 bounds by strided value sampling across parts,
// mirroring the cold sharded build's strategy (exec.shardBounds).
func (m Manifest) sampledBounds(k int, seed uint64) []int64 {
	total := m.Rows()
	if k <= 1 || total == 0 {
		return nil
	}
	const perShard = 32
	sampleSize := min(k*perShard, total)
	stride := max(total/sampleSize, 1)
	sample := make([]int64, 0, sampleSize)
	next := int(seed % uint64(stride))
	off := 0
	for _, p := range m.Parts {
		for next < off+len(p.State.Values) && len(sample) < sampleSize {
			sample = append(sample, p.State.Values[next-off])
			next += stride
		}
		off += len(p.State.Values)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	bounds := make([]int64, 0, k-1)
	for i := 1; i < k; i++ {
		b := sample[i*len(sample)/k]
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}
