package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// tableManifest builds a realistic two-column table manifest: each
// column its own permutation of [0, n), value-range partitioned into k
// parts and cracked — exactly the shape Shared.Snapshot captures for a
// sharded table.
func tableManifest(t testing.TB, n int64, k int) Manifest {
	t.Helper()
	m := Table([]TableColumn{
		{Name: "a", Parts: shardedManifest(t, n, k, false).Parts},
		{Name: "b", Parts: shardedManifest(t, n, 1, false).Parts},
	})
	if err := m.Validate(); err != nil {
		t.Fatalf("built table manifest invalid: %v", err)
	}
	return m
}

func TestTableManifestRoundTrip(t *testing.T) {
	m := tableManifest(t, 500, 3)
	if !m.IsTable() {
		t.Fatal("IsTable() = false")
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !got.IsTable() || len(got.Columns) != len(m.Columns) {
		t.Fatalf("decoded %d columns (table=%v), want %d", len(got.Columns), got.IsTable(), len(m.Columns))
	}
	for i, c := range m.Columns {
		d := got.Columns[i]
		if d.Name != c.Name || len(d.Parts) != len(c.Parts) {
			t.Fatalf("column %d: name %q parts %d, want %q/%d", i, d.Name, len(d.Parts), c.Name, len(c.Parts))
		}
		for j := range c.Parts {
			w, g := c.Parts[j].State, d.Parts[j].State
			if len(g.Values) != len(w.Values) || len(g.Cracks) != len(w.Cracks) ||
				g.Pending() != w.Pending() {
				t.Fatalf("column %q part %d shape changed across the wire", c.Name, j)
			}
		}
	}
	if m.Rows() != got.Rows() || m.Pieces() != got.Pieces() {
		t.Fatalf("rows/pieces changed: %d/%d -> %d/%d", m.Rows(), m.Pieces(), got.Rows(), got.Pieces())
	}
	// The single-column accessor feeds restore paths; both columns must
	// come back addressable.
	for _, name := range []string{"a", "b"} {
		col, ok := got.Column(name)
		if !ok || len(col.Parts) == 0 {
			t.Fatalf("column %q missing after round trip", name)
		}
	}
}

// TestTableManifestCorrupt attacks the encoded table stream: any
// truncation must surface an error wrapping ErrCorrupt (the sentinel the
// facade re-exports as ErrSnapshotCorrupt) — never a panic, never a
// silently short manifest.
func TestTableManifestCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, tableManifest(t, 400, 2)); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 1; cut < 16; cut++ {
		trunc := enc[:len(enc)*cut/16]
		if _, err := ReadManifest(bytes.NewReader(trunc)); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", cut, 16)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d/%d: error does not wrap ErrCorrupt: %v", cut, 16, err)
		}
	}
	// A decoded-then-mangled manifest must fail semantic validation: out
	// of order column names and a stray single-column part alongside
	// columns are both structural corruption.
	m := tableManifest(t, 100, 1)
	swapped := Manifest{Columns: []TableColumn{m.Columns[1], m.Columns[0]}}
	if err := swapped.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order columns: %v does not wrap ErrCorrupt", err)
	}
	mixed := Manifest{Columns: m.Columns, Parts: shardedManifest(t, 50, 1, false).Parts}
	if err := mixed.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("columns+parts mix: %v does not wrap ErrCorrupt", err)
	}
}
