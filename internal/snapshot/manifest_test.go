package snapshot

import (
	"bytes"
	"errors"
	"math"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/xrand"
)

// shardedManifest builds a realistic multi-part manifest: a permutation
// of [0, n) value-range partitioned into k parts, each cracked by a batch
// of queries (some crossing part bounds, so clamping is exercised).
func shardedManifest(t testing.TB, n int64, k int, rowIDs bool) Manifest {
	t.Helper()
	vals := xrand.New(1).Perm(int(n))
	bounds := make([]int64, 0, k-1)
	for i := 1; i < k; i++ {
		bounds = append(bounds, int64(i)*n/int64(k))
	}
	buckets := make([][]int64, k)
	for _, v := range vals {
		b := 0
		for b < len(bounds) && v >= bounds[b] {
			b++
		}
		buckets[b] = append(buckets[b], v)
	}
	m := Manifest{}
	lo := int64(math.MinInt64)
	rng := xrand.New(3)
	for i, b := range buckets {
		hi := int64(math.MaxInt64)
		if i < len(bounds) {
			hi = bounds[i]
		}
		ix := core.NewCrack(b, core.Options{Seed: 2, TrackRowIDs: rowIDs})
		for q := 0; q < 30; q++ {
			// Query bounds over the whole domain: many land outside this
			// part's range, leaving the edge cracks ClampedPart must drop.
			a := rng.Int63n(n - 10)
			ix.Query(a, a+10)
		}
		m.Parts = append(m.Parts, ClampedPart(lo, hi, ix.Engine().Snapshot()))
		lo = hi
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("built manifest invalid: %v", err)
	}
	return m
}

// countInRange is the closed-form oracle for permutation data: how many
// of 0..n-1 fall in [lo, hi).
func countInRange(st core.SnapshotState, lo, hi int64) int {
	c := 0
	for _, v := range st.Values {
		if v >= lo && v < hi {
			c++
		}
	}
	return c
}

func TestManifestRoundTrip(t *testing.T) {
	for _, rowIDs := range []bool{false, true} {
		m := shardedManifest(t, 6000, 4, rowIDs)
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadManifest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Parts) != len(m.Parts) {
			t.Fatalf("round trip %d parts, want %d", len(got.Parts), len(m.Parts))
		}
		for i := range m.Parts {
			w, g := m.Parts[i], got.Parts[i]
			if g.Lo != w.Lo || g.Hi != w.Hi {
				t.Fatalf("part %d bounds [%d,%d), want [%d,%d)", i, g.Lo, g.Hi, w.Lo, w.Hi)
			}
			if !slices.Equal(g.State.Values, w.State.Values) || !slices.Equal(g.State.Cracks, w.State.Cracks) {
				t.Fatalf("part %d state mismatch", i)
			}
			if rowIDs && !slices.Equal(g.State.RowIDs, w.State.RowIDs) {
				t.Fatalf("part %d row ids mismatch", i)
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round-tripped manifest invalid: %v", err)
		}
	}
}

func TestSinglePartManifestWritesV1(t *testing.T) {
	m := shardedManifest(t, 2000, 1, false)
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	if got := [8]byte(buf.Bytes()[:8]); got != magicV1 {
		t.Fatalf("single-part manifest wrote magic %x, want v1", got)
	}
	// ...and the v1 single-state reader loads it directly.
	st, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Values) != 2000 {
		t.Fatalf("v1 reload has %d values", len(st.Values))
	}
}

func TestMergedTurnsBoundsIntoCracks(t *testing.T) {
	const n = 6000
	m := shardedManifest(t, n, 4, false)
	st, err := m.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("merged state invalid: %v", err)
	}
	if len(st.Values) != n {
		t.Fatalf("merged %d values, want %d", len(st.Values), n)
	}
	// Every part crack survives, plus one crack per interior boundary.
	want := len(m.Parts) - 1
	for _, p := range m.Parts {
		want += len(p.State.Cracks)
	}
	if len(st.Cracks) != want {
		t.Fatalf("merged has %d cracks, want %d", len(st.Cracks), want)
	}
	// The old shard bounds are cracks now.
	keys := make(map[int64]bool, len(st.Cracks))
	for _, c := range st.Cracks {
		keys[c.Key] = true
	}
	for _, p := range m.Parts[1:] {
		if !keys[p.Lo] {
			t.Fatalf("shard bound %d did not become a crack", p.Lo)
		}
	}
	// And the merged state restores into a working index.
	ix, err := core.Restore(st, "crack", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Query(100, 300).Count(); got != 200 {
		t.Fatalf("restored merged count = %d, want 200", got)
	}
}

func TestReshardPreservesStateAcrossCuts(t *testing.T) {
	const n = 6000
	src := shardedManifest(t, n, 3, false)
	srcPieces := src.Pieces()
	for _, k := range []int{1, 2, 3, 5, 8} {
		out, err := src.Reshard(src.SplitBounds(k, 7))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("k=%d: resharded manifest invalid: %v", k, err)
		}
		if out.Rows() != n {
			t.Fatalf("k=%d: %d rows, want %d", k, out.Rows(), n)
		}
		// Refinement is never lost: boundary cuts only split pieces (or
		// reuse existing cracks), so the piece count cannot shrink below
		// the source's (modulo the zero-size edge pieces clamping drops).
		if out.Pieces() < srcPieces-2*len(src.Parts) {
			t.Fatalf("k=%d: pieces %d < source %d; refinement lost", k, out.Pieces(), srcPieces)
		}
		// The value multiset per range is intact (spot-check ranges).
		for _, r := range [][2]int64{{0, 100}, {1990, 2010}, {n - 100, n}} {
			got := 0
			for _, p := range out.Parts {
				got += countInRange(p.State, r[0], r[1])
			}
			if got != int(r[1]-r[0]) {
				t.Fatalf("k=%d: range [%d,%d) has %d values", k, r[0], r[1], got)
			}
		}
	}
}

func TestReshardAtExistingBoundsKeepsParts(t *testing.T) {
	src := shardedManifest(t, 4000, 4, true) // row ids survive same-bound cuts
	bounds := make([]int64, 0, 3)
	for _, p := range src.Parts[1:] {
		bounds = append(bounds, p.Lo)
	}
	out, err := src.Reshard(bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Parts {
		w, g := src.Parts[i], out.Parts[i]
		if !slices.Equal(g.State.Values, w.State.Values) ||
			!slices.Equal(g.State.Cracks, w.State.Cracks) ||
			!slices.Equal(g.State.RowIDs, w.State.RowIDs) {
			t.Fatalf("part %d changed under an identity re-cut", i)
		}
	}
}

func TestMergeRefusesShardLocalRowIDs(t *testing.T) {
	src := shardedManifest(t, 2000, 2, true)
	if _, err := src.Merged(); !errors.Is(err, dberr.ErrSnapshotUnsupported) {
		t.Fatalf("merging row-id shards: err = %v", err)
	}
	if _, err := src.Reshard([]int64{123}); !errors.Is(err, dberr.ErrSnapshotUnsupported) {
		t.Fatalf("resharding row-id shards across bounds: err = %v", err)
	}
}

func TestManifestValidateRejects(t *testing.T) {
	good := shardedManifest(t, 2000, 2, false)
	check := func(name string, mutate func(m *Manifest)) {
		t.Helper()
		m := Manifest{Parts: make([]Part, len(good.Parts))}
		copy(m.Parts, good.Parts)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, dberr.ErrSnapshotCorrupt) {
			// Per-part state errors come from core and are acceptable too;
			// manifest-level ones must carry the sentinel.
			t.Logf("%s: non-sentinel error %v", name, err)
		}
	}
	check("empty", func(m *Manifest) { m.Parts = nil })
	check("gap between parts", func(m *Manifest) { m.Parts[1].Lo++ })
	check("floor not MinInt64", func(m *Manifest) { m.Parts[0].Lo = 0 })
	check("ceiling not MaxInt64", func(m *Manifest) { m.Parts[1].Hi = 5000 })
	check("value outside part range", func(m *Manifest) {
		st := m.Parts[0].State
		st.Values = append([]int64(nil), st.Values...)
		st.Values[0] = m.Parts[0].Hi + 10
		m.Parts[0] = Part{Lo: m.Parts[0].Lo, Hi: m.Parts[0].Hi, State: st}
	})
	check("crack key outside part range", func(m *Manifest) {
		st := m.Parts[0].State
		st.Cracks = append([]core.CrackEntry(nil), st.Cracks...)
		st.Cracks[len(st.Cracks)-1] = core.CrackEntry{Key: m.Parts[0].Hi + 1, Pos: len(st.Values)}
		m.Parts[0] = Part{Lo: m.Parts[0].Lo, Hi: m.Parts[0].Hi, State: st}
	})
}

func TestManifestStreamCorruption(t *testing.T) {
	m := shardedManifest(t, 1500, 3, false)
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bit flip anywhere: checksum catches it, sentinel reported.
	for _, at := range []int{9, len(raw) / 3, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[at] ^= 0x40
		if _, err := ReadManifest(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", at, err)
		}
	}
	// Truncation at every interesting boundary.
	for _, cut := range []int{0, 4, 8, 12, 30, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadManifest(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// A version bump must be rejected, not misparsed.
	bumped := append([]byte(nil), raw...)
	bumped[7] = 3
	if _, err := ReadManifest(bytes.NewReader(bumped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version bump: err = %v, want ErrCorrupt", err)
	}
	// An absurd part count fails fast on the cap, before any allocation.
	huge := append([]byte(nil), raw[:8]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadManifest(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge part count: err = %v, want ErrCorrupt", err)
	}
}

func TestSplitBoundsBalancesAndOrders(t *testing.T) {
	m := shardedManifest(t, 8000, 2, false)
	for _, k := range []int{2, 4, 9} {
		bounds := m.SplitBounds(k, 11)
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("k=%d: bounds not ascending: %v", k, bounds)
			}
		}
		out, err := m.Reshard(bounds)
		if err != nil {
			t.Fatal(err)
		}
		// Bounds must cut into reasonably even shards (the fallback
		// sampler guarantees this even with no cracks to align to).
		for i, p := range out.Parts {
			if len(p.State.Values) > 3*8000/k+1 {
				t.Fatalf("k=%d: shard %d holds %d of 8000 tuples", k, i, len(p.State.Values))
			}
		}
	}
}
