// Package snapshot serializes the physical state of a cracking index —
// the (partially reorganized) column plus its crack set — to a compact
// binary stream, and restores it.
//
// Cracking earns its index incrementally; a restart that drops the crack
// set throws that investment away. Persisting the snapshot lets a process
// resume with all adaptation intact, and is the building block for the
// paper's §6 "disk-based processing" direction.
//
// Three wire versions share the "CRKS" magic:
//
//   - v1 holds one engine state: magic/version, column length, row-id
//     flag, values, optional row ids, crack count, (key, pos) pairs.
//   - v2 is the multi-part manifest behind sharded databases: a part
//     count followed by one (lo, hi, engine state) triple per shard, in
//     ascending value order. A single-part manifest spanning the whole
//     domain is byte-equivalent in content to v1 and is written as v1,
//     so unsharded snapshots stay loadable by the v1 API.
//   - v3 is v2 plus the pending-update queues: each part's engine state
//     is followed by its sorted pending-insert and pending-delete value
//     lists, so a capture taken while updates are queued loses nothing.
//     Manifests without pending updates are still written as v1/v2, so
//     the new version only appears when it is needed.
//   - v4 is the table manifest behind multi-column databases: a column
//     count followed by one (name, part list) pair per column, names in
//     strictly ascending order, each part in the v3 shape (bounds,
//     engine state, pending queues). Cracking is per attribute, so a
//     table snapshot is a set of named single-column snapshots.
//
// Everything is little-endian and a CRC32 trailer guards against torn
// writes. Decoding failures wrap dberr.ErrSnapshotCorrupt (sentinel,
// errors.Is-matchable): a corrupt stream is rejected as a whole, never
// loaded partially. The checksum makes silent bit damage detectable;
// semantic damage with a valid checksum is caught by
// core.SnapshotState.Validate on restore.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"

	"repro/internal/core"
	"repro/internal/dberr"
)

var (
	magicV1 = [8]byte{'C', 'R', 'K', 'S', 0, 0, 0, 1}
	magicV2 = [8]byte{'C', 'R', 'K', 'S', 0, 0, 0, 2}
	magicV3 = [8]byte{'C', 'R', 'K', 'S', 0, 0, 0, 3}
	magicV4 = [8]byte{'C', 'R', 'K', 'S', 0, 0, 0, 4}
)

// ErrCorrupt is the sentinel wrapped by every decoding failure
// (dberr.ErrSnapshotCorrupt, re-exported by the facade).
var ErrCorrupt = dberr.ErrSnapshotCorrupt

// Limits on counts read from the wire before allocating. Reads are
// chunked (see readInt64s), so a corrupt length costs bounded memory
// before the truncation or checksum error surfaces, but the hard caps
// keep even a maliciously long stream from ballooning.
const (
	maxValues = 1 << 33
	maxParts  = 1 << 16
	// maxNameLen bounds one table-manifest column name on the wire.
	maxNameLen = 1 << 10
	// readChunk bounds per-step slice growth while decoding, in elements.
	readChunk = 1 << 16
)

// corruptf builds a decoding error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("snapshot: %s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// Write serializes one engine state st to w in the v1 format. v1 cannot
// carry pending-update queues; states holding them must go through
// WriteManifest (which picks v3), so Write refuses rather than drop them.
func Write(w io.Writer, st core.SnapshotState) error {
	if st.Pending() > 0 {
		return fmt.Errorf("snapshot: v1 cannot carry %d pending updates; write a manifest instead", st.Pending())
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magicV1[:]); err != nil {
		return err
	}
	if err := writeState(bw, st); err != nil {
		return err
	}
	// Flush the buffered body through the CRC before emitting the trailer
	// directly to w (the trailer itself is not part of the checksum).
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// WriteManifest serializes a multi-part manifest to w. Single-part
// manifests spanning the whole value domain are written in the v1 format
// (content-equivalent), so unsharded snapshots remain loadable by v1
// readers; multi-part manifests use v2; manifests carrying pending-update
// queues on any part use v3 (the only version with room for them); table
// manifests always use v4 (the only version with named columns).
func WriteManifest(w io.Writer, m Manifest) error {
	if m.IsTable() {
		return writeTableManifest(w, m)
	}
	v3 := m.Pending() > 0
	if !v3 && len(m.Parts) == 1 && m.Parts[0].Lo == math.MinInt64 && m.Parts[0].Hi == math.MaxInt64 {
		return Write(w, m.Parts[0].State)
	}
	magic := magicV2
	if v3 {
		magic = magicV3
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(m.Parts))); err != nil {
		return err
	}
	for _, p := range m.Parts {
		if err := binary.Write(bw, binary.LittleEndian, p.Lo); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Hi); err != nil {
			return err
		}
		if err := writeState(bw, p.State); err != nil {
			return err
		}
		if v3 {
			if err := writePending(bw, p.State); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// writeTableManifest serializes a table manifest in the v4 format:
// column count, then per column a length-prefixed name and a v3-shaped
// part list (every part carries its pending queues — v4 always has room
// for them, so no version split exists within table snapshots).
func writeTableManifest(w io.Writer, m Manifest) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magicV4[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(m.Columns))); err != nil {
		return err
	}
	for _, c := range m.Columns {
		if len(c.Name) == 0 || len(c.Name) > maxNameLen {
			return fmt.Errorf("snapshot: column name %q out of range (1..%d bytes)", c.Name, maxNameLen)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.Parts))); err != nil {
			return err
		}
		for _, p := range c.Parts {
			if err := binary.Write(bw, binary.LittleEndian, p.Lo); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, p.Hi); err != nil {
				return err
			}
			if err := writeState(bw, p.State); err != nil {
				return err
			}
			if err := writePending(bw, p.State); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// writePending emits one part's pending-update queues (v3 only): two
// length-prefixed sorted value lists.
func writePending(bw *bufio.Writer, st core.SnapshotState) error {
	for _, q := range [][]int64{st.PendingInserts, st.PendingDeletes} {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(q))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, q); err != nil {
			return err
		}
	}
	return nil
}

// writeState emits one engine state body (no magic, no checksum).
func writeState(bw *bufio.Writer, st core.SnapshotState) error {
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(st.Values))); err != nil {
		return err
	}
	hasRowIDs := uint8(0)
	if st.RowIDs != nil {
		hasRowIDs = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasRowIDs); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, st.Values); err != nil {
		return err
	}
	if hasRowIDs == 1 {
		if err := binary.Write(bw, binary.LittleEndian, st.RowIDs); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(st.Cracks))); err != nil {
		return err
	}
	for _, c := range st.Cracks {
		if err := binary.Write(bw, binary.LittleEndian, c.Key); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(c.Pos)); err != nil {
			return err
		}
	}
	return nil
}

// ReadManifest deserializes a snapshot of either wire version from r,
// verifying structure and checksum; a v1 stream yields one part spanning
// the whole value domain. Decoding failures wrap ErrCorrupt. The result
// carries no semantic guarantees until Manifest.Validate (run by the
// restore paths) accepts it.
//
// The body is read with exact-size reads through a TeeReader feeding the
// CRC — deliberately unbuffered, so no lookahead can pull trailer bytes
// into the checksum.
func ReadManifest(r io.Reader) (Manifest, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var m [8]byte
	if _, err := io.ReadFull(tr, m[:]); err != nil {
		return Manifest{}, corruptf("reading magic: %v", err)
	}
	var man Manifest
	switch m {
	case magicV1:
		st, err := readState(tr)
		if err != nil {
			return Manifest{}, err
		}
		// Single clamps domain-edge cracks (keys MinInt64/MaxInt64), which
		// legitimate v1 snapshots may carry from unbounded predicates.
		man = Single(st)
	case magicV2, magicV3:
		v3 := m == magicV3
		var parts uint64
		if err := binary.Read(tr, binary.LittleEndian, &parts); err != nil {
			return Manifest{}, corruptf("reading part count: %v", err)
		}
		if parts == 0 || parts > maxParts {
			return Manifest{}, corruptf("claims %d parts", parts)
		}
		man.Parts = make([]Part, 0, min(parts, readChunk))
		for i := uint64(0); i < parts; i++ {
			var lo, hi int64
			if err := binary.Read(tr, binary.LittleEndian, &lo); err != nil {
				return Manifest{}, corruptf("part %d: reading bounds: %v", i, err)
			}
			if err := binary.Read(tr, binary.LittleEndian, &hi); err != nil {
				return Manifest{}, corruptf("part %d: reading bounds: %v", i, err)
			}
			st, err := readState(tr)
			if err != nil {
				return Manifest{}, fmt.Errorf("part %d: %w", i, err)
			}
			if v3 {
				if st.PendingInserts, err = readPendingQueue(tr); err != nil {
					return Manifest{}, fmt.Errorf("part %d: %w", i, err)
				}
				if st.PendingDeletes, err = readPendingQueue(tr); err != nil {
					return Manifest{}, fmt.Errorf("part %d: %w", i, err)
				}
			}
			// Clamp like the v1 path: our own writers never emit cracks
			// outside a part's range, but decoding normalizes foreign
			// streams the same way so encode/decode stays idempotent.
			man.Parts = append(man.Parts, ClampedPart(lo, hi, st))
		}
	case magicV4:
		var cols uint64
		if err := binary.Read(tr, binary.LittleEndian, &cols); err != nil {
			return Manifest{}, corruptf("reading column count: %v", err)
		}
		if cols == 0 || cols > maxParts {
			return Manifest{}, corruptf("claims %d columns", cols)
		}
		man.Columns = make([]TableColumn, 0, min(cols, readChunk))
		for ci := uint64(0); ci < cols; ci++ {
			var nameLen uint64
			if err := binary.Read(tr, binary.LittleEndian, &nameLen); err != nil {
				return Manifest{}, corruptf("column %d: reading name length: %v", ci, err)
			}
			if nameLen == 0 || nameLen > maxNameLen {
				return Manifest{}, corruptf("column %d: name length %d out of range", ci, nameLen)
			}
			name := make([]byte, nameLen)
			if _, err := io.ReadFull(tr, name); err != nil {
				return Manifest{}, corruptf("column %d: reading name: %v", ci, err)
			}
			var parts uint64
			if err := binary.Read(tr, binary.LittleEndian, &parts); err != nil {
				return Manifest{}, corruptf("column %q: reading part count: %v", name, err)
			}
			if parts == 0 || parts > maxParts {
				return Manifest{}, corruptf("column %q claims %d parts", name, parts)
			}
			col := TableColumn{Name: string(name), Parts: make([]Part, 0, min(parts, readChunk))}
			for i := uint64(0); i < parts; i++ {
				var lo, hi int64
				if err := binary.Read(tr, binary.LittleEndian, &lo); err != nil {
					return Manifest{}, corruptf("column %q part %d: reading bounds: %v", name, i, err)
				}
				if err := binary.Read(tr, binary.LittleEndian, &hi); err != nil {
					return Manifest{}, corruptf("column %q part %d: reading bounds: %v", name, i, err)
				}
				st, err := readState(tr)
				if err != nil {
					return Manifest{}, fmt.Errorf("column %q part %d: %w", name, i, err)
				}
				if st.PendingInserts, err = readPendingQueue(tr); err != nil {
					return Manifest{}, fmt.Errorf("column %q part %d: %w", name, i, err)
				}
				if st.PendingDeletes, err = readPendingQueue(tr); err != nil {
					return Manifest{}, fmt.Errorf("column %q part %d: %w", name, i, err)
				}
				col.Parts = append(col.Parts, ClampedPart(lo, hi, st))
			}
			man.Columns = append(man.Columns, col)
		}
	default:
		if m[0] == 'C' && m[1] == 'R' && m[2] == 'K' && m[3] == 'S' {
			return Manifest{}, corruptf("unsupported CRKS version %d", binary.BigEndian.Uint32(m[4:]))
		}
		return Manifest{}, corruptf("not a CRKS snapshot (magic %x)", m)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return Manifest{}, corruptf("reading checksum: %v", err)
	}
	if got != want {
		return Manifest{}, corruptf("checksum mismatch (got %08x, want %08x)", got, want)
	}
	return man, nil
}

// Read deserializes a snapshot from r into a single engine state,
// verifying structure and checksum. A v2 multi-part stream is merged into
// one contiguous state (shard boundaries become cracks); decoding
// failures wrap ErrCorrupt.
func Read(r io.Reader) (core.SnapshotState, error) {
	man, err := ReadManifest(r)
	if err != nil {
		return core.SnapshotState{}, err
	}
	return man.Merged()
}

// readState reads one engine state body (no magic, no checksum).
func readState(tr io.Reader) (core.SnapshotState, error) {
	var st core.SnapshotState
	var n uint64
	if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
		return st, corruptf("reading length: %v", err)
	}
	if n > maxValues {
		return st, corruptf("claims %d values", n)
	}
	var hasRowIDs uint8
	if err := binary.Read(tr, binary.LittleEndian, &hasRowIDs); err != nil {
		return st, corruptf("reading flags: %v", err)
	}
	if hasRowIDs > 1 {
		return st, corruptf("bad row-id flag %d", hasRowIDs)
	}
	var err error
	if st.Values, err = readSlice[int64](tr, n); err != nil {
		return st, corruptf("reading values: %v", err)
	}
	if hasRowIDs == 1 {
		if st.RowIDs, err = readSlice[uint32](tr, n); err != nil {
			return st, corruptf("reading row ids: %v", err)
		}
	}
	var k uint64
	if err := binary.Read(tr, binary.LittleEndian, &k); err != nil {
		return st, corruptf("reading crack count: %v", err)
	}
	if k > n+1 {
		return st, corruptf("%d cracks for %d values", k, n)
	}
	if k > 0 {
		st.Cracks = make([]core.CrackEntry, 0, min(k, readChunk))
		raw := make([]byte, 16*min(k, readChunk))
		for read := uint64(0); read < k; {
			c := min(k-read, readChunk)
			if _, err := io.ReadFull(tr, raw[:16*c]); err != nil {
				return st, corruptf("reading cracks: %v", err)
			}
			for i := uint64(0); i < c; i++ {
				key := int64(binary.LittleEndian.Uint64(raw[16*i:]))
				pos := binary.LittleEndian.Uint64(raw[16*i+8:])
				if pos > n {
					return st, corruptf("crack %d position %d out of range", read+i, pos)
				}
				st.Cracks = append(st.Cracks, core.CrackEntry{Key: key, Pos: int(pos)})
			}
			read += c
		}
	}
	return st, nil
}

// readPendingQueue reads one length-prefixed pending-update value list
// (v3 parts), rejecting unsorted queues — concatenating per-part queues
// on restore relies on each being sorted.
func readPendingQueue(tr io.Reader) ([]int64, error) {
	var n uint64
	if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
		return nil, corruptf("reading pending count: %v", err)
	}
	if n > maxValues {
		return nil, corruptf("claims %d pending updates", n)
	}
	if n == 0 {
		return nil, nil
	}
	q, err := readSlice[int64](tr, n)
	if err != nil {
		return nil, corruptf("reading pending values: %v", err)
	}
	for i := 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			return nil, corruptf("pending queue not sorted at %d", i)
		}
	}
	return q, nil
}

// readSlice reads n little-endian elements, growing the destination in
// chunks so a lying length field costs bounded memory before the stream
// runs dry.
func readSlice[T int64 | uint32](r io.Reader, n uint64) ([]T, error) {
	out := make([]T, 0, min(n, readChunk))
	for uint64(len(out)) < n {
		c := int(min(n-uint64(len(out)), readChunk))
		start := len(out)
		out = slices.Grow(out, c)[: start+c : start+c]
		if err := binary.Read(r, binary.LittleEndian, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Hooks for the crash-safety tests: they inject failures between the
// temp-file write and the rename, and mid-write truncation, to prove the
// previous snapshot file survives every failure mode. Production code
// never touches them.
var (
	createFile = func(path string) (io.WriteCloser, error) { return os.Create(path) }
	renameFile = os.Rename
)

// SaveFile writes a single-state snapshot to path atomically (temp file +
// rename), in the v1 format.
func SaveFile(path string, st core.SnapshotState) error {
	return saveAtomic(path, func(w io.Writer) error { return Write(w, st) })
}

// SaveManifestFile writes a manifest to path atomically (temp file +
// rename). A crash at any point leaves either the previous file or the
// new one, never a torn mix: the body goes to path.tmp first and the
// rename is the only step that touches path.
func SaveManifestFile(path string, m Manifest) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteManifest(w, m) })
}

func saveAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := createFile(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameFile(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a snapshot from path as one engine state (a multi-part
// file is merged; see Read).
func LoadFile(path string) (core.SnapshotState, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.SnapshotState{}, err
	}
	defer f.Close()
	return Read(f)
}

// LoadManifestFile reads a snapshot manifest from path.
func LoadManifestFile(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	return ReadManifest(f)
}
