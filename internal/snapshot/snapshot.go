// Package snapshot serializes the physical state of a cracking index —
// the (partially reorganized) column plus its crack set — to a compact
// binary stream, and restores it.
//
// Cracking earns its index incrementally; a restart that drops the crack
// set throws that investment away. Persisting the snapshot lets a process
// resume with all adaptation intact, and is the building block for the
// paper's §6 "disk-based processing" direction. The format is
// little-endian: magic/version, column length, row-id flag, values,
// optional row ids, crack count, (key, pos) pairs. A CRC32 trailer guards
// against torn writes.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
)

var magic = [8]byte{'C', 'R', 'K', 'S', 0, 0, 0, 1}

// Write serializes st to w.
func Write(w io.Writer, st core.SnapshotState) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(st.Values))); err != nil {
		return err
	}
	hasRowIDs := uint8(0)
	if st.RowIDs != nil {
		hasRowIDs = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasRowIDs); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, st.Values); err != nil {
		return err
	}
	if hasRowIDs == 1 {
		if err := binary.Write(bw, binary.LittleEndian, st.RowIDs); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(st.Cracks))); err != nil {
		return err
	}
	for _, c := range st.Cracks {
		if err := binary.Write(bw, binary.LittleEndian, c.Key); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(c.Pos)); err != nil {
			return err
		}
	}
	// Flush the buffered body through the CRC before emitting the trailer
	// directly to w (the trailer itself is not part of the checksum).
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Read deserializes a snapshot from r, verifying structure and checksum.
// The result still carries no semantic guarantees until core's
// SnapshotState.Validate (run by core.Restore) accepts it.
//
// The body is read with exact-size reads through a TeeReader feeding the
// CRC — deliberately unbuffered, so no lookahead can pull trailer bytes
// into the checksum.
func Read(r io.Reader) (core.SnapshotState, error) {
	var st core.SnapshotState
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var m [8]byte
	if _, err := io.ReadFull(tr, m[:]); err != nil {
		return st, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if m != magic {
		return st, fmt.Errorf("snapshot: not a CRKS snapshot (magic %x)", m)
	}
	var n uint64
	if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
		return st, fmt.Errorf("snapshot: reading length: %w", err)
	}
	const maxCount = 1 << 33
	if n > maxCount {
		return st, fmt.Errorf("snapshot: claims %d values", n)
	}
	var hasRowIDs uint8
	if err := binary.Read(tr, binary.LittleEndian, &hasRowIDs); err != nil {
		return st, fmt.Errorf("snapshot: reading flags: %w", err)
	}
	if hasRowIDs > 1 {
		return st, fmt.Errorf("snapshot: bad row-id flag %d", hasRowIDs)
	}
	st.Values = make([]int64, n)
	if err := binary.Read(tr, binary.LittleEndian, st.Values); err != nil {
		return st, fmt.Errorf("snapshot: reading values: %w", err)
	}
	if hasRowIDs == 1 {
		st.RowIDs = make([]uint32, n)
		if err := binary.Read(tr, binary.LittleEndian, st.RowIDs); err != nil {
			return st, fmt.Errorf("snapshot: reading row ids: %w", err)
		}
	}
	var k uint64
	if err := binary.Read(tr, binary.LittleEndian, &k); err != nil {
		return st, fmt.Errorf("snapshot: reading crack count: %w", err)
	}
	if k > n+1 {
		return st, fmt.Errorf("snapshot: %d cracks for %d values", k, n)
	}
	if k > 0 {
		raw := make([]byte, 16*k)
		if _, err := io.ReadFull(tr, raw); err != nil {
			return st, fmt.Errorf("snapshot: reading cracks: %w", err)
		}
		st.Cracks = make([]core.CrackEntry, k)
		for i := range st.Cracks {
			key := int64(binary.LittleEndian.Uint64(raw[16*i:]))
			pos := binary.LittleEndian.Uint64(raw[16*i+8:])
			if pos > n {
				return st, fmt.Errorf("snapshot: crack %d position %d out of range", i, pos)
			}
			st.Cracks[i] = core.CrackEntry{Key: key, Pos: int(pos)}
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return st, fmt.Errorf("snapshot: reading checksum: %w", err)
	}
	if got != want {
		return st, fmt.Errorf("snapshot: checksum mismatch (got %08x, want %08x)", got, want)
	}
	return st, nil
}

// SaveFile writes a snapshot to path atomically (temp file + rename).
func SaveFile(path string, st core.SnapshotState) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (core.SnapshotState, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.SnapshotState{}, err
	}
	defer f.Close()
	return Read(f)
}
