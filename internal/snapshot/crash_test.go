package snapshot

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// restoreHooks resets the save-path failure-injection hooks after a test.
func restoreHooks(t *testing.T) {
	t.Helper()
	origCreate, origRename := createFile, renameFile
	t.Cleanup(func() { createFile, renameFile = origCreate, origRename })
}

// loadRows asserts path still loads and returns its row count.
func loadRows(t *testing.T, path string) int {
	t.Helper()
	m, err := LoadManifestFile(path)
	if err != nil {
		t.Fatalf("previous snapshot no longer loads: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("previous snapshot invalid: %v", err)
	}
	return m.Rows()
}

// truncatingWriter fails with a fake disk-full error after limit bytes,
// leaving a torn temp file behind exactly as a crashed write would.
type truncatingWriter struct {
	f     *os.File
	limit int
	n     int
}

func (w *truncatingWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		keep := w.limit - w.n
		if keep > 0 {
			w.f.Write(p[:keep])
			w.n += keep
		}
		return keep, errors.New("injected: device full")
	}
	n, err := w.f.Write(p)
	w.n += n
	return n, err
}

func (w *truncatingWriter) Close() error { return w.f.Close() }

// TestAtomicSaveSurvivesMidWriteFailure injects a write failure partway
// through the temp file: the save must error, the torn temp must not be
// promoted, and the previous snapshot file must stay loadable.
func TestAtomicSaveSurvivesMidWriteFailure(t *testing.T) {
	restoreHooks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.crks")
	old := shardedManifest(t, 1000, 2, false)
	if err := SaveManifestFile(path, old); err != nil {
		t.Fatal(err)
	}

	createFile = func(p string) (io.WriteCloser, error) {
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		return &truncatingWriter{f: f, limit: 100}, nil
	}
	bigger := shardedManifest(t, 3000, 3, false)
	if err := SaveManifestFile(path, bigger); err == nil {
		t.Fatal("truncated save reported success")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn temp file left behind: %v", err)
	}
	if got := loadRows(t, path); got != 1000 {
		t.Fatalf("previous snapshot has %d rows, want 1000", got)
	}
}

// TestAtomicSaveSurvivesRenameFailure injects a failure between the
// temp-file write and the rename — the window where a crash leaves a
// complete temp file but an untouched target.
func TestAtomicSaveSurvivesRenameFailure(t *testing.T) {
	restoreHooks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.crks")
	old := shardedManifest(t, 1000, 2, false)
	if err := SaveManifestFile(path, old); err != nil {
		t.Fatal(err)
	}

	renameFile = func(oldpath, newpath string) error {
		return errors.New("injected: crash before rename")
	}
	if err := SaveManifestFile(path, shardedManifest(t, 3000, 3, false)); err == nil {
		t.Fatal("failed rename reported success")
	}
	if got := loadRows(t, path); got != 1000 {
		t.Fatalf("previous snapshot has %d rows, want 1000", got)
	}
}

// TestCrashLeftoverTmpDoesNotShadow simulates a process that died after
// writing (possibly garbage to) the temp file without renaming: the
// target keeps loading, and the next successful save overwrites the
// leftover.
func TestCrashLeftoverTmpDoesNotShadow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.crks")
	old := shardedManifest(t, 1000, 2, false)
	if err := SaveManifestFile(path, old); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("torn garbage from a dead process"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := loadRows(t, path); got != 1000 {
		t.Fatalf("snapshot has %d rows, want 1000", got)
	}
	// A later save must shrug off the leftover and promote cleanly.
	next := shardedManifest(t, 3000, 3, false)
	if err := SaveManifestFile(path, next); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3000 || len(m.Parts) != 3 {
		t.Fatalf("promoted snapshot rows=%d parts=%d", m.Rows(), len(m.Parts))
	}
	if !slices.Equal(m.Parts[0].State.Values, next.Parts[0].State.Values) {
		t.Fatal("promoted snapshot content wrong")
	}
}
