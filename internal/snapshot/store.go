package snapshot

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a keyed home for snapshot manifests, so every save/load
// path — the serving layer's snapshot endpoint, the periodic saver, the
// warm-start probe, per-tenant catalog backups — talks to one interface
// instead of the filesystem directly. The file-backed store is the
// production implementation today; an S3/MinIO-style object store slots
// in behind the same two-method surface, since the CRKS stream is
// already a single self-checking blob.
//
// Keys are slash-separated relative paths ("tables/users.crks");
// implementations must reject absolute or dot-dot keys. Save replaces
// the key's manifest atomically: a crash mid-save leaves either the
// previous manifest or the new one, never a torn mix. Load returns an
// error matching fs.ErrNotExist (errors.Is) when the key was never
// saved — the warm-start probe keys off exactly that.
type Store interface {
	Save(key string, m Manifest) error
	Load(key string) (Manifest, error)
}

// validKey rejects keys that could escape a store's root: empty,
// absolute, backslashed, or containing "." / ".." elements.
func validKey(key string) error {
	if key == "" || strings.Contains(key, "\\") || !fs.ValidPath(key) {
		return fmt.Errorf("snapshot: invalid store key %q", key)
	}
	return nil
}

// FileStore is the file-backed Store: each key is a file under Dir,
// written with the same temp-file + rename + CRC32 discipline as
// SaveManifestFile. Parent directories are created on demand.
type FileStore struct {
	dir string
}

// NewFileStore opens (creating if needed) a file-backed store rooted at
// dir.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapshot: file store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// Path returns the file a key maps to (for size reporting and
// diagnostics; the mapping is stable).
func (s *FileStore) Path(key string) string {
	return filepath.Join(s.dir, filepath.FromSlash(key))
}

// Save writes the manifest under key, atomically.
func (s *FileStore) Save(key string, m Manifest) error {
	if err := validKey(key); err != nil {
		return err
	}
	p := s.Path(key)
	if dir := filepath.Dir(p); dir != s.dir {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return SaveManifestFile(p, m)
}

// Load reads the manifest under key; a never-saved key fails with an
// error matching fs.ErrNotExist.
func (s *FileStore) Load(key string) (Manifest, error) {
	if err := validKey(key); err != nil {
		return Manifest{}, err
	}
	return LoadManifestFile(s.Path(key))
}

// MemStore is an in-memory Store holding encoded CRKS streams — tests
// and single-process fleets use it. Manifests round-trip through the
// wire codec on every Save/Load, so it exercises exactly the bytes a
// durable store would.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{blobs: make(map[string][]byte)} }

// Save encodes the manifest and replaces the key's blob atomically
// (under the store lock).
func (s *MemStore) Save(key string, m Manifest) error {
	if err := validKey(key); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		return err
	}
	s.mu.Lock()
	s.blobs[path.Clean(key)] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// Load decodes the key's blob; a never-saved key fails with an error
// matching fs.ErrNotExist.
func (s *MemStore) Load(key string) (Manifest, error) {
	if err := validKey(key); err != nil {
		return Manifest{}, err
	}
	s.mu.Lock()
	blob, ok := s.blobs[path.Clean(key)]
	s.mu.Unlock()
	if !ok {
		return Manifest{}, fmt.Errorf("snapshot: store key %q: %w", key, fs.ErrNotExist)
	}
	return ReadManifest(bytes.NewReader(blob))
}
