package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode drives arbitrary bytes through the manifest decoder.
// The contract under attack: corrupted, truncated or version-bumped
// snapshot bytes must fail with an error wrapping ErrCorrupt — never
// panic, never hang, never balloon memory (lengths are read in chunks),
// and never yield state that silently re-encodes differently.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed corpus from real saved snapshots: v1 single-state (with and
	// without row ids) and v2 multi-part manifests, plus truncated and
	// version-bumped variants and plain garbage.
	encode := func(m Manifest) []byte {
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	v1 := encode(shardedManifest(f, 300, 1, false))
	v1r := encode(shardedManifest(f, 300, 1, true))
	v2 := encode(shardedManifest(f, 500, 3, false))
	v2r := encode(shardedManifest(f, 500, 4, true))
	// v4 table manifests: single-part and sharded per-column part lists.
	v4 := encode(tableManifest(f, 300, 1))
	v4s := encode(tableManifest(f, 500, 3))
	for _, seed := range [][]byte{v1, v1r, v2, v2r, v4, v4s} {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
		f.Add(seed[:9])
		bumped := append([]byte(nil), seed...)
		bumped[7]++
		f.Add(bumped)
	}
	f.Add([]byte{})
	f.Add([]byte("CRKS"))
	f.Add([]byte("not a snapshot at all, just text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Decoded streams must be internally coherent enough to re-encode
		// and decode back to the same manifest; semantic validation
		// (Manifest.Validate, run by every restore path) may still reject
		// them, but must not panic.
		_ = m.Validate()
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err != nil {
			t.Fatalf("re-encode of decoded manifest failed: %v", err)
		}
		m2, err := ReadManifest(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(m2.Parts) != len(m.Parts) {
			t.Fatalf("round trip changed part count %d -> %d", len(m.Parts), len(m2.Parts))
		}
		for i := range m.Parts {
			if len(m2.Parts[i].State.Values) != len(m.Parts[i].State.Values) ||
				len(m2.Parts[i].State.Cracks) != len(m.Parts[i].State.Cracks) {
				t.Fatalf("round trip changed part %d shape", i)
			}
		}
		if len(m2.Columns) != len(m.Columns) {
			t.Fatalf("round trip changed column count %d -> %d", len(m.Columns), len(m2.Columns))
		}
		for i := range m.Columns {
			if m2.Columns[i].Name != m.Columns[i].Name ||
				len(m2.Columns[i].Parts) != len(m.Columns[i].Parts) {
				t.Fatalf("round trip changed column %d shape", i)
			}
		}
	})
}
