package snapshot

import (
	"fmt"
	"sort"
)

// TableColumn is one named column of a table manifest: the column's own
// multi-part physical state, exactly the shape a single-column manifest
// holds in Parts. Cracking is per attribute (paper §2) — each column
// adapts, snapshots and restores independently — so a table manifest is
// a set of named single-column manifests, nothing more.
//
// Row alignment across columns is deliberately NOT captured: the DB
// facade exposes only per-column value selections, row-id payloads are
// shard-local and column-local, and the capture path drops them. A
// restored table answers every selection byte-identically but cannot
// serve the v1 shim's cross-column projections (those paths report
// ErrSnapshotUnsupported).
type TableColumn struct {
	Name  string
	Parts []Part
}

// IsTable reports whether the manifest is a table manifest (per-column
// part lists under Columns) rather than a single-column one (Parts).
func (m Manifest) IsTable() bool { return len(m.Columns) > 0 }

// Table wraps named per-column states as a table manifest. Columns are
// sorted by name (the deterministic order every table API uses); each
// column's parts pass through ClampedPart-style normalization when they
// were produced by the capture paths, which is the caller's job.
func Table(cols []TableColumn) Manifest {
	sorted := append([]TableColumn(nil), cols...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return Manifest{Columns: sorted}
}

// Column returns the named column's part list as a single-column
// manifest — the form every single-column restore path consumes — and
// whether the column exists.
func (m Manifest) Column(name string) (Manifest, bool) {
	for _, c := range m.Columns {
		if c.Name == name {
			return Manifest{Parts: c.Parts}, true
		}
	}
	return Manifest{}, false
}

// validateTable checks table-manifest consistency: at least one column,
// strictly ascending unique names, no stray single-column parts, and
// every column's part list valid as a single-column manifest. Columns
// may hold different row counts — per-column lazy updates legitimately
// diverge them — so no cross-column length check applies.
func (m Manifest) validateTable() error {
	if len(m.Parts) > 0 {
		return fmt.Errorf("snapshot: manifest has both columns and parts: %w", ErrCorrupt)
	}
	for i, c := range m.Columns {
		if c.Name == "" {
			return fmt.Errorf("snapshot: column %d has an empty name: %w", i, ErrCorrupt)
		}
		if i > 0 && c.Name <= m.Columns[i-1].Name {
			return fmt.Errorf("snapshot: column names not strictly ascending at %d (%q after %q): %w",
				i, c.Name, m.Columns[i-1].Name, ErrCorrupt)
		}
		if err := (Manifest{Parts: c.Parts}).Validate(); err != nil {
			return fmt.Errorf("snapshot: column %q: %w", c.Name, err)
		}
	}
	return nil
}
