package updates

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cindex"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/xrand"
)

// checkPieces verifies that every piece of the column respects the crack
// invariants implied by the index.
func checkPieces(t *testing.T, col *column.Column, idx *cindex.Tree) {
	t.Helper()
	type crack struct {
		key int64
		pos int
	}
	var cracks []crack
	idx.Ascend(func(key int64, pos int) bool {
		cracks = append(cracks, crack{key, pos})
		return true
	})
	prev := 0
	for i, c := range cracks {
		if c.pos < prev || c.pos > col.Len() {
			t.Fatalf("crack %d at invalid position %d (prev %d, n %d)", i, c.pos, prev, col.Len())
		}
		for j := 0; j < c.pos; j++ {
			if col.Values[j] >= c.key {
				t.Fatalf("value %d at %d violates crack (%d,%d)", col.Values[j], j, c.key, c.pos)
			}
		}
		for j := c.pos; j < col.Len(); j++ {
			if col.Values[j] < c.key {
				t.Fatalf("value %d at %d violates crack (%d,%d)", col.Values[j], j, c.key, c.pos)
			}
		}
		prev = c.pos
	}
}

func multiset(vals []int64) map[int64]int {
	m := make(map[int64]int)
	for _, v := range vals {
		m[v]++
	}
	return m
}

func buildCracked(t *testing.T, n int, seed uint64, queries int) (*column.Column, *cindex.Tree) {
	t.Helper()
	ix := core.NewCrack(xrand.New(seed).Perm(n), core.Options{Seed: seed})
	rng := xrand.New(seed + 1)
	for i := 0; i < queries; i++ {
		a := rng.Int63n(int64(n) - 10)
		ix.Query(a, a+10)
	}
	return ix.Engine().Column(), ix.Engine().CrackerIndex()
}

func TestRippleInsertMaintainsInvariants(t *testing.T) {
	col, idx := buildCracked(t, 2000, 1, 40)
	before := multiset(col.Values)
	rng := xrand.New(2)
	inserted := make([]int64, 0, 50)
	for i := 0; i < 50; i++ {
		v := rng.Int63n(4000) - 1000 // also outside the original domain
		RippleInsert(col, idx, v)
		inserted = append(inserted, v)
	}
	if col.Len() != 2050 {
		t.Fatalf("column length = %d, want 2050", col.Len())
	}
	for _, v := range inserted {
		before[v]++
	}
	after := multiset(col.Values)
	if len(after) != len(before) {
		t.Fatal("insert lost or duplicated values")
	}
	for k, c := range before {
		if after[k] != c {
			t.Fatalf("value %d count %d, want %d", k, after[k], c)
		}
	}
	checkPieces(t, col, idx)
}

func TestRippleInsertIntoEveryPieceOfSmallColumn(t *testing.T) {
	// Hand-checkable case: pieces [0,3)=values<10, [3,6)=10..19, [6,9)=>=20.
	col := column.New([]int64{1, 5, 2, 14, 10, 17, 25, 22, 29})
	idx := &cindex.Tree{}
	idx.Insert(10, 3)
	idx.Insert(20, 6)
	RippleInsert(col, idx, 7)  // into first piece
	RippleInsert(col, idx, 11) // into middle piece
	RippleInsert(col, idx, 99) // into last piece
	RippleInsert(col, idx, 10) // exactly on a crack key: belongs to middle
	if col.Len() != 13 {
		t.Fatalf("len = %d", col.Len())
	}
	checkPieces(t, col, idx)
	lo, hi, _ := idx.PieceFor(15, col.Len())
	if hi-lo != 5 { // 14,10,17 + 11 + 10
		t.Fatalf("middle piece size = %d, want 5", hi-lo)
	}
}

func TestRippleDeleteMaintainsInvariants(t *testing.T) {
	col, idx := buildCracked(t, 2000, 3, 40)
	rng := xrand.New(4)
	removed := 0
	attempts := 0
	present := multiset(col.Values)
	for i := 0; i < 100; i++ {
		v := rng.Int63n(2000)
		attempts++
		ok := RippleDelete(col, idx, v)
		if ok {
			removed++
			present[v]--
			if present[v] == 0 {
				delete(present, v)
			}
		} else if present[v] > 0 {
			t.Fatalf("delete(%d) failed but value present", v)
		}
	}
	if removed == 0 {
		t.Fatal("no deletes succeeded on a permutation column")
	}
	if col.Len() != 2000-removed {
		t.Fatalf("length %d after %d deletes", col.Len(), removed)
	}
	if got := multiset(col.Values); len(got) != len(present) {
		t.Fatal("delete corrupted the multiset")
	}
	checkPieces(t, col, idx)
}

func TestRippleDeleteMissingValue(t *testing.T) {
	col, idx := buildCracked(t, 500, 5, 10)
	if RippleDelete(col, idx, 10_000) {
		t.Fatal("deleted a value outside the domain")
	}
	if col.Len() != 500 {
		t.Fatal("failed delete changed the column")
	}
}

func TestRippleInsertDeleteRoundTrip(t *testing.T) {
	f := func(seed uint64, ops []int16) bool {
		const n = 300
		col, idx := func() (*column.Column, *cindex.Tree) {
			ix := core.NewCrack(xrand.New(seed).Perm(n), core.Options{Seed: seed})
			rng := xrand.New(seed + 9)
			for i := 0; i < 10; i++ {
				a := rng.Int63n(n - 5)
				ix.Query(a, a+5)
			}
			return ix.Engine().Column(), ix.Engine().CrackerIndex()
		}()
		want := multiset(col.Values)
		for _, op := range ops {
			v := int64(op)
			if op%2 == 0 {
				RippleInsert(col, idx, v)
				want[v]++
			} else {
				if RippleDelete(col, idx, v) {
					want[v]--
					if want[v] == 0 {
						delete(want, v)
					}
				}
			}
		}
		got := multiset(col.Values)
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		// And the piece invariants must hold.
		ok := true
		prev := 0
		idx.Ascend(func(key int64, pos int) bool {
			if pos < prev || pos > col.Len() {
				ok = false
				return false
			}
			prev = pos
			for j := 0; j < pos && ok; j++ {
				if col.Values[j] >= key {
					ok = false
				}
			}
			for j := pos; j < col.Len() && ok; j++ {
				if col.Values[j] < key {
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRippleCostIsPerPieceNotPerTuple(t *testing.T) {
	// The point of Ripple: inserting into a cracked column of n tuples with
	// k pieces moves O(k) tuples, not O(n).
	col, idx := buildCracked(t, 100000, 6, 50)
	pieces := idx.Len() + 1
	col.Stats.Reset()
	RippleInsert(col, idx, 5)
	if col.Stats.Swaps > int64(pieces) {
		t.Fatalf("insert moved %d tuples for %d pieces", col.Stats.Swaps, pieces)
	}
}

func TestUpdatableIndexMergesOnDemand(t *testing.T) {
	const n = 10000
	inner := core.NewCrack(xrand.New(7).Perm(n), core.Options{Seed: 7})
	u, ok := Wrap(inner)
	if !ok {
		t.Fatal("Wrap rejected a crack index")
	}
	// Warm up some cracks.
	u.Query(2000, 3000)
	u.Query(7000, 8000)

	u.Insert(2500)
	u.Insert(2501)
	u.Insert(9999999) // far outside any query range: stays pending
	u.Delete(2502)
	if u.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", u.Pending())
	}

	// A query not touching the pending values must not merge them.
	u.Query(5000, 5100)
	if u.Pending() != 4 || u.Merged() != 0 {
		t.Fatalf("unrelated query merged updates: pending=%d merged=%d", u.Pending(), u.Merged())
	}

	// A query covering them must see them.
	res := u.Query(2490, 2510)
	if u.Merged() != 3 {
		t.Fatalf("merged = %d, want 3", u.Merged())
	}
	if u.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (the far-away insert)", u.Pending())
	}
	// Expected content: original 2490..2509 (20 values) + 2500 + 2501 - 2502.
	if got, want := res.Count(), 20+2-1; got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var sum int64
	for v := int64(2490); v < 2510; v++ {
		sum += v
	}
	sum += 2500 + 2501 - 2502
	if res.Sum() != sum {
		t.Fatalf("sum = %d, want %d", res.Sum(), sum)
	}
	checkPieces(t, inner.Engine().Column(), inner.Engine().CrackerIndex())
}

func TestUpdatableWorksWithStochasticIndexes(t *testing.T) {
	const n = 20000
	for _, spec := range []string{"crack", "dd1r", "mdd1r", "pmdd1r-10", "scrackmon-5"} {
		inner, err := core.Build(xrand.New(8).Perm(n), spec, core.Options{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		u, ok := Wrap(inner)
		if !ok {
			t.Fatalf("Wrap rejected %s", spec)
		}
		rng := xrand.New(9)
		extra := make(map[int64]int)
		for i := 0; i < 200; i++ {
			if i%10 == 0 {
				v := rng.Int63n(n)
				u.Insert(v)
				extra[v]++
			}
			a := rng.Int63n(n - 100)
			res := u.Query(a, a+100)
			want := 100 // permutation data: one tuple per value
			for v, c := range extra {
				if a <= v && v < a+100 {
					want += c
					delete(extra, v) // merged now
				}
			}
			// Account for previously merged extras still in range.
			_ = want
			// Validate via direct recount instead (extras may have been
			// merged by earlier overlapping queries).
			wantCount, wantSum := recount(u, a, a+100)
			if res.Count() != wantCount || res.Sum() != wantSum {
				t.Fatalf("%s query %d: got (%d,%d) want (%d,%d)",
					spec, i, res.Count(), res.Sum(), wantCount, wantSum)
			}
		}
	}
}

// recount computes the expected result by scanning the raw column plus the
// still-pending inserts that fall in range.
func recount(u *Index, a, b int64) (int, int64) {
	col := u.engine.Column()
	count := 0
	var sum int64
	for _, v := range col.Values {
		if a <= v && v < b {
			count++
			sum += v
		}
	}
	// Any pending insert within [a,b) would have been merged by Query
	// before answering, so the raw column is authoritative here — but only
	// after Query ran. recount is called right after Query returns.
	return count, sum
}

func TestWrapRejectsSort(t *testing.T) {
	if _, ok := Wrap(core.NewSort([]int64{3, 1, 2}, core.Options{})); ok {
		t.Fatal("Wrap must reject the sorted-array baseline")
	}
}

func TestPendingOrderIndependence(t *testing.T) {
	var p Pending
	vals := []int64{5, 1, 9, 3, 7}
	for _, v := range vals {
		p.Insert(v)
	}
	got := takeRange(&p.inserts, 0, 10)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("takeRange not sorted: %v", got)
	}
	if len(got) != 5 || p.Len() != 0 {
		t.Fatalf("takeRange extracted %d, pending %d", len(got), p.Len())
	}
}

func TestPendingDeleteAnnihilatesPendingInsert(t *testing.T) {
	// Regression: a delete whose target exists only as a pending insert
	// must cancel that insert at enqueue time. If both are queued, the
	// merge applies deletes first — the delete ripples, finds nothing in
	// the column, and is dropped, then the insert resurrects the value.
	t.Run("single", func(t *testing.T) {
		var p Pending
		p.Insert(42)
		p.Delete(42)
		if p.Len() != 0 {
			t.Fatalf("insert+delete of same value left %d pending ops", p.Len())
		}
		// Duplicate inserts: one delete cancels exactly one copy.
		p.Insert(7)
		p.Insert(7)
		p.Delete(7)
		if got := takeRange(&p.inserts, 0, 100); len(got) != 1 || got[0] != 7 {
			t.Fatalf("two inserts + one delete: surviving inserts %v, want [7]", got)
		}
		if len(p.deletes) != 0 {
			t.Fatalf("annihilated delete still queued: %v", p.deletes)
		}
	})
	t.Run("delete-then-insert", func(t *testing.T) {
		// Order matters: delete first targets the column copy, so the
		// later insert must NOT be annihilated.
		var p Pending
		p.Delete(42)
		p.Insert(42)
		if len(p.deletes) != 1 || len(p.inserts) != 1 {
			t.Fatalf("delete-then-insert collapsed: inserts=%v deletes=%v", p.inserts, p.deletes)
		}
	})
	t.Run("batch", func(t *testing.T) {
		var p Pending
		p.InsertMany([]int64{1, 2, 2, 3, 5})
		p.DeleteMany([]int64{2, 3, 4, 5, 5})
		// Cancels: one 2, the 3, one 5. Survivors: insert {1, 2}; deletes {4, 5}.
		wantIns := []int64{1, 2}
		wantDel := []int64{4, 5}
		if len(p.inserts) != len(wantIns) || len(p.deletes) != len(wantDel) {
			t.Fatalf("batch annihilation: inserts=%v deletes=%v", p.inserts, p.deletes)
		}
		for i, v := range wantIns {
			if p.inserts[i] != v {
				t.Fatalf("batch annihilation inserts=%v, want %v", p.inserts, wantIns)
			}
		}
		for i, v := range wantDel {
			if p.deletes[i] != v {
				t.Fatalf("batch annihilation deletes=%v, want %v", p.deletes, wantDel)
			}
		}
	})
	t.Run("end-to-end", func(t *testing.T) {
		// Through the index: insert then delete with no intervening query
		// must not change what a later covering query sees.
		const n = 1000
		inner := core.NewCrack(xrand.New(3).Perm(n), core.Options{Seed: 3})
		u, _ := Wrap(inner)
		u.Query(100, 200) // warm a crack so merges ripple
		u.Insert(150)
		u.Delete(150)
		res := u.Query(100, 200)
		if got := res.Count(); got != 100 {
			t.Fatalf("insert+delete leaked into query: count=%d, want 100", got)
		}
	})
}

func TestPendingInRange(t *testing.T) {
	var p Pending
	p.Insert(100)
	p.Delete(200)
	cases := []struct {
		a, b int64
		want bool
	}{
		{0, 50, false},
		{0, 101, true},
		{100, 101, true},
		{101, 200, false},
		{150, 250, true},
		{201, 300, false},
	}
	for _, c := range cases {
		if got := p.PendingInRange(c.a, c.b); got != c.want {
			t.Errorf("PendingInRange(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
