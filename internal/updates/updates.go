// Package updates implements adaptive indexing under updates ([17],
// reproduced in the paper's Fig. 15).
//
// Updates are not applied eagerly. They are collected in pending queues
// and merged into the cracker column on demand: when a query requests a
// value range in which at least one pending update falls, exactly the
// qualifying updates are merged — during query processing, like every
// other cracking action — using the Ripple reorganization of [17].
//
// Ripple insertion never rewrites the column. To place a value into its
// piece it moves one tuple per piece boundary above the target (each
// shifted piece rotates its first tuple to its end, preserving piece
// contents) and shifts the affected crack positions, which the cracker
// index supports in O(log n) (lazy range shift). Deletion mirrors this.
package updates

import (
	"sort"

	"repro/internal/cindex"
	"repro/internal/column"
	"repro/internal/core"
)

// RippleInsert inserts value v into the cracker column, preserving every
// piece invariant: v lands inside the piece whose value range covers it,
// each piece above the target shifts one position right (rotating its
// first tuple to its end), and all cracks above v shift by one.
func RippleInsert(col *column.Column, idx *cindex.Tree, v int64) {
	col.Values = append(col.Values, 0)
	if col.RowIDs != nil {
		col.RowIDs = append(col.RowIDs, uint32(len(col.RowIDs)))
	}
	hole := len(col.Values) - 1
	idx.DescendGreater(v, func(_ int64, pos int) bool {
		col.Values[hole] = col.Values[pos]
		if col.RowIDs != nil {
			col.RowIDs[hole] = col.RowIDs[pos]
		}
		col.Stats.Swaps++
		hole = pos
		return true
	})
	col.Values[hole] = v
	if col.RowIDs != nil {
		col.RowIDs[hole] = uint32(len(col.RowIDs) - 1)
	}
	col.Stats.Touched += int64(idx.Len() + 1)
	idx.RangeShift(v, 1)
}

// RippleDelete removes one occurrence of value v from the cracker column,
// if present, and reports whether a tuple was removed. Pieces above the
// target shift one position left (rotating their last tuple to their
// front) and cracks above v shift by one.
func RippleDelete(col *column.Column, idx *cindex.Tree, v int64) bool {
	n := len(col.Values)
	lo, hi, _ := idx.PieceFor(v, n)
	at := -1
	for i := lo; i < hi; i++ {
		if col.Values[i] == v {
			at = i
			break
		}
	}
	col.Stats.Touched += int64(hi - lo)
	if at < 0 {
		return false
	}
	// Fill the hole with the last tuple of its piece, then cascade: each
	// higher piece donates its last tuple to the boundary slot below.
	hole := at
	fill := func(pieceEnd int) {
		col.Values[hole] = col.Values[pieceEnd-1]
		if col.RowIDs != nil {
			col.RowIDs[hole] = col.RowIDs[pieceEnd-1]
		}
		col.Stats.Swaps++
		hole = pieceEnd - 1
	}
	fill(hi)
	idx.AscendGreater(v, func(_ int64, pos int) bool {
		if pos <= hi {
			// The boundary that ends v's own piece: already handled.
			return true
		}
		fill(pos)
		return true
	})
	// Hole is now just below the first boundary above v's piece... cascade
	// through the remaining pieces up to the end of the column.
	fill(n)
	col.Values = col.Values[:n-1]
	if col.RowIDs != nil {
		col.RowIDs = col.RowIDs[:n-1]
	}
	idx.RangeShift(v, -1)
	col.Stats.Touched += int64(idx.Len() + 1)
	return true
}

// Pending is the set of not-yet-merged updates, kept sorted by value so a
// query can extract exactly the updates falling in its range.
type Pending struct {
	inserts []int64
	deletes []int64
}

// Insert queues value v for insertion.
func (p *Pending) Insert(v int64) {
	p.inserts = insertSorted(p.inserts, v)
}

// Delete queues value v for deletion. A delete of a value still sitting
// in the pending-insert queue annihilates that insert instead of
// queueing: the merge applies deletes before inserts (so a queued
// delete can find its column copy), which means a delete whose target
// only exists as a pending insert would ripple through the column, find
// nothing, and be dropped — resurrecting the value when the insert
// merges after it.
func (p *Pending) Delete(v int64) {
	if i := sort.Search(len(p.inserts), func(i int) bool { return p.inserts[i] >= v }); i < len(p.inserts) && p.inserts[i] == v {
		p.inserts = append(p.inserts[:i], p.inserts[i+1:]...)
		return
	}
	p.deletes = insertSorted(p.deletes, v)
}

// InsertMany queues every value in vs for insertion. The batch is sorted
// once and merged into the queue in a single pass — O(k·log k + m) for k
// new values over an m-entry queue, against O(k·m) for k one-value
// inserts — which is what keeps the group-commit batcher's bulk apply
// cheap at large batch sizes.
func (p *Pending) InsertMany(vs []int64) {
	p.inserts = mergeSorted(p.inserts, vs)
}

// DeleteMany queues every value in vs for deletion, like InsertMany,
// with the same annihilation rule as Delete: each value first cancels
// one matching pending insert, and only the survivors are queued. One
// merge pass over the insert queue keeps the bulk path O(k·log k + m).
func (p *Pending) DeleteMany(vs []int64) {
	if len(vs) == 0 {
		return
	}
	batch := append([]int64(nil), vs...)
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	ins := p.inserts
	kept := ins[:0]
	var survivors []int64
	i := 0
	for _, v := range batch {
		for i < len(ins) && ins[i] < v {
			kept = append(kept, ins[i])
			i++
		}
		if i < len(ins) && ins[i] == v {
			i++ // annihilate one pending copy
			continue
		}
		survivors = append(survivors, v)
	}
	kept = append(kept, ins[i:]...)
	p.inserts = kept
	p.deletes = mergeSorted(p.deletes, survivors)
}

// Len returns the number of pending operations.
func (p *Pending) Len() int { return len(p.inserts) + len(p.deletes) }

// Snapshot returns copies of the queued inserts and deletes, sorted
// ascending — the serializable form a snapshot carries so a restore can
// re-queue them (core.SnapshotState.PendingInserts/PendingDeletes).
func (p *Pending) Snapshot() (inserts, deletes []int64) {
	if len(p.inserts) > 0 {
		inserts = append([]int64(nil), p.inserts...)
	}
	if len(p.deletes) > 0 {
		deletes = append([]int64(nil), p.deletes...)
	}
	return inserts, deletes
}

// Seed replaces the queues with copies of the given sorted value lists
// (the restore path of a snapshot carrying pending updates).
func (p *Pending) Seed(inserts, deletes []int64) {
	p.inserts = append(p.inserts[:0:0], inserts...)
	p.deletes = append(p.deletes[:0:0], deletes...)
}

// PendingInRange reports whether any pending update falls in [a, b).
func (p *Pending) PendingInRange(a, b int64) bool {
	return anyInRange(p.inserts, a, b) || anyInRange(p.deletes, a, b)
}

// takeRange removes and returns all queued values in [a, b).
func takeRange(queue *[]int64, a, b int64) []int64 {
	q := *queue
	lo := sort.Search(len(q), func(i int) bool { return q[i] >= a })
	hi := sort.Search(len(q), func(i int) bool { return q[i] >= b })
	if lo == hi {
		return nil
	}
	out := append([]int64(nil), q[lo:hi]...)
	*queue = append(q[:lo], q[hi:]...)
	return out
}

// mergeSorted merges a batch of values (any order) into the sorted queue
// q, returning the merged queue. The batch is copied before sorting, so
// the caller's slice is never reordered.
func mergeSorted(q []int64, vs []int64) []int64 {
	switch len(vs) {
	case 0:
		return q
	case 1:
		return insertSorted(q, vs[0])
	}
	batch := append([]int64(nil), vs...)
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	out := make([]int64, 0, len(q)+len(batch))
	i, j := 0, 0
	for i < len(q) && j < len(batch) {
		if q[i] <= batch[j] {
			out = append(out, q[i])
			i++
		} else {
			out = append(out, batch[j])
			j++
		}
	}
	out = append(out, q[i:]...)
	out = append(out, batch[j:]...)
	return out
}

func insertSorted(q []int64, v int64) []int64 {
	i := sort.Search(len(q), func(i int) bool { return q[i] >= v })
	q = append(q, 0)
	copy(q[i+1:], q[i:])
	q[i] = v
	return q
}

func anyInRange(q []int64, a, b int64) bool {
	i := sort.Search(len(q), func(i int) bool { return q[i] >= a })
	return i < len(q) && q[i] < b
}

// Index wraps a cracking index with pending-update machinery: updates are
// queued by Insert/Delete and merged lazily by Query, exactly for the
// range each query touches.
type Index struct {
	inner   core.Index
	engine  *core.Engine
	pending Pending
	merged  int64
}

// engineAccessor is satisfied by every engine-backed core index.
type engineAccessor interface {
	Engine() *core.Engine
}

// Wrap builds an updatable index around a core cracking index. The inner
// index must be engine-backed (every algorithm except Sort qualifies;
// a sorted array would need different update machinery entirely).
func Wrap(inner core.Index) (*Index, bool) {
	acc, ok := inner.(engineAccessor)
	if !ok {
		return nil, false
	}
	return &Index{inner: inner, engine: acc.Engine()}, true
}

// Engine exposes the wrapped index's engine (snapshotting, introspection).
func (u *Index) Engine() *core.Engine { return u.engine }

// Insert queues v for insertion; it becomes visible to the first query
// whose range covers it.
func (u *Index) Insert(v int64) { u.pending.Insert(v) }

// Delete queues v for deletion; it takes effect before the first query
// whose range covers it.
func (u *Index) Delete(v int64) { u.pending.Delete(v) }

// InsertMany queues every value in vs for insertion in one sorted merge
// (the group-commit bulk apply path).
func (u *Index) InsertMany(vs []int64) { u.pending.InsertMany(vs) }

// DeleteMany queues every value in vs for deletion, like InsertMany.
func (u *Index) DeleteMany(vs []int64) { u.pending.DeleteMany(vs) }

// Pending returns the number of not-yet-merged updates.
func (u *Index) Pending() int { return u.pending.Len() }

// PendingSnapshot returns copies of the queued inserts and deletes, for
// inclusion in a snapshot.
func (u *Index) PendingSnapshot() (inserts, deletes []int64) { return u.pending.Snapshot() }

// SeedPending replaces the queues with the given sorted value lists
// (restoring a snapshot that carried pending updates).
func (u *Index) SeedPending(inserts, deletes []int64) { u.pending.Seed(inserts, deletes) }

// Merged returns the number of updates merged into the column so far.
func (u *Index) Merged() int64 { return u.merged }

// Query merges the pending updates falling in [a, b), then answers the
// query through the wrapped cracking index.
func (u *Index) Query(a, b int64) core.Result {
	if u.pending.PendingInRange(a, b) {
		col, idx := u.engine.Column(), u.engine.CrackerIndex()
		u.engine.AbandonProgressivePartitions()
		for _, v := range takeRange(&u.pending.deletes, a, b) {
			if RippleDelete(col, idx, v) {
				u.merged++
			}
		}
		for _, v := range takeRange(&u.pending.inserts, a, b) {
			RippleInsert(col, idx, v)
			u.merged++
		}
	}
	return u.inner.Query(a, b)
}

// CanAnswerWithoutCracking reports whether [a, b) can be answered without
// mutating the index: no pending update falls in the range and both query
// bounds are converged in the underlying engine. It is the probe the
// adaptive executor (internal/exec) uses to route queries to its shared
// read path, and never mutates any state.
func (u *Index) CanAnswerWithoutCracking(a, b int64) bool {
	return !u.pending.PendingInRange(a, b) && u.engine.CanAnswerWithoutCracking(a, b)
}

// TryAnswerReadOnly answers [a, b) without mutating the index when no
// pending update falls in the range and both bounds are converged,
// appending to dst; ok is false otherwise.
func (u *Index) TryAnswerReadOnly(a, b int64, dst []int64) (_ []int64, ok bool) {
	if u.pending.PendingInRange(a, b) {
		return dst, false
	}
	return u.engine.TryAnswerReadOnly(a, b, dst)
}

// TryAnswerReadOnlyAggregate is TryAnswerReadOnly returning only (count,
// sum).
func (u *Index) TryAnswerReadOnlyAggregate(a, b int64) (count int, sum int64, ok bool) {
	if u.pending.PendingInRange(a, b) {
		return 0, 0, false
	}
	return u.engine.TryAnswerReadOnlyAggregate(a, b)
}

// Name implements the core.Index naming convention.
func (u *Index) Name() string { return "updatable(" + u.inner.Name() + ")" }

// Stats reports the wrapped index's counters.
func (u *Index) Stats() core.Stats { return u.inner.Stats() }
