package updates

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

// FuzzPendingInterleave drives an updatable index with arbitrary
// interleavings of single and bulk inserts, deletes and range queries,
// checking every answer against a multiset reference model. The
// property under attack is the pending-queue bookkeeping — in
// particular the annihilation rule (a delete whose target exists only
// as a pending insert must cancel it, not resurrect it at merge time)
// and its bulk-path twin in DeleteMany, across merge orders no
// hand-written sequence would think to try.
//
// Program encoding: each 3-byte chunk is one operation. Byte 0 picks
// the op (insert, delete, bulk insert, bulk delete, query) and the
// query width; bytes 1-2 pick the value, deliberately overflowing the
// initial domain so out-of-column inserts and misses are exercised.
func FuzzPendingInterleave(f *testing.F) {
	// The annihilation regression as a seed: insert-then-delete of a
	// value the column never held, then a covering query.
	f.Add([]byte{0, 77, 2, 1, 77, 2, 4, 70, 2})
	// Bulk flavors of the same, plus duplicate-heavy traffic.
	f.Add([]byte{2, 10, 0, 3, 10, 0, 4, 0, 0, 0, 10, 0, 0, 10, 0, 1, 10, 0, 4, 5, 0})
	f.Add([]byte{4, 0, 1, 1, 200, 0, 0, 200, 0, 4, 190, 0, 3, 200, 0, 2, 100, 1})

	f.Fuzz(func(t *testing.T, prog []byte) {
		const n = 512
		const domain = 1200 // values beyond the initial permutation's [0, 512)
		inner := core.NewCrack(xrand.New(11).Perm(n), core.Options{Seed: 11})
		u, ok := Wrap(inner)
		if !ok {
			t.Fatal("Wrap rejected a crack index")
		}
		model := make([]int, domain) // multiset: count per value
		for v := 0; v < n; v++ {
			model[v] = 1
		}
		modelInsert := func(v int64) { model[v]++ }
		modelDelete := func(v int64) {
			// A delete of an absent value queues, ripples, finds nothing and
			// is dropped — a no-op in multiset terms.
			if model[v] > 0 {
				model[v]--
			}
		}
		check := func(a, b int64) {
			res := u.Query(a, b)
			wantC, wantS := 0, int64(0)
			for v := a; v < b; v++ {
				wantC += model[v]
				wantS += v * int64(model[v])
			}
			if res.Count() != wantC || res.Sum() != wantS {
				t.Fatalf("query [%d, %d): got (%d, %d), model says (%d, %d)",
					a, b, res.Count(), res.Sum(), wantC, wantS)
			}
		}

		for i := 0; i+2 < len(prog) && i < 3*200; i += 3 {
			op := prog[i]
			v := (int64(prog[i+1]) | int64(prog[i+2])<<8) % domain
			switch op % 5 {
			case 0:
				u.Insert(v)
				modelInsert(v)
			case 1:
				u.Delete(v)
				modelDelete(v)
			case 2:
				vs := []int64{v, (v + 1) % domain, v} // duplicate on purpose
				u.InsertMany(vs)
				for _, x := range vs {
					modelInsert(x)
				}
			case 3:
				vs := []int64{v, v, (v + 3) % domain}
				u.DeleteMany(vs)
				for _, x := range vs {
					modelDelete(x)
				}
			case 4:
				width := int64(op>>4) + 1
				a := v % n
				check(a, min(a+width*13, domain))
			}
		}
		// Final sweep: the whole domain merges everything still pending;
		// counts, sums and crack invariants must all hold.
		check(0, domain)
		if u.Pending() != 0 {
			t.Fatalf("%d updates still pending after a full-domain query", u.Pending())
		}
		checkPieces(t, inner.Engine().Column(), inner.Engine().CrackerIndex())
	})
}
