package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cindex"
	"repro/internal/core"
	"repro/internal/xrand"
)

func TestFromSizesEven(t *testing.T) {
	ps := FromSizes([]int{25, 25, 25, 25}, 100)
	if ps.Pieces != 4 || ps.MinSize != 25 || ps.MaxSize != 25 || ps.MedianSize != 25 {
		t.Fatalf("even sizes: %+v", ps)
	}
	if ps.Skew != 0.25 {
		t.Fatalf("skew = %v", ps.Skew)
	}
	if math.Abs(ps.Entropy-1.0) > 1e-9 {
		t.Fatalf("entropy = %v, want 1.0 for even pieces", ps.Entropy)
	}
}

func TestFromSizesSkewed(t *testing.T) {
	ps := FromSizes([]int{97, 1, 1, 1}, 100)
	if ps.Skew != 0.97 {
		t.Fatalf("skew = %v", ps.Skew)
	}
	if ps.Entropy > 0.3 {
		t.Fatalf("entropy = %v, want low for one dominant piece", ps.Entropy)
	}
}

func TestFromSizesDegenerate(t *testing.T) {
	if ps := FromSizes(nil, 0); ps.Pieces != 0 || ps.Entropy != 0 {
		t.Fatalf("empty: %+v", ps)
	}
	ps := FromSizes([]int{100}, 100)
	if ps.Skew != 1.0 || ps.Entropy != 0 {
		t.Fatalf("single piece: %+v", ps)
	}
	if !strings.Contains(ps.String(), "pieces=1") {
		t.Fatalf("String() = %q", ps.String())
	}
}

func TestComputeFromTree(t *testing.T) {
	var tr cindex.Tree
	tr.Insert(50, 500)
	tr.Insert(20, 200)
	ps := Compute(&tr, 1000)
	if ps.Pieces != 3 || ps.MinSize != 200 || ps.MaxSize != 500 {
		t.Fatalf("%+v", ps)
	}
}

func TestHistogram(t *testing.T) {
	var tr cindex.Tree
	tr.Insert(10, 100)
	tr.Insert(20, 228)
	h := Histogram(&tr, 1024)
	if h == "" || !strings.Contains(h, "#") {
		t.Fatalf("histogram:\n%s", h)
	}
	lines := strings.Count(h, "\n")
	if lines < 2 {
		t.Fatalf("histogram has %d lines:\n%s", lines, h)
	}
}

func TestConvergenceOnRealCracking(t *testing.T) {
	// Random workload: skew must collapse quickly (the paper's ideal-ish
	// case). Sequential: skew stays near 1 for most of the run.
	const n = 100000
	runSkew := func(sequential bool) *Convergence {
		ix := core.NewCrack(xrand.New(1).Perm(n), core.Options{Seed: 2})
		rng := xrand.New(3)
		conv := &Convergence{}
		for i := 0; i < 100; i++ {
			var a int64
			if sequential {
				a = int64(i) * (n / 100)
			} else {
				a = rng.Int63n(n - 10)
			}
			ix.Query(a, a+10)
			conv.Record(ix.Engine().CrackerIndex(), n)
		}
		return conv
	}
	random := runSkew(false)
	seq := runSkew(true)
	if at := random.ConvergedAt(0.3); at < 0 || at > 20 {
		t.Fatalf("random workload converged at %d, want within 20 queries", at)
	}
	if at := seq.ConvergedAt(0.3); at >= 0 && at < 60 {
		t.Fatalf("sequential workload 'converged' at %d; it should stay skewed", at)
	}
	if len(seq.Pieces) != 100 || seq.Pieces[99] <= seq.Pieces[0] {
		t.Fatal("pieces series not recorded")
	}
}

func TestConvergedAtNever(t *testing.T) {
	c := &Convergence{MaxPieceShare: []float64{0.9, 0.8, 0.7}}
	if at := c.ConvergedAt(0.5); at != -1 {
		t.Fatalf("ConvergedAt = %d, want -1", at)
	}
	if at := c.ConvergedAt(0.75); at != 2 {
		t.Fatalf("ConvergedAt = %d, want 2", at)
	}
}
