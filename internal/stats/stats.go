// Package stats computes physical-layout statistics of a cracking index:
// piece-size distributions and convergence measures. The paper reasons
// about cracking's behavior through exactly these quantities — ideal
// cracking halves pieces (uniform sizes, fast convergence); pathological
// workloads leave one huge piece (maximal skew) — and the demo and
// harness use this package to make that visible.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cindex"
)

// PieceStats summarizes the piece-size distribution of a cracker index
// over a column of N tuples. The JSON tags are the wire form served by
// internal/server's /v1/stats endpoint.
type PieceStats struct {
	N          int     `json:"n"`
	Pieces     int     `json:"pieces"`
	MinSize    int     `json:"min_size"`
	MaxSize    int     `json:"max_size"`
	MedianSize int     `json:"median_size"`
	MeanSize   float64 `json:"mean_size"`
	// Skew is the largest piece's share of the column, in [1/Pieces, 1].
	// 1.0 means a single piece dominates (no useful adaptation yet).
	Skew float64 `json:"skew"`
	// Entropy is the normalized Shannon entropy of the piece-size
	// distribution, in [0, 1]; 1.0 means perfectly even pieces (the
	// paper's "ideal cracking" quicksort-like split).
	Entropy float64 `json:"entropy"`
}

// Compute derives PieceStats from the index of a column with n tuples.
func Compute(idx *cindex.Tree, n int) PieceStats {
	return FromSizes(SizesFromBounds(idx.Pieces(n)), n)
}

// SizesFromBounds converts piece boundary positions (as returned by
// cindex.Tree.Pieces: 0, every crack, n) to per-piece sizes.
func SizesFromBounds(bounds []int) []int {
	sizes := make([]int, 0, len(bounds)-1)
	for i := 1; i < len(bounds); i++ {
		sizes = append(sizes, bounds[i]-bounds[i-1])
	}
	return sizes
}

// FromSizes derives PieceStats from explicit piece sizes.
func FromSizes(sizes []int, n int) PieceStats {
	ps := PieceStats{N: n, Pieces: len(sizes)}
	if len(sizes) == 0 || n == 0 {
		return ps
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	ps.MinSize = sorted[0]
	ps.MaxSize = sorted[len(sorted)-1]
	ps.MedianSize = sorted[len(sorted)/2]
	ps.MeanSize = float64(n) / float64(len(sizes))
	ps.Skew = float64(ps.MaxSize) / float64(n)

	if len(sizes) > 1 {
		h := 0.0
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			p := float64(s) / float64(n)
			h -= p * math.Log2(p)
		}
		ps.Entropy = h / math.Log2(float64(len(sizes)))
		if ps.Entropy > 1 {
			ps.Entropy = 1
		}
	}
	return ps
}

// String renders a one-line summary.
func (ps PieceStats) String() string {
	return fmt.Sprintf("pieces=%d min=%d median=%d max=%d skew=%.3f entropy=%.3f",
		ps.Pieces, ps.MinSize, ps.MedianSize, ps.MaxSize, ps.Skew, ps.Entropy)
}

// Histogram renders piece sizes as a log2-bucketed text histogram, one
// line per occupied bucket.
func Histogram(idx *cindex.Tree, n int) string {
	return HistogramSizes(SizesFromBounds(idx.Pieces(n)))
}

// SizeBucket is one log2 bucket of a piece-size histogram: Count pieces
// of size at most Le tuples.
type SizeBucket struct {
	Le    int `json:"le"`
	Count int `json:"count"`
}

// BucketSizes bins piece sizes into log2 buckets (upper bounds 1, 2, 4,
// ...), returning only the occupied buckets in ascending Le order. It is
// the single source of the bucketing rule, shared by the text histogram
// below and internal/server's structured /v1/stats form.
func BucketSizes(sizes []int) []SizeBucket {
	counts := map[int]int{}
	maxB := 0
	for _, size := range sizes {
		b := 0
		for (1 << b) < size {
			b++
		}
		counts[b]++
		if b > maxB {
			maxB = b
		}
	}
	var out []SizeBucket
	for b := 0; b <= maxB; b++ {
		if c := counts[b]; c > 0 {
			out = append(out, SizeBucket{Le: 1 << b, Count: c})
		}
	}
	return out
}

// HistogramSizes renders explicit piece sizes as the same log2-bucketed
// text histogram (for callers holding sizes rather than a cracker index,
// like the DB facade's PieceSizes).
func HistogramSizes(sizes []int) string {
	buckets := BucketSizes(sizes)
	maxCount := 0
	for _, b := range buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range buckets {
		bar := strings.Repeat("#", scaleBar(b.Count, maxCount, 40))
		fmt.Fprintf(&sb, "<=%-10d %6d %s\n", b.Le, b.Count, bar)
	}
	return sb.String()
}

func scaleBar(c, max, width int) int {
	if max == 0 {
		return 0
	}
	w := c * width / max
	if w == 0 && c > 0 {
		w = 1
	}
	return w
}

// Convergence tracks how an index's physical organization evolves over a
// query sequence: record it after each query, then inspect the series.
type Convergence struct {
	MaxPieceShare []float64 // Skew after each recorded step
	Pieces        []int
}

// Record appends the current state.
func (c *Convergence) Record(idx *cindex.Tree, n int) {
	ps := Compute(idx, n)
	c.MaxPieceShare = append(c.MaxPieceShare, ps.Skew)
	c.Pieces = append(c.Pieces, ps.Pieces)
}

// RecordSizes appends the state derived from explicit piece sizes, for
// callers that observe the physical layout through DB.PieceSizes rather
// than holding the cracker index itself (the serving layer's telemetry).
func (c *Convergence) RecordSizes(sizes []int, n int) {
	ps := FromSizes(sizes, n)
	c.MaxPieceShare = append(c.MaxPieceShare, ps.Skew)
	c.Pieces = append(c.Pieces, ps.Pieces)
}

// ConvergedAt returns the first step at which the largest piece fell
// below the given share of the column, or -1 if it never did. It is the
// metric behind the paper's "curve flattens after k queries" statements.
func (c *Convergence) ConvergedAt(share float64) int {
	for i, s := range c.MaxPieceShare {
		if s < share {
			return i
		}
	}
	return -1
}
