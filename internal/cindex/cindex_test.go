package cindex

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// refIndex is a brute-force reference model: a sorted slice of cracks.
type refIndex struct {
	keys []int64
	pos  []int
}

func (r *refIndex) insert(key int64, pos int) bool {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	if i < len(r.keys) && r.keys[i] == key {
		return false
	}
	r.keys = append(r.keys, 0)
	r.pos = append(r.pos, 0)
	copy(r.keys[i+1:], r.keys[i:])
	copy(r.pos[i+1:], r.pos[i:])
	r.keys[i], r.pos[i] = key, pos
	return true
}

func (r *refIndex) pieceFor(v int64, n int) (lo, hi int, exact bool) {
	lo, hi = 0, n
	for i, k := range r.keys {
		if k <= v {
			lo = r.pos[i]
			if k == v {
				exact = true
			}
		} else {
			hi = r.pos[i]
			break
		}
	}
	return lo, hi, exact
}

func (r *refIndex) rangeShift(afterKey int64, delta int) {
	for i, k := range r.keys {
		if k > afterKey {
			r.pos[i] += delta
		}
	}
}

// checkAVL verifies BST ordering, AVL balance, and height bookkeeping.
func checkAVL(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(n *node, lo, hi int64) int
	walk = func(n *node, lo, hi int64) int {
		if n == nil {
			return 0
		}
		if n.key <= lo || n.key >= hi {
			t.Fatalf("BST order violated at key %d (bounds %d..%d)", n.key, lo, hi)
		}
		hl := walk(n.left, lo, n.key)
		hr := walk(n.right, n.key, hi)
		h := hl
		if hr > h {
			h = hr
		}
		h++
		if n.height != h {
			t.Fatalf("stale height at key %d: %d want %d", n.key, n.height, h)
		}
		if b := hl - hr; b < -1 || b > 1 {
			t.Fatalf("AVL balance violated at key %d: %d", n.key, b)
		}
		return h
	}
	const inf = int64(1) << 62
	walk(tr.root, -inf, inf)
}

func TestEmptyTree(t *testing.T) {
	var tr Tree
	lo, hi, exact := tr.PieceFor(42, 100)
	if lo != 0 || hi != 100 || exact {
		t.Fatalf("empty tree piece = [%d,%d) exact=%v, want [0,100) false", lo, hi, exact)
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has nonzero size or height")
	}
	if got := tr.Pieces(100); len(got) != 2 || got[0] != 0 || got[1] != 100 {
		t.Fatalf("empty tree pieces = %v, want [0 100]", got)
	}
}

func TestInsertAndPieceFor(t *testing.T) {
	var tr Tree
	// Fig. 1's end state: cracks at 7->pos2? use synthetic positions.
	tr.Insert(10, 40)
	tr.Insert(14, 60)
	tr.Insert(7, 25)
	tr.Insert(16, 80)

	cases := []struct {
		v      int64
		lo, hi int
		exact  bool
	}{
		{0, 0, 25, false},
		{6, 0, 25, false},
		{7, 25, 40, true},
		{8, 25, 40, false},
		{10, 40, 60, true},
		{13, 40, 60, false},
		{14, 60, 80, true},
		{15, 60, 80, false},
		{16, 80, 100, true},
		{99, 80, 100, false},
	}
	for _, c := range cases {
		lo, hi, exact := tr.PieceFor(c.v, 100)
		if lo != c.lo || hi != c.hi || exact != c.exact {
			t.Errorf("PieceFor(%d) = [%d,%d) %v, want [%d,%d) %v", c.v, lo, hi, exact, c.lo, c.hi, c.exact)
		}
	}
	checkAVL(t, &tr)
}

func TestInsertDuplicateKey(t *testing.T) {
	var tr Tree
	if !tr.Insert(5, 10) {
		t.Fatal("first insert rejected")
	}
	if tr.Insert(5, 20) {
		t.Fatal("duplicate insert accepted")
	}
	if tr.Len() != 1 {
		t.Fatalf("size = %d, want 1", tr.Len())
	}
	lo, _, _ := tr.PieceFor(5, 100)
	if lo != 10 {
		t.Fatalf("duplicate insert changed position: %d", lo)
	}
}

func TestHas(t *testing.T) {
	var tr Tree
	for _, k := range []int64{8, 3, 12, 1, 6} {
		tr.Insert(k, int(k)*10)
	}
	for _, k := range []int64{8, 3, 12, 1, 6} {
		if !tr.Has(k) {
			t.Fatalf("Has(%d) = false", k)
		}
	}
	for _, k := range []int64{0, 2, 7, 100} {
		if tr.Has(k) {
			t.Fatalf("Has(%d) = true", k)
		}
	}
}

func TestAscendOrderAndPieces(t *testing.T) {
	var tr Tree
	r := xrand.New(3)
	keys := r.Perm(200)
	for _, k := range keys {
		tr.Insert(k, int(k)) // position = key for a sorted column of [0,200)
	}
	var prev int64 = -1
	count := 0
	tr.Ascend(func(key int64, pos int) bool {
		if key <= prev {
			t.Fatalf("Ascend out of order: %d after %d", key, prev)
		}
		if pos != int(key) {
			t.Fatalf("Ascend position mismatch at key %d: %d", key, pos)
		}
		prev = key
		count++
		return true
	})
	if count != 200 {
		t.Fatalf("Ascend visited %d cracks, want 200", count)
	}
	pieces := tr.Pieces(200)
	if len(pieces) != 202 {
		t.Fatalf("Pieces length = %d, want 202", len(pieces))
	}
	if !sort.IntsAreSorted(pieces) {
		t.Fatal("piece boundaries not sorted")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, int(i))
	}
	count := 0
	tr.Ascend(func(key int64, pos int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d, want 10", count)
	}
}

func TestBalancedHeightUnderSequentialInserts(t *testing.T) {
	// Sequential key insertion is the classic AVL stress: a plain BST would
	// degenerate to a list. 2^12 keys must stay within AVL height bounds
	// (~1.44 log2 n ≈ 18).
	var tr Tree
	for i := 0; i < 4096; i++ {
		tr.Insert(int64(i), i)
	}
	if h := tr.Height(); h > 18 {
		t.Fatalf("height %d too large for 4096 sequential inserts", h)
	}
	checkAVL(t, &tr)
}

func TestAgainstReferenceModel(t *testing.T) {
	const n = 1 << 16
	r := xrand.New(7)
	var tr Tree
	ref := &refIndex{}
	for i := 0; i < 500; i++ {
		k := r.Int63n(n)
		p := int(k) // any monotone mapping works for piece semantics
		got := tr.Insert(k, p)
		want := ref.insert(k, p)
		if got != want {
			t.Fatalf("insert(%d) = %v, ref %v", k, got, want)
		}
	}
	checkAVL(t, &tr)
	for i := 0; i < 2000; i++ {
		v := r.Int63n(n)
		lo, hi, exact := tr.PieceFor(v, n)
		rlo, rhi, rexact := ref.pieceFor(v, n)
		if lo != rlo || hi != rhi || exact != rexact {
			t.Fatalf("PieceFor(%d) = [%d,%d) %v, ref [%d,%d) %v", v, lo, hi, exact, rlo, rhi, rexact)
		}
	}
}

func TestRangeShiftAgainstReference(t *testing.T) {
	const n = 1 << 16
	r := xrand.New(11)
	var tr Tree
	ref := &refIndex{}
	for i := 0; i < 300; i++ {
		k := r.Int63n(n)
		tr.Insert(k, int(k))
		ref.insert(k, int(k))
	}
	for i := 0; i < 200; i++ {
		after := r.Int63n(n)
		delta := 1
		if r.Bool() {
			delta = -1
		}
		tr.RangeShift(after, delta)
		ref.rangeShift(after, delta)
		// Interleave inserts to exercise pushDown during rebalancing.
		if i%3 == 0 {
			k := r.Int63n(n)
			// Positions must stay consistent with the reference; insert at
			// the reference's notion of position for this key.
			lo, _, exact := ref.pieceFor(k, n<<1)
			if !exact {
				p := lo + int(k)%97
				tr.Insert(k, p)
				ref.insert(k, p)
			}
		}
	}
	checkAVL(t, &tr)
	for i := 0; i < 3000; i++ {
		v := r.Int63n(n)
		lo, hi, exact := tr.PieceFor(v, n<<1)
		rlo, rhi, rexact := ref.pieceFor(v, n<<1)
		if lo != rlo || hi != rhi || exact != rexact {
			t.Fatalf("after shifts, PieceFor(%d) = [%d,%d) %v, ref [%d,%d) %v", v, lo, hi, exact, rlo, rhi, rexact)
		}
	}
	// Ascend must also report shifted absolute positions.
	i := 0
	tr.Ascend(func(key int64, pos int) bool {
		if key != ref.keys[i] || pos != ref.pos[i] {
			t.Fatalf("Ascend[%d] = (%d,%d), ref (%d,%d)", i, key, pos, ref.keys[i], ref.pos[i])
		}
		i++
		return true
	})
}

func TestRangeShiftQuick(t *testing.T) {
	f := func(keys []int64, after int64, delta8 int8, seed uint64) bool {
		var tr Tree
		ref := &refIndex{}
		for _, k := range keys {
			tr.Insert(k, int(k%1000))
			ref.insert(k, int(k%1000))
		}
		delta := int(delta8)
		tr.RangeShift(after, delta)
		ref.rangeShift(after, delta)
		ok := true
		i := 0
		tr.Ascend(func(key int64, pos int) bool {
			if i >= len(ref.keys) || key != ref.keys[i] || pos != ref.pos[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(ref.keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterInheritance(t *testing.T) {
	var tr Tree
	// Whole column is one piece; bump its counter to 5.
	*tr.CounterFor(50) = 5
	// Crack at 40 splits it; both resulting pieces must hold counter 5.
	tr.Insert(40, 400)
	if c := *tr.CounterFor(10); c != 5 {
		t.Fatalf("left piece counter = %d, want 5", c)
	}
	if c := *tr.CounterFor(99); c != 5 {
		t.Fatalf("right piece counter = %d, want 5", c)
	}
	// Bump only the right piece, then split it again.
	*tr.CounterFor(99) = 9
	tr.Insert(70, 700)
	if c := *tr.CounterFor(45); c != 9 {
		t.Fatalf("piece [40,70) counter = %d, want 9 (inherited)", c)
	}
	if c := *tr.CounterFor(80); c != 9 {
		t.Fatalf("piece [70,inf) counter = %d, want 9 (inherited)", c)
	}
	if c := *tr.CounterFor(10); c != 5 {
		t.Fatalf("piece below 40 counter = %d, want 5 (untouched)", c)
	}
}

func TestCounterPointerStability(t *testing.T) {
	var tr Tree
	tr.Insert(100, 10)
	p := tr.CounterFor(150)
	*p = 3
	// Inserting far below must not invalidate the pointer's meaning.
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, int(i))
	}
	if *tr.CounterFor(150) != 3 {
		t.Fatal("counter lost after unrelated inserts")
	}
}

func TestCrackPositionsMonotone(t *testing.T) {
	// In a real cracking run, keys and positions are inserted in tandem
	// (larger keys at larger positions). Verify Pieces stays sorted through
	// a random cracking simulation.
	r := xrand.New(13)
	const n = 10000
	var tr Tree
	ref := make(map[int64]bool)
	for i := 0; i < 500; i++ {
		k := r.Int63n(n)
		if ref[k] {
			continue
		}
		ref[k] = true
		tr.Insert(k, int(k)) // sorted column: position == key
	}
	pieces := tr.Pieces(n)
	if !sort.IntsAreSorted(pieces) {
		t.Fatal("piece positions not monotone in key order")
	}
	checkAVL(t, &tr)
}

func BenchmarkInsert(b *testing.B) {
	r := xrand.New(1)
	keys := make([]int64, b.N)
	for i := range keys {
		keys[i] = r.Int63n(1 << 40)
	}
	b.ResetTimer()
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], int(keys[i]&0xffff))
	}
}

func BenchmarkPieceFor(b *testing.B) {
	r := xrand.New(1)
	var tr Tree
	for i := 0; i < 100000; i++ {
		k := r.Int63n(1 << 40)
		tr.Insert(k, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PieceFor(r.Int63n(1<<40), 1<<30)
	}
}

func BenchmarkRangeShift(b *testing.B) {
	r := xrand.New(1)
	var tr Tree
	for i := 0; i < 100000; i++ {
		tr.Insert(r.Int63n(1<<40), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RangeShift(r.Int63n(1<<40), 1)
	}
}

func TestBoundConverged(t *testing.T) {
	var tr Tree
	const n = 1000
	// Empty tree: the whole column is one piece; converged only when the
	// threshold covers it.
	if tr.BoundConverged(500, n, 10) {
		t.Fatal("large single piece reported converged")
	}
	if !tr.BoundConverged(500, n, n) {
		t.Fatal("threshold >= piece size must converge")
	}
	tr.Insert(100, 100)
	tr.Insert(200, 200)
	// Exact crack: converged regardless of threshold.
	if !tr.BoundConverged(100, n, 0) {
		t.Fatal("exact crack not converged")
	}
	// Value inside piece [100, 200): piece has 100 tuples.
	if tr.BoundConverged(150, n, 99) {
		t.Fatal("piece of 100 converged at threshold 99")
	}
	if !tr.BoundConverged(150, n, 100) {
		t.Fatal("piece of 100 not converged at threshold 100")
	}
	// Probing must not mutate the tree.
	if tr.Len() != 2 {
		t.Fatalf("probe changed the tree: %d cracks", tr.Len())
	}
}
