// Package cindex implements the cracker index: the tree structure a
// cracking DBMS maintains to record which piece of the cracker column holds
// which value range (original cracking uses AVL trees [16]; so does this
// package).
//
// A crack (key, pos) states that every tuple at a position < pos has a
// value < key, and every tuple at a position >= pos has a value >= key.
// Cracks are immutable once placed — physical reorganization only ever
// happens inside pieces — with one exception: updates. Ripple insertion and
// deletion shift all cracks above the affected piece by one position, which
// this tree supports in O(log n) through lazy subtree position deltas.
//
// Each node additionally carries the crack counter of the piece that starts
// at it (used by the ScrackMon selective strategy of §4): when a crack
// splits a piece, the new piece inherits its parent piece's counter, exactly
// as the paper specifies.
package cindex

// Tree is an AVL tree over cracks, keyed by pivot value. The zero value is
// an empty tree ready for use.
type Tree struct {
	root     *node
	size     int
	counter0 int64 // crack counter of the piece that starts at position 0
}

type node struct {
	key     int64 // pivot value
	pos     int   // crack position, relative to accumulated ancestor shifts
	shift   int   // lazy position delta applying to both children's subtrees
	counter int64 // crack counter of the piece starting at this crack
	height  int
	left    *node
	right   *node
}

// Len returns the number of cracks in the index.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (0 for an empty tree).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

// pushDown moves this node's pending subtree shift onto its children. It
// must be called on every node along a path that is about to be
// restructured (rotations re-parent subtrees, which would otherwise change
// the set of ancestors whose shifts apply).
func (n *node) pushDown() {
	if n.shift == 0 {
		return
	}
	if n.left != nil {
		n.left.pos += n.shift
		n.left.shift += n.shift
	}
	if n.right != nil {
		n.right.pos += n.shift
		n.right.shift += n.shift
	}
	n.shift = 0
}

func (n *node) fix() {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func (n *node) balance() int { return height(n.left) - height(n.right) }

// rotations assume the participating nodes have zero pending shift, which
// insert guarantees by pushing down along the descent path.
func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.fix()
	x.fix()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.fix()
	y.fix()
	return y
}

func rebalance(n *node) *node {
	n.fix()
	switch b := n.balance(); {
	case b > 1:
		n.pushDown()
		n.left.pushDown()
		if n.left.balance() < 0 {
			n.left.right.pushDown()
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case b < -1:
		n.pushDown()
		n.right.pushDown()
		if n.right.balance() > 0 {
			n.right.left.pushDown()
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert adds the crack (key, pos). If a crack with the same key already
// exists the tree is unchanged and Insert returns false. The piece split by
// the new crack passes its crack counter on to the new piece.
func (t *Tree) Insert(key int64, pos int) bool {
	inherited := *t.CounterFor(key)
	inserted := false
	t.root = t.insert(t.root, key, pos, inherited, &inserted)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree) insert(n *node, key int64, pos int, counter int64, inserted *bool) *node {
	if n == nil {
		*inserted = true
		return &node{key: key, pos: pos, counter: counter, height: 1}
	}
	n.pushDown()
	switch {
	case key < n.key:
		n.left = t.insert(n.left, key, pos, counter, inserted)
	case key > n.key:
		n.right = t.insert(n.right, key, pos, counter, inserted)
	default:
		return n // crack already known
	}
	if !*inserted {
		return n
	}
	return rebalance(n)
}

// PieceFor returns the piece [lo, hi) of a column of n tuples that holds
// value v, together with exact: whether a crack lies exactly at key v (in
// which case a query bound at v needs no further cracking).
func (t *Tree) PieceFor(v int64, n int) (lo, hi int, exact bool) {
	lo, hi = 0, n
	acc := 0
	cur := t.root
	for cur != nil {
		abs := cur.pos + acc
		switch {
		case v < cur.key:
			hi = abs
			acc += cur.shift
			cur = cur.left
		case v > cur.key:
			lo = abs
			acc += cur.shift
			cur = cur.right
		default:
			lo = abs
			exact = true
			// The piece's end is the successor crack's position.
			acc += cur.shift
			cur = cur.right
			for cur != nil {
				hi = cur.pos + acc
				acc += cur.shift
				cur = cur.left
			}
			return lo, hi, true
		}
	}
	return lo, hi, false
}

// BoundConverged reports whether a query bound at value v would trigger no
// physical reorganization in a column of n tuples: either a crack lies
// exactly at v, or the piece holding v has at most noCrack tuples — small
// enough that scanning it beats splitting it. It is the per-bound half of
// the executor's converged-query probe and never mutates the tree, so it is
// safe to call under a shared (read) lock.
func (t *Tree) BoundConverged(v int64, n, noCrack int) bool {
	lo, hi, exact := t.PieceFor(v, n)
	return exact || hi-lo <= noCrack
}

// Has reports whether a crack at exactly key v exists.
func (t *Tree) Has(v int64) bool {
	cur := t.root
	for cur != nil {
		switch {
		case v < cur.key:
			cur = cur.left
		case v > cur.key:
			cur = cur.right
		default:
			return true
		}
	}
	return false
}

// CounterFor returns a pointer to the crack counter of the piece containing
// value v. Counters survive position shifts; the pointer remains valid until
// the piece is split by a new crack.
func (t *Tree) CounterFor(v int64) *int64 {
	best := &t.counter0
	cur := t.root
	for cur != nil {
		if v < cur.key {
			cur = cur.left
		} else {
			best = &cur.counter
			cur = cur.right
		}
	}
	return best
}

// RangeShift adds delta to the position of every crack whose key is
// strictly greater than afterKey, in O(log n). Ripple updates use it: an
// insertion into the piece containing value v shifts every crack above that
// piece one position to the right.
func (t *Tree) RangeShift(afterKey int64, delta int) {
	cur := t.root
	for cur != nil {
		if cur.key > afterKey {
			cur.pos += delta
			if cur.right != nil {
				cur.right.pos += delta
				cur.right.shift += delta
			}
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
}

// Ascend calls fn for every crack in increasing key order with its absolute
// position, stopping early if fn returns false.
func (t *Tree) Ascend(fn func(key int64, pos int) bool) {
	ascend(t.root, 0, fn)
}

func ascend(n *node, acc int, fn func(key int64, pos int) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, acc+n.shift, fn) {
		return false
	}
	if !fn(n.key, n.pos+acc) {
		return false
	}
	return ascend(n.right, acc+n.shift, fn)
}

// AscendGreater calls fn for every crack with key strictly greater than
// afterKey, in increasing key order, stopping early if fn returns false.
func (t *Tree) AscendGreater(afterKey int64, fn func(key int64, pos int) bool) {
	ascendGreater(t.root, 0, afterKey, fn)
}

func ascendGreater(n *node, acc int, after int64, fn func(key int64, pos int) bool) bool {
	if n == nil {
		return true
	}
	if n.key > after {
		if !ascendGreater(n.left, acc+n.shift, after, fn) {
			return false
		}
		if !fn(n.key, n.pos+acc) {
			return false
		}
	}
	return ascendGreater(n.right, acc+n.shift, after, fn)
}

// DescendGreater calls fn for every crack with key strictly greater than
// afterKey, in decreasing key order, stopping early if fn returns false.
// Ripple insertion visits exactly these cracks, highest piece first.
func (t *Tree) DescendGreater(afterKey int64, fn func(key int64, pos int) bool) {
	descendGreater(t.root, 0, afterKey, fn)
}

func descendGreater(n *node, acc int, after int64, fn func(key int64, pos int) bool) bool {
	if n == nil {
		return true
	}
	if !descendGreater(n.right, acc+n.shift, after, fn) {
		return false
	}
	if n.key > after {
		if !fn(n.key, n.pos+acc) {
			return false
		}
		return descendGreater(n.left, acc+n.shift, after, fn)
	}
	return true
}

// Pieces returns the piece boundaries of a column with n tuples as a sorted
// slice of positions, beginning with 0 and ending with n. A freshly created
// index yields [0, n]: one piece covering the whole column.
func (t *Tree) Pieces(n int) []int {
	out := make([]int, 0, t.size+2)
	out = append(out, 0)
	t.Ascend(func(_ int64, pos int) bool {
		out = append(out, pos)
		return true
	})
	out = append(out, n)
	return out
}
