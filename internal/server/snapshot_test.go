package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	crackdb "repro"
)

func decodeSnapshot(t *testing.T, body []byte) SnapshotResponse {
	t.Helper()
	var resp SnapshotResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return resp
}

func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.crks")
	for _, mode := range []crackdb.Concurrency{crackdb.Single, crackdb.Shared, crackdb.Sharded(4)} {
		s := newTestServer(t, mode, Config{SnapshotPath: path})
		// Warm the index so the capture carries real refinement.
		for i := 0; i < 30; i++ {
			lo := int64(i * 300)
			rec := post(t, s, "/v1/query", fmt.Sprintf(`{"lo":%d,"hi":%d}`, lo, lo+50))
			if rec.Code != http.StatusOK {
				t.Fatalf("%v: warm query status %d", mode, rec.Code)
			}
		}
		rec := post(t, s, "/v1/snapshot", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%v: snapshot status %d: %s", mode, rec.Code, rec.Body)
		}
		resp := decodeSnapshot(t, rec.Body.Bytes())
		if resp.Path != path || resp.Rows != testRows || resp.Bytes == 0 {
			t.Fatalf("%v: snapshot response %+v", mode, resp)
		}
		wantParts := 1
		if mode == crackdb.Sharded(4) {
			wantParts = 4
		}
		if resp.Parts != wantParts || resp.Pieces < 20 {
			t.Fatalf("%v: parts=%d pieces=%d, want %d parts and warmed pieces",
				mode, resp.Parts, resp.Pieces, wantParts)
		}
		// The captured file restores to oracle-correct answers.
		restored, err := crackdb.OpenSnapshotFile(path, crackdb.DD1R)
		if err != nil {
			t.Fatalf("%v: restore: %v", mode, err)
		}
		agg, err := restored.QueryAggregate(context.Background(), crackdb.Range(100, 400))
		wc, ws := oracle(100, 400, testRows)
		if err != nil || int64(agg.Count) != wc || agg.Sum != ws {
			t.Fatalf("%v: restored aggregate %+v err=%v", mode, agg, err)
		}
		// The stats counter reflects the capture.
		var st StatsResponse
		if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.SnapshotsTaken != 1 {
			t.Fatalf("%v: snapshots_taken=%d", mode, st.SnapshotsTaken)
		}
	}
}

func TestSnapshotUnconfigured(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	rec := post(t, s, "/v1/snapshot", "")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "snapshot_unconfigured" {
		t.Fatalf("error body %s (err %v)", rec.Body, err)
	}
}

func TestSnapshotPendingUpdatesConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.crks")
	s := newTestServer(t, crackdb.Shared, Config{SnapshotPath: path})
	if rec := post(t, s, "/v1/insert", `{"value": 42}`); rec.Code != http.StatusOK {
		t.Fatalf("insert status %d", rec.Code)
	}
	// Strict captures refuse while updates are queued — the explicit
	// clean-cut path.
	rec := post(t, s, "/v1/snapshot", `{"strict": true}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("strict snapshot with pending updates: status %d, want 409", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "pending_updates" {
		t.Fatalf("error body %s (err %v)", rec.Body, err)
	}
	// The default capture carries the queue instead of refusing, and the
	// restored DB re-queues it.
	rec = post(t, s, "/v1/snapshot", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot with pending updates: status %d: %s", rec.Code, rec.Body)
	}
	if resp := decodeSnapshot(t, rec.Body.Bytes()); resp.Pending != 1 {
		t.Fatalf("snapshot response pending=%d, want 1", resp.Pending)
	}
	restored, err := crackdb.OpenSnapshotFile(path, crackdb.DD1R)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n := restored.PendingUpdates(); n != 1 {
		t.Fatalf("restored pending=%d, want 1", n)
	}
	// A covering query merges the queue; the strict capture then succeeds.
	if rec := post(t, s, "/v1/query", `{"lo":0,"hi":100}`); rec.Code != http.StatusOK {
		t.Fatalf("merge query status %d", rec.Code)
	}
	if rec := post(t, s, "/v1/snapshot", `{"strict": true}`); rec.Code != http.StatusOK {
		t.Fatalf("strict snapshot after merge: status %d: %s", rec.Code, rec.Body)
	}
}

// TestSnapshotUnderLoad is the -race variant of the capture path:
// concurrent snapshot captures race full query traffic through a tight
// admission limit. The drains must interleave cleanly — no deadlock
// against the admission semaphore, no torn capture — and the final file
// must restore to oracle-validated answers in every mode.
func TestSnapshotUnderLoad(t *testing.T) {
	for _, mode := range []crackdb.Concurrency{crackdb.Shared, crackdb.Sharded(4)} {
		path := filepath.Join(t.TempDir(), "under-load.crks")
		s := newTestServer(t, mode, Config{SnapshotPath: path, MaxInFlight: 4})

		const clients = 6
		var wg sync.WaitGroup
		var rejected, captured atomic.Int64
		fail := make(chan string, clients+2)
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					lo := int64((g*911 + i*257) % (testRows - 200))
					rec := post(t, s, "/v1/query", fmt.Sprintf(`{"lo":%d,"hi":%d}`, lo, lo+150))
					switch rec.Code {
					case http.StatusOK:
						var qr QueryResponse
						if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
							fail <- err.Error()
							return
						}
						wc, ws := oracle(lo, lo+150, testRows)
						if int64(qr.Results[0].Count) != wc || qr.Results[0].Sum != ws {
							fail <- fmt.Sprintf("wrong answer for [%d,%d)", lo, lo+150)
							return
						}
					case http.StatusTooManyRequests:
						rejected.Add(1) // fine under a limit of 4
					default:
						fail <- fmt.Sprintf("query status %d: %s", rec.Code, rec.Body)
						return
					}
				}
			}(g)
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					rec := post(t, s, "/v1/snapshot", "")
					switch rec.Code {
					case http.StatusOK:
						captured.Add(1)
					case http.StatusTooManyRequests:
						rejected.Add(1)
					default:
						fail <- fmt.Sprintf("snapshot status %d: %s", rec.Code, rec.Body)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(fail)
		for msg := range fail {
			t.Fatalf("%v: %s", mode, msg)
		}
		// At least one capture must land even under the tight limit; then
		// take a final, uncontended one and restore-validate it.
		if rec := post(t, s, "/v1/snapshot", ""); rec.Code != http.StatusOK {
			t.Fatalf("%v: final snapshot status %d: %s", mode, rec.Code, rec.Body)
		}
		captured.Add(1)
		t.Logf("%v: %d captures, %d admission rejects", mode, captured.Load(), rejected.Load())
		for _, tgtMode := range []crackdb.Concurrency{crackdb.Single, crackdb.Shared, crackdb.Sharded(3)} {
			restored, err := crackdb.OpenSnapshotFile(path, crackdb.DD1R,
				crackdb.WithConcurrency(tgtMode))
			if err != nil {
				t.Fatalf("%v->%v: restore: %v", mode, tgtMode, err)
			}
			for i := 0; i < 25; i++ {
				lo := int64(i * 370)
				agg, err := restored.QueryAggregate(context.Background(), crackdb.Range(lo, lo+200))
				wc, ws := oracle(lo, lo+200, testRows)
				if err != nil || int64(agg.Count) != wc || agg.Sum != ws {
					t.Fatalf("%v->%v: [%d,%d): %+v err=%v", mode, tgtMode, lo, lo+200, agg, err)
				}
			}
		}
	}
}
