package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	crackdb "repro"
)

// newGroupCommitServer opens a Shared DB with group commit enabled and
// wraps it in a Server.
func newGroupCommitServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	db, err := crackdb.Open(crackdb.MakeData(testRows, 7), crackdb.DD1R,
		crackdb.WithSeed(7), crackdb.WithConcurrency(crackdb.Shared),
		crackdb.WithGroupCommit(64, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg.Info = Info{Rows: testRows, Algorithm: crackdb.DD1R, Seed: 7, Permutation: true}
	return New(db, cfg)
}

// TestRejectCarriesRetryAfter: every 429 tells the client when to come
// back (RFC 9110 Retry-After, in seconds, at least 1).
func TestRejectCarriesRetryAfter(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{MaxInFlight: 1})
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.hold = func() {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"lo": 0, "hi": 10}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"lo": 0, "hi": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	close(release)
	s.hold = nil
}

// TestAdmissionWaitQueues: with AdmissionWait set, a request arriving at
// the in-flight limit queues for a freed slot instead of failing fast.
func TestAdmissionWaitQueues(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{MaxInFlight: 1, AdmissionWait: 5 * time.Second})
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.hold = func() {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"lo": 0, "hi": 10}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started // first request owns the slot

	second := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"lo": 0, "hi": 10}`))
		if err != nil {
			second <- -1
			return
		}
		resp.Body.Close()
		second <- resp.StatusCode
	}()
	// The second request must be parked in the admission queue, not 429ed.
	select {
	case code := <-second:
		t.Fatalf("second request finished early with %d", code)
	case <-time.After(50 * time.Millisecond):
	}
	close(release) // first request finishes; its slot admits the second
	if code := <-second; code != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", code)
	}
	s.hold = nil
	if got := s.rejects.Load(); got != 0 {
		t.Fatalf("rejects = %d, want 0", got)
	}
}

// TestUpdateBatchResponse: a multi-value insert reports one consistent
// post-batch pending count and how many values it applied.
func TestUpdateBatchResponse(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	rec := post(t, s, "/v1/insert", `{"values": [10001, 10002, 10003]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Accepted != 3 || ur.Pending != 3 {
		t.Fatalf("accepted=%d pending=%d, want 3/3", ur.Accepted, ur.Pending)
	}
	if ur.Grouped {
		t.Fatal("Grouped true without group commit")
	}
	rec = post(t, s, "/v1/delete", `{"values": [5]}`)
	var dr UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	// Deletes queue separately until a covering query merges them, so
	// pending is the consistent post-batch total: 3 inserts + 1 delete.
	if dr.Accepted != 1 || dr.Pending != 4 {
		t.Fatalf("accepted=%d pending=%d, want 1/4", dr.Accepted, dr.Pending)
	}
	// The queued updates are visible to queries (lazy merge).
	q := decodeQuery(t, post(t, s, "/v1/query", `{"lo": 10000, "hi": 10010, "aggregate": true}`))
	if q.Results[0].Count != 3 {
		t.Fatalf("count = %d, want 3", q.Results[0].Count)
	}
	q = decodeQuery(t, post(t, s, "/v1/query", `{"lo": 0, "hi": 10, "aggregate": true}`))
	if q.Results[0].Count != 9 {
		t.Fatalf("count = %d, want 9 (5 deleted)", q.Results[0].Count)
	}
}

// TestGroupCommitOverHTTP: the full path — writes through /v1/insert on a
// group-commit DB are acked, visible, decomposed in the response, and
// surfaced on /v1/stats and /debug/metrics.
func TestGroupCommitOverHTTP(t *testing.T) {
	s := newGroupCommitServer(t, Config{})
	rec := post(t, s, "/v1/insert", `{"values": [10001, 10002, 10003, 10004]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if !ur.Grouped || ur.Accepted != 4 {
		t.Fatalf("grouped=%v accepted=%d, want true/4", ur.Grouped, ur.Accepted)
	}
	if ur.ApplyNS <= 0 {
		t.Fatalf("apply_ns = %d, want > 0", ur.ApplyNS)
	}
	q := decodeQuery(t, post(t, s, "/v1/query", `{"lo": 10000, "hi": 10010, "aggregate": true}`))
	if q.Results[0].Count != 4 {
		t.Fatalf("count = %d, want 4", q.Results[0].Count)
	}

	var st StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.GroupCommit == nil {
		t.Fatal("stats: group_commit missing on a group-commit DB")
	}
	if st.GroupCommit.Ops != 4 || st.GroupCommit.Flushes == 0 {
		t.Fatalf("stats: ops=%d flushes=%d", st.GroupCommit.Ops, st.GroupCommit.Flushes)
	}
	if st.GroupCommit.BatchSize != 64 {
		t.Fatalf("stats: batch_size = %d, want 64", st.GroupCommit.BatchSize)
	}

	body := get(t, s, "/debug/metrics").Body.String()
	for _, want := range []string{
		"crackserver_groupcommit_flushes_total",
		"crackserver_groupcommit_ops_total 4",
		"crackserver_groupcommit_enqueued_total",
		"crackserver_groupcommit_max_batch",
		`crackserver_update_stage_seconds_count{stage="apply"} 1`,
		`crackserver_update_stage_seconds_bucket{stage="queue",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
