package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"slices"
	"sync"
	"testing"
	"time"

	crackdb "repro"
)

// TestConcurrentClientsCrossMode replays one predicate workload through
// concurrent HTTP clients against servers in every concurrency mode and
// asserts each answer equals the in-process answer of a Scan-backed DB —
// the serving layer's cross-mode equivalence property. CI runs it under
// -race.
func TestConcurrentClientsCrossMode(t *testing.T) {
	const rows = 20_000
	type query struct {
		item QueryItem
		pred crackdb.Predicate
	}
	queries := make([]query, 0, 120)
	for i := 0; i < 100; i++ {
		lo := int64(i*37) % (rows - 200)
		it := QueryItem{Lo: lo, Hi: lo + int64(50+i%100)}
		queries = append(queries, query{item: it})
	}
	for i := 0; i < 20; i++ {
		a := int64(i * 311 % (rows - 1000))
		it := QueryItem{Or: []WireRange{{Lo: a, Hi: a + 40}, {Lo: a + 500, Hi: a + 520}}}
		queries = append(queries, query{item: it})
	}
	for i := range queries {
		p, err := queries[i].item.Predicate()
		if err != nil {
			t.Fatal(err)
		}
		queries[i].pred = p
	}

	// In-process expectation: the Scan baseline over the same data never
	// reorganizes, so it is a trustworthy oracle for arbitrary data.
	oracleDB, err := crackdb.Open(crackdb.MakeData(rows, 11), crackdb.Scan)
	if err != nil {
		t.Fatal(err)
	}
	defer oracleDB.Close()
	want := make([][]int64, len(queries))
	for i, q := range queries {
		res, err := oracleDB.Query(context.Background(), q.pred)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Owned()
		slices.Sort(want[i])
	}

	for _, mode := range []crackdb.Concurrency{crackdb.Single, crackdb.Shared, crackdb.Sharded(4)} {
		t.Run(mode.String(), func(t *testing.T) {
			db, err := crackdb.Open(crackdb.MakeData(rows, 11), crackdb.DD1R,
				crackdb.WithSeed(3), crackdb.WithConcurrency(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			s := New(db, Config{Info: Info{Rows: rows, Permutation: true}})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			c := NewClient(ts.URL, nil)

			const clients = 8
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Each client walks the whole query list at its own
					// offset, so the same ranges hit the server in
					// different adaptation states.
					for k := 0; k < len(queries); k++ {
						i := (k + g*17) % len(queries)
						resp, err := c.Query(context.Background(), QueryRequest{QueryItem: queries[i].item})
						if err != nil {
							errc <- fmt.Errorf("client %d query %d: %w", g, i, err)
							return
						}
						got := slices.Clone(resp.Results[0].Values)
						slices.Sort(got)
						if !slices.Equal(got, want[i]) {
							errc <- fmt.Errorf("client %d query %d (%v): got %d values, want %d",
								g, i, queries[i].pred, len(got), len(want[i]))
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestRunLoadAgainstServer drives the crackbench -serve load generator
// end to end against an in-process server: every workload validates
// against the oracle and the telemetry shows the index refining during
// the run.
func TestRunLoadAgainstServer(t *testing.T) {
	const rows = 50_000
	db, err := crackdb.Open(crackdb.MakeData(rows, 5), crackdb.DD1R,
		crackdb.WithSeed(5), crackdb.WithConcurrency(crackdb.Shared))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{Info: Info{Rows: rows, Algorithm: crackdb.DD1R, Seed: 5, Permutation: true}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := os.Stderr
	if !testing.Verbose() {
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer devnull.Close()
		out = devnull
	}
	res, err := RunLoad(context.Background(), LoadConfig{
		URL: ts.URL, Clients: 6, Q: 150, S: 10, Seed: 9,
		Workloads:     []string{"random", "sequential", "skew"},
		StatsInterval: 20 * time.Millisecond,
	}, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 6*150 || res.Errors != 0 {
		t.Fatalf("queries=%d errors=%d", res.Queries, res.Errors)
	}
	if !res.Validated {
		t.Fatal("run was not oracle-validated")
	}
	if res.PiecesTo <= 1 {
		t.Fatalf("index did not refine: pieces -> %d", res.PiecesTo)
	}
	if len(res.Workloads) != 3 {
		t.Fatalf("workload reports: %+v", res.Workloads)
	}
	for _, wl := range res.Workloads {
		if wl.Queries == 0 || wl.P99 < wl.P50 || wl.Max < wl.P99 {
			t.Fatalf("latency report for %s: %+v", wl.Name, wl)
		}
	}
}
