package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/workload"
)

// LoadConfig configures RunLoad, the crackbench -serve load generator: N
// concurrent clients replay the paper's workloads against a running
// crackserver and report per-query latency quantiles, while a background
// poller samples /v1/stats so the run shows the index converging live.
type LoadConfig struct {
	// URL of the crackserver (e.g. "http://127.0.0.1:8080").
	URL string
	// Clients is the number of concurrent clients; client i replays
	// Workloads[i%len(Workloads)] with an independent seed.
	Clients int
	// Workloads names the internal/workload generators to replay
	// (default: random, sequential, skew — the paper's friendly,
	// adversarial and shifting patterns).
	Workloads []string
	// Q is the number of queries each client issues.
	Q int
	// S is the query selectivity in value units (the paper's default 10).
	S int64
	// Seed bases the per-client workload seeds.
	Seed uint64
	// Aggregate asks for (count, sum) only — no value payloads — which
	// isolates serving latency from response bandwidth.
	Aggregate bool
	// StatsInterval is the telemetry sampling period (default 500ms).
	StatsInterval time.Duration
	// Token is the bearer token presented on every request, for servers
	// started with -auth-token.
	Token string
	// Table scopes the run to one table of a multi-tenant catalog server
	// (crackserver -tables): every request is addressed under
	// /v1/tables/<Table>/. Empty targets a single-table server.
	Table string
	// HTTPClient overrides the transport (e.g. a TLS config trusting a
	// test certificate). Nil uses http.DefaultClient.
	HTTPClient *http.Client
}

func (cfg LoadConfig) withDefaults() LoadConfig {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"random", "sequential", "skew"}
	}
	if cfg.Q <= 0 {
		cfg.Q = 1000
	}
	if cfg.S <= 0 {
		cfg.S = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.StatsInterval <= 0 {
		cfg.StatsInterval = 500 * time.Millisecond
	}
	return cfg
}

// LoadResult summarizes one RunLoad: per-workload latency quantiles, the
// telemetry trajectory, and the validation verdict.
type LoadResult struct {
	Queries    int
	Errors     int
	Elapsed    time.Duration
	Workloads  []WorkloadLatency
	PiecesFrom int
	PiecesTo   int
	SkewFrom   float64
	SkewTo     float64
	Validated  bool
}

// WorkloadLatency is one workload's latency distribution across all its
// clients' queries.
type WorkloadLatency struct {
	Name    string
	Queries int
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// RunLoad replays cfg against a running crackserver, streaming progress
// to out, and returns the summary. When the server declares permutation
// data, every answer is validated against the closed-form oracle (the
// count and sum of any value range over a permutation of [0, rows) are
// arithmetic) and any mismatch fails the run.
func RunLoad(ctx context.Context, cfg LoadConfig, out io.Writer) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	c := NewClient(cfg.URL, cfg.HTTPClient, WithToken(cfg.Token), WithTable(cfg.Table))

	st, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reaching %s: %w", cfg.URL, err)
	}
	fmt.Fprintf(out, "server %s: %s mode=%s rows=%d permutation=%v\n",
		cfg.URL, st.Name, st.Mode, st.Rows, st.Permutation)
	if st.Rows <= 0 {
		return nil, fmt.Errorf("loadgen: server reports %d rows", st.Rows)
	}
	validate := st.Permutation && st.PendingUpdates == 0

	type clientRun struct {
		workload string
		lats     []time.Duration
		attempts int // queries sent (cancellation can stop a client early)
		queries  int // queries answered without transport error
		errs     []error
	}
	runs := make([]clientRun, cfg.Clients)
	start := time.Now()

	// Telemetry poller: sample /v1/stats on a fixed cadence so the run
	// itself demonstrates convergence under live traffic. The handshake
	// response is the before-traffic sample, so even a run shorter than
	// one polling period reports a real trajectory.
	pollCtx, stopPoll := context.WithCancel(ctx)
	var pollWG sync.WaitGroup
	telemetry := []StatsResponse{st}
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		t := time.NewTicker(cfg.StatsInterval)
		defer t.Stop()
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-t.C:
				if s, err := c.Stats(pollCtx); err == nil {
					telemetry = append(telemetry, s)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := range runs {
		name := cfg.Workloads[i%len(cfg.Workloads)]
		gen, err := workload.New(name, workload.Params{
			N: st.Rows, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed + uint64(i) + 1,
		})
		if err != nil {
			stopPoll()
			pollWG.Wait()
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		runs[i].workload = name
		runs[i].lats = make([]time.Duration, 0, cfg.Q)
		wg.Add(1)
		go func(run *clientRun, gen workload.Generator) {
			defer wg.Done()
			for q := 0; q < cfg.Q; q++ {
				if ctx.Err() != nil {
					return
				}
				lo, hi := gen.Next()
				run.attempts++
				t0 := time.Now()
				var res QueryResult
				var err error
				if cfg.Aggregate {
					res, err = c.Aggregate(ctx, lo, hi)
				} else {
					res, err = c.QueryRange(ctx, lo, hi)
				}
				lat := time.Since(t0)
				if err != nil {
					run.errs = append(run.errs, err)
					continue
				}
				run.lats = append(run.lats, lat)
				run.queries++
				if validate {
					wantC, wantS := oracle(lo, hi, st.Rows)
					if int64(res.Count) != wantC || res.Sum != wantS {
						run.errs = append(run.errs, fmt.Errorf(
							"wrong answer for [%d, %d): count=%d sum=%d, oracle count=%d sum=%d",
							lo, hi, res.Count, res.Sum, wantC, wantS))
					}
				}
			}
		}(&runs[i], gen)
	}
	wg.Wait()
	stopPoll()
	pollWG.Wait()
	elapsed := time.Since(start)

	// Final sample so short runs still get a before/after trajectory.
	if s, err := c.Stats(ctx); err == nil {
		telemetry = append(telemetry, s)
	}

	res := &LoadResult{Elapsed: elapsed, Validated: validate}
	byWorkload := map[string][]time.Duration{}
	attempts := 0
	for i := range runs {
		run := &runs[i]
		res.Queries += run.queries
		res.Errors += len(run.errs)
		attempts += run.attempts
		byWorkload[run.workload] = append(byWorkload[run.workload], run.lats...)
		for j, err := range run.errs {
			if j >= 3 { // cap the noise; the count is in the summary
				fmt.Fprintf(out, "client %d (%s): ... %d more errors\n", i, run.workload, len(run.errs)-j)
				break
			}
			fmt.Fprintf(out, "client %d (%s): %v\n", i, run.workload, err)
		}
	}
	for _, name := range cfg.Workloads {
		lats, seen := byWorkload[name]
		if !seen {
			continue
		}
		delete(byWorkload, name)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		wl := WorkloadLatency{Name: name, Queries: len(lats)}
		if len(lats) > 0 {
			wl.P50 = quantile(lats, 0.50)
			wl.P90 = quantile(lats, 0.90)
			wl.P99 = quantile(lats, 0.99)
			wl.Max = lats[len(lats)-1]
		}
		res.Workloads = append(res.Workloads, wl)
	}

	fmt.Fprintf(out, "\n%d clients x %d queries in %v (%.0f q/s, %d errors)\n",
		cfg.Clients, cfg.Q, elapsed.Round(time.Millisecond),
		float64(res.Queries)/elapsed.Seconds(), res.Errors)
	fmt.Fprintf(out, "%-12s %8s %10s %10s %10s %10s\n", "workload", "queries", "p50", "p90", "p99", "max")
	for _, wl := range res.Workloads {
		fmt.Fprintf(out, "%-12s %8d %10v %10v %10v %10v\n",
			wl.Name, wl.Queries, wl.P50, wl.P90, wl.P99, wl.Max)
	}

	if len(telemetry) > 0 {
		first, last := telemetry[0], telemetry[len(telemetry)-1]
		if first.Pieces != nil && last.Pieces != nil {
			res.PiecesFrom, res.PiecesTo = first.Pieces.Pieces, last.Pieces.Pieces
			res.SkewFrom, res.SkewTo = first.Pieces.Skew, last.Pieces.Skew
			fmt.Fprintf(out, "convergence: pieces %d -> %d, max piece share %.4f -> %.4f over %d samples\n",
				res.PiecesFrom, res.PiecesTo, res.SkewFrom, res.SkewTo, len(telemetry))
		}
		if last.HasPathStats {
			fmt.Fprintf(out, "executor paths: %d read-lock, %d write-lock queries\n",
				last.ReadQueries, last.WriteQueries)
		}
	}
	if res.Errors > 0 {
		// attempts, not queries+errors: a wrong answer counts as both an
		// answered query and an error, so summing would double-count it.
		return res, fmt.Errorf("loadgen: %d of %d queries failed or returned wrong answers", res.Errors, attempts)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// quantile reads the q-quantile from ascending-sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// oracle returns the closed-form (count, sum) of the values in [a, b)
// when the data is a permutation of [0, n) — the same identity
// internal/bench validates against (kept separate: bench depends on the
// root package, so it cannot be imported from here without a cycle).
func oracle(a, b, n int64) (count, sum int64) {
	if a < 0 {
		a = 0
	}
	if b > n {
		b = n
	}
	if a >= b {
		return 0, 0
	}
	count = b - a
	sum = (a + b - 1) * count / 2
	return count, sum
}
