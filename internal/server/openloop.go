package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/xrand"
)

// OpenLoadConfig configures RunOpenLoad, the open-loop (fixed-rate) load
// generator. Unlike RunLoad's closed loop — where each client waits for
// its answer before sending the next query, so a slow server quietly
// slows the offered load — an open loop fires requests on an arrival
// process at a fixed target rate regardless of completions. Latency under
// open-loop load includes the queueing delay a closed loop hides, which
// is exactly where group-commit batching and bounded admission earn their
// keep.
type OpenLoadConfig struct {
	// URL of the crackserver (e.g. "http://127.0.0.1:8080").
	URL string
	// Rate is the target arrival rate in requests per second.
	Rate float64
	// Arrival selects the arrival process: "poisson" (default;
	// exponential inter-arrival gaps, the classic open-loop model) or
	// "fixed" (deterministic 1/Rate spacing).
	Arrival string
	// Duration is how long load is offered.
	Duration time.Duration
	// WritePct is the percentage of arrivals that are writes ([0, 100]);
	// the rest are aggregate range reads. Answer validation is off as soon
	// as writes run: the permutation oracle no longer holds.
	WritePct int
	// WriteBatch is how many fresh values each write request carries
	// (default 1). Every written value is unique across the run.
	WriteBatch int
	// S is the read selectivity in value units (default 10).
	S int64
	// Seed drives the arrival gaps, the read ranges and the write values.
	Seed uint64
	// Deadline bounds each request (default 1s). A request that misses it
	// counts as a deadline miss, not a transport error.
	Deadline time.Duration
	// Token is the bearer token presented on every request.
	Token string
	// HTTPClient overrides the transport. Nil uses http.DefaultClient.
	HTTPClient *http.Client
}

func (cfg OpenLoadConfig) withDefaults() OpenLoadConfig {
	if cfg.Arrival == "" {
		cfg.Arrival = "poisson"
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.WriteBatch <= 0 {
		cfg.WriteBatch = 1
	}
	if cfg.S <= 0 {
		cfg.S = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = time.Second
	}
	return cfg
}

// LatencySummary is one request class's latency distribution.
type LatencySummary struct {
	Count int
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

func summarize(lats []time.Duration) LatencySummary {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s := LatencySummary{Count: len(lats)}
	if len(lats) > 0 {
		s.P50 = quantile(lats, 0.50)
		s.P90 = quantile(lats, 0.90)
		s.P99 = quantile(lats, 0.99)
		s.Max = lats[len(lats)-1]
	}
	return s
}

// OpenLoadResult summarizes one RunOpenLoad: how much of the offered load
// was served, the per-class end-to-end latency, and — when the server
// runs group commit — the write latency decomposed into its queue, flush
// and apply stages (each a distribution over the run's writes).
type OpenLoadResult struct {
	Offered        int // arrivals generated
	Reads, Writes  int // requests answered OK per class
	Rejected       int // 429s (admission control shedding load)
	DeadlineMisses int // requests that blew their deadline
	Errors         int // everything else
	Elapsed        time.Duration
	Throughput     float64 // answered requests per second

	ReadLat  LatencySummary
	WriteLat LatencySummary
	// Queue/Flush/Apply decompose the write latency server-side (zeroes
	// without group commit, where only flush/apply are populated).
	Queue, Flush, Apply LatencySummary

	// GroupCommit is the server's batcher counters after the run, when
	// the DB runs group commit.
	GroupCommit *GroupCommitInfo
}

// RunOpenLoad offers cfg's load to a running crackserver and returns the
// summary. Arrivals that cannot be admitted (429) or answered within the
// deadline are counted, not retried: an open loop measures what the
// server sheds as much as what it serves.
func RunOpenLoad(ctx context.Context, cfg OpenLoadConfig, out io.Writer) (*OpenLoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("openloop: need a positive -rate, got %g", cfg.Rate)
	}
	if cfg.Arrival != "poisson" && cfg.Arrival != "fixed" {
		return nil, fmt.Errorf("openloop: unknown arrival process %q (poisson, fixed)", cfg.Arrival)
	}
	if cfg.WritePct < 0 || cfg.WritePct > 100 {
		return nil, fmt.Errorf("openloop: -write-pct %d out of [0, 100]", cfg.WritePct)
	}
	c := NewClient(cfg.URL, cfg.HTTPClient, WithToken(cfg.Token))
	st, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("openloop: reaching %s: %w", cfg.URL, err)
	}
	if st.Rows <= 0 {
		return nil, fmt.Errorf("openloop: server reports %d rows", st.Rows)
	}
	fmt.Fprintf(out, "server %s: %s mode=%s rows=%d\n", cfg.URL, st.Name, st.Mode, st.Rows)
	fmt.Fprintf(out, "offering %.0f req/s (%s arrivals) for %v, %d%% writes (batch %d), deadline %v\n",
		cfg.Rate, cfg.Arrival, cfg.Duration, cfg.WritePct, cfg.WriteBatch, cfg.Deadline)

	type sample struct {
		write               bool
		lat                 time.Duration
		queue, flush, apply time.Duration
		rejected            bool
		deadline            bool
		err                 bool
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	rng := xrand.New(cfg.Seed)
	// Fresh write values live above the served domain so they never
	// collide with resident data; nextVal hands them out run-uniquely.
	nextVal := st.Rows
	gap := func() time.Duration {
		mean := float64(time.Second) / cfg.Rate
		if cfg.Arrival == "fixed" {
			return time.Duration(mean)
		}
		// Exponential inter-arrival gap: -ln(U) * mean, U in (0, 1].
		u := (float64(rng.Int63n(1<<52)) + 1) / float64(1<<52)
		return time.Duration(-math.Log(u) * mean)
	}

	start := time.Now()
	deadlineAt := start.Add(cfg.Duration)
	offered := 0
	next := start
	for time.Now().Before(deadlineAt) && ctx.Err() == nil {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		next = next.Add(gap())
		offered++

		isWrite := cfg.WritePct > 0 && int(rng.Int63n(100)) < cfg.WritePct
		var values []int64
		var lo, hi int64
		if isWrite {
			values = make([]int64, cfg.WriteBatch)
			for i := range values {
				values[i] = nextVal
				nextVal++
			}
		} else {
			lo = rng.Int63n(st.Rows)
			hi = lo + cfg.S
		}
		// Open loop: the arrival never waits for a completion; each request
		// runs in its own goroutine against its own deadline.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, cfg.Deadline)
			defer cancel()
			t0 := time.Now()
			var err error
			var ur UpdateResponse
			if isWrite {
				ur, err = c.InsertBatch(rctx, values)
			} else {
				_, err = c.Aggregate(rctx, lo, hi)
			}
			s := sample{write: isWrite, lat: time.Since(t0)}
			switch {
			case err == nil:
				if isWrite {
					s.queue = time.Duration(ur.QueueNS)
					s.flush = time.Duration(ur.FlushNS)
					s.apply = time.Duration(ur.ApplyNS)
				}
			case isStatus(err, http.StatusTooManyRequests):
				s.rejected = true
			case errors.Is(err, context.DeadlineExceeded) || isStatus(err, StatusClientClosedRequest) || isStatus(err, http.StatusGatewayTimeout):
				s.deadline = true
			default:
				s.err = true
			}
			record(s)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &OpenLoadResult{Offered: offered, Elapsed: elapsed}
	var readLats, writeLats, qLats, fLats, aLats []time.Duration
	for _, s := range samples {
		switch {
		case s.rejected:
			res.Rejected++
		case s.deadline:
			res.DeadlineMisses++
		case s.err:
			res.Errors++
		case s.write:
			res.Writes++
			writeLats = append(writeLats, s.lat)
			qLats = append(qLats, s.queue)
			fLats = append(fLats, s.flush)
			aLats = append(aLats, s.apply)
		default:
			res.Reads++
			readLats = append(readLats, s.lat)
		}
	}
	res.Throughput = float64(res.Reads+res.Writes) / elapsed.Seconds()
	res.ReadLat = summarize(readLats)
	res.WriteLat = summarize(writeLats)
	res.Queue = summarize(qLats)
	res.Flush = summarize(fLats)
	res.Apply = summarize(aLats)
	if fin, err := c.Stats(ctx); err == nil && fin.GroupCommit != nil {
		res.GroupCommit = fin.GroupCommit
	}

	fmt.Fprintf(out, "\noffered %d, served %d (%.0f req/s): %d reads, %d writes; %d rejected (429), %d deadline misses, %d errors\n",
		res.Offered, res.Reads+res.Writes, res.Throughput,
		res.Reads, res.Writes, res.Rejected, res.DeadlineMisses, res.Errors)
	fmt.Fprintf(out, "%-14s %8s %10s %10s %10s %10s\n", "class", "count", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		s    LatencySummary
	}{{"read", res.ReadLat}, {"write", res.WriteLat}, {"write.queue", res.Queue}, {"write.flush", res.Flush}, {"write.apply", res.Apply}} {
		if row.s.Count == 0 {
			continue
		}
		fmt.Fprintf(out, "%-14s %8d %10v %10v %10v %10v\n",
			row.name, row.s.Count, row.s.P50, row.s.P90, row.s.P99, row.s.Max)
	}
	if gc := res.GroupCommit; gc != nil {
		fmt.Fprintf(out, "group commit: %d ops in %d flushes (avg batch %.1f, max %d)\n",
			gc.Ops, gc.Flushes, gc.AvgBatch, gc.MaxBatch)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// isStatus reports whether err is an APIError with the given HTTP status.
func isStatus(err error, status int) bool {
	var api *APIError
	return errors.As(err, &api) && api.Status == status
}
