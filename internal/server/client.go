package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal Go client for the crackserver wire protocol, used
// by the crackbench -serve load generator, the cluster layer, the
// integration tests and the CI smoke. It is safe for concurrent use
// (http.Client is).
type Client struct {
	base  string
	hc    *http.Client
	token string
	table string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithToken sets the bearer token sent as "Authorization: Bearer
// <token>" on every request, matching the server's Config.AuthToken.
func WithToken(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithTable scopes the client to one table of a multi-tenant catalog
// server (crackserver -tables): every endpoint path is rewritten under
// /v1/tables/<name>/, so the whole client API — queries, updates,
// snapshots, stats, health — addresses that table.
func WithTable(name string) ClientOption {
	return func(c *Client) { c.table = name }
}

// path rewrites an endpoint path for the configured table scope:
// /v1/query becomes /v1/tables/<name>/query, /healthz becomes
// /v1/tables/<name>/healthz. Query strings pass through untouched.
func (c *Client) path(p string) string {
	if c.table == "" {
		return p
	}
	return "/v1/tables/" + c.table + strings.TrimPrefix(p, "/v1")
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc nil means http.DefaultClient; pass a
// custom client to set timeouts or a TLS config (self-signed certs).
func NewClient(base string, hc *http.Client, opts ...ClientOption) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: hc}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the server URL the client talks to.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response, carrying the HTTP status and the
// server's machine-readable code.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
}

// Query posts req to /v1/query.
func (c *Client) Query(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	var resp QueryResponse
	err := c.post(ctx, "/v1/query", req, &resp)
	return resp, err
}

// QueryRange answers the single half-open range [lo, hi), returning its
// result.
func (c *Client) QueryRange(ctx context.Context, lo, hi int64) (QueryResult, error) {
	resp, err := c.Query(ctx, QueryRequest{QueryItem: QueryItem{Lo: lo, Hi: hi}})
	if err != nil {
		return QueryResult{}, err
	}
	if len(resp.Results) != 1 {
		return QueryResult{}, fmt.Errorf("server: %d results for a single query", len(resp.Results))
	}
	return resp.Results[0], nil
}

// Aggregate answers [lo, hi) returning only (count, sum) — no value
// payload on the wire.
func (c *Client) Aggregate(ctx context.Context, lo, hi int64) (QueryResult, error) {
	resp, err := c.Query(ctx, QueryRequest{QueryItem: QueryItem{Lo: lo, Hi: hi}, Aggregate: true})
	if err != nil {
		return QueryResult{}, err
	}
	if len(resp.Results) != 1 {
		return QueryResult{}, fmt.Errorf("server: %d results for a single query", len(resp.Results))
	}
	return resp.Results[0], nil
}

// Insert queues values for insertion, returning the pending-update depth.
func (c *Client) Insert(ctx context.Context, values ...int64) (pending int, err error) {
	var resp UpdateResponse
	err = c.post(ctx, "/v1/insert", UpdateRequest{Values: values}, &resp)
	return resp.Pending, err
}

// InsertBatch queues values for insertion and returns the full update
// response, including the decomposed write-latency stages when the server
// runs group commit — the open-loop load generator's write path.
func (c *Client) InsertBatch(ctx context.Context, values []int64) (UpdateResponse, error) {
	var resp UpdateResponse
	err := c.post(ctx, "/v1/insert", UpdateRequest{Values: values}, &resp)
	return resp, err
}

// Delete queues value removals, returning the pending-update depth.
func (c *Client) Delete(ctx context.Context, values ...int64) (pending int, err error) {
	var resp UpdateResponse
	err = c.post(ctx, "/v1/delete", UpdateRequest{Values: values}, &resp)
	return resp.Pending, err
}

// Stats fetches /v1/stats. Every call also records one convergence
// sample server-side.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.get(ctx, "/v1/stats", &resp)
	return resp, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var resp HealthResponse
	err := c.get(ctx, "/healthz", &resp)
	return resp, err
}

// Snapshot triggers POST /v1/snapshot. With strict set the server
// refuses with 409 (code "pending_updates") while updates are queued.
func (c *Client) Snapshot(ctx context.Context, strict bool) (SnapshotResponse, error) {
	var resp SnapshotResponse
	err := c.post(ctx, "/v1/snapshot", SnapshotRequest{Strict: strict}, &resp)
	return resp, err
}

// SnapshotRange captures the server's state for the value range [lo, hi)
// and returns the manifest stream — the donor side of a live shard
// migration. Feed the bytes to another node's RestoreSnapshot.
func (c *Client) SnapshotRange(ctx context.Context, lo, hi int64) ([]byte, error) {
	path := fmt.Sprintf("/v1/snapshot/range?lo=%d&hi=%d", lo, hi)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.path(path), nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RestoreSnapshot replaces the server's serving state with the given
// manifest stream (POST /v1/restore) — the joiner side of a migration.
// [lo, hi) declares the value range the node owns afterwards.
func (c *Client) RestoreSnapshot(ctx context.Context, stream []byte, lo, hi int64) (RestoreResponse, error) {
	path := fmt.Sprintf("/v1/restore?lo=%d&hi=%d", lo, hi)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+c.path(path), bytes.NewReader(stream))
	if err != nil {
		return RestoreResponse{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var resp RestoreResponse
	err = c.do(req, &resp)
	return resp, err
}

// Retain shrinks the server's serving state to the value range [lo, hi)
// of a fresh capture (POST /v1/retain) — the donor's final migration
// step.
func (c *Client) Retain(ctx context.Context, lo, hi int64) (RestoreResponse, error) {
	var resp RestoreResponse
	err := c.post(ctx, "/v1/retain", RetainRequest{Lo: lo, Hi: hi}, &resp)
	return resp, err
}

// Drain flips the server's draining flag (POST /v1/drain).
func (c *Client) Drain(ctx context.Context) (DrainResponse, error) {
	var resp DrainResponse
	err := c.post(ctx, "/v1/drain", struct{}{}, &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+c.path(path), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.path(path), nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// authorize attaches the bearer token, when configured.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

func (c *Client) do(req *http.Request, out any) error {
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError decodes a non-2xx response into an APIError.
func apiError(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
	var body ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Code != "" {
		apiErr.Code = body.Code
		apiErr.Message = body.Error
	}
	return apiErr
}
