package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal Go client for the crackserver wire protocol, used
// by the crackbench -serve load generator, the integration tests and the
// CI smoke. It is safe for concurrent use (http.Client is).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc nil means http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx response, carrying the HTTP status and the
// server's machine-readable code.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
}

// Query posts req to /v1/query.
func (c *Client) Query(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	var resp QueryResponse
	err := c.post(ctx, "/v1/query", req, &resp)
	return resp, err
}

// QueryRange answers the single half-open range [lo, hi), returning its
// result.
func (c *Client) QueryRange(ctx context.Context, lo, hi int64) (QueryResult, error) {
	resp, err := c.Query(ctx, QueryRequest{QueryItem: QueryItem{Lo: lo, Hi: hi}})
	if err != nil {
		return QueryResult{}, err
	}
	if len(resp.Results) != 1 {
		return QueryResult{}, fmt.Errorf("server: %d results for a single query", len(resp.Results))
	}
	return resp.Results[0], nil
}

// Aggregate answers [lo, hi) returning only (count, sum) — no value
// payload on the wire.
func (c *Client) Aggregate(ctx context.Context, lo, hi int64) (QueryResult, error) {
	resp, err := c.Query(ctx, QueryRequest{QueryItem: QueryItem{Lo: lo, Hi: hi}, Aggregate: true})
	if err != nil {
		return QueryResult{}, err
	}
	if len(resp.Results) != 1 {
		return QueryResult{}, fmt.Errorf("server: %d results for a single query", len(resp.Results))
	}
	return resp.Results[0], nil
}

// Insert queues values for insertion, returning the pending-update depth.
func (c *Client) Insert(ctx context.Context, values ...int64) (pending int, err error) {
	var resp UpdateResponse
	err = c.post(ctx, "/v1/insert", UpdateRequest{Values: values}, &resp)
	return resp.Pending, err
}

// Delete queues value removals, returning the pending-update depth.
func (c *Client) Delete(ctx context.Context, values ...int64) (pending int, err error) {
	var resp UpdateResponse
	err = c.post(ctx, "/v1/delete", UpdateRequest{Values: values}, &resp)
	return resp.Pending, err
}

// Stats fetches /v1/stats. Every call also records one convergence
// sample server-side.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.get(ctx, "/v1/stats", &resp)
	return resp, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var resp HealthResponse
	err := c.get(ctx, "/healthz", &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
		var body ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Code != "" {
			apiErr.Code = body.Code
			apiErr.Message = body.Error
		}
		return apiErr
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
