package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	crackdb "repro"
)

const testRows = 10_000

// newTestServer opens a fresh permutation-backed DB in the given mode and
// wraps it in a Server.
func newTestServer(t *testing.T, mode crackdb.Concurrency, cfg Config) *Server {
	t.Helper()
	db, err := crackdb.Open(crackdb.MakeData(testRows, 7), crackdb.DD1R,
		crackdb.WithSeed(7), crackdb.WithConcurrency(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg.Info = Info{Rows: testRows, Algorithm: crackdb.DD1R, Seed: 7, Permutation: true}
	return New(db, cfg)
}

// post sends body to path on the in-process handler and returns the
// recorder.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeQuery(t *testing.T, rec *httptest.ResponseRecorder) QueryResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body, err)
	}
	return resp
}

// wantRange asserts a result matches the permutation oracle for [lo, hi):
// exactly the integers lo..hi-1, in any order.
func wantRange(t *testing.T, res QueryResult, lo, hi int64) {
	t.Helper()
	wc, ws := oracle(lo, hi, testRows)
	if int64(res.Count) != wc || res.Sum != ws {
		t.Fatalf("[%d, %d): got count=%d sum=%d, want count=%d sum=%d",
			lo, hi, res.Count, res.Sum, wc, ws)
	}
	if res.Values != nil {
		vals := slices.Clone(res.Values)
		slices.Sort(vals)
		for i, v := range vals {
			if v != max64(lo, 0)+int64(i) {
				t.Fatalf("[%d, %d): sorted values[%d] = %d", lo, hi, i, v)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestQuerySingleRange(t *testing.T) {
	for _, mode := range []crackdb.Concurrency{crackdb.Single, crackdb.Shared, crackdb.Sharded(4)} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestServer(t, mode, Config{})
			rec := post(t, s, "/v1/query", `{"lo": 100, "hi": 200}`)
			resp := decodeQuery(t, rec)
			if len(resp.Results) != 1 {
				t.Fatalf("got %d results", len(resp.Results))
			}
			res := resp.Results[0]
			if len(res.Values) != res.Count {
				t.Fatalf("count %d but %d values", res.Count, len(res.Values))
			}
			wantRange(t, res, 100, 200)
		})
	}
}

func TestQueryOr(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	rec := post(t, s, "/v1/query", `{"or": [{"lo": 10, "hi": 20}, {"lo": 50, "hi": 55}]}`)
	resp := decodeQuery(t, rec)
	res := resp.Results[0]
	if res.Count != 15 {
		t.Fatalf("or of widths 10+5: count = %d", res.Count)
	}
	wc1, ws1 := oracle(10, 20, testRows)
	wc2, ws2 := oracle(50, 55, testRows)
	if int64(res.Count) != wc1+wc2 || res.Sum != ws1+ws2 {
		t.Fatalf("or: count=%d sum=%d", res.Count, res.Sum)
	}
}

func TestQueryBatch(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	rec := post(t, s, "/v1/query",
		`{"queries": [{"lo": 0, "hi": 10}, {"lo": 9000, "hi": 9100}, {"lo": 500, "hi": 500}]}`)
	resp := decodeQuery(t, rec)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	wantRange(t, resp.Results[0], 0, 10)
	wantRange(t, resp.Results[1], 9000, 9100)
	if resp.Results[2].Count != 0 {
		t.Fatalf("empty range: count = %d", resp.Results[2].Count)
	}
}

func TestQueryAggregate(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	rec := post(t, s, "/v1/query", `{"lo": 100, "hi": 300, "aggregate": true}`)
	resp := decodeQuery(t, rec)
	res := resp.Results[0]
	if res.Values != nil {
		t.Fatalf("aggregate response carries %d values", len(res.Values))
	}
	wantRange(t, res, 100, 300)
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
	}{
		{"malformed json", `{"lo": `, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"low": 1, "hi": 2}`, http.StatusBadRequest, "bad_request"},
		{"empty batch", `{"queries": []}`, http.StatusBadRequest, "bad_request"},
		{"inline and batch", `{"lo": 1, "hi": 2, "queries": [{"lo": 3, "hi": 4}]}`, http.StatusBadRequest, "bad_request"},
		{"lo/hi and or", `{"lo": 1, "hi": 2, "or": [{"lo": 3, "hi": 4}]}`, http.StatusBadRequest, "bad_request"},
		{"column on single-column db", `{"lo": 1, "hi": 2, "col": "nope"}`, http.StatusBadRequest, "unknown_column"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, "/v1/query", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d (%s), want %d", rec.Code, rec.Body, tc.wantStatus)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body %q: %v", rec.Body, err)
			}
			if er.Code != tc.wantCode {
				t.Fatalf("code = %q (%s), want %q", er.Code, er.Error, tc.wantCode)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		rec := get(t, s, "/v1/query")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/query status = %d", rec.Code)
		}
	})
}

func TestCanceledRequestContext(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		strings.NewReader(`{"lo": 0, "hi": 100}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled context: status = %d (%s)", rec.Code, rec.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "canceled" {
		t.Fatalf("canceled context: body = %q (err %v)", rec.Body, err)
	}
}

func TestAdmissionLimit429(t *testing.T) {
	// A MaxInFlight=1 server whose first query parks inside its admission
	// slot until released.
	s := newTestServer(t, crackdb.Shared, Config{MaxInFlight: 1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.hold = func() {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"lo": 0, "hi": 10}`))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started // the first request now owns the only admission slot

	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"lo": 0, "hi": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || er.Code != "over_capacity" {
		t.Fatalf("second request: status %d code %q", resp.StatusCode, er.Code)
	}
	if got := s.rejects.Load(); got != 1 {
		t.Fatalf("rejects = %d", got)
	}

	close(release)
	s.hold = nil
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first request finished with %d", code)
	}
	// hold is cleared and the slot is free again: the server recovered.
	rec := post(t, s, "/v1/query", `{"lo": 0, "hi": 10}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: status %d", rec.Code)
	}
}

func TestInsertDeleteFlow(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})

	// Insert two out-of-domain values; they queue until a covering query
	// merges them.
	rec := post(t, s, "/v1/insert", fmt.Sprintf(`{"values": [%d, %d]}`, testRows+1, testRows+2))
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: %d (%s)", rec.Code, rec.Body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Pending != 2 {
		t.Fatalf("pending after insert = %d", ur.Pending)
	}

	resp := decodeQuery(t, post(t, s, "/v1/query",
		fmt.Sprintf(`{"lo": %d, "hi": %d}`, testRows, testRows+10)))
	if got := resp.Results[0].Count; got != 2 {
		t.Fatalf("count after merge = %d", got)
	}

	// Delete one of them again.
	rec = post(t, s, "/v1/delete", fmt.Sprintf(`{"value": %d}`, testRows+1))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d (%s)", rec.Code, rec.Body)
	}
	resp = decodeQuery(t, post(t, s, "/v1/query",
		fmt.Sprintf(`{"lo": %d, "hi": %d}`, testRows, testRows+10)))
	if got := resp.Results[0].Count; got != 1 {
		t.Fatalf("count after delete = %d", got)
	}

	rec = post(t, s, "/v1/insert", `{}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty insert: %d", rec.Code)
	}
}

func TestUpdatesUnsupportedMapsTo422(t *testing.T) {
	db, err := crackdb.Open(crackdb.MakeData(testRows, 7), "aicc", crackdb.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{Info: Info{Rows: testRows, Permutation: true}})
	rec := post(t, s, "/v1/insert", `{"value": 5}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("insert on hybrid: status %d (%s)", rec.Code, rec.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "updates_unsupported" {
		t.Fatalf("insert on hybrid: body %q", rec.Body)
	}
}

func TestClosedDBMapsTo503(t *testing.T) {
	db, err := crackdb.Open(crackdb.MakeData(testRows, 7), crackdb.DD1R,
		crackdb.WithConcurrency(crackdb.Shared))
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{Info: Info{Rows: testRows}})
	db.Close()
	rec := post(t, s, "/v1/query", `{"lo": 0, "hi": 10}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed DB: status %d (%s)", rec.Code, rec.Body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	for i := int64(0); i < 20; i++ {
		rec := post(t, s, "/v1/query", fmt.Sprintf(`{"lo": %d, "hi": %d}`, i*100, i*100+50))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
	}

	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d (%s)", rec.Code, rec.Body)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueriesServed != 20 {
		t.Fatalf("queries_served = %d", st.QueriesServed)
	}
	if st.Mode != "shared" || !st.Permutation || st.Rows != testRows {
		t.Fatalf("identity: %+v", st)
	}
	if st.Index.Queries != 20 || st.Index.Pieces < 2 {
		t.Fatalf("index counters: %+v", st.Index)
	}
	if !st.HasPathStats || st.ReadQueries+st.WriteQueries != 20 {
		t.Fatalf("path stats: has=%v read=%d write=%d", st.HasPathStats, st.ReadQueries, st.WriteQueries)
	}
	if st.Pieces == nil || st.Pieces.Pieces < 2 || st.Pieces.Skew <= 0 {
		t.Fatalf("piece stats: %+v", st.Pieces)
	}
	if len(st.PieceHistogram) == 0 {
		t.Fatal("no piece histogram")
	}
	if st.Convergence == nil || st.Convergence.Samples != 1 {
		t.Fatalf("convergence: %+v", st.Convergence)
	}

	// A second call appends a second convergence sample.
	rec = get(t, s, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Convergence == nil || st.Convergence.Samples != 2 {
		t.Fatalf("convergence after second call: %+v", st.Convergence)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	if rec := post(t, s, "/v1/query", `{"lo": 0, "hi": 100}`); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	if rec := post(t, s, "/v1/query", `{"low": 1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query: %d", rec.Code)
	}

	rec := get(t, s, "/debug/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`crackserver_requests_total{endpoint="query",code="2xx"} 1`,
		`crackserver_requests_total{endpoint="query",code="4xx"} 1`,
		"crackserver_queries_total 1",
		// Only the 2xx query enters the latency histogram; the 400 is
		// counted by the request counter alone.
		`crackserver_query_seconds_bucket{le="+Inf"} 1`,
		"crackserver_query_seconds_count 1",
		"crackserver_index_pieces",
		"crackserver_index_max_piece_share",
		`crackserver_exec_path_queries_total{path="read"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, crackdb.Sharded(2), Config{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Mode != "sharded-2" {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestCancellationUnderLoad fires many short-deadline requests at a live
// server — most of them cancel mid-flight, client-side — and then checks
// the index still answers correctly. Run under -race in CI, this verifies
// that request-context cancellation never tears the executor's state.
func TestCancellationUnderLoad(t *testing.T) {
	s := newTestServer(t, crackdb.Shared, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+i%5)*100*time.Microsecond)
				lo := int64((g*50 + i) * 13 % (testRows - 100))
				_, _ = c.QueryRange(ctx, lo, lo+100) // errors expected: deadlines fire mid-query
				cancel()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}

	res, err := c.QueryRange(context.Background(), 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	wantRange(t, res, 100, 200)
}

// TestStatsSurfacesParallelInfo asserts the parallel-cracking identity
// fields round-trip through /v1/stats, so clients can tell how the served
// DB was opened.
func TestStatsSurfacesParallelInfo(t *testing.T) {
	db, err := crackdb.Open(crackdb.MakeData(testRows, 7), crackdb.DD1R,
		crackdb.WithSeed(7), crackdb.WithConcurrency(crackdb.Shared),
		crackdb.WithParallelCrack(), crackdb.WithCoarseInit(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db, Config{Info: Info{
		Rows: testRows, Algorithm: crackdb.DD1R, Seed: 7, Permutation: true,
		ParallelCrack: true, CoarseInitPieces: 8,
	}})

	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d (%s)", rec.Code, rec.Body)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.ParallelCrack || st.CoarseInitPieces != 8 {
		t.Fatalf("parallel identity not surfaced: %+v", st.Info)
	}
	// Coarse init pre-cut the column before any query arrived.
	if st.Index.Pieces < 2 {
		t.Fatalf("coarse init did not pre-cut: %+v", st.Index)
	}
}
