// Package server is the network serving layer over the crackdb.DB front
// door: an HTTP/JSON service that exposes adaptive range queries, lazy
// updates and live cracking telemetry, so the paper's robustness story —
// index refinement *while serving queries* — can be observed under real
// concurrent client traffic instead of a single in-process query stream.
//
// Endpoints:
//
//	POST /v1/query     — single range, or-of-ranges, and batches; values or
//	                     (count, sum) aggregates
//	POST /v1/insert    — queue values for lazy ripple-merge insertion
//	POST /v1/delete    — queue value removals
//	POST /v1/snapshot  — capture the live adapted state to the configured
//	                     snapshot file (admission-gated; atomic temp-file
//	                     write + rename), for warm restarts. Pending updates
//	                     are captured with the state; {"strict": true}
//	                     refuses with 409 instead (explicit clean-cut
//	                     captures)
//	GET  /v1/snapshot/range?lo=&hi= — capture and stream the manifest of
//	                     one value range (the shard-migration donor side)
//	POST /v1/restore   — replace the serving state with the streamed
//	                     manifest (the migration joiner side; needs
//	                     Config.Reopen)
//	POST /v1/retain    — shrink the serving state to one value range of a
//	                     fresh capture (the migration donor's final step)
//	GET  /v1/stats     — index counters, piece-size distribution and
//	                     histogram, executor read/write path split, and a
//	                     convergence series sampled per call
//	GET  /healthz      — readiness: owned shard range, piece count,
//	                     restored-vs-cold, pending updates
//	GET  /debug/metrics — Prometheus text exposition
//
// When Config.AuthToken is set, every endpoint except GET /healthz
// requires "Authorization: Bearer <token>" (401 otherwise); health stays
// open so load balancers and the cluster coordinator can probe without
// credentials.
//
// The handlers stay on the DB's allocation-free forms: a single-range
// query runs through DB.QueryAppend and a batch through
// DB.QueryBatchAppend, both into sync.Pool-recycled buffers, so the query
// hot path performs no per-request heap allocations beyond what HTTP and
// JSON encoding inherently cost. Request contexts thread into the DB's
// context-aware query paths: a disconnected client cancels its query at
// the next cancellation point instead of holding the executor's locks.
//
// Concurrency follows the DB's construction mode. Shared and Sharded DBs
// serve requests fully in parallel through internal/exec; a Single-mode
// DB (unsynchronized by contract) is served behind one server-side mutex,
// making it the paper's single-threaded experimental setting over the
// wire. An admission limit bounds in-flight data-plane requests — excess
// requests fail fast with 429 rather than convoying behind the write
// lock — sized by default as a multiple of the process-wide worker pool
// (internal/pool), which bounds helper parallelism underneath.
//
// Failures map the crackdb sentinel errors onto HTTP statuses (see
// statusFor): predicate errors are 4xx with a machine-readable code, a
// closed DB is 503, a canceled request is 499 (the de-facto
// client-closed-request status).
package server

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	crackdb "repro"
	"repro/internal/pool"
	"repro/internal/stats"
)

// Info describes the dataset behind the served DB, so clients (the
// crackbench -serve load generator) can validate answers against the
// closed-form oracle when the data is a permutation of [0, Rows).
type Info struct {
	Rows        int64  `json:"rows"`
	Algorithm   string `json:"algorithm"`
	Seed        uint64 `json:"seed"`
	Permutation bool   `json:"permutation"`
	// ParallelCrack reports whether the DB cracks large pieces with the
	// chunked parallel kernel (crackdb.WithParallelCrack).
	ParallelCrack bool `json:"parallel_crack,omitempty"`
	// CoarseInitPieces is the coarse-granular initialization piece count
	// the DB was opened with (crackdb.WithCoarseInit); 0 means disabled.
	CoarseInitPieces int `json:"coarse_init_pieces,omitempty"`
}

// Config configures a Server.
type Config struct {
	// Info describes the dataset (served back on /v1/stats).
	Info Info
	// MaxInFlight bounds concurrently admitted data-plane requests
	// (/v1/query, /v1/insert, /v1/delete, /v1/snapshot); excess requests
	// get 429. 0 means 8 x pool.Size(); negative disables admission
	// control.
	MaxInFlight int
	// AdmissionWait bounds how long a request arriving at the MaxInFlight
	// limit may queue for an admission slot before the 429 — additionally
	// bounded by the request's own context deadline, so a caller never
	// queues past the point where it stopped listening. 0 keeps the
	// fail-fast behavior (immediate 429). Every 429 carries a Retry-After
	// header either way.
	AdmissionWait time.Duration
	// SnapshotPath is the file POST /v1/snapshot (and the periodic saver,
	// Server.SaveSnapshot) writes the DB's adapted state to, atomically.
	// Empty disables the endpoint (422) unless SnapshotStore is set. The
	// path is fixed at construction — clients trigger the capture but
	// never choose where it lands.
	SnapshotPath string
	// SnapshotStore, when non-nil, receives snapshot captures under
	// SnapshotKey instead of the SnapshotPath file — the pluggable store
	// every fleet-shared save/load path uses (crackdb.SnapshotStore;
	// file-backed today, object-store-shaped by design). When both are
	// set the store wins.
	SnapshotStore crackdb.SnapshotStore
	// SnapshotKey is the store key captures land under (e.g.
	// "tables/users.crks"). Required when SnapshotStore is set.
	SnapshotKey string
	// AuthToken, when non-empty, requires every request except GET
	// /healthz to carry "Authorization: Bearer <token>" (401 otherwise).
	AuthToken string
	// ShardLo/ShardHi is the half-open value range this server owns when
	// it serves one slice of a cluster dataset. Both zero means the whole
	// domain (a standalone server). Reported on /healthz and updated by
	// restore and retain.
	ShardLo, ShardHi int64
	// Restored marks the initial DB as warm-started from a snapshot, for
	// the /healthz restored-vs-cold field.
	Restored bool
	// Reopen rebuilds a DB from a snapshot manifest with the server's
	// construction options (algorithm, concurrency mode, tuning) — the
	// hook POST /v1/restore and /v1/retain use to build the replacement
	// state. Nil disables both endpoints (422).
	Reopen func(snap crackdb.DBSnapshot) (*crackdb.DB, error)
}

// dbState is the swappable serving state: the DB plus what describes it.
// Restore and retain build a new state and swap the pointer atomically;
// requests in flight finish against the state they loaded. The replaced
// DB is not closed — late responses drain from it, then the GC takes it.
type dbState struct {
	db       *crackdb.DB
	info     Info
	lo, hi   int64 // owned value range [lo, hi)
	restored bool  // true when this state came from a snapshot (warm)
}

// Server serves one crackdb.DB over HTTP. Construct with New, mount with
// Handler.
type Server struct {
	// st is the current serving state; load it once per request and use
	// that snapshot throughout (restore/retain swap the pointer live).
	st atomic.Pointer[dbState]

	authToken string
	reopen    func(snap crackdb.DBSnapshot) (*crackdb.DB, error)
	// swapMu serializes state swaps (restore, retain), so two concurrent
	// migrations cannot interleave capture-then-swap sequences.
	swapMu sync.Mutex

	// serial serializes every DB access for Single-mode DBs, which are
	// not safe for concurrent use by contract. nil in the concurrent
	// modes.
	serial *sync.Mutex

	sem           chan struct{} // admission slots; nil disables the limit
	maxInFlight   int
	admissionWait time.Duration
	inFlight      atomic.Int64
	rejects       atomic.Int64

	mux *http.ServeMux
	met metrics

	// convMu guards conv, the convergence series sampled once per
	// /v1/stats call.
	convMu sync.Mutex
	conv   stats.Convergence

	// snapMu serializes snapshot captures (endpoint and periodic saver):
	// concurrent captures would race on the temp file, and back-to-back
	// drains of the executor buy nothing. It is never held while waiting
	// for an admission slot, so it cannot deadlock against the limit.
	snapMu        sync.Mutex
	snapshotPath  string
	snapshotStore crackdb.SnapshotStore
	snapshotKey   string
	snapshots     atomic.Int64

	// draining is flipped by POST /v1/drain once a coordinator has
	// migrated this node's ranges away; /healthz then reports "draining"
	// so orchestration can tell a handed-off node from a sick one.
	draining atomic.Bool

	// hold, when non-nil, runs inside the admission slot before the query
	// executes. Test hook for pinning in-flight occupancy.
	hold func()
}

// New builds a Server over db. The Server does not own the DB: callers
// close it after the HTTP server has drained.
func New(db *crackdb.DB, cfg Config) *Server {
	s := &Server{authToken: cfg.AuthToken, reopen: cfg.Reopen}
	lo, hi := cfg.ShardLo, cfg.ShardHi
	if lo == 0 && hi == 0 {
		lo, hi = math.MinInt64, math.MaxInt64
	}
	s.st.Store(&dbState{db: db, info: cfg.Info, lo: lo, hi: hi, restored: cfg.Restored})
	if db.Mode() == crackdb.Single {
		s.serial = &sync.Mutex{}
	}
	switch {
	case cfg.MaxInFlight == 0:
		s.maxInFlight = 8 * pool.Size()
	case cfg.MaxInFlight > 0:
		s.maxInFlight = cfg.MaxInFlight
	}
	if s.maxInFlight > 0 {
		s.sem = make(chan struct{}, s.maxInFlight)
	}
	s.admissionWait = cfg.AdmissionWait
	s.snapshotPath = cfg.SnapshotPath
	s.snapshotStore = cfg.SnapshotStore
	s.snapshotKey = cfg.SnapshotKey
	s.met.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.instrument(epQuery, s.handleQuery))
	s.mux.HandleFunc("POST /v1/insert", s.instrument(epInsert, s.handleInsert))
	s.mux.HandleFunc("POST /v1/delete", s.instrument(epDelete, s.handleDelete))
	s.mux.HandleFunc("POST /v1/snapshot", s.instrument(epSnapshot, s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/snapshot/range", s.instrument(epSnapshot, s.handleSnapshotRange))
	s.mux.HandleFunc("POST /v1/restore", s.instrument(epRestore, s.handleRestore))
	s.mux.HandleFunc("POST /v1/retain", s.instrument(epRestore, s.handleRetain))
	s.mux.HandleFunc("GET /v1/stats", s.instrument(epStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealth, s.handleHealth))
	s.mux.HandleFunc("POST /v1/drain", s.instrument(epHealth, s.handleDrain))
	s.mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	return s
}

// state loads the current serving state.
func (s *Server) state() *dbState { return s.st.Load() }

// TableInfo is one table's row in the catalog listing (GET /v1/tables):
// the identity facts a tenant needs to pick an endpoint, without the
// cost of the per-table stats handler.
type TableInfo struct {
	Name     string `json:"name"`
	Mode     string `json:"mode"`
	Layout   string `json:"layout"` // DB.Name(): algorithm + concurrency shape
	Rows     int64  `json:"rows"`
	Restored bool   `json:"restored"`
	Pending  int    `json:"pending_updates"`
}

// Describe reports the serving state's identity facts for catalog
// listings. Cheap relative to the stats handler: no piece-size walk, no
// convergence sample — just the serial lock long enough to read the
// pending count.
func (s *Server) Describe() TableInfo {
	cur := s.state()
	unlock := s.lockSerial()
	pending := cur.db.PendingUpdates()
	unlock()
	return TableInfo{
		Mode:     cur.db.Mode().String(),
		Layout:   cur.db.Name(),
		Rows:     int64(cur.db.Rows()),
		Restored: cur.restored,
		Pending:  pending,
	}
}

// Handler returns the Server's HTTP handler: the API mux, wrapped with
// bearer-token enforcement when Config.AuthToken is set (GET /healthz
// stays open for unauthenticated probes).
func (s *Server) Handler() http.Handler {
	if s.authToken == "" {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
			s.mux.ServeHTTP(w, r)
			return
		}
		const prefix = "Bearer "
		auth := r.Header.Get("Authorization")
		if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) ||
			subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(s.authToken)) != 1 {
			writeError(w, http.StatusUnauthorized, "unauthorized",
				"missing or invalid bearer token (Authorization: Bearer ...)")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when a request's context was canceled — the
// client went away; no one reads the response, but logs and metrics
// should not count it as a server error.
const StatusClientClosedRequest = 499

// WireRange is one half-open value range [Lo, Hi) on the wire.
type WireRange struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// QueryItem is one predicate on the wire: either a single half-open range
// (lo, hi) or a disjunction of ranges (or), optionally scoped to a table
// column (col).
type QueryItem struct {
	Lo  int64       `json:"lo,omitempty"`
	Hi  int64       `json:"hi,omitempty"`
	Or  []WireRange `json:"or,omitempty"`
	Col string      `json:"col,omitempty"`
}

// Predicate translates the wire form to the crackdb predicate algebra.
func (it QueryItem) Predicate() (crackdb.Predicate, error) {
	var p crackdb.Predicate
	if len(it.Or) > 0 {
		if it.Lo != 0 || it.Hi != 0 {
			return p, errors.New("query: give either lo/hi or \"or\", not both")
		}
		p = crackdb.Range(it.Or[0].Lo, it.Or[0].Hi)
		for _, r := range it.Or[1:] {
			p = p.Or(crackdb.Range(r.Lo, r.Hi))
		}
	} else {
		p = crackdb.Range(it.Lo, it.Hi)
	}
	if it.Col != "" {
		p = p.On(it.Col)
	}
	return p, nil
}

// QueryRequest is the body of POST /v1/query: one inline QueryItem (the
// common single-query case) or a batch under "queries" — not both. With
// aggregate true the response carries only (count, sum) per query,
// skipping value materialization and payload bytes.
type QueryRequest struct {
	QueryItem
	Queries   []QueryItem `json:"queries,omitempty"`
	Aggregate bool        `json:"aggregate,omitempty"`
}

// QueryResult is one query's answer. Values is omitted for aggregate
// requests; Count and Sum are always filled.
type QueryResult struct {
	Count  int     `json:"count"`
	Sum    int64   `json:"sum"`
	Values []int64 `json:"values,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query: one result
// per query, in request order (a lone inline query yields one result).
type QueryResponse struct {
	Results []QueryResult `json:"results"`
}

// UpdateRequest is the body of POST /v1/insert and /v1/delete: one value,
// or several under "values", optionally scoped to a table column (col).
// Unscoped updates go to the default column (single-column DBs and
// one-column tables); wider tables require col.
type UpdateRequest struct {
	Value  *int64  `json:"value,omitempty"`
	Values []int64 `json:"values,omitempty"`
	Col    string  `json:"col,omitempty"`
}

// UpdateResponse reports the queue depth after the update: updates merge
// lazily, so Pending is the number queued across the DB *after this
// request's whole value list was applied* (one consistent post-batch
// reading, not a per-value running count), not a failure. Accepted is how
// many values this request applied. When the DB runs with group commit,
// Grouped is true and the *_ns fields decompose the write's latency:
// QueueNS waiting to be sealed into a batch, FlushNS waiting for the
// exclusive section, ApplyNS holding it.
type UpdateResponse struct {
	Pending  int   `json:"pending"`
	Accepted int   `json:"accepted"`
	Grouped  bool  `json:"grouped,omitempty"`
	QueueNS  int64 `json:"queue_ns,omitempty"`
	FlushNS  int64 `json:"flush_ns,omitempty"`
	ApplyNS  int64 `json:"apply_ns,omitempty"`
}

// ErrorResponse is the body of every non-2xx response: a human-readable
// message and a stable machine-readable code ("unknown_column",
// "updates_unsupported", "pending_updates", "snapshot_unsupported",
// "snapshot_unconfigured", "over_capacity", "bad_request", "canceled",
// "closed", "unsupported", "internal").
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// HistBucket is one bucket of the piece-size histogram: Count pieces of
// size at most Le tuples (log2 bucket upper bounds, stats.BucketSizes).
type HistBucket = stats.SizeBucket

// ConvergenceInfo is the sampled convergence series: one entry per
// /v1/stats call, oldest first, capped at the most recent
// maxConvergenceSamples so a long-lived, frequently-polled server keeps
// bounded memory and response sizes. ConvergedAt1Pct is the first
// retained sample at which the largest piece fell below 1% of the
// column (-1: not yet) — the paper's "curve flattens after k queries"
// metric over samples.
type ConvergenceInfo struct {
	Samples         int       `json:"samples"`
	MaxPieceShare   []float64 `json:"max_piece_share"`
	Pieces          []int     `json:"pieces"`
	ConvergedAt1Pct int       `json:"converged_at_1pct"`
}

// IndexStats is the wire form of the DB's cumulative physical-cost
// counters.
type IndexStats struct {
	Queries int64 `json:"queries"`
	Touched int64 `json:"touched"`
	Swaps   int64 `json:"swaps"`
	Cracks  int   `json:"cracks"`
	Pieces  int   `json:"pieces"`
}

// StatsResponse is the body of GET /v1/stats: identity, dataset info,
// serving counters, index counters, and — when the mode exposes them —
// the executor path split, the piece-size distribution and the sampled
// convergence series.
type StatsResponse struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	Info

	QueriesServed    int64 `json:"queries_served"`
	InFlight         int64 `json:"in_flight"`
	AdmissionLimit   int   `json:"admission_limit"`
	AdmissionRejects int64 `json:"admission_rejects"`
	PendingUpdates   int   `json:"pending_updates"`
	SnapshotsTaken   int64 `json:"snapshots_taken"`

	Index IndexStats `json:"index"`

	// HasPathStats guards ReadQueries/WriteQueries (executor modes only).
	HasPathStats bool  `json:"has_path_stats"`
	ReadQueries  int64 `json:"read_queries"`
	WriteQueries int64 `json:"write_queries"`

	Pieces         *stats.PieceStats `json:"pieces,omitempty"`
	PieceHistogram []HistBucket      `json:"piece_histogram,omitempty"`
	Convergence    *ConvergenceInfo  `json:"convergence,omitempty"`

	// GroupCommit is present when the DB runs writes through the
	// group-commit batcher (crackdb.WithGroupCommit).
	GroupCommit *GroupCommitInfo `json:"group_commit,omitempty"`
}

// GroupCommitInfo is the batcher's cumulative counters: how writes were
// grouped (AvgBatch = Ops/Flushes, MaxBatch the largest single flush) and
// where their time went, as summed nanoseconds per latency stage (queue:
// enqueue→sealed into a batch; flush: waiting for the exclusive section;
// apply: holding it).
type GroupCommitInfo struct {
	BatchSize int     `json:"batch_size"`
	MaxWaitNS int64   `json:"max_wait_ns"`
	Enqueued  int64   `json:"enqueued"`
	Ops       int64   `json:"ops"`
	Flushes   int64   `json:"flushes"`
	MaxBatch  int64   `json:"max_batch"`
	AvgBatch  float64 `json:"avg_batch"`
	QueueNS   int64   `json:"queue_ns"`
	FlushNS   int64   `json:"flush_ns"`
	ApplyNS   int64   `json:"apply_ns"`
}

// HealthResponse is the body of GET /healthz: liveness plus the
// readiness facts a cluster coordinator routes on — which value range
// this node owns, how refined its index is, whether it started warm from
// a snapshot, and how many updates are queued.
type HealthResponse struct {
	Status string `json:"status"`
	Name   string `json:"name"`
	Mode   string `json:"mode"`
	// Rows is the number of tuples this node currently holds (its slice,
	// not the cluster total).
	Rows int64 `json:"rows"`
	// ShardLo/ShardHi is the half-open value range this node owns;
	// math.MinInt64/math.MaxInt64 for a standalone server.
	ShardLo int64 `json:"shard_lo"`
	ShardHi int64 `json:"shard_hi"`
	// Pieces is the current column piece count — non-zero refinement on a
	// just-started node means it was restored warm.
	Pieces int `json:"pieces"`
	// Restored is true when the serving state came from a snapshot (warm
	// start or live migration), false when it was built cold.
	Restored bool `json:"restored"`
	// PendingUpdates is the queued, not-yet-merged update count.
	PendingUpdates int `json:"pending_updates"`
	// Draining is true after POST /v1/drain: the node's ranges have been
	// handed off and it is waiting to be shut down.
	Draining bool `json:"draining,omitempty"`
}

// DrainResponse is the body of POST /v1/drain.
type DrainResponse struct {
	Draining bool  `json:"draining"`
	Rows     int64 `json:"rows"`
}

// queryBuffers is the pooled per-request scratch of the query handler:
// the predicate list, the single-query append destination and the batch
// arena. Recycled through bufPool so a warmed server's query hot path
// performs no per-request heap allocations in the DB layer.
type queryBuffers struct {
	preds []crackdb.Predicate
	dst   []int64
	bb    crackdb.BatchBuffer
	res   []QueryResult
}

var bufPool = sync.Pool{New: func() any { return new(queryBuffers) }}

// admit takes an admission slot, reporting false (after counting the
// reject) when the server is at MaxInFlight. With AdmissionWait set, a
// request arriving at the limit queues for a slot up to that long —
// bounded by its own context, so a hung-up caller leaves the queue
// immediately — instead of failing fast. release must be called exactly
// once when ok.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	s.inFlight.Add(1)
	if s.sem == nil {
		return func() { s.inFlight.Add(-1) }, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; s.inFlight.Add(-1) }, true
	default:
	}
	if s.admissionWait > 0 && ctx.Err() == nil {
		timer := time.NewTimer(s.admissionWait)
		defer timer.Stop()
		select {
		case s.sem <- struct{}{}:
			return func() { <-s.sem; s.inFlight.Add(-1) }, true
		case <-timer.C:
		case <-ctx.Done():
		}
	}
	s.inFlight.Add(-1)
	s.rejects.Add(1)
	return nil, false
}

// rejectOverCapacity writes the 429 admission reject. Per RFC 9110 it
// carries a Retry-After hint: the admission wait when one is configured
// (the queue turns over within roughly that long), else one second.
func (s *Server) rejectOverCapacity(w http.ResponseWriter) {
	secs := int64(1)
	if s.admissionWait > 0 {
		if v := int64((s.admissionWait + time.Second - 1) / time.Second); v > secs {
			secs = v
		}
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests, "over_capacity",
		fmt.Sprintf("server at its in-flight limit (%d); retry", s.maxInFlight))
}

// lockSerial takes the Single-mode serialization lock, a no-op in the
// concurrent modes. Every DB access (queries, updates, stats reads) goes
// through it so a Single DB sees one request at a time.
func (s *Server) lockSerial() func() {
	if s.serial == nil {
		return func() {}
	}
	s.serial.Lock()
	return s.serial.Unlock
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(r.Context())
	if !ok {
		s.rejectOverCapacity(w)
		return
	}
	defer release()
	if s.hold != nil {
		s.hold()
	}

	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	inline := req.Lo != 0 || req.Hi != 0 || len(req.Or) > 0 || req.Col != ""
	items := req.Queries
	single := false
	if items == nil {
		items = []QueryItem{req.QueryItem}
		single = true
	} else if inline {
		writeError(w, http.StatusBadRequest, "bad_request",
			"give either an inline query or \"queries\", not both")
		return
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty \"queries\"")
		return
	}

	qb := bufPool.Get().(*queryBuffers)
	defer bufPool.Put(qb)
	qb.preds = qb.preds[:0]
	for _, it := range items {
		p, err := it.Predicate()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		qb.preds = append(qb.preds, p)
	}

	qb.res = qb.res[:0]
	ctx := r.Context()
	db := s.state().db
	unlock := s.lockSerial()
	err := func() error {
		switch {
		case req.Aggregate:
			for _, p := range qb.preds {
				agg, err := db.QueryAggregate(ctx, p)
				if err != nil {
					return err
				}
				qb.res = append(qb.res, QueryResult{Count: agg.Count, Sum: agg.Sum})
			}
		case single:
			dst, err := db.QueryAppend(ctx, qb.preds[0], qb.dst[:0])
			qb.dst = dst
			if err != nil {
				return err
			}
			qb.res = append(qb.res, valuesResult(dst))
		default:
			outs, err := db.QueryBatchAppend(ctx, qb.preds, &qb.bb)
			if err != nil {
				return err
			}
			for _, vals := range outs {
				qb.res = append(qb.res, valuesResult(vals))
			}
		}
		return nil
	}()
	unlock()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	s.met.queries.Add(int64(len(qb.preds)))
	// Encode before the deferred bufPool.Put: batch results alias qb.bb's
	// arena and are invalid once the buffers are recycled.
	writeJSON(w, http.StatusOK, QueryResponse{Results: qb.res})
}

// valuesResult builds a QueryResult over a materialized value slice,
// folding the sum so clients can validate against the oracle without
// re-summing.
func valuesResult(vals []int64) QueryResult {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return QueryResult{Count: len(vals), Sum: sum, Values: vals}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleUpdate(w, r, false)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleUpdate(w, r, true)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, del bool) {
	release, ok := s.admit(r.Context())
	if !ok {
		s.rejectOverCapacity(w)
		return
	}
	defer release()
	db := s.state().db

	var req UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	values := req.Values
	if req.Value != nil {
		values = append(values, *req.Value)
	}
	if len(values) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "no values")
		return
	}
	// The whole value list rides one batch through one exclusive section
	// (amortized under group commit), so Pending below is a single
	// consistent post-batch reading.
	var inserts, deletes []int64
	if del {
		deletes = values
	} else {
		inserts = values
	}
	unlock := s.lockSerial()
	var pending int
	tm, err := db.ApplyBatchOn(r.Context(), req.Col, inserts, deletes)
	if err == nil {
		pending = db.PendingUpdates()
	}
	unlock()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	s.met.observeUpdate(tm)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Pending:  pending,
		Accepted: len(values),
		Grouped:  tm.Grouped,
		QueueNS:  tm.Queue.Nanoseconds(),
		FlushNS:  tm.Flush.Nanoseconds(),
		ApplyNS:  tm.Apply.Nanoseconds(),
	})
}

// SnapshotRequest is the optional body of POST /v1/snapshot. Strict
// refuses the capture with 409 while updates are queued (a clean
// fully-merged cut on demand); the default captures the queues with the
// state.
type SnapshotRequest struct {
	Strict bool `json:"strict,omitempty"`
}

// SnapshotResponse is the body of a successful POST /v1/snapshot: where
// the state landed and how much adaptation it carries.
type SnapshotResponse struct {
	Path      string `json:"path"`
	Rows      int    `json:"rows"`
	Parts     int    `json:"parts"`   // shards in the manifest (1 unsharded)
	Pieces    int    `json:"pieces"`  // column pieces captured — the earned refinement
	Pending   int    `json:"pending"` // pending updates carried in the capture
	Bytes     int64  `json:"bytes"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" && s.snapshotStore == nil {
		writeError(w, http.StatusUnprocessableEntity, "snapshot_unconfigured",
			"server started without a snapshot path (-snapshot) or store (-snapshot-store)")
		return
	}
	var req SnapshotRequest
	if !decodeOptionalBody(w, r, &req) {
		return
	}
	// Snapshot capture drains the executor like a write-path query, so it
	// competes for an admission slot like one: under overload the caller
	// gets a fast 429 instead of convoying yet another drain behind the
	// backlog.
	release, ok := s.admit(r.Context())
	if !ok {
		s.rejectOverCapacity(w)
		return
	}
	defer release()
	if s.hold != nil {
		s.hold()
	}
	resp, err := s.saveSnapshot(req.Strict)
	if err != nil {
		writeMappedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SaveSnapshot captures the DB's live adapted state and writes it to the
// configured snapshot store key (or path; atomic either way). The
// capture happens under the DB's own drain (exclusive per executor); the
// store write happens after, outside every DB lock. Both the endpoint
// and the periodic saver (cmd/crackserver -snapshot-interval) funnel
// through here, serialized by snapMu. Pending updates are captured with
// the state, never refused.
func (s *Server) SaveSnapshot() (SnapshotResponse, error) { return s.saveSnapshot(false) }

func (s *Server) saveSnapshot(strict bool) (SnapshotResponse, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	db := s.state().db
	unlock := s.lockSerial()
	var snap crackdb.DBSnapshot
	var err error
	if strict {
		snap, err = db.SnapshotStrict()
	} else {
		snap, err = db.Snapshot()
	}
	unlock()
	if err != nil {
		return SnapshotResponse{}, err
	}
	// Where the capture lands: the store under its key when one is
	// configured, the snapshot file otherwise. diskPath is the file to
	// stat for the response's size (a file-backed store exposes the key's
	// stable file mapping; a purely remote store reports zero bytes).
	dest, diskPath := s.snapshotPath, s.snapshotPath
	if s.snapshotStore != nil {
		dest, diskPath = s.snapshotKey, ""
		if err := s.snapshotStore.Save(s.snapshotKey, snap); err != nil {
			return SnapshotResponse{}, err
		}
		if fs, ok := s.snapshotStore.(interface{ Path(string) string }); ok {
			diskPath = fs.Path(s.snapshotKey)
		}
	} else if err := crackdb.SaveSnapshotFile(s.snapshotPath, snap); err != nil {
		return SnapshotResponse{}, err
	}
	var size int64
	if diskPath != "" {
		if fi, err := os.Stat(diskPath); err == nil {
			size = fi.Size()
		}
	}
	s.snapshots.Add(1)
	return SnapshotResponse{
		Path:      dest,
		Rows:      snap.Rows(),
		Parts:     snapParts(snap),
		Pieces:    snap.Pieces(),
		Pending:   snap.Pending(),
		Bytes:     size,
		ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

// snapParts counts a manifest's parts across both forms: shard parts for
// a single-column manifest, summed per-column parts for a table one.
func snapParts(snap crackdb.DBSnapshot) int {
	if !snap.IsTable() {
		return len(snap.Parts)
	}
	n := 0
	for _, c := range snap.Columns {
		n += len(c.Parts)
	}
	return n
}

// handleSnapshotRange captures the live state and streams the manifest of
// the requested value range [lo, hi) — the donor side of a live shard
// migration: the coordinator pulls the moving range here and feeds it to
// the joining node's POST /v1/restore. Pending updates in the range ride
// along in the stream, so a migration never refuses because updates are
// queued.
func (s *Server) handleSnapshotRange(w http.ResponseWriter, r *http.Request) {
	lo, err1 := strconv.ParseInt(r.URL.Query().Get("lo"), 10, 64)
	hi, err2 := strconv.ParseInt(r.URL.Query().Get("hi"), 10, 64)
	if err1 != nil || err2 != nil || lo >= hi {
		writeError(w, http.StatusBadRequest, "bad_request",
			"need integer query params lo < hi")
		return
	}
	release, ok := s.admit(r.Context())
	if !ok {
		s.rejectOverCapacity(w)
		return
	}
	defer release()
	db := s.state().db
	unlock := s.lockSerial()
	snap, err := db.Snapshot()
	unlock()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	st, err := snap.Extract(lo, hi)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// The part claims the whole domain even though it carries only
	// [lo, hi): manifests must tile the domain, and the extracted state's
	// cracks are strictly inside the range, so the widened part is valid.
	// The true owned range travels in the restore request instead.
	part := crackdb.DBSnapshot{Parts: []crackdb.SnapshotPart{{Lo: math.MinInt64, Hi: math.MaxInt64, State: st}}}
	// Encode to memory first so a serialization failure can still return a
	// clean error status instead of a torn stream.
	var buf bytes.Buffer
	if err := crackdb.WriteSnapshot(&buf, part); err != nil {
		writeMappedError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// RestoreResponse is the body of a successful POST /v1/restore or
// /v1/retain: the shape of the state now serving.
type RestoreResponse struct {
	Rows      int   `json:"rows"`
	Parts     int   `json:"parts"`
	Pieces    int   `json:"pieces"` // non-zero: the node starts warm
	Pending   int   `json:"pending"`
	ShardLo   int64 `json:"shard_lo"`
	ShardHi   int64 `json:"shard_hi"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// handleRestore replaces the serving state with the snapshot manifest
// streamed in the request body — the joiner side of a live shard
// migration. The new state starts warm: every crack (and pending update)
// the stream carries survives. Optional lo/hi query params declare the
// value range the node now owns (reported on /healthz); they default to
// the manifest's bounds — the whole domain for a migration stream.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if s.reopen == nil {
		writeError(w, http.StatusUnprocessableEntity, "restore_unconfigured",
			"server started without a restore hook")
		return
	}
	release, ok := s.admit(r.Context())
	if !ok {
		s.rejectOverCapacity(w)
		return
	}
	defer release()
	start := time.Now()
	snap, err := crackdb.ReadSnapshot(http.MaxBytesReader(w, r.Body, maxRestoreBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding snapshot stream: "+err.Error())
		return
	}
	if len(snap.Parts) == 0 && !snap.IsTable() {
		writeError(w, http.StatusBadRequest, "bad_request", "empty snapshot manifest")
		return
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	db, err := s.reopen(snap)
	if err != nil {
		writeMappedError(w, err)
		return
	}
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	if !snap.IsTable() {
		lo, hi = snap.Parts[0].Lo, snap.Parts[len(snap.Parts)-1].Hi
	}
	if q := r.URL.Query(); q.Get("lo") != "" || q.Get("hi") != "" {
		qlo, err1 := strconv.ParseInt(q.Get("lo"), 10, 64)
		qhi, err2 := strconv.ParseInt(q.Get("hi"), 10, 64)
		if err1 != nil || err2 != nil || qlo >= qhi {
			writeError(w, http.StatusBadRequest, "bad_request",
				"lo/hi query params must be integers with lo < hi")
			return
		}
		lo, hi = qlo, qhi
	}
	s.swapState(db, lo, hi)
	writeJSON(w, http.StatusOK, RestoreResponse{
		Rows: snap.Rows(), Parts: snapParts(snap), Pieces: snap.Pieces(),
		Pending: snap.Pending(), ShardLo: lo, ShardHi: hi,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// RetainRequest is the body of POST /v1/retain: the value range to keep.
type RetainRequest struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// handleRetain shrinks the serving state to the requested value range of
// a fresh capture — the donor's final migration step, after the moving
// range was handed to the joiner and the routing table swapped. Cracks
// and pending updates inside the kept range survive.
func (s *Server) handleRetain(w http.ResponseWriter, r *http.Request) {
	if s.reopen == nil {
		writeError(w, http.StatusUnprocessableEntity, "restore_unconfigured",
			"server started without a restore hook")
		return
	}
	var req RetainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Lo >= req.Hi {
		writeError(w, http.StatusBadRequest, "bad_request", "need lo < hi")
		return
	}
	release, ok := s.admit(r.Context())
	if !ok {
		s.rejectOverCapacity(w)
		return
	}
	defer release()
	start := time.Now()
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.state()
	unlock := s.lockSerial()
	snap, err := cur.db.Snapshot()
	unlock()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	st, err := snap.Extract(req.Lo, req.Hi)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// Same widening as the migration stream: the manifest tiles the
	// domain, the request's [lo, hi) is what the node now owns.
	part := crackdb.DBSnapshot{Parts: []crackdb.SnapshotPart{{Lo: math.MinInt64, Hi: math.MaxInt64, State: st}}}
	db, err := s.reopen(part)
	if err != nil {
		writeMappedError(w, err)
		return
	}
	s.swapState(db, req.Lo, req.Hi)
	writeJSON(w, http.StatusOK, RestoreResponse{
		Rows: part.Rows(), Parts: 1, Pieces: part.Pieces(),
		Pending: part.Pending(), ShardLo: req.Lo, ShardHi: req.Hi,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// swapState publishes a new serving state owning [lo, hi). Caller holds
// swapMu.
func (s *Server) swapState(db *crackdb.DB, lo, hi int64) {
	cur := s.state()
	info := cur.info
	info.Rows = int64(db.Rows())
	s.st.Store(&dbState{db: db, info: info, lo: lo, hi: hi, restored: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cur := s.state()
	unlock := s.lockSerial()
	st := cur.db.Stats()
	pending := cur.db.PendingUpdates()
	reads, writes, hasPath := cur.db.PathStats()
	sizes, sizesErr := cur.db.PieceSizes()
	unlock()

	resp := StatsResponse{
		Name:             cur.db.Name(),
		Mode:             cur.db.Mode().String(),
		Info:             cur.info,
		QueriesServed:    s.met.queries.Load(),
		InFlight:         s.inFlight.Load(),
		AdmissionLimit:   s.maxInFlight,
		AdmissionRejects: s.rejects.Load(),
		PendingUpdates:   pending,
		SnapshotsTaken:   s.snapshots.Load(),
		Index: IndexStats{
			Queries: st.Queries, Touched: st.Touched, Swaps: st.Swaps,
			Cracks: st.Cracks, Pieces: st.Pieces,
		},
		HasPathStats: hasPath,
		ReadQueries:  reads,
		WriteQueries: writes,
	}
	if gc, ok := cur.db.GroupCommitStats(); ok {
		info := &GroupCommitInfo{
			BatchSize: gc.BatchSize, MaxWaitNS: gc.MaxWait.Nanoseconds(),
			Enqueued: gc.Enqueued, Ops: gc.Ops, Flushes: gc.Flushes,
			MaxBatch: gc.MaxBatch,
			QueueNS:  gc.QueueNS, FlushNS: gc.FlushNS, ApplyNS: gc.ApplyNS,
		}
		if gc.Flushes > 0 {
			info.AvgBatch = float64(gc.Ops) / float64(gc.Flushes)
		}
		resp.GroupCommit = info
	}
	if sizesErr == nil {
		ps := stats.FromSizes(sizes, int(cur.info.Rows))
		resp.Pieces = &ps
		resp.PieceHistogram = stats.BucketSizes(sizes)

		s.convMu.Lock()
		s.conv.RecordSizes(sizes, int(cur.info.Rows))
		if n := len(s.conv.Pieces); n > maxConvergenceSamples {
			drop := n - maxConvergenceSamples
			s.conv.MaxPieceShare = append(s.conv.MaxPieceShare[:0], s.conv.MaxPieceShare[drop:]...)
			s.conv.Pieces = append(s.conv.Pieces[:0], s.conv.Pieces[drop:]...)
		}
		resp.Convergence = &ConvergenceInfo{
			Samples:         len(s.conv.Pieces),
			MaxPieceShare:   append([]float64(nil), s.conv.MaxPieceShare...),
			Pieces:          append([]int(nil), s.conv.Pieces...),
			ConvergedAt1Pct: s.conv.ConvergedAt(0.01),
		}
		s.convMu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	cur := s.state()
	unlock := s.lockSerial()
	pieces := cur.db.Stats().Pieces
	pending := cur.db.PendingUpdates()
	unlock()
	status := "ok"
	draining := s.draining.Load()
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: status, Name: cur.db.Name(), Mode: cur.db.Mode().String(),
		Rows: int64(cur.db.Rows()), ShardLo: cur.lo, ShardHi: cur.hi,
		Pieces: pieces, Restored: cur.restored, PendingUpdates: pending,
		Draining: draining,
	})
}

// handleDrain marks the node as drained. The coordinator calls this after
// the last of the node's ranges has been handed off; the flag only
// changes what /healthz reports — requests are still served, because the
// routing table (not this node) decides who gets traffic.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.draining.Store(true)
	cur := s.state()
	writeJSON(w, http.StatusOK, DrainResponse{Draining: true, Rows: int64(cur.db.Rows())})
}

// instrument wraps a handler with request counting and, for the query
// endpoint, latency recording.
func (s *Server) instrument(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.met.observe(ep, sw.status(), time.Since(start))
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// maxBodyBytes bounds request bodies; a query request is a few ranges, an
// update request a value list — 8 MiB leaves room for large bulk loads.
const maxBodyBytes = 8 << 20

// maxConvergenceSamples caps the retained /v1/stats convergence series:
// the endpoint is unauthenticated and outside the admission limit, so
// without a cap every poll would grow server memory (and, since the
// series is echoed back whole, response sizes) for the process lifetime.
const maxConvergenceSamples = 512

// decodeBody strictly decodes the JSON request body into v, writing the
// 400 itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return false
	}
	return true
}

// maxRestoreBytes bounds POST /v1/restore bodies: a migrated shard's
// manifest dwarfs ordinary request bodies, but unbounded reads from the
// network are still off the table.
const maxRestoreBytes = 1 << 30

// decodeOptionalBody is decodeBody for endpoints whose body may be
// legitimately empty (POST /v1/snapshot predates its request type); an
// empty or whitespace body leaves v at its zero value.
func decodeOptionalBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return true
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return false
	}
	return true
}

// statusFor maps an error from the DB layer to (status, code): the
// crackdb sentinel errors become 4xx/5xx with stable codes, context
// cancellation becomes 499/504, everything else 500.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, crackdb.ErrUnknownColumn):
		return http.StatusBadRequest, "unknown_column"
	case errors.Is(err, crackdb.ErrUpdatesUnsupported):
		return http.StatusUnprocessableEntity, "updates_unsupported"
	case errors.Is(err, crackdb.ErrPendingUpdates):
		// Not-yet-merged updates would be lost by a snapshot; the caller
		// can drain them with covering queries and retry.
		return http.StatusConflict, "pending_updates"
	case errors.Is(err, crackdb.ErrSnapshotUnsupported):
		return http.StatusUnprocessableEntity, "snapshot_unsupported"
	case errors.Is(err, crackdb.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, errors.ErrUnsupported):
		return http.StatusUnprocessableEntity, "unsupported"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeMappedError(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	writeError(w, status, code, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure after WriteHeader cannot change the status; the
	// truncated body fails JSON parsing client-side, which is the right
	// signal for a mid-response network error anyway.
	_ = json.NewEncoder(w).Encode(v)
}
