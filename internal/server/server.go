// Package server is the network serving layer over the crackdb.DB front
// door: an HTTP/JSON service that exposes adaptive range queries, lazy
// updates and live cracking telemetry, so the paper's robustness story —
// index refinement *while serving queries* — can be observed under real
// concurrent client traffic instead of a single in-process query stream.
//
// Endpoints:
//
//	POST /v1/query     — single range, or-of-ranges, and batches; values or
//	                     (count, sum) aggregates
//	POST /v1/insert    — queue values for lazy ripple-merge insertion
//	POST /v1/delete    — queue value removals
//	POST /v1/snapshot  — capture the live adapted state to the configured
//	                     snapshot file (admission-gated; atomic temp-file
//	                     write + rename), for warm restarts
//	GET  /v1/stats     — index counters, piece-size distribution and
//	                     histogram, executor read/write path split, and a
//	                     convergence series sampled per call
//	GET  /healthz      — liveness
//	GET  /debug/metrics — Prometheus text exposition
//
// The handlers stay on the DB's allocation-free forms: a single-range
// query runs through DB.QueryAppend and a batch through
// DB.QueryBatchAppend, both into sync.Pool-recycled buffers, so the query
// hot path performs no per-request heap allocations beyond what HTTP and
// JSON encoding inherently cost. Request contexts thread into the DB's
// context-aware query paths: a disconnected client cancels its query at
// the next cancellation point instead of holding the executor's locks.
//
// Concurrency follows the DB's construction mode. Shared and Sharded DBs
// serve requests fully in parallel through internal/exec; a Single-mode
// DB (unsynchronized by contract) is served behind one server-side mutex,
// making it the paper's single-threaded experimental setting over the
// wire. An admission limit bounds in-flight data-plane requests — excess
// requests fail fast with 429 rather than convoying behind the write
// lock — sized by default as a multiple of the process-wide worker pool
// (internal/pool), which bounds helper parallelism underneath.
//
// Failures map the crackdb sentinel errors onto HTTP statuses (see
// statusFor): predicate errors are 4xx with a machine-readable code, a
// closed DB is 503, a canceled request is 499 (the de-facto
// client-closed-request status).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	crackdb "repro"
	"repro/internal/pool"
	"repro/internal/stats"
)

// Info describes the dataset behind the served DB, so clients (the
// crackbench -serve load generator) can validate answers against the
// closed-form oracle when the data is a permutation of [0, Rows).
type Info struct {
	Rows        int64  `json:"rows"`
	Algorithm   string `json:"algorithm"`
	Seed        uint64 `json:"seed"`
	Permutation bool   `json:"permutation"`
	// ParallelCrack reports whether the DB cracks large pieces with the
	// chunked parallel kernel (crackdb.WithParallelCrack).
	ParallelCrack bool `json:"parallel_crack,omitempty"`
	// CoarseInitPieces is the coarse-granular initialization piece count
	// the DB was opened with (crackdb.WithCoarseInit); 0 means disabled.
	CoarseInitPieces int `json:"coarse_init_pieces,omitempty"`
}

// Config configures a Server.
type Config struct {
	// Info describes the dataset (served back on /v1/stats).
	Info Info
	// MaxInFlight bounds concurrently admitted data-plane requests
	// (/v1/query, /v1/insert, /v1/delete, /v1/snapshot); excess requests
	// get 429. 0 means 8 x pool.Size(); negative disables admission
	// control.
	MaxInFlight int
	// SnapshotPath is the file POST /v1/snapshot (and the periodic saver,
	// Server.SaveSnapshot) writes the DB's adapted state to, atomically.
	// Empty disables the endpoint (422). The path is fixed at
	// construction — clients trigger the capture but never choose where
	// it lands.
	SnapshotPath string
}

// Server serves one crackdb.DB over HTTP. Construct with New, mount with
// Handler.
type Server struct {
	db   *crackdb.DB
	info Info

	// serial serializes every DB access for Single-mode DBs, which are
	// not safe for concurrent use by contract. nil in the concurrent
	// modes.
	serial *sync.Mutex

	sem         chan struct{} // admission slots; nil disables the limit
	maxInFlight int
	inFlight    atomic.Int64
	rejects     atomic.Int64

	mux *http.ServeMux
	met metrics

	// convMu guards conv, the convergence series sampled once per
	// /v1/stats call.
	convMu sync.Mutex
	conv   stats.Convergence

	// snapMu serializes snapshot captures (endpoint and periodic saver):
	// concurrent captures would race on the temp file, and back-to-back
	// drains of the executor buy nothing. It is never held while waiting
	// for an admission slot, so it cannot deadlock against the limit.
	snapMu       sync.Mutex
	snapshotPath string
	snapshots    atomic.Int64

	// hold, when non-nil, runs inside the admission slot before the query
	// executes. Test hook for pinning in-flight occupancy.
	hold func()
}

// New builds a Server over db. The Server does not own the DB: callers
// close it after the HTTP server has drained.
func New(db *crackdb.DB, cfg Config) *Server {
	s := &Server{db: db, info: cfg.Info}
	if db.Mode() == crackdb.Single {
		s.serial = &sync.Mutex{}
	}
	switch {
	case cfg.MaxInFlight == 0:
		s.maxInFlight = 8 * pool.Size()
	case cfg.MaxInFlight > 0:
		s.maxInFlight = cfg.MaxInFlight
	}
	if s.maxInFlight > 0 {
		s.sem = make(chan struct{}, s.maxInFlight)
	}
	s.snapshotPath = cfg.SnapshotPath
	s.met.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.instrument(epQuery, s.handleQuery))
	s.mux.HandleFunc("POST /v1/insert", s.instrument(epInsert, s.handleInsert))
	s.mux.HandleFunc("POST /v1/delete", s.instrument(epDelete, s.handleDelete))
	s.mux.HandleFunc("POST /v1/snapshot", s.instrument(epSnapshot, s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/stats", s.instrument(epStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealth, s.handleHealth))
	s.mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	return s
}

// Handler returns the Server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when a request's context was canceled — the
// client went away; no one reads the response, but logs and metrics
// should not count it as a server error.
const StatusClientClosedRequest = 499

// WireRange is one half-open value range [Lo, Hi) on the wire.
type WireRange struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// QueryItem is one predicate on the wire: either a single half-open range
// (lo, hi) or a disjunction of ranges (or), optionally scoped to a table
// column (col).
type QueryItem struct {
	Lo  int64       `json:"lo,omitempty"`
	Hi  int64       `json:"hi,omitempty"`
	Or  []WireRange `json:"or,omitempty"`
	Col string      `json:"col,omitempty"`
}

// Predicate translates the wire form to the crackdb predicate algebra.
func (it QueryItem) Predicate() (crackdb.Predicate, error) {
	var p crackdb.Predicate
	if len(it.Or) > 0 {
		if it.Lo != 0 || it.Hi != 0 {
			return p, errors.New("query: give either lo/hi or \"or\", not both")
		}
		p = crackdb.Range(it.Or[0].Lo, it.Or[0].Hi)
		for _, r := range it.Or[1:] {
			p = p.Or(crackdb.Range(r.Lo, r.Hi))
		}
	} else {
		p = crackdb.Range(it.Lo, it.Hi)
	}
	if it.Col != "" {
		p = p.On(it.Col)
	}
	return p, nil
}

// QueryRequest is the body of POST /v1/query: one inline QueryItem (the
// common single-query case) or a batch under "queries" — not both. With
// aggregate true the response carries only (count, sum) per query,
// skipping value materialization and payload bytes.
type QueryRequest struct {
	QueryItem
	Queries   []QueryItem `json:"queries,omitempty"`
	Aggregate bool        `json:"aggregate,omitempty"`
}

// QueryResult is one query's answer. Values is omitted for aggregate
// requests; Count and Sum are always filled.
type QueryResult struct {
	Count  int     `json:"count"`
	Sum    int64   `json:"sum"`
	Values []int64 `json:"values,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query: one result
// per query, in request order (a lone inline query yields one result).
type QueryResponse struct {
	Results []QueryResult `json:"results"`
}

// UpdateRequest is the body of POST /v1/insert and /v1/delete: one value,
// or several under "values".
type UpdateRequest struct {
	Value  *int64  `json:"value,omitempty"`
	Values []int64 `json:"values,omitempty"`
}

// UpdateResponse reports the queue depth after the update: updates merge
// lazily, so Pending is the number queued across the DB, not a failure.
type UpdateResponse struct {
	Pending int `json:"pending"`
}

// ErrorResponse is the body of every non-2xx response: a human-readable
// message and a stable machine-readable code ("unknown_column",
// "updates_unsupported", "pending_updates", "snapshot_unsupported",
// "snapshot_unconfigured", "over_capacity", "bad_request", "canceled",
// "closed", "unsupported", "internal").
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// HistBucket is one bucket of the piece-size histogram: Count pieces of
// size at most Le tuples (log2 bucket upper bounds, stats.BucketSizes).
type HistBucket = stats.SizeBucket

// ConvergenceInfo is the sampled convergence series: one entry per
// /v1/stats call, oldest first, capped at the most recent
// maxConvergenceSamples so a long-lived, frequently-polled server keeps
// bounded memory and response sizes. ConvergedAt1Pct is the first
// retained sample at which the largest piece fell below 1% of the
// column (-1: not yet) — the paper's "curve flattens after k queries"
// metric over samples.
type ConvergenceInfo struct {
	Samples         int       `json:"samples"`
	MaxPieceShare   []float64 `json:"max_piece_share"`
	Pieces          []int     `json:"pieces"`
	ConvergedAt1Pct int       `json:"converged_at_1pct"`
}

// IndexStats is the wire form of the DB's cumulative physical-cost
// counters.
type IndexStats struct {
	Queries int64 `json:"queries"`
	Touched int64 `json:"touched"`
	Swaps   int64 `json:"swaps"`
	Cracks  int   `json:"cracks"`
	Pieces  int   `json:"pieces"`
}

// StatsResponse is the body of GET /v1/stats: identity, dataset info,
// serving counters, index counters, and — when the mode exposes them —
// the executor path split, the piece-size distribution and the sampled
// convergence series.
type StatsResponse struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	Info

	QueriesServed    int64 `json:"queries_served"`
	InFlight         int64 `json:"in_flight"`
	AdmissionLimit   int   `json:"admission_limit"`
	AdmissionRejects int64 `json:"admission_rejects"`
	PendingUpdates   int   `json:"pending_updates"`
	SnapshotsTaken   int64 `json:"snapshots_taken"`

	Index IndexStats `json:"index"`

	// HasPathStats guards ReadQueries/WriteQueries (executor modes only).
	HasPathStats bool  `json:"has_path_stats"`
	ReadQueries  int64 `json:"read_queries"`
	WriteQueries int64 `json:"write_queries"`

	Pieces         *stats.PieceStats `json:"pieces,omitempty"`
	PieceHistogram []HistBucket      `json:"piece_histogram,omitempty"`
	Convergence    *ConvergenceInfo  `json:"convergence,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Name   string `json:"name"`
	Mode   string `json:"mode"`
}

// queryBuffers is the pooled per-request scratch of the query handler:
// the predicate list, the single-query append destination and the batch
// arena. Recycled through bufPool so a warmed server's query hot path
// performs no per-request heap allocations in the DB layer.
type queryBuffers struct {
	preds []crackdb.Predicate
	dst   []int64
	bb    crackdb.BatchBuffer
	res   []QueryResult
}

var bufPool = sync.Pool{New: func() any { return new(queryBuffers) }}

// admit takes an admission slot, reporting false (after counting the
// reject) when the server is at MaxInFlight. release must be called
// exactly once when ok.
func (s *Server) admit() (release func(), ok bool) {
	s.inFlight.Add(1)
	if s.sem == nil {
		return func() { s.inFlight.Add(-1) }, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; s.inFlight.Add(-1) }, true
	default:
		s.inFlight.Add(-1)
		s.rejects.Add(1)
		return nil, false
	}
}

// lockSerial takes the Single-mode serialization lock, a no-op in the
// concurrent modes. Every DB access (queries, updates, stats reads) goes
// through it so a Single DB sees one request at a time.
func (s *Server) lockSerial() func() {
	if s.serial == nil {
		return func() {}
	}
	s.serial.Lock()
	return s.serial.Unlock
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit()
	if !ok {
		writeError(w, http.StatusTooManyRequests, "over_capacity",
			fmt.Sprintf("server at its in-flight limit (%d); retry", s.maxInFlight))
		return
	}
	defer release()
	if s.hold != nil {
		s.hold()
	}

	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	inline := req.Lo != 0 || req.Hi != 0 || len(req.Or) > 0 || req.Col != ""
	items := req.Queries
	single := false
	if items == nil {
		items = []QueryItem{req.QueryItem}
		single = true
	} else if inline {
		writeError(w, http.StatusBadRequest, "bad_request",
			"give either an inline query or \"queries\", not both")
		return
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty \"queries\"")
		return
	}

	qb := bufPool.Get().(*queryBuffers)
	defer bufPool.Put(qb)
	qb.preds = qb.preds[:0]
	for _, it := range items {
		p, err := it.Predicate()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		qb.preds = append(qb.preds, p)
	}

	qb.res = qb.res[:0]
	ctx := r.Context()
	unlock := s.lockSerial()
	err := func() error {
		switch {
		case req.Aggregate:
			for _, p := range qb.preds {
				agg, err := s.db.QueryAggregate(ctx, p)
				if err != nil {
					return err
				}
				qb.res = append(qb.res, QueryResult{Count: agg.Count, Sum: agg.Sum})
			}
		case single:
			dst, err := s.db.QueryAppend(ctx, qb.preds[0], qb.dst[:0])
			qb.dst = dst
			if err != nil {
				return err
			}
			qb.res = append(qb.res, valuesResult(dst))
		default:
			outs, err := s.db.QueryBatchAppend(ctx, qb.preds, &qb.bb)
			if err != nil {
				return err
			}
			for _, vals := range outs {
				qb.res = append(qb.res, valuesResult(vals))
			}
		}
		return nil
	}()
	unlock()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	s.met.queries.Add(int64(len(qb.preds)))
	// Encode before the deferred bufPool.Put: batch results alias qb.bb's
	// arena and are invalid once the buffers are recycled.
	writeJSON(w, http.StatusOK, QueryResponse{Results: qb.res})
}

// valuesResult builds a QueryResult over a materialized value slice,
// folding the sum so clients can validate against the oracle without
// re-summing.
func valuesResult(vals []int64) QueryResult {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return QueryResult{Count: len(vals), Sum: sum, Values: vals}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleUpdate(w, r, s.db.Insert)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleUpdate(w, r, s.db.Delete)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, apply func(int64) error) {
	release, ok := s.admit()
	if !ok {
		writeError(w, http.StatusTooManyRequests, "over_capacity",
			fmt.Sprintf("server at its in-flight limit (%d); retry", s.maxInFlight))
		return
	}
	defer release()

	var req UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	values := req.Values
	if req.Value != nil {
		values = append(values, *req.Value)
	}
	if len(values) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "no values")
		return
	}
	unlock := s.lockSerial()
	var pending int
	err := func() error {
		for _, v := range values {
			if err := apply(v); err != nil {
				return err
			}
		}
		pending = s.db.PendingUpdates()
		return nil
	}()
	unlock()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{Pending: pending})
}

// SnapshotResponse is the body of a successful POST /v1/snapshot: where
// the state landed and how much adaptation it carries.
type SnapshotResponse struct {
	Path      string `json:"path"`
	Rows      int    `json:"rows"`
	Parts     int    `json:"parts"`  // shards in the manifest (1 unsharded)
	Pieces    int    `json:"pieces"` // column pieces captured — the earned refinement
	Bytes     int64  `json:"bytes"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeError(w, http.StatusUnprocessableEntity, "snapshot_unconfigured",
			"server started without a snapshot path (-snapshot)")
		return
	}
	// Snapshot capture drains the executor like a write-path query, so it
	// competes for an admission slot like one: under overload the caller
	// gets a fast 429 instead of convoying yet another drain behind the
	// backlog.
	release, ok := s.admit()
	if !ok {
		writeError(w, http.StatusTooManyRequests, "over_capacity",
			fmt.Sprintf("server at its in-flight limit (%d); retry", s.maxInFlight))
		return
	}
	defer release()
	if s.hold != nil {
		s.hold()
	}
	resp, err := s.SaveSnapshot()
	if err != nil {
		writeMappedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SaveSnapshot captures the DB's live adapted state and writes it to the
// configured snapshot path (atomic temp-file write + rename). The
// capture happens under the DB's own drain (exclusive per executor); the
// file write happens after, outside every DB lock. Both the endpoint and
// the periodic saver (cmd/crackserver -snapshot-interval) funnel through
// here, serialized by snapMu.
func (s *Server) SaveSnapshot() (SnapshotResponse, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	unlock := s.lockSerial()
	snap, err := s.db.Snapshot()
	unlock()
	if err != nil {
		return SnapshotResponse{}, err
	}
	if err := crackdb.SaveSnapshotFile(s.snapshotPath, snap); err != nil {
		return SnapshotResponse{}, err
	}
	var bytes int64
	if fi, err := os.Stat(s.snapshotPath); err == nil {
		bytes = fi.Size()
	}
	s.snapshots.Add(1)
	return SnapshotResponse{
		Path:      s.snapshotPath,
		Rows:      snap.Rows(),
		Parts:     len(snap.Parts),
		Pieces:    snap.Pieces(),
		Bytes:     bytes,
		ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	unlock := s.lockSerial()
	st := s.db.Stats()
	pending := s.db.PendingUpdates()
	reads, writes, hasPath := s.db.PathStats()
	sizes, sizesErr := s.db.PieceSizes()
	unlock()

	resp := StatsResponse{
		Name:             s.db.Name(),
		Mode:             s.db.Mode().String(),
		Info:             s.info,
		QueriesServed:    s.met.queries.Load(),
		InFlight:         s.inFlight.Load(),
		AdmissionLimit:   s.maxInFlight,
		AdmissionRejects: s.rejects.Load(),
		PendingUpdates:   pending,
		SnapshotsTaken:   s.snapshots.Load(),
		Index: IndexStats{
			Queries: st.Queries, Touched: st.Touched, Swaps: st.Swaps,
			Cracks: st.Cracks, Pieces: st.Pieces,
		},
		HasPathStats: hasPath,
		ReadQueries:  reads,
		WriteQueries: writes,
	}
	if sizesErr == nil {
		ps := stats.FromSizes(sizes, int(s.info.Rows))
		resp.Pieces = &ps
		resp.PieceHistogram = stats.BucketSizes(sizes)

		s.convMu.Lock()
		s.conv.RecordSizes(sizes, int(s.info.Rows))
		if n := len(s.conv.Pieces); n > maxConvergenceSamples {
			drop := n - maxConvergenceSamples
			s.conv.MaxPieceShare = append(s.conv.MaxPieceShare[:0], s.conv.MaxPieceShare[drop:]...)
			s.conv.Pieces = append(s.conv.Pieces[:0], s.conv.Pieces[drop:]...)
		}
		resp.Convergence = &ConvergenceInfo{
			Samples:         len(s.conv.Pieces),
			MaxPieceShare:   append([]float64(nil), s.conv.MaxPieceShare...),
			Pieces:          append([]int(nil), s.conv.Pieces...),
			ConvergedAt1Pct: s.conv.ConvergedAt(0.01),
		}
		s.convMu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok", Name: s.db.Name(), Mode: s.db.Mode().String(),
	})
}

// instrument wraps a handler with request counting and, for the query
// endpoint, latency recording.
func (s *Server) instrument(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.met.observe(ep, sw.status(), time.Since(start))
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// maxBodyBytes bounds request bodies; a query request is a few ranges, an
// update request a value list — 8 MiB leaves room for large bulk loads.
const maxBodyBytes = 8 << 20

// maxConvergenceSamples caps the retained /v1/stats convergence series:
// the endpoint is unauthenticated and outside the admission limit, so
// without a cap every poll would grow server memory (and, since the
// series is echoed back whole, response sizes) for the process lifetime.
const maxConvergenceSamples = 512

// decodeBody strictly decodes the JSON request body into v, writing the
// 400 itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return false
	}
	return true
}

// statusFor maps an error from the DB layer to (status, code): the
// crackdb sentinel errors become 4xx/5xx with stable codes, context
// cancellation becomes 499/504, everything else 500.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, crackdb.ErrUnknownColumn):
		return http.StatusBadRequest, "unknown_column"
	case errors.Is(err, crackdb.ErrUpdatesUnsupported):
		return http.StatusUnprocessableEntity, "updates_unsupported"
	case errors.Is(err, crackdb.ErrPendingUpdates):
		// Not-yet-merged updates would be lost by a snapshot; the caller
		// can drain them with covering queries and retry.
		return http.StatusConflict, "pending_updates"
	case errors.Is(err, crackdb.ErrSnapshotUnsupported):
		return http.StatusUnprocessableEntity, "snapshot_unsupported"
	case errors.Is(err, crackdb.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, errors.ErrUnsupported):
		return http.StatusUnprocessableEntity, "unsupported"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeMappedError(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	writeError(w, status, code, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure after WriteHeader cannot change the status; the
	// truncated body fails JSON parsing client-side, which is the right
	// signal for a mid-response network error anyway.
	_ = json.NewEncoder(w).Encode(v)
}
