package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	crackdb "repro"
)

// endpoint indexes the per-endpoint request counters.
type endpoint int

const (
	epQuery endpoint = iota
	epInsert
	epDelete
	epStats
	epSnapshot
	epRestore
	epHealth
	numEndpoints
)

func (e endpoint) String() string {
	switch e {
	case epQuery:
		return "query"
	case epInsert:
		return "insert"
	case epDelete:
		return "delete"
	case epStats:
		return "stats"
	case epSnapshot:
		return "snapshot"
	case epRestore:
		return "restore"
	default:
		return "healthz"
	}
}

// statusClass buckets response codes for the request counter labels.
type statusClass int

const (
	class2xx statusClass = iota
	class4xx
	class429
	class499
	class5xx
	numClasses
)

func classOf(status int) statusClass {
	switch {
	case status == http.StatusTooManyRequests:
		return class429
	case status == StatusClientClosedRequest:
		return class499
	case status >= 500:
		return class5xx
	case status >= 400:
		return class4xx
	default:
		return class2xx
	}
}

func (c statusClass) String() string {
	switch c {
	case class2xx:
		return "2xx"
	case class4xx:
		return "4xx"
	case class429:
		return "429"
	case class499:
		return "499"
	default:
		return "5xx"
	}
}

// latencyBuckets are the /v1/query latency histogram's upper bounds in
// seconds (Prometheus `le` labels): 10µs to 10s, decades with a 1-2-5-ish
// split around the sub-millisecond region cracking queries live in.
var latencyBuckets = []float64{
	10e-6, 50e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
	1, 5, 10,
}

// updateStage indexes the decomposed write-latency histograms: where a
// /v1/insert / /v1/delete request's time went.
type updateStage int

const (
	stageQueue updateStage = iota // enqueue → sealed into a batch
	stageFlush                    // waiting for the exclusive section
	stageApply                    // holding the exclusive section
	numStages
)

func (st updateStage) String() string {
	switch st {
	case stageQueue:
		return "queue"
	case stageFlush:
		return "flush"
	default:
		return "apply"
	}
}

// metrics holds the server's atomic counters, exposed in Prometheus text
// format on /debug/metrics. Everything is fixed-size and lock-free on the
// hot path.
type metrics struct {
	// queries counts predicates answered (a batch of k counts k).
	queries atomic.Int64
	// requests counts HTTP requests by endpoint and status class.
	requests [numEndpoints][numClasses]atomic.Int64
	// Query-endpoint latency histogram (per-bucket counts, cumulated at
	// scrape time), plus sum and count for the Prometheus histogram
	// convention.
	latCounts []atomic.Int64
	latSumNs  atomic.Int64
	latTotal  atomic.Int64
	// Per-stage write-latency histograms (same bucket bounds as the query
	// histogram), fed by every applied /v1/insert and /v1/delete batch.
	updCounts [numStages][]atomic.Int64
	updSumNs  [numStages]atomic.Int64
	updTotal  [numStages]atomic.Int64
}

func (m *metrics) init() {
	m.latCounts = make([]atomic.Int64, len(latencyBuckets))
	for st := range m.updCounts {
		m.updCounts[st] = make([]atomic.Int64, len(latencyBuckets))
	}
}

// observe records one finished request. Only successfully answered
// queries enter the latency histogram: under overload, 429 rejects and
// parse errors return in microseconds and would drag the quantiles
// toward zero exactly when they matter most (the per-status request
// counter already accounts for them).
func (m *metrics) observe(ep endpoint, status int, d time.Duration) {
	m.requests[ep][classOf(status)].Add(1)
	if ep != epQuery || classOf(status) != class2xx {
		return
	}
	secs := d.Seconds()
	for i, le := range latencyBuckets {
		if secs <= le {
			m.latCounts[i].Add(1)
			break
		}
	}
	m.latSumNs.Add(d.Nanoseconds())
	m.latTotal.Add(1)
}

// observeUpdate records one applied write batch's decomposed latency.
// Without group commit, Queue is zero and the flush/apply split still
// reports the exclusive-section cost.
func (m *metrics) observeUpdate(tm crackdb.UpdateTimings) {
	for st, d := range [numStages]time.Duration{stageQueue: tm.Queue, stageFlush: tm.Flush, stageApply: tm.Apply} {
		secs := d.Seconds()
		for i, le := range latencyBuckets {
			if secs <= le {
				m.updCounts[st][i].Add(1)
				break
			}
		}
		m.updSumNs[st].Add(d.Nanoseconds())
		m.updTotal[st].Add(1)
	}
}

// handleMetrics writes the Prometheus text exposition: serving counters,
// the query latency histogram, and index gauges (pieces, largest piece
// share, cumulative index counters) sampled at scrape time — so a
// Prometheus scrape is itself the convergence telemetry feed.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cur := s.state()
	unlock := s.lockSerial()
	st := cur.db.Stats()
	pending := cur.db.PendingUpdates()
	reads, writes, hasPath := cur.db.PathStats()
	sizes, sizesErr := cur.db.PieceSizes()
	unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP crackserver_requests_total HTTP requests by endpoint and status class.\n")
	fmt.Fprintf(w, "# TYPE crackserver_requests_total counter\n")
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		for c := statusClass(0); c < numClasses; c++ {
			if n := s.met.requests[ep][c].Load(); n > 0 {
				fmt.Fprintf(w, "crackserver_requests_total{endpoint=%q,code=%q} %d\n", ep, c, n)
			}
		}
	}

	fmt.Fprintf(w, "# HELP crackserver_queries_total Predicates answered (a batch of k counts k).\n")
	fmt.Fprintf(w, "# TYPE crackserver_queries_total counter\n")
	fmt.Fprintf(w, "crackserver_queries_total %d\n", s.met.queries.Load())

	fmt.Fprintf(w, "# HELP crackserver_in_flight Admitted data-plane requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE crackserver_in_flight gauge\n")
	fmt.Fprintf(w, "crackserver_in_flight %d\n", s.inFlight.Load())

	fmt.Fprintf(w, "# HELP crackserver_admission_rejects_total Requests rejected at the in-flight limit.\n")
	fmt.Fprintf(w, "# TYPE crackserver_admission_rejects_total counter\n")
	fmt.Fprintf(w, "crackserver_admission_rejects_total %d\n", s.rejects.Load())

	fmt.Fprintf(w, "# HELP crackserver_query_seconds Latency of /v1/query requests.\n")
	fmt.Fprintf(w, "# TYPE crackserver_query_seconds histogram\n")
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += s.met.latCounts[i].Load()
		fmt.Fprintf(w, "crackserver_query_seconds_bucket{le=%q} %d\n", formatLe(le), cum)
	}
	total := s.met.latTotal.Load()
	fmt.Fprintf(w, "crackserver_query_seconds_bucket{le=\"+Inf\"} %d\n", total)
	fmt.Fprintf(w, "crackserver_query_seconds_sum %g\n", float64(s.met.latSumNs.Load())/1e9)
	fmt.Fprintf(w, "crackserver_query_seconds_count %d\n", total)

	fmt.Fprintf(w, "# HELP crackserver_update_stage_seconds Decomposed write latency by stage (queue, flush, apply).\n")
	fmt.Fprintf(w, "# TYPE crackserver_update_stage_seconds histogram\n")
	for st := updateStage(0); st < numStages; st++ {
		cum = 0
		for i, le := range latencyBuckets {
			cum += s.met.updCounts[st][i].Load()
			fmt.Fprintf(w, "crackserver_update_stage_seconds_bucket{stage=%q,le=%q} %d\n", st, formatLe(le), cum)
		}
		n := s.met.updTotal[st].Load()
		fmt.Fprintf(w, "crackserver_update_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st, n)
		fmt.Fprintf(w, "crackserver_update_stage_seconds_sum{stage=%q} %g\n", st, float64(s.met.updSumNs[st].Load())/1e9)
		fmt.Fprintf(w, "crackserver_update_stage_seconds_count{stage=%q} %d\n", st, n)
	}

	if gc, ok := cur.db.GroupCommitStats(); ok {
		fmt.Fprintf(w, "# HELP crackserver_groupcommit_flushes_total Group-commit batches flushed through the exclusive section.\n")
		fmt.Fprintf(w, "# TYPE crackserver_groupcommit_flushes_total counter\n")
		fmt.Fprintf(w, "crackserver_groupcommit_flushes_total %d\n", gc.Flushes)
		fmt.Fprintf(w, "# HELP crackserver_groupcommit_ops_total Individual update operations applied via group commit.\n")
		fmt.Fprintf(w, "# TYPE crackserver_groupcommit_ops_total counter\n")
		fmt.Fprintf(w, "crackserver_groupcommit_ops_total %d\n", gc.Ops)
		fmt.Fprintf(w, "# HELP crackserver_groupcommit_enqueued_total Write requests admitted into the group-commit queue.\n")
		fmt.Fprintf(w, "# TYPE crackserver_groupcommit_enqueued_total counter\n")
		fmt.Fprintf(w, "crackserver_groupcommit_enqueued_total %d\n", gc.Enqueued)
		fmt.Fprintf(w, "# HELP crackserver_groupcommit_max_batch Largest single flushed batch (ops).\n")
		fmt.Fprintf(w, "# TYPE crackserver_groupcommit_max_batch gauge\n")
		fmt.Fprintf(w, "crackserver_groupcommit_max_batch %d\n", gc.MaxBatch)
	}

	fmt.Fprintf(w, "# HELP crackserver_index_queries_total Queries answered by the index (all paths).\n")
	fmt.Fprintf(w, "# TYPE crackserver_index_queries_total counter\n")
	fmt.Fprintf(w, "crackserver_index_queries_total %d\n", st.Queries)

	fmt.Fprintf(w, "# HELP crackserver_index_touched_total Tuples examined by reorganizations and scans.\n")
	fmt.Fprintf(w, "# TYPE crackserver_index_touched_total counter\n")
	fmt.Fprintf(w, "crackserver_index_touched_total %d\n", st.Touched)

	fmt.Fprintf(w, "# HELP crackserver_index_pieces Column pieces (index refinement).\n")
	fmt.Fprintf(w, "# TYPE crackserver_index_pieces gauge\n")
	fmt.Fprintf(w, "crackserver_index_pieces %d\n", st.Pieces)

	fmt.Fprintf(w, "# HELP crackserver_pending_updates Queued, not-yet-merged updates.\n")
	fmt.Fprintf(w, "# TYPE crackserver_pending_updates gauge\n")
	fmt.Fprintf(w, "crackserver_pending_updates %d\n", pending)

	if hasPath {
		fmt.Fprintf(w, "# HELP crackserver_exec_path_queries_total Executor queries by lock path.\n")
		fmt.Fprintf(w, "# TYPE crackserver_exec_path_queries_total counter\n")
		fmt.Fprintf(w, "crackserver_exec_path_queries_total{path=\"read\"} %d\n", reads)
		fmt.Fprintf(w, "crackserver_exec_path_queries_total{path=\"write\"} %d\n", writes)
	}
	if sizesErr == nil && len(sizes) > 0 && cur.info.Rows > 0 {
		maxSize := 0
		for _, sz := range sizes {
			if sz > maxSize {
				maxSize = sz
			}
		}
		fmt.Fprintf(w, "# HELP crackserver_index_max_piece_share Largest piece's share of the column (1.0 = unadapted).\n")
		fmt.Fprintf(w, "# TYPE crackserver_index_max_piece_share gauge\n")
		fmt.Fprintf(w, "crackserver_index_max_piece_share %g\n", float64(maxSize)/float64(cur.info.Rows))
	}
}

// formatLe renders a bucket bound the way Prometheus clients expect
// (shortest float form).
func formatLe(le float64) string { return fmt.Sprintf("%g", le) }
