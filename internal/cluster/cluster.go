// Package cluster is the distributed layer over crackserver nodes: a
// scatter-gather coordinator that value-routes queries and updates to N
// backends, each owning one contiguous shard of the value domain, and
// keeps serving through node trouble via health-checked backends, per-
// backend circuit breakers and hedged reads (internal/cluster/client).
//
// It is the paper's §6 "distribution" direction taken one level above
// internal/exec's in-process sharding: the same value-range partitioning
// idea, but each shard is a whole crackserver process reachable over the
// v1 HTTP/JSON API — cracking state, lazy updates, snapshots and all.
// The coordinator speaks that same API to its own clients, so everything
// built against one crackserver (crackbench -serve, the closed-form
// oracle validation, the Go client) works unchanged against a cluster.
//
// # Routing
//
// The routing table is an ascending list of half-open value ranges
// tiling the whole int64 domain, one backend per entry, behind an atomic
// pointer: reads load it once per request, migrations swap it wholesale.
// Every sub-request is clamped to its entry's range — which is what
// makes migration safe: a donor may retain stale tuples of a moved range
// (e.g. when its shrink step failed), but no query ever asks it for
// values outside the range the table says it owns.
//
// # Live shard migration
//
// Migrate moves [lo, hi) from the backend owning it to a joining node in
// four steps: capture the donor's range (GET /v1/snapshot/range, pending
// updates ride along in the v3 stream), restore it into the joiner (POST
// /v1/restore — the joiner starts warm, with every crack the donor
// earned), swap the routing table atomically, then shrink the donor
// (POST /v1/retain). Updates are blocked for the whole window (updMu);
// queries keep flowing throughout — the donor still holds the moving
// range until the swap, and clamping hides whatever it holds after.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/intervals"
	"repro/internal/server"
	"repro/internal/stats"
)

// Config configures a Coordinator.
type Config struct {
	// Client is the per-backend resilience policy (timeouts, retries,
	// hedging, circuit breaker).
	Client client.Config
	// HealthInterval is the background health-probe period (default
	// 500ms).
	HealthInterval time.Duration
	// AuthToken, when non-empty, requires the coordinator's own clients
	// to present "Authorization: Bearer <token>" (GET /healthz stays
	// open), mirroring the single-server behavior.
	AuthToken string
}

func (cfg Config) withDefaults() Config {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	return cfg
}

// node is one backend plus the coordinator's live view of it.
type node struct {
	*client.Backend
	healthy atomic.Bool
	// last successful readiness payload (nil before the first probe).
	last atomic.Pointer[server.HealthResponse]
}

// route is one routing-table entry: node b owns values in [lo, hi).
type route struct {
	lo, hi int64
	b      *node
}

// Coordinator scatter-gathers the v1 API across the routing table. Build
// with New, mount Handler, stop with Close.
type Coordinator struct {
	cfg Config

	// routes is the atomic routing table; always sorted ascending and
	// tiling the full int64 domain.
	routes atomic.Pointer[[]route]

	// nodesMu guards nodes, the set of every backend ever admitted
	// (routed or not — a fully-drained donor stays visible in metrics).
	nodesMu sync.Mutex
	nodes   []*node

	// updMu serializes updates against migrations: updates take the read
	// side, a migration's capture-swap-shrink window takes the write
	// side. Queries take neither — they are safe throughout.
	updMu sync.RWMutex
	// migMu serializes migrations themselves.
	migMu sync.Mutex

	// rows/permutation describe the cluster dataset (derived at New from
	// the backends' readiness payloads; migration never changes totals).
	rows        int64
	permutation bool
	algorithm   string

	mux        *http.ServeMux
	queries    atomic.Int64
	migrations atomic.Int64
	stop       context.CancelFunc
	loopDone   chan struct{}
}

// New builds a Coordinator over the backends at urls, probing each one's
// /healthz readiness payload to learn the shard range it owns. The
// reported ranges must be non-overlapping and contiguous after sorting;
// the first and last entries are extended to the domain edges. Probes
// retry until ctx expires, so backends may still be booting when New is
// called.
func New(ctx context.Context, urls []string, cfg Config) (*Coordinator, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: no backends")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg}
	type probed struct {
		n *node
		h server.HealthResponse
	}
	ps := make([]probed, len(urls))
	var wg sync.WaitGroup
	errs := make([]error, len(urls))
	for i, url := range urls {
		n := &node{Backend: client.New(url, cfg.Client)}
		c.nodes = append(c.nodes, n)
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			h, err := probeUntilReady(ctx, n)
			ps[i] = probed{n: n, h: h}
			errs[i] = err
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %s: %w", urls[i], err)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].h.ShardLo < ps[j].h.ShardLo })
	routes := make([]route, len(ps))
	var total int64
	perm := true
	for i, p := range ps {
		lo, hi := p.h.ShardLo, p.h.ShardHi
		if i > 0 && lo != ps[i-1].h.ShardHi {
			return nil, fmt.Errorf("cluster: shard ranges not contiguous: %s ends at %d, %s starts at %d",
				ps[i-1].n.URL(), ps[i-1].h.ShardHi, p.n.URL(), lo)
		}
		routes[i] = route{lo: lo, hi: hi, b: p.n}
		total += p.h.Rows
		p.n.healthy.Store(true)
		h := p.h
		p.n.last.Store(&h)
	}
	// The cluster data is one permutation of [0, total) exactly when each
	// backend holds every value of its range clamped to [0, total): a
	// permutation has each value once, so the count must equal the
	// clamped range width.
	for _, p := range ps {
		if p.h.Rows != rangeWidth(p.h.ShardLo, p.h.ShardHi, total) {
			perm = false
		}
	}
	extendToDomain(routes)
	c.routes.Store(&routes)
	c.rows = total
	c.permutation = perm
	if st, err := ps[0].n.Stats(ctx); err == nil {
		c.algorithm = st.Algorithm
	}

	loopCtx, stop := context.WithCancel(context.Background())
	c.stop = stop
	c.loopDone = make(chan struct{})
	go c.healthLoop(loopCtx)

	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/query", c.handleQuery)
	c.mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) { c.handleUpdate(w, r, true) })
	c.mux.HandleFunc("POST /v1/delete", func(w http.ResponseWriter, r *http.Request) { c.handleUpdate(w, r, false) })
	c.mux.HandleFunc("POST /v1/migrate", c.handleMigrate)
	c.mux.HandleFunc("GET /v1/stats", c.handleStats)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /debug/metrics", c.handleMetrics)
	return c, nil
}

// probeUntilReady polls a backend's health endpoint until it answers or
// ctx expires.
func probeUntilReady(ctx context.Context, n *node) (server.HealthResponse, error) {
	var lastErr error
	for {
		h, err := n.Health(ctx)
		if err == nil {
			return h, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return server.HealthResponse{}, fmt.Errorf("never became ready: %w", lastErr)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// rangeWidth returns the width of [lo, hi) clamped to [0, n).
func rangeWidth(lo, hi, n int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	return hi - lo
}

// extendToDomain stretches the first and last routing entries to the
// int64 domain edges, so every value routes somewhere.
func extendToDomain(routes []route) {
	routes[0].lo = minInt64
	routes[len(routes)-1].hi = maxInt64
}

const (
	minInt64 = int64(-1 << 63)
	maxInt64 = int64(1<<63 - 1)
)

// Close stops the health loop. It does not touch the backends.
func (c *Coordinator) Close() {
	c.stop()
	<-c.loopDone
}

// Handler returns the coordinator's HTTP handler, with bearer-token
// enforcement when configured (GET /healthz stays open).
func (c *Coordinator) Handler() http.Handler {
	if c.cfg.AuthToken == "" {
		return c.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
			c.mux.ServeHTTP(w, r)
			return
		}
		auth := r.Header.Get("Authorization")
		if auth != "Bearer "+c.cfg.AuthToken {
			writeError(w, http.StatusUnauthorized, "unauthorized",
				"missing or invalid bearer token (Authorization: Bearer ...)")
			return
		}
		c.mux.ServeHTTP(w, r)
	})
}

// Rows returns the cluster-wide row count.
func (c *Coordinator) Rows() int64 { return c.rows }

// healthLoop probes every node's readiness payload on a fixed cadence,
// maintaining the healthy flags /healthz and /debug/metrics report. The
// data path does not consult the flags — circuits and retries handle
// trouble inline — so a slow probe can never take a serving backend out
// of rotation.
func (c *Coordinator) healthLoop(ctx context.Context) {
	defer close(c.loopDone)
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		c.nodesMu.Lock()
		nodes := append([]*node(nil), c.nodes...)
		c.nodesMu.Unlock()
		for _, n := range nodes {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthInterval)
			h, err := n.Health(pctx)
			cancel()
			if err != nil {
				n.healthy.Store(false)
				continue
			}
			n.healthy.Store(true)
			n.last.Store(&h)
		}
	}
}

// itemRanges normalizes one wire query item to disjoint ascending
// half-open ranges (the same semantics the crackdb predicate algebra
// gives a single server).
func itemRanges(it server.QueryItem) ([][2]int64, error) {
	if it.Col != "" {
		return nil, errors.New("cluster serves a single column; drop \"col\"")
	}
	if len(it.Or) == 0 {
		return [][2]int64{{it.Lo, it.Hi}}, nil
	}
	if it.Lo != 0 || it.Hi != 0 {
		return nil, errors.New("query: give either lo/hi or \"or\", not both")
	}
	set := &intervals.Set{}
	for _, r := range it.Or {
		if r.Lo < r.Hi {
			set.Add(r.Lo, r.Hi)
		}
	}
	var rs [][2]int64
	set.Each(func(lo, hi int64) bool {
		rs = append(rs, [2]int64{lo, hi})
		return true
	})
	if rs == nil {
		rs = [][2]int64{{0, 0}} // all-empty Or: one empty range
	}
	return rs, nil
}

// scatter answers one half-open range across the routing table: one
// clamped sub-request per intersecting backend, gathered in ascending
// route (= value-range) order so multi-backend answers merge
// deterministically.
func (c *Coordinator) scatter(ctx context.Context, lo, hi int64, aggregate bool) (server.QueryResult, error) {
	var out server.QueryResult
	if lo >= hi {
		return out, nil
	}
	routes := *c.routes.Load()
	type sub struct {
		b      *node
		lo, hi int64
	}
	var subs []sub
	for _, rt := range routes {
		slo, shi := lo, hi
		if slo < rt.lo {
			slo = rt.lo
		}
		if shi > rt.hi {
			shi = rt.hi
		}
		if slo < shi {
			subs = append(subs, sub{b: rt.b, lo: slo, hi: shi})
		}
	}
	if len(subs) == 0 {
		return out, nil
	}
	results := make([]server.QueryResult, len(subs))
	errs := make([]error, len(subs))
	run := func(i int) {
		req := server.QueryRequest{
			QueryItem: server.QueryItem{Lo: subs[i].lo, Hi: subs[i].hi},
			Aggregate: aggregate,
		}
		resp, err := subs[i].b.Query(ctx, req)
		if err != nil {
			errs[i] = fmt.Errorf("backend %s: %w", subs[i].b.URL(), err)
			return
		}
		if len(resp.Results) != 1 {
			errs[i] = fmt.Errorf("backend %s: %d results for one range", subs[i].b.URL(), len(resp.Results))
			return
		}
		results[i] = resp.Results[0]
	}
	if len(subs) == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for i := 1; i < len(subs); i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		run(0)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	// Gather in route order: backend i's values all precede backend
	// i+1's, so a split-range answer concatenates into one deterministic
	// ascending-by-shard sequence.
	for _, res := range results {
		out.Count += res.Count
		out.Sum += res.Sum
		if !aggregate {
			out.Values = append(out.Values, res.Values...)
		}
	}
	return out, nil
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	inline := req.Lo != 0 || req.Hi != 0 || len(req.Or) > 0 || req.Col != ""
	items := req.Queries
	if items == nil {
		items = []server.QueryItem{req.QueryItem}
	} else if inline {
		writeError(w, http.StatusBadRequest, "bad_request",
			"give either an inline query or \"queries\", not both")
		return
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty \"queries\"")
		return
	}
	resp := server.QueryResponse{Results: make([]server.QueryResult, 0, len(items))}
	for _, it := range items {
		rs, err := itemRanges(it)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		var item server.QueryResult
		for _, rg := range rs {
			part, err := c.scatter(r.Context(), rg[0], rg[1], req.Aggregate)
			if err != nil {
				writeBackendError(w, err)
				return
			}
			item.Count += part.Count
			item.Sum += part.Sum
			item.Values = append(item.Values, part.Values...)
		}
		resp.Results = append(resp.Results, item)
	}
	c.queries.Add(int64(len(items)))
	writeJSON(w, http.StatusOK, resp)
}

// routeFor returns the routing entry owning value v.
func routeFor(routes []route, v int64) *route {
	i := sort.Search(len(routes), func(i int) bool { return v < routes[i].hi })
	if i == len(routes) {
		i = len(routes) - 1 // v == MaxInt64: the top entry absorbs its bound
	}
	return &routes[i]
}

func (c *Coordinator) handleUpdate(w http.ResponseWriter, r *http.Request, insert bool) {
	var req server.UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	values := req.Values
	if req.Value != nil {
		values = append(values, *req.Value)
	}
	if len(values) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "no values")
		return
	}
	// Updates hold the read side for their whole span so a migration's
	// capture-swap window can exclude them wholesale.
	c.updMu.RLock()
	defer c.updMu.RUnlock()
	routes := *c.routes.Load()
	byNode := map[*node][]int64{}
	for _, v := range values {
		rt := routeFor(routes, v)
		byNode[rt.b] = append(byNode[rt.b], v)
	}
	pending := 0
	for n, vals := range byNode {
		var p int
		var err error
		if insert {
			p, err = n.Insert(r.Context(), vals...)
		} else {
			p, err = n.Delete(r.Context(), vals...)
		}
		if err != nil {
			writeBackendError(w, fmt.Errorf("backend %s: %w", n.URL(), err))
			return
		}
		pending += p
	}
	writeJSON(w, http.StatusOK, server.UpdateResponse{Pending: pending})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	routes := *c.routes.Load()
	resp := server.StatsResponse{
		Name: fmt.Sprintf("cluster-%d(%s)", len(routes), c.algorithm),
		Mode: fmt.Sprintf("cluster-%d", len(routes)),
		Info: server.Info{
			Rows: c.rows, Algorithm: c.algorithm, Permutation: c.permutation,
		},
		QueriesServed: c.queries.Load(),
	}
	var maxPiece int
	seen := map[*node]bool{}
	for _, rt := range routes {
		if seen[rt.b] {
			continue
		}
		seen[rt.b] = true
		st, err := rt.b.Stats(r.Context())
		if err != nil {
			writeBackendError(w, fmt.Errorf("backend %s: %w", rt.b.URL(), err))
			return
		}
		resp.PendingUpdates += st.PendingUpdates
		resp.Index.Queries += st.Index.Queries
		resp.Index.Touched += st.Index.Touched
		resp.Index.Swaps += st.Index.Swaps
		resp.Index.Cracks += st.Index.Cracks
		resp.Index.Pieces += st.Index.Pieces
		if st.Pieces != nil && st.Pieces.MaxSize > maxPiece {
			maxPiece = st.Pieces.MaxSize
		}
	}
	if resp.Index.Pieces > 0 && c.rows > 0 {
		resp.Pieces = &stats.PieceStats{
			N: int(c.rows), Pieces: resp.Index.Pieces, MaxSize: maxPiece,
			Skew: float64(maxPiece) / float64(c.rows),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ClusterHealth is the coordinator's /healthz body: overall status
// ("ok" when every routed backend is healthy, "degraded" otherwise) and
// the per-backend view.
type ClusterHealth struct {
	Status   string          `json:"status"`
	Rows     int64           `json:"rows"`
	Backends []BackendHealth `json:"backends"`
}

// BackendHealth is one backend's row in the coordinator's /healthz.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Routed  bool   `json:"routed"`
	ShardLo int64  `json:"shard_lo"`
	ShardHi int64  `json:"shard_hi"`
	Pieces  int    `json:"pieces"`
	// Restored reports the backend's own restored-vs-cold flag (true
	// after a warm start or a migration restore).
	Restored bool   `json:"restored"`
	Circuit  string `json:"circuit"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	routes := *c.routes.Load()
	routed := map[*node][2]int64{}
	for _, rt := range routes {
		routed[rt.b] = [2]int64{rt.lo, rt.hi}
	}
	c.nodesMu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.nodesMu.Unlock()
	resp := ClusterHealth{Status: "ok", Rows: c.rows}
	for _, n := range nodes {
		bh := BackendHealth{URL: n.URL(), Healthy: n.healthy.Load()}
		if rg, ok := routed[n]; ok {
			bh.Routed = true
			bh.ShardLo, bh.ShardHi = rg[0], rg[1]
			if !bh.Healthy {
				resp.Status = "degraded"
			}
		}
		if h := n.last.Load(); h != nil {
			bh.Pieces = h.Pieces
			bh.Restored = h.Restored
		}
		bh.Circuit, _, _ = n.CircuitState()
		resp.Backends = append(resp.Backends, bh)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	routes := *c.routes.Load()
	routed := map[*node]bool{}
	for _, rt := range routes {
		routed[rt.b] = true
	}
	c.nodesMu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.nodesMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP crackcluster_queries_total Queries answered by the coordinator.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_queries_total counter\n")
	fmt.Fprintf(w, "crackcluster_queries_total %d\n", c.queries.Load())
	fmt.Fprintf(w, "# HELP crackcluster_migrations_total Completed shard migrations.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_migrations_total counter\n")
	fmt.Fprintf(w, "crackcluster_migrations_total %d\n", c.migrations.Load())
	fmt.Fprintf(w, "# HELP crackcluster_backend_up Backend health as seen by the probe loop.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_backend_up gauge\n")
	for _, n := range nodes {
		up := 0
		if n.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(w, "crackcluster_backend_up{backend=%q,routed=%q} %d\n",
			n.URL(), fmt.Sprint(routed[n]), up)
	}
	fmt.Fprintf(w, "# HELP crackcluster_backend_circuit Per-backend circuit state (1 in exactly one state).\n")
	fmt.Fprintf(w, "# TYPE crackcluster_backend_circuit gauge\n")
	for _, n := range nodes {
		state, fails, trips := n.CircuitState()
		for _, s := range []string{"closed", "open", "half-open"} {
			v := 0
			if s == state {
				v = 1
			}
			fmt.Fprintf(w, "crackcluster_backend_circuit{backend=%q,state=%q} %d\n", n.URL(), s, v)
		}
		retries, hedges := n.Counters()
		fmt.Fprintf(w, "crackcluster_backend_consecutive_failures{backend=%q} %d\n", n.URL(), fails)
		fmt.Fprintf(w, "crackcluster_backend_circuit_trips_total{backend=%q} %d\n", n.URL(), trips)
		fmt.Fprintf(w, "crackcluster_backend_retries_total{backend=%q} %d\n", n.URL(), retries)
		fmt.Fprintf(w, "crackcluster_backend_hedges_total{backend=%q} %d\n", n.URL(), hedges)
	}
}

// MigrateRequest is the body of POST /v1/migrate: move the value range
// [Lo, Hi) from the backend owning it to the (typically fresh and empty)
// node at To. The range must touch an edge of the donor's owned range —
// moving an interior slice would leave the donor owning two disjoint
// ranges, which one routing entry cannot express.
type MigrateRequest struct {
	To string `json:"to"`
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
}

// MigrateResponse reports a completed migration.
type MigrateResponse struct {
	From string `json:"from"`
	To   string `json:"to"`
	Lo   int64  `json:"lo"`
	Hi   int64  `json:"hi"`
	// Rows/Pieces/Pending describe the state the joiner restored —
	// non-zero Pieces means it starts warm, resuming the donor's earned
	// refinement instead of cracking from scratch.
	Rows      int   `json:"rows"`
	Pieces    int   `json:"pieces"`
	Pending   int   `json:"pending"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// RetainFailed flags a donor that kept a stale copy of the moved
	// range (its shrink step failed). Service stays correct — clamped
	// routing never exposes the stale copy — but the donor holds extra
	// memory until a retry or restart.
	RetainFailed bool `json:"retain_failed,omitempty"`
}

// Migrate moves [lo, hi) to the node at toURL. See MigrateRequest.
func (c *Coordinator) Migrate(ctx context.Context, toURL string, lo, hi int64) (MigrateResponse, error) {
	if lo >= hi {
		return MigrateResponse{}, errors.New("cluster: migrate: need lo < hi")
	}
	c.migMu.Lock()
	defer c.migMu.Unlock()
	start := time.Now()

	routes := *c.routes.Load()
	di := -1
	for i, rt := range routes {
		if lo >= rt.lo && (hi <= rt.hi || (rt.hi == maxInt64 && hi == maxInt64)) {
			di = i
			break
		}
	}
	if di < 0 {
		return MigrateResponse{}, fmt.Errorf("cluster: migrate: [%d, %d) not owned by a single backend", lo, hi)
	}
	donor := routes[di]
	if lo != donor.lo && hi != donor.hi {
		return MigrateResponse{}, fmt.Errorf(
			"cluster: migrate: [%d, %d) is interior to the donor's [%d, %d); move a range touching an edge", lo, hi, donor.lo, donor.hi)
	}

	joiner := c.admitNode(toURL)
	if _, err := probeUntilReady(ctx, joiner); err != nil {
		return MigrateResponse{}, fmt.Errorf("cluster: joiner %s: %w", toURL, err)
	}

	// Block updates for the whole capture-restore-swap-shrink window:
	// an update routed to the donor after the capture would be lost when
	// the donor shrinks. Queries keep flowing — the donor serves the
	// moving range until the swap, the joiner after.
	c.updMu.Lock()
	defer c.updMu.Unlock()

	stream, err := donor.b.SnapshotRange(ctx, lo, hi)
	if err != nil {
		return MigrateResponse{}, fmt.Errorf("cluster: capturing [%d, %d) from %s: %w", lo, hi, donor.b.URL(), err)
	}
	restored, err := joiner.RestoreSnapshot(ctx, stream, lo, hi)
	if err != nil {
		return MigrateResponse{}, fmt.Errorf("cluster: restoring into %s: %w", toURL, err)
	}

	// Swap the routing table: the joiner takes [lo, hi), the donor keeps
	// the rest of its range (nothing, when the whole range moved).
	next := make([]route, 0, len(routes)+1)
	next = append(next, routes[:di]...)
	if donor.lo < lo {
		next = append(next, route{lo: donor.lo, hi: lo, b: donor.b})
	}
	next = append(next, route{lo: lo, hi: hi, b: joiner})
	if hi < donor.hi {
		next = append(next, route{lo: hi, hi: donor.hi, b: donor.b})
	}
	next = append(next, routes[di+1:]...)
	c.routes.Store(&next)
	joiner.healthy.Store(true)
	// Refresh the joiner's cached readiness right away — its pre-restore
	// payload says cold/unrouted, and /healthz should not wait a probe
	// period to show the warm join.
	if h, err := joiner.Health(ctx); err == nil {
		joiner.last.Store(&h)
	}

	resp := MigrateResponse{
		From: donor.b.URL(), To: toURL, Lo: lo, Hi: hi,
		Rows: restored.Rows, Pieces: restored.Pieces, Pending: restored.Pending,
	}
	// Shrink the donor to what it still owns. A failure here is
	// survivable (see RetainFailed) — the routing table already hides
	// the moved range.
	if donor.lo < lo || hi < donor.hi {
		keepLo, keepHi := donor.lo, lo
		if lo == donor.lo {
			keepLo, keepHi = hi, donor.hi
		}
		if _, err := donor.b.Retain(ctx, keepLo, keepHi); err != nil {
			resp.RetainFailed = true
		}
	}
	c.migrations.Add(1)
	resp.ElapsedMS = time.Since(start).Milliseconds()
	return resp, nil
}

// admitNode returns the node for url, creating and registering it if the
// coordinator has not seen it before.
func (c *Coordinator) admitNode(url string) *node {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	for _, n := range c.nodes {
		if n.URL() == url {
			return n
		}
	}
	n := &node{Backend: client.New(url, c.cfg.Client)}
	c.nodes = append(c.nodes, n)
	return n
}

func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.To == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "need \"to\": the joining node's URL")
		return
	}
	resp, err := c.Migrate(r.Context(), req.To, req.Lo, req.Hi)
	if err != nil {
		status, code := http.StatusBadGateway, "migration_failed"
		if strings.Contains(err.Error(), "migrate:") {
			status, code = http.StatusBadRequest, "bad_request"
		}
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- small wire helpers (the coordinator is not a server.Server, so it
// carries its own copies of the JSON plumbing) ---

const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return false
	}
	return true
}

// writeBackendError maps a scatter failure: a backend's own API error
// passes through with its status, transport-level trouble becomes a 502
// so clients can tell "the cluster is degraded" from "my request is
// wrong".
func writeBackendError(w http.ResponseWriter, err error) {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) && apiErr.Status < 500 {
		writeError(w, apiErr.Status, apiErr.Code, err.Error())
		return
	}
	writeError(w, http.StatusBadGateway, "backend_unavailable", err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
