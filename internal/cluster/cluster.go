// Package cluster is the distributed layer over crackserver nodes: a
// scatter-gather coordinator that value-routes queries and updates to N
// backends, each owning one contiguous shard of the value domain, and
// keeps serving through node trouble via health-checked backends, per-
// backend circuit breakers and hedged reads (internal/cluster/client).
//
// It is the paper's §6 "distribution" direction taken one level above
// internal/exec's in-process sharding: the same value-range partitioning
// idea, but each shard is a whole crackserver process reachable over the
// v1 HTTP/JSON API — cracking state, lazy updates, snapshots and all.
// The coordinator speaks that same API to its own clients, so everything
// built against one crackserver (crackbench -serve, the closed-form
// oracle validation, the Go client) works unchanged against a cluster.
//
// # Routing and replication
//
// The routing table is an ascending list of half-open value ranges
// tiling the whole int64 domain, each entry carrying a *replica set*
// (one or more backends holding identical copies of the range), behind
// an atomic pointer: reads load it once per request, migrations and
// drains swap it wholesale. Every sub-request is clamped to its entry's
// range — which is what makes both migration and replica recovery safe:
// a node may hold stale tuples outside the ranges the table says it
// owns, but no query ever asks it for them.
//
// Reads go to the preferred (first) replica; the read hedge points at
// the *next* replica rather than the same node, and an error fails over
// immediately, so a dead backend degrades latency, not availability.
// Updates ack only after every live replica acked; a replica that
// provably missed an op is taken out of the read set and journaled, and
// is caught up (journal replay, or a full re-seed from a peer snapshot
// when the miss was ambiguous) before it rejoins. See replication.go
// for the ack/journal argument and drain.go for planned handoff.
//
// # Live shard migration
//
// Migrate moves [lo, hi) from the replica set owning it to a joining
// node in four steps: capture the range from a live replica (GET
// /v1/snapshot/range, pending updates ride along in the v3 stream),
// restore it into the joiner (POST /v1/restore — the joiner starts
// warm, with every crack the donor earned), swap the routing table
// atomically, then shrink the donors (POST /v1/retain). Updates are
// blocked for the whole window (updMu); queries keep flowing throughout
// — the donors still hold the moving range until the swap, and clamping
// hides whatever they hold after. Replica bootstrap (AddReplica) is the
// same protocol minus the shrink: restore without retain.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/intervals"
	"repro/internal/server"
	"repro/internal/stats"
)

// Config configures a Coordinator.
type Config struct {
	// Client is the per-backend resilience policy (timeouts, retries,
	// hedging, circuit breaker).
	Client client.Config
	// HealthInterval is the background health-probe period (default
	// 500ms).
	HealthInterval time.Duration
	// Replicas, when > 0, requires every shard range to be covered by at
	// least this many backends at boot (backends reporting the same
	// shard range form a replica set). 0 accepts any layout, including
	// unreplicated.
	Replicas int
	// AuthToken, when non-empty, requires the coordinator's own clients
	// to present "Authorization: Bearer <token>" (GET /healthz stays
	// open), mirroring the single-server behavior.
	AuthToken string
}

func (cfg Config) withDefaults() Config {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	return cfg
}

// node is one backend plus the coordinator's live view of it.
type node struct {
	*client.Backend
	healthy atomic.Bool
	// last successful readiness payload (nil before the first probe).
	last atomic.Pointer[server.HealthResponse]

	// out marks a replica that missed an acknowledged update: it leaves
	// the read set (its state is stale) until catch-up replays what it
	// missed. Set under jmu together with the journal append.
	out atomic.Bool
	// resync marks a replica whose journal is no longer sufficient — an
	// ambiguous failure (it may have half-applied an op) or journal
	// overflow. Catch-up must re-seed it from a peer snapshot.
	resync atomic.Bool
	// drained marks a node whose ranges were handed off; it never
	// rejoins its old routes (re-admit it via AddReplica).
	drained atomic.Bool
	// recovering dedupes the health loop's automatic catch-up spawns.
	recovering atomic.Bool

	// jmu guards journal: the ops this replica provably missed, in ack
	// order, replayed by catch-up before the replica rejoins reads.
	jmu     sync.Mutex
	journal []journalOp
}

// live reports whether the node is part of its routes' serving sets —
// neither taken out for missing updates nor drained. Probe health is
// deliberately not consulted here: the data path discovers trouble
// inline (circuits, failover) and a slow probe must never drop a
// serving replica.
func (n *node) live() bool { return !n.out.Load() && !n.drained.Load() }

// route is one routing-table entry: the nodes in replicas each hold a
// copy of the values in [lo, hi). The first replica is preferred for
// reads; the rest are hedge/failover targets.
type route struct {
	lo, hi   int64
	replicas []*node
}

func (rt *route) has(n *node) bool {
	for _, r := range rt.replicas {
		if r == n {
			return true
		}
	}
	return false
}

// liveReplicas returns the replicas currently serving reads, preferred
// first.
func (rt *route) liveReplicas() []*node {
	out := make([]*node, 0, len(rt.replicas))
	for _, n := range rt.replicas {
		if n.live() {
			out = append(out, n)
		}
	}
	return out
}

// Coordinator scatter-gathers the v1 API across the routing table. Build
// with New, mount Handler, stop with Close.
type Coordinator struct {
	cfg Config

	// routes is the atomic routing table; always sorted ascending and
	// tiling the full int64 domain.
	routes atomic.Pointer[[]route]

	// nodesMu guards nodes, the set of every backend ever admitted
	// (routed or not — a fully-drained donor stays visible in metrics).
	nodesMu sync.Mutex
	nodes   []*node

	// updMu serializes updates against migrations and replica catch-up:
	// updates take the read side; a migration's capture-swap-shrink
	// window, a drain and a catch-up's replay each take the write side.
	// Queries take neither — they are safe throughout.
	updMu sync.RWMutex
	// migMu serializes migrations, drains and catch-ups themselves.
	migMu sync.Mutex

	// rows/permutation describe the cluster dataset (derived at New from
	// the backends' readiness payloads; migration never changes totals).
	rows        int64
	permutation bool
	algorithm   string

	mux          *http.ServeMux
	queries      atomic.Int64
	migrations   atomic.Int64
	replications atomic.Int64
	drains       atomic.Int64
	catchups     atomic.Int64
	stop         context.CancelFunc
	loopDone     chan struct{}
}

// New builds a Coordinator over the backends at urls, probing each one's
// /healthz readiness payload to learn the shard range it owns. Backends
// reporting the same shard range form a replica set; the distinct
// ranges must be non-overlapping and contiguous after sorting, and the
// first and last are extended to the domain edges. Probes retry until
// ctx expires, so backends may still be booting when New is called.
func New(ctx context.Context, urls []string, cfg Config) (*Coordinator, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: no backends")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg}
	type probed struct {
		n *node
		h server.HealthResponse
	}
	ps := make([]probed, len(urls))
	var wg sync.WaitGroup
	errs := make([]error, len(urls))
	for i, url := range urls {
		n := &node{Backend: client.New(url, cfg.Client)}
		c.nodes = append(c.nodes, n)
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			h, err := probeUntilReady(ctx, n)
			ps[i] = probed{n: n, h: h}
			errs[i] = err
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %s: %w", urls[i], err)
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].h.ShardLo != ps[j].h.ShardLo {
			return ps[i].h.ShardLo < ps[j].h.ShardLo
		}
		if ps[i].h.ShardHi != ps[j].h.ShardHi {
			return ps[i].h.ShardHi < ps[j].h.ShardHi
		}
		return ps[i].n.URL() < ps[j].n.URL()
	})
	// Group backends reporting the same range into replica sets.
	var routes []route
	var total int64
	for i := 0; i < len(ps); {
		lo, hi := ps[i].h.ShardLo, ps[i].h.ShardHi
		j := i
		var reps []*node
		for ; j < len(ps) && ps[j].h.ShardLo == lo && ps[j].h.ShardHi == hi; j++ {
			if ps[j].h.Rows != ps[i].h.Rows {
				return nil, fmt.Errorf("cluster: replicas of [%d, %d) disagree on rows: %s has %d, %s has %d",
					lo, hi, ps[i].n.URL(), ps[i].h.Rows, ps[j].n.URL(), ps[j].h.Rows)
			}
			reps = append(reps, ps[j].n)
		}
		if len(routes) > 0 && lo != routes[len(routes)-1].hi {
			return nil, fmt.Errorf("cluster: shard ranges not contiguous: previous range ends at %d, %s starts at %d",
				routes[len(routes)-1].hi, reps[0].URL(), lo)
		}
		if cfg.Replicas > 0 && len(reps) < cfg.Replicas {
			return nil, fmt.Errorf("cluster: range [%d, %d) has %d replica(s), need %d",
				lo, hi, len(reps), cfg.Replicas)
		}
		routes = append(routes, route{lo: lo, hi: hi, replicas: reps})
		total += ps[i].h.Rows
		i = j
	}
	for _, p := range ps {
		p.n.healthy.Store(true)
		h := p.h
		p.n.last.Store(&h)
	}
	// The cluster data is one permutation of [0, total) exactly when each
	// range holds every value of its span clamped to [0, total): a
	// permutation has each value once, so the count must equal the
	// clamped range width.
	perm := true
	for _, rt := range routes {
		if h := rt.replicas[0].last.Load(); h.Rows != rangeWidth(rt.lo, rt.hi, total) {
			perm = false
		}
	}
	extendToDomain(routes)
	if err := validateRoutes(routes); err != nil {
		return nil, err
	}
	c.routes.Store(&routes)
	c.rows = total
	c.permutation = perm
	if st, err := ps[0].n.Stats(ctx); err == nil {
		c.algorithm = st.Algorithm
	}

	loopCtx, stop := context.WithCancel(context.Background())
	c.stop = stop
	c.loopDone = make(chan struct{})
	go c.healthLoop(loopCtx)

	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/query", c.handleQuery)
	c.mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) { c.handleUpdate(w, r, true) })
	c.mux.HandleFunc("POST /v1/delete", func(w http.ResponseWriter, r *http.Request) { c.handleUpdate(w, r, false) })
	c.mux.HandleFunc("POST /v1/migrate", c.handleMigrate)
	c.mux.HandleFunc("POST /v1/replicate", c.handleReplicate)
	c.mux.HandleFunc("POST /v1/drain", c.handleDrain)
	c.mux.HandleFunc("POST /v1/recover", c.handleRecover)
	c.mux.HandleFunc("GET /v1/stats", c.handleStats)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /debug/metrics", c.handleMetrics)
	return c, nil
}

// probeUntilReady polls a backend's health endpoint until it answers or
// ctx expires.
func probeUntilReady(ctx context.Context, n *node) (server.HealthResponse, error) {
	var lastErr error
	for {
		h, err := n.Health(ctx)
		if err == nil {
			return h, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return server.HealthResponse{}, fmt.Errorf("never became ready: %w", lastErr)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// rangeWidth returns the width of [lo, hi) clamped to [0, n).
func rangeWidth(lo, hi, n int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	return hi - lo
}

// extendToDomain stretches the first and last routing entries to the
// int64 domain edges, so every value routes somewhere.
func extendToDomain(routes []route) {
	routes[0].lo = minInt64
	routes[len(routes)-1].hi = maxInt64
}

// validateRoutes checks the invariants every routing-table swap must
// preserve: non-empty, ascending, contiguous, tiling the full int64
// domain, and every range keeping at least one live replica. Swaps that
// would violate any of these are refused — a bad drain plan must fail
// the drain, not the cluster.
func validateRoutes(routes []route) error {
	if len(routes) == 0 {
		return errors.New("cluster: empty routing table")
	}
	if routes[0].lo != minInt64 {
		return fmt.Errorf("cluster: routing table starts at %d, not the domain edge", routes[0].lo)
	}
	if routes[len(routes)-1].hi != maxInt64 {
		return fmt.Errorf("cluster: routing table ends at %d, not the domain edge", routes[len(routes)-1].hi)
	}
	for i := range routes {
		rt := &routes[i]
		if rt.lo >= rt.hi {
			return fmt.Errorf("cluster: empty route [%d, %d)", rt.lo, rt.hi)
		}
		if i > 0 && rt.lo != routes[i-1].hi {
			return fmt.Errorf("cluster: routes not contiguous at %d", rt.lo)
		}
		if len(rt.replicas) == 0 {
			return fmt.Errorf("cluster: range [%d, %d) has no replicas", rt.lo, rt.hi)
		}
		if len(rt.liveReplicas()) == 0 {
			return fmt.Errorf("cluster: range [%d, %d) has no live replicas", rt.lo, rt.hi)
		}
	}
	return nil
}

const (
	minInt64 = int64(-1 << 63)
	maxInt64 = int64(1<<63 - 1)
)

// Close stops the health loop. It does not touch the backends.
func (c *Coordinator) Close() {
	c.stop()
	<-c.loopDone
}

// Handler returns the coordinator's HTTP handler, with bearer-token
// enforcement when configured (GET /healthz stays open).
func (c *Coordinator) Handler() http.Handler {
	if c.cfg.AuthToken == "" {
		return c.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
			c.mux.ServeHTTP(w, r)
			return
		}
		auth := r.Header.Get("Authorization")
		if auth != "Bearer "+c.cfg.AuthToken {
			writeError(w, http.StatusUnauthorized, "unauthorized",
				"missing or invalid bearer token (Authorization: Bearer ...)")
			return
		}
		c.mux.ServeHTTP(w, r)
	})
}

// Rows returns the cluster-wide row count.
func (c *Coordinator) Rows() int64 { return c.rows }

// healthLoop probes every node's readiness payload on a fixed cadence,
// maintaining the healthy flags /healthz and /debug/metrics report, and
// kicks off catch-up for an out replica as soon as it answers probes
// again. The data path does not consult the flags — circuits and
// retries handle trouble inline — so a slow probe can never take a
// serving backend out of rotation.
func (c *Coordinator) healthLoop(ctx context.Context) {
	defer close(c.loopDone)
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		c.nodesMu.Lock()
		nodes := append([]*node(nil), c.nodes...)
		c.nodesMu.Unlock()
		for _, n := range nodes {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthInterval)
			h, err := n.Health(pctx)
			cancel()
			if err != nil {
				n.healthy.Store(false)
				continue
			}
			n.healthy.Store(true)
			n.last.Store(&h)
			// A reachable out replica is ready to be caught up; do it in
			// the background so the probe cadence is unaffected.
			if n.out.Load() && !n.drained.Load() && n.recovering.CompareAndSwap(false, true) {
				go func(n *node) { _ = c.catchUp(ctx, n) }(n)
			}
		}
	}
}

// itemRanges normalizes one wire query item to disjoint ascending
// half-open ranges (the same semantics the crackdb predicate algebra
// gives a single server).
func itemRanges(it server.QueryItem) ([][2]int64, error) {
	if it.Col != "" {
		return nil, errors.New("cluster serves a single column; drop \"col\"")
	}
	if len(it.Or) == 0 {
		return [][2]int64{{it.Lo, it.Hi}}, nil
	}
	if it.Lo != 0 || it.Hi != 0 {
		return nil, errors.New("query: give either lo/hi or \"or\", not both")
	}
	set := &intervals.Set{}
	for _, r := range it.Or {
		if r.Lo < r.Hi {
			set.Add(r.Lo, r.Hi)
		}
	}
	var rs [][2]int64
	set.Each(func(lo, hi int64) bool {
		rs = append(rs, [2]int64{lo, hi})
		return true
	})
	if rs == nil {
		rs = [][2]int64{{0, 0}} // all-empty Or: one empty range
	}
	return rs, nil
}

// span is one clamped sub-request of a scatter: route ri answers
// [lo, hi).
type span struct {
	ri     int
	lo, hi int64
}

// planSpans clamps [lo, hi) against the routing table: one span per
// intersecting route, ascending and disjoint, unioning back to exactly
// the requested range.
func planSpans(routes []route, lo, hi int64) []span {
	var spans []span
	for i := range routes {
		slo, shi := lo, hi
		if slo < routes[i].lo {
			slo = routes[i].lo
		}
		if shi > routes[i].hi {
			shi = routes[i].hi
		}
		if slo < shi {
			spans = append(spans, span{ri: i, lo: slo, hi: shi})
		}
	}
	return spans
}

// scatter answers one half-open range across the routing table: one
// clamped sub-request per intersecting range, each answered by that
// range's replica set (preferred replica first, cross-replica hedge and
// failover behind it), gathered in ascending route (= value-range)
// order so multi-range answers merge deterministically.
func (c *Coordinator) scatter(ctx context.Context, lo, hi int64, aggregate bool) (server.QueryResult, error) {
	var out server.QueryResult
	if lo >= hi {
		return out, nil
	}
	routes := *c.routes.Load()
	spans := planSpans(routes, lo, hi)
	if len(spans) == 0 {
		return out, nil
	}
	results := make([]server.QueryResult, len(spans))
	errs := make([]error, len(spans))
	run := func(i int) {
		rt := &routes[spans[i].ri]
		live := rt.liveReplicas()
		if len(live) == 0 {
			errs[i] = &rangeUnavailableError{lo: rt.lo, hi: rt.hi, cause: errors.New("no live replicas")}
			return
		}
		bs := make([]*client.Backend, len(live))
		for j, n := range live {
			bs[j] = n.Backend
		}
		req := server.QueryRequest{
			QueryItem: server.QueryItem{Lo: spans[i].lo, Hi: spans[i].hi},
			Aggregate: aggregate,
		}
		resp, err := client.QueryAcross(ctx, bs, req)
		if err != nil {
			var apiErr *server.APIError
			if errors.As(err, &apiErr) && apiErr.Status < 500 {
				errs[i] = err // the request itself is wrong; not an availability problem
				return
			}
			errs[i] = &rangeUnavailableError{lo: rt.lo, hi: rt.hi, cause: err}
			return
		}
		if len(resp.Results) != 1 {
			errs[i] = fmt.Errorf("range [%d, %d): %d results for one sub-range", rt.lo, rt.hi, len(resp.Results))
			return
		}
		results[i] = resp.Results[0]
	}
	if len(spans) == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for i := 1; i < len(spans); i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		run(0)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	// Gather in route order: range i's values all precede range i+1's,
	// so a split-range answer concatenates into one deterministic
	// ascending-by-shard sequence.
	for _, res := range results {
		out.Count += res.Count
		out.Sum += res.Sum
		if !aggregate {
			out.Values = append(out.Values, res.Values...)
		}
	}
	return out, nil
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	inline := req.Lo != 0 || req.Hi != 0 || len(req.Or) > 0 || req.Col != ""
	items := req.Queries
	if items == nil {
		items = []server.QueryItem{req.QueryItem}
	} else if inline {
		writeError(w, http.StatusBadRequest, "bad_request",
			"give either an inline query or \"queries\", not both")
		return
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty \"queries\"")
		return
	}
	resp := server.QueryResponse{Results: make([]server.QueryResult, 0, len(items))}
	for _, it := range items {
		rs, err := itemRanges(it)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		var item server.QueryResult
		for _, rg := range rs {
			part, err := c.scatter(r.Context(), rg[0], rg[1], req.Aggregate)
			if err != nil {
				writeBackendError(w, err)
				return
			}
			item.Count += part.Count
			item.Sum += part.Sum
			item.Values = append(item.Values, part.Values...)
		}
		resp.Results = append(resp.Results, item)
	}
	c.queries.Add(int64(len(items)))
	writeJSON(w, http.StatusOK, resp)
}

// routeIndexFor returns the index of the routing entry owning value v.
func routeIndexFor(routes []route, v int64) int {
	i := sort.Search(len(routes), func(i int) bool { return v < routes[i].hi })
	if i == len(routes) {
		i = len(routes) - 1 // v == MaxInt64: the top entry absorbs its bound
	}
	return i
}

func (c *Coordinator) handleUpdate(w http.ResponseWriter, r *http.Request, insert bool) {
	var req server.UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	values := req.Values
	if req.Value != nil {
		values = append(values, *req.Value)
	}
	if len(values) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "no values")
		return
	}
	// Updates hold the read side for their whole span so a migration's
	// capture-swap window — and a recovering replica's journal replay —
	// can exclude them wholesale.
	c.updMu.RLock()
	defer c.updMu.RUnlock()
	routes := *c.routes.Load()
	byRoute := map[int][]int64{}
	for _, v := range values {
		ri := routeIndexFor(routes, v)
		byRoute[ri] = append(byRoute[ri], v)
	}
	pending := 0
	for ri, vals := range byRoute {
		p, err := c.applyReplicated(r.Context(), &routes[ri], vals, insert)
		if err != nil {
			writeBackendError(w, err)
			return
		}
		pending += p
	}
	writeJSON(w, http.StatusOK, server.UpdateResponse{Pending: pending})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	routes := *c.routes.Load()
	resp := server.StatsResponse{
		Name: fmt.Sprintf("cluster-%d(%s)", len(routes), c.algorithm),
		Mode: fmt.Sprintf("cluster-%d", len(routes)),
		Info: server.Info{
			Rows: c.rows, Algorithm: c.algorithm, Permutation: c.permutation,
		},
		QueriesServed: c.queries.Load(),
	}
	var maxPiece int
	// One representative per range: a node holding several ranges
	// reports them all in one stats payload, so a range whose live
	// replica was already counted is covered. Within a range, fail over
	// across replicas.
	seen := map[*node]bool{}
	for i := range routes {
		rt := &routes[i]
		covered := false
		for _, n := range rt.replicas {
			if seen[n] && n.live() {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		var lastErr error
		done := false
		for _, n := range rt.liveReplicas() {
			st, err := n.Stats(r.Context())
			if err != nil {
				lastErr = fmt.Errorf("backend %s: %w", n.URL(), err)
				continue
			}
			seen[n] = true
			resp.PendingUpdates += st.PendingUpdates
			resp.Index.Queries += st.Index.Queries
			resp.Index.Touched += st.Index.Touched
			resp.Index.Swaps += st.Index.Swaps
			resp.Index.Cracks += st.Index.Cracks
			resp.Index.Pieces += st.Index.Pieces
			if st.Pieces != nil && st.Pieces.MaxSize > maxPiece {
				maxPiece = st.Pieces.MaxSize
			}
			done = true
			break
		}
		if !done {
			if lastErr == nil {
				lastErr = errors.New("no live replicas")
			}
			writeBackendError(w, &rangeUnavailableError{lo: rt.lo, hi: rt.hi, cause: lastErr})
			return
		}
	}
	if resp.Index.Pieces > 0 && c.rows > 0 {
		resp.Pieces = &stats.PieceStats{
			N: int(c.rows), Pieces: resp.Index.Pieces, MaxSize: maxPiece,
			Skew: float64(maxPiece) / float64(c.rows),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ClusterHealth is the coordinator's /healthz body: overall status
// ("ok" when every routed backend is live and healthy and every range
// has its full replica set, "degraded" otherwise), the per-backend view
// and the per-range replica counts.
type ClusterHealth struct {
	Status   string          `json:"status"`
	Rows     int64           `json:"rows"`
	Backends []BackendHealth `json:"backends"`
	Ranges   []RangeHealth   `json:"ranges"`
}

// BackendHealth is one backend's row in the coordinator's /healthz.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Routed  bool   `json:"routed"`
	ShardLo int64  `json:"shard_lo"`
	ShardHi int64  `json:"shard_hi"`
	Pieces  int    `json:"pieces"`
	// Restored reports the backend's own restored-vs-cold flag (true
	// after a warm start or a migration restore).
	Restored bool   `json:"restored"`
	Circuit  string `json:"circuit"`
	// Out is true while the replica is excluded from reads because it
	// missed an acknowledged update and has not been caught up yet.
	Out bool `json:"out,omitempty"`
	// Draining is true once the node's ranges were handed off.
	Draining bool `json:"draining,omitempty"`
	// JournalOps is the number of missed ops queued for catch-up replay.
	JournalOps int `json:"journal_ops,omitempty"`
}

// RangeHealth is one routing range's replica census.
type RangeHealth struct {
	Lo       int64 `json:"lo"`
	Hi       int64 `json:"hi"`
	Replicas int   `json:"replicas"`
	Live     int   `json:"live"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	routes := *c.routes.Load()
	routed := map[*node][2]int64{}
	for i := range routes {
		for _, n := range routes[i].replicas {
			if _, ok := routed[n]; !ok {
				routed[n] = [2]int64{routes[i].lo, routes[i].hi}
			}
		}
	}
	c.nodesMu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.nodesMu.Unlock()
	resp := ClusterHealth{Status: "ok", Rows: c.rows}
	for _, n := range nodes {
		bh := BackendHealth{
			URL: n.URL(), Healthy: n.healthy.Load(),
			Out: n.out.Load(), Draining: n.drained.Load(), JournalOps: n.journalLen(),
		}
		if rg, ok := routed[n]; ok {
			bh.Routed = true
			bh.ShardLo, bh.ShardHi = rg[0], rg[1]
			if !bh.Healthy || bh.Out {
				resp.Status = "degraded"
			}
		}
		if h := n.last.Load(); h != nil {
			bh.Pieces = h.Pieces
			bh.Restored = h.Restored
		}
		bh.Circuit, _, _ = n.CircuitState()
		resp.Backends = append(resp.Backends, bh)
	}
	for i := range routes {
		rt := &routes[i]
		live := len(rt.liveReplicas())
		resp.Ranges = append(resp.Ranges, RangeHealth{
			Lo: rt.lo, Hi: rt.hi, Replicas: len(rt.replicas), Live: live,
		})
		if live < len(rt.replicas) {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	routes := *c.routes.Load()
	routed := map[*node]bool{}
	for i := range routes {
		for _, n := range routes[i].replicas {
			routed[n] = true
		}
	}
	c.nodesMu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.nodesMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP crackcluster_queries_total Queries answered by the coordinator.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_queries_total counter\n")
	fmt.Fprintf(w, "crackcluster_queries_total %d\n", c.queries.Load())
	fmt.Fprintf(w, "# HELP crackcluster_migrations_total Completed shard migrations.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_migrations_total counter\n")
	fmt.Fprintf(w, "crackcluster_migrations_total %d\n", c.migrations.Load())
	fmt.Fprintf(w, "# HELP crackcluster_replications_total Completed replica bootstraps.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_replications_total counter\n")
	fmt.Fprintf(w, "crackcluster_replications_total %d\n", c.replications.Load())
	fmt.Fprintf(w, "# HELP crackcluster_drains_total Completed node drains.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_drains_total counter\n")
	fmt.Fprintf(w, "crackcluster_drains_total %d\n", c.drains.Load())
	fmt.Fprintf(w, "# HELP crackcluster_catchups_total Replicas caught up and returned to the read set.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_catchups_total counter\n")
	fmt.Fprintf(w, "crackcluster_catchups_total %d\n", c.catchups.Load())
	fmt.Fprintf(w, "# HELP crackcluster_backend_up Backend health as seen by the probe loop.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_backend_up gauge\n")
	for _, n := range nodes {
		up := 0
		if n.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(w, "crackcluster_backend_up{backend=%q,routed=%q} %d\n",
			n.URL(), fmt.Sprint(routed[n]), up)
	}
	fmt.Fprintf(w, "# HELP crackcluster_replica_out Replica excluded from reads pending catch-up.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_replica_out gauge\n")
	for _, n := range nodes {
		out := 0
		if n.out.Load() {
			out = 1
		}
		fmt.Fprintf(w, "crackcluster_replica_out{backend=%q} %d\n", n.URL(), out)
	}
	fmt.Fprintf(w, "# HELP crackcluster_journal_ops Missed ops queued for catch-up replay.\n")
	fmt.Fprintf(w, "# TYPE crackcluster_journal_ops gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "crackcluster_journal_ops{backend=%q} %d\n", n.URL(), n.journalLen())
	}
	fmt.Fprintf(w, "# HELP crackcluster_backend_circuit Per-backend circuit state (1 in exactly one state).\n")
	fmt.Fprintf(w, "# TYPE crackcluster_backend_circuit gauge\n")
	for _, n := range nodes {
		state, fails, trips := n.CircuitState()
		for _, s := range []string{"closed", "open", "half-open"} {
			v := 0
			if s == state {
				v = 1
			}
			fmt.Fprintf(w, "crackcluster_backend_circuit{backend=%q,state=%q} %d\n", n.URL(), s, v)
		}
		retries, hedges := n.Counters()
		fmt.Fprintf(w, "crackcluster_backend_consecutive_failures{backend=%q} %d\n", n.URL(), fails)
		fmt.Fprintf(w, "crackcluster_backend_circuit_trips_total{backend=%q} %d\n", n.URL(), trips)
		fmt.Fprintf(w, "crackcluster_backend_retries_total{backend=%q} %d\n", n.URL(), retries)
		fmt.Fprintf(w, "crackcluster_backend_hedges_total{backend=%q} %d\n", n.URL(), hedges)
	}
}

// MigrateRequest is the body of POST /v1/migrate: move the value range
// [Lo, Hi) from the replica set owning it to the (typically fresh and
// empty) node at To. The range must touch an edge of the owning range —
// moving an interior slice would leave the donors owning two disjoint
// ranges, which one routing entry cannot express.
type MigrateRequest struct {
	To string `json:"to"`
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
}

// MigrateResponse reports a completed migration.
type MigrateResponse struct {
	From string `json:"from"`
	To   string `json:"to"`
	Lo   int64  `json:"lo"`
	Hi   int64  `json:"hi"`
	// Rows/Pieces/Pending describe the state the joiner restored —
	// non-zero Pieces means it starts warm, resuming the donor's earned
	// refinement instead of cracking from scratch.
	Rows      int   `json:"rows"`
	Pieces    int   `json:"pieces"`
	Pending   int   `json:"pending"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// RetainFailed flags a donor that kept a stale copy of the moved
	// range (its shrink step failed). Service stays correct — clamped
	// routing never exposes the stale copy — but the donor holds extra
	// memory until a retry or restart.
	RetainFailed bool `json:"retain_failed,omitempty"`
}

// Migrate moves [lo, hi) to the node at toURL. See MigrateRequest. The
// moved range starts unreplicated (the joiner is its only copy); use
// AddReplica to restore redundancy.
func (c *Coordinator) Migrate(ctx context.Context, toURL string, lo, hi int64) (MigrateResponse, error) {
	if lo >= hi {
		return MigrateResponse{}, errors.New("cluster: migrate: need lo < hi")
	}
	c.migMu.Lock()
	defer c.migMu.Unlock()
	start := time.Now()

	routes := *c.routes.Load()
	di := -1
	for i, rt := range routes {
		if lo >= rt.lo && (hi <= rt.hi || (rt.hi == maxInt64 && hi == maxInt64)) {
			di = i
			break
		}
	}
	if di < 0 {
		return MigrateResponse{}, fmt.Errorf("cluster: migrate: [%d, %d) not owned by a single range", lo, hi)
	}
	donor := routes[di]
	if lo != donor.lo && hi != donor.hi {
		return MigrateResponse{}, fmt.Errorf(
			"cluster: migrate: [%d, %d) is interior to the owner's [%d, %d); move a range touching an edge", lo, hi, donor.lo, donor.hi)
	}
	src := firstServing(donor.replicas)
	if src == nil {
		return MigrateResponse{}, fmt.Errorf("cluster: migrate: no live replica of [%d, %d) to capture from", donor.lo, donor.hi)
	}

	joiner := c.admitNode(toURL)
	if _, err := probeUntilReady(ctx, joiner); err != nil {
		return MigrateResponse{}, fmt.Errorf("cluster: joiner %s: %w", toURL, err)
	}

	// Block updates for the whole capture-restore-swap-shrink window:
	// an update routed to the donors after the capture would be lost
	// when they shrink. Queries keep flowing — the donors serve the
	// moving range until the swap, the joiner after.
	c.updMu.Lock()
	defer c.updMu.Unlock()

	stream, err := src.SnapshotRange(ctx, lo, hi)
	if err != nil {
		return MigrateResponse{}, fmt.Errorf("cluster: capturing [%d, %d) from %s: %w", lo, hi, src.URL(), err)
	}
	restored, err := joiner.RestoreSnapshot(ctx, stream, lo, hi)
	if err != nil {
		return MigrateResponse{}, fmt.Errorf("cluster: restoring into %s: %w", toURL, err)
	}

	// Swap the routing table: the joiner takes [lo, hi) alone, the
	// donors keep the rest of their range with the full replica set
	// (nothing, when the whole range moved).
	next := make([]route, 0, len(routes)+1)
	next = append(next, routes[:di]...)
	if donor.lo < lo {
		next = append(next, route{lo: donor.lo, hi: lo, replicas: donor.replicas})
	}
	next = append(next, route{lo: lo, hi: hi, replicas: []*node{joiner}})
	if hi < donor.hi {
		next = append(next, route{lo: hi, hi: donor.hi, replicas: donor.replicas})
	}
	next = append(next, routes[di+1:]...)
	joiner.rejoin()
	if err := validateRoutes(next); err != nil {
		return MigrateResponse{}, err
	}
	c.routes.Store(&next)
	joiner.healthy.Store(true)
	// Refresh the joiner's cached readiness right away — its pre-restore
	// payload says cold/unrouted, and /healthz should not wait a probe
	// period to show the warm join.
	if h, err := joiner.Health(ctx); err == nil {
		joiner.last.Store(&h)
	}

	resp := MigrateResponse{
		From: src.URL(), To: toURL, Lo: lo, Hi: hi,
		Rows: restored.Rows, Pieces: restored.Pieces, Pending: restored.Pending,
	}
	// Shrink every donor replica to what it still owns. A failure here
	// is survivable (see RetainFailed) — the routing table already hides
	// the moved range.
	if donor.lo < lo || hi < donor.hi {
		keepLo, keepHi := donor.lo, lo
		if lo == donor.lo {
			keepLo, keepHi = hi, donor.hi
		}
		for _, n := range donor.replicas {
			if _, err := n.Retain(ctx, keepLo, keepHi); err != nil {
				resp.RetainFailed = true
			}
		}
	}
	c.migrations.Add(1)
	resp.ElapsedMS = time.Since(start).Milliseconds()
	return resp, nil
}

// firstServing returns the first replica that is both live (in the read
// set) and probe-healthy — the node to capture a snapshot from. Probe
// health matters here, unlike on the data path: a capture source is a
// choice the coordinator makes up front, not a request it can fail over
// mid-flight.
func firstServing(replicas []*node) *node {
	for _, n := range replicas {
		if n.live() && n.healthy.Load() {
			return n
		}
	}
	return nil
}

// rejoin clears every exclusion flag on a node that is being given a
// fresh range (migration target or new replica): whatever it missed
// before is irrelevant, it was just seeded from a live copy.
func (n *node) rejoin() {
	n.jmu.Lock()
	n.journal = nil
	n.resync.Store(false)
	n.out.Store(false)
	n.jmu.Unlock()
	n.drained.Store(false)
}

// admitNode returns the node for url, creating and registering it if the
// coordinator has not seen it before.
func (c *Coordinator) admitNode(url string) *node {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	for _, n := range c.nodes {
		if n.URL() == url {
			return n
		}
	}
	n := &node{Backend: client.New(url, c.cfg.Client)}
	c.nodes = append(c.nodes, n)
	return n
}

// findNode returns the admitted node for url, or nil.
func (c *Coordinator) findNode(url string) *node {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	for _, n := range c.nodes {
		if n.URL() == url {
			return n
		}
	}
	return nil
}

func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.To == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "need \"to\": the joining node's URL")
		return
	}
	resp, err := c.Migrate(r.Context(), req.To, req.Lo, req.Hi)
	if err != nil {
		status, code := http.StatusBadGateway, "migration_failed"
		if strings.Contains(err.Error(), "migrate:") {
			status, code = http.StatusBadRequest, "bad_request"
		}
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- small wire helpers (the coordinator is not a server.Server, so it
// carries its own copies of the JSON plumbing) ---

const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return false
	}
	return true
}

// rangeUnavailableError reports that a value range currently has no
// replica able to answer: every live replica failed, or none are live.
// It maps to a 503 with code "unavailable_range" and a Retry-After —
// the request is fine, the cluster needs a moment (a kill is being
// failed over, a catch-up is running).
type rangeUnavailableError struct {
	lo, hi int64
	cause  error
}

func (e *rangeUnavailableError) Error() string {
	return fmt.Sprintf("range [%d, %d) unavailable: %v", e.lo, e.hi, e.cause)
}

func (e *rangeUnavailableError) Unwrap() error { return e.cause }

// writeBackendError maps a scatter/update failure: a backend's own API
// error passes through with its status, an unavailable range becomes a
// machine-readable 503 with Retry-After (mirroring the server's 429
// convention — same flat {"error","code"} body, same header), and other
// transport-level trouble becomes a 502, so clients can tell "retry in
// a moment" from "the cluster is broken" from "my request is wrong".
func writeBackendError(w http.ResponseWriter, err error) {
	var unavail *rangeUnavailableError
	if errors.As(err, &unavail) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "unavailable_range", err.Error())
		return
	}
	var apiErr *server.APIError
	if errors.As(err, &apiErr) && apiErr.Status < 500 {
		writeError(w, apiErr.Status, apiErr.Code, err.Error())
		return
	}
	writeError(w, http.StatusBadGateway, "backend_unavailable", err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
