package cluster

// Replication: every route's replicas hold identical copies of its
// range, updates ack against the whole live set, and a replica that
// misses an acked op leaves the read set until catch-up proves it holds
// everything it acked for.
//
// The no-lost-ack argument, in full:
//
//   - An update is acknowledged iff at least one live replica applied
//     it AND every live replica that did not apply it provably did not
//     (connection refused, fast-reject status, open circuit — see
//     client.ProvablyNotApplied). Those misses are journaled on the
//     missing replica, which is marked out of the read set in the same
//     critical section.
//   - An ambiguous failure (timeout mid-request, connection reset) may
//     or may not have reached the replica's index, so neither "journal
//     it" nor "ignore it" is safe — replaying could double-apply, and
//     skipping could lose it. The replica is marked for resync: catch-up
//     discards its state entirely and re-seeds it from a live peer's
//     snapshot, which by construction holds exactly the acked history.
//   - If NO replica acks, the op is not acknowledged and nothing is
//     journaled — the client saw the failure, and journaling would
//     double-apply the op when the client retries. When every failure
//     was provably-not-applied the caller gets a retryable 503.
//   - Catch-up replays the journal (or re-seeds) with updates frozen
//     (updMu write side), so nothing can slip between the last replayed
//     op and the replica rejoining the read set.
//
// Reads never consult an out replica, so the invariant clients observe
// is simple: anything acked is readable, on every replica serving
// reads, immediately.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/snapshot"
)

// journalOp is one acked update a replica provably missed.
type journalOp struct {
	insert bool
	values []int64
}

// maxJournalOps bounds the per-replica journal. Past it, replaying is
// slower than re-seeding anyway; the replica flips to resync and the
// log is dropped.
const maxJournalOps = 4096

// addJournal records an acked op this replica provably missed and takes
// the replica out of the read set, in one critical section — the moment
// a replica's state diverges from the acked history is the moment reads
// stop seeing it.
func (n *node) addJournal(insert bool, values []int64) {
	n.jmu.Lock()
	defer n.jmu.Unlock()
	n.out.Store(true)
	if n.resync.Load() {
		return // a full re-seed supersedes the op log
	}
	if len(n.journal) >= maxJournalOps {
		n.resync.Store(true)
		n.journal = nil
		return
	}
	n.journal = append(n.journal, journalOp{insert: insert, values: append([]int64(nil), values...)})
}

func (n *node) journalLen() int {
	n.jmu.Lock()
	defer n.jmu.Unlock()
	return len(n.journal)
}

// applyReplicated applies one update batch to every replica of rt,
// enforcing the ack rule above. Caller holds updMu.RLock. Returns the
// max pending depth among the replicas that acked.
func (c *Coordinator) applyReplicated(ctx context.Context, rt *route, vals []int64, insert bool) (int, error) {
	var missed []*node  // provably did not apply (incl. already-out replicas)
	var suspect []*node // ambiguous failure: may or may not have applied
	okCount, pending := 0, 0
	var lastErr error
	for _, n := range rt.replicas {
		if n.drained.Load() {
			continue // a drained node never rejoins this route
		}
		if n.out.Load() {
			missed = append(missed, n)
			continue
		}
		var p int
		var err error
		if insert {
			p, err = n.Insert(ctx, vals...)
		} else {
			p, err = n.Delete(ctx, vals...)
		}
		if err == nil {
			okCount++
			if p > pending {
				pending = p
			}
			continue
		}
		lastErr = fmt.Errorf("replica %s: %w", n.URL(), err)
		if client.ProvablyNotApplied(err) {
			missed = append(missed, n)
		} else {
			suspect = append(suspect, n)
		}
	}
	// A suspect replica may hold a half-applied op the acked history
	// doesn't — journal replay can't reconcile that, only a full
	// re-seed can. Out of the read set either way.
	for _, n := range suspect {
		n.resync.Store(true)
		n.out.Store(true)
	}
	if okCount == 0 {
		// Not acknowledged. The provably-missed replicas are consistent
		// with that (they did not apply it), so nothing is journaled —
		// journaling here would double-apply the op when the client
		// retries after the error we are about to return.
		if lastErr == nil {
			lastErr = errors.New("no live replicas")
		}
		if len(suspect) == 0 {
			return 0, &rangeUnavailableError{lo: rt.lo, hi: rt.hi, cause: lastErr}
		}
		return 0, lastErr
	}
	for _, n := range missed {
		n.addJournal(insert, vals)
	}
	return pending, nil
}

// catchUp brings an out replica back into the read set: with updates
// frozen, replay its journal (or re-seed it from a live peer when the
// journal is insufficient), then clear the exclusion. Any failure
// leaves the replica out with resync set, so the next attempt re-seeds.
func (c *Coordinator) catchUp(ctx context.Context, n *node) error {
	defer n.recovering.Store(false)
	c.migMu.Lock()
	defer c.migMu.Unlock()
	if n.drained.Load() || !n.out.Load() {
		return nil // raced with another catch-up, or a drain took the ranges away
	}
	// We are here because the node is believed back (probe passed or an
	// operator asked); drop any breaker state left from the outage so the
	// catch-up traffic itself is not rejected.
	n.Backend.ResetCircuit()
	// Freeze updates: an op acked while we replay would be missed by
	// both the drained journal and the replayed state.
	c.updMu.Lock()
	defer c.updMu.Unlock()
	n.jmu.Lock()
	ops := n.journal
	n.journal = nil
	resync := n.resync.Load()
	n.jmu.Unlock()
	var err error
	if resync {
		err = c.reseed(ctx, n)
	} else if err = replayJournal(ctx, n, ops); err != nil {
		// A partial replay is fine to overwrite wholesale.
		err = c.reseed(ctx, n)
	}
	if err != nil {
		n.resync.Store(true)
		return fmt.Errorf("cluster: catch-up %s: %w", n.URL(), err)
	}
	n.resync.Store(false)
	n.out.Store(false)
	c.catchups.Add(1)
	if h, herr := n.Health(ctx); herr == nil {
		n.last.Store(&h)
		n.healthy.Store(true)
	}
	return nil
}

// replayJournal applies the missed ops in ack order, coalescing
// consecutive same-kind ops into one batch per round trip.
func replayJournal(ctx context.Context, n *node, ops []journalOp) error {
	for i := 0; i < len(ops); {
		insert := ops[i].insert
		var batch []int64
		for ; i < len(ops) && ops[i].insert == insert; i++ {
			batch = append(batch, ops[i].values...)
		}
		var err error
		if insert {
			_, err = n.Insert(ctx, batch...)
		} else {
			_, err = n.Delete(ctx, batch...)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// capturedPart is one range's snapshot stream, captured from a live
// replica, awaiting merge into a whole-node restore.
type capturedPart struct {
	lo, hi int64
	stream []byte
}

// mergeStreams re-tiles several captured range streams into one
// whole-domain manifest (POST /v1/restore replaces a node's entire
// state, so a multi-range node must be restored in one shot). The parts
// are widened to tile the full domain — safe because each stream's
// values and cracks lie strictly within its actual range, and disjoint
// sorted ranges nest in the widened bounds. Returns the stream plus the
// actual (unwidened) served range for the restore envelope.
func mergeStreams(parts []capturedPart) ([]byte, int64, int64, error) {
	if len(parts) == 0 {
		return nil, 0, 0, errors.New("cluster: nothing to merge")
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].lo < parts[j].lo })
	var m snapshot.Manifest
	for i, p := range parts {
		pm, err := snapshot.ReadManifest(bytes.NewReader(p.stream))
		if err != nil {
			return nil, 0, 0, fmt.Errorf("decoding captured [%d, %d): %w", p.lo, p.hi, err)
		}
		st, err := pm.Merged()
		if err != nil {
			return nil, 0, 0, fmt.Errorf("merging captured [%d, %d): %w", p.lo, p.hi, err)
		}
		wlo, whi := minInt64, maxInt64
		if i > 0 {
			wlo = p.lo
		}
		if i < len(parts)-1 {
			whi = parts[i+1].lo
		}
		m.Parts = append(m.Parts, snapshot.ClampedPart(wlo, whi, st))
	}
	var buf bytes.Buffer
	if err := snapshot.WriteManifest(&buf, m); err != nil {
		return nil, 0, 0, err
	}
	return buf.Bytes(), parts[0].lo, parts[len(parts)-1].hi, nil
}

// reseed rebuilds an out replica from scratch: capture each range it
// belongs to from a live, healthy peer, merge the streams, and restore
// them as the node's whole state. Runs under updMu, so the peers'
// snapshots are exactly the acked history.
func (c *Coordinator) reseed(ctx context.Context, n *node) error {
	routes := *c.routes.Load()
	var parts []capturedPart
	for i := range routes {
		rt := &routes[i]
		if !rt.has(n) {
			continue
		}
		var peer *node
		for _, p := range rt.replicas {
			if p != n && p.live() && p.healthy.Load() {
				peer = p
				break
			}
		}
		if peer == nil {
			return fmt.Errorf("no live peer holds [%d, %d)", rt.lo, rt.hi)
		}
		stream, err := peer.SnapshotRange(ctx, rt.lo, rt.hi)
		if err != nil {
			return fmt.Errorf("capturing [%d, %d) from %s: %w", rt.lo, rt.hi, peer.URL(), err)
		}
		parts = append(parts, capturedPart{lo: rt.lo, hi: rt.hi, stream: stream})
	}
	if len(parts) == 0 {
		return nil // the node no longer belongs to any route; nothing to hold
	}
	stream, lo, hi, err := mergeStreams(parts)
	if err != nil {
		return err
	}
	if _, err := n.RestoreSnapshot(ctx, stream, lo, hi); err != nil {
		return fmt.Errorf("restoring into %s: %w", n.URL(), err)
	}
	return nil
}

// Recover synchronously catches up the out replica at backendURL —
// journal replay or re-seed, then rejoin the read set. The health loop
// does this automatically when the node answers probes again; Recover
// is the operator's "now, and tell me if it worked" handle.
func (c *Coordinator) Recover(ctx context.Context, backendURL string) error {
	n := c.findNode(backendURL)
	if n == nil {
		return fmt.Errorf("cluster: unknown backend %s", backendURL)
	}
	if n.drained.Load() {
		return fmt.Errorf("cluster: %s is drained; re-admit it with /v1/replicate", backendURL)
	}
	if !n.out.Load() {
		return nil
	}
	return c.catchUp(ctx, n)
}

// ReplicateRequest is the body of POST /v1/replicate: make the fresh
// node at To an additional replica of the existing route [Lo, Hi).
type ReplicateRequest struct {
	To string `json:"to"`
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
}

// ReplicateResponse reports a completed replica bootstrap.
type ReplicateResponse struct {
	To string `json:"to"`
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	// Rows/Pieces/Pending describe the restored copy — non-zero Pieces
	// means the new replica starts warm with the source's refinement.
	Rows      int   `json:"rows"`
	Pieces    int   `json:"pieces"`
	Pending   int   `json:"pending"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// AddReplica bootstraps the node at toURL as an additional replica of
// the route exactly spanning [lo, hi): the migration protocol minus the
// shrink — capture from a live replica, restore into the joiner, and
// append it to the replica set. Restore replaces the joiner's whole
// state, so the joiner must not already serve other ranges.
func (c *Coordinator) AddReplica(ctx context.Context, toURL string, lo, hi int64) (ReplicateResponse, error) {
	c.migMu.Lock()
	defer c.migMu.Unlock()
	start := time.Now()
	routes := *c.routes.Load()
	ri := -1
	for i := range routes {
		if routes[i].lo == lo && routes[i].hi == hi {
			ri = i
			break
		}
	}
	if ri < 0 {
		return ReplicateResponse{}, fmt.Errorf("cluster: replicate: no route is exactly [%d, %d); replicate whole ranges", lo, hi)
	}
	joiner := c.admitNode(toURL)
	for i := range routes {
		if routes[i].has(joiner) {
			return ReplicateResponse{}, fmt.Errorf("cluster: replicate: %s already serves [%d, %d); use a fresh node", toURL, routes[i].lo, routes[i].hi)
		}
	}
	if _, err := probeUntilReady(ctx, joiner); err != nil {
		return ReplicateResponse{}, fmt.Errorf("cluster: joiner %s: %w", toURL, err)
	}
	src := firstServing(routes[ri].replicas)
	if src == nil {
		return ReplicateResponse{}, fmt.Errorf("cluster: replicate: no live replica of [%d, %d) to capture from", lo, hi)
	}

	// Freeze updates across capture+restore so the new replica's state
	// is exactly the acked history at join time.
	c.updMu.Lock()
	defer c.updMu.Unlock()

	stream, err := src.SnapshotRange(ctx, lo, hi)
	if err != nil {
		return ReplicateResponse{}, fmt.Errorf("cluster: capturing [%d, %d) from %s: %w", lo, hi, src.URL(), err)
	}
	restored, err := joiner.RestoreSnapshot(ctx, stream, lo, hi)
	if err != nil {
		return ReplicateResponse{}, fmt.Errorf("cluster: restoring into %s: %w", toURL, err)
	}

	next := append([]route(nil), routes...)
	next[ri].replicas = append(append([]*node(nil), routes[ri].replicas...), joiner)
	joiner.rejoin()
	if err := validateRoutes(next); err != nil {
		return ReplicateResponse{}, err
	}
	c.routes.Store(&next)
	joiner.healthy.Store(true)
	if h, err := joiner.Health(ctx); err == nil {
		joiner.last.Store(&h)
	}
	c.replications.Add(1)
	return ReplicateResponse{
		To: toURL, Lo: lo, Hi: hi,
		Rows: restored.Rows, Pieces: restored.Pieces, Pending: restored.Pending,
		ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

func (c *Coordinator) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req ReplicateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.To == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "need \"to\": the joining node's URL")
		return
	}
	resp, err := c.AddReplica(r.Context(), req.To, req.Lo, req.Hi)
	if err != nil {
		status, code := http.StatusBadGateway, "replication_failed"
		if strings.Contains(err.Error(), "replicate:") {
			status, code = http.StatusBadRequest, "bad_request"
		}
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleRecover(w http.ResponseWriter, r *http.Request) {
	backend, ok := backendParam(w, r)
	if !ok {
		return
	}
	if err := c.Recover(r.Context(), backend); err != nil {
		writeError(w, http.StatusBadGateway, "recovery_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Backend string `json:"backend"`
		Status  string `json:"status"`
	}{Backend: backend, Status: "ok"})
}

// backendParam extracts the target backend URL from ?backend= or a
// {"backend": ...} body.
func backendParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	if b := r.URL.Query().Get("backend"); b != "" {
		return b, true
	}
	var req struct {
		Backend string `json:"backend"`
	}
	if !decodeBody(w, r, &req) {
		return "", false
	}
	if req.Backend == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "need ?backend= or {\"backend\": ...}")
		return "", false
	}
	return req.Backend, true
}
