package cluster

import (
	"fmt"
	"net"
	"net/http"
	"time"

	crackdb "repro"
	"repro/internal/server"
)

// LocalNodeConfig describes one in-process backend serving a value slice
// of the cluster dataset MakeData(N, Seed).
type LocalNodeConfig struct {
	// N is the cluster-wide row count; the node keeps the values of
	// MakeData(N, Seed) falling in [Lo, Hi).
	N    int64
	Seed uint64
	// Lo, Hi is the owned value range. Lo == Hi starts an empty node that
	// owns nothing — a joiner waiting for a migration.
	Lo, Hi    int64
	Algorithm string
	// Mode is the DB concurrency mode (default Shared — the node serves
	// concurrent HTTP traffic).
	Mode      crackdb.Concurrency
	AuthToken string
	Options   []crackdb.Option
}

// LocalNode is an in-process crackserver backend on a loopback port,
// used by crackbench -cluster and the cluster tests. It is a real HTTP
// server speaking the full v1 API — the coordinator cannot tell it from
// an out-of-process node.
type LocalNode struct {
	URL string
	Srv *server.Server

	hs *http.Server
	ln net.Listener
}

// StartLocalNode boots a backend per cfg on 127.0.0.1:0 and returns
// once it is serving.
func StartLocalNode(cfg LocalNodeConfig) (*LocalNode, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = crackdb.DD1R
	}
	if cfg.Mode == crackdb.Single {
		cfg.Mode = crackdb.Shared
	}
	var values []int64
	if cfg.Lo < cfg.Hi {
		for _, v := range crackdb.MakeData(cfg.N, cfg.Seed) {
			if v >= cfg.Lo && v < cfg.Hi {
				values = append(values, v)
			}
		}
	}
	opts := append([]crackdb.Option{crackdb.WithConcurrency(cfg.Mode)}, cfg.Options...)
	db, err := crackdb.Open(values, cfg.Algorithm, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: local node [%d, %d): %w", cfg.Lo, cfg.Hi, err)
	}
	srv := server.New(db, server.Config{
		Info: server.Info{
			Rows:      int64(len(values)),
			Algorithm: cfg.Algorithm,
			Seed:      cfg.Seed,
			// One slice is never the full permutation; the coordinator
			// re-derives the cluster-wide flag from the slice layout.
			Permutation: false,
		},
		AuthToken: cfg.AuthToken,
		ShardLo:   cfg.Lo,
		ShardHi:   cfg.Hi,
		Reopen: func(snap crackdb.DBSnapshot) (*crackdb.DB, error) {
			return crackdb.OpenSnapshot(snap, cfg.Algorithm, opts...)
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		return nil, err
	}
	n := &LocalNode{
		URL: "http://" + ln.Addr().String(),
		Srv: srv,
		hs:  &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = n.hs.Serve(ln) }()
	return n, nil
}

// Close shuts the node's listener down immediately (in-flight requests
// are abandoned — this is a test/bench harness, not a graceful drain).
func (n *LocalNode) Close() { _ = n.hs.Close() }
