// Package client is the cluster coordinator's resilient view of one
// crackserver backend: the plain wire client (internal/server.Client)
// wrapped with per-attempt timeouts, bounded retries with exponential
// backoff, hedged reads, and a circuit breaker whose state the
// coordinator surfaces in /debug/metrics.
//
// The retry policy is deliberately asymmetric. Reads are idempotent —
// answering a range query twice refines the index twice but returns the
// same tuples — so they retry on any transport error or 5xx/429. Updates
// are not: a retried insert that actually landed the first time would
// put a duplicate tuple in the column and silently break the oracle. So
// updates retry only on errors where the request provably never reached
// the index: connection refusals and the server's own fast-reject
// statuses (429 over-capacity, 503 closed), both sent before any state
// changed.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"

	"repro/internal/server"
)

// Config is the per-backend resilience policy.
type Config struct {
	// Timeout bounds each attempt (default 5s).
	Timeout time.Duration
	// Retries is the number of re-attempts after the first try for
	// idempotent requests (default 2; updates use their own narrow
	// policy regardless).
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (default 25ms).
	Backoff time.Duration
	// HedgeDelay, when > 0, hedges an in-flight read after this delay and
	// takes whichever response lands first. Through Backend.Query the
	// hedge re-asks the same backend (a fresh request can overtake one
	// stuck behind a reorganization drain); through QueryAcross — the
	// replicated read path — the hedge goes to the next replica instead,
	// which turns the tail-tolerance trick into fault tolerance.
	HedgeDelay time.Duration
	// FailThreshold is the number of consecutive failures that opens the
	// circuit (default 3).
	FailThreshold int
	// Cooldown is how long an open circuit rejects calls before letting a
	// probe through (default 2s).
	Cooldown time.Duration
	// Token is the bearer token for backends started with -auth-token.
	Token string
	// HTTPClient overrides the transport (TLS config for self-signed
	// certs); nil uses http.DefaultClient.
	HTTPClient *http.Client
}

func (cfg Config) withDefaults() Config {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	return cfg
}

// ErrCircuitOpen is returned without touching the network while a
// backend's circuit is open (inside the cooldown window).
var ErrCircuitOpen = errors.New("cluster: backend circuit open")

// circuit states.
const (
	circuitClosed int32 = iota
	circuitOpen
	circuitHalfOpen
)

// Backend is one crackserver endpoint behind the resilience policy. Safe
// for concurrent use.
type Backend struct {
	url string
	api *server.Client
	cfg Config

	// mu guards the circuit state machine.
	mu       sync.Mutex
	state    int32
	fails    int
	openedAt time.Time

	// counters for /debug/metrics (guarded by mu too; they move on the
	// same transitions).
	retries int64
	hedges  int64
	trips   int64
}

// New builds a Backend for the crackserver at url.
func New(url string, cfg Config) *Backend {
	cfg = cfg.withDefaults()
	var opts []server.ClientOption
	if cfg.Token != "" {
		opts = append(opts, server.WithToken(cfg.Token))
	}
	return &Backend{
		url: url,
		api: server.NewClient(url, cfg.HTTPClient, opts...),
		cfg: cfg,
	}
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// CircuitState reports the circuit for metrics: "closed", "open" or
// "half-open", plus the consecutive-failure count and how often the
// breaker tripped.
func (b *Backend) CircuitState() (state string, consecutiveFails int, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case circuitOpen:
		state = "open"
	case circuitHalfOpen:
		state = "half-open"
	default:
		state = "closed"
	}
	return state, b.fails, b.trips
}

// ResetCircuit force-closes the breaker. The coordinator calls this
// when it has out-of-band evidence the backend is back — an operator
// recover request or a passed health probe — so catch-up traffic is not
// rejected by a cooldown left over from the outage it is repairing.
func (b *Backend) ResetCircuit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = circuitClosed
	b.fails = 0
}

// Counters reports the retry and hedge totals for metrics.
func (b *Backend) Counters() (retries, hedges int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retries, b.hedges
}

// allow gates an attempt on the circuit: open circuits reject until the
// cooldown elapses, then let probes through half-open.
func (b *Backend) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == circuitOpen {
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return fmt.Errorf("%w (%s)", ErrCircuitOpen, b.url)
		}
		b.state = circuitHalfOpen
	}
	return nil
}

// record feeds an attempt's outcome into the circuit. Only backend-health
// failures count: transport errors and 5xx. Client-side errors (4xx,
// canceled contexts) say nothing about the backend.
func (b *Backend) record(err error) {
	healthy := err == nil || !countsAsFailure(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if healthy {
		b.state = circuitClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == circuitHalfOpen || b.fails >= b.cfg.FailThreshold {
		if b.state != circuitOpen {
			b.trips++
		}
		b.state = circuitOpen
		b.openedAt = time.Now()
	}
}

// countsAsFailure classifies an error as evidence of backend trouble.
func countsAsFailure(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500
	}
	// 429 is load shedding, not ill health; everything else that is not a
	// caller-side cancellation is transport-level trouble.
	return !errors.Is(err, context.Canceled)
}

// retriableRead reports whether a read is worth re-attempting.
func retriableRead(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.Status == http.StatusTooManyRequests
	}
	return !errors.Is(err, context.Canceled)
}

// ProvablyNotApplied reports whether a failed update provably never
// reached the backend's index: connection refusals, the fast-reject
// statuses (429, 503) sent before any state changed, and an open
// circuit. The coordinator's replication layer keys its journal on this
// — an op that provably missed a replica can be queued and replayed
// later without double-apply risk, while an ambiguous failure forces a
// full re-seed of that replica instead.
func ProvablyNotApplied(err error) bool { return retriableUpdate(err) }

// retriableUpdate reports whether an update provably never applied, so a
// retry cannot double-apply it.
func retriableUpdate(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusTooManyRequests ||
			apiErr.Status == http.StatusServiceUnavailable
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	return errors.Is(err, ErrCircuitOpen)
}

// attempt runs one call under the per-attempt timeout and feeds the
// circuit.
func attempt[T any](ctx context.Context, b *Backend, call func(context.Context) (T, error)) (T, error) {
	var zero T
	if err := b.allow(); err != nil {
		return zero, err
	}
	actx, cancel := context.WithTimeout(ctx, b.cfg.Timeout)
	defer cancel()
	out, err := call(actx)
	b.record(err)
	if err != nil {
		return zero, err
	}
	return out, nil
}

// retrying runs call with the read policy: up to cfg.Retries
// re-attempts, exponential backoff between them.
func retrying[T any](ctx context.Context, b *Backend, retriable func(error) bool, call func(context.Context) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for try := 0; try <= b.cfg.Retries; try++ {
		if try > 0 {
			b.mu.Lock()
			b.retries++
			b.mu.Unlock()
			select {
			case <-ctx.Done():
				return zero, ctx.Err()
			case <-time.After(b.cfg.Backoff << (try - 1)):
			}
		}
		out, err := attempt(ctx, b, call)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !retriable(err) {
			break
		}
	}
	return zero, lastErr
}

// hedged wraps a read with the hedge policy: when the first attempt has
// not answered within HedgeDelay, an identical second request races it
// and the first response wins.
func hedged[T any](ctx context.Context, b *Backend, call func(context.Context) (T, error)) (T, error) {
	if b.cfg.HedgeDelay <= 0 {
		return retrying(ctx, b, retriableRead, call)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		out T
		err error
	}
	results := make(chan outcome, 2)
	launch := func() {
		out, err := retrying(hctx, b, retriableRead, call)
		results <- outcome{out, err}
	}
	go launch()
	timer := time.NewTimer(b.cfg.HedgeDelay)
	defer timer.Stop()
	launched := 1
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				b.mu.Lock()
				b.hedges++
				b.mu.Unlock()
				go launch()
				launched++
			}
		case res := <-results:
			// First success wins; a failure only settles the call once no
			// sibling is still running.
			if res.err == nil || launched == 1 {
				return res.out, res.err
			}
			launched--
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// Query posts a query request, with retries and (when configured) a
// hedge.
func (b *Backend) Query(ctx context.Context, req server.QueryRequest) (server.QueryResponse, error) {
	return hedged(ctx, b, func(ctx context.Context) (server.QueryResponse, error) {
		return b.api.Query(ctx, req)
	})
}

// Insert queues values on the backend, retrying only when the request
// provably never applied.
func (b *Backend) Insert(ctx context.Context, values ...int64) (pending int, err error) {
	return retrying(ctx, b, retriableUpdate, func(ctx context.Context) (int, error) {
		return b.api.Insert(ctx, values...)
	})
}

// Delete queues value removals, with the update retry policy.
func (b *Backend) Delete(ctx context.Context, values ...int64) (pending int, err error) {
	return retrying(ctx, b, retriableUpdate, func(ctx context.Context) (int, error) {
		return b.api.Delete(ctx, values...)
	})
}

// Health fetches the backend's readiness payload (no retries: the health
// loop is itself the retry).
func (b *Backend) Health(ctx context.Context) (server.HealthResponse, error) {
	return attempt(ctx, b, func(ctx context.Context) (server.HealthResponse, error) {
		return b.api.Health(ctx)
	})
}

// Stats fetches the backend's /v1/stats, with read retries.
func (b *Backend) Stats(ctx context.Context) (server.StatsResponse, error) {
	return retrying(ctx, b, retriableRead, func(ctx context.Context) (server.StatsResponse, error) {
		return b.api.Stats(ctx)
	})
}

// SnapshotRange pulls the manifest stream of [lo, hi) from the backend —
// the donor side of a migration. One attempt, under the read timeout
// scaled up for the payload.
func (b *Backend) SnapshotRange(ctx context.Context, lo, hi int64) ([]byte, error) {
	if err := b.allow(); err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, 4*b.cfg.Timeout)
	defer cancel()
	stream, err := b.api.SnapshotRange(actx, lo, hi)
	b.record(err)
	return stream, err
}

// RestoreSnapshot feeds a manifest stream to the backend's POST
// /v1/restore, declaring [lo, hi) as the range the node owns afterwards
// — the joiner side of a migration. One attempt (a replayed restore is
// harmless but a timeout here should surface, not loop).
func (b *Backend) RestoreSnapshot(ctx context.Context, stream []byte, lo, hi int64) (server.RestoreResponse, error) {
	if err := b.allow(); err != nil {
		return server.RestoreResponse{}, err
	}
	actx, cancel := context.WithTimeout(ctx, 4*b.cfg.Timeout)
	defer cancel()
	resp, err := b.api.RestoreSnapshot(actx, stream, lo, hi)
	b.record(err)
	return resp, err
}

// QueryAcross answers one read against a replica set: it asks bs[0] (the
// preferred replica) first, points the hedge at the *next* replica —
// after HedgeDelay without an answer a second copy of the request races
// on the other node — and fails over immediately when an attempt errors.
// The first success wins; the call fails only when every replica has
// failed. With one backend it degrades to Backend.Query (same-node
// hedging), so an unreplicated route behaves exactly as before.
func QueryAcross(ctx context.Context, bs []*Backend, req server.QueryRequest) (server.QueryResponse, error) {
	switch len(bs) {
	case 0:
		return server.QueryResponse{}, errors.New("cluster: no replicas to query")
	case 1:
		return bs[0].Query(ctx, req)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp server.QueryResponse
		err  error
	}
	results := make(chan outcome, len(bs))
	next := 0
	launch := func() {
		b := bs[next]
		next++
		go func() {
			// Per-attempt retries still apply, but no same-node hedge: the
			// sibling replica *is* the hedge here.
			resp, err := retrying(hctx, b, retriableRead, func(ctx context.Context) (server.QueryResponse, error) {
				return b.api.Query(ctx, req)
			})
			results <- outcome{resp, err}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	var timer *time.Timer
	if delay := bs[0].cfg.HedgeDelay; delay > 0 {
		timer = time.NewTimer(delay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	inflight := 1
	var lastErr error
	for {
		select {
		case <-hedgeC:
			if next < len(bs) {
				// Count the hedge against the replica that was too slow.
				bs[0].mu.Lock()
				bs[0].hedges++
				bs[0].mu.Unlock()
				launch()
				inflight++
				timer.Reset(bs[0].cfg.HedgeDelay)
			}
		case res := <-results:
			inflight--
			if res.err == nil {
				return res.resp, nil
			}
			lastErr = res.err
			if next < len(bs) {
				// Immediate failover: a dead replica costs one failed attempt,
				// not the request.
				launch()
				inflight++
			} else if inflight == 0 {
				return server.QueryResponse{}, lastErr
			}
		case <-ctx.Done():
			return server.QueryResponse{}, ctx.Err()
		}
	}
}

// Drain flips the backend's own drain flag (POST /v1/drain) so its
// /healthz reports draining — best-effort bookkeeping at the end of a
// coordinator drain. One attempt; the routing table, not this flag, is
// what stops traffic.
func (b *Backend) Drain(ctx context.Context) (server.DrainResponse, error) {
	return attempt(ctx, b, func(ctx context.Context) (server.DrainResponse, error) {
		return b.api.Drain(ctx)
	})
}

// Retain asks the backend to shrink to [lo, hi) — the donor's final
// migration step.
func (b *Backend) Retain(ctx context.Context, lo, hi int64) (server.RestoreResponse, error) {
	if err := b.allow(); err != nil {
		return server.RestoreResponse{}, err
	}
	actx, cancel := context.WithTimeout(ctx, 4*b.cfg.Timeout)
	defer cancel()
	resp, err := b.api.Retain(actx, lo, hi)
	b.record(err)
	return resp, err
}
