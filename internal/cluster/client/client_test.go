package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	crackdb "repro"
	"repro/internal/server"
)

// fakeBackend serves a minimal v1 surface through the given handler
// override; unmatched paths 404.
func fakeBackend(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts
}

func queryOK(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode(server.QueryResponse{
		Results: []server.QueryResult{{Count: 1, Sum: 1}},
	})
}

func TestReadRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
			return
		}
		queryOK(w)
	})
	b := New(ts.URL, Config{Retries: 2, Backoff: time.Millisecond})
	resp, err := b.Query(context.Background(), server.QueryRequest{})
	if err != nil || len(resp.Results) != 1 {
		t.Fatalf("query after retries: %+v, %v", resp, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
	retries, _ := b.Counters()
	if retries != 2 {
		t.Fatalf("retries counter %d, want 2", retries)
	}
}

// TestUpdateRetryAsymmetry: a 500 might mean the insert landed, so
// updates must NOT retry it; a 503 is sent before any state changes, so
// they may.
func TestUpdateRetryAsymmetry(t *testing.T) {
	var calls atomic.Int32
	ts := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
	})
	b := New(ts.URL, Config{Retries: 3, Backoff: time.Millisecond})
	if _, err := b.Insert(context.Background(), 1); err == nil {
		t.Fatal("insert against a 500 backend succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("500 insert was attempted %d times, want exactly 1 (it may have applied)", got)
	}

	calls.Store(0)
	ts2 := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"draining","code":"unavailable"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(server.UpdateResponse{Pending: 1})
	})
	b2 := New(ts2.URL, Config{Retries: 3, Backoff: time.Millisecond})
	if _, err := b2.Insert(context.Background(), 1); err != nil {
		t.Fatalf("insert after a provably-unapplied 503: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("503-then-ok insert took %d calls, want 2", got)
	}
}

func TestCircuitBreaker(t *testing.T) {
	var calls atomic.Int32
	ts := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
	})
	b := New(ts.URL, Config{
		Retries: -1, Backoff: time.Millisecond,
		FailThreshold: 3, Cooldown: 50 * time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := b.Query(ctx, server.QueryRequest{}); err == nil {
			t.Fatal("query against 500 backend succeeded")
		}
	}
	state, fails, trips := b.CircuitState()
	if state != "open" || fails < 3 || trips != 1 {
		t.Fatalf("after threshold: state=%s fails=%d trips=%d", state, fails, trips)
	}
	// While open, calls short-circuit without touching the network.
	before := calls.Load()
	if _, err := b.Query(ctx, server.QueryRequest{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit returned %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open circuit still hit the network")
	}
	// After the cooldown a probe goes through; success closes the
	// circuit.
	time.Sleep(60 * time.Millisecond)
	ok := func(w http.ResponseWriter, r *http.Request) { queryOK(w) }
	ts.Config.Handler = http.HandlerFunc(ok)
	if _, err := b.Query(ctx, server.QueryRequest{}); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if state, _, _ := b.CircuitState(); state != "closed" {
		t.Fatalf("after successful probe: state=%s, want closed", state)
	}
}

func TestHedgedRead(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	ts := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first request stalls until the test ends
		}
		queryOK(w)
	})
	t.Cleanup(func() { close(release) })
	b := New(ts.URL, Config{Retries: -1, HedgeDelay: 10 * time.Millisecond, Timeout: 5 * time.Second})
	start := time.Now()
	resp, err := b.Query(context.Background(), server.QueryRequest{})
	if err != nil || len(resp.Results) != 1 {
		t.Fatalf("hedged query: %+v, %v", resp, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not overtake the stalled request (%v)", elapsed)
	}
	_, hedges := b.Counters()
	if hedges != 1 {
		t.Fatalf("hedges counter %d, want 1", hedges)
	}
}

// TestTLSAndBearerEndToEnd drives a real crackdb-backed server over
// HTTPS with bearer auth through the resilient client — the transport
// crackserver -tls-cert/-tls-key -auth-token serves.
func TestTLSAndBearerEndToEnd(t *testing.T) {
	const rows = 5_000
	db, err := crackdb.Open(crackdb.MakeData(rows, 1), crackdb.DD1R,
		crackdb.WithConcurrency(crackdb.Shared))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{
		Info:      server.Info{Rows: rows, Algorithm: crackdb.DD1R, Permutation: true},
		AuthToken: "s3cret",
	})
	ts := httptest.NewTLSServer(srv.Handler())
	t.Cleanup(ts.Close)

	b := New(ts.URL, Config{Token: "s3cret", HTTPClient: ts.Client()})
	resp, err := b.Query(context.Background(), server.QueryRequest{
		QueryItem: server.QueryItem{Lo: 100, Hi: 200}, Aggregate: true,
	})
	if err != nil {
		t.Fatalf("TLS query: %v", err)
	}
	if got := resp.Results[0]; got.Count != 100 {
		t.Fatalf("TLS query count %d, want 100", got.Count)
	}
	// Health is exempt from auth even over TLS.
	noToken := New(ts.URL, Config{HTTPClient: ts.Client(), Retries: -1})
	if _, err := noToken.Health(context.Background()); err != nil {
		t.Fatalf("unauthenticated healthz over TLS: %v", err)
	}
	// But the data plane is not.
	_, err = noToken.Query(context.Background(), server.QueryRequest{
		QueryItem: server.QueryItem{Lo: 0, Hi: 1},
	})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated query over TLS: %v, want 401", err)
	}
}
