package cluster

// The chaos suite: replication's promises checked under injected
// faults. faultproxy sits between the coordinator and each backend, so
// backends can be killed, revived and made flaky while the data
// underneath stays oracle-checkable.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/cluster/faultproxy"
	"repro/internal/xrand"
)

// startReplicatedCluster boots ranges×replicas local nodes — replica
// sets share a slice of [0, testRows) — each behind a faultproxy, plus
// a coordinator that requires the full replica count. proxies[r][k] is
// replica k of range r.
func startReplicatedCluster(t *testing.T, ranges, replicas int, ccfg Config) (*Coordinator, [][]*faultproxy.Proxy) {
	t.Helper()
	ccfg.Replicas = replicas
	proxies := make([][]*faultproxy.Proxy, ranges)
	var urls []string
	for r := 0; r < ranges; r++ {
		lo := int64(testRows) * int64(r) / int64(ranges)
		hi := int64(testRows) * int64(r+1) / int64(ranges)
		for k := 0; k < replicas; k++ {
			nd, err := StartLocalNode(LocalNodeConfig{
				N: testRows, Seed: 7, Lo: lo, Hi: hi, Algorithm: "dd1r",
			})
			if err != nil {
				t.Fatalf("range %d replica %d: %v", r, k, err)
			}
			t.Cleanup(nd.Close)
			p, err := faultproxy.New(nd.URL, uint64(r*10+k+1))
			if err != nil {
				t.Fatalf("faultproxy for range %d replica %d: %v", r, k, err)
			}
			t.Cleanup(p.Close)
			proxies[r] = append(proxies[r], p)
			urls = append(urls, p.URL())
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord, err := New(ctx, urls, ccfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	return coord, proxies
}

// postJSON sends one request through the handler without involving t,
// so storm workers can call it from goroutines.
func postJSON(h http.Handler, method, path, body string) (int, []byte) {
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// aggQuery scatter-gathers one aggregate range query, returning its
// (count, sum).
func aggQuery(h http.Handler, lo, hi int64) (int64, int64, error) {
	code, body := postJSON(h, "POST", "/v1/query",
		fmt.Sprintf(`{"lo":%d,"hi":%d,"aggregate":true}`, lo, hi))
	if code != http.StatusOK {
		return 0, 0, fmt.Errorf("query [%d, %d): status %d: %s", lo, hi, code, body)
	}
	var resp struct {
		Results []struct {
			Count int   `json:"count"`
			Sum   int64 `json:"sum"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != 1 {
		return 0, 0, fmt.Errorf("query [%d, %d): bad body %s", lo, hi, body)
	}
	return int64(resp.Results[0].Count), resp.Results[0].Sum, nil
}

// TestReplicatedClusterSurvivesBackendKill is the headline chaos
// property: with 2 replicas per range, killing a backend in the middle
// of a mixed query/insert/delete storm costs nothing visible — zero
// failed requests, every answer oracle-correct, and after the killed
// node is revived, caught up and its *sibling* killed, every
// acknowledged update is still readable from the recovered copy alone
// (nothing lost, nothing doubled, no stale clamp leaks).
func TestReplicatedClusterSurvivesBackendKill(t *testing.T) {
	coord, proxies := startReplicatedCluster(t, 2, 2, Config{
		HealthInterval: 50 * time.Millisecond,
		Client: client.Config{
			Timeout: 2 * time.Second, Retries: 1, Backoff: 5 * time.Millisecond,
			HedgeDelay: 25 * time.Millisecond,
		},
	})
	h := coord.Handler()

	const (
		queryWorkers  = 3
		queriesPer    = 120
		insertWorkers = 2
		insertsPer    = 240
	)
	var (
		mu       sync.Mutex
		failures []string
		wantCnt  int64
		wantSum  int64
	)
	fail := func(s string) {
		mu.Lock()
		if len(failures) < 8 {
			failures = append(failures, s)
		}
		mu.Unlock()
	}
	var ackedInserts atomic.Int64
	var wg sync.WaitGroup

	// Query workers: random aggregate ranges inside [0, testRows),
	// checked against the closed-form oracle on every answer. Inserts
	// only add values >= testRows, so the base oracle holds throughout.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(1000 + w))
			for i := 0; i < queriesPer; i++ {
				a := rng.Int63n(testRows)
				b := a + 1 + rng.Int63n(testRows-a)
				cnt, sum, err := aggQuery(h, a, b)
				if err != nil {
					fail(err.Error())
					continue
				}
				wc, ws := oracle(a, b, testRows)
				if cnt != wc || sum != ws {
					fail(fmt.Sprintf("query [%d, %d): got (%d, %d), oracle (%d, %d)", a, b, cnt, sum, wc, ws))
				}
			}
		}(w)
	}
	// Insert workers: unique values >= testRows (they all land in the
	// top range, whose replica we kill), every 4th acked value deleted
	// again. Each worker tracks exactly what it was acked for.
	for w := 0; w < insertWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var cnt, sum int64
			for i := 0; i < insertsPer; i++ {
				v := int64(testRows) + int64(w)*1_000_000 + int64(i)
				code, body := postJSON(h, "POST", "/v1/insert", fmt.Sprintf(`{"values":[%d]}`, v))
				if code != http.StatusOK {
					fail(fmt.Sprintf("insert %d: status %d: %s", v, code, body))
					continue
				}
				ackedInserts.Add(1)
				cnt++
				sum += v
				if i%4 == 3 {
					code, body := postJSON(h, "POST", "/v1/delete", fmt.Sprintf(`{"values":[%d]}`, v))
					if code != http.StatusOK {
						fail(fmt.Sprintf("delete %d: status %d: %s", v, code, body))
						continue
					}
					cnt--
					sum -= v
				}
			}
			mu.Lock()
			wantCnt += cnt
			wantSum += sum
			mu.Unlock()
		}(w)
	}
	// The controller: once the storm is demonstrably mid-flight, kill
	// one replica of the top range. Everything after this point runs
	// against a cluster with a dead backend.
	killed := proxies[1][1]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ackedInserts.Load() < 60 {
			time.Sleep(2 * time.Millisecond)
		}
		killed.Kill()
	}()
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("storm saw %d failed/wrong requests despite replication; first: %v", len(failures), failures)
	}

	verify := func(stage string) {
		t.Helper()
		cnt, sum, err := aggQuery(h, testRows, maxInt64)
		if err != nil {
			t.Fatalf("%s: readback: %v", stage, err)
		}
		if cnt != wantCnt || sum != wantSum {
			t.Fatalf("%s: acked updates (count %d, sum %d) read back as (count %d, sum %d)",
				stage, wantCnt, wantSum, cnt, sum)
		}
		queryRange(t, h, 0, testRows)
	}
	verify("after kill")

	// Revive the killed replica and catch it up — journal replay or
	// re-seed, the coordinator decides — then kill its sibling. Every
	// acked update must now be served by the recovered copy alone: the
	// sharpest possible "no lost ack" check.
	if err := killed.Revive(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Recover(ctx, killed.URL()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	proxies[1][0].Kill()
	verify("after recovery and sibling kill")
}

// TestDrainClusterEquivalence: draining nodes out from under a live
// validated workload is invisible — zero failed requests, the drained
// node ends with no routed ranges, and when the drain has to move data
// (last copy), the handoff is warm.
func TestDrainClusterEquivalence(t *testing.T) {
	coord, _ := startReplicatedCluster(t, 3, 2, Config{
		HealthInterval: 50 * time.Millisecond,
		Client: client.Config{
			Timeout: 2 * time.Second, Retries: 1, Backoff: 5 * time.Millisecond,
			HedgeDelay: 25 * time.Millisecond,
		},
	})
	h := coord.Handler()

	var (
		mu       sync.Mutex
		failures []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(500 + w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := rng.Int63n(testRows)
				b := a + 1 + rng.Int63n(testRows-a)
				cnt, sum, err := aggQuery(h, a, b)
				wc, ws := oracle(a, b, testRows)
				mu.Lock()
				if err != nil && len(failures) < 8 {
					failures = append(failures, err.Error())
				} else if err == nil && (cnt != wc || sum != ws) && len(failures) < 8 {
					failures = append(failures, fmt.Sprintf("query [%d, %d): got (%d, %d), want (%d, %d)", a, b, cnt, sum, wc, ws))
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond) // let the workload warm (and crack) the nodes

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	routes := *coord.routes.Load()
	first := routes[1].replicas[1] // a middle-range replica with a live sibling
	resp, err := coord.Drain(ctx, first.URL())
	if err != nil {
		t.Fatalf("drain (handoff): %v", err)
	}
	if len(resp.Moves) != 1 || resp.Moves[0].Mode != "handoff" {
		t.Fatalf("drain of a replicated node: want one handoff move, got %+v", resp.Moves)
	}

	// Draining the surviving sibling forces a real data move — and it
	// must land warm, carrying the refinement the workload earned.
	second := routes[1].replicas[0]
	resp, err = coord.Drain(ctx, second.URL())
	if err != nil {
		t.Fatalf("drain (migrate): %v", err)
	}
	if len(resp.Moves) != 1 || resp.Moves[0].Mode != "migrate" {
		t.Fatalf("drain of a sole copy: want one migrate move, got %+v", resp.Moves)
	}
	if resp.Moves[0].Pieces < 2 {
		t.Fatalf("migrated range restored cold (pieces = %d); drain must hand off warm", resp.Moves[0].Pieces)
	}

	close(stop)
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("workload saw failures across two drains; first: %v", failures)
	}

	// Both drained nodes: zero routed ranges, flagged as draining.
	var ch ClusterHealth
	if code := do(t, h, "GET", "/healthz", "", &ch); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	for _, d := range []string{first.URL(), second.URL()} {
		found := false
		for _, b := range ch.Backends {
			if b.URL == d {
				found = true
				if b.Routed {
					t.Fatalf("drained node %s still routed", d)
				}
				if !b.Draining {
					t.Fatalf("drained node %s not flagged draining", d)
				}
			}
		}
		if !found {
			t.Fatalf("drained node %s missing from /healthz", d)
		}
	}
	for _, rg := range ch.Ranges {
		if rg.Live == 0 {
			t.Fatalf("range [%d, %d) left with no live replicas", rg.Lo, rg.Hi)
		}
	}
	// The whole domain still answers oracle-correct.
	for _, r := range [][2]int64{{0, testRows}, {9_000, 21_000}, {100, 200}} {
		queryRange(t, h, r[0], r[1])
	}
}

// TestUnavailableRangeMapsTo503: a range with no replica able to answer
// is an availability problem, not a gateway mystery — machine-readable
// 503 with code "unavailable_range" and a Retry-After, mirroring the
// server's 429 convention, for reads and writes alike.
func TestUnavailableRangeMapsTo503(t *testing.T) {
	coord, nodes := startCluster(t, 2, Config{
		Client:         client.Config{Timeout: time.Second, Retries: 1, Backoff: 5 * time.Millisecond},
		HealthInterval: 50 * time.Millisecond,
	})
	h := coord.Handler()
	nodes[1].Close() // the top range [15000, 30000) is now unreplicated and dead

	for _, rq := range []struct{ path, body string }{
		{"/v1/query", `{"lo":20000,"hi":21000,"aggregate":true}`},
		{"/v1/insert", `{"values":[20123]}`},
		{"/v1/delete", `{"values":[20123]}`},
	} {
		req := httptest.NewRequest("POST", rq.path, bytes.NewReader([]byte(rq.body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s to dead range: status %d, want 503 (body %s)", rq.path, rec.Code, rec.Body)
		}
		var er struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatalf("%s: non-JSON error body %q", rq.path, rec.Body)
		}
		if er.Code != "unavailable_range" {
			t.Fatalf("%s: code %q, want \"unavailable_range\"", rq.path, er.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: 503 without Retry-After", rq.path)
		}
	}
	// The live range is untouched by its neighbor's death.
	queryRange(t, h, 100, 9_000)
}

// FuzzReplicaRouting drives the pure routing-table machinery — replica
// kill/revive, drain planning, query clamping — with arbitrary event
// streams and checks the invariants every swap must keep: full-domain
// tiling, no range without a live replica, and clamped spans that
// partition exactly the requested range.
func FuzzReplicaRouting(f *testing.F) {
	f.Add(uint64(2), uint64(7), []byte{0, 3, 1, 3, 2, 3})
	f.Add(uint64(5), uint64(42), []byte{3, 0, 0, 3, 2, 2, 1, 3, 0, 3})
	f.Add(uint64(1), uint64(1), []byte{2, 3, 3})
	f.Fuzz(func(t *testing.T, nRanges, seed uint64, events []byte) {
		rng := xrand.New(seed)
		k := int(nRanges%6) + 1
		// Distinct interior cut points tile the domain into k ranges.
		cutSet := map[int64]bool{}
		for len(cutSet) < k-1 {
			c := int64(rng.Uint64())
			if c == minInt64 || c == maxInt64 {
				continue
			}
			cutSet[c] = true
		}
		cuts := make([]int64, 0, k-1)
		for c := range cutSet {
			cuts = append(cuts, c)
		}
		for i := 0; i < len(cuts); i++ { // tiny insertion sort; k <= 6
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		var pool []*node
		newNode := func() *node {
			n := &node{}
			n.healthy.Store(true)
			pool = append(pool, n)
			return n
		}
		routes := make([]route, k)
		for i := 0; i < k; i++ {
			lo, hi := minInt64, maxInt64
			if i > 0 {
				lo = cuts[i-1]
			}
			if i < k-1 {
				hi = cuts[i]
			}
			reps := make([]*node, 1+rng.Intn(3))
			for j := range reps {
				reps[j] = newNode()
			}
			routes[i] = route{lo: lo, hi: hi, replicas: reps}
		}
		if err := validateRoutes(routes); err != nil {
			t.Fatalf("initial table invalid: %v", err)
		}
		pick := func(b byte) *node { return pool[int(b)%len(pool)] }
		for ei := 0; ei < len(events); ei++ {
			b := events[ei]
			switch b % 4 {
			case 0: // kill: a replica leaves the read set — unless it is the last live copy (the ack rule forbids that)
				n := pick(b / 4)
				if n.drained.Load() {
					continue
				}
				n.out.Store(true)
				n.healthy.Store(false)
				for i := range routes {
					if routes[i].has(n) && len(routes[i].liveReplicas()) == 0 {
						n.out.Store(false)
						n.healthy.Store(true)
						break
					}
				}
			case 1: // revive: a caught-up replica rejoins
				n := pick(b / 4)
				if n.drained.Load() {
					continue
				}
				n.out.Store(false)
				n.healthy.Store(true)
			case 2: // drain: plan with dropFromRoutes, re-home sole copies
				d := pick(b / 4)
				if d.drained.Load() {
					continue
				}
				next, migrate := dropFromRoutes(routes, d)
				if len(migrate) > 0 {
					var target *node
					for _, n := range pool {
						if n != d && n.live() && n.healthy.Load() {
							target = n
							break
						}
					}
					if target == nil {
						continue // nowhere to drain to; the real Drain refuses too
					}
					for _, i := range migrate {
						next[i].replicas = []*node{target}
					}
				}
				if err := validateRoutes(next); err != nil {
					t.Fatalf("drain plan broke the table: %v", err)
				}
				routes = next
				d.drained.Store(true)
			case 3: // query: clamped spans must partition [lo, hi) exactly
				lo, hi := int64(rng.Uint64()), int64(rng.Uint64())
				if lo > hi {
					lo, hi = hi, lo
				}
				spans := planSpans(routes, lo, hi)
				cursor := lo
				for _, sp := range spans {
					rt := routes[sp.ri]
					if sp.lo < rt.lo || sp.hi > rt.hi {
						t.Fatalf("span [%d, %d) escapes its route [%d, %d)", sp.lo, sp.hi, rt.lo, rt.hi)
					}
					if sp.lo != cursor {
						t.Fatalf("spans not contiguous: gap [%d, %d)", cursor, sp.lo)
					}
					if sp.lo >= sp.hi {
						t.Fatalf("empty span [%d, %d)", sp.lo, sp.hi)
					}
					cursor = sp.hi
				}
				if lo < hi && cursor != hi {
					t.Fatalf("spans cover [%d, %d) of requested [%d, %d)", lo, cursor, lo, hi)
				}
				if lo >= hi && len(spans) != 0 {
					t.Fatalf("empty request produced %d spans", len(spans))
				}
			}
			if err := validateRoutes(routes); err != nil {
				t.Fatalf("event %d (%d) broke the table: %v", ei, b%4, err)
			}
		}
	})
}
