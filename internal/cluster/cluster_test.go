package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/server"
)

const testRows = 30_000

// oracle is the closed-form (count, sum) of the values in [a, b) over a
// permutation of [0, n) — the same identity every other layer validates
// against.
func oracle(a, b, n int64) (count, sum int64) {
	if a < 0 {
		a = 0
	}
	if b > n {
		b = n
	}
	if a >= b {
		return 0, 0
	}
	count = b - a
	sum = (a + b - 1) * count / 2
	return count, sum
}

// startCluster boots `backends` local nodes slicing [0, testRows) evenly
// plus a coordinator over them, all torn down with the test.
func startCluster(t *testing.T, backends int, ccfg Config) (*Coordinator, []*LocalNode) {
	t.Helper()
	var nodes []*LocalNode
	var urls []string
	for i := 0; i < backends; i++ {
		lo := int64(testRows) * int64(i) / int64(backends)
		hi := int64(testRows) * int64(i+1) / int64(backends)
		nd, err := StartLocalNode(LocalNodeConfig{
			N: testRows, Seed: 7, Lo: lo, Hi: hi, Algorithm: "dd1r",
			AuthToken: ccfg.Client.Token,
		})
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		t.Cleanup(nd.Close)
		nodes = append(nodes, nd)
		urls = append(urls, nd.URL)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord, err := New(ctx, urls, ccfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	return coord, nodes
}

// do sends one request through the coordinator's handler and decodes the
// JSON response into out (when non-nil), returning the status code.
func do(t *testing.T, h http.Handler, method, path, body string, out any) int {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body, err)
		}
	}
	return rec.Code
}

// queryRange scatter-gathers [lo, hi) through the coordinator handler
// and asserts the oracle answer.
func queryRange(t *testing.T, h http.Handler, lo, hi int64) {
	t.Helper()
	var resp server.QueryResponse
	code := do(t, h, "POST", "/v1/query",
		fmt.Sprintf(`{"lo":%d,"hi":%d,"aggregate":true}`, lo, hi), &resp)
	if code != http.StatusOK {
		t.Fatalf("query [%d,%d): status %d", lo, hi, code)
	}
	wc, ws := oracle(lo, hi, testRows)
	if len(resp.Results) != 1 || int64(resp.Results[0].Count) != wc || resp.Results[0].Sum != ws {
		t.Fatalf("query [%d,%d): got %+v, oracle (%d, %d)", lo, hi, resp.Results, wc, ws)
	}
}

func TestScatterGatherOracle(t *testing.T) {
	coord, _ := startCluster(t, 3, Config{})
	h := coord.Handler()
	if coord.Rows() != testRows {
		t.Fatalf("cluster rows = %d, want %d", coord.Rows(), testRows)
	}
	// Ranges inside one shard, spanning two, spanning all three, and the
	// domain edges.
	for _, r := range [][2]int64{
		{100, 200}, {9_000, 11_000}, {5, testRows - 5},
		{-50, 80}, {testRows - 100, testRows + 500}, {0, testRows},
	} {
		queryRange(t, h, r[0], r[1])
	}
	// Or-predicates normalize and split like single-server queries.
	var resp server.QueryResponse
	code := do(t, h, "POST", "/v1/query",
		`{"or":[{"lo":100,"hi":300},{"lo":200,"hi":400},{"lo":15000,"hi":15100}],"aggregate":true}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("or query: status %d", code)
	}
	c1, s1 := oracle(100, 400, testRows)
	c2, s2 := oracle(15000, 15100, testRows)
	if int64(resp.Results[0].Count) != c1+c2 || resp.Results[0].Sum != s1+s2 {
		t.Fatalf("or query: got %+v, want (%d, %d)", resp.Results[0], c1+c2, s1+s2)
	}
	// A batch keeps per-item results.
	code = do(t, h, "POST", "/v1/query",
		`{"queries":[{"lo":10,"hi":20},{"lo":14000,"hi":16000}],"aggregate":true}`, &resp)
	if code != http.StatusOK || len(resp.Results) != 2 {
		t.Fatalf("batch query: status %d results %d", code, len(resp.Results))
	}
}

// TestSplitRangeMergeOrdering: a non-aggregate query spanning shards
// must return the sub-results concatenated in ascending shard order —
// every value from shard i precedes every value from shard i+1.
func TestSplitRangeMergeOrdering(t *testing.T) {
	coord, _ := startCluster(t, 3, Config{})
	lo, hi := int64(9_900), int64(20_100) // spans all three shards
	var resp server.QueryResponse
	if code := do(t, coord.Handler(), "POST", "/v1/query",
		fmt.Sprintf(`{"lo":%d,"hi":%d}`, lo, hi), &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	vals := resp.Results[0].Values
	wc, _ := oracle(lo, hi, testRows)
	if int64(len(vals)) != wc {
		t.Fatalf("got %d values, want %d", len(vals), wc)
	}
	// Shard bounds at 10000 and 20000: the concatenation must be sorted
	// BETWEEN shards even though values inside a shard arrive in cracking
	// order. Check the boundary property via per-shard min/max blocks.
	bounds := []int64{10_000, 20_000, math.MaxInt64}
	seg := 0
	var prevMax int64 = math.MinInt64
	var segMin, segMax int64 = math.MaxInt64, math.MinInt64
	for _, v := range vals {
		for v >= bounds[seg] {
			if segMin != math.MaxInt64 && segMin <= prevMax {
				t.Fatalf("shard segment overlaps previous: min %d <= prev max %d", segMin, prevMax)
			}
			prevMax = segMax
			segMin, segMax = math.MaxInt64, math.MinInt64
			seg++
		}
		if v < segMin {
			segMin = v
		}
		if v > segMax {
			segMax = v
		}
	}
	// Sorting the concatenation must equal the oracle range exactly.
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != lo+int64(i) {
			t.Fatalf("sorted[%d] = %d, want %d", i, v, lo+int64(i))
		}
	}
}

// TestBackendDownMidQuery: killing a backend degrades the ranges it
// owned (503 unavailable_range — retryable) while every other range
// keeps answering correctly — and /healthz says "degraded".
func TestBackendDownMidQuery(t *testing.T) {
	coord, nodes := startCluster(t, 3, Config{
		Client:         client.Config{Timeout: time.Second, Retries: 1, Backoff: 5 * time.Millisecond},
		HealthInterval: 50 * time.Millisecond,
	})
	h := coord.Handler()
	queryRange(t, h, 0, testRows) // all up: full-domain answer
	nodes[1].Close()              // kill the middle shard [10000, 20000)

	// Ranges not touching the dead shard still answer with oracle
	// results.
	queryRange(t, h, 0, 9_000)
	queryRange(t, h, 21_000, testRows)
	// A range needing the dead shard fails as a backend error, not a
	// hang or a wrong answer.
	code := do(t, h, "POST", "/v1/query", `{"lo":9000,"hi":21000,"aggregate":true}`, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query through dead shard: status %d, want 503", code)
	}
	// The health loop notices and /healthz degrades.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var hr ClusterHealth
		if code := do(t, h, "GET", "/healthz", "", &hr); code != http.StatusOK {
			t.Fatalf("healthz status %d", code)
		}
		if hr.Status == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never reported degraded")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Repeated failures trip the dead backend's circuit; the healthy
	// ranges keep serving throughout.
	for i := 0; i < 5; i++ {
		do(t, h, "POST", "/v1/query", `{"lo":15000,"hi":15100,"aggregate":true}`, nil)
	}
	queryRange(t, h, 100, 8_000)
}

// TestMigrationWarmAndCorrect: a migration hands the moving range to an
// empty joiner snapshot-warm, the routing table swaps, and every answer
// stays oracle-correct before, during checks, and after.
func TestMigrationWarmAndCorrect(t *testing.T) {
	coord, _ := startCluster(t, 3, Config{})
	h := coord.Handler()
	// Warm the top shard so the migration has cracks to carry.
	for i := 0; i < 50; i++ {
		lo := 20_000 + int64(i)*180
		queryRange(t, h, lo, lo+90)
	}
	joiner, err := StartLocalNode(LocalNodeConfig{Algorithm: "dd1r"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)

	var mig MigrateResponse
	body := fmt.Sprintf(`{"to":%q,"lo":25000,"hi":%d}`, joiner.URL, int64(math.MaxInt64))
	if code := do(t, h, "POST", "/v1/migrate", body, &mig); code != http.StatusOK {
		t.Fatalf("migrate status %d", code)
	}
	if mig.Rows != 5_000 {
		t.Fatalf("migrated %d rows, want 5000", mig.Rows)
	}
	if mig.Pieces < 10 {
		t.Fatalf("joiner restored %d pieces; migration should carry the donor's cracks", mig.Pieces)
	}
	if mig.RetainFailed {
		t.Fatal("donor retain failed")
	}
	// The new topology answers everything correctly, including ranges
	// crossing the new boundary.
	for _, r := range [][2]int64{{0, testRows}, {24_900, 25_100}, {26_000, 29_000}, {20_000, 25_000}} {
		queryRange(t, h, r[0], r[1])
	}
	// The joiner reports warm on the cluster health view.
	var hr ClusterHealth
	do(t, h, "GET", "/healthz", "", &hr)
	found := false
	for _, b := range hr.Backends {
		if b.URL == joiner.URL {
			found = true
			if !b.Routed || !b.Restored {
				t.Fatalf("joiner health %+v: want routed and restored", b)
			}
		}
	}
	if !found {
		t.Fatal("joiner missing from /healthz")
	}
	// An interior range is refused up front.
	code := do(t, h, "POST", "/v1/migrate",
		fmt.Sprintf(`{"to":%q,"lo":1000,"hi":2000}`, joiner.URL), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("interior migrate: status %d, want 400", code)
	}
}

// TestMigrationRacingInserts: updates racing a migration either land
// before the capture (and travel with the snapshot) or after the swap
// (and route to the new owner) — never into the void. The final count
// over the moved range must account for every acknowledged insert.
func TestMigrationRacingInserts(t *testing.T) {
	coord, _ := startCluster(t, 3, Config{})
	h := coord.Handler()
	joiner, err := StartLocalNode(LocalNodeConfig{Algorithm: "dd1r"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)

	const inserts = 200
	acked := make([]bool, inserts)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Values inside the moving range, beyond the permutation top so
			// the expected count is exact.
			v := int64(testRows) + int64(i)
			code := do(t, h, "POST", "/v1/insert", fmt.Sprintf(`{"value":%d}`, v), nil)
			if code == http.StatusOK {
				acked[i] = true
			}
		}
	}()
	time.Sleep(5 * time.Millisecond) // let some inserts land pre-capture
	if _, err := coord.Migrate(context.Background(), joiner.URL, 25_000, math.MaxInt64); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("migrate: %v", err)
	}
	wg.Wait()
	close(stop)

	want := int64(0)
	for _, ok := range acked {
		if ok {
			want++
		}
	}
	if want == 0 {
		t.Fatal("no insert was acknowledged; the race never happened")
	}
	// Count over [testRows, ∞): exactly the acknowledged inserts, each
	// exactly once — none lost in the hand-off, none double-applied.
	var resp server.QueryResponse
	body := fmt.Sprintf(`{"lo":%d,"hi":%d,"aggregate":true}`, testRows, int64(math.MaxInt64))
	if code := do(t, h, "POST", "/v1/query", body, &resp); code != http.StatusOK {
		t.Fatalf("post-race query status %d", code)
	}
	if int64(resp.Results[0].Count) != want {
		t.Fatalf("moved range holds %d inserted values, want %d", resp.Results[0].Count, want)
	}
}

// TestClusterStress is the -race exercise: concurrent queries, updates
// and a live migration all through the coordinator at once.
func TestClusterStress(t *testing.T) {
	coord, _ := startCluster(t, 3, Config{})
	h := coord.Handler()
	joiner, err := StartLocalNode(LocalNodeConfig{Algorithm: "dd1r"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				lo := int64((g*1237 + i*311) % (testRows - 500))
				var resp server.QueryResponse
				code := do(t, h, "POST", "/v1/query",
					fmt.Sprintf(`{"lo":%d,"hi":%d,"aggregate":true}`, lo, lo+300), &resp)
				if code != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("query status %d", code):
					default:
					}
					continue
				}
				wc, ws := oracle(lo, lo+300, testRows)
				if int64(resp.Results[0].Count) != wc || resp.Results[0].Sum != ws {
					select {
					case errs <- fmt.Sprintf("wrong answer for [%d,%d)", lo, lo+300):
					default:
					}
				}
			}
		}(g)
	}
	// One goroutine inserts/deletes the same value — net zero whatever
	// the interleaving, so queries stay oracle-checkable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			v := int64(testRows) + 10_000 + int64(i)
			if do(t, h, "POST", "/v1/insert", fmt.Sprintf(`{"value":%d}`, v), nil) == http.StatusOK {
				do(t, h, "POST", "/v1/delete", fmt.Sprintf(`{"value":%d}`, v), nil)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := coord.Migrate(context.Background(), joiner.URL, 20_000, math.MaxInt64); err != nil {
			select {
			case errs <- fmt.Sprintf("migrate: %v", err):
			default:
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	queryRange(t, h, 0, testRows)
}

// TestCoordinatorAuth: the coordinator's own bearer gate mirrors the
// single server's, and the coordinator presents its backend token
// downstream.
func TestCoordinatorAuth(t *testing.T) {
	coord, _ := startCluster(t, 2, Config{
		Client:    client.Config{Token: "backend-secret"},
		AuthToken: "front-secret",
	})
	h := coord.Handler()
	// No token: 401 on the data plane, /healthz stays open.
	if code := do(t, h, "POST", "/v1/query", `{"lo":1,"hi":2}`, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated query: status %d, want 401", code)
	}
	if code := do(t, h, "GET", "/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz without token: status %d", code)
	}
	// With the token the full scatter path works — which also proves the
	// coordinator authenticates against the token-protected backends.
	req := httptest.NewRequest("POST", "/v1/query",
		bytes.NewReader([]byte(`{"lo":100,"hi":200,"aggregate":true}`)))
	req.Header.Set("Authorization", "Bearer front-secret")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("authenticated query: status %d: %s", rec.Code, rec.Body)
	}
	var resp server.QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	wc, ws := oracle(100, 200, testRows)
	if int64(resp.Results[0].Count) != wc || resp.Results[0].Sum != ws {
		t.Fatalf("authenticated answer %+v, oracle (%d, %d)", resp.Results[0], wc, ws)
	}
}

// TestPendingUpdatesRideMigration: updates queued on the donor travel
// with the migration stream instead of refusing the capture.
func TestPendingUpdatesRideMigration(t *testing.T) {
	coord, _ := startCluster(t, 2, Config{})
	h := coord.Handler()
	// Queue inserts into the moving range (beyond the permutation top, so
	// counts stay exact) without merging them.
	var upd server.UpdateResponse
	body := fmt.Sprintf(`{"values":[%d,%d,%d]}`, testRows+1, testRows+2, testRows+3)
	if code := do(t, h, "POST", "/v1/insert", body, &upd); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if upd.Pending == 0 {
		t.Skip("updates merged eagerly; nothing pending to migrate")
	}
	joiner, err := StartLocalNode(LocalNodeConfig{Algorithm: "dd1r"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)
	mig, err := coord.Migrate(context.Background(), joiner.URL, 15_000, math.MaxInt64)
	if err != nil {
		t.Fatalf("migrate with pending updates: %v", err)
	}
	if mig.Pending != 3 {
		t.Fatalf("migration carried %d pending updates, want 3", mig.Pending)
	}
	// The joiner merges them on first covering query: the values count.
	var resp server.QueryResponse
	q := fmt.Sprintf(`{"lo":%d,"hi":%d,"aggregate":true}`, testRows, testRows+10)
	if code := do(t, h, "POST", "/v1/query", q, &resp); code != http.StatusOK {
		t.Fatalf("post-migrate query status %d", code)
	}
	if resp.Results[0].Count != 3 {
		t.Fatalf("inserted values after migration: count %d, want 3", resp.Results[0].Count)
	}
}
