package cluster

// Planned handoff: Drain empties a live node of every range it serves —
// multi-range, unlike Migrate's donor-edge moves — so a rolling restart
// is a routing-table operation, not an incident. Ranges with another
// serving replica are simple handoffs (drop the drained node from the
// set); ranges where the drained node holds the only usable copy are
// migrated — captured from the drained node itself (it is live; that is
// the point of draining rather than crashing) and restored warm into
// the least-loaded surviving node, merged with whatever that node
// already serves.

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// DrainMove is one range's journey out of a drained node.
type DrainMove struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	To string `json:"to"`
	// Mode is "handoff" when another replica already served the range
	// (To names the new preferred replica), "migrate" when the range had
	// to be copied into To.
	Mode string `json:"mode"`
	// Pieces reports the restored refinement for migrate moves —
	// non-zero means the handoff was warm.
	Pieces int `json:"pieces,omitempty"`
}

// DrainResponse reports a completed drain.
type DrainResponse struct {
	Backend   string      `json:"backend"`
	Moves     []DrainMove `json:"moves"`
	ElapsedMS int64       `json:"elapsed_ms"`
}

// dropFromRoutes plans a drain: remove d from every route's replica
// set. Routes keeping at least one live, probe-healthy replica are
// complete as returned; routes where d was the only usable copy are
// listed in migrate, and the caller must re-home them before the plan
// is valid. Pure — no locks, no I/O — so invariants can be fuzzed.
func dropFromRoutes(routes []route, d *node) (next []route, migrate []int) {
	next = make([]route, len(routes))
	for i := range routes {
		next[i] = routes[i]
		if !routes[i].has(d) {
			continue
		}
		keep := make([]*node, 0, len(routes[i].replicas))
		for _, n := range routes[i].replicas {
			if n != d {
				keep = append(keep, n)
			}
		}
		next[i].replicas = keep
		usable := false
		for _, n := range keep {
			if n.live() && n.healthy.Load() {
				usable = true
				break
			}
		}
		if !usable {
			migrate = append(migrate, i)
		}
	}
	return next, migrate
}

// pickDrainTarget chooses where sole-copy ranges go: the live, healthy,
// not-drained node (other than d) serving the fewest ranges in the
// planned table. Nil when no node qualifies.
func (c *Coordinator) pickDrainTarget(next []route, d *node) *node {
	counts := map[*node]int{}
	for i := range next {
		for _, n := range next[i].replicas {
			counts[n]++
		}
	}
	c.nodesMu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.nodesMu.Unlock()
	var best *node
	for _, n := range nodes {
		if n == d || !n.live() || !n.healthy.Load() {
			continue
		}
		if best == nil || counts[n] < counts[best] {
			best = n
		}
	}
	return best
}

// Drain migrates every range served by the backend at backendURL out of
// it: handoff where a live replica remains, warm migrate into the
// least-loaded survivor where the drained node held the only usable
// copy. The node is live throughout (drain is for planned shutdowns);
// updates are frozen for the window, queries keep flowing. On success
// the node serves no ranges, is marked drained, and its own /healthz
// reports draining.
func (c *Coordinator) Drain(ctx context.Context, backendURL string) (DrainResponse, error) {
	c.migMu.Lock()
	defer c.migMu.Unlock()
	start := time.Now()
	d := c.findNode(backendURL)
	if d == nil {
		return DrainResponse{}, fmt.Errorf("cluster: drain: unknown backend %s", backendURL)
	}
	if d.drained.Load() {
		return DrainResponse{}, fmt.Errorf("cluster: drain: %s is already drained", backendURL)
	}
	routes := *c.routes.Load()

	// Freeze updates for the whole plan-capture-swap window, exactly
	// like a migration — an update landing on d after its capture would
	// be lost with the node.
	c.updMu.Lock()
	defer c.updMu.Unlock()

	next, migrateIdx := dropFromRoutes(routes, d)
	var moves []DrainMove
	var target *node
	if len(migrateIdx) > 0 {
		if target = c.pickDrainTarget(next, d); target == nil {
			return DrainResponse{}, fmt.Errorf("cluster: drain: no surviving node can take %s's sole-copy ranges", backendURL)
		}
		// Capture the moving ranges from d, and the target's own ranges
		// from the target — /v1/restore replaces its whole state, so
		// everything it must serve afterwards goes into one merged
		// manifest.
		var parts []capturedPart
		for _, i := range migrateIdx {
			stream, err := d.SnapshotRange(ctx, routes[i].lo, routes[i].hi)
			if err != nil {
				return DrainResponse{}, fmt.Errorf("cluster: drain: capturing [%d, %d) from %s: %w", routes[i].lo, routes[i].hi, backendURL, err)
			}
			parts = append(parts, capturedPart{lo: routes[i].lo, hi: routes[i].hi, stream: stream})
		}
		for i := range next {
			if next[i].has(target) {
				stream, err := target.SnapshotRange(ctx, next[i].lo, next[i].hi)
				if err != nil {
					return DrainResponse{}, fmt.Errorf("cluster: drain: re-capturing [%d, %d) from target %s: %w", next[i].lo, next[i].hi, target.URL(), err)
				}
				parts = append(parts, capturedPart{lo: next[i].lo, hi: next[i].hi, stream: stream})
			}
		}
		stream, lo, hi, err := mergeStreams(parts)
		if err != nil {
			return DrainResponse{}, fmt.Errorf("cluster: drain: %w", err)
		}
		restored, err := target.RestoreSnapshot(ctx, stream, lo, hi)
		if err != nil {
			return DrainResponse{}, fmt.Errorf("cluster: drain: restoring into %s: %w", target.URL(), err)
		}
		for _, i := range migrateIdx {
			next[i].replicas = []*node{target}
			moves = append(moves, DrainMove{
				Lo: next[i].lo, Hi: next[i].hi, To: target.URL(),
				Mode: "migrate", Pieces: restored.Pieces,
			})
		}
	}
	for i := range routes {
		if !routes[i].has(d) || contains(migrateIdx, i) {
			continue
		}
		to := next[i].replicas[0]
		if s := firstServing(next[i].replicas); s != nil {
			to = s
		}
		moves = append(moves, DrainMove{
			Lo: next[i].lo, Hi: next[i].hi, To: to.URL(), Mode: "handoff",
		})
	}
	if err := validateRoutes(next); err != nil {
		return DrainResponse{}, fmt.Errorf("cluster: drain would break routing: %w", err)
	}
	c.routes.Store(&next)
	d.drained.Store(true)
	d.jmu.Lock()
	d.journal = nil
	d.jmu.Unlock()
	c.drains.Add(1)
	// Best-effort bookkeeping: flip the node's own draining flag so its
	// /healthz tells operators it is safe to stop, and refresh the
	// target's readiness so the warm join shows immediately.
	_, _ = d.Backend.Drain(ctx)
	if target != nil {
		if h, err := target.Health(ctx); err == nil {
			target.last.Store(&h)
		}
	}
	return DrainResponse{
		Backend: backendURL, Moves: moves, ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	backend, ok := backendParam(w, r)
	if !ok {
		return
	}
	resp, err := c.Drain(r.Context(), backend)
	if err != nil {
		status, code := http.StatusBadGateway, "drain_failed"
		if d := c.findNode(backend); d == nil {
			status, code = http.StatusBadRequest, "bad_request"
		}
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
