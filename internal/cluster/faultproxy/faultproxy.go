// Package faultproxy is the cluster test suite's fault-injection
// substrate: a reverse proxy that sits between a coordinator and one
// backend and misbehaves on command. Tests script per-endpoint rules —
// stall, blackhole, flaky 5xx — and whole-process faults — Kill closes
// the listener (connection refused, like a crashed node), Revive
// re-listens on the same address (like a restart) — while the real
// backend underneath stays correct, so every assertion about the
// cluster's answers still has its oracle.
//
// Determinism: the only randomness is the flaky rule's coin, drawn from
// a seeded xrand stream, so a failing chaos run replays with the same
// seed. Kill/stall/blackhole are not random at all — tests place them.
//
// The injected 503 fires before the request is proxied, so it is
// truthfully "provably not applied" in the replication layer's sense:
// an update rejected by a flaky rule never reached the backend's index.
package faultproxy

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Mode is what a rule does to a matching request.
type Mode int

const (
	// Pass proxies the request through untouched (the default).
	Pass Mode = iota
	// Stall sleeps Rule.Delay before proxying — a slow node, not a dead
	// one. The request still completes if the client waits.
	Stall
	// Blackhole never answers: the handler parks until the client gives
	// up. Connections accept, bytes go nowhere — a network partition.
	Blackhole
	// Flaky rejects a Rule.Rate fraction of requests with an injected
	// 503 before proxying, passing the rest through.
	Flaky
)

// Rule scripts one endpoint's misbehavior.
type Rule struct {
	Mode Mode
	// Delay is the Stall sleep.
	Delay time.Duration
	// Rate is the Flaky rejection probability in [0, 1].
	Rate float64
}

// Proxy is one scriptable chokepoint in front of a backend. Zero or one
// rule per endpoint path prefix, plus whole-process Kill/Revive.
type Proxy struct {
	target *url.URL
	rp     *httputil.ReverseProxy

	mu    sync.Mutex
	rules map[string]Rule
	rng   *xrand.Rand
	addr  string
	ln    net.Listener
	hs    *http.Server
}

// New starts a proxy in front of the backend at target (a base URL like
// "http://127.0.0.1:4321"). The seed drives the flaky coin and nothing
// else.
func New(target string, seed uint64) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("faultproxy: bad target %q: %w", target, err)
	}
	p := &Proxy{
		target: u,
		rp:     httputil.NewSingleHostReverseProxy(u),
		rules:  map[string]Rule{},
		rng:    xrand.New(seed),
	}
	// A killed backend behind the proxy produces transport errors; map
	// them to 502 quietly instead of httputil's default log spam.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":%q,"code":"proxy_backend_down"}`, err.Error())
	}
	p.rp.ErrorLog = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p.addr = ln.Addr().String()
	p.serve(ln)
	return p, nil
}

func (p *Proxy) serve(ln net.Listener) {
	hs := &http.Server{Handler: http.HandlerFunc(p.handle)}
	p.ln, p.hs = ln, hs
	go func() { _ = hs.Serve(ln) }()
}

// URL returns the proxy's base URL — what the coordinator is given as
// the backend address.
func (p *Proxy) URL() string { return "http://" + p.addr }

// Set installs the rule for requests whose path starts with endpoint;
// the empty endpoint is the default rule for everything unmatched.
// Setting a Pass rule removes the entry.
func (p *Proxy) Set(endpoint string, r Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.Mode == Pass {
		delete(p.rules, endpoint)
		return
	}
	p.rules[endpoint] = r
}

// Kill closes the proxy's listener and in-flight connections: callers
// see connection refused, exactly like a crashed process. The backend
// underneath is untouched.
func (p *Proxy) Kill() {
	p.mu.Lock()
	hs := p.hs
	p.hs, p.ln = nil, nil
	p.mu.Unlock()
	if hs != nil {
		_ = hs.Close()
	}
}

// Revive re-listens on the same address — a restart of the "process"
// Kill took down. The OS can briefly hold the port, so it retries.
func (p *Proxy) Revive() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hs != nil {
		return nil
	}
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", p.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("faultproxy: revive %s: %w", p.addr, err)
	}
	p.serve(ln)
	return nil
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() { p.Kill() }

func (p *Proxy) ruleFor(path string) Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best string
	found := false
	for ep := range p.rules {
		if ep != "" && strings.HasPrefix(path, ep) && len(ep) > len(best) {
			best, found = ep, true
		}
	}
	if !found {
		if r, ok := p.rules[""]; ok {
			return r
		}
		return Rule{}
	}
	return p.rules[best]
}

// flip draws the flaky coin from the seeded stream.
func (p *Proxy) flip(rate float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64() < rate
}

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	rule := p.ruleFor(r.URL.Path)
	switch rule.Mode {
	case Stall:
		select {
		case <-time.After(rule.Delay):
		case <-r.Context().Done():
			return
		}
	case Blackhole:
		<-r.Context().Done()
		return
	case Flaky:
		if p.flip(rule.Rate) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"injected fault","code":"injected_fault"}`)
			return
		}
	}
	p.rp.ServeHTTP(w, r)
}
