package faultproxy

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func startBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "real:"+r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestPassThrough(t *testing.T) {
	srv := startBackend(t)
	p, err := New(srv.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if code, body := get(t, p.URL()+"/v1/stats"); code != 200 || body != "real:/v1/stats" {
		t.Fatalf("pass-through: got %d %q", code, body)
	}
}

func TestKillRefusesAndReviveRestores(t *testing.T) {
	srv := startBackend(t)
	p, err := New(srv.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	url := p.URL()
	p.Kill()
	_, err = http.Get(url + "/healthz")
	if err == nil {
		t.Fatal("killed proxy answered")
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		// Accept any transport error, but a refused connection is the
		// realistic crash signature we are after.
		var opErr *net.OpError
		if !errors.As(err, &opErr) {
			t.Fatalf("killed proxy: want transport error, got %v", err)
		}
	}
	if err := p.Revive(); err != nil {
		t.Fatal(err)
	}
	if p.URL() != url {
		t.Fatalf("revive changed address: %s vs %s", p.URL(), url)
	}
	if code, _ := get(t, url+"/healthz"); code != 200 {
		t.Fatalf("revived proxy: got %d", code)
	}
}

func TestFlakyIsSeededAndScoped(t *testing.T) {
	srv := startBackend(t)
	run := func(seed uint64) []int {
		p, err := New(srv.URL, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		p.Set("/v1/insert", Rule{Mode: Flaky, Rate: 0.5})
		var codes []int
		for i := 0; i < 40; i++ {
			code, _ := get(t, p.URL()+"/v1/insert")
			codes = append(codes, code)
		}
		// Unmatched endpoints are untouched by the scoped rule.
		if code, _ := get(t, p.URL()+"/v1/query"); code != 200 {
			t.Fatalf("scoped flaky leaked to /v1/query: %d", code)
		}
		return codes
	}
	a, b := run(7), run(7)
	saw503 := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] == http.StatusServiceUnavailable {
			saw503 = true
		} else if a[i] != http.StatusOK {
			t.Fatalf("unexpected status %d", a[i])
		}
	}
	if !saw503 {
		t.Fatal("rate-0.5 flaky rule injected nothing in 40 requests")
	}
}

func TestStallDelaysAndBlackholeHangs(t *testing.T) {
	srv := startBackend(t)
	p, err := New(srv.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set("/slow", Rule{Mode: Stall, Delay: 80 * time.Millisecond})
	start := time.Now()
	if code, _ := get(t, p.URL()+"/slow"); code != 200 {
		t.Fatalf("stalled request failed: %d", code)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("stall returned in %v, want >= 80ms", d)
	}

	p.Set("/hole", Rule{Mode: Blackhole})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL()+"/hole", nil)
	if _, err := http.DefaultClient.Do(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole: want deadline exceeded, got %v", err)
	}
	// Clearing the rule restores service.
	p.Set("/hole", Rule{Mode: Pass})
	if code, _ := get(t, p.URL()+"/hole"); code != 200 {
		t.Fatalf("cleared blackhole still broken: %d", code)
	}
}
