package colload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTextRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 42, 1 << 60, -(1 << 60)}
	var buf bytes.Buffer
	if err := WriteText(&buf, vals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header\n1\n\n  2 \n# trailing\n3\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestTextMalformed(t *testing.T) {
	_, err := ReadText(strings.NewReader("1\nbanana\n3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 error", err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, vals); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a column file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("CR")); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Correct magic, truncated payload.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestBinaryRefusesAbsurdCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestFileRoundTripAndSniffing(t *testing.T) {
	dir := t.TempDir()
	vals := xrand.New(1).Perm(1000)

	binPath := filepath.Join(dir, "col.bin")
	if err := SaveFile(binPath, vals, true); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 || got[0] != vals[0] {
		t.Fatal("binary file round trip failed")
	}

	txtPath := filepath.Join(dir, "col.txt")
	if err := SaveFile(txtPath, vals, false); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 || got[999] != vals[999] {
		t.Fatal("text file round trip failed")
	}

	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(empty); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestShortTextFileSniffsAsText(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "tiny.txt")
	if err := os.WriteFile(p, []byte("7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
}
