// Package colload reads and writes integer columns in the two formats a
// column-store tool realistically meets: newline-delimited text (one
// integer per line, '#' comments and blank lines ignored) and a dense
// little-endian binary format matching the in-memory representation
// (magic header + count + raw int64 values).
//
// The binary format is what cmd tools use to hand datasets around without
// re-parsing; the text format is the interchange/debugging path.
package colload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// binaryMagic identifies the binary column format ("CRKC" + version 1).
var binaryMagic = [8]byte{'C', 'R', 'K', 'C', 0, 0, 0, 1}

// WriteText writes one value per line.
func WriteText(w io.Writer, values []int64) error {
	bw := bufio.NewWriter(w)
	for _, v := range values {
		if _, err := fmt.Fprintln(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses one integer per line; blank lines and lines starting
// with '#' are skipped. Malformed lines yield an error naming the line.
func ReadText(r io.Reader) ([]int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("colload: line %d: %w", lineNo, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("colload: %w", err)
	}
	return out, nil
}

// WriteBinary writes the dense binary format: magic, count, values.
func WriteBinary(w io.Writer, values []int64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(values))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, values); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads the dense binary format written by WriteBinary.
func ReadBinary(r io.Reader) ([]int64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("colload: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("colload: not a CRKC column file (magic %x)", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("colload: reading count: %w", err)
	}
	const maxCount = 1 << 33 // 64 GiB of values: refuse absurd headers
	if count > maxCount {
		return nil, fmt.Errorf("colload: column claims %d values", count)
	}
	out := make([]int64, count)
	if err := binary.Read(br, binary.LittleEndian, out); err != nil {
		return nil, fmt.Errorf("colload: reading %d values: %w", count, err)
	}
	return out, nil
}

// LoadFile loads a column from path, sniffing the format: the binary magic
// wins, anything else parses as text.
func LoadFile(path string) ([]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && n == 0 {
		return nil, fmt.Errorf("colload: %s is empty", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic == binaryMagic {
		return ReadBinary(f)
	}
	return ReadText(f)
}

// SaveFile writes a column to path; binary selects the format.
func SaveFile(path string, values []int64, binaryFormat bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if binaryFormat {
		if err := WriteBinary(f, values); err != nil {
			return err
		}
	} else {
		if err := WriteText(f, values); err != nil {
			return err
		}
	}
	return f.Close()
}
