// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the cracking engine and the workload generators.
//
// The engine needs randomness that is (a) reproducible from a seed so that
// experiments and tests are deterministic, (b) cheap enough to sit inside
// per-query code paths, and (c) free of global state or locking (the stdlib
// global rand source is locked). xrand implements xoshiro256** seeded via
// splitmix64, the construction recommended by the xoshiro authors.
package xrand

// Rand is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed and returns the next stage value. It is used
// only to initialize the xoshiro state so that similar seeds yield unrelated
// streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if it had been created by New(seed).
func (r *Rand) Seed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean (the FlipCoin primitive).
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a random permutation of [0, n) as int64 values, generated
// with an in-place Fisher-Yates shuffle.
func (r *Rand) Perm(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher-Yates).
func (r *Rand) Shuffle(p []int64) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
