package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d of 1000 draws", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	New(1).Int63n(-1)
}

func TestInt63NonNegative(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolRoughlyBalanced(t *testing.T) {
	r := New(11)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < n*45/100 || trues > n*55/100 {
		t.Fatalf("Bool heavily biased: %d/%d true", trues, n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int64(n) || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(vals []int64, seed uint64) bool {
		orig := make(map[int64]int)
		for _, v := range vals {
			orig[v]++
		}
		cp := append([]int64(nil), vals...)
		New(seed).Shuffle(cp)
		got := make(map[int64]int)
		for _, v := range cp {
			got[v]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, c := range orig {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityChiSquared(t *testing.T) {
	// Coarse uniformity check: 16 buckets over many draws. The chi-squared
	// statistic for 15 degrees of freedom should comfortably sit below 40
	// (p ≈ 0.0005) for a healthy generator.
	r := New(2024)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	if chi > 40 {
		t.Fatalf("chi-squared = %.1f, distribution looks non-uniform: %v", chi, counts)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000000)
	}
	_ = sink
}
