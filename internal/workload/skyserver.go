package workload

import "repro/internal/xrand"

// SkyServer is a synthetic stand-in for the Sloan Digital Sky Survey query
// log the paper replays in Fig. 16 (selection predicates on the "right
// ascension" attribute of the Photoobjall table, in original chronological
// order).
//
// Substitution rationale (see DESIGN.md §4): the real 4 TB data set and
// query log are not redistributable, but the property the experiment
// depends on is visible in Fig. 16(b): users scan one area of the sky at a
// time — long runs of small, noisy, mostly-monotone steps confined to a
// narrow region — before jumping to a different area, with occasional
// returns to previously popular regions. That access pattern is what
// leaves large unindexed pieces for original cracking to rescan, and it is
// exactly what this generator reproduces:
//
//   - observation campaigns of geometrically distributed length (hundreds
//     to thousands of queries) over a region of 2-10% of the domain;
//   - within a campaign, the query window drifts monotonically across the
//     region with per-query jitter, wrapping around at region edges;
//   - campaign start positions favor a handful of "popular" sky areas
//     (telescope targets), with occasional uniform jumps;
//   - query widths vary by two orders of magnitude around the base
//     selectivity, as real predicates do.
type SkyServer struct {
	p   Params
	rng *xrand.Rand

	popular []int64 // persistent popular region centers

	// campaign state
	regionLo, regionHi int64
	pos                int64
	step               int64
	remaining          int
}

// NewSkyServer builds the synthetic trace generator.
func NewSkyServer(p Params) *SkyServer {
	s := &SkyServer{p: p.withDefaults()}
	s.Reset()
	return s
}

// Name implements Generator.
func (s *SkyServer) Name() string { return "skyserver" }

// Reset implements Generator.
func (s *SkyServer) Reset() {
	s.rng = xrand.New(s.p.Seed)
	s.popular = s.popular[:0]
	for i := 0; i < 5; i++ {
		s.popular = append(s.popular, s.rng.Int63n(s.p.N))
	}
	s.remaining = 0
}

func (s *SkyServer) startCampaign() {
	n := s.p.N
	// Pick the campaign's region: 75% around a popular center, else
	// uniform (a newly explored area, which then becomes popular).
	var center int64
	if s.rng.Intn(4) != 0 {
		center = s.popular[s.rng.Intn(len(s.popular))]
	} else {
		center = s.rng.Int63n(n)
		s.popular[s.rng.Intn(len(s.popular))] = center
	}
	width := n/50 + s.rng.Int63n(n/12) // 2%..~10% of the domain
	s.regionLo, s.regionHi = clamp(center-width/2, center+width/2, n)

	// Geometric-ish campaign length: 200..3400 queries.
	s.remaining = 200 + s.rng.Intn(800)*s.rng.Intn(5)

	// Drift direction and step: cover the region roughly once per
	// campaign.
	span := s.regionHi - s.regionLo
	s.step = span / int64(s.remaining+1)
	if s.step < 1 {
		s.step = 1
	}
	if s.rng.Bool() {
		s.step = -s.step
		s.pos = s.regionHi - s.p.S
	} else {
		s.pos = s.regionLo
	}
}

// Next implements Generator.
func (s *SkyServer) Next() (int64, int64) {
	if s.remaining <= 0 {
		s.startCampaign()
	}
	s.remaining--

	// Window width: log-uniform-ish around the base selectivity.
	width := s.p.S
	switch s.rng.Intn(10) {
	case 0:
		width *= 100
	case 1, 2:
		width *= 10
	}

	// Jitter around the drifting position.
	span := s.regionHi - s.regionLo
	jitter := int64(0)
	if span > 4 {
		jitter = s.rng.Int63n(span/4+1) - span/8
	}
	lo := s.pos + jitter

	// Advance the drift, wrapping within the region.
	s.pos += s.step
	if s.pos < s.regionLo {
		s.pos = s.regionHi - s.p.S
	}
	if s.pos > s.regionHi {
		s.pos = s.regionLo
	}

	if lo < s.regionLo {
		lo = s.regionLo
	}
	if lo+width > s.regionHi {
		lo = s.regionHi - width
	}
	return clamp(lo, lo+width, s.p.N)
}
