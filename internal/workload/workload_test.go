package workload

import (
	"testing"
	"testing/quick"
)

func params() Params {
	return Params{N: 1 << 20, Q: 10000, S: 10, Seed: 7}
}

func TestAllGeneratorsProduceValidRanges(t *testing.T) {
	p := params()
	for _, name := range Names() {
		g, err := New(name, p)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("Name() = %q, want %q", g.Name(), name)
		}
		for i := 0; i < p.Q; i++ {
			lo, hi := g.Next()
			if lo < 0 || hi > p.N || lo >= hi {
				t.Fatalf("%s query %d: invalid range [%d,%d) for N=%d", name, i, lo, hi, p.N)
			}
		}
	}
}

func TestGeneratorsDeterministicAcrossReset(t *testing.T) {
	p := params()
	for _, name := range Names() {
		g, err := New(name, p)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct{ lo, hi int64 }
		first := make([]pair, 500)
		for i := range first {
			lo, hi := g.Next()
			first[i] = pair{lo, hi}
		}
		g.Reset()
		for i := range first {
			lo, hi := g.Next()
			if first[i] != (pair{lo, hi}) {
				t.Fatalf("%s: query %d differs after Reset: [%d,%d) vs [%d,%d)",
					name, i, first[i].lo, first[i].hi, lo, hi)
			}
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("galaxyquest", params()); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestSequentialAdvancesMonotonically(t *testing.T) {
	g := Sequential(params())
	var prev int64 = -1
	for i := 0; i < 1000; i++ {
		lo, _ := g.Next()
		if lo < prev {
			t.Fatalf("sequential moved backwards at %d: %d after %d", i, lo, prev)
		}
		prev = lo
	}
}

func TestSequentialCoversDomain(t *testing.T) {
	p := params()
	g := Sequential(p)
	var lastLo int64
	for i := 0; i < p.Q; i++ {
		lastLo, _ = g.Next()
	}
	if lastLo < p.N*9/10 {
		t.Fatalf("sequential final query starts at %d; should approach N=%d", lastLo, p.N)
	}
}

func TestSeqReverseMirrorsSequential(t *testing.T) {
	p := params()
	fwd := Sequential(p)
	rev := SeqReverse(p)
	fwdQueries := make([][2]int64, p.Q)
	for i := 0; i < p.Q; i++ {
		lo, hi := fwd.Next()
		fwdQueries[i] = [2]int64{lo, hi}
	}
	for i := 0; i < p.Q; i++ {
		lo, hi := rev.Next()
		want := fwdQueries[p.Q-1-i]
		if lo != want[0] || hi != want[1] {
			t.Fatalf("seqreverse query %d = [%d,%d), want [%d,%d)", i, lo, hi, want[0], want[1])
		}
	}
}

func TestZoomInNarrows(t *testing.T) {
	p := params()
	g := ZoomIn(p)
	lo0, hi0 := g.Next()
	w0 := hi0 - lo0
	var wLast int64
	for i := 1; i < p.Q; i++ {
		lo, hi := g.Next()
		wLast = hi - lo
		if wLast > w0 {
			t.Fatalf("zoomin width grew: %d > %d", wLast, w0)
		}
	}
	if wLast*10 > w0 {
		t.Fatalf("zoomin did not narrow: first %d, last %d", w0, wLast)
	}
}

func TestZoomInAltAlternatesEnds(t *testing.T) {
	p := params()
	g := ZoomInAlt(p)
	lo0, _ := g.Next()
	lo1, _ := g.Next()
	if lo0 >= p.N/2 || lo1 <= p.N/2 {
		t.Fatalf("zoominalt first two queries at %d and %d; want low then high end", lo0, lo1)
	}
}

func TestZoomOutAltStartsCentered(t *testing.T) {
	p := params()
	g := ZoomOutAlt(p)
	lo, _ := g.Next()
	if lo < p.N/2-p.N/100 || lo > p.N/2+p.N/100 {
		t.Fatalf("zoomoutalt first query at %d, want near N/2=%d", lo, p.N/2)
	}
	sk := SkewZoomOutAlt(p)
	lo, _ = sk.Next()
	if lo < p.N*85/100 {
		t.Fatalf("skewzoomoutalt first query at %d, want near 9N/10=%d", lo, p.N/10*9)
	}
}

func TestSkewRespectsPhases(t *testing.T) {
	p := params()
	g := Skew(p)
	for i := 0; i < p.Q; i++ {
		lo, hi := g.Next()
		if i < p.Q*8/10 {
			if hi > p.N*8/10+p.S {
				t.Fatalf("skew query %d at [%d,%d) outside bottom 80%%", i, lo, hi)
			}
		} else if lo < p.N*8/10 {
			t.Fatalf("skew query %d at [%d,%d) outside top 20%%", i, lo, hi)
		}
	}
}

func TestPeriodicRepeats(t *testing.T) {
	p := params()
	g := Periodic(p)
	// J = N/1000 and the paper's sawtooth restarts when i*J wraps N-S:
	// the difference between consecutive lows is either +J or a big drop.
	j := p.N / 1000
	prev, _ := g.Next()
	drops := 0
	for i := 1; i < p.Q; i++ {
		lo, _ := g.Next()
		switch {
		case lo == prev+j:
		case lo < prev:
			drops++
		default:
			t.Fatalf("periodic step %d -> %d is neither +J nor a wrap", prev, lo)
		}
		prev = lo
	}
	if drops < 5 {
		t.Fatalf("periodic wrapped only %d times over %d queries", drops, p.Q)
	}
}

func TestRandomCoverage(t *testing.T) {
	p := params()
	if cov := Coverage(Random(p), 5000, p.N); cov < 0.02 {
		t.Fatalf("random coverage %.4f too small", cov)
	}
}

func TestSkyServerLooksLikeCampaigns(t *testing.T) {
	p := params()
	g := NewSkyServer(p)
	// Property 1: consecutive queries are strongly locally correlated —
	// the median jump is far below the domain size.
	prevLo := int64(-1)
	small, large := 0, 0
	q := 20000
	for i := 0; i < q; i++ {
		lo, hi := g.Next()
		if lo < 0 || hi > p.N || lo >= hi {
			t.Fatalf("invalid skyserver range [%d,%d)", lo, hi)
		}
		if prevLo >= 0 {
			d := lo - prevLo
			if d < 0 {
				d = -d
			}
			if d < p.N/8 {
				small++
			} else {
				large++
			}
		}
		prevLo = lo
	}
	if small < large*5 {
		t.Fatalf("skyserver trace not locally focused: %d small vs %d large jumps", small, large)
	}
	// Property 2: over a long horizon the trace still explores a good
	// chunk of the domain (campaigns move around).
	if cov := Coverage(NewSkyServer(p), q, p.N); cov < 0.15 {
		t.Fatalf("skyserver coverage %.4f; campaigns never move", cov)
	}
}

func TestMixedDrawsFromAllSubWorkloads(t *testing.T) {
	p := params()
	m := NewMixed(p)
	for i := 0; i < 30000; i++ {
		lo, hi := m.Next()
		if lo < 0 || hi > p.N || lo >= hi {
			t.Fatalf("mixed produced invalid range [%d,%d)", lo, hi)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(lo, hi int64, nRaw uint32) bool {
		n := int64(nRaw%1000000) + 2
		clo, chi := clamp(lo, hi, n)
		return clo >= 0 && chi <= n && clo < chi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternSampling(t *testing.T) {
	p := params()
	g := Sequential(p)
	xs, mids := Pattern(g, 1000, 100)
	if len(xs) != len(mids) || len(xs) == 0 || len(xs) > 110 {
		t.Fatalf("pattern sample sizes: %d xs, %d mids", len(xs), len(mids))
	}
	for i := 1; i < len(mids); i++ {
		if mids[i] < mids[i-1] {
			t.Fatal("sequential pattern midpoints must be non-decreasing")
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.N <= 0 || p.Q <= 0 || p.S <= 0 || p.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	p = Params{N: 5, S: 100}.withDefaults()
	if p.S >= p.N {
		t.Fatalf("selectivity not clamped below N: %+v", p)
	}
}
