// Package workload implements the query workload generators of the paper's
// evaluation (Fig. 7), the Mixed workload of Fig. 17, and a synthetic
// SkyServer trace standing in for the real Sloan Digital Sky Survey query
// log of Fig. 16 (see the SkyServer type for the substitution rationale).
//
// Each generator produces a sequence of half-open value ranges [lo, hi)
// over the integer domain [0, N). Following the paper's setup, the data is
// a random permutation of [0, N), so a value range of width S selects S
// tuples. The free parameters the paper leaves implicit (jump factor J,
// initial width W) are fixed as documented on each generator so that a
// sequence of Q queries covers the domain the way Fig. 7 draws it.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xrand"
)

// Params configures a workload generator.
type Params struct {
	// N is the value domain size (and, for permutation data, the column
	// size in tuples).
	N int64
	// Q is the planned sequence length; formulas that sweep or zoom scale
	// their step so the sweep completes after Q queries.
	Q int
	// S is the query selectivity in value units (tuples, for dense
	// domains). The paper's default is 10.
	S int64
	// Seed drives the randomized workloads.
	Seed uint64
}

func (p Params) withDefaults() Params {
	if p.N <= 0 {
		p.N = 1 << 20
	}
	if p.Q <= 0 {
		p.Q = 10000
	}
	if p.S <= 0 {
		p.S = 10
	}
	if p.S >= p.N {
		p.S = p.N - 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Generator produces a deterministic sequence of range queries.
type Generator interface {
	// Name identifies the workload (lower-case, as used in specs).
	Name() string
	// Next returns the next query range [lo, hi).
	Next() (lo, hi int64)
	// Reset restarts the sequence from the beginning.
	Reset()
}

// clamp keeps a generated range inside the domain [0, n), preserving its
// width when possible.
func clamp(lo, hi, n int64) (int64, int64) {
	if hi < lo {
		lo, hi = hi, lo
	}
	w := hi - lo
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo+w > n {
		lo = n - w
	}
	return lo, lo + w
}

// formula is a pure-function workload: query i is a closed-form expression
// of i, allowing random access (needed by the reversed workloads).
type formula struct {
	name string
	p    Params
	at   func(p Params, i int) (int64, int64)
	i    int
}

func (f *formula) Name() string { return f.name }
func (f *formula) Reset()       { f.i = 0 }
func (f *formula) Next() (int64, int64) {
	lo, hi := f.at(f.p, f.i)
	f.i++
	return clamp(lo, hi, f.p.N)
}

// At returns query i without advancing the sequence.
func (f *formula) At(i int) (int64, int64) {
	lo, hi := f.at(f.p, i)
	return clamp(lo, hi, f.p.N)
}

// reversed replays a formula workload back to front: query i of the
// reversed sequence is query Q-1-i of the base (SeqReverse, ZoomOut and
// SeqZoomOut in the paper are defined exactly this way).
type reversed struct {
	name string
	base *formula
	i    int
}

func (r *reversed) Name() string { return r.name }
func (r *reversed) Reset()       { r.i = 0 }
func (r *reversed) Next() (int64, int64) {
	j := r.base.p.Q - 1 - r.i
	if j < 0 {
		j = 0
	}
	r.i++
	return r.base.At(j)
}

// Sequential: [a, a+S) with a = i*J; consecutive queries ask for
// consecutive ranges, sweeping the domain once over Q queries
// (J = (N-S)/Q). The paper's canonical unfavorable workload.
func Sequential(p Params) Generator {
	p = p.withDefaults()
	return &formula{name: "sequential", p: p, at: func(p Params, i int) (int64, int64) {
		j := (p.N - p.S) / int64(p.Q)
		if j < 1 {
			j = 1
		}
		a := int64(i) * j
		return a, a + p.S
	}}
}

// SeqReverse is Sequential run in reverse query order.
func SeqReverse(p Params) Generator {
	return &reversed{name: "seqreverse", base: Sequential(p).(*formula)}
}

// Periodic: [a, a+S) with a = (i*J) % (N-S); like Sequential but restarting
// from the bottom of the domain periodically. J = N/1000 gives ten sweeps
// over the paper's Q = 10^4 sequence.
func Periodic(p Params) Generator {
	p = p.withDefaults()
	return &formula{name: "periodic", p: p, at: func(p Params, i int) (int64, int64) {
		j := p.N / 1000
		if j < 1 {
			j = 1
		}
		a := (int64(i) * j) % (p.N - p.S)
		return a, a + p.S
	}}
}

// ZoomIn: [N/2 - W/2 + i*J, N/2 + W/2 - i*J); a wide range around the
// center narrowing from both sides (W = N, J = (N-S)/(2Q)).
func ZoomIn(p Params) Generator {
	p = p.withDefaults()
	return &formula{name: "zoomin", p: p, at: func(p Params, i int) (int64, int64) {
		w := p.N
		j := (p.N - p.S) / (2 * int64(p.Q))
		if j < 1 {
			j = 1
		}
		lo := p.N/2 - w/2 + int64(i)*j
		hi := p.N/2 + w/2 - int64(i)*j
		if hi-lo < p.S {
			mid := (lo + hi) / 2
			lo, hi = mid-p.S/2, mid-p.S/2+p.S
		}
		return lo, hi
	}}
}

// ZoomOut is ZoomIn run in reverse query order.
func ZoomOut(p Params) Generator {
	return &reversed{name: "zoomout", base: ZoomIn(p).(*formula)}
}

// SeqZoomIn: [L+K, L+W-K) with L = (i div 1000)*W and K = (i%1000)*J;
// every 1000 queries zoom into one window of width W = N*1000/Q, then hop
// to the next window (J = W/2000 keeps the final width positive).
func SeqZoomIn(p Params) Generator {
	p = p.withDefaults()
	return &formula{name: "seqzoomin", p: p, at: func(p Params, i int) (int64, int64) {
		chunks := int64(p.Q) / 1000
		if chunks < 1 {
			chunks = 1
		}
		w := p.N / chunks
		if w < 2 {
			w = 2
		}
		j := w / 2000
		if j < 1 {
			j = 1
		}
		l := (int64(i) / 1000) * w
		k := (int64(i) % 1000) * j
		if 2*k >= w-1 {
			k = (w - 2) / 2
		}
		return l + k, l + w - k
	}}
}

// SeqZoomOut is SeqZoomIn run in reverse query order.
func SeqZoomOut(p Params) Generator {
	return &reversed{name: "seqzoomout", base: SeqZoomIn(p).(*formula)}
}

// ZoomInAlt: [a, a+S) with a = x*i*J + (N-S)*(1-x)/2, x = (-1)^i; queries
// alternate between the two ends of the domain, converging on the middle
// (J = (N-S)/(2Q) completes the convergence after Q queries).
func ZoomInAlt(p Params) Generator {
	p = p.withDefaults()
	return &formula{name: "zoominalt", p: p, at: func(p Params, i int) (int64, int64) {
		j := (p.N - p.S) / (2 * int64(p.Q))
		if j < 1 {
			j = 1
		}
		var a int64
		if i%2 == 0 { // x = +1
			a = int64(i) * j
		} else { // x = -1: a = -i*J + (N-S)
			a = p.N - p.S - int64(i)*j
		}
		return a, a + p.S
	}}
}

// ZoomOutAlt: [a, a+S) with a = x*i*J + M, M = N/2, x = (-1)^i; queries
// alternate around the middle of the domain, diverging outwards
// (J = (N/2-S)/Q).
func ZoomOutAlt(p Params) Generator {
	return zoomOutAlt(p, "zoomoutalt", func(n int64) int64 { return n / 2 })
}

// SkewZoomOutAlt is ZoomOutAlt centered at M = N*9/10 instead of N/2; the
// asymmetry leaves a large unindexed region below the center.
func SkewZoomOutAlt(p Params) Generator {
	return zoomOutAlt(p, "skewzoomoutalt", func(n int64) int64 { return n / 10 * 9 })
}

func zoomOutAlt(p Params, name string, center func(int64) int64) Generator {
	p = p.withDefaults()
	return &formula{name: name, p: p, at: func(p Params, i int) (int64, int64) {
		m := center(p.N)
		room := p.N - m
		if m < room {
			room = m
		}
		j := (room - p.S) / int64(p.Q)
		if j < 1 {
			j = 1
		}
		var a int64
		if i%2 == 0 {
			a = m + int64(i)*j
		} else {
			a = m - int64(i)*j
		}
		return a, a + p.S
	}}
}

// random is the base for the RNG-driven workloads.
type random struct {
	name string
	p    Params
	rng  *xrand.Rand
	i    int
	next func(w *random) (int64, int64)
}

func (w *random) Name() string { return w.name }
func (w *random) Reset() {
	w.rng.Seed(w.p.Seed)
	w.i = 0
}
func (w *random) Next() (int64, int64) {
	lo, hi := w.next(w)
	w.i++
	return clamp(lo, hi, w.p.N)
}

// Random: [a, a+S) with a = R % (N-S): uniformly random ranges of fixed
// selectivity — the workload original cracking excels at.
func Random(p Params) Generator {
	p = p.withDefaults()
	return &random{name: "random", p: p, rng: xrand.New(p.Seed), next: func(w *random) (int64, int64) {
		a := w.rng.Int63n(w.p.N - w.p.S)
		return a, a + w.p.S
	}}
}

// Skew: random ranges within the bottom 80% of the domain for the first
// 80% of the sequence, then within the top 20%.
func Skew(p Params) Generator {
	p = p.withDefaults()
	return &random{name: "skew", p: p, rng: xrand.New(p.Seed), next: func(w *random) (int64, int64) {
		n, s := w.p.N, w.p.S
		if w.i < w.p.Q*8/10 {
			a := w.rng.Int63n(n*8/10 - s)
			return a, a + s
		}
		a := n*8/10 + w.rng.Int63n(n*2/10-s)
		return a, a + s
	}}
}

// SeqRandom: [i*J, i*J + R%(N-i*J)): the lower bound advances sequentially
// while the width is random.
func SeqRandom(p Params) Generator {
	p = p.withDefaults()
	return &random{name: "seqrandom", p: p, rng: xrand.New(p.Seed), next: func(w *random) (int64, int64) {
		j := (w.p.N - w.p.S) / int64(w.p.Q)
		if j < 1 {
			j = 1
		}
		a := int64(w.i) * j
		if a >= w.p.N-1 {
			a = w.p.N - 2
		}
		width := w.rng.Int63n(w.p.N-a) + 1
		return a, a + width
	}}
}

// Mixed switches to a randomly chosen Fig. 7 workload every 1000 queries,
// continuing each sub-workload from where it last stopped (Fig. 17).
type Mixed struct {
	p    Params
	rng  *xrand.Rand
	subs []Generator
	cur  int
	i    int
}

// NewMixed builds the Mixed workload over all 13 synthetic patterns.
func NewMixed(p Params) *Mixed {
	p = p.withDefaults()
	m := &Mixed{p: p, rng: xrand.New(p.Seed)}
	for _, name := range Names() {
		if name == "mixed" || name == "skyserver" {
			continue
		}
		g, err := New(name, p)
		if err != nil {
			panic("workload: building " + name + ": " + err.Error())
		}
		m.subs = append(m.subs, g)
	}
	m.cur = m.rng.Intn(len(m.subs))
	return m
}

// Name implements Generator.
func (m *Mixed) Name() string { return "mixed" }

// Reset implements Generator.
func (m *Mixed) Reset() {
	m.rng.Seed(m.p.Seed)
	for _, s := range m.subs {
		s.Reset()
	}
	m.cur = m.rng.Intn(len(m.subs))
	m.i = 0
}

// Next implements Generator.
func (m *Mixed) Next() (int64, int64) {
	if m.i > 0 && m.i%1000 == 0 {
		m.cur = m.rng.Intn(len(m.subs))
	}
	m.i++
	return m.subs[m.cur].Next()
}

// Names returns every workload spec in the display order of Fig. 17.
func Names() []string {
	return []string{
		"periodic", "zoomout", "zoomin", "zoominalt",
		"random", "skew",
		"seqreverse", "seqzoomin", "seqrandom", "sequential", "seqzoomout",
		"zoomoutalt", "skewzoomoutalt",
		"mixed", "skyserver",
	}
}

// New builds a workload generator by name.
func New(name string, p Params) (Generator, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "random":
		return Random(p), nil
	case "skew":
		return Skew(p), nil
	case "seqrandom":
		return SeqRandom(p), nil
	case "seqzoomin":
		return SeqZoomIn(p), nil
	case "periodic":
		return Periodic(p), nil
	case "zoomin":
		return ZoomIn(p), nil
	case "sequential":
		return Sequential(p), nil
	case "zoomoutalt":
		return ZoomOutAlt(p), nil
	case "zoominalt":
		return ZoomInAlt(p), nil
	case "seqreverse":
		return SeqReverse(p), nil
	case "zoomout":
		return ZoomOut(p), nil
	case "seqzoomout":
		return SeqZoomOut(p), nil
	case "skewzoomoutalt":
		return SkewZoomOutAlt(p), nil
	case "mixed":
		return NewMixed(p), nil
	case "skyserver":
		return NewSkyServer(p), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q (known: %s)",
		name, strings.Join(Names(), ", "))
}

// Pattern samples the access pattern of a generator: it returns up to
// points (queryIndex, rangeMidpoint) pairs over q queries, the format of
// Fig. 7's and Fig. 16(b)'s plots.
func Pattern(g Generator, q, points int) (xs []int, mids []int64) {
	g.Reset()
	if points <= 0 || points > q {
		points = q
	}
	step := q / points
	if step < 1 {
		step = 1
	}
	for i := 0; i < q; i++ {
		lo, hi := g.Next()
		if i%step == 0 {
			xs = append(xs, i)
			mids = append(mids, (lo+hi)/2)
		}
	}
	g.Reset()
	return xs, mids
}

// Coverage reports the fraction of the domain touched by the first q
// queries of g (union of their ranges), a sanity metric used in tests.
func Coverage(g Generator, q int, n int64) float64 {
	g.Reset()
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, q)
	for i := 0; i < q; i++ {
		lo, hi := g.Next()
		ivs = append(ivs, iv{lo, hi})
	}
	g.Reset()
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, curLo, curHi int64
	curLo, curHi = -1, -1
	for _, v := range ivs {
		if v.lo > curHi {
			covered += curHi - curLo
			curLo, curHi = v.lo, v.hi
		} else if v.hi > curHi {
			curHi = v.hi
		}
	}
	covered += curHi - curLo
	if curLo == -1 {
		covered = 0
	}
	return float64(covered) / float64(n)
}
