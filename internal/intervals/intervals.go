// Package intervals implements a set of disjoint half-open int64 intervals
// with union and complement-within-a-range queries.
//
// Two layers build on it: the adaptive indexing hybrids
// (internal/hybrids) track which value ranges have already been merged
// out of the source partitions into the final store, and the facade's
// predicate algebra (Predicate.Or in the root package) normalizes
// disjunctions into a canonical sorted, coalesced multi-range form —
// which is why Add merges adjacent intervals, not just overlapping ones.
package intervals

import "sort"

type iv struct{ lo, hi int64 }

// Set is a set of values represented as sorted, disjoint, non-adjacent
// half-open intervals. The zero value is an empty set.
type Set struct {
	ivs []iv
}

// Len returns the number of disjoint intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// Total returns the total number of values covered.
func (s *Set) Total() int64 {
	var t int64
	for _, v := range s.ivs {
		t += v.hi - v.lo
	}
	return t
}

// Add unions [lo, hi) into the set. Empty or inverted ranges are ignored.
func (s *Set) Add(lo, hi int64) {
	if lo >= hi {
		return
	}
	// Find the first interval ending at or after lo (a candidate for
	// merging; adjacency counts as overlap since intervals are half-open).
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi >= lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].lo <= hi {
		if s.ivs[j].lo < lo {
			lo = s.ivs[j].lo
		}
		if s.ivs[j].hi > hi {
			hi = s.ivs[j].hi
		}
		j++
	}
	merged := iv{lo, hi}
	out := append(s.ivs[:i:i], merged)
	s.ivs = append(out, s.ivs[j:]...)
}

// Covered reports whether every value of [lo, hi) is in the set.
func (s *Set) Covered(lo, hi int64) bool {
	if lo >= hi {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi > lo })
	return i < len(s.ivs) && s.ivs[i].lo <= lo && hi <= s.ivs[i].hi
}

// Missing returns the sub-ranges of [lo, hi) not present in the set, in
// increasing order.
func (s *Set) Missing(lo, hi int64) [][2]int64 {
	if lo >= hi {
		return nil
	}
	var out [][2]int64
	cur := lo
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi > lo })
	for ; i < len(s.ivs) && s.ivs[i].lo < hi; i++ {
		if s.ivs[i].lo > cur {
			out = append(out, [2]int64{cur, s.ivs[i].lo})
		}
		if s.ivs[i].hi > cur {
			cur = s.ivs[i].hi
		}
	}
	if cur < hi {
		out = append(out, [2]int64{cur, hi})
	}
	return out
}

// Each calls fn for every interval in increasing order.
func (s *Set) Each(fn func(lo, hi int64) bool) {
	for _, v := range s.ivs {
		if !fn(v.lo, v.hi) {
			return
		}
	}
}
