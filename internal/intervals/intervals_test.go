package intervals

import (
	"testing"
	"testing/quick"
)

// refSet is a brute-force boolean-array reference over a small domain.
type refSet struct {
	in []bool
}

func newRef(n int) *refSet { return &refSet{in: make([]bool, n)} }

func (r *refSet) add(lo, hi int64) {
	for i := max64(lo, 0); i < min64(hi, int64(len(r.in))); i++ {
		r.in[i] = true
	}
}

func (r *refSet) covered(lo, hi int64) bool {
	for i := lo; i < hi; i++ {
		if i < 0 || i >= int64(len(r.in)) || !r.in[i] {
			return false
		}
	}
	return true
}

func (r *refSet) missing(lo, hi int64) [][2]int64 {
	var out [][2]int64
	i := lo
	for i < hi {
		if i >= 0 && i < int64(len(r.in)) && r.in[i] {
			i++
			continue
		}
		j := i
		for j < hi && !(j >= 0 && j < int64(len(r.in)) && r.in[j]) {
			j++
		}
		out = append(out, [2]int64{i, j})
		i = j
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestAddAndCoveredBasics(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Covered(10, 20) || !s.Covered(12, 18) || s.Covered(10, 21) || s.Covered(25, 26) {
		t.Fatal("basic coverage wrong")
	}
	if s.Len() != 2 || s.Total() != 20 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
	// Bridge the gap.
	s.Add(20, 30)
	if s.Len() != 1 || !s.Covered(10, 40) {
		t.Fatalf("merge across adjacency failed: len=%d", s.Len())
	}
}

func TestAddOverlapVariants(t *testing.T) {
	cases := []struct {
		adds  [][2]int64
		len   int
		total int64
	}{
		{[][2]int64{{0, 10}, {5, 15}}, 1, 15},              // right overlap
		{[][2]int64{{5, 15}, {0, 10}}, 1, 15},              // left overlap
		{[][2]int64{{0, 10}, {2, 8}}, 1, 10},               // contained
		{[][2]int64{{2, 8}, {0, 10}}, 1, 10},               // containing
		{[][2]int64{{0, 5}, {10, 15}, {4, 11}}, 1, 15},     // spanning two
		{[][2]int64{{0, 5}, {5, 10}}, 1, 10},               // adjacent
		{[][2]int64{{0, 5}, {6, 10}}, 2, 9},                // gap of one
		{[][2]int64{{3, 3}, {5, 4}}, 0, 0},                 // empty/inverted
		{[][2]int64{{0, 1}, {2, 3}, {4, 5}, {0, 5}}, 1, 5}, // swallow all
	}
	for i, c := range cases {
		var s Set
		for _, a := range c.adds {
			s.Add(a[0], a[1])
		}
		if s.Len() != c.len || s.Total() != c.total {
			t.Errorf("case %d: len=%d total=%d, want %d/%d", i, s.Len(), s.Total(), c.len, c.total)
		}
	}
}

func TestMissing(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	got := s.Missing(5, 45)
	want := [][2]int64{{5, 10}, {20, 30}, {40, 45}}
	if len(got) != len(want) {
		t.Fatalf("missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing = %v, want %v", got, want)
		}
	}
	if m := s.Missing(12, 18); m != nil {
		t.Fatalf("missing inside covered = %v", m)
	}
	if m := s.Missing(18, 18); m != nil {
		t.Fatalf("missing of empty range = %v", m)
	}
}

func TestAgainstReference(t *testing.T) {
	f := func(ops [][2]uint8, qlo, qhi uint8) bool {
		const n = 256
		var s Set
		ref := newRef(n)
		for _, op := range ops {
			lo, hi := int64(op[0]), int64(op[1])
			s.Add(lo, hi)
			ref.add(lo, hi)
		}
		lo, hi := int64(qlo), int64(qhi)
		if s.Covered(lo, hi) != ref.covered(lo, hi) {
			return false
		}
		gm := s.Missing(lo, hi)
		rm := ref.missing(lo, hi)
		if len(gm) != len(rm) {
			return false
		}
		for i := range gm {
			if gm[i] != rm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	var s Set
	s.Add(30, 40)
	s.Add(10, 20)
	s.Add(50, 60)
	var seen [][2]int64
	s.Each(func(lo, hi int64) bool {
		seen = append(seen, [2]int64{lo, hi})
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != [2]int64{10, 20} || seen[1] != [2]int64{30, 40} {
		t.Fatalf("Each visited %v", seen)
	}
}

func TestInvariantsAfterManyAdds(t *testing.T) {
	f := func(ops [][2]uint16) bool {
		var s Set
		for _, op := range ops {
			lo, hi := int64(op[0]), int64(op[1])
			s.Add(lo, hi)
		}
		// Invariant: sorted, disjoint, non-adjacent, non-empty.
		prevHi := int64(-1 << 62)
		ok := true
		s.Each(func(lo, hi int64) bool {
			if lo >= hi || lo <= prevHi {
				ok = false
				return false
			}
			prevHi = hi
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
