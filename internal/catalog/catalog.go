// Package catalog is the multi-tenant serving layer: a set of named
// tables, each one an independent server.Server over its own crackdb.DB,
// published behind a single HTTP surface.
//
//	GET /v1/tables              — list every table with its identity facts
//	GET /v1/tables/{name}       — one table's identity facts
//	/v1/tables/{name}/{rest...} — dispatch into the named table's server
//	                              with the path rewritten to /v1/{rest}
//	                              ("healthz" and "debug/..." keep their
//	                              roots), so every single-table endpoint —
//	                              query, insert, delete, snapshot, stats,
//	                              restore — exists per table unchanged
//	GET /healthz                — catalog-level readiness: every table's
//	                              status in one probe
//
// Tenant isolation is by construction, not bookkeeping: each table owns
// its DB, its admission limit (server.Config.MaxInFlight per table), its
// snapshot destination, and its serial lock when Single-mode. A tenant
// saturating its admission slots gets its own 429s; neighbors keep their
// slots. The catalog adds no locks on the data plane — dispatch is a map
// lookup and a path rewrite.
//
// When Config.AuthToken is set the catalog enforces bearer auth for
// everything except GET /healthz, mirroring server semantics. Per-table
// servers should then be constructed without their own AuthToken — auth
// is a property of the shared listener, not of each tenant.
package catalog

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/server"
)

// Config carries the catalog-level knobs.
type Config struct {
	// AuthToken, when non-empty, requires every request except GET
	// /healthz to carry "Authorization: Bearer <token>" (401 otherwise).
	AuthToken string
}

// Catalog routes table-scoped requests to named per-table servers.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*server.Server

	mux       *http.ServeMux
	authToken string
}

// New builds an empty catalog; register tables with Add before serving.
func New(cfg Config) *Catalog {
	c := &Catalog{
		tables:    make(map[string]*server.Server),
		mux:       http.NewServeMux(),
		authToken: cfg.AuthToken,
	}
	c.mux.HandleFunc("GET /v1/tables", c.handleList)
	c.mux.HandleFunc("GET /v1/tables/{name}", c.handleDescribe)
	c.mux.HandleFunc("/v1/tables/{name}/{rest...}", c.handleDispatch)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	return c
}

// Add registers srv as table name. Names become URL path segments, so
// they are restricted to letters, digits, '.', '_' and '-'; duplicates
// are rejected. The catalog does not own the server's DB — the caller
// closes DBs after the HTTP server has drained.
func (c *Catalog) Add(name string, srv *server.Server) error {
	if err := ValidName(name); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", name)
	}
	c.tables[name] = srv
	return nil
}

// ValidName reports whether name can be a table name: non-empty, at most
// 128 bytes, letters, digits, '.', '_' and '-' only. This keeps names
// safe as both URL path segments and snapshot-store key segments.
func ValidName(name string) error {
	if name == "" {
		return fmt.Errorf("catalog: empty table name")
	}
	if len(name) > 128 {
		return fmt.Errorf("catalog: table name longer than 128 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("catalog: table name %q: only letters, digits, '.', '_', '-' allowed", name)
		}
	}
	return nil
}

// Table returns the named table's server, if registered.
func (c *Catalog) Table(name string) (*server.Server, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	srv, ok := c.tables[name]
	return srv, ok
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler returns the catalog's HTTP handler, wrapped with bearer-token
// enforcement when Config.AuthToken is set (GET /healthz stays open for
// unauthenticated probes).
func (c *Catalog) Handler() http.Handler {
	if c.authToken == "" {
		return c.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
			c.mux.ServeHTTP(w, r)
			return
		}
		const prefix = "Bearer "
		auth := r.Header.Get("Authorization")
		if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) ||
			subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(c.authToken)) != 1 {
			writeJSON(w, http.StatusUnauthorized, server.ErrorResponse{
				Code:  "unauthorized",
				Error: "missing or invalid bearer token (Authorization: Bearer ...)",
			})
			return
		}
		c.mux.ServeHTTP(w, r)
	})
}

// ListResponse is the body of GET /v1/tables.
type ListResponse struct {
	Tables []server.TableInfo `json:"tables"`
}

func (c *Catalog) handleList(w http.ResponseWriter, r *http.Request) {
	infos := c.describeAll()
	writeJSON(w, http.StatusOK, ListResponse{Tables: infos})
}

func (c *Catalog) describeAll() []server.TableInfo {
	names := c.Names()
	infos := make([]server.TableInfo, 0, len(names))
	for _, name := range names {
		srv, ok := c.Table(name)
		if !ok {
			continue
		}
		info := srv.Describe()
		info.Name = name
		infos = append(infos, info)
	}
	return infos
}

func (c *Catalog) handleDescribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	srv, ok := c.Table(name)
	if !ok {
		writeUnknownTable(w, name)
		return
	}
	info := srv.Describe()
	info.Name = name
	writeJSON(w, http.StatusOK, info)
}

// handleDispatch forwards /v1/tables/{name}/{rest...} into the named
// table's server with the table prefix stripped: rest "query" becomes
// /v1/query, "healthz" becomes /healthz, "debug/metrics" stays rooted.
// The request context, body, method and query string pass through
// untouched, so per-table admission, cancellation and error mapping all
// behave exactly as on a single-table server.
func (c *Catalog) handleDispatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	srv, ok := c.Table(name)
	if !ok {
		writeUnknownTable(w, name)
		return
	}
	rest := r.PathValue("rest")
	r2 := r.Clone(r.Context())
	switch {
	case rest == "healthz":
		r2.URL.Path = "/healthz"
	case strings.HasPrefix(rest, "debug/"):
		r2.URL.Path = "/" + rest
	default:
		r2.URL.Path = "/v1/" + rest
	}
	r2.URL.RawPath = ""
	srv.Handler().ServeHTTP(w, r2)
}

// HealthResponse is the body of the catalog's GET /healthz: one row per
// table, so a single probe answers for the whole tenancy.
type HealthResponse struct {
	Status string             `json:"status"`
	Tables []server.TableInfo `json:"tables"`
}

func (c *Catalog) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Tables: c.describeAll()})
}

func writeUnknownTable(w http.ResponseWriter, name string) {
	writeJSON(w, http.StatusNotFound, server.ErrorResponse{
		Code:  "unknown_table",
		Error: fmt.Sprintf("unknown table %q (GET /v1/tables lists the catalog)", name),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
