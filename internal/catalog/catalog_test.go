package catalog

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	crackdb "repro"
	"repro/internal/server"
)

// newCatalog builds the two-tenant fixture the round-trip tests share: a
// single-column "users" table and a two-column, two-shard "orders" table,
// each saving to its own key in the shared store. warm=true rebuilds both
// from the store instead of from source data.
func newCatalog(t *testing.T, store crackdb.SnapshotStore, warm bool) (*Catalog, *httptest.Server) {
	t.Helper()
	type spec struct {
		name string
		open func() (*crackdb.DB, error)
		rows int64
	}
	specs := []spec{
		{"users", func() (*crackdb.DB, error) {
			return crackdb.Open(crackdb.MakeData(4096, 1), crackdb.DD1R, crackdb.WithSeed(1))
		}, 4096},
		{"orders", func() (*crackdb.DB, error) {
			return crackdb.OpenTable(map[string][]int64{
				"amount": crackdb.MakeData(2048, 2),
				"ts":     crackdb.MakeData(2048, 3),
			}, crackdb.DD1R, crackdb.WithSeed(2), crackdb.WithConcurrency(crackdb.Sharded(2)))
		}, 2048},
	}
	cat := New(Config{AuthToken: "s3cret"})
	for _, sp := range specs {
		key := "tables/" + sp.name + ".crks"
		var (
			db  *crackdb.DB
			err error
		)
		if warm {
			db, err = crackdb.OpenSnapshotFrom(store, key, crackdb.DD1R, crackdb.WithSeed(9))
		} else {
			db, err = sp.open()
		}
		if err != nil {
			t.Fatalf("open %s (warm=%v): %v", sp.name, warm, err)
		}
		t.Cleanup(func() { db.Close() })
		srv := server.New(db, server.Config{
			Info:          server.Info{Rows: sp.rows, Algorithm: crackdb.DD1R, Permutation: true},
			MaxInFlight:   16,
			SnapshotStore: store,
			SnapshotKey:   key,
			Restored:      warm,
		})
		if err := cat.Add(sp.name, srv); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(cat.Handler())
	t.Cleanup(ts.Close)
	return cat, ts
}

// roundTrip issues one authed request against the catalog listener and
// decodes the JSON response, returning the status code.
func roundTrip(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(enc)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestCatalogRoundTrip drives the whole tentpole through the HTTP
// surface: two tables (one of them sharded) behind one listener, scoped
// queries with closed-form oracles, column-scoped writes, snapshots into
// the shared store, and a warm rebuild of the entire catalog from that
// store that must still answer correctly — pending writes included.
func TestCatalogRoundTrip(t *testing.T) {
	ctx := context.Background()
	store := crackdb.NewMemSnapshotStore()
	_, ts := newCatalog(t, store, false)

	// Listing and describe: both tables visible, sorted, with facts.
	var list ListResponse
	if st := roundTrip(t, http.MethodGet, ts.URL+"/v1/tables", nil, &list); st != http.StatusOK {
		t.Fatalf("list: status %d", st)
	}
	if len(list.Tables) != 2 || list.Tables[0].Name != "orders" || list.Tables[1].Name != "users" {
		t.Fatalf("list = %+v, want sorted [orders users]", list.Tables)
	}
	var info server.TableInfo
	if st := roundTrip(t, http.MethodGet, ts.URL+"/v1/tables/users", nil, &info); st != http.StatusOK {
		t.Fatalf("describe: status %d", st)
	}
	if info.Name != "users" || info.Rows != 4096 {
		t.Fatalf("describe users = %+v", info)
	}

	// Unknown table: stable 404 with a machine-readable code.
	var eresp server.ErrorResponse
	if st := roundTrip(t, http.MethodPost, ts.URL+"/v1/tables/nope/query", server.QueryRequest{}, &eresp); st != http.StatusNotFound || eresp.Code != "unknown_table" {
		t.Fatalf("unknown table: status %d code %q", st, eresp.Code)
	}

	// The server.Client speaks to one table via WithTable — the same
	// client the load generator uses, so the rewrite is what CI exercises.
	users := server.NewClient(ts.URL, nil, server.WithToken("s3cret"), server.WithTable("users"))
	orders := server.NewClient(ts.URL, nil, server.WithToken("s3cret"), server.WithTable("orders"))

	// users holds a permutation of [0, 4096): closed-form answers.
	res, err := users.Aggregate(ctx, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 || res.Sum != 14950 {
		t.Fatalf("users [100,200): count %d sum %d, want 100/14950", res.Count, res.Sum)
	}

	// orders needs column scope; unscoped writes must be refused, not
	// guessed.
	var qresp server.QueryResponse
	st := roundTrip(t, http.MethodPost, ts.URL+"/v1/tables/orders/query",
		server.QueryRequest{QueryItem: server.QueryItem{Lo: 0, Hi: 100, Col: "amount"}, Aggregate: true}, &qresp)
	if st != http.StatusOK || len(qresp.Results) != 1 {
		t.Fatalf("orders scoped query: status %d resp %+v", st, qresp)
	}
	if r := qresp.Results[0]; r.Count != 100 || r.Sum != 4950 {
		t.Fatalf("orders amount [0,100): count %d sum %d, want 100/4950", r.Count, r.Sum)
	}
	v := int64(5000)
	if st := roundTrip(t, http.MethodPost, ts.URL+"/v1/tables/orders/insert",
		server.UpdateRequest{Value: &v}, &eresp); st != http.StatusBadRequest || eresp.Code != "unknown_column" {
		t.Fatalf("unscoped insert on 2-col table: status %d code %q", st, eresp.Code)
	}
	var uresp server.UpdateResponse
	if st := roundTrip(t, http.MethodPost, ts.URL+"/v1/tables/orders/insert",
		server.UpdateRequest{Value: &v, Col: "amount"}, &uresp); st != http.StatusOK || uresp.Accepted != 1 {
		t.Fatalf("scoped insert: status %d resp %+v", st, uresp)
	}
	if _, err := users.Insert(ctx, 4103); err != nil {
		t.Fatal(err)
	}

	// Per-table health through the dispatch rewrite: healthz keeps its
	// root, debug/metrics stays rooted too.
	h, err := users.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != 4096 || h.PendingUpdates == 0 || h.Restored {
		t.Fatalf("users health = %+v, want 4096 rows, pending > 0, cold", h)
	}
	if st := roundTrip(t, http.MethodGet, ts.URL+"/v1/tables/users/debug/metrics", nil, nil); st != http.StatusOK {
		t.Fatalf("debug/metrics via dispatch: status %d", st)
	}

	// Snapshot both tables into the shared store. Pending writes ride
	// along in the manifest (non-strict capture).
	for name, c := range map[string]*server.Client{"users": users, "orders": orders} {
		sresp, err := c.Snapshot(ctx, false)
		if err != nil {
			t.Fatalf("snapshot %s: %v", name, err)
		}
		if want := "tables/" + name + ".crks"; sresp.Path != want {
			t.Fatalf("snapshot %s landed at %q, want store key %q", name, sresp.Path, want)
		}
		if sresp.Parts == 0 {
			t.Fatalf("snapshot %s: zero parts", name)
		}
	}

	// Rebuild the whole catalog warm from the store and re-verify: the
	// oracle answers must hold and the pending inserts must have survived
	// the round trip.
	_, ts2 := newCatalog(t, store, true)
	users2 := server.NewClient(ts2.URL, nil, server.WithToken("s3cret"), server.WithTable("users"))
	h2, err := users2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Restored || h2.Pieces < 2 {
		t.Fatalf("warm users health = %+v, want restored with refined pieces", h2)
	}
	res, err = users2.Aggregate(ctx, 4096, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Sum != 4103 {
		t.Fatalf("warm users [4096,5000): count %d sum %d, want the surviving insert 1/4103", res.Count, res.Sum)
	}
	res, err = users2.Aggregate(ctx, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 || res.Sum != 14950 {
		t.Fatalf("warm users [100,200): count %d sum %d, want 100/14950", res.Count, res.Sum)
	}
	var qresp2 server.QueryResponse
	st = roundTrip(t, http.MethodPost, ts2.URL+"/v1/tables/orders/query",
		server.QueryRequest{Queries: []server.QueryItem{
			{Lo: 0, Hi: 100, Col: "amount"},
			{Lo: 4000, Hi: 6000, Col: "amount"},
			{Lo: 0, Hi: 2048, Col: "ts"},
		}, Aggregate: true}, &qresp2)
	if st != http.StatusOK || len(qresp2.Results) != 3 {
		t.Fatalf("warm orders batch: status %d resp %+v", st, qresp2)
	}
	if r := qresp2.Results[0]; r.Count != 100 || r.Sum != 4950 {
		t.Fatalf("warm orders amount [0,100): %+v", r)
	}
	if r := qresp2.Results[1]; r.Count != 1 || r.Sum != 5000 {
		t.Fatalf("warm orders amount [4000,6000): %+v, want the surviving insert", r)
	}
	if r := qresp2.Results[2]; r.Count != 2048 {
		t.Fatalf("warm orders ts full scan: %+v, want 2048 rows", r)
	}
}

// TestCatalogAuth pins the catalog-level bearer gate: everything except
// GET /healthz requires the token, including dispatched per-table paths.
func TestCatalogAuth(t *testing.T) {
	store := crackdb.NewMemSnapshotStore()
	_, ts := newCatalog(t, store, false)
	for _, path := range []string{"/v1/tables", "/v1/tables/users", "/v1/tables/users/stats", "/v1/tables/users/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("GET %s without token: status %d, want 401", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz open probe: status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Tables) != 2 {
		t.Fatalf("catalog health = %+v, want ok with 2 tables", h)
	}
}

// TestCatalogNames pins the name grammar shared by URL segments and
// store keys.
func TestCatalogNames(t *testing.T) {
	for _, ok := range []string{"users", "Users-2", "a.b_c"} {
		if err := ValidName(ok); err != nil {
			t.Errorf("ValidName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "a/b", "a b", "..%2f", string(make([]byte, 200))} {
		if err := ValidName(bad); err == nil {
			t.Errorf("ValidName(%q) = nil, want error", bad)
		}
	}
	cat := New(Config{})
	srv := &server.Server{}
	if err := cat.Add("t", srv); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("t", srv); err == nil {
		t.Fatal("duplicate Add accepted")
	}
}
