package table

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/exec"
)

// Shared is a goroutine-safe view of a Table for value selections: every
// selection column's adaptive index runs behind its own exec.Executor, so
// queries on different columns proceed fully in parallel (they share no
// physical state — cracking is per attribute, paper §2) and queries on the
// same column get the executor's adaptive read/write locking. The wrapper
// assumes ownership of the Table; the single-threaded projection paths
// (SelectProject, SelectProjectSideways) must not be used concurrently
// with it.
type Shared struct {
	t       *Table
	mu      sync.Mutex // guards the execs map only (cheap, never held during a build)
	buildMu sync.Mutex // serializes lazy index construction on the shared Table
	execs   map[string]*colExec
}

// colExec is one column's executor slot; once gates the O(rows) lazy
// build so queries on other (already-built) columns never wait for it.
// x is atomic because Stats peeks at slots without entering the once.
type colExec struct {
	once sync.Once
	x    atomic.Pointer[exec.Executor]
	err  error // read only after once.Do returns
}

// NewShared wraps t for concurrent use.
func NewShared(t *Table) *Shared {
	return &Shared{t: t, execs: make(map[string]*colExec)}
}

// Rows returns the number of rows.
func (s *Shared) Rows() int { return s.t.Rows() }

// Columns returns the column names in deterministic order.
func (s *Shared) Columns() []string { return s.t.Columns() }

// executor returns (building lazily) the adaptive executor on column sel.
// The map mutex is held only for the slot lookup; the index build itself
// runs under buildMu (the Table's lazy-build state is shared across
// columns), so concurrent builds of different columns serialize with each
// other but never stall queries on columns that already have executors.
func (s *Shared) executor(sel string) (*exec.Executor, error) {
	// Reject unknown columns before touching the slot map: caller-supplied
	// bad names must not grow the map without bound on a serving handle.
	if _, ok := s.t.base[sel]; !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, sel)
	}
	s.mu.Lock()
	ce := s.execs[sel]
	if ce == nil {
		ce = &colExec{}
		s.execs[sel] = ce
	}
	s.mu.Unlock()
	ce.once.Do(func() {
		s.buildMu.Lock()
		defer s.buildMu.Unlock()
		si, err := s.t.index(sel)
		if err != nil {
			ce.err = err
			return
		}
		ce.x.Store(exec.New(si.ix))
	})
	return ce.x.Load(), ce.err
}

// Query returns the values of column sel in [lo, hi) as an owned slice,
// adapting sel's index as a side effect; converged queries run in parallel
// under the column executor's shared lock.
func (s *Shared) Query(ctx context.Context, sel string, lo, hi int64) ([]int64, error) {
	x, err := s.executor(sel)
	if err != nil {
		return nil, err
	}
	return x.QueryCtx(ctx, lo, hi)
}

// QueryAggregate returns (count, sum) over column sel in [lo, hi).
func (s *Shared) QueryAggregate(ctx context.Context, sel string, lo, hi int64) (count int, sum int64, err error) {
	x, err := s.executor(sel)
	if err != nil {
		return 0, 0, err
	}
	return x.QueryAggregateCtx(ctx, lo, hi)
}

// QueryBatch answers many ranges over column sel, one owned slice per
// range in input order, in at most two lock acquisitions on the column.
func (s *Shared) QueryBatch(ctx context.Context, sel string, ranges []exec.Range) ([][]int64, error) {
	x, err := s.executor(sel)
	if err != nil {
		return nil, err
	}
	return x.QueryBatchCtx(ctx, ranges)
}

// Stats aggregates physical-cost counters across the column executors.
// Columns never queried through the wrapper cost, and report, nothing.
func (s *Shared) Stats() core.Stats {
	s.mu.Lock()
	execs := make([]*exec.Executor, 0, len(s.execs))
	for _, ce := range s.execs {
		if x := ce.x.Load(); x != nil {
			execs = append(execs, x)
		}
	}
	s.mu.Unlock()
	var agg core.Stats
	for _, x := range execs {
		st := x.Stats()
		agg.Queries += st.Queries
		agg.Touched += st.Touched
		agg.Swaps += st.Swaps
		agg.Cracks += st.Cracks
		agg.Pieces += st.Pieces
	}
	return agg
}
