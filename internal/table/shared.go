package table

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/exec"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/updates"
)

// Shared is a goroutine-safe view of a Table for value selections and
// per-column writes: every selection column's adaptive index runs behind
// its own concurrent backend, so queries on different columns proceed
// fully in parallel (they share no physical state — cracking is per
// attribute, paper §2) and queries on the same column get the backend's
// adaptive read/write locking. The backend is a single exec.Executor per
// column by default, or an exec.Sharded (k range-partitioned executors)
// per column when built with NewSharded — the table analogue of the
// facade's Sharded(k) single-column mode. The wrapper assumes ownership
// of the Table; the single-threaded projection paths (SelectProject,
// SelectProjectSideways) must not be used concurrently with it.
type Shared struct {
	t       *Table
	shards  int        // 0: one executor per column; k>0: k shards per column
	mu      sync.Mutex // guards the execs map only (cheap, never held during a build)
	buildMu sync.Mutex // serializes lazy index construction on the shared Table
	execs   map[string]*colExec

	// Group commit: when enabled (before first use), every column backend
	// gets its own write batcher, created with the backend.
	groupOn  bool
	groupOpt exec.BatcherOptions
}

// colBackend is one built column: the concurrent query/write surface plus
// its group-commit batcher (nil unless group commit is on).
type colBackend struct {
	b     backend
	sh    *exec.Sharded  // non-nil iff the backend is sharded
	x     *exec.Executor // non-nil iff the backend is a single executor
	batch *exec.Batcher
}

// backend is the per-column concurrent surface both exec.Executor and
// exec.Sharded provide.
type backend interface {
	QueryCtx(ctx context.Context, a, b int64) ([]int64, error)
	QueryAggregateCtx(ctx context.Context, a, b int64) (count int, sum int64, err error)
	QueryBatchCtx(ctx context.Context, ranges []exec.Range) ([][]int64, error)
	ApplyOps(ops []exec.Op) (lockWait, apply time.Duration, err error)
	Pending() int
	Stats() core.Stats
	PathStats() (reads, writes int64)
}

// colExec is one column's backend slot; once gates the O(rows) lazy
// build so queries on other (already-built) columns never wait for it.
// v is atomic because Stats peeks at slots without entering the once.
type colExec struct {
	once sync.Once
	v    atomic.Pointer[colBackend]
	err  error // read only after once.Do returns
}

// NewShared wraps t for concurrent use, one executor per column.
func NewShared(t *Table) *Shared {
	return &Shared{t: t, execs: make(map[string]*colExec)}
}

// NewSharded wraps t for concurrent use with k range-partitioned
// executors per column: disjoint-range queries and writes on the same
// column proceed in parallel, exactly as in the facade's single-column
// Sharded(k) mode. Row ids are not tracked (shard-local ids cannot
// reconstruct across columns), so the projection paths reject sharded
// columns once built.
func NewSharded(t *Table, k int) *Shared {
	if k < 1 {
		k = 1
	}
	if rows := t.Rows(); k > rows && rows > 0 {
		k = rows
	}
	return &Shared{t: t, shards: k, execs: make(map[string]*colExec)}
}

// EnableGroupCommit turns on per-column write batching: every column
// backend built after this call owns an exec.Batcher, so concurrent
// writers to the same column coalesce into one exclusive-lock
// acquisition. Must be called before the first query or write.
func (s *Shared) EnableGroupCommit(opt exec.BatcherOptions) {
	s.groupOn = true
	s.groupOpt = opt
}

// Rows returns the number of rows.
func (s *Shared) Rows() int { return s.t.Rows() }

// Columns returns the column names in deterministic order.
func (s *Shared) Columns() []string { return s.t.Columns() }

// Sharded reports the per-column shard count (0 when each column runs a
// single executor).
func (s *Shared) Sharded() int { return s.shards }

// backend returns (building lazily) the concurrent backend on column sel.
// The map mutex is held only for the slot lookup; the build itself runs
// under buildMu (the Table's lazy-build state is shared across columns),
// so concurrent builds of different columns serialize with each other but
// never stall queries on columns that already have backends.
func (s *Shared) backend(sel string) (*colBackend, error) {
	// Reject unknown columns before touching the slot map: caller-supplied
	// bad names must not grow the map without bound on a serving handle.
	if _, ok := s.t.base[sel]; !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, sel)
	}
	s.mu.Lock()
	ce := s.execs[sel]
	if ce == nil {
		ce = &colExec{}
		s.execs[sel] = ce
	}
	s.mu.Unlock()
	ce.once.Do(func() {
		s.buildMu.Lock()
		defer s.buildMu.Unlock()
		cb, err := s.buildColumn(sel)
		if err != nil {
			ce.err = err
			return
		}
		ce.v.Store(cb)
	})
	return ce.v.Load(), ce.err
}

// buildColumn constructs the backend for one column: an updates-wrapped
// executor (or a k-sharded executor set), resuming from the column's
// restore seed when the table came from a snapshot.
func (s *Shared) buildColumn(sel string) (*colBackend, error) {
	cb := &colBackend{}
	if s.shards > 0 {
		sh, err := s.shardedColumn(sel)
		if err != nil {
			return nil, err
		}
		cb.b, cb.sh = sh, sh
	} else {
		si, err := s.t.index(sel)
		if err != nil {
			return nil, err
		}
		var inner exec.Index = si.ix
		if si.u != nil {
			inner = si.u
		}
		x := exec.New(inner)
		cb.b, cb.x = x, x
	}
	if s.groupOn {
		cb.batch = exec.NewBatcher(cb.b, s.groupOpt)
	}
	return cb, nil
}

// shardedColumn builds column sel's k-sharded executor set, from the
// restore seed when present (re-cut along SplitBounds, so cracks and
// pending queues land on the shards owning their ranges) and from the
// base column otherwise.
func (s *Shared) shardedColumn(sel string) (*exec.Sharded, error) {
	opt := s.t.opt
	opt.TrackRowIDs = false
	if st, ok := s.t.seeds[sel]; ok {
		m := snapshot.Manifest{Parts: []snapshot.Part{snapshot.ClampedPart(math.MinInt64, math.MaxInt64, st)}}
		k := s.shards
		if n := len(st.Values); k > n && n > 0 {
			k = n
		}
		if k != len(m.Parts) {
			var err error
			m, err = m.Reshard(m.SplitBounds(k, opt.Seed))
			if err != nil {
				return nil, fmt.Errorf("table: column %q: %w", sel, err)
			}
		}
		states := make([]core.SnapshotState, len(m.Parts))
		bounds := make([]int64, 0, len(m.Parts)-1)
		for i, p := range m.Parts {
			states[i] = p.State
			if i > 0 {
				bounds = append(bounds, p.Lo)
			}
		}
		sh, err := exec.RestoreSharded(states, bounds, s.t.algo, opt)
		if err != nil {
			return nil, fmt.Errorf("table: column %q: %w", sel, err)
		}
		delete(s.t.seeds, sel)
		return sh, nil
	}
	return exec.NewSharded(append([]int64(nil), s.t.base[sel]...), s.t.algo, s.shards, opt)
}

// Query returns the values of column sel in [lo, hi) as an owned slice,
// adapting sel's index as a side effect; converged queries run in parallel
// under the column backend's shared lock.
func (s *Shared) Query(ctx context.Context, sel string, lo, hi int64) ([]int64, error) {
	cb, err := s.backend(sel)
	if err != nil {
		return nil, err
	}
	return cb.b.QueryCtx(ctx, lo, hi)
}

// QueryAggregate returns (count, sum) over column sel in [lo, hi).
func (s *Shared) QueryAggregate(ctx context.Context, sel string, lo, hi int64) (count int, sum int64, err error) {
	cb, err := s.backend(sel)
	if err != nil {
		return 0, 0, err
	}
	return cb.b.QueryAggregateCtx(ctx, lo, hi)
}

// QueryBatch answers many ranges over column sel, one owned slice per
// range in input order, in at most two lock acquisitions on the column.
func (s *Shared) QueryBatch(ctx context.Context, sel string, ranges []exec.Range) ([][]int64, error) {
	cb, err := s.backend(sel)
	if err != nil {
		return nil, err
	}
	return cb.b.QueryBatchCtx(ctx, ranges)
}

// Apply applies a write batch to column sel — through the column's
// group-commit batcher when one is attached (grouped=true; queue/flush
// report time spent waiting for the batch), directly under the column
// lock otherwise. ops follow the facade's batch order (deletes before
// inserts).
func (s *Shared) Apply(ctx context.Context, sel string, ops []exec.Op) (queue, flush, apply time.Duration, grouped bool, err error) {
	cb, err := s.backend(sel)
	if err != nil {
		return 0, 0, 0, false, err
	}
	if cb.batch != nil {
		t, err := cb.batch.Enqueue(ctx, ops)
		return t.Queue, t.Flush, t.Apply, true, err
	}
	lockWait, applied, err := cb.b.ApplyOps(ops)
	return lockWait, 0, applied, false, err
}

// Pending reports queued, not-yet-merged updates across all built column
// backends.
func (s *Shared) Pending() int {
	n := 0
	for _, cb := range s.built() {
		n += cb.b.Pending()
	}
	return n
}

// built returns the currently built column backends (order unspecified).
func (s *Shared) built() []*colBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*colBackend, 0, len(s.execs))
	for _, ce := range s.execs {
		if cb := ce.v.Load(); cb != nil {
			out = append(out, cb)
		}
	}
	return out
}

// builtFor returns column name's backend if built, without building it.
func (s *Shared) builtFor(name string) *colBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ce := s.execs[name]; ce != nil {
		return ce.v.Load()
	}
	return nil
}

// Stats aggregates physical-cost counters across the column backends.
// Columns never queried through the wrapper cost, and report, nothing.
func (s *Shared) Stats() core.Stats {
	var agg core.Stats
	for _, cb := range s.built() {
		st := cb.b.Stats()
		agg.Queries += st.Queries
		agg.Touched += st.Touched
		agg.Swaps += st.Swaps
		agg.Cracks += st.Cracks
		agg.Pieces += st.Pieces
	}
	return agg
}

// PathStats sums fast-path/slow-path read and write counters across the
// built column backends.
func (s *Shared) PathStats() (reads, writes int64) {
	for _, cb := range s.built() {
		r, w := cb.b.PathStats()
		reads += r
		writes += w
	}
	return reads, writes
}

// GroupCommitStats aggregates batcher counters across the built columns;
// ok reports whether group commit is enabled at all.
func (s *Shared) GroupCommitStats() (agg exec.BatcherStats, ok bool) {
	if !s.groupOn {
		return exec.BatcherStats{}, false
	}
	agg.BatchSize = s.groupOpt.BatchSize
	agg.MaxWait = s.groupOpt.MaxWait
	for _, cb := range s.built() {
		if cb.batch == nil {
			continue
		}
		st := cb.batch.Stats()
		agg.Enqueued += st.Enqueued
		agg.Ops += st.Ops
		agg.Flushes += st.Flushes
		agg.MaxBatch = max(agg.MaxBatch, st.MaxBatch)
		agg.QueueNS += st.QueueNS
		agg.FlushNS += st.FlushNS
		agg.ApplyNS += st.ApplyNS
		agg.BatchSize = st.BatchSize
		agg.MaxWait = st.MaxWait
	}
	return agg, true
}

// Close shuts down the per-column group-commit batchers (no-op without
// group commit). In-flight enqueues drain first; later writes fail with
// exec.ErrBatcherClosed.
func (s *Shared) Close() {
	for _, cb := range s.built() {
		if cb.batch != nil {
			cb.batch.Close()
		}
	}
}

// PieceSizes reports current piece sizes column by column, in column-name
// order: built columns from their live cracker indexes (under a drain, so
// sizes are consistent), seeded columns from their restore seed's cracks,
// cold columns as one unbroken piece. buildMu is held throughout so no
// column flips from cold to built mid-walk.
func (s *Shared) PieceSizes() []int {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	var sizes []int
	for _, name := range s.t.names {
		cb := s.builtFor(name)
		switch {
		case cb != nil && cb.x != nil:
			cb.x.Exclusive(func(inner exec.Index) {
				sizes = append(sizes, sizesFromInner(inner)...)
			})
		case cb != nil && cb.sh != nil:
			cb.sh.ExclusiveAll(func(inners []exec.Index) {
				for _, inner := range inners {
					sizes = append(sizes, sizesFromInner(inner)...)
				}
			})
		default:
			if st, ok := s.t.seeds[name]; ok {
				sizes = append(sizes, sizesFromState(st)...)
			} else {
				sizes = append(sizes, len(s.t.base[name]))
			}
		}
	}
	return sizes
}

// sizesFromInner derives piece sizes from a drained engine-backed index.
func sizesFromInner(inner exec.Index) []int {
	acc, ok := inner.(interface{ Engine() *core.Engine })
	if !ok {
		return nil
	}
	e := acc.Engine()
	return stats.SizesFromBounds(e.CrackerIndex().Pieces(e.Column().Len()))
}

// captureInner snapshots a drained engine-backed index: physical state
// plus the update wrapper's pending queues, row ids dropped (table
// snapshots capture per-column value state only).
func captureInner(inner exec.Index, algo string) (core.SnapshotState, error) {
	acc, ok := inner.(interface{ Engine() *core.Engine })
	if !ok {
		return core.SnapshotState{}, fmt.Errorf("table: %s: %w", algo, dberr.ErrSnapshotUnsupported)
	}
	st := acc.Engine().Snapshot()
	st.RowIDs = nil
	if u, ok := inner.(*updates.Index); ok {
		st.PendingInserts, st.PendingDeletes = u.PendingSnapshot()
	}
	return st, nil
}

// Snapshot captures the whole table as a table manifest, column by
// column: built columns drain (queries finish, writes pause) and capture
// their cracked state plus pending queues — one part per shard in sharded
// mode — while cold columns capture base values and seeded columns re-emit
// their seed. Each column's capture is atomic; the cut is per column, not
// cross-column, matching the independence of per-column updates. buildMu
// is held throughout, so a write racing the capture of a still-cold
// column cannot be acknowledged and then missed.
func (s *Shared) Snapshot() (snapshot.Manifest, error) {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	cols := make([]snapshot.TableColumn, 0, len(s.t.names))
	var capErr error
	for _, name := range s.t.names {
		cb := s.builtFor(name)
		var parts []snapshot.Part
		switch {
		case cb != nil && cb.x != nil:
			cb.x.Exclusive(func(inner exec.Index) {
				st, err := captureInner(inner, s.t.algo)
				if err != nil {
					capErr = err
					return
				}
				parts = []snapshot.Part{snapshot.ClampedPart(math.MinInt64, math.MaxInt64, st)}
			})
		case cb != nil && cb.sh != nil:
			cb.sh.ExclusiveAll(func(inners []exec.Index) {
				for i, inner := range inners {
					st, err := captureInner(inner, s.t.algo)
					if err != nil {
						capErr = err
						return
					}
					lo, hi := cb.sh.ShardRange(i)
					parts = append(parts, snapshot.ClampedPart(lo, hi, st))
				}
			})
		default:
			st := s.t.columnState(name)
			parts = []snapshot.Part{snapshot.ClampedPart(math.MinInt64, math.MaxInt64, st)}
		}
		if capErr != nil {
			return snapshot.Manifest{}, capErr
		}
		cols = append(cols, snapshot.TableColumn{Name: name, Parts: parts})
	}
	m := snapshot.Table(cols)
	if err := m.Validate(); err != nil {
		return snapshot.Manifest{}, err
	}
	return m, nil
}
