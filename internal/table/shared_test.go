package table

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/exec"
	"repro/internal/xrand"
)

func TestSharedTableConcurrentColumns(t *testing.T) {
	const n = 20_000
	a := xrand.New(31).Perm(n)
	b := make([]int64, n)
	for i, v := range a {
		b[i] = v * 2
	}
	tbl, err := New(map[string][]int64{"a": a, "b": b}, "dd1r", core.Options{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := NewShared(tbl)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				lo := int64((g*977 + i*131) % (n - 200))
				// Even goroutines hit column a, odd ones column b: both
				// columns crack concurrently, independently.
				if g%2 == 0 {
					vals, err := s.Query(ctx, "a", lo, lo+100)
					if err != nil || len(vals) != 100 {
						errs <- "column a query wrong"
						return
					}
				} else {
					c, sum, err := s.QueryAggregate(ctx, "b", 2*lo, 2*lo+200)
					if err != nil || c != 100 {
						errs <- "column b aggregate wrong"
						return
					}
					var want int64
					for v := 2 * lo; v < 2*lo+200; v += 2 {
						want += v
					}
					if sum != want {
						errs <- "column b sum wrong"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	out, err := s.QueryBatch(ctx, "a", []exec.Range{{Lo: 10, Hi: 20}, {Lo: 500, Hi: 600}})
	if err != nil || len(out[0]) != 10 || len(out[1]) != 100 {
		t.Fatalf("batch: err=%v sizes=(%d,%d)", err, len(out[0]), len(out[1]))
	}
	if s.Stats().Queries == 0 || s.Stats().Cracks == 0 {
		t.Fatal("no work recorded")
	}
	if s.Rows() != n || len(s.Columns()) != 2 {
		t.Fatal("table shape lost")
	}
}

func TestSharedTableErrors(t *testing.T) {
	tbl, err := New(map[string][]int64{"a": {1, 2, 3}}, "crack", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewShared(tbl)
	if _, err := s.Query(context.Background(), "nope", 0, 10); !errors.Is(err, dberr.ErrUnknownColumn) {
		t.Fatalf("unknown column error = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query(ctx, "a", 0, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query error = %v", err)
	}
}
