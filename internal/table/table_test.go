package table

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/xrand"
)

// makeTable builds a three-column table where the relationships between
// columns are checkable: b[i] = a[i]*2, c[i] = -a[i].
func makeTable(t *testing.T, n int, algo string) (*Table, []int64) {
	t.Helper()
	a := xrand.New(1).Perm(n)
	b := make([]int64, n)
	c := make([]int64, n)
	for i, v := range a {
		b[i] = v * 2
		c[i] = -v
	}
	tbl, err := New(map[string][]int64{"a": a, "b": b, "c": c}, algo, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, a
}

func sortedCopy(v []int64) []int64 {
	out := append([]int64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestTableBasics(t *testing.T) {
	tbl, _ := makeTable(t, 1000, "crack")
	if tbl.Rows() != 1000 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	cols := tbl.Columns()
	if len(cols) != 3 || cols[0] != "a" || cols[1] != "b" || cols[2] != "c" {
		t.Fatalf("columns = %v", cols)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "crack", core.Options{}); err == nil {
		t.Fatal("empty table accepted")
	}
	if _, err := New(map[string][]int64{"a": {1, 2}, "b": {1}}, "crack", core.Options{}); err == nil {
		t.Fatal("ragged columns accepted")
	}
	if _, err := New(map[string][]int64{"a": {1}}, "bogus", core.Options{}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestSelectMatchesOracle(t *testing.T) {
	tbl, _ := makeTable(t, 5000, "crack")
	got, err := tbl.Select("a", 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 0, 200)
	for v := int64(100); v < 300; v++ {
		want = append(want, v)
	}
	gs := sortedCopy(got)
	if len(gs) != len(want) {
		t.Fatalf("select returned %d values, want %d", len(gs), len(want))
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Fatalf("select[%d] = %d, want %d", i, gs[i], want[i])
		}
	}
	if _, err := tbl.Select("nope", 0, 1); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSelectProjectRowIDReconstruction(t *testing.T) {
	for _, algo := range []string{"crack", "dd1r", "mdd1r", "pmdd1r-10"} {
		tbl, _ := makeTable(t, 5000, algo)
		rng := xrand.New(9)
		for q := 0; q < 50; q++ {
			lo := rng.Int63n(4800)
			hi := lo + rng.Int63n(200) + 1
			got, err := tbl.SelectProject("a", "b", lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			// b = 2*a, so projecting b over a in [lo,hi) yields exactly
			// {2lo, 2lo+2, ..., 2(hi-1)}.
			gs := sortedCopy(got)
			if int64(len(gs)) != hi-lo {
				t.Fatalf("%s: projected %d values for [%d,%d)", algo, len(gs), lo, hi)
			}
			for i, v := range gs {
				if v != 2*(lo+int64(i)) {
					t.Fatalf("%s: proj[%d] = %d, want %d", algo, i, v, 2*(lo+int64(i)))
				}
			}
		}
	}
}

func TestSelectProjectUnknownColumns(t *testing.T) {
	tbl, _ := makeTable(t, 100, "crack")
	if _, err := tbl.SelectProject("a", "zzz", 0, 10); err == nil {
		t.Fatal("unknown projection column accepted")
	}
	if _, err := tbl.SelectProject("zzz", "b", 0, 10); err == nil {
		t.Fatal("unknown selection column accepted")
	}
}

func TestSelectProjectSideways(t *testing.T) {
	tbl, _ := makeTable(t, 5000, "dd1r")
	rng := xrand.New(11)
	for q := 0; q < 60; q++ {
		lo := rng.Int63n(4800)
		hi := lo + rng.Int63n(150) + 1
		got, err := tbl.SelectProjectSideways("a", "c", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		gs := sortedCopy(got)
		if int64(len(gs)) != hi-lo {
			t.Fatalf("sideways projected %d values for [%d,%d)", len(gs), lo, hi)
		}
		// c = -a, so sorted projection is {-(hi-1), ..., -lo}.
		for i, v := range gs {
			if v != -(hi - 1 - int64(i)) {
				t.Fatalf("sideways proj[%d] = %d, want %d", i, v, -(hi - 1 - int64(i)))
			}
		}
	}
	if tbl.Maps() != 1 {
		t.Fatalf("maps = %d, want 1 (one (a,c) pair)", tbl.Maps())
	}
	// A second pair materializes a second map.
	if _, err := tbl.SelectProjectSideways("a", "b", 10, 20); err != nil {
		t.Fatal(err)
	}
	if tbl.Maps() != 2 {
		t.Fatalf("maps = %d, want 2", tbl.Maps())
	}
	if _, err := tbl.SelectProjectSideways("a", "zzz", 0, 1); err == nil {
		t.Fatal("unknown projection accepted")
	}
}

func TestSidewaysMapConvergence(t *testing.T) {
	// Repeating a query must stop touching tuples: the map has exact
	// cracks for its bounds.
	tbl, _ := makeTable(t, 10000, "crack")
	if _, err := tbl.SelectProjectSideways("a", "b", 2000, 3000); err != nil {
		t.Fatal(err)
	}
	touched := tbl.Stats().Touched
	for i := 0; i < 5; i++ {
		if _, err := tbl.SelectProjectSideways("a", "b", 2000, 3000); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Stats().Touched != touched {
		t.Fatal("repeated sideways query still reorganizes the map")
	}
}

func TestSelectionIndexesIndependentPerAttribute(t *testing.T) {
	// Cracking on a must not touch b's index or base column (attribute-
	// level adaptation, §2).
	tbl, _ := makeTable(t, 2000, "crack")
	if _, err := tbl.Select("a", 100, 200); err != nil {
		t.Fatal(err)
	}
	if len(tbl.indexes) != 1 {
		t.Fatalf("indexes = %d, want 1", len(tbl.indexes))
	}
	if _, err := tbl.Select("b", 100, 200); err != nil {
		t.Fatal(err)
	}
	if len(tbl.indexes) != 2 {
		t.Fatalf("indexes = %d, want 2", len(tbl.indexes))
	}
	// Base columns remain untouched (cracking copies).
	for i, v := range tbl.base["a"] {
		if tbl.base["b"][i] != v*2 {
			t.Fatal("base columns were mutated by cracking")
		}
	}
}

func TestSelectEmptyAndInvertedRanges(t *testing.T) {
	tbl, _ := makeTable(t, 500, "mdd1r")
	for _, q := range [][2]int64{{10, 10}, {20, 10}, {-100, 0}, {500, 600}} {
		got, err := tbl.SelectProject("a", "b", q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("range [%d,%d) returned %d values", q[0], q[1], len(got))
		}
		side, err := tbl.SelectProjectSideways("a", "b", q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(side) != 0 {
			t.Fatalf("sideways range [%d,%d) returned %d values", q[0], q[1], len(side))
		}
	}
}

func TestStatsAggregation(t *testing.T) {
	tbl, _ := makeTable(t, 3000, "crack")
	if s := tbl.Stats(); s.Touched != 0 || s.Queries != 0 {
		t.Fatalf("fresh table stats: %+v", s)
	}
	tbl.Select("a", 10, 20)
	tbl.SelectProjectSideways("a", "b", 30, 40)
	s := tbl.Stats()
	if s.Queries != 1 || s.Touched == 0 || s.Cracks == 0 {
		t.Fatalf("stats after queries: %+v", s)
	}
}
