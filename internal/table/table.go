// Package table implements the multi-column context database cracking
// lives in (paper §2): a column-store table where cracking is applied at
// the attribute level — a query reorganizes only the columns it
// references — and other attributes are reconstructed on demand.
//
// Two reconstruction strategies are provided:
//
//   - Row-id reconstruction: the selection column carries a row-id payload
//     permuted in tandem (column.Column.RowIDs); projected attributes are
//     fetched from their base columns by row id. This is classic late
//     tuple reconstruction, paying one random access per result tuple.
//
//   - Sideways cracking (after Idreos et al. [18], simplified): for an
//     attribute pair (A, B) where queries select on A and project B, a
//     cracker map holds B's values physically aligned with a cracked copy
//     of A — the partition swaps move both attributes together — so
//     projection is a contiguous copy, never random access. Maps are
//     created lazily on first use and refined adaptively like any other
//     cracker column ("pieces of cracker columns are dynamically
//     created ... based on storage restrictions", §2).
//
// Selection uses any core cracking algorithm; the table owns one adaptive
// index per selection attribute plus the lazily built sideways maps.
package table

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cindex"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/updates"
)

// Table is a column-store table: named columns of equal length. It is not
// safe for concurrent use.
type Table struct {
	names   []string
	base    map[string][]int64 // immutable base columns
	rows    int
	algo    string
	opt     core.Options
	indexes map[string]*selIndex      // adaptive index per selection attribute
	maps    map[[2]string]*crackerMap // sideways maps keyed by (sel, proj)

	// seeds holds per-column snapshot states a restored table starts
	// from; index consumes a column's seed on first build. restored
	// marks columns that came from a snapshot: their cracked order no
	// longer matches base order (row ids were dropped at capture), so
	// the projection paths reject them.
	seeds    map[string]core.SnapshotState
	restored map[string]bool
}

// selIndex is the adaptive index on one selection attribute: a cracked
// copy of the attribute with a row-id payload for late reconstruction.
// u is the update-carrying wrapper when the algorithm supports it (nil
// for index kinds without an engine).
type selIndex struct {
	ix core.Index
	e  *core.Engine
	u  *updates.Index
}

// query answers [lo, hi) through the update wrapper when present, so
// pending inserts/deletes merge lazily on first covering read.
func (si *selIndex) query(lo, hi int64) core.Result {
	if si.u != nil {
		return si.u.Query(lo, hi)
	}
	return si.ix.Query(lo, hi)
}

// crackerMap is a sideways map: a copy of the selection attribute cracked
// query-driven, with the projected attribute permuted in tandem.
type crackerMap struct {
	col *column.Column
	idx *cindex.Tree
}

// New creates a table from named columns, all of equal length. algorithm
// selects the cracking flavor for selection indexes (any core spec, e.g.
// "crack", "dd1r", "pmdd1r-10").
func New(cols map[string][]int64, algorithm string, opt core.Options) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: no columns")
	}
	t := &Table{
		base:    make(map[string][]int64, len(cols)),
		algo:    algorithm,
		opt:     opt,
		indexes: make(map[string]*selIndex),
		maps:    make(map[[2]string]*crackerMap),
		rows:    -1,
	}
	for name := range cols {
		t.names = append(t.names, name)
	}
	sort.Strings(t.names)
	for _, name := range t.names {
		vals := cols[name]
		if t.rows == -1 {
			t.rows = len(vals)
		} else if len(vals) != t.rows {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d", name, len(vals), t.rows)
		}
		t.base[name] = vals
	}
	if _, err := core.Build(nil, algorithm, opt); err != nil {
		return nil, err // validate the algorithm spec eagerly
	}
	return t, nil
}

// Restore rebuilds a table from a table manifest's columns: each column
// seeds its adaptive index with the captured state (cracks and pending
// queues included), consumed lazily on the column's first selection.
// Captured states carry no row ids, so the restored table answers every
// per-column selection exactly but rejects the cross-column projection
// paths (SelectProject, SelectProjectSideways) with
// dberr.ErrSnapshotUnsupported.
func Restore(cols []snapshot.TableColumn, algorithm string, opt core.Options) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: no columns")
	}
	t := &Table{
		base:     make(map[string][]int64, len(cols)),
		algo:     algorithm,
		opt:      opt,
		indexes:  make(map[string]*selIndex),
		maps:     make(map[[2]string]*crackerMap),
		seeds:    make(map[string]core.SnapshotState, len(cols)),
		restored: make(map[string]bool, len(cols)),
	}
	for _, c := range cols {
		merged, err := (snapshot.Manifest{Parts: c.Parts}).Merged()
		if err != nil {
			return nil, fmt.Errorf("table: column %q: %w", c.Name, err)
		}
		merged.RowIDs = nil // capture drops them; tolerate hand-built manifests
		t.names = append(t.names, c.Name)
		t.base[c.Name] = merged.Values
		t.seeds[c.Name] = merged
		t.restored[c.Name] = true
		// Columns may hold different counts once per-column updates merged;
		// report the widest. Pending inserts stay out of the count until
		// they merge — the same convention the single-column restore uses.
		if n := len(merged.Values); n > t.rows {
			t.rows = n
		}
	}
	sort.Strings(t.names)
	for i := 1; i < len(t.names); i++ {
		if t.names[i] == t.names[i-1] {
			return nil, fmt.Errorf("table: duplicate column %q", t.names[i])
		}
	}
	if _, err := core.Build(nil, algorithm, opt); err != nil {
		return nil, err // validate the algorithm spec eagerly
	}
	return t, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Columns returns the column names in deterministic (sorted) order.
func (t *Table) Columns() []string { return append([]string(nil), t.names...) }

// Stats aggregates physical-cost counters over all selection indexes and
// sideways maps.
func (t *Table) Stats() core.Stats {
	var s core.Stats
	for _, si := range t.indexes {
		st := si.ix.Stats()
		s.Queries += st.Queries
		s.Touched += st.Touched
		s.Swaps += st.Swaps
		s.Cracks += st.Cracks
		s.Pieces += st.Pieces
	}
	for _, m := range t.maps {
		s.Touched += m.col.Stats.Touched
		s.Swaps += m.col.Stats.Swaps
		s.Cracks += m.idx.Len()
		s.Pieces += m.idx.Len() + 1
	}
	return s
}

// index returns (building lazily) the adaptive index on column sel. A
// restored column consumes its snapshot seed: the index resumes with the
// captured cracks and pending queues instead of rebuilding cold.
func (t *Table) index(sel string) (*selIndex, error) {
	if si, ok := t.indexes[sel]; ok {
		return si, nil
	}
	base, ok := t.base[sel]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, sel)
	}
	var (
		ix  core.Index
		err error
	)
	seed, seeded := t.seeds[sel]
	if seeded {
		// Restored columns carry no row ids (dropped at capture), so do
		// not ask the engine to invent a meaningless fresh set.
		opt := t.opt
		opt.TrackRowIDs = false
		ix, err = core.Restore(seed, t.algo, opt)
		if err == nil {
			delete(t.seeds, sel)
		}
	} else {
		opt := t.opt
		opt.TrackRowIDs = true
		ix, err = core.Build(append([]int64(nil), base...), t.algo, opt)
	}
	if err != nil {
		return nil, err
	}
	acc, ok := ix.(interface{ Engine() *core.Engine })
	if !ok {
		return nil, fmt.Errorf("table: algorithm %q does not expose its engine", t.algo)
	}
	si := &selIndex{ix: ix, e: acc.Engine()}
	if u, ok := updates.Wrap(ix); ok {
		si.u = u
	}
	if seeded && seed.Pending() > 0 {
		if si.u == nil {
			return nil, fmt.Errorf("table: column %q: restore pending updates: %w", sel, dberr.ErrUpdatesUnsupported)
		}
		si.u.SeedPending(seed.PendingInserts, seed.PendingDeletes)
	}
	t.indexes[sel] = si
	return si, nil
}

// Select returns the values of column sel falling in [lo, hi), cracking
// sel's index as a side effect — the single-attribute select the paper's
// experiments run.
func (t *Table) Select(sel string, lo, hi int64) ([]int64, error) {
	si, err := t.index(sel)
	if err != nil {
		return nil, err
	}
	res := si.query(lo, hi)
	return res.Materialize(make([]int64, 0, res.Count())), nil
}

// Apply queues a write batch against column sel: deletes first (matching
// the facade's batch order, so a delete in the same batch annihilates a
// matching queued insert), then inserts. Updates merge lazily on the next
// covering selection; other columns are untouched — cracking, and
// updating, is per attribute.
func (t *Table) Apply(sel string, inserts, deletes []int64) error {
	si, err := t.index(sel)
	if err != nil {
		return err
	}
	if si.u == nil {
		return fmt.Errorf("table: algorithm %q: %w", t.algo, dberr.ErrUpdatesUnsupported)
	}
	si.u.DeleteMany(deletes)
	si.u.InsertMany(inserts)
	return nil
}

// PendingUpdates reports queued, not-yet-merged updates across all column
// indexes.
func (t *Table) PendingUpdates() int {
	n := 0
	for _, si := range t.indexes {
		if si.u != nil {
			n += si.u.Pending()
		}
	}
	return n
}

// SelectProject answers SELECT proj FROM t WHERE lo <= sel AND sel < hi
// with late tuple reconstruction: the selection column is cracked as a
// side effect, and proj is fetched from its base column through the
// row-id payload.
func (t *Table) SelectProject(sel, proj string, lo, hi int64) ([]int64, error) {
	if err := t.projectable(sel, proj); err != nil {
		return nil, err
	}
	base, ok := t.base[proj]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, proj)
	}
	si, err := t.index(sel)
	if err != nil {
		return nil, err
	}
	res := si.ix.Query(lo, hi)
	col := si.e.Column()
	out := make([]int64, 0, res.Count())
	if res.ViewLen() == res.Count() {
		// Pure view: project the contiguous qualifying area by row id.
		for i := res.ViewLo(); i < res.ViewHi(); i++ {
			out = append(out, base[col.RowIDs[i]])
		}
		return out, nil
	}
	// Stochastic variants materialize end pieces without row ids; recover
	// them by scanning the (now partially cracked) end pieces for
	// qualifying values. The middle view still projects contiguously.
	idx := si.e.CrackerIndex()
	plo, _, _ := idx.PieceFor(lo, col.Len())
	_, phi, _ := idx.PieceFor(hi, col.Len())
	if hi <= lo {
		return out, nil
	}
	for i := plo; i < phi; i++ {
		if v := col.Values[i]; lo <= v && v < hi {
			out = append(out, base[col.RowIDs[i]])
		}
	}
	return out, nil
}

// SelectProjectSideways answers the same query through a sideways cracker
// map: the projected attribute physically travels with the selection
// attribute during cracking, so the projection is one contiguous copy.
// The map is built lazily for each (sel, proj) pair and cracked
// query-driven.
func (t *Table) SelectProjectSideways(sel, proj string, lo, hi int64) ([]int64, error) {
	if err := t.projectable(sel, proj); err != nil {
		return nil, err
	}
	m, err := t.sidewaysMap(sel, proj)
	if err != nil {
		return nil, err
	}
	if lo >= hi {
		return nil, nil
	}
	p1 := m.crackBound(lo)
	p2 := m.crackBound(hi)
	return append([]int64(nil), m.col.Payload[p1:p2]...), nil
}

// Maps returns the number of sideways maps materialized so far.
func (t *Table) Maps() int { return len(t.maps) }

func (t *Table) sidewaysMap(sel, proj string) (*crackerMap, error) {
	key := [2]string{sel, proj}
	if m, ok := t.maps[key]; ok {
		return m, nil
	}
	selBase, ok := t.base[sel]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, sel)
	}
	projBase, ok := t.base[proj]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, proj)
	}
	m := &crackerMap{
		col: column.NewWithPayload(
			append([]int64(nil), selBase...),
			append([]int64(nil), projBase...)),
		idx: &cindex.Tree{},
	}
	t.maps[key] = m
	return m, nil
}

// projectable reports whether the cross-column projection paths can
// serve (sel, proj): both reconstruction strategies assume base columns
// aligned row-for-row with the selection index, which restored columns
// (row ids dropped at capture) and written-to columns (updates never
// touch base) no longer guarantee.
func (t *Table) projectable(sel, proj string) error {
	for _, name := range [2]string{sel, proj} {
		if t.restored[name] {
			return fmt.Errorf("table: column %q was restored from a snapshot, projections need row alignment: %w",
				name, dberr.ErrSnapshotUnsupported)
		}
		if si, ok := t.indexes[name]; ok && si.u != nil && (si.u.Pending() > 0 || si.u.Merged() > 0) {
			return fmt.Errorf("table: column %q has updates, projections read the immutable base: %w",
				name, dberr.ErrUpdatesUnsupported)
		}
	}
	return nil
}

// captureState snapshots one built column index: the engine's physical
// state plus the update wrapper's pending queues, with the row-id payload
// dropped — table snapshots capture per-column value state only (see
// snapshot.TableColumn).
func captureState(si *selIndex) core.SnapshotState {
	st := si.e.Snapshot()
	st.RowIDs = nil
	if si.u != nil {
		st.PendingInserts, st.PendingDeletes = si.u.PendingSnapshot()
	}
	return st
}

// columnState returns column name's current snapshot state whether the
// index is built (live engine capture), seeded-but-unbuilt (the unconsumed
// restore seed, cracks intact), or cold (base values, no cracks).
func (t *Table) columnState(name string) core.SnapshotState {
	if si, ok := t.indexes[name]; ok {
		return captureState(si)
	}
	if st, ok := t.seeds[name]; ok {
		return st
	}
	return core.SnapshotState{Values: append([]int64(nil), t.base[name]...)}
}

// Snapshot captures the whole table as a table manifest: one column entry
// per attribute, each holding that column's cracked state and pending
// update queues. Never-queried columns snapshot as their base values with
// no cracks; restored-but-untouched columns re-emit their seed state, so
// adaptation is never lost by a save/load cycle.
func (t *Table) Snapshot() (snapshot.Manifest, error) {
	cols := make([]snapshot.TableColumn, 0, len(t.names))
	for _, name := range t.names {
		st := t.columnState(name)
		cols = append(cols, snapshot.TableColumn{
			Name:  name,
			Parts: []snapshot.Part{snapshot.ClampedPart(math.MinInt64, math.MaxInt64, st)},
		})
	}
	m := snapshot.Table(cols)
	if err := m.Validate(); err != nil {
		return snapshot.Manifest{}, err
	}
	return m, nil
}

// sizesFromState derives piece sizes from a snapshot state's crack set —
// the piece profile the column will report once rebuilt from it.
func sizesFromState(st core.SnapshotState) []int {
	sizes := make([]int, 0, len(st.Cracks)+1)
	prev := 0
	for _, c := range st.Cracks {
		if c.Pos > prev {
			sizes = append(sizes, c.Pos-prev)
			prev = c.Pos
		}
	}
	return append(sizes, len(st.Values)-prev)
}

// PieceSizes reports current piece sizes column by column, in column-name
// order: built columns from their live cracker index, seeded columns from
// the seed's cracks, cold columns as one unbroken piece.
func (t *Table) PieceSizes() []int {
	var sizes []int
	for _, name := range t.names {
		if si, ok := t.indexes[name]; ok {
			sizes = append(sizes, stats.SizesFromBounds(si.e.CrackerIndex().Pieces(si.e.Column().Len()))...)
			continue
		}
		if st, ok := t.seeds[name]; ok {
			sizes = append(sizes, sizesFromState(st)...)
			continue
		}
		sizes = append(sizes, len(t.base[name]))
	}
	return sizes
}

// crackBound cracks the map on v (query-driven), keeping the projected
// values aligned through the column's tandem payload, and returns the
// crack position.
func (m *crackerMap) crackBound(v int64) int {
	lo, hi, exact := m.idx.PieceFor(v, m.col.Len())
	if exact {
		return lo
	}
	p := m.col.CrackInTwo(lo, hi, v)
	m.idx.Insert(v, p)
	return p
}
