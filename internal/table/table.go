// Package table implements the multi-column context database cracking
// lives in (paper §2): a column-store table where cracking is applied at
// the attribute level — a query reorganizes only the columns it
// references — and other attributes are reconstructed on demand.
//
// Two reconstruction strategies are provided:
//
//   - Row-id reconstruction: the selection column carries a row-id payload
//     permuted in tandem (column.Column.RowIDs); projected attributes are
//     fetched from their base columns by row id. This is classic late
//     tuple reconstruction, paying one random access per result tuple.
//
//   - Sideways cracking (after Idreos et al. [18], simplified): for an
//     attribute pair (A, B) where queries select on A and project B, a
//     cracker map holds B's values physically aligned with a cracked copy
//     of A — the partition swaps move both attributes together — so
//     projection is a contiguous copy, never random access. Maps are
//     created lazily on first use and refined adaptively like any other
//     cracker column ("pieces of cracker columns are dynamically
//     created ... based on storage restrictions", §2).
//
// Selection uses any core cracking algorithm; the table owns one adaptive
// index per selection attribute plus the lazily built sideways maps.
package table

import (
	"fmt"
	"sort"

	"repro/internal/cindex"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/dberr"
)

// Table is a column-store table: named columns of equal length. It is not
// safe for concurrent use.
type Table struct {
	names   []string
	base    map[string][]int64 // immutable base columns
	rows    int
	algo    string
	opt     core.Options
	indexes map[string]*selIndex      // adaptive index per selection attribute
	maps    map[[2]string]*crackerMap // sideways maps keyed by (sel, proj)
}

// selIndex is the adaptive index on one selection attribute: a cracked
// copy of the attribute with a row-id payload for late reconstruction.
type selIndex struct {
	ix core.Index
	e  *core.Engine
}

// crackerMap is a sideways map: a copy of the selection attribute cracked
// query-driven, with the projected attribute permuted in tandem.
type crackerMap struct {
	col *column.Column
	idx *cindex.Tree
}

// New creates a table from named columns, all of equal length. algorithm
// selects the cracking flavor for selection indexes (any core spec, e.g.
// "crack", "dd1r", "pmdd1r-10").
func New(cols map[string][]int64, algorithm string, opt core.Options) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: no columns")
	}
	t := &Table{
		base:    make(map[string][]int64, len(cols)),
		algo:    algorithm,
		opt:     opt,
		indexes: make(map[string]*selIndex),
		maps:    make(map[[2]string]*crackerMap),
		rows:    -1,
	}
	for name := range cols {
		t.names = append(t.names, name)
	}
	sort.Strings(t.names)
	for _, name := range t.names {
		vals := cols[name]
		if t.rows == -1 {
			t.rows = len(vals)
		} else if len(vals) != t.rows {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d", name, len(vals), t.rows)
		}
		t.base[name] = vals
	}
	if _, err := core.Build(nil, algorithm, opt); err != nil {
		return nil, err // validate the algorithm spec eagerly
	}
	return t, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Columns returns the column names in deterministic (sorted) order.
func (t *Table) Columns() []string { return append([]string(nil), t.names...) }

// Stats aggregates physical-cost counters over all selection indexes and
// sideways maps.
func (t *Table) Stats() core.Stats {
	var s core.Stats
	for _, si := range t.indexes {
		st := si.ix.Stats()
		s.Queries += st.Queries
		s.Touched += st.Touched
		s.Swaps += st.Swaps
		s.Cracks += st.Cracks
		s.Pieces += st.Pieces
	}
	for _, m := range t.maps {
		s.Touched += m.col.Stats.Touched
		s.Swaps += m.col.Stats.Swaps
		s.Cracks += m.idx.Len()
		s.Pieces += m.idx.Len() + 1
	}
	return s
}

// index returns (building lazily) the adaptive index on column sel.
func (t *Table) index(sel string) (*selIndex, error) {
	if si, ok := t.indexes[sel]; ok {
		return si, nil
	}
	base, ok := t.base[sel]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, sel)
	}
	opt := t.opt
	opt.TrackRowIDs = true
	ix, err := core.Build(append([]int64(nil), base...), t.algo, opt)
	if err != nil {
		return nil, err
	}
	acc, ok := ix.(interface{ Engine() *core.Engine })
	if !ok {
		return nil, fmt.Errorf("table: algorithm %q does not expose its engine", t.algo)
	}
	si := &selIndex{ix: ix, e: acc.Engine()}
	t.indexes[sel] = si
	return si, nil
}

// Select returns the values of column sel falling in [lo, hi), cracking
// sel's index as a side effect — the single-attribute select the paper's
// experiments run.
func (t *Table) Select(sel string, lo, hi int64) ([]int64, error) {
	si, err := t.index(sel)
	if err != nil {
		return nil, err
	}
	res := si.ix.Query(lo, hi)
	return res.Materialize(make([]int64, 0, res.Count())), nil
}

// SelectProject answers SELECT proj FROM t WHERE lo <= sel AND sel < hi
// with late tuple reconstruction: the selection column is cracked as a
// side effect, and proj is fetched from its base column through the
// row-id payload.
func (t *Table) SelectProject(sel, proj string, lo, hi int64) ([]int64, error) {
	base, ok := t.base[proj]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, proj)
	}
	si, err := t.index(sel)
	if err != nil {
		return nil, err
	}
	res := si.ix.Query(lo, hi)
	col := si.e.Column()
	out := make([]int64, 0, res.Count())
	if res.ViewLen() == res.Count() {
		// Pure view: project the contiguous qualifying area by row id.
		for i := res.ViewLo(); i < res.ViewHi(); i++ {
			out = append(out, base[col.RowIDs[i]])
		}
		return out, nil
	}
	// Stochastic variants materialize end pieces without row ids; recover
	// them by scanning the (now partially cracked) end pieces for
	// qualifying values. The middle view still projects contiguously.
	idx := si.e.CrackerIndex()
	plo, _, _ := idx.PieceFor(lo, col.Len())
	_, phi, _ := idx.PieceFor(hi, col.Len())
	if hi <= lo {
		return out, nil
	}
	for i := plo; i < phi; i++ {
		if v := col.Values[i]; lo <= v && v < hi {
			out = append(out, base[col.RowIDs[i]])
		}
	}
	return out, nil
}

// SelectProjectSideways answers the same query through a sideways cracker
// map: the projected attribute physically travels with the selection
// attribute during cracking, so the projection is one contiguous copy.
// The map is built lazily for each (sel, proj) pair and cracked
// query-driven.
func (t *Table) SelectProjectSideways(sel, proj string, lo, hi int64) ([]int64, error) {
	m, err := t.sidewaysMap(sel, proj)
	if err != nil {
		return nil, err
	}
	if lo >= hi {
		return nil, nil
	}
	p1 := m.crackBound(lo)
	p2 := m.crackBound(hi)
	return append([]int64(nil), m.col.Payload[p1:p2]...), nil
}

// Maps returns the number of sideways maps materialized so far.
func (t *Table) Maps() int { return len(t.maps) }

func (t *Table) sidewaysMap(sel, proj string) (*crackerMap, error) {
	key := [2]string{sel, proj}
	if m, ok := t.maps[key]; ok {
		return m, nil
	}
	selBase, ok := t.base[sel]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, sel)
	}
	projBase, ok := t.base[proj]
	if !ok {
		return nil, fmt.Errorf("table: %w %q", dberr.ErrUnknownColumn, proj)
	}
	m := &crackerMap{
		col: column.NewWithPayload(
			append([]int64(nil), selBase...),
			append([]int64(nil), projBase...)),
		idx: &cindex.Tree{},
	}
	t.maps[key] = m
	return m, nil
}

// crackBound cracks the map on v (query-driven), keeping the projected
// values aligned through the column's tandem payload, and returns the
// crack position.
func (m *crackerMap) crackBound(v int64) int {
	lo, hi, exact := m.idx.PieceFor(v, m.col.Len())
	if exact {
		return lo
	}
	p := m.col.CrackInTwo(lo, hi, v)
	m.idx.Insert(v, p)
	return p
}
