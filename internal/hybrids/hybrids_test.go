package hybrids

import (
	"testing"

	"repro/internal/xrand"
)

func oracleQuery(vals []int64, a, b int64) (int, int64) {
	count := 0
	var sum int64
	for _, v := range vals {
		if a <= v && v < b {
			count++
			sum += v
		}
	}
	return count, sum
}

func TestHybridsMatchOracle(t *testing.T) {
	const n = 20000
	vals := xrand.New(1).Perm(n)
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			h, err := Build(append([]int64(nil), vals...), spec,
				Options{NumPartitions: 7, Seed: 3, CrackSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(5)
			for i := 0; i < 400; i++ {
				var a, b int64
				switch i % 4 {
				case 0:
					a = rng.Int63n(n - 50)
					b = a + 50
				case 1: // sequential
					a = (int64(i) * 37) % (n - 100)
					b = a + 100
				case 2: // overlapping previously merged ranges
					a = rng.Int63n(n / 2)
					b = a + n/4
				default: // repeats
					a, b = 5000, 5500
				}
				res := h.Query(a, b)
				wc, ws := oracleQuery(vals, a, b)
				if res.Count() != wc || res.Sum() != ws {
					t.Fatalf("%s query %d [%d,%d): got (%d,%d), want (%d,%d)",
						spec, i, a, b, res.Count(), res.Sum(), wc, ws)
				}
			}
		})
	}
}

func TestHybridsWithDuplicates(t *testing.T) {
	rng := xrand.New(2)
	vals := make([]int64, 8000)
	for i := range vals {
		vals[i] = rng.Int63n(200)
	}
	for _, spec := range Specs() {
		h, err := Build(append([]int64(nil), vals...), spec, Options{NumPartitions: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			a := rng.Int63n(190)
			b := a + rng.Int63n(20) + 1
			res := h.Query(a, b)
			wc, ws := oracleQuery(vals, a, b)
			if res.Count() != wc || res.Sum() != ws {
				t.Fatalf("%s dup query %d [%d,%d): got (%d,%d), want (%d,%d)",
					spec, i, a, b, res.Count(), res.Sum(), wc, ws)
			}
		}
	}
}

func TestMergeHappensOnce(t *testing.T) {
	const n = 10000
	h := New(xrand.New(3).Perm(n), CrackSort, false, Options{NumPartitions: 4, Seed: 1})
	h.Query(1000, 2000)
	if h.Runs() != 1 {
		t.Fatalf("runs = %d after first query, want 1", h.Runs())
	}
	touched := h.Stats().Touched
	// Re-querying a merged range must not touch the source partitions.
	h.Query(1200, 1800)
	if h.Runs() != 1 {
		t.Fatalf("re-query created a run: %d", h.Runs())
	}
	delta := h.Stats().Touched - touched
	if delta > 200 {
		t.Fatalf("re-query of merged range touched %d tuples; want only final-store access", delta)
	}
	// A partially overlapping query merges only the missing sub-range.
	h.Query(1500, 2500)
	if h.Runs() != 2 {
		t.Fatalf("runs = %d after partial overlap, want 2", h.Runs())
	}
}

func TestStochasticHybridsBeatPlainOnSequential(t *testing.T) {
	// Fig. 14's claim: AICC/AICS inherit the query-driven pathology on the
	// sequential workload; AICC1R/AICS1R escape it.
	const n = 200000
	const q = 400
	vals := xrand.New(4).Perm(n)
	jump := int64(n / q)
	run := func(spec string) int64 {
		h, err := Build(append([]int64(nil), vals...), spec,
			Options{NumPartitions: 8, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < q; i++ {
			a := int64(i) * jump
			h.Query(a, a+10)
		}
		return h.Stats().Touched
	}
	plainCC, stochCC := run("aicc"), run("aicc1r")
	plainCS, stochCS := run("aics"), run("aics1r")
	if stochCC*3 > plainCC {
		t.Errorf("aicc1r touched %d, aicc %d; expected >=3x improvement", stochCC, plainCC)
	}
	if stochCS*3 > plainCS {
		t.Errorf("aics1r touched %d, aics %d; expected >=3x improvement", stochCS, plainCS)
	}
}

func TestHybridEmptyAndDegenerate(t *testing.T) {
	for _, spec := range Specs() {
		h, err := Build(nil, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res := h.Query(0, 100); res.Count() != 0 {
			t.Fatalf("%s: empty column returned %d tuples", spec, res.Count())
		}
		h2, _ := Build([]int64{5}, spec, Options{})
		if res := h2.Query(0, 10); res.Count() != 1 || res.Sum() != 5 {
			t.Fatalf("%s: single-value column wrong", spec)
		}
		if res := h2.Query(10, 0); res.Count() != 0 {
			t.Fatalf("%s: inverted range returned tuples", spec)
		}
	}
}

func TestBuildUnknownSpec(t *testing.T) {
	if _, err := Build([]int64{1}, "aixx", Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestNames(t *testing.T) {
	want := map[string]string{"aicc": "aicc", "aics": "aics", "aicc1r": "aicc1r", "aics1r": "aics1r"}
	for spec, name := range want {
		h, err := Build([]int64{1, 2, 3, 4}, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if h.Name() != name {
			t.Fatalf("Name() = %q, want %q", h.Name(), name)
		}
	}
}

func TestPartitionCountDefaults(t *testing.T) {
	o := Options{}.withDefaults(100)
	if o.NumPartitions != 2 {
		t.Fatalf("small column partitions = %d, want 2", o.NumPartitions)
	}
	o = Options{}.withDefaults(5 << 20)
	if o.NumPartitions != 5 {
		t.Fatalf("5M column partitions = %d, want 5", o.NumPartitions)
	}
	o = Options{NumPartitions: 64}.withDefaults(16)
	if o.NumPartitions != 16 {
		t.Fatalf("partitions not clamped to column size: %d", o.NumPartitions)
	}
}
