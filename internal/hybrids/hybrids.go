// Package hybrids implements the adaptive indexing hybrids of Idreos et
// al. [19] that the paper evaluates in Fig. 14 — Crack-Crack (AICC) and
// Crack-Sort (AICS) — together with the paper's stochastic extensions
// AICC1R and AICS1R, which add a DD1R-style random crack to every source
// partition cracking step.
//
// Partition/merge logic: the column is split into k source partitions,
// each cracked independently. When a query requests a value range that has
// not been merged yet, every source partition is cracked on the range's
// bounds and the qualifying tuples are merged into a final store — kept as
// sorted runs by AICS (incremental merge sort flavor) or as independently
// cracked runs by AICC (incremental quicksort flavor). A value-interval
// set records merged ranges so each range is merged exactly once; later
// queries are served from the final store alone.
//
// Reproduction note (DESIGN.md §4): unlike [19]'s implementation, source
// partitions are not physically compacted after a merge; merged ranges are
// masked by the interval set instead. The workload-robustness behavior
// under study — repeated cracking of large source pieces when the
// workload provides no random access pattern — is unaffected.
package hybrids

import (
	"fmt"
	"slices"

	"repro/internal/cindex"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/intervals"
	"repro/internal/xrand"
)

// Kind selects the final-store organization.
type Kind int

const (
	// CrackCrack (AICC): merged runs are cracked on demand.
	CrackCrack Kind = iota
	// CrackSort (AICS): merged runs are sorted on merge.
	CrackSort
)

// Options configure a hybrid index.
type Options struct {
	// NumPartitions is the number of source partitions (default: column
	// size / 2^20, at least 2 — mirroring [19]'s memory-sized partitions).
	NumPartitions int
	// CrackSize bounds the auxiliary random cracks of the 1R variants,
	// exactly like core.Options.CrackSize. Default core.DefaultCrackSize.
	CrackSize int
	// Seed drives random pivots.
	Seed uint64
}

func (o Options) withDefaults(n int) Options {
	if o.NumPartitions <= 0 {
		o.NumPartitions = n / (1 << 20)
		if o.NumPartitions < 2 {
			o.NumPartitions = 2
		}
	}
	if o.NumPartitions > n && n > 0 {
		o.NumPartitions = n
	}
	if o.CrackSize <= 0 {
		o.CrackSize = core.DefaultCrackSize
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// part is one source partition: a slice of the original column with its
// own cracker index.
type part struct {
	col *column.Column
	idx *cindex.Tree
}

// run is one merged chunk of the final store, covering the value interval
// [lo, hi). AICS runs are sorted; AICC runs carry their own cracker index
// and are cracked on demand.
type run struct {
	lo, hi int64
	col    *column.Column
	idx    *cindex.Tree // nil for sorted (AICS) runs
}

// Hybrid is an AICC/AICS adaptive index (optionally with stochastic source
// cracking).
type Hybrid struct {
	kind       Kind
	stochastic bool
	opt        Options
	rng        *xrand.Rand

	parts  []*part
	merged intervals.Set
	runs   []*run

	queries int64
	out     []int64 // reusable result buffer
	scratch []int64 // reusable merge buffer
}

// New builds a hybrid adaptive index over values. stochastic selects the
// 1R variants (AICC1R/AICS1R).
func New(values []int64, kind Kind, stochastic bool, opt Options) *Hybrid {
	opt = opt.withDefaults(len(values))
	h := &Hybrid{kind: kind, stochastic: stochastic, opt: opt, rng: xrand.New(opt.Seed)}
	k := opt.NumPartitions
	if len(values) == 0 {
		k = 0
	}
	for i := 0; i < k; i++ {
		lo := i * len(values) / k
		hi := (i + 1) * len(values) / k
		h.parts = append(h.parts, &part{col: column.New(values[lo:hi]), idx: &cindex.Tree{}})
	}
	return h
}

// Name implements the harness naming convention.
func (h *Hybrid) Name() string {
	base := "aicc"
	if h.kind == CrackSort {
		base = "aics"
	}
	if h.stochastic {
		base += "1r"
	}
	return base
}

// Stats aggregates the physical-cost counters across source partitions and
// final-store runs.
func (h *Hybrid) Stats() core.Stats {
	s := core.Stats{Queries: h.queries}
	for _, p := range h.parts {
		s.Touched += p.col.Stats.Touched
		s.Swaps += p.col.Stats.Swaps
		s.Cracks += p.idx.Len()
	}
	for _, r := range h.runs {
		s.Touched += r.col.Stats.Touched
		s.Swaps += r.col.Stats.Swaps
		if r.idx != nil {
			s.Cracks += r.idx.Len()
		}
	}
	s.Pieces = s.Cracks + len(h.parts) + len(h.runs)
	return s
}

// Runs returns the number of merged runs in the final store.
func (h *Hybrid) Runs() int { return len(h.runs) }

// Query answers [a, b): it merges any not-yet-merged sub-ranges from the
// source partitions into the final store, then assembles the result from
// the overlapping runs. Hybrid results are materialized (runs are not
// contiguous with one another).
func (h *Hybrid) Query(a, b int64) core.Result {
	h.queries++
	h.out = h.out[:0]
	if a >= b {
		return core.NewMaterializedResult(nil)
	}
	for _, m := range h.merged.Missing(a, b) {
		h.mergeRange(m[0], m[1])
	}
	h.merged.Add(a, b)

	for _, r := range h.runs {
		if r.hi <= a || r.lo >= b {
			continue
		}
		h.out = h.appendFromRun(r, a, b, h.out)
	}
	return core.NewMaterializedResult(h.out)
}

// mergeRange cracks every source partition on [ma, mb), copies the
// qualifying tuples out, and installs them as a new final-store run.
func (h *Hybrid) mergeRange(ma, mb int64) {
	h.scratch = h.scratch[:0]
	for _, p := range h.parts {
		lo := h.crackPart(p, ma)
		hi := h.crackPart(p, mb)
		h.scratch = append(h.scratch, p.col.Values[lo:hi]...)
		p.col.Stats.Touched += int64(hi - lo) // the copy out of the partition
	}
	vals := append([]int64(nil), h.scratch...)
	r := &run{lo: ma, hi: mb, col: column.New(vals)}
	if h.kind == CrackSort {
		slices.Sort(r.col.Values)
		if n := len(vals); n > 1 {
			r.col.Stats.Touched += int64(n) * int64(logCeil(n))
		}
	} else {
		r.idx = &cindex.Tree{}
	}
	h.runs = append(h.runs, r)
}

// crackPart cracks one source partition on bound v (original cracking, or
// DD1R-style with one random auxiliary crack for the 1R variants) and
// returns the crack position.
func (h *Hybrid) crackPart(p *part, v int64) int {
	lo, hi, exact := p.idx.PieceFor(v, p.col.Len())
	if exact {
		return lo
	}
	if h.stochastic && hi-lo > h.opt.CrackSize {
		pivot := p.col.Values[lo+h.rng.Intn(hi-lo)]
		pos := p.col.CrackInTwo(lo, hi, pivot)
		if pos == lo {
			pivot++
			pos = p.col.CrackInTwo(lo, hi, pivot)
		}
		if pos > lo && pos < hi {
			p.idx.Insert(pivot, pos)
			if v < pivot {
				hi = pos
			} else {
				lo = pos
			}
		}
	}
	pos := p.col.CrackInTwo(lo, hi, v)
	p.idx.Insert(v, pos)
	return pos
}

// appendFromRun appends the run's values falling in [a, b) to out. Runs
// whose interval is fully inside the query qualify wholesale; partial
// overlaps use binary search (sorted runs) or cracking (cracked runs).
func (h *Hybrid) appendFromRun(r *run, a, b int64, out []int64) []int64 {
	if a <= r.lo && r.hi <= b {
		r.col.Stats.Touched += int64(r.col.Len())
		return append(out, r.col.Values...)
	}
	qa, qb := a, b
	if qa < r.lo {
		qa = r.lo
	}
	if qb > r.hi {
		qb = r.hi
	}
	if r.idx == nil { // sorted run
		vals := r.col.Values
		lo, _ := slices.BinarySearch(vals, qa)
		hi, _ := slices.BinarySearch(vals, qb)
		r.col.Stats.Touched += int64(2 * logCeil(len(vals)+1))
		return append(out, vals[lo:hi]...)
	}
	// cracked run: crack on demand, exactly like a tiny cracker column.
	lo := h.crackRun(r, qa)
	hi := h.crackRun(r, qb)
	r.col.Stats.Touched += int64(hi - lo)
	return append(out, r.col.Values[lo:hi]...)
}

func (h *Hybrid) crackRun(r *run, v int64) int {
	lo, hi, exact := r.idx.PieceFor(v, r.col.Len())
	if exact {
		return lo
	}
	pos := r.col.CrackInTwo(lo, hi, v)
	r.idx.Insert(v, pos)
	return pos
}

func logCeil(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// Build constructs a hybrid by spec name: aicc, aics, aicc1r, aics1r.
func Build(values []int64, spec string, opt Options) (*Hybrid, error) {
	switch spec {
	case "aicc":
		return New(values, CrackCrack, false, opt), nil
	case "aics":
		return New(values, CrackSort, false, opt), nil
	case "aicc1r":
		return New(values, CrackCrack, true, opt), nil
	case "aics1r":
		return New(values, CrackSort, true, opt), nil
	}
	return nil, fmt.Errorf("hybrids: %w %q", dberr.ErrUnknownAlgorithm, spec)
}

// Specs lists the buildable hybrid algorithm names.
func Specs() []string { return []string{"aicc", "aics", "aicc1r", "aics1r"} }
