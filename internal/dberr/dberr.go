// Package dberr declares the sentinel errors shared by the public crackdb
// API and the internal layers that produce them. Internal packages wrap
// these with fmt.Errorf("...: %w", ...) at the failure site; the facade
// re-exports the same values (crackdb.ErrUnknownAlgorithm and friends), so
// callers can classify failures with errors.Is instead of string-matching,
// no matter how many layers the error crossed.
package dberr

import "errors"

var (
	// ErrUnknownAlgorithm reports an algorithm spec no builder recognizes.
	ErrUnknownAlgorithm = errors.New("unknown algorithm")

	// ErrUpdatesUnsupported reports an Insert/Delete against an index kind
	// that cannot take updates (the sorted baseline, the hybrids).
	ErrUpdatesUnsupported = errors.New("updates unsupported")

	// ErrSnapshotUnsupported reports a Snapshot against an index kind or
	// concurrency mode that cannot serialize its physical state.
	ErrSnapshotUnsupported = errors.New("snapshots unsupported")

	// ErrSnapshotCorrupt reports snapshot bytes that failed structural
	// decoding or checksum verification: wrong magic, an unsupported
	// format version, truncation, impossible counts, or a CRC mismatch.
	// Corrupt snapshots are never loaded partially — decoding fails as a
	// whole.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")

	// ErrPendingUpdates reports a Snapshot attempted while updates are
	// queued but not yet merged: the pending queues are not part of the
	// snapshot format, so proceeding would silently lose them. Query the
	// relevant ranges to merge the queue first.
	ErrPendingUpdates = errors.New("pending updates")

	// ErrUnknownColumn reports a predicate or projection naming a column
	// the table does not have.
	ErrUnknownColumn = errors.New("unknown column")

	// ErrClosed reports an operation on a closed DB handle.
	ErrClosed = errors.New("database is closed")
)
