package crackdb_test

import (
	"sync"
	"testing"

	crackdb "repro"
)

func TestShardedFacade(t *testing.T) {
	const n = 80_000
	ix, err := crackdb.NewSharded(crackdb.MakeData(n, 10), crackdb.DD1R, 8, crackdb.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumShards() != 8 {
		t.Fatalf("shards = %d", ix.NumShards())
	}
	got := ix.Query(1000, 2000)
	if len(got) != 1000 {
		t.Fatalf("count = %d", len(got))
	}
	var sum int64
	for _, v := range got {
		sum += v
	}
	var want int64
	for v := int64(1000); v < 2000; v++ {
		want += v
	}
	if sum != want {
		t.Fatal("wrong values")
	}
	if p := ix.QueryWhere(crackdb.Between(10, 19)); len(p) != 10 {
		t.Fatalf("predicate query count = %d", len(p))
	}
	if p := ix.QueryWhere(crackdb.Greater(5).And(crackdb.Less(5))); p != nil {
		t.Fatal("empty predicate returned rows")
	}
	// Multi-range predicates answer range by range, never the envelope.
	if p := ix.QueryWhere(crackdb.Range(10, 20).Or(crackdb.Range(40, 50))); len(p) != 20 {
		t.Fatalf("multi-range predicate count = %d, want 20", len(p))
	}
	// Cross-column compositions select nothing (the shim has no columns).
	if p := ix.QueryWhere(crackdb.Eq(1).On("a").And(crackdb.Eq(1).On("b"))); p != nil {
		t.Fatal("conflicted predicate returned rows")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				a := int64((g*997 + i*131) % (n - 100))
				if len(ix.Query(a, a+100)) != 100 {
					t.Error("concurrent query wrong")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ix.Stats().Queries == 0 || ix.Name() == "" {
		t.Fatal("stats/name broken")
	}
	if _, err := crackdb.NewSharded(nil, "bogus", 2); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}
